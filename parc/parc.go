// Package parc is the public API of the ParC# reproduction: SCOOPP-style
// parallel objects for Go, backed by the remoting runtime described in the
// PACT 2005 paper "ParC#: Parallel Computing with C# in .Net".
//
// # Quick start
//
//	cl, err := parc.NewCluster(parc.ClusterConfig{Nodes: 3})
//	if err != nil { ... }
//	defer cl.Close()
//	cl.RegisterClass("counter", func() any { return &Counter{} })
//
//	p, err := cl.Entry().NewParallelObject("counter")
//	if err != nil { ... }
//	p.Post("Add", 2)                  // asynchronous method call
//	total, err := p.Invoke("Total")   // synchronous method call
//
// Parallel objects are distributed across nodes by the placement policy and
// communicate through the remoting channel; asynchronous calls to one
// object execute in order. Grain-size adaptation — method-call aggregation
// and object agglomeration — is enabled through ClusterConfig.
//
// The facade wraps internal/core (the SCOOPP run-time system),
// internal/remoting (the .NET-remoting analogue), internal/netsim (the
// testbed network model) and internal/cluster (node bootstrap); advanced
// users can reach those packages' types through the aliases below.
package parc

import (
	"reflect"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/remoting"
	"repro/internal/transport"
	"repro/internal/wire"
)

// As converts a dynamically typed invocation result to T, applying the wire
// layer's canonical conversions (for example []any to []int). Generated
// proxy code (cmd/parcgen) uses it to give remote methods their original
// static signatures.
func As[T any](v any, err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	t := reflect.TypeFor[T]()
	av, err := wire.Assign(t, v)
	if err != nil {
		return zero, err
	}
	out, ok := av.Interface().(T)
	if !ok {
		return zero, err
	}
	return out, nil
}

// Re-exported core types: these are the objects user code manipulates.
type (
	// Runtime is one node's object manager and hosting server.
	Runtime = core.Runtime
	// Proxy is the handle of a parallel object (the paper's PO).
	Proxy = core.Proxy
	// Future is the result handle of InvokeAsync.
	Future = core.Future
	// ProxyRef is a wire-encodable parallel-object reference.
	ProxyRef = core.ProxyRef
	// AggregationConfig tunes method-call aggregation.
	AggregationConfig = core.AggregationConfig
	// PlacementPolicy distributes new objects across nodes.
	PlacementPolicy = core.PlacementPolicy
	// AgglomerationPolicy removes excess parallelism at creation time.
	AgglomerationPolicy = core.AgglomerationPolicy
	// NodeLoad is a node's load snapshot given to placement policies.
	NodeLoad = core.NodeLoad
	// Stats are the runtime's cumulative counters.
	Stats = core.Stats
)

// Placement policies.
type (
	// RoundRobin cycles object placement across nodes (default).
	RoundRobin = core.RoundRobin
	// LeastLoaded places on the node hosting the fewest objects.
	LeastLoaded = core.LeastLoaded
	// LocalOnly disables distribution.
	LocalOnly = core.LocalOnly
)

// Agglomeration policies.
type (
	// NeverAgglomerate keeps all objects parallel (default).
	NeverAgglomerate = core.NeverAgglomerate
	// AlwaysAgglomerate packs every object into its creator's grain.
	AlwaysAgglomerate = core.AlwaysAgglomerate
	// AdaptiveAgglomeration packs objects whose measured grain is too
	// fine to pay communication costs.
	AdaptiveAgglomeration = core.AdaptiveAgglomeration
)

// RegisterType makes a struct type transferable as a method argument or
// result (the analogue of [Serializable]). Call it from an init function
// for every payload struct.
func RegisterType(sample any) { wire.Register(sample) }

// RegisterTypeName registers sample under an explicit wire name.
func RegisterTypeName(name string, sample any) { wire.RegisterName(name, sample) }

// NetworkParams shapes the simulated inter-node network.
type NetworkParams = netsim.Params

// Ethernet100 returns the paper's testbed network model: 100 Mbit/s
// switched Ethernet.
func Ethernet100() NetworkParams { return netsim.Ethernet100() }

// ClusterConfig configures an in-process cluster (the test/bench topology;
// use cmd/parcnode for real multi-process TCP clusters).
type ClusterConfig struct {
	// Nodes is the cluster size; default 1.
	Nodes int
	// Network simulates link latency/bandwidth between nodes; the zero
	// value is an ideal network.
	Network NetworkParams
	// PoolSize caps each node's concurrent request execution, modelling
	// a bounded VM thread pool; 0 means unbounded.
	PoolSize int
	// Placement distributes new parallel objects; nil means round-robin.
	Placement PlacementPolicy
	// Agglomeration removes excess parallelism; nil means never.
	Agglomeration AgglomerationPolicy
	// Aggregation batches asynchronous calls; zero disables.
	Aggregation AggregationConfig
	// LoadCacheTTL bounds staleness of placement load data.
	LoadCacheTTL time.Duration
}

// Cluster is a running set of nodes inside this process.
type Cluster struct {
	inner *cluster.Cluster
}

// NewCluster boots an in-process cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	inner, err := cluster.New(cluster.Options{
		Nodes:         cfg.Nodes,
		Net:           cfg.Network,
		PoolSize:      cfg.PoolSize,
		Placement:     cfg.Placement,
		Agglomeration: cfg.Agglomeration,
		Aggregation:   cfg.Aggregation,
		LoadCacheTTL:  cfg.LoadCacheTTL,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// RegisterClass registers a parallel-object class on every node. The
// factory must return a pointer to a fresh instance.
func (c *Cluster) RegisterClass(name string, factory func() any) {
	c.inner.RegisterClass(name, factory)
}

// Entry returns node 0's runtime, the conventional application entry node.
func (c *Cluster) Entry() *Runtime { return c.inner.Node(0) }

// Node returns node i's runtime.
func (c *Cluster) Node(i int) *Runtime { return c.inner.Node(i) }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return c.inner.Size() }

// Close shuts all nodes down.
func (c *Cluster) Close() { c.inner.Close() }

// Node-level API for assembling real distributed deployments (each process
// runs StartNode and the processes exchange addresses out of band; see
// cmd/parcnode).

// NodeConfig configures a single node runtime for multi-process use.
type NodeConfig struct {
	// NodeID is this node's index in the cluster.
	NodeID int
	// Listen is the TCP address to serve on, for example ":7070".
	Listen string
	// PoolSize caps concurrent request execution; 0 means unbounded.
	PoolSize int
	// Placement and Aggregation as in ClusterConfig.
	Placement     PlacementPolicy
	Agglomeration AgglomerationPolicy
	Aggregation   AggregationConfig
}

// StartNode boots one TCP-backed node. Call Runtime.JoinCluster with every
// node's address (same order everywhere) once all nodes are up.
func StartNode(cfg NodeConfig) (*Runtime, error) {
	ch := remoting.NewTCPChannel(transport.TCPNetwork{})
	return core.Start(core.Config{
		NodeID:        cfg.NodeID,
		Channel:       ch,
		Placement:     cfg.Placement,
		Agglomeration: cfg.Agglomeration,
		Aggregation:   cfg.Aggregation,
	}, cfg.Listen)
}
