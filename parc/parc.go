// Package parc is the public API of the ParC# reproduction: SCOOPP-style
// parallel objects for Go, backed by the remoting runtime described in the
// PACT 2005 paper "ParC#: Parallel Computing with C# in .Net".
//
// # Quick start (typed API)
//
//	cl, err := parc.StartCluster(parc.WithNodes(3))
//	if err != nil { ... }
//	defer cl.Close()
//	parc.Register[Counter](cl, "counter")
//
//	obj, err := parc.New[Counter](cl, "counter")
//	if err != nil { ... }
//	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
//	defer cancel()
//	_ = obj.Send(ctx, "Add", 2)                      // asynchronous method call
//	total, err := parc.Call[int](ctx, obj, "Total")  // synchronous, typed result
//
// Object[T] handles validate method names against T before anything touches
// the wire, every blocking operation honours the context's cancellation and
// deadline (the deadline travels to the hosting node), and failures wrap
// the package's sentinel errors (ErrNoSuchMethod, ErrNodeDown, ErrCanceled,
// ...) for errors.Is branching. cmd/parcgen generates fully typed proxy
// structs on top of this API, restoring the original static signatures of
// annotated classes.
//
// Parallel objects are distributed across nodes by the placement policy and
// communicate through the remoting channel; asynchronous calls to one
// object execute in order. Grain-size adaptation — method-call aggregation
// and object agglomeration — is enabled through WithAggregation and
// WithAgglomeration.
//
// # Dynamic API (escape hatch)
//
// The stringly-typed Proxy API remains for dynamic use cases and as the
// compatibility layer under the typed one:
//
//	p := obj.Proxy()
//	p.Post("Add", 2)
//	total, err := p.Invoke("Total")
//
// The facade wraps internal/core (the SCOOPP run-time system),
// internal/remoting (the .NET-remoting analogue), internal/netsim (the
// testbed network model) and internal/cluster (node bootstrap); advanced
// users can reach those packages' types through the aliases below.
package parc

import (
	"context"
	"fmt"
	"reflect"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/netsim"
	"repro/internal/remoting"
	"repro/internal/wire"
)

// As converts a dynamically typed invocation result to T, applying the wire
// layer's canonical conversions (for example []any to []int). Generated
// proxy code (cmd/parcgen) uses it to give remote methods their original
// static signatures. Conversion failures wrap ErrBadConversion.
func As[T any](v any, err error) (T, error) {
	var zero T
	if err != nil {
		return zero, err
	}
	t := reflect.TypeFor[T]()
	av, err := wire.Assign(t, v)
	if err != nil {
		return zero, fmt.Errorf("parc: convert %T result to %s: %v: %w", v, t, err, errs.ErrBadConversion)
	}
	out, ok := av.Interface().(T)
	if !ok {
		return zero, fmt.Errorf("parc: %T result does not satisfy %s: %w", v, t, errs.ErrBadConversion)
	}
	return out, nil
}

// Re-exported core types: these are the objects user code manipulates.
type (
	// Runtime is one node's object manager and hosting server.
	Runtime = core.Runtime
	// Proxy is the handle of a parallel object (the paper's PO).
	Proxy = core.Proxy
	// Future is the result handle of InvokeAsync; Result[R] is its typed
	// counterpart.
	Future = core.Future
	// ProxyRef is a wire-encodable parallel-object reference.
	ProxyRef = core.ProxyRef
	// AggregationConfig tunes method-call aggregation.
	AggregationConfig = core.AggregationConfig
	// PlacementPolicy distributes new objects across nodes.
	PlacementPolicy = core.PlacementPolicy
	// AgglomerationPolicy removes excess parallelism at creation time.
	AgglomerationPolicy = core.AgglomerationPolicy
	// NodeLoad is a node's load snapshot given to placement policies.
	NodeLoad = core.NodeLoad
	// Stats is the coherent read-only snapshot of a node's runtime
	// counters returned by Runtime.Stats(): object/call counts, migration
	// and virtual-object events, mailbox sheds, deadline drops and the
	// node's current overload grade.
	Stats = core.Stats
	// ShedPolicy selects which call a full bounded mailbox sheds (see
	// WithMailboxBound / WithShedPolicy).
	ShedPolicy = core.ShedPolicy
	// OverloadGrade is a node's admission-control state (None, Busy,
	// Shedding) as reported in Stats and the placement load vector.
	OverloadGrade = core.OverloadGrade
	// ObjLoc is an object-directory entry: the node hosting a parallel
	// object and the migration generation that information was observed
	// at (see Runtime.Lookup).
	ObjLoc = core.ObjLoc
	// PeerStatus grades a peer's observed liveness (see
	// Runtime.PeerStatuses and WithHealthProbe).
	PeerStatus = core.PeerStatus
	// CallToken identifies one logical call for idempotent deduplication
	// (see WithIdempotentCalls); the zero token means "no token".
	CallToken = remoting.CallToken
)

// WithCallToken returns a context carrying tok: every call made under it
// shares the token, so hosting nodes deduplicate retries of the same
// logical call. Mint tokens with Runtime.NewCallToken; most applications
// never need either — WithIdempotentCalls stamps tokens automatically per
// proxy call — but a caller spanning its own retry loop (for example
// re-invoking after a failover error) reuses one token across its
// attempts this way.
func WithCallToken(ctx context.Context, tok CallToken) context.Context {
	return core.WithCallToken(ctx, tok)
}

// WithoutRetry returns a context that forces a single attempt for every
// call made under it, overriding the channel's WithRetry policy — the
// per-call escape hatch for callers that run their own retry loop or
// would rather surface the first transient failure.
func WithoutRetry(ctx context.Context) context.Context {
	return remoting.WithoutRetry(ctx)
}

// Peer liveness grades reported by health probing.
const (
	// PeerAlive: the peer answered its most recent probe.
	PeerAlive = core.PeerAlive
	// PeerSuspect: at least one probe in a row failed.
	PeerSuspect = core.PeerSuspect
	// PeerDown: enough probes failed in a row that the peer is excluded
	// from placement until it answers again.
	PeerDown = core.PeerDown
)

// Shed policies for bounded mailboxes (WithShedPolicy).
const (
	// ShedNewest rejects the arriving call when the mailbox is full
	// (default).
	ShedNewest = core.ShedNewest
	// ShedOldest evicts the oldest queued call and admits the arriving
	// one.
	ShedOldest = core.ShedOldest
)

// Overload grades reported in Stats.OverloadGrade and NodeLoad.Overload.
const (
	// OverloadNone: mailboxes have headroom (or no bound is set).
	OverloadNone = core.OverloadNone
	// OverloadBusy: aggregate mailbox occupancy crossed half capacity.
	OverloadBusy = core.OverloadBusy
	// OverloadShedding: the node shed a call within the last second;
	// placement and virtual activation route around it.
	OverloadShedding = core.OverloadShedding
)

// Placement policies.
type (
	// RoundRobin cycles object placement across nodes (default).
	RoundRobin = core.RoundRobin
	// LeastLoaded places on the node hosting the fewest objects.
	LeastLoaded = core.LeastLoaded
	// LocalOnly disables distribution.
	LocalOnly = core.LocalOnly
)

// Agglomeration policies.
type (
	// NeverAgglomerate keeps all objects parallel (default).
	NeverAgglomerate = core.NeverAgglomerate
	// AlwaysAgglomerate packs every object into its creator's grain.
	AlwaysAgglomerate = core.AlwaysAgglomerate
	// AdaptiveAgglomeration packs objects whose measured grain is too
	// fine to pay communication costs.
	AdaptiveAgglomeration = core.AdaptiveAgglomeration
)

// RegisterType makes a struct type transferable as a method argument or
// result (the analogue of [Serializable]). Call it from an init function
// for every payload struct.
func RegisterType(sample any) { wire.Register(sample) }

// RegisterTypeName registers sample under an explicit wire name.
func RegisterTypeName(name string, sample any) { wire.RegisterName(name, sample) }

// NetworkParams shapes the simulated inter-node network.
type NetworkParams = netsim.Params

// Ethernet100 returns the paper's testbed network model: 100 Mbit/s
// switched Ethernet.
func Ethernet100() NetworkParams { return netsim.Ethernet100() }

// Cluster is a running set of nodes inside this process.
type Cluster struct {
	inner *cluster.Cluster
}

// RegisterClass registers a parallel-object class on every node. The
// factory must return a pointer to a fresh instance. The generic Register
// derives the factory from the type itself.
func (c *Cluster) RegisterClass(name string, factory func() any) {
	c.inner.RegisterClass(name, factory)
}

// Entry returns node 0's runtime, the conventional application entry node.
func (c *Cluster) Entry() *Runtime { return c.inner.Node(0) }

// Node returns node i's runtime.
func (c *Cluster) Node(i int) *Runtime { return c.inner.Node(i) }

// Size returns the number of nodes.
func (c *Cluster) Size() int { return c.inner.Size() }

// Rebalance triggers one load rebalance on every node in turn: nodes
// loaded above the cluster mean live-migrate objects toward the policy's
// picks. It returns the total number of objects migrated. WithRebalance
// runs this automatically on an interval.
func (c *Cluster) Rebalance(ctx context.Context) (int, error) { return c.inner.Rebalance(ctx) }

// Close shuts all nodes down.
func (c *Cluster) Close() { c.inner.Close() }
