package parc

import (
	"errors"
	"sync/atomic"

	"repro/internal/core"
)

// This file holds the dataflow combinators over Result[R]: Then / Catch
// continuations and the WhenAll / WhenAny aggregators. All of them chain
// on the completion path — a pending combinator parks no goroutine, and
// aggregating N results costs N subscriptions, not N waiters. The
// continuation functions run on whatever goroutine resolves the future
// (for remote calls, a connection's reader), so they must not block; see
// the README's "Dataflow combinators & skeletons" section for the rules.

// Then returns a Result resolved by fn applied to r's value. fn runs on
// the completion path once r resolves successfully; an error in r (or a
// failed conversion to A) skips fn and propagates. A panic in fn resolves
// the derived Result with an error. (Then is a function rather than a
// method because Go methods cannot introduce the result type parameter B.)
func Then[B any, A any](r *Result[A], fn func(A) (B, error)) *Result[B] {
	src := r.f
	if src == nil {
		src = core.ResolvedFuture(nil, r.err)
	}
	cf := src.ThenAny(func(v any, err error) (any, error) {
		a, err := As[A](v, err)
		if err != nil {
			return nil, err
		}
		return fn(a)
	})
	return &Result[B]{f: cf, cancel: r.cancel}
}

// Catch returns a Result that resolves to r's value when the call
// succeeds, and to fn's recovery otherwise. fn runs on the completion
// path; a panic inside it resolves the derived Result with an error.
func (r *Result[R]) Catch(fn func(error) (R, error)) *Result[R] {
	src := r.f
	if src == nil {
		src = core.ResolvedFuture(nil, r.err)
	}
	cf := src.ThenAny(func(v any, err error) (any, error) {
		if err == nil {
			return v, nil
		}
		return fn(err)
	})
	return &Result[R]{f: cf, cancel: r.cancel}
}

// WhenAll aggregates every input into one Result that resolves when the
// last of them does: with the values in input order on success, or with
// errors.Join of the failures — also in input order, regardless of
// completion order — when any input failed. It subscribes once per input
// and counts completions down; no goroutine waits per element.
func WhenAll[R any](rs ...*Result[R]) *Result[[]R] {
	f, resolve := core.NewPromise()
	n := len(rs)
	if n == 0 {
		resolve([]R{}, nil)
		return &Result[[]R]{f: f}
	}
	vals := make([]R, n)
	errs := make([]error, n)
	var remaining atomic.Int64
	remaining.Store(int64(n))
	// The slot writes below happen before the Add that hands off the last
	// count, and the final Add observes all prior Adds, so finish reads
	// every slot safely.
	finish := func() {
		if err := errors.Join(errs...); err != nil {
			resolve(nil, err)
			return
		}
		resolve(vals, nil)
	}
	for i, r := range rs {
		if r.f == nil {
			errs[i] = r.err
			if remaining.Add(-1) == 0 {
				finish()
			}
			continue
		}
		i, r := i, r
		r.f.OnComplete(func(v any, err error) {
			vals[i], errs[i] = As[R](v, err)
			if remaining.Add(-1) == 0 {
				finish()
			}
		})
	}
	return &Result[[]R]{f: f}
}

// ErrWhenAnyEmpty is returned by WhenAny called with no inputs.
var ErrWhenAnyEmpty = errors.New("parc: WhenAny of zero results")

// WhenAny resolves with the first input to complete — success or failure —
// and cancels the contexts of the losing calls (their servers may still
// execute them; cancellation aborts the wait, not the work already
// dispatched). Abandoned losers still drain through their own futures, so
// nothing leaks.
func WhenAny[R any](rs ...*Result[R]) *Result[R] {
	f, resolve := core.NewPromise()
	out := &Result[R]{f: f}
	if len(rs) == 0 {
		resolve(nil, ErrWhenAnyEmpty)
		return out
	}
	var won atomic.Bool
	claim := func(idx int, v any, err error) {
		if !won.CompareAndSwap(false, true) {
			return
		}
		resolve(v, err)
		for j, l := range rs {
			if j != idx && l.cancel != nil {
				l.cancel()
			}
		}
	}
	for i, r := range rs {
		if won.Load() {
			break
		}
		if r.f == nil {
			claim(i, nil, r.err)
			continue
		}
		i := i
		r.f.OnComplete(func(v any, err error) { claim(i, v, err) })
	}
	return out
}
