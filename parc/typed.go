package parc

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"

	"repro/internal/core"
)

// Object is the typed handle of a parallel object whose implementation
// class is the Go type T. It wraps the dynamic Proxy with compile-time
// association to T: method names are checked against T's method set before
// anything touches the wire, every blocking operation takes a
// context.Context, and results come back through the generic Call /
// CallAsync helpers instead of `any`.
//
//	parc.Register[Counter](cl, "counter")
//	obj, err := parc.New[Counter](cl, "counter")
//	_ = obj.Send(ctx, "Add", 2)                      // asynchronous
//	total, err := parc.Call[int](ctx, obj, "Total")  // synchronous, typed
type Object[T any] struct {
	p *core.Proxy
}

// Register registers class on every node of the cluster with the canonical
// factory func() any { return new(T) }.
func Register[T any](c *Cluster, class string) {
	c.RegisterClass(class, func() any { return new(T) })
}

// RegisterAt registers class on a single node runtime; multi-process
// deployments call it on every node (the paper's per-node boot
// registration).
func RegisterAt[T any](rt *Runtime, class string) {
	rt.RegisterClass(class, func() any { return new(T) })
}

// New creates a parallel object of class on the cluster's entry node and
// returns its typed handle. The placement policy decides which node hosts
// it.
func New[T any](c *Cluster, class string) (*Object[T], error) {
	return NewAt[T](c.Entry(), class)
}

// NewAt creates a parallel object of class through rt's object manager.
func NewAt[T any](rt *Runtime, class string) (*Object[T], error) {
	p, err := rt.NewParallelObject(class)
	if err != nil {
		return nil, err
	}
	return &Object[T]{p: p}, nil
}

// Bind rebinds a ProxyRef received as a method argument into a typed
// handle on this node.
func Bind[T any](rt *Runtime, ref ProxyRef) *Object[T] {
	return &Object[T]{p: rt.Attach(ref)}
}

// Proxy exposes the underlying dynamic proxy (the escape hatch to the
// stringly-typed API).
func (o *Object[T]) Proxy() *Proxy { return o.p }

// Ref returns a wire-encodable reference other nodes can Bind.
func (o *Object[T]) Ref() ProxyRef { return o.p.Ref() }

// Class returns the object's registered class name.
func (o *Object[T]) Class() string { return o.p.Class() }

// String implements fmt.Stringer.
func (o *Object[T]) String() string { return o.p.String() }

// Send performs an asynchronous method call with no result (the paper's
// asynchronous calls), subject to method-call aggregation on remote
// objects. The method name is validated against T before sending; an error
// is returned only for immediate failures (unknown method, ctx already
// done, object destroyed) — execution errors flow to Err.
func (o *Object[T]) Send(ctx context.Context, method string, args ...any) error {
	if err := checkMethod[T](method); err != nil {
		return err
	}
	return o.p.PostCtx(ctx, method, args...)
}

// Invoke performs a synchronous method call returning a dynamically typed
// result; prefer the generic Call helper, which converts it. It is ordered
// after all previously sent asynchronous calls on this handle.
func (o *Object[T]) Invoke(ctx context.Context, method string, args ...any) (any, error) {
	if err := checkMethod[T](method); err != nil {
		return nil, err
	}
	return o.p.InvokeCtx(ctx, method, args...)
}

// Wait blocks until every asynchronous call sent on this handle has
// executed, or ctx ends (the calls keep draining in the background).
func (o *Object[T]) Wait(ctx context.Context) error { return o.p.WaitCtx(ctx) }

// Err returns the first error produced by an asynchronous call, if any.
// Call it after Wait to check a stream of Sends.
func (o *Object[T]) Err() error { return o.p.AsyncErr() }

// Destroy releases the parallel object.
func (o *Object[T]) Destroy(ctx context.Context) error { return o.p.DestroyCtx(ctx) }

// Migrate live-migrates the parallel object to cluster node toNode: the
// mailbox pauses and drains, the exported state travels to the new host,
// and a forwarding tombstone re-routes stale callers (including other
// handles to the same object) transparently. This handle follows the move
// immediately; asynchronous calls sent before Migrate are flushed first,
// so the state that travels includes them.
func (o *Object[T]) Migrate(ctx context.Context, toNode int) error {
	return o.p.MigrateCtx(ctx, toNode)
}

// Call performs a synchronous method call on a typed handle and converts
// the result to R, applying the wire layer's canonical conversions. The
// method name is validated against T's method set before the call leaves
// the node. (Call is a function rather than a method because Go methods
// cannot introduce the result type parameter R.)
func Call[R any, T any](ctx context.Context, o *Object[T], method string, args ...any) (R, error) {
	var zero R
	if err := checkMethod[T](method); err != nil {
		return zero, err
	}
	return As[R](o.p.InvokeCtx(ctx, method, args...))
}

// CallAsync starts a synchronous-style call without blocking and returns a
// typed future (the delegate BeginInvoke pattern of the paper's Fig. 4).
// The call rides the completion path: no goroutine parks per outstanding
// Result, and Then/Catch continuations chain on reply arrival. The
// returned Result owns a derived context, which WhenAny uses to cancel
// the losing calls.
func CallAsync[R any, T any](ctx context.Context, o *Object[T], method string, args ...any) *Result[R] {
	if err := checkMethod[T](method); err != nil {
		return &Result[R]{err: err}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	f := o.p.InvokeAsyncCtx(cctx, method, args...)
	// Release the derived context as soon as the call resolves, so a
	// parent with a deadline does not accumulate dead timer children.
	f.OnComplete(func(any, error) { cancel() })
	return &Result[R]{f: f, cancel: cancel}
}

// Result is the typed future returned by CallAsync.
type Result[R any] struct {
	f      *Future
	cancel context.CancelFunc // cancels the underlying call; may be nil
	err    error              // immediate failure; the call never started

	// once memoizes the converted outcome: repeated Get calls return the
	// same (value, error) pair, including after an error — the underlying
	// future resolves exactly once, and so does its typed view.
	once sync.Once
	val  R
	rerr error
}

// Get blocks until the call completes (or ctx ends) and converts the
// result to R. Repeated calls are idempotent: every Get after the first
// returns the identical value and error. A Get abandoned because ctx
// ended returns ctx.Err() without latching anything — the call keeps
// running and a later Get still observes its outcome.
func (r *Result[R]) Get(ctx context.Context) (R, error) {
	var zero R
	if r.f == nil {
		return zero, r.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() != nil {
		select {
		case <-r.f.Done():
		case <-ctx.Done():
			// Check completion once more: a future resolved between the
			// select's two ready cases should win over the ctx error.
			select {
			case <-r.f.Done():
			default:
				return zero, ctx.Err()
			}
		}
	}
	r.once.Do(func() {
		v, err := r.f.Get() // completed; returns immediately
		r.val, r.rerr = As[R](v, err)
	})
	return r.val, r.rerr
}

// Done returns a channel closed when the call completes.
func (r *Result[R]) Done() <-chan struct{} {
	if r.f == nil {
		return closedChan
	}
	return r.f.Done()
}

var closedChan = func() chan struct{} {
	c := make(chan struct{})
	close(c)
	return c
}()

// checkMethod fails fast, before any network traffic, when method is not
// in *T's method set; the error names the candidates and wraps
// ErrNoSuchMethod.
func checkMethod[T any](method string) error {
	t := reflect.TypeOf((*T)(nil))
	if _, ok := t.MethodByName(method); ok {
		return nil
	}
	names := make([]string, 0, t.NumMethod())
	for i := 0; i < t.NumMethod(); i++ {
		names = append(names, t.Method(i).Name)
	}
	candidates := "no exported methods"
	if len(names) > 0 {
		candidates = "exported methods: " + strings.Join(names, ", ")
	}
	return fmt.Errorf("parc: %s has no method %q (%s): %w", t.Elem(), method, candidates, ErrNoSuchMethod)
}
