package parc

import (
	"context"

	"repro/internal/errs"
)

// Typed error taxonomy. Every failure surfaced by the runtime wraps one of
// these sentinels (with %w, including across remoting hops, where the wire
// envelope carries the sentinel's identity), so callers branch with
// errors.Is instead of string matching:
//
//	if errors.Is(err, parc.ErrNodeDown) { retryElsewhere() }
var (
	// ErrNoSuchMethod: the method name did not resolve on the target
	// class — raised client-side by the typed API and server-side by the
	// dispatcher.
	ErrNoSuchMethod = errs.ErrNoSuchMethod
	// ErrNoSuchClass: the class was never registered on the node asked to
	// instantiate it.
	ErrNoSuchClass = errs.ErrNoSuchClass
	// ErrNodeDown: the hosting node could not be reached (dial or I/O
	// failure on the remoting channel).
	ErrNodeDown = errs.ErrNodeDown
	// ErrObjectDestroyed: the parallel object was destroyed (or its lease
	// expired) before the call executed.
	ErrObjectDestroyed = errs.ErrObjectDestroyed
	// ErrObjectMoved: the parallel object live-migrated to another node.
	// Proxies re-route and retry transparently, so user code normally
	// never sees this; it surfaces only when a forward cannot be followed
	// (for example the whole tombstone chain is gone).
	ErrObjectMoved = errs.ErrObjectMoved
	// ErrBadConversion: a dynamically typed result could not be converted
	// to the requested static type (see As).
	ErrBadConversion = errs.ErrBadConversion
	// ErrOverloaded: the target object's bounded mailbox was full (see
	// WithMailboxBound) and the call was shed without executing. Unlike
	// ErrObjectMoved / ErrNodeDown the runtime does not retry it
	// transparently — it is the admission-control signal. Retry with
	// jittered exponential backoff, or spread the work across more
	// objects or nodes. Survives the wire in both reply envelopes.
	ErrOverloaded = errs.ErrOverloaded
	// ErrCanceled aliases context.Canceled: the caller's context was
	// canceled while the call was queued or in flight.
	ErrCanceled = context.Canceled
	// ErrDeadlineExceeded aliases context.DeadlineExceeded: the caller's
	// deadline expired locally or on the hosting node.
	ErrDeadlineExceeded = context.DeadlineExceeded
)
