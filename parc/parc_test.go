package parc_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/parc"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) Add(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += v
}

func (c *counter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Values() []int { return []int{c.Total()} }

func TestClusterLifecycle(t *testing.T) {
	cl, err := parc.StartCluster(parc.WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Size() != 2 {
		t.Fatalf("Size = %d", cl.Size())
	}
	cl.RegisterClass("counter", func() any { return &counter{} })
	p, err := cl.Entry().NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	p.Post("Add", 5)
	got, err := p.Invoke("Total")
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("Total = %v", got)
	}
}

func TestClusterDefaultsToOneNode(t *testing.T) {
	cl, err := parc.StartCluster()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Size() != 1 {
		t.Errorf("Size = %d, want 1", cl.Size())
	}
}

func TestEthernet100Shape(t *testing.T) {
	p := parc.Ethernet100()
	if p.Zero() {
		t.Error("testbed network should not be a no-op")
	}
}

func TestAs(t *testing.T) {
	got, err := parc.As[int](int64(7), nil)
	if err != nil || got != 7 {
		t.Errorf("As[int] = %v, %v", got, err)
	}
	gs, err := parc.As[[]int]([]any{1, 2}, nil)
	if err != nil || len(gs) != 2 || gs[1] != 2 {
		t.Errorf("As[[]int] = %v, %v", gs, err)
	}
	if _, err := parc.As[int]("nope", nil); err == nil {
		t.Error("As should fail on mismatched types")
	}
	// Errors pass through untouched.
	if _, err := parc.As[int](nil, errSentinel); err != errSentinel {
		t.Errorf("error not propagated: %v", err)
	}
}

var errSentinel = &sentinelErr{}

type sentinelErr struct{}

func (*sentinelErr) Error() string { return "sentinel" }

func TestServeNodeTCP(t *testing.T) {
	// Two real TCP nodes on loopback: the multi-process deployment path,
	// exercised in-process.
	n0, err := parc.ServeNode(parc.WithNodeID(0), parc.WithListen("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := parc.ServeNode(parc.WithNodeID(1), parc.WithListen("127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	addrs := []string{n0.Addr(), n1.Addr()}
	if err := n0.JoinCluster(addrs); err != nil {
		t.Fatal(err)
	}
	if err := n1.JoinCluster(addrs); err != nil {
		t.Fatal(err)
	}
	n0.RegisterClass("counter", func() any { return &counter{} })
	n1.RegisterClass("counter", func() any { return &counter{} })

	// Force remote placement to cross real TCP.
	created := 0
	for i := 0; i < 4; i++ {
		p, err := n0.NewParallelObject("counter")
		if err != nil {
			t.Fatal(err)
		}
		p.Post("Add", i)
		if got, err := p.Invoke("Total"); err != nil || got != i {
			t.Fatalf("object %d: Total = %v, %v", i, got, err)
		}
		if !p.IsLocal() {
			created++
		}
	}
	if created == 0 {
		t.Error("round robin never placed remotely over TCP")
	}
}

// blocker parks calls until released, so tests can fill a bounded mailbox.
type blocker struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blocker) Block() int {
	b.entered <- struct{}{}
	<-b.release
	return 1
}

func (b *blocker) Quick() int { return 2 }

func TestWithMailboxBoundShedsOverload(t *testing.T) {
	// End-to-end admission control through the public API: a bounded
	// mailbox on a busy object fast-fails extra calls with a wire-borne
	// error that still satisfies errors.Is(err, parc.ErrOverloaded).
	const bound = 2
	cl, err := parc.StartCluster(parc.WithNodes(1), parc.WithMailboxBound(bound))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	b := &blocker{entered: make(chan struct{}, 8), release: make(chan struct{})}
	defer func() {
		select {
		case <-b.release:
		default:
			close(b.release)
		}
	}()
	cl.RegisterClass("blocker", func() any { return b })
	p, err := cl.Entry().NewParallelObject("blocker")
	if err != nil {
		t.Fatal(err)
	}
	// Occupy the actor, then fill the mailbox behind it.
	ctx := context.Background()
	go p.InvokeCtx(ctx, "Block")
	select {
	case <-b.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("Block never started")
	}
	for i := 0; i < bound; i++ {
		go p.InvokeCtx(ctx, "Block")
	}
	// The mailbox fills asynchronously; once full, calls shed. Before
	// that they may still be admitted — drive until the sentinel appears.
	deadline := time.Now().Add(5 * time.Second)
	for {
		// A short per-probe deadline: a probe admitted before the fill
		// calls land would otherwise park behind Block forever.
		probeCtx, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
		_, err = p.InvokeCtx(probeCtx, "Quick")
		cancel()
		if errors.Is(err, parc.ErrOverloaded) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never saw ErrOverloaded; last err = %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	st := cl.Entry().Stats()
	if st.MailboxSheds < 1 {
		t.Errorf("Stats().MailboxSheds = %d, want >= 1", st.MailboxSheds)
	}
	if st.OverloadGrade != parc.OverloadShedding {
		t.Errorf("Stats().OverloadGrade = %v, want OverloadShedding", st.OverloadGrade)
	}
	close(b.release)
}
