package parc_test

import (
	"sync"
	"testing"

	"repro/parc"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) Add(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += v
}

func (c *counter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) Values() []int { return []int{c.Total()} }

func TestClusterLifecycle(t *testing.T) {
	cl, err := parc.NewCluster(parc.ClusterConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Size() != 2 {
		t.Fatalf("Size = %d", cl.Size())
	}
	cl.RegisterClass("counter", func() any { return &counter{} })
	p, err := cl.Entry().NewParallelObject("counter")
	if err != nil {
		t.Fatal(err)
	}
	p.Post("Add", 5)
	got, err := p.Invoke("Total")
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("Total = %v", got)
	}
}

func TestClusterDefaultsToOneNode(t *testing.T) {
	cl, err := parc.NewCluster(parc.ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Size() != 1 {
		t.Errorf("Size = %d, want 1", cl.Size())
	}
}

func TestEthernet100Shape(t *testing.T) {
	p := parc.Ethernet100()
	if p.Zero() {
		t.Error("testbed network should not be a no-op")
	}
}

func TestAs(t *testing.T) {
	got, err := parc.As[int](int64(7), nil)
	if err != nil || got != 7 {
		t.Errorf("As[int] = %v, %v", got, err)
	}
	gs, err := parc.As[[]int]([]any{1, 2}, nil)
	if err != nil || len(gs) != 2 || gs[1] != 2 {
		t.Errorf("As[[]int] = %v, %v", gs, err)
	}
	if _, err := parc.As[int]("nope", nil); err == nil {
		t.Error("As should fail on mismatched types")
	}
	// Errors pass through untouched.
	if _, err := parc.As[int](nil, errSentinel); err != errSentinel {
		t.Errorf("error not propagated: %v", err)
	}
}

var errSentinel = &sentinelErr{}

type sentinelErr struct{}

func (*sentinelErr) Error() string { return "sentinel" }

func TestStartNodeTCP(t *testing.T) {
	// Two real TCP nodes on loopback: the multi-process deployment path,
	// exercised in-process.
	n0, err := parc.StartNode(parc.NodeConfig{NodeID: 0, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer n0.Close()
	n1, err := parc.StartNode(parc.NodeConfig{NodeID: 1, Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	addrs := []string{n0.Addr(), n1.Addr()}
	if err := n0.JoinCluster(addrs); err != nil {
		t.Fatal(err)
	}
	if err := n1.JoinCluster(addrs); err != nil {
		t.Fatal(err)
	}
	n0.RegisterClass("counter", func() any { return &counter{} })
	n1.RegisterClass("counter", func() any { return &counter{} })

	// Force remote placement to cross real TCP.
	created := 0
	for i := 0; i < 4; i++ {
		p, err := n0.NewParallelObject("counter")
		if err != nil {
			t.Fatal(err)
		}
		p.Post("Add", i)
		if got, err := p.Invoke("Total"); err != nil || got != i {
			t.Fatalf("object %d: Total = %v, %v", i, got, err)
		}
		if !p.IsLocal() {
			created++
		}
	}
	if created == 0 {
		t.Error("round robin never placed remotely over TCP")
	}
}
