// Support surface for parcgen-generated code. The preprocessor's output
// (typed POs, invoker thunks and wire codecs) must compile against the
// public API only, so the pieces of the internal runtime it needs are
// re-exported here.
package parc

import (
	"repro/internal/dispatch"
	"repro/internal/wire"
)

// Invoker is a generated dispatch thunk: it executes one method on obj with
// decoded wire arguments, binding them with type assertions instead of
// reflection. See RegisterInvokers.
type Invoker = dispatch.Invoker

// WireEncoder is the streaming encode surface generated MarshalWire
// methods write to.
type WireEncoder = wire.Encoder

// WireDecoder is the streaming decode surface generated UnmarshalWire
// methods read from.
type WireDecoder = wire.Decoder

// RegisterInvokers installs generated invoker thunks for the concrete type
// of sample; the runtime's dispatcher (both the local SCOOPP call path and
// the remoting server) prefers them over reflective invocation. parcgen
// emits the call from an init function in the generated file.
func RegisterInvokers(sample any, m map[string]Invoker) {
	dispatch.RegisterInvokers(sample, m)
}

// RegisterWireCodec registers the parcgen-generated binfmt codec of T under
// name, enabling the zero-reflection serialisation fast path for T on this
// node. The type is also registered reflectively under the same name, so
// peers without generated code interoperate.
func RegisterWireCodec[T any](name string) {
	wire.RegisterGeneratedCodec[T](name)
}

// Arg binds args[i] to T for a generated thunk: a type assertion on the
// fast path, the wire conversion rules on mismatch. obj and method only
// shape the error message.
func Arg[T any](obj any, method string, args []any, i int) (T, error) {
	v, err := dispatch.Arg[T](args, i)
	if err != nil {
		return v, dispatch.BadArg(obj, method, i, err)
	}
	return v, nil
}

// BadArity reports an argument-count mismatch from a generated thunk.
func BadArity(obj any, method string, got, want int) error {
	return dispatch.BadArity(obj, method, got, want)
}
