package parc

import (
	"context"

	"repro/internal/core"
)

// This file holds the parallel skeletons of the ROADMAP's "typed dataflow
// combinators and parallel skeletons" item: Scatter/Gather, MapReduce and
// Pipeline over a Group of parallel objects. A skeleton round issues every
// member's call through the completion-driven async path, so the calls to
// each destination node coalesce into batched frames on that peer's lane
// (one SendBatch per peer per writer pass, bound handles and pooled
// encoders reused) instead of paying one synchronous round trip — or one
// parked goroutine — per element.

// Group is a set of typed parallel objects treated as one data-parallel
// worker pool, the unit the skeletons operate over. Members are usually
// spread across the cluster by the placement policy.
type Group[T any] struct {
	objs []*Object[T]
}

// NewGroup creates n parallel objects of class through the cluster's entry
// node — the placement policy spreads them over the nodes — and returns
// them as a group. On error the already-created members are destroyed.
func NewGroup[T any](c *Cluster, class string, n int) (*Group[T], error) {
	g := &Group[T]{objs: make([]*Object[T], 0, n)}
	for i := 0; i < n; i++ {
		o, err := New[T](c, class)
		if err != nil {
			g.Destroy(context.Background()) //nolint:errcheck // best-effort unwind
			return nil, err
		}
		g.objs = append(g.objs, o)
	}
	return g, nil
}

// GroupOf wraps existing handles as a group.
func GroupOf[T any](objs ...*Object[T]) *Group[T] {
	return &Group[T]{objs: objs}
}

// Size returns the number of members.
func (g *Group[T]) Size() int { return len(g.objs) }

// Object returns member i.
func (g *Group[T]) Object(i int) *Object[T] { return g.objs[i] }

// Destroy releases every member, returning the first error.
func (g *Group[T]) Destroy(ctx context.Context) error {
	var first error
	for _, o := range g.objs {
		if err := o.Destroy(ctx); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Scatter issues one asynchronous call per member — argsFor(i) supplies
// member i's arguments — and returns the typed futures in member order.
// The whole round is submitted before anything blocks, which is what lets
// per-peer batching collapse the frames: on a 3-node group a 30-element
// scatter is three batched writes, not thirty round trips.
func Scatter[R any, T any](ctx context.Context, g *Group[T], method string, argsFor func(i int) []any) []*Result[R] {
	rs := make([]*Result[R], g.Size())
	for i := range rs {
		rs[i] = CallAsync[R](ctx, g.objs[i], method, argsFor(i)...)
	}
	return rs
}

// Gather collects a scatter round: it blocks until every future resolves
// and returns the values in member order, or the joined errors.
func Gather[R any](ctx context.Context, rs []*Result[R]) ([]R, error) {
	return WhenAll(rs...).Get(ctx)
}

// MapReduce scatters method over the group and folds the gathered results
// in member order: acc = combine(acc, result[i]), starting from zero. The
// fold is sequential and deterministic — combine need not be commutative,
// only the partitioning must not care which member computed which part.
func MapReduce[A any, R any, T any](ctx context.Context, g *Group[T], method string, argsFor func(i int) []any, zero A, combine func(A, R) A) (A, error) {
	vals, err := Gather(ctx, Scatter[R](ctx, g, method, argsFor))
	if err != nil {
		var z A
		return z, err
	}
	acc := zero
	for _, v := range vals {
		acc = combine(acc, v)
	}
	return acc, nil
}

// Pipeline streams items through the group as stages: item k enters member
// 0, whose result feeds member 1, and so on; the returned futures resolve
// to the last member's output, in item order. Stage k+1's call for an item
// is issued from stage k's completion — the whole pipeline advances on
// reply arrivals with no goroutine per item in flight, and different items
// occupy different stages concurrently.
func Pipeline[R any, T any](ctx context.Context, g *Group[T], method string, items []any) []*Result[R] {
	out := make([]*Result[R], len(items))
	for k, item := range items {
		out[k] = pipeOne[R](ctx, g, method, item)
	}
	return out
}

// pipeOne chains one item through every stage.
func pipeOne[R any, T any](ctx context.Context, g *Group[T], method string, item any) *Result[R] {
	if g.Size() == 0 {
		return &Result[R]{err: ErrWhenAnyEmpty}
	}
	cur := CallAsync[any](ctx, g.objs[0], method, item)
	for s := 1; s < g.Size(); s++ {
		cur = thenCall(ctx, cur, g.objs[s], method)
	}
	f, resolve := core.NewPromise()
	if cur.f == nil {
		resolve(nil, cur.err)
	} else {
		cur.f.OnComplete(resolve)
	}
	return &Result[R]{f: f, cancel: cur.cancel}
}

// thenCall flat-maps a future into the next stage's call: when prev
// resolves, the stage call is issued from the completion path and the
// returned future adopts its outcome.
func thenCall[T any](ctx context.Context, prev *Result[any], o *Object[T], method string) *Result[any] {
	f, resolve := core.NewPromise()
	deliver := func(v any, err error) {
		if err != nil {
			resolve(nil, err)
			return
		}
		next := CallAsync[any](ctx, o, method, v)
		if next.f == nil {
			resolve(nil, next.err)
			return
		}
		next.f.OnComplete(resolve)
	}
	if prev.f == nil {
		deliver(nil, prev.err)
	} else {
		prev.f.OnComplete(deliver)
	}
	return &Result[any]{f: f, cancel: prev.cancel}
}
