package parc

import (
	"context"
	"errors"
	"testing"
	"time"
)

// Ledger is a migratable class: exported state so live migration carries
// it across nodes.
type Ledger struct {
	Entries []int64
}

func (l *Ledger) Add(v int64) { l.Entries = append(l.Entries, v) }

func (l *Ledger) Count() int { return len(l.Entries) }

// TestObjectMigrate: the typed handle's Migrate moves the live object,
// state and all, and keeps serving through the same handle.
func TestObjectMigrate(t *testing.T) {
	cl, err := StartCluster(WithNodes(3), WithPlacement(&pinNode{node: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	Register[Ledger](cl, "ledger")
	obj, err := New[Ledger](cl, "ledger")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := int64(0); i < 4; i++ {
		if err := obj.Send(ctx, "Add", i); err != nil {
			t.Fatal(err)
		}
	}
	if err := obj.Migrate(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if got := cl.Node(2).Load(); got != 1 {
		t.Errorf("node 2 load = %d after migrate", got)
	}
	n, err := Call[int](ctx, obj, "Count")
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Errorf("Count after migrate = %d, want 4", n)
	}
	// A second handle that still routes at the old node follows the
	// tombstone transparently.
	stale := Bind[Ledger](cl.Node(0), obj.Ref())
	if n, err := Call[int](ctx, stale, "Count"); err != nil || n != 4 {
		t.Errorf("stale handle after migrate: %d, %v", n, err)
	}
	if err := obj.Err(); err != nil {
		t.Errorf("async err: %v", err)
	}
}

// pinNode forces placement onto one node.
type pinNode struct{ node int }

func (p *pinNode) Pick(self int, loads []NodeLoad) int { return p.node }

// TestClusterRebalanceOption: WithRebalance drains an overloaded node
// toward the mean without any explicit trigger, and WithHealthProbe keeps
// grading peers meanwhile.
func TestClusterRebalanceOption(t *testing.T) {
	cl, err := StartCluster(
		WithNodes(3),
		WithPlacement(&pinNode{node: 0}),
		WithHealthProbe(5*time.Millisecond),
		WithRebalance(10*time.Millisecond),
		WithLoadCacheTTL(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	Register[Ledger](cl, "ledger")
	objs := make([]*Object[Ledger], 9)
	for i := range objs {
		o, err := New[Ledger](cl, "ledger")
		if err != nil {
			t.Fatal(err)
		}
		objs[i] = o
	}
	if got := cl.Node(0).Load(); got != 9 {
		t.Fatalf("node 0 load = %d before rebalance", got)
	}
	deadline := time.Now().Add(5 * time.Second)
	for cl.Node(0).Load() > 3 {
		if time.Now().After(deadline) {
			t.Fatalf("automatic rebalance never drained node 0 (load %d)", cl.Node(0).Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx := context.Background()
	for i, o := range objs {
		if _, err := Call[int](ctx, o, "Count"); err != nil {
			t.Errorf("object %d after auto-rebalance: %v", i, err)
		}
	}
	if st := cl.Node(0).PeerStatuses(); st[1] != PeerAlive || st[2] != PeerAlive {
		t.Errorf("peer statuses = %v", st)
	}
}

// TestExplicitClusterRebalance: the one-shot Cluster.Rebalance entry
// point.
func TestExplicitClusterRebalance(t *testing.T) {
	cl, err := StartCluster(WithNodes(2), WithPlacement(&pinNode{node: 0}), WithLoadCacheTTL(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	Register[Ledger](cl, "ledger")
	for i := 0; i < 6; i++ {
		if _, err := New[Ledger](cl, "ledger"); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := cl.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if moved != 3 || cl.Node(0).Load() != 3 || cl.Node(1).Load() != 3 {
		t.Errorf("rebalance moved %d; loads %d/%d, want 3 and 3/3", moved, cl.Node(0).Load(), cl.Node(1).Load())
	}
}

// TestErrObjectMovedIdentity: the sentinel is part of the public taxonomy.
func TestErrObjectMovedIdentity(t *testing.T) {
	if !errors.Is(ErrObjectMoved, ErrObjectMoved) || ErrObjectMoved == nil {
		t.Fatal("ErrObjectMoved not usable as a sentinel")
	}
}
