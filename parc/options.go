package parc

import (
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/remoting"
	"repro/internal/threadpool"
	"repro/internal/transport"
)

// ChannelKind selects the remoting channel implementation (the paper's
// Fig. 8b comparison).
type ChannelKind = remoting.Kind

// Channel kinds.
const (
	// TCPChannel is the modern binary TCP channel (default): pooled
	// connections, one in-flight call per connection.
	TCPChannel = remoting.TCP
	// LegacyTCPChannel is the Mono 1.0.5-style unpooled chunked channel.
	LegacyTCPChannel = remoting.LegacyTCP
	// HTTPChannel is the SOAP/HTTP channel.
	HTTPChannel = remoting.HTTP
	// MultiplexedChannel pipelines many concurrent calls over one
	// long-lived connection per peer, with responses completing out of
	// order — the high-fan-out configuration; see WithMaxInFlight.
	MultiplexedChannel = remoting.Multiplexed
)

// CostModel injects 2005-era endpoint software costs (see package profile).
type CostModel = remoting.CostModel

// Option configures StartCluster or ServeNode. Options compose left to
// right; later options override earlier ones.
type Option func(*options)

type options struct {
	// cluster scope
	nodes   int
	network NetworkParams
	cost    CostModel
	// shared scope
	channel       ChannelKind
	maxInFlight   int
	muxLanes      int
	poolSize      int
	placement     PlacementPolicy
	agglomeration AgglomerationPolicy
	aggregation   AggregationConfig
	loadCacheTTL  time.Duration
	healthProbe   time.Duration
	rebalance     time.Duration
	mailboxBound  int
	shed          ShedPolicy
	retry         RetryPolicy
	idempotent    bool
	dedupPerObj   int
	// node scope
	nodeID int
	listen string
}

// WithNodes sets the cluster size (default 1).
func WithNodes(n int) Option { return func(o *options) { o.nodes = n } }

// WithNetwork shapes the simulated inter-node network; the zero value is an
// ideal network. Use Ethernet100 for the paper's testbed.
func WithNetwork(p NetworkParams) Option { return func(o *options) { o.network = p } }

// WithChannel selects the remoting channel implementation (default
// TCPChannel).
func WithChannel(k ChannelKind) Option { return func(o *options) { o.channel = k } }

// WithCost charges per-endpoint software costs on the channel.
func WithCost(m CostModel) Option { return func(o *options) { o.cost = m } }

// WithMaxInFlight bounds the number of concurrent in-flight calls per peer
// connection on the MultiplexedChannel; callers beyond the bound block
// until a slot frees (backpressure). 0 (the default) selects the channel's
// built-in default. Other channel kinds ignore it.
func WithMaxInFlight(n int) Option { return func(o *options) { o.maxInFlight = n } }

// WithMuxLanes sets how many multiplexed connections (lanes) the
// MultiplexedChannel opens per peer. Callers are striped across lanes by
// sequence number, so unrelated calls on different lanes never share a
// lock or a TCP stream — the many-core scaling knob. 0 (the default)
// selects min(GOMAXPROCS, 4); 1 restores the single-connection
// behaviour. Other channel kinds ignore it. WithMaxInFlight bounds each
// lane independently.
func WithMuxLanes(n int) Option { return func(o *options) { o.muxLanes = n } }

// WithPoolSize caps each node's concurrent request execution, modelling a
// bounded VM thread pool; 0 (the default) means unbounded.
func WithPoolSize(n int) Option { return func(o *options) { o.poolSize = n } }

// WithPlacement sets the policy distributing new parallel objects; the
// default is round-robin.
func WithPlacement(p PlacementPolicy) Option { return func(o *options) { o.placement = p } }

// WithAgglomeration sets the policy removing excess parallelism at creation
// time; the default never agglomerates.
func WithAgglomeration(p AgglomerationPolicy) Option { return func(o *options) { o.agglomeration = p } }

// WithAggregation enables method-call aggregation: asynchronous calls
// buffer until the batch reaches maxCalls invocations (values <= 1
// disable) or maxDelay elapses (0 means no timer).
func WithAggregation(maxCalls int, maxDelay time.Duration) Option {
	return func(o *options) {
		o.aggregation = AggregationConfig{MaxCalls: maxCalls, MaxDelay: maxDelay}
	}
}

// WithLoadCacheTTL bounds staleness of placement load data.
func WithLoadCacheTTL(d time.Duration) Option { return func(o *options) { o.loadCacheTTL = d } }

// WithHealthProbe has every node ping its peers at this interval, grading
// unresponsive peers suspect and then down. Down peers are excluded from
// placement and failover resolution until they answer again, so a dead
// node stops attracting new objects instead of costing every placement a
// timeout. 0 (the default) disables probing.
func WithHealthProbe(interval time.Duration) Option {
	return func(o *options) { o.healthProbe = interval }
}

// WithRebalance has every node periodically migrate parallel objects away
// while it is loaded above the cluster mean, choosing targets with the
// placement policy over the live load vector. Combine with WithHealthProbe
// so draining avoids down peers. 0 (the default) disables automatic
// rebalancing; Runtime.Rebalance and Cluster.Rebalance remain available
// for explicit triggers.
func WithRebalance(interval time.Duration) Option {
	return func(o *options) { o.rebalance = interval }
}

// WithMailboxBound caps the queued (not yet executing) calls of every
// parallel object's mailbox on each node. A full mailbox sheds instead of
// queueing without limit: the shed call fails fast with ErrOverloaded
// (which survives the wire, so remote callers see it too), keeping the
// latency of accepted calls bounded under overload. 0 (the default)
// keeps mailboxes unbounded. Shed victims are chosen by WithShedPolicy.
func WithMailboxBound(n int) Option { return func(o *options) { o.mailboxBound = n } }

// WithShedPolicy selects which call a full bounded mailbox sheds:
// ShedNewest (default) rejects the arriving call, ShedOldest evicts the
// oldest queued call and admits the arriving one. Only meaningful with
// WithMailboxBound.
func WithShedPolicy(p ShedPolicy) Option { return func(o *options) { o.shed = p } }

// RetryPolicy configures transparent retries of transient remote-call
// failures (node down, connection reset, overload sheds) with jittered
// exponential backoff and per-peer circuit breakers. The zero value
// disables retries; DefaultRetryPolicy is a sane starting point.
type RetryPolicy = remoting.RetryPolicy

// DefaultRetryPolicy returns the recommended retry configuration: 4
// attempts, 5ms base delay doubling to a 1s cap with 50% jitter, and
// per-peer breakers opening after 5 consecutive connection failures.
func DefaultRetryPolicy() RetryPolicy { return remoting.DefaultRetryPolicy() }

// WithRetry installs a retry policy on every node's channel: remote calls
// that fail with a retryable error (ErrNodeDown, connection resets,
// ErrOverloaded sheds — never application errors) are retried with
// jittered exponential backoff, honouring server retry-after hints and
// the call context's deadline budget. Per-peer circuit breakers fast-fail
// calls to peers whose connections keep dying, feeding the same health
// grading that routes placement around dead nodes. The zero policy
// (default) keeps the historical single-attempt behaviour.
func WithRetry(p RetryPolicy) Option { return func(o *options) { o.retry = p } }

// WithIdempotentCalls makes retried calls effectively-once: every
// outermost proxy call is stamped with an idempotency token that rides
// every wire attempt (channel retries, forward chasing, post-failover
// re-resolution), and hosting nodes remember recent replies per object so
// a retry of an already-executed call replays the recorded reply instead
// of executing again. The reply memory replicates with virtual-object
// state, so failover promotion preserves it. Costs one small LRU per
// hosted object (see WithDedupPerObject).
func WithIdempotentCalls() Option { return func(o *options) { o.idempotent = true } }

// WithDedupPerObject caps each hosted object's recorded-reply LRU used by
// WithIdempotentCalls (0 selects the default, 256). A token evicted
// before its retry arrives degrades that call to at-least-once.
func WithDedupPerObject(n int) Option { return func(o *options) { o.dedupPerObj = n } }

// WithNodeID sets this node's index in the cluster (ServeNode only).
func WithNodeID(id int) Option { return func(o *options) { o.nodeID = id } }

// WithListen sets the address a node serves on (ServeNode only; default
// "127.0.0.1:0"). The scheme picks the transport: a plain host:port pair
// listens on TCP, "unix://name" on a Unix domain socket, and
// "inproc://name" on the in-process loopback (co-located runtimes in one
// process, no serialization of the frame copy path).
func WithListen(addr string) Option { return func(o *options) { o.listen = addr } }

func buildOptions(opts []Option) options {
	o := options{nodes: 1, listen: "127.0.0.1:0"}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// StartCluster boots an in-process cluster (the test/bench topology; use
// ServeNode in each process for real multi-process TCP clusters):
//
//	cl, err := parc.StartCluster(
//		parc.WithNodes(3),
//		parc.WithNetwork(parc.Ethernet100()),
//		parc.WithAggregation(16, 0),
//	)
func StartCluster(opts ...Option) (*Cluster, error) {
	o := buildOptions(opts)
	inner, err := cluster.New(cluster.Options{
		Nodes:           o.nodes,
		ChannelKind:     o.channel,
		Net:             o.network,
		Cost:            o.cost,
		PoolSize:        o.poolSize,
		MaxInFlight:     o.maxInFlight,
		MuxLanes:        o.muxLanes,
		Placement:       o.placement,
		Agglomeration:   o.agglomeration,
		Aggregation:     o.aggregation,
		LoadCacheTTL:    o.loadCacheTTL,
		HealthProbe:     o.healthProbe,
		RebalanceEvery:  o.rebalance,
		MailboxBound:    o.mailboxBound,
		Shed:            o.shed,
		Retry:           o.retry,
		IdempotentCalls: o.idempotent,
		DedupPerObject:  o.dedupPerObj,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// ServeNode boots one TCP-backed node for multi-process deployments (each
// process calls ServeNode and the processes exchange addresses out of
// band; see cmd/parcnode). Call Runtime.JoinCluster with every node's
// address (same order everywhere) once all nodes are up.
//
//	rt, err := parc.ServeNode(parc.WithNodeID(1), parc.WithListen(":7070"))
func ServeNode(opts ...Option) (*Runtime, error) {
	o := buildOptions(opts)
	var ch *remoting.Channel
	// Auto routes by address scheme: unix:// and inproc:// listen
	// addresses select the local transports, anything else is TCP.
	net := transport.Auto{}
	switch o.channel {
	case LegacyTCPChannel:
		ch = remoting.NewLegacyTCPChannel(net)
	case HTTPChannel:
		ch = remoting.NewHTTPChannel(net)
	case MultiplexedChannel:
		ch = remoting.NewMultiplexedChannel(net)
	default:
		ch = remoting.NewTCPChannel(net)
	}
	ch.Cost = o.cost
	ch.MaxInFlight = o.maxInFlight
	ch.MuxLanes = o.muxLanes
	var pool *threadpool.Pool
	if o.poolSize > 0 {
		// The pool lives as long as the process; Runtime.Close leaves it
		// running so in-flight work can finish.
		pool = threadpool.New(o.poolSize, 0)
	}
	return core.Start(core.Config{
		NodeID:          o.nodeID,
		Channel:         ch,
		Pool:            pool,
		Placement:       o.placement,
		Agglomeration:   o.agglomeration,
		Aggregation:     o.aggregation,
		LoadCacheTTL:    o.loadCacheTTL,
		HealthProbe:     o.healthProbe,
		RebalanceEvery:  o.rebalance,
		MailboxBound:    o.mailboxBound,
		Shed:            o.shed,
		Retry:           o.retry,
		IdempotentCalls: o.idempotent,
		DedupPerObject:  o.dedupPerObj,
	}, o.listen)
}
