package parc_test

import (
	"context"
	"errors"
	"testing"

	"repro/parc"
)

// vCounter is a virtual class; exported state so replication snapshots
// carry it.
type vCounter struct {
	N int64
}

func (c *vCounter) Bump(v int64) int64 { c.N += v; return c.N }
func (c *vCounter) Total() int64       { return c.N }

// TestVirtualTypedRoundTrip: first call activates, handles from any node
// reach the same instance, and the ring owner agrees across nodes.
func TestVirtualTypedRoundTrip(t *testing.T) {
	ctx := context.Background()
	cl, err := parc.StartCluster(parc.WithNodes(3))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	parc.RegisterVirtual[vCounter](cl, "vcounter", parc.WithReplicas(1))

	obj, err := parc.Virtual[vCounter](ctx, cl, "vcounter", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parc.Call[int64](ctx, obj, "Bump", int64(5)); err != nil {
		t.Fatal(err)
	}

	// The same key resolved through a different node is the same instance.
	obj2, err := parc.VirtualAt[vCounter](ctx, cl.Node(1), "vcounter", "alice")
	if err != nil {
		t.Fatal(err)
	}
	total, err := parc.Call[int64](ctx, obj2, "Bump", int64(2))
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 {
		t.Errorf("Bump total = %d, want 7 (one instance per key)", total)
	}

	// A different key is a different instance.
	other, err := parc.Virtual[vCounter](ctx, cl, "vcounter", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := parc.Call[int64](ctx, other, "Total"); err != nil || n != 0 {
		t.Errorf("Total(bob) = %d, %v; want 0, nil", n, err)
	}

	if owner, ok := cl.VirtualOwner("vcounter", "alice"); !ok || owner < 0 || owner >= cl.Size() {
		t.Errorf("VirtualOwner = %d, %v; want a cluster node", owner, ok)
	}

	// Method names are still checked against T before the wire.
	if _, err := parc.Call[int64](ctx, obj, "Nope"); !errors.Is(err, parc.ErrNoSuchMethod) {
		t.Errorf("unknown method error = %v, want ErrNoSuchMethod", err)
	}
}

// TestVirtualRequiresRegistration: Virtual on a class registered with
// plain Register (not RegisterVirtual) fails.
func TestVirtualRequiresRegistration(t *testing.T) {
	cl, err := parc.StartCluster()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	parc.Register[vCounter](cl, "plain")
	if _, err := parc.Virtual[vCounter](context.Background(), cl, "plain", "k"); !errors.Is(err, parc.ErrNoSuchClass) {
		t.Errorf("Virtual on non-virtual class = %v, want ErrNoSuchClass", err)
	}
}
