package parc_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/parc"
)

// flaky is the combinator-test workload class: Echo succeeds, Fail errors
// after an optional delay, and Park blocks until its request context ends.
type flaky struct{}

// Echo returns its argument.
func (flaky) Echo(v int) int { return v }

// Fail sleeps millis and then errors with the given tag.
func (flaky) Fail(millis int, tag string) error {
	time.Sleep(time.Duration(millis) * time.Millisecond)
	return fmt.Errorf("flaky: %s", tag)
}

// Park blocks until the injected request context is cancelled.
func (flaky) Park(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

// startFlaky boots a 2-node cluster and returns one flaky object. Each
// object is one actor — method calls on it serialize — so tests that park
// a call (Park) must put it on its own object via newFlaky.
func startFlaky(t *testing.T) (*parc.Cluster, *parc.Object[flaky]) {
	t.Helper()
	cl, err := parc.StartCluster(parc.WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	parc.Register[flaky](cl, "flaky")
	return cl, newFlaky(t, cl)
}

func newFlaky(t *testing.T, cl *parc.Cluster) *parc.Object[flaky] {
	t.Helper()
	obj, err := parc.New[flaky](cl, "flaky")
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

// TestThenAfterResolved attaches a continuation to a Result that already
// completed: it must still run (inline, on the subscriber's goroutine) and
// feed the derived Result.
func TestThenAfterResolved(t *testing.T) {
	ctx := context.Background()
	_, obj := startFlaky(t)
	res := parc.CallAsync[int](ctx, obj, "Echo", 21)
	if v, err := res.Get(ctx); err != nil || v != 21 {
		t.Fatalf("Get = %d, %v; want 21, nil", v, err)
	}
	doubled := parc.Then(res, func(v int) (int, error) { return v * 2, nil })
	if v, err := doubled.Get(ctx); err != nil || v != 42 {
		t.Fatalf("Then after resolved = %d, %v; want 42, nil", v, err)
	}
}

// TestThenErrorSkipsAndCatchRecovers chains a failing continuation into a
// Catch: Then's error must skip further Thens and Catch must recover it.
func TestThenErrorSkipsAndCatchRecovers(t *testing.T) {
	ctx := context.Background()
	_, obj := startFlaky(t)
	boom := errors.New("boom")
	res := parc.CallAsync[int](ctx, obj, "Echo", 1)
	failed := parc.Then(res, func(int) (int, error) { return 0, boom })
	skipped := parc.Then(failed, func(int) (int, error) {
		t.Error("Then ran after an upstream error")
		return 0, nil
	})
	recovered := skipped.Catch(func(err error) (int, error) {
		if !errors.Is(err, boom) {
			t.Errorf("Catch saw %v, want boom", err)
		}
		return 99, nil
	})
	if v, err := recovered.Get(ctx); err != nil || v != 99 {
		t.Fatalf("Catch = %d, %v; want 99, nil", v, err)
	}
}

// TestContinuationPanicContained panics inside a Then: the derived Result
// must resolve with an error instead of crashing the completion goroutine.
func TestContinuationPanicContained(t *testing.T) {
	ctx := context.Background()
	_, obj := startFlaky(t)
	res := parc.CallAsync[int](ctx, obj, "Echo", 7)
	derived := parc.Then(res, func(int) (int, error) { panic("kaboom") })
	_, err := derived.Get(ctx)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic continuation: err = %v, want contained panic", err)
	}
}

// TestWhenAllErrorOrder fails two of three inputs — one slowly, one
// immediately (unknown method, which never starts) — and checks the joined
// error lists failures in input order, not completion order.
func TestWhenAllErrorOrder(t *testing.T) {
	ctx := context.Background()
	_, obj := startFlaky(t)
	slow := parc.CallAsync[any](ctx, obj, "Fail", 50, "slow-first")
	fast := parc.CallAsync[any](ctx, obj, "NoSuchMethod")
	ok := parc.CallAsync[any](ctx, obj, "Echo", 1)
	_, err := parc.WhenAll(slow, fast, ok).Get(ctx)
	if err == nil {
		t.Fatal("WhenAll with failures returned nil error")
	}
	msg := err.Error()
	i, j := strings.Index(msg, "slow-first"), strings.Index(msg, "NoSuchMethod")
	if i < 0 || j < 0 {
		t.Fatalf("joined error missing a failure: %q", msg)
	}
	if i > j {
		t.Fatalf("joined error out of input order: %q", msg)
	}
}

// TestWhenAllEmptyAndSuccess covers the zero-input case and in-order value
// collection when completions land out of order (a slow echo first in the
// input).
func TestWhenAllEmptyAndSuccess(t *testing.T) {
	ctx := context.Background()
	if vals, err := parc.WhenAll[int]().Get(ctx); err != nil || len(vals) != 0 {
		t.Fatalf("WhenAll() = %v, %v; want [], nil", vals, err)
	}
	_, obj := startFlaky(t)
	rs := make([]*parc.Result[int], 4)
	for i := range rs {
		rs[i] = parc.CallAsync[int](ctx, obj, "Echo", i*10)
	}
	vals, err := parc.WhenAll(rs...).Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*10 {
			t.Errorf("vals[%d] = %d, want %d", i, v, i*10)
		}
	}
}

// TestWhenAnyCancelsLosers races a fast echo against two Park calls that
// block until their contexts end. WhenAny must resolve with the echo and
// cancel the losers' contexts, so their Results drain promptly instead of
// leaking parked calls. Two test-design constraints: each call gets its
// own object (calls on one object serialize through its actor, so a Park
// sharing the winner's object would block the Echo behind it forever), and
// the losers run under a deadline — cancellation aborts only the client's
// wait, while a deadline also travels to the hosting node and releases the
// parked server actor so cluster Close is not left waiting on it.
func TestWhenAnyCancelsLosers(t *testing.T) {
	ctx := context.Background()
	cl, obj := startFlaky(t)
	parkCtx, parkCancel := context.WithTimeout(ctx, 2*time.Second)
	defer parkCancel()
	loser1 := parc.CallAsync[any](parkCtx, newFlaky(t, cl), "Park")
	loser2 := parc.CallAsync[any](parkCtx, newFlaky(t, cl), "Park")
	winner := parc.CallAsync[any](ctx, obj, "Echo", 77)
	v, err := parc.WhenAny(loser1, winner, loser2).Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v.(int); got != 77 {
		t.Fatalf("WhenAny = %v, want 77", v)
	}
	// The losers' contexts were cancelled by the claim; their futures must
	// complete with a context error without anyone releasing the Park.
	drain, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	for i, l := range []*parc.Result[any]{loser1, loser2} {
		_, err := l.Get(drain)
		if err == nil {
			t.Errorf("loser %d drained without error; want cancellation", i)
			continue
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("loser %d drained with %v; want a context error", i, err)
		}
		if drain.Err() != nil {
			t.Errorf("loser %d did not drain until the test gave up waiting", i)
		}
	}
}

// TestWhenAnyEdgeCases covers the empty call and an immediate failure
// (unknown method) claiming the race when it is the first to complete.
func TestWhenAnyEdgeCases(t *testing.T) {
	ctx := context.Background()
	if _, err := parc.WhenAny[int]().Get(ctx); !errors.Is(err, parc.ErrWhenAnyEmpty) {
		t.Fatalf("WhenAny() err = %v, want ErrWhenAnyEmpty", err)
	}
	_, obj := startFlaky(t)
	bad := parc.CallAsync[int](ctx, obj, "NoSuchMethod")
	slow := parc.CallAsync[int](ctx, obj, "Echo", 5)
	if _, err := parc.WhenAny(bad, slow).Get(ctx); err == nil {
		// The immediate failure is claimed synchronously while slow is
		// still in flight; first completion wins even when it is an error.
		t.Fatal("WhenAny with immediate failure first returned nil error")
	}
}

// TestResultGetIdempotent re-reads a Result after both outcomes: an error
// result must return the same error on every Get, and a Get aborted by the
// caller's context must not latch — the next Get sees the real value.
func TestResultGetIdempotent(t *testing.T) {
	ctx := context.Background()
	_, obj := startFlaky(t)

	failed := parc.CallAsync[any](ctx, obj, "Fail", 0, "persistent")
	_, err1 := failed.Get(ctx)
	_, err2 := failed.Get(ctx)
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("error Get not idempotent: %v then %v", err1, err2)
	}

	slow := parc.CallAsync[int](ctx, obj, "Echo", 123)
	expired, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := slow.Get(expired); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("expired Get err = %v, want ctx error or completed value", err)
	}
	if v, err := slow.Get(ctx); err != nil || v != 123 {
		t.Fatalf("Get after expired Get = %d, %v; want 123, nil", v, err)
	}
}

// TestCombinatorStress drives deep Then chains from many goroutines at
// once, so inline continuations overflow maxInlineDepth and hop to the
// threadpool while other chains resolve inline — the interleaving the race
// detector runs in CI.
func TestCombinatorStress(t *testing.T) {
	ctx := context.Background()
	_, obj := startFlaky(t)
	const callers, chains, depth = 8, 16, 20
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rs := make([]*parc.Result[int], chains)
			for i := range rs {
				r := parc.CallAsync[int](ctx, obj, "Echo", c*chains+i)
				for d := 0; d < depth; d++ {
					r = parc.Then(r, func(v int) (int, error) { return v + 1, nil })
				}
				rs[i] = r
			}
			vals, err := parc.WhenAll(rs...).Get(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			for i, v := range vals {
				if v != c*chains+i+depth {
					t.Errorf("caller %d chain %d = %d, want %d", c, i, v, c*chains+i+depth)
				}
			}
		}(c)
	}
	wg.Wait()
}
