package parc

import (
	"context"

	"repro/internal/core"
)

// VirtualConfig is the per-class policy of a virtual class; build one with
// the VirtualOption helpers.
type VirtualConfig = core.VirtualConfig

// VirtualOption configures a virtual class registration.
type VirtualOption func(*VirtualConfig)

// WithReplicas has the owner of each instance stream passive state
// snapshots to its n ring-successor nodes, so a replica can be promoted
// (state intact) when the owner dies. 0 — the default — disables
// replication: failover re-activates a fresh instance.
func WithReplicas(n int) VirtualOption {
	return func(cfg *VirtualConfig) { cfg.Replicas = n }
}

// WithSnapshotEvery ships a replica snapshot every n applied calls.
// Values <= 1 (the default) replicate synchronously: each call's reply
// waits for at least one replica acknowledgement, so no acknowledged call
// is lost to a failover. Larger values ship asynchronously and replicas
// may trail the owner by up to n calls.
func WithSnapshotEvery(n int) VirtualOption {
	return func(cfg *VirtualConfig) { cfg.SnapshotEvery = n }
}

// RegisterVirtual registers class as a virtual class on every node of the
// cluster: instances are addressed by key through Virtual, live on their
// consistent-hash ring owner, and are activated by their first call — no
// explicit New. Every node of a deployment must register the same virtual
// classes with the same options.
func RegisterVirtual[T any](c *Cluster, class string, opts ...VirtualOption) {
	c.RegisterVirtualClass(class, func() any { return new(T) }, virtualConfig(opts))
}

// RegisterVirtualAt registers a virtual class on a single node runtime;
// multi-process deployments call it on every node.
func RegisterVirtualAt[T any](rt *Runtime, class string, opts ...VirtualOption) {
	rt.RegisterVirtualClass(class, func() any { return new(T) }, virtualConfig(opts))
}

func virtualConfig(opts []VirtualOption) VirtualConfig {
	var cfg VirtualConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// Virtual returns the typed handle of the virtual object (class, key),
// activating it on its ring owner if no live instance exists yet. Handles
// are cheap; the instance itself is cluster-wide singular.
func Virtual[T any](ctx context.Context, c *Cluster, class, key string) (*Object[T], error) {
	return VirtualAt[T](ctx, c.Entry(), class, key)
}

// VirtualAt is Virtual resolved through a specific node's runtime.
func VirtualAt[T any](ctx context.Context, rt *Runtime, class, key string) (*Object[T], error) {
	p, err := rt.VirtualObjectCtx(ctx, class, key)
	if err != nil {
		return nil, err
	}
	return &Object[T]{p: p}, nil
}

// RegisterVirtualClass registers a virtual class on every node from a
// dynamic factory; the generic RegisterVirtual derives the factory from
// the type itself.
func (c *Cluster) RegisterVirtualClass(name string, factory func() any, cfg VirtualConfig) {
	c.inner.RegisterVirtualClass(name, factory, cfg)
}

// VirtualOwner reports which node the cluster's consistent-hash ring
// assigns ownership of (class, key) — an observability hook, mainly for
// tests and benchmarks that need to aim a failure at the right node.
func (c *Cluster) VirtualOwner(class, key string) (int, bool) {
	return c.Entry().VirtualOwner(class, key)
}
