package parc_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/parc"
)

// slowCounter is a context-aware parallel-object class: Sleep honours its
// injected context, so a caller's deadline aborts it on the hosting node.
type slowCounter struct {
	mu sync.Mutex
	n  int
}

func (c *slowCounter) Add(v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += v
}

func (c *slowCounter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Sleep blocks for d or until the injected request context ends.
func (c *slowCounter) Sleep(ctx context.Context, millis int) error {
	select {
	case <-time.After(time.Duration(millis) * time.Millisecond):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// startTyped boots a 2-node cluster with a registered slowCounter class and
// returns a typed handle to a fresh object.
func startTyped(t *testing.T, opts ...parc.Option) (*parc.Cluster, *parc.Object[slowCounter]) {
	t.Helper()
	cl, err := parc.StartCluster(append([]parc.Option{parc.WithNodes(2)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	parc.Register[slowCounter](cl, "slow")
	obj, err := parc.New[slowCounter](cl, "slow")
	if err != nil {
		t.Fatal(err)
	}
	return cl, obj
}

func TestObjectCallHappyPath(t *testing.T) {
	ctx := context.Background()
	_, obj := startTyped(t)
	for v := 1; v <= 4; v++ {
		if err := obj.Send(ctx, "Add", v); err != nil {
			t.Fatal(err)
		}
	}
	total, err := parc.Call[int](ctx, obj, "Total")
	if err != nil {
		t.Fatal(err)
	}
	if total != 10 {
		t.Errorf("Total = %d, want 10", total)
	}
	// Typed future path.
	res := parc.CallAsync[int](ctx, obj, "Total")
	if total, err = res.Get(ctx); err != nil || total != 10 {
		t.Errorf("CallAsync Total = %d, %v; want 10, nil", total, err)
	}
	if err := obj.Err(); err != nil {
		t.Errorf("async error stream: %v", err)
	}
}

func TestObjectRoundRobinPlacementRemote(t *testing.T) {
	ctx := context.Background()
	cl, _ := startTyped(t)
	// With two nodes and round-robin placement, creating more objects
	// must place at least one remotely; the typed API must work there
	// identically.
	remote := 0
	for i := 0; i < 4; i++ {
		obj, err := parc.New[slowCounter](cl, "slow")
		if err != nil {
			t.Fatal(err)
		}
		if !obj.Proxy().IsLocal() {
			remote++
		}
		if err := obj.Send(ctx, "Add", i); err != nil {
			t.Fatal(err)
		}
		if got, err := parc.Call[int](ctx, obj, "Total"); err != nil || got != i {
			t.Fatalf("object %d: Total = %d, %v", i, got, err)
		}
	}
	if remote == 0 {
		t.Error("round robin never placed remotely")
	}
}

func TestCallContextCancellationMidInvoke(t *testing.T) {
	_, obj := startTyped(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := parc.Call[any](ctx, obj, "Sleep", 5000)
	elapsed := time.Since(start)
	if !errors.Is(err, parc.ErrCanceled) {
		t.Fatalf("err = %v, want errors.Is(err, ErrCanceled)", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; the in-flight invoke was not aborted", elapsed)
	}
}

func TestCallDeadlineExpiryOnSlowMethod(t *testing.T) {
	_, obj := startTyped(t)
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := parc.Call[any](ctx, obj, "Sleep", 5000)
	elapsed := time.Since(start)
	if !errors.Is(err, parc.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(err, ErrDeadlineExceeded)", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("deadline expiry took %v; the slow method was not abandoned", elapsed)
	}
}

func TestServerSideDeadlinePropagation(t *testing.T) {
	// The deadline travels in the request envelope: the context-aware
	// Sleep method observes it on the hosting node and returns early, so
	// the response (an error response) comes back over the wire rather
	// than the client abandoning the connection.
	cl, _ := startTyped(t)
	var remote *parc.Object[slowCounter]
	for i := 0; i < 2; i++ {
		obj, err := parc.New[slowCounter](cl, "slow")
		if err != nil {
			t.Fatal(err)
		}
		if !obj.Proxy().IsLocal() {
			remote = obj
		}
	}
	if remote == nil {
		t.Fatal("no remote object created")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := remote.Invoke(ctx, "Sleep", 5000)
	if !errors.Is(err, parc.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want errors.Is(err, ErrDeadlineExceeded)", err)
	}
}

func TestErrorsIsForEachSentinel(t *testing.T) {
	ctx := context.Background()
	cl, obj := startTyped(t)

	// ErrNoSuchMethod: checked client-side before any traffic; the error
	// names the candidates.
	_, err := parc.Call[int](ctx, obj, "Tootal")
	if !errors.Is(err, parc.ErrNoSuchMethod) {
		t.Errorf("unknown method: err = %v, want ErrNoSuchMethod", err)
	}
	if err == nil || !containsAll(err.Error(), "Add", "Total", "Sleep") {
		t.Errorf("unknown-method error does not name candidates: %v", err)
	}
	if err := obj.Send(ctx, "Tootal"); !errors.Is(err, parc.ErrNoSuchMethod) {
		t.Errorf("Send unknown method: err = %v, want ErrNoSuchMethod", err)
	}

	// ErrNoSuchMethod across the wire: bypass the client-side check via
	// the dynamic proxy so the server produces it.
	_, err = obj.Proxy().InvokeCtx(ctx, "Invoke1")
	if err == nil {
		t.Error("dynamic call with missing args should fail")
	}

	// ErrNoSuchClass.
	if _, err := parc.New[slowCounter](cl, "unregistered"); !errors.Is(err, parc.ErrNoSuchClass) {
		t.Errorf("unregistered class: err = %v, want ErrNoSuchClass", err)
	}

	// ErrCanceled: context already done.
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := parc.Call[int](canceled, obj, "Total"); !errors.Is(err, parc.ErrCanceled) {
		t.Errorf("pre-canceled ctx: err = %v, want ErrCanceled", err)
	}

	// ErrObjectDestroyed: calls after Destroy fail with the sentinel on
	// local actors (stopped mailbox) and remote objects alike (the wire
	// code rebuilds the chain client-side).
	for i := 0; i < 2; i++ {
		victim, err := parc.New[slowCounter](cl, "slow")
		if err != nil {
			t.Fatal(err)
		}
		if err := victim.Destroy(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := victim.Invoke(ctx, "Total"); !errors.Is(err, parc.ErrObjectDestroyed) {
			t.Errorf("destroyed object (local=%v): err = %v, want ErrObjectDestroyed",
				victim.Proxy().IsLocal(), err)
		}
	}

	// ErrBadConversion: the wire value cannot become the requested type.
	if _, err := parc.Call[time.Time](ctx, obj, "Total"); !errors.Is(err, parc.ErrBadConversion) {
		t.Errorf("bad conversion: err = %v, want ErrBadConversion", err)
	}
}

func TestErrNodeDownOnUnreachablePeer(t *testing.T) {
	// A node serving on a real TCP port, then stopped: invoking through a
	// stale reference surfaces ErrNodeDown.
	n0, err := parc.ServeNode(parc.WithNodeID(0))
	if err != nil {
		t.Fatal(err)
	}
	parc.RegisterAt[slowCounter](n0, "slow")
	obj, err := parc.NewAt[slowCounter](n0, "slow")
	if err != nil {
		t.Fatal(err)
	}
	ref := obj.Ref()
	n0.Close()

	n1, err := parc.ServeNode(parc.WithNodeID(0))
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	stale := parc.Bind[slowCounter](n1, ref)
	if _, err := stale.Invoke(context.Background(), "Total"); !errors.Is(err, parc.ErrNodeDown) {
		t.Errorf("dead peer: err = %v, want ErrNodeDown", err)
	}
}

// TestAsConversionErrors is the regression test for the silent-zero bug:
// As used to return the zero value with a nil error when the converted
// value failed the final type assertion.
func TestAsConversionErrors(t *testing.T) {
	if _, err := parc.As[int]("nope", nil); err == nil {
		t.Error("As[int] of a string should fail")
	} else if !errors.Is(err, parc.ErrBadConversion) {
		t.Errorf("err = %v, want ErrBadConversion", err)
	}
	// A conversion that Assign cannot perform must never silently yield
	// the zero value.
	if got, err := parc.As[time.Time](42, nil); err == nil {
		t.Errorf("As[time.Time](42) = %v with nil error; want ErrBadConversion", got)
	} else if !errors.Is(err, parc.ErrBadConversion) {
		t.Errorf("err = %v, want ErrBadConversion", err)
	}
}

func TestResultGetHonoursContext(t *testing.T) {
	_, obj := startTyped(t)
	callCtx, stop := context.WithCancel(context.Background())
	defer stop() // aborts the still-running Sleep so cluster shutdown is fast
	res := parc.CallAsync[any](callCtx, obj, "Sleep", 5000)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := res.Get(ctx); !errors.Is(err, parc.ErrDeadlineExceeded) {
		t.Errorf("Result.Get under deadline: err = %v, want ErrDeadlineExceeded", err)
	}
}

// TestFunctionalOptionsCompose drives a cluster configured entirely
// through functional options (the only config surface since the
// positional ClusterConfig/NodeConfig API was removed).
func TestFunctionalOptionsCompose(t *testing.T) {
	ctx := context.Background()
	cl, err := parc.StartCluster(
		parc.WithNodes(3),
		parc.WithNetwork(parc.Ethernet100()),
		parc.WithAggregation(8, 0),
		parc.WithPlacement(&parc.RoundRobin{}),
		parc.WithLoadCacheTTL(10*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Size() != 3 {
		t.Fatalf("Size = %d, want 3", cl.Size())
	}
	parc.Register[slowCounter](cl, "slow")
	obj, err := parc.New[slowCounter](cl, "slow")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := obj.Send(ctx, "Add", 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := obj.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	if got, err := parc.Call[int](ctx, obj, "Total"); err != nil || got != 16 {
		t.Fatalf("Total = %d, %v; want 16", got, err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
