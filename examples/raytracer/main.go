// Raytracer: the paper's Fig. 9 application as a standalone program — a
// farmed parallel ray tracer on a simulated cluster of dual-CPU nodes.
// Each worker parallel object renders blocks of image rows; the master
// scatters blocks and gathers pixels.
//
// Run with:
//
//	go run ./examples/raytracer -procs 4 -size 200
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/raytracer"
	"repro/parc"
)

// RenderWorker is the farm worker class.
type RenderWorker struct {
	mu    sync.Mutex
	scene raytracer.Scene
}

// SetScene installs the render input on the worker.
func (w *RenderWorker) SetScene(s raytracer.Scene) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.scene = s
}

// Render renders rows [y0, y1) and returns packed RGB pixels.
func (w *RenderWorker) Render(y0, y1 int) []int32 {
	w.mu.Lock()
	scene := w.scene
	w.mu.Unlock()
	return scene.RenderRows(y0, y1, 1)
}

func init() {
	parc.RegisterType(raytracer.Scene{})
	parc.RegisterType(raytracer.Sphere{})
	parc.RegisterType(raytracer.Light{})
	parc.RegisterType(raytracer.Vec{})
}

func main() {
	procs := flag.Int("procs", 4, "number of worker processors (2 per node)")
	size := flag.Int("size", 200, "image width/height in pixels")
	rows := flag.Int("rows", 10, "rows per farm block")
	flag.Parse()

	nodes := (*procs + 1) / 2
	cl, err := parc.StartCluster(
		parc.WithNodes(nodes),
		parc.WithNetwork(parc.Ethernet100()),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	cl.RegisterClass("RenderWorker", func() any { return &RenderWorker{} })

	scene := raytracer.JGFScene(8, *size, *size)
	workers := make([]*parc.Proxy, *procs)
	for i := range workers {
		p, err := cl.Entry().NewParallelObject("RenderWorker")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := p.Invoke("SetScene", scene); err != nil {
			log.Fatal(err)
		}
		workers[i] = p
	}

	type blk struct{ idx, y0, y1 int }
	var blocks []blk
	for y, i := 0, 0; y < *size; y, i = y+*rows, i+1 {
		end := y + *rows
		if end > *size {
			end = *size
		}
		blocks = append(blocks, blk{i, y, end})
	}
	queue := make(chan blk, len(blocks))
	for _, b := range blocks {
		queue <- b
	}
	close(queue)

	results := make([][]int32, len(blocks))
	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *parc.Proxy) {
			defer wg.Done()
			for b := range queue {
				res, err := w.Invoke("Render", b.y0, b.y1)
				if err != nil {
					log.Fatal(err)
				}
				px, err := parc.As[[]int32](res, nil)
				if err != nil {
					log.Fatal(err)
				}
				results[b.idx] = px
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var image []int32
	for _, r := range results {
		image = append(image, r...)
	}
	fmt.Printf("rendered %dx%d with %d workers on %d nodes in %v\n",
		*size, *size, *procs, nodes, elapsed)
	fmt.Printf("checksum: %d (sequential: %d)\n",
		raytracer.Checksum(image), raytracer.Checksum(scene.Render(1)))
}
