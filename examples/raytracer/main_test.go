package main

import (
	"testing"

	"repro/internal/raytracer"
)

// TestWorkerMatchesSequential checks that the example's worker produces the
// exact rows the sequential renderer produces.
func TestWorkerMatchesSequential(t *testing.T) {
	scene := raytracer.JGFScene(4, 32, 32)
	w := &RenderWorker{}
	w.SetScene(scene)
	got := w.Render(4, 8)
	want := scene.RenderRows(4, 8, 1)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}
