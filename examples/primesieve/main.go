// Primesieve: the paper's running example (Figs. 4–7) as a standalone
// program — a pipeline of PrimeFilter parallel objects distributed over a
// simulated cluster, with SCOOPP method-call aggregation batching the
// per-number messages.
//
// Run with:
//
//	go run ./examples/primesieve -n 500 -nodes 3 -maxcalls 16
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/sieve"
	"repro/parc"
)

func main() {
	n := flag.Int("n", 500, "find primes <= n")
	nodes := flag.Int("nodes", 3, "cluster nodes")
	maxCalls := flag.Int("maxcalls", 16, "method-call aggregation batch size (1 disables)")
	flag.Parse()

	cl, err := parc.StartCluster(
		parc.WithNodes(*nodes),
		parc.WithNetwork(parc.Ethernet100()),
		parc.WithAggregation(*maxCalls, 0),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < cl.Size(); i++ {
		sieve.RegisterClasses(cl.Node(i))
	}

	start := time.Now()
	primes, err := sieve.Pipeline(cl.Entry(), *n)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("primes <= %d: %d found in %v (filters distributed over %d nodes)\n",
		*n, len(primes), elapsed, *nodes)
	if len(primes) > 10 {
		fmt.Printf("first: %v ... last: %d\n", primes[:10], primes[len(primes)-1])
	} else {
		fmt.Printf("primes: %v\n", primes)
	}

	want := sieve.SequentialCount(*n, 1)
	if len(primes) != want {
		log.Fatalf("pipeline disagrees with sequential sieve: %d != %d", len(primes), want)
	}
	fmt.Println("pipeline matches the sequential sieve ✔")

	st := cl.Entry().Stats()
	fmt.Printf("entry-node stats: %d async calls, %d aggregated into %d batches\n",
		st.AsyncCalls, st.CallsAggregated, st.BatchesSent)
	for i := 0; i < cl.Size(); i++ {
		fmt.Printf("node %d hosts %d filter objects\n", i, cl.Node(i).Load())
	}
}
