// Divideserver reproduces the paper's Figs. 1 and 2 side by side: the same
// remote division service written against the Java-RMI-style API (explicit
// export, registry lookup, checked remote exceptions) and against the
// C#-remoting-style API (well-known object factory, Activator.GetObject,
// plain errors, async delegates) — the §2 comparison as runnable code.
//
// Run with:
//
//	go run ./examples/divideserver 10 4
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/remoting"
	"repro/internal/rmi"
	"repro/internal/transport"
)

// DServer is the divide service of the paper's figures.
type DServer struct{}

// Divide returns d1/d2.
func (DServer) Divide(d1, d2 float64) (float64, error) {
	if d2 == 0 {
		return 0, errors.New("division by zero")
	}
	return d1 / d2, nil
}

func main() {
	d1, d2 := 10.0, 4.0
	if len(os.Args) >= 3 {
		var err error
		if d1, err = strconv.ParseFloat(os.Args[1], 64); err != nil {
			log.Fatal(err)
		}
		if d2, err = strconv.ParseFloat(os.Args[2], 64); err != nil {
			log.Fatal(err)
		}
	}
	net := transport.NewMemNetwork()

	// --- Fig. 1: the Java RMI flavour -------------------------------
	// Server: instantiate explicitly, export, bind in the registry.
	server := rmi.NewRuntime(net)
	if err := server.Listen("mem://rmihost"); err != nil {
		log.Fatal(err)
	}
	defer server.Close()
	if err := server.Rebind("DivideServer", DServer{}); err != nil {
		log.Fatal(err)
	}
	// Client: registry lookup, then invoke; every step can throw a
	// RemoteException.
	client := rmi.NewRuntime(net)
	stub, err := client.Lookup(server.URLFor("DivideServer"))
	if err != nil {
		log.Fatal(err)
	}
	res, err := stub.Invoke("Divide", d1, d2)
	if err != nil {
		var re *rmi.RemoteException
		if errors.As(err, &re) {
			log.Fatalf("RemoteException: %v", re)
		}
		log.Fatal(err)
	}
	fmt.Printf("Java RMI style:      %v / %v = %v (via %s)\n", d1, d2, res, server.URLFor("DivideServer"))

	// --- Fig. 2: the C# remoting flavour -----------------------------
	// Server: register a well-known service type; no instance, no
	// registry, no stubs to generate.
	ch := remoting.NewTCPChannel(net)
	srv, err := ch.ListenAndServe("mem://cshost")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterWellKnown("DivideServer", remoting.Singleton, func() any { return DServer{} })

	// Client: Activator.GetObject and call; errors are ordinary values.
	ref, err := remoting.GetObject(ch, srv.URLFor("DivideServer"))
	if err != nil {
		log.Fatal(err)
	}
	res, err = ref.Invoke("Divide", d1, d2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("C# remoting style:   %v / %v = %v (via %s)\n", d1, d2, res, srv.URLFor("DivideServer"))

	// Bonus from §2: asynchronous delegate invocation, which "in Java
	// must be explicitly programmed using threads".
	del := remoting.NewDelegate(ref, "Divide")
	ar := del.BeginInvoke(d1, d2)
	async, err := ar.EndInvoke()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async delegate:      BeginInvoke/EndInvoke = %v\n", async)

	// And the failure path: no checked exception, just an error value.
	if _, err := ref.Invoke("Divide", 1.0, 0.0); err != nil {
		fmt.Printf("error propagation:   %v\n", err)
	}
}
