// Quickstart: create parallel objects on a simulated 3-node cluster, call
// them asynchronously and synchronously, and inspect placement — the
// smallest complete SCOOPP/ParC# program.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"repro/parc"
)

// Accumulator is a parallel-object class: a factory registered on every
// node creates instances wherever the object manager places them.
type Accumulator struct {
	mu  sync.Mutex
	sum int
}

// Add is an asynchronous-friendly method: no result, so proxies post it
// without waiting.
func (a *Accumulator) Add(v int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sum += v
}

// Sum returns the accumulated value; calling it synchronously observes all
// previously posted Adds (per-object ordering).
func (a *Accumulator) Sum() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sum
}

func main() {
	cl, err := parc.NewCluster(parc.ClusterConfig{
		Nodes:   3,
		Network: parc.Ethernet100(), // the paper's 100 Mbit testbed model
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	cl.RegisterClass("Accumulator", func() any { return &Accumulator{} })

	// Create six parallel objects; round-robin placement spreads them
	// across the three nodes.
	var proxies []*parc.Proxy
	for i := 0; i < 6; i++ {
		p, err := cl.Entry().NewParallelObject("Accumulator")
		if err != nil {
			log.Fatal(err)
		}
		proxies = append(proxies, p)
		fmt.Printf("object %d -> %s\n", i, p)
	}

	// Fire-and-forget asynchronous calls.
	for i, p := range proxies {
		for v := 1; v <= 10; v++ {
			p.Post("Add", v*(i+1))
		}
	}

	// Synchronous calls flush and order after the posts.
	total := 0
	for i, p := range proxies {
		res, err := p.Invoke("Sum")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("object %d sum = %v\n", i, res)
		total += res.(int)
	}
	fmt.Printf("grand total = %d (want %d)\n", total, 55*(1+2+3+4+5+6))

	for i := 0; i < cl.Size(); i++ {
		fmt.Printf("node %d hosts %d objects\n", i, cl.Node(i).Load())
	}
}
