// Jgfkernels runs the Java Grande Forum kernels (the benchmark family the
// paper's evaluation draws on) as parallel-object programs on a simulated
// cluster, validating each farmed result against its sequential reference.
//
// Run with:
//
//	go run ./examples/jgfkernels -nodes 3 -workers 4
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/jgf"
	"repro/parc"
)

func main() {
	nodes := flag.Int("nodes", 3, "cluster nodes")
	workers := flag.Int("workers", 4, "parallel workers per kernel")
	flag.Parse()

	cl, err := parc.StartCluster(parc.WithNodes(*nodes))
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < cl.Size(); i++ {
		jgf.RegisterClasses(cl.Node(i))
	}
	entry := cl.Entry()

	// Series: Fourier coefficients, farmed by coefficient range.
	start := time.Now()
	coeffs, err := jgf.RunSeries(entry, 24, *workers)
	if err != nil {
		log.Fatal(err)
	}
	seq := jgf.SeriesCoefficients(0, 24)
	match := len(coeffs) == len(seq)
	for i := range seq {
		match = match && coeffs[i] == seq[i]
	}
	fmt.Printf("Series: %d coefficients in %-12v bitwise-match=%v (a0=%.4f)\n",
		len(coeffs)/2, time.Since(start), match, coeffs[0])

	// Crypt: IDEA encryption, farmed by block range.
	key := jgf.NewIdeaKey(2005)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i * 13)
	}
	start = time.Now()
	cipher, err := jgf.RunCrypt(entry, data, key.Enc, *workers)
	if err != nil {
		log.Fatal(err)
	}
	back, err := jgf.RunCrypt(entry, cipher, key.Dec, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Crypt:  %d bytes in %-12v roundtrip-ok=%v\n",
		len(data), time.Since(start), bytes.Equal(back, data))

	// SOR: red-black relaxation with coordinator-driven halo exchange.
	start = time.Now()
	sum, err := jgf.RunSOR(entry, 64, 10, *workers, 1.25)
	if err != nil {
		log.Fatal(err)
	}
	want := jgf.SORSequential(64, 10, 1.25)
	fmt.Printf("SOR:    64x64 x10 sweeps in %-12v sum=%.6f bitwise-match=%v\n",
		time.Since(start), sum, sum == want)
}
