// Package errs defines the runtime's typed error taxonomy: sentinel errors
// that every layer (dispatch, remoting, core, the parc facade) wraps with
// %w so callers can branch with errors.Is, plus the compact wire codes that
// carry a sentinel's identity across a remoting hop. The parc package
// re-exports the sentinels as part of the public API.
package errs

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel errors. Cancellation and deadline expiry deliberately reuse the
// context package's sentinels so errors.Is(err, context.Canceled) and
// errors.Is(err, errs.ErrCanceled) are the same test.
var (
	// ErrNoSuchMethod: a method name did not resolve on the target class.
	ErrNoSuchMethod = errors.New("no such method")
	// ErrNoSuchClass: a class name was never registered on the node.
	ErrNoSuchClass = errors.New("class not registered")
	// ErrNodeDown: the hosting node could not be reached (dial or I/O
	// failure on the remoting channel).
	ErrNodeDown = errors.New("node unreachable")
	// ErrObjectDestroyed: the parallel object was destroyed before or
	// while the call was queued.
	ErrObjectDestroyed = errors.New("parallel object destroyed")
	// ErrObjectMoved: the parallel object migrated to another node. The
	// error chain normally carries a *MovedError with the new location so
	// callers can re-route without a directory round trip.
	ErrObjectMoved = errors.New("parallel object moved")
	// ErrBadConversion: a dynamically typed result could not be converted
	// to the requested static type.
	ErrBadConversion = errors.New("result conversion failed")
	// ErrOverloaded: the target object's bounded mailbox was full (or its
	// node is shedding load) and the call was rejected without executing.
	// This is a fast-fail admission decision, not a transport failure: the
	// proxy layer deliberately does NOT retry it transparently (unlike
	// ErrObjectMoved / ErrNodeDown). Callers should treat it as retryable
	// after backing off — retry against the same object with jittered
	// exponential backoff, or spread work across more objects — and must
	// expect it under sustained overload. The code survives both the string
	// and the compact reply envelopes, so errors.Is(err, ErrOverloaded)
	// works across any remoting hop.
	ErrOverloaded = errors.New("overloaded")
	// ErrCanceled and ErrDeadlineExceeded alias the context sentinels.
	ErrCanceled         = context.Canceled
	ErrDeadlineExceeded = context.DeadlineExceeded
)

// Wire codes: the callResponse carries one of these so the client side can
// rebuild the sentinel chain after the error text crossed the network.
const (
	CodeNone         = ""
	CodeNoSuchMethod = "no-such-method"
	CodeNoSuchClass  = "no-such-class"
	CodeDestroyed    = "destroyed"
	CodeNodeDown     = "node-down"
	CodeCanceled     = "canceled"
	CodeDeadline     = "deadline"
	CodeMoved        = "moved"
	CodeOverloaded   = "overloaded"
)

// MovedError is the forwarding half of ErrObjectMoved: it names where the
// object lives now, and at which migration generation that information was
// produced. Generations are monotonic per object, so a receiver can ignore
// a forward older than what it already knows. The remoting layer carries
// the three location fields in its reply envelope, so the whole error —
// not just its identity — survives the wire.
type MovedError struct {
	// URI is the moved object's (stable) URI.
	URI string
	// Node and Addr are the hosting node's cluster index and transport
	// address after the move.
	Node int
	Addr string
	// Gen is the object's migration generation at Addr (bumped on every
	// move).
	Gen uint64
}

// Error implements error.
func (e *MovedError) Error() string {
	return fmt.Sprintf("object %s moved to node %d (%s, generation %d)", e.URI, e.Node, e.Addr, e.Gen)
}

// Unwrap makes errors.Is(err, ErrObjectMoved) true.
func (e *MovedError) Unwrap() error { return ErrObjectMoved }

// OverloadedError is ErrOverloaded with a retry-after hint: the shedding
// side knows how long its backlog needs to drain, so it tells the caller
// when a retry has a chance instead of leaving every client to guess the
// same (synchronized) backoff. The remoting layer carries the hint in both
// reply envelopes; RetryAfter extracts it on the client side.
type OverloadedError struct {
	// RetryAfter is the server's drain estimate. Zero means no hint.
	RetryAfter time.Duration
	// Err is the underlying shed error (wraps ErrOverloaded).
	Err error
}

// Error implements error.
func (e *OverloadedError) Error() string { return e.Err.Error() }

// Unwrap keeps errors.Is(err, ErrOverloaded) true.
func (e *OverloadedError) Unwrap() error { return e.Err }

// WithRetryAfter attaches a retry-after hint to a shed error. A zero or
// negative hint returns err unchanged.
func WithRetryAfter(err error, d time.Duration) error {
	if err == nil || d <= 0 {
		return err
	}
	return &OverloadedError{RetryAfter: d, Err: err}
}

// RetryAfter returns the retry-after hint carried in err's chain, or zero.
func RetryAfter(err error) time.Duration {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		return oe.RetryAfter
	}
	return 0
}

// Code maps an error to its wire code, or CodeNone when no sentinel in the
// chain has one.
func Code(err error) string {
	switch {
	case err == nil:
		return CodeNone
	case errors.Is(err, ErrNoSuchMethod):
		return CodeNoSuchMethod
	case errors.Is(err, ErrNoSuchClass):
		return CodeNoSuchClass
	case errors.Is(err, ErrObjectMoved):
		return CodeMoved
	case errors.Is(err, ErrObjectDestroyed):
		return CodeDestroyed
	case errors.Is(err, ErrNodeDown):
		return CodeNodeDown
	case errors.Is(err, ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	}
	return CodeNone
}

// Sentinel is the inverse of Code; it returns nil for CodeNone or an
// unknown code.
func Sentinel(code string) error {
	switch code {
	case CodeNoSuchMethod:
		return ErrNoSuchMethod
	case CodeNoSuchClass:
		return ErrNoSuchClass
	case CodeMoved:
		return ErrObjectMoved
	case CodeDestroyed:
		return ErrObjectDestroyed
	case CodeNodeDown:
		return ErrNodeDown
	case CodeOverloaded:
		return ErrOverloaded
	case CodeDeadline:
		return context.DeadlineExceeded
	case CodeCanceled:
		return context.Canceled
	}
	return nil
}
