// Package jgf implements kernels from the Java Grande Forum benchmark
// suite, the benchmark family the paper's high-level evaluation draws on
// ("a parallel Ray Tracer from the Java Grande Forum"; the ray tracer
// itself lives in internal/raytracer). Three section-2 kernels are
// provided, each with a sequential reference and a parallel-objects version
// over the SCOOPP runtime:
//
//   - Series: Fourier coefficients of (x+1)^x on [0,2] — embarrassingly
//     parallel, coefficient ranges farmed to workers;
//   - Crypt: IDEA encryption/decryption over a byte array — block ranges
//     farmed to workers;
//   - SOR: red-black successive over-relaxation — workers own row bands
//     and exchange boundary rows with their neighbours through parallel
//     object references each sweep, exercising PO-to-PO communication.
//
// Every parallel version must produce bit-identical results to its
// sequential reference; the tests enforce it.
package jgf

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/parc"
)

// ----------------------------------------------------------------- Series

// SeriesCoefficients returns the first n Fourier coefficient pairs (a_k,
// b_k) of f(x) = (x+1)^x on [0,2], computed with trapezoid integration at
// the JGF resolution (1000 intervals per coefficient).
func SeriesCoefficients(first, count int) []float64 {
	out := make([]float64, 0, count*2)
	for k := first; k < first+count; k++ {
		a := trapezoid(func(x float64) float64 {
			return math.Pow(x+1, x) * math.Cos(float64(k)*math.Pi*x)
		})
		b := trapezoid(func(x float64) float64 {
			return math.Pow(x+1, x) * math.Sin(float64(k)*math.Pi*x)
		})
		out = append(out, a, b)
	}
	return out
}

// trapezoid integrates f over [0,2] with the JGF interval count.
func trapezoid(f func(float64) float64) float64 {
	const n = 1000
	h := 2.0 / n
	sum := (f(0) + f(2)) / 2
	for i := 1; i < n; i++ {
		sum += f(float64(i) * h)
	}
	return sum * h
}

// SeriesWorker is the parallel-object class for the farmed Series kernel.
type SeriesWorker struct{}

// Coefficients computes the coefficient pairs for [first, first+count).
func (SeriesWorker) Coefficients(first, count int) []float64 {
	return SeriesCoefficients(first, count)
}

// RunSeries farms n coefficients over workers parallel objects created on
// rt and returns the coefficients in order. It is the MapReduce skeleton
// verbatim: scatter coefficient ranges, fold the parts back in member
// order — partitioning identical to the hand-rolled farm it replaces, so
// the output is bit-identical.
func RunSeries(rt *core.Runtime, n, workers int) ([]float64, error) {
	if workers < 1 {
		workers = 1
	}
	g, err := newWorkerGroup[SeriesWorker](rt, "jgf.SeriesWorker", workers)
	if err != nil {
		return nil, err
	}
	defer g.Destroy(context.Background()) //nolint:errcheck // best-effort cleanup
	out, err := parc.MapReduce(context.Background(), g, "Coefficients",
		func(i int) []any {
			first := i * n / workers
			return []any{first, (i+1)*n/workers - first}
		},
		make([]float64, 0, n*2),
		func(acc []float64, part []float64) []float64 { return append(acc, part...) },
	)
	if err != nil {
		return nil, fmt.Errorf("jgf: series: %w", err)
	}
	if len(out) != n*2 {
		return nil, fmt.Errorf("jgf: series returned %d values, want %d", len(out), n*2)
	}
	return out, nil
}

// newWorkerGroup creates count objects of class on rt as a skeleton group.
func newWorkerGroup[T any](rt *core.Runtime, class string, count int) (*parc.Group[T], error) {
	objs := make([]*parc.Object[T], count)
	for i := range objs {
		o, err := parc.NewAt[T](rt, class)
		if err != nil {
			for _, prev := range objs[:i] {
				prev.Destroy(context.Background()) //nolint:errcheck // best-effort unwind
			}
			return nil, err
		}
		objs[i] = o
	}
	return parc.GroupOf(objs...), nil
}

// ----------------------------------------------------------------- Crypt

// IdeaKey is the 52-subkey IDEA encryption schedule plus its inverse.
type IdeaKey struct {
	Enc []int32 // 52 subkeys
	Dec []int32
}

// NewIdeaKey derives a deterministic key schedule from seed, following the
// JGF Crypt construction (user key expanded by rotation).
func NewIdeaKey(seed int64) IdeaKey {
	user := make([]uint16, 8)
	s := seed
	for i := range user {
		s = s*25214903917 + 11
		user[i] = uint16(s >> 16)
	}
	enc := expandKey(user)
	return IdeaKey{Enc: enc, Dec: invertKey(enc)}
}

func expandKey(user []uint16) []int32 {
	z := make([]int32, 52)
	for i := 0; i < 8; i++ {
		z[i] = int32(user[i])
	}
	for i := 8; i < 52; i++ {
		if i&7 < 6 {
			z[i] = ((z[i-7] & 127) << 9) | (z[i-6] >> 7)
		} else if i&7 == 6 {
			z[i] = ((z[i-7] & 127) << 9) | (z[i-14] >> 7)
		} else {
			z[i] = ((z[i-15] & 127) << 9) | (z[i-14] >> 7)
		}
		z[i] &= 0xffff
	}
	return z
}

func invertKey(z []int32) []int32 {
	dk := make([]int32, 52)
	dk[51] = mulInv(z[3])
	dk[50] = -z[2] & 0xffff
	dk[49] = -z[1] & 0xffff
	dk[48] = mulInv(z[0])
	j, k := 47, 4
	for i := 0; i < 7; i++ {
		t1 := z[k]
		k++
		dk[j] = z[k]
		j--
		k++
		dk[j] = t1
		j--
		t1 = mulInv(z[k])
		k++
		t2 := -z[k] & 0xffff
		k++
		t3 := -z[k] & 0xffff
		k++
		dk[j] = mulInv(z[k])
		j--
		k++
		dk[j] = t2
		j--
		dk[j] = t3
		j--
		dk[j] = t1
		j--
	}
	t1 := z[k]
	k++
	dk[j] = z[k]
	j--
	k++
	dk[j] = t1
	j--
	t1 = mulInv(z[k])
	k++
	t2 := -z[k] & 0xffff
	k++
	t3 := -z[k] & 0xffff
	k++
	dk[j] = mulInv(z[k])
	j--
	dk[j] = t3
	j--
	dk[j] = t2
	j--
	dk[j] = t1
	return dk
}

// mulInv computes the multiplicative inverse modulo 2^16+1 (IDEA's odd
// multiplication group), with IDEA's convention that 0 represents 2^16.
func mulInv(x int32) int32 {
	if x <= 1 {
		return x
	}
	t0 := int32(1)
	t1 := int32(0x10001) / x
	y := int32(0x10001) % x
	for y != 1 {
		q := x / y
		x = x % y
		t0 = (t0 + t1*q) & 0xffff
		if x == 1 {
			return t0
		}
		q = y / x
		y = y % x
		t1 = (t1 + t0*q) & 0xffff
	}
	return (1 - t1) & 0xffff
}

// mul is IDEA multiplication modulo 2^16+1.
func mul(a, b int32) int32 {
	if a == 0 {
		return (0x10001 - b) & 0xffff
	}
	if b == 0 {
		return (0x10001 - a) & 0xffff
	}
	p := int64(a) * int64(b)
	lo := int32(p & 0xffff)
	hi := int32((p >> 16) & 0xffff)
	r := lo - hi
	if lo < hi {
		r++
	}
	return r & 0xffff
}

// IdeaCrypt runs the IDEA cipher over data (length must be a multiple of
// 8) with the given 52-subkey schedule; encryption and decryption use the
// same routine with the respective schedule, as in JGF Crypt.
func IdeaCrypt(data []byte, key []int32) ([]byte, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("jgf: IDEA data length %d not a multiple of 8", len(data))
	}
	out := make([]byte, len(data))
	for off := 0; off < len(data); off += 8 {
		x1 := int32(data[off]) | int32(data[off+1])<<8
		x2 := int32(data[off+2]) | int32(data[off+3])<<8
		x3 := int32(data[off+4]) | int32(data[off+5])<<8
		x4 := int32(data[off+6]) | int32(data[off+7])<<8
		k := 0
		for round := 0; round < 8; round++ {
			x1 = mul(x1, key[k])
			x2 = (x2 + key[k+1]) & 0xffff
			x3 = (x3 + key[k+2]) & 0xffff
			x4 = mul(x4, key[k+3])
			t2 := x1 ^ x3
			t2 = mul(t2, key[k+4])
			t1 := (t2 + (x2 ^ x4)) & 0xffff
			t1 = mul(t1, key[k+5])
			t2 = (t1 + t2) & 0xffff
			x1 ^= t1
			x4 ^= t2
			t2 ^= x2
			x2 = x3 ^ t1
			x3 = t2
			k += 6
		}
		r1 := mul(x1, key[48])
		r2 := (x3 + key[49]) & 0xffff
		r3 := (x2 + key[50]) & 0xffff
		r4 := mul(x4, key[51])
		out[off] = byte(r1)
		out[off+1] = byte(r1 >> 8)
		out[off+2] = byte(r2)
		out[off+3] = byte(r2 >> 8)
		out[off+4] = byte(r3)
		out[off+5] = byte(r3 >> 8)
		out[off+6] = byte(r4)
		out[off+7] = byte(r4 >> 8)
	}
	return out, nil
}

// CryptWorker is the parallel-object class for the farmed Crypt kernel.
type CryptWorker struct{}

// Crypt applies the schedule to one block range.
func (CryptWorker) Crypt(data []byte, key []int32) ([]byte, error) {
	return IdeaCrypt(data, key)
}

// RunCrypt encrypts data (multiple of 8 bytes) by farming block ranges to
// workers parallel objects via the Scatter/Gather skeleton: one async call
// per worker submitted before anything blocks (the per-peer lanes batch
// the frames), results gathered in member order and spliced back at the
// same block boundaries as the hand-rolled farm.
func RunCrypt(rt *core.Runtime, data []byte, key []int32, workers int) ([]byte, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("jgf: data length %d not a multiple of 8", len(data))
	}
	if workers < 1 {
		workers = 1
	}
	blocks := len(data) / 8
	lo := func(i int) int { return i * blocks / workers * 8 }
	g, err := newWorkerGroup[CryptWorker](rt, "jgf.CryptWorker", workers)
	if err != nil {
		return nil, err
	}
	defer g.Destroy(context.Background()) //nolint:errcheck // best-effort cleanup
	ctx := context.Background()
	parts, err := parc.Gather(ctx, parc.Scatter[[]byte](ctx, g, "Crypt", func(i int) []any {
		return []any{data[lo(i):lo(i+1)], key}
	}))
	if err != nil {
		return nil, fmt.Errorf("jgf: crypt: %w", err)
	}
	out := make([]byte, len(data))
	for i, part := range parts {
		if len(part) != lo(i+1)-lo(i) {
			return nil, fmt.Errorf("jgf: crypt worker %d returned %d bytes, want %d", i, len(part), lo(i+1)-lo(i))
		}
		copy(out[lo(i):lo(i+1)], part)
	}
	return out, nil
}

func asFloat64s(v any) ([]float64, error) {
	switch x := v.(type) {
	case []float64:
		return x, nil
	case []any:
		out := make([]float64, len(x))
		for i, e := range x {
			f, ok := e.(float64)
			if !ok {
				return nil, fmt.Errorf("jgf: element %d is %T", i, e)
			}
			out[i] = f
		}
		return out, nil
	}
	return nil, fmt.Errorf("jgf: not a float64 slice: %T", v)
}

// RegisterClasses registers the kernel worker classes on a runtime; call on
// every node.
func RegisterClasses(rt *core.Runtime) {
	rt.RegisterClass("jgf.SeriesWorker", func() any { return SeriesWorker{} })
	rt.RegisterClass("jgf.CryptWorker", func() any { return CryptWorker{} })
	rt.RegisterClass("jgf.SORWorker", func() any { return &SORWorker{} })
}
