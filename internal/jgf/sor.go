package jgf

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// SOR is the JGF red-black successive over-relaxation kernel. The grid is
// updated in two colour phases per sweep; within a phase every update reads
// only cells of the opposite colour, so the parallel banded version is
// bitwise identical to the sequential reference regardless of update order.

// SORGrid builds the deterministic n×n initial grid (LCG-seeded, as the JGF
// generator seeds its random grid).
func SORGrid(n int) [][]float64 {
	g := make([][]float64, n)
	state := int64(4357)
	for i := range g {
		g[i] = make([]float64, n)
		for j := range g[i] {
			state = state*25214903917 + 11
			g[i][j] = float64((state>>16)&0xffff) / 65536.0
		}
	}
	return g
}

// SORSequential runs iters red-black sweeps with relaxation omega and
// returns the grid sum (the JGF validation value).
func SORSequential(n, iters int, omega float64) float64 {
	g := SORGrid(n)
	for it := 0; it < iters; it++ {
		for phase := 0; phase < 2; phase++ {
			sorPhase(g, 1, n-1, phase, it, omega)
		}
	}
	return gridSum(g)
}

// sorPhase relaxes rows [lo, hi) of the given colour. The colour of cell
// (i, j) is (i+j+it)%2 == phase, matching the JGF kernel's alternation.
func sorPhase(g [][]float64, lo, hi, phase, it int, omega float64) {
	n := len(g)
	if lo < 1 {
		lo = 1
	}
	if hi > n-1 {
		hi = n - 1
	}
	for i := lo; i < hi; i++ {
		start := 1 + (i+phase+it)%2
		for j := start; j < n-1; j += 2 {
			g[i][j] = omega/4*(g[i-1][j]+g[i+1][j]+g[i][j-1]+g[i][j+1]) +
				(1-omega)*g[i][j]
		}
	}
}

func gridSum(g [][]float64) float64 {
	var sum float64
	for _, row := range g {
		for _, v := range row {
			sum += v
		}
	}
	return sum
}

// SORWorker owns a band of grid rows as a parallel object. Halo rows are
// refreshed by the coordinator between phases (a BSP-style lockstep: the
// actor model would deadlock on mutual pulls, so neighbours communicate
// through the coordinator's halo exchange).
type SORWorker struct {
	mu    sync.Mutex
	n     int
	lo    int // first owned row
	hi    int // one past last owned row
	omega float64
	rows  [][]float64 // owned rows plus one halo row on each side
}

// Init installs the worker's band: rows [lo, hi) of the deterministic grid.
func (w *SORWorker) Init(n, lo, hi int, omega float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	full := SORGrid(n)
	w.n, w.lo, w.hi, w.omega = n, lo, hi, omega
	w.rows = make([][]float64, hi-lo+2)
	for i := range w.rows {
		src := lo - 1 + i
		w.rows[i] = make([]float64, n)
		if src >= 0 && src < n {
			copy(w.rows[i], full[src])
		}
	}
}

// SetHalo refreshes the halo rows around the band.
func (w *SORWorker) SetHalo(top, bottom []float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(top) == w.n {
		copy(w.rows[0], top)
	}
	if len(bottom) == w.n {
		copy(w.rows[len(w.rows)-1], bottom)
	}
}

// SweepPhase relaxes the owned rows for one colour phase of iteration it.
func (w *SORWorker) SweepPhase(phase, it int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := w.lo; i < w.hi; i++ {
		if i < 1 || i >= w.n-1 {
			continue
		}
		row := w.rows[i-w.lo+1]
		up := w.rows[i-w.lo]
		down := w.rows[i-w.lo+2]
		start := 1 + (i+phase+it)%2
		for j := start; j < w.n-1; j += 2 {
			row[j] = w.omega/4*(up[j]+down[j]+row[j-1]+row[j+1]) +
				(1-w.omega)*row[j]
		}
	}
}

// TopRow returns the first owned row (the neighbour-facing boundary).
func (w *SORWorker) TopRow() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]float64(nil), w.rows[1]...)
}

// BottomRow returns the last owned row.
func (w *SORWorker) BottomRow() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]float64(nil), w.rows[len(w.rows)-2]...)
}

// Rows returns the owned rows flattened row-major (n values per row), so
// the coordinator can reassemble the full grid and validate bitwise against
// the sequential reference (summing per band would change float addition
// order).
func (w *SORWorker) Rows() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]float64, 0, (len(w.rows)-2)*w.n)
	for i := 1; i < len(w.rows)-1; i++ {
		out = append(out, w.rows[i]...)
	}
	return out
}

// BandSum returns the sum over owned rows.
func (w *SORWorker) BandSum() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var sum float64
	for i := 1; i < len(w.rows)-1; i++ {
		for _, v := range w.rows[i] {
			sum += v
		}
	}
	return sum
}

// RunSOR runs the banded parallel SOR on rt and returns the grid sum; it
// must equal SORSequential(n, iters, omega) exactly.
func RunSOR(rt *core.Runtime, n, iters, workers int, omega float64) (float64, error) {
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	proxies := make([]*core.Proxy, workers)
	bounds := make([][2]int, workers)
	for i := range proxies {
		p, err := rt.NewParallelObject("jgf.SORWorker")
		if err != nil {
			return 0, err
		}
		defer p.Destroy()
		proxies[i] = p
		lo := i * n / workers
		hi := (i + 1) * n / workers
		bounds[i] = [2]int{lo, hi}
		if _, err := p.Invoke("Init", n, lo, hi, omega); err != nil {
			return 0, err
		}
	}
	exchange := func() error {
		tops := make([][]float64, workers)
		bottoms := make([][]float64, workers)
		for i, p := range proxies {
			res, err := p.Invoke("TopRow")
			if err != nil {
				return err
			}
			if tops[i], err = asFloat64s(res); err != nil {
				return err
			}
			res, err = p.Invoke("BottomRow")
			if err != nil {
				return err
			}
			if bottoms[i], err = asFloat64s(res); err != nil {
				return err
			}
		}
		for i, p := range proxies {
			var top, bottom []float64
			if i > 0 {
				top = bottoms[i-1]
			}
			if i < workers-1 {
				bottom = tops[i+1]
			}
			if _, err := p.Invoke("SetHalo", top, bottom); err != nil {
				return err
			}
		}
		return nil
	}
	for it := 0; it < iters; it++ {
		for phase := 0; phase < 2; phase++ {
			if err := exchange(); err != nil {
				return 0, fmt.Errorf("jgf: halo exchange: %w", err)
			}
			futures := make([]*core.Future, workers)
			for i, p := range proxies {
				futures[i] = p.InvokeAsync("SweepPhase", phase, it)
			}
			for i, f := range futures {
				if _, err := f.Get(); err != nil {
					return 0, fmt.Errorf("jgf: sweep worker %d: %w", i, err)
				}
			}
		}
	}
	// Reassemble the grid and sum it in row-major order — the same float
	// addition order as the sequential reference, so the results compare
	// bitwise.
	var sum float64
	for i, p := range proxies {
		res, err := p.Invoke("Rows")
		if err != nil {
			return 0, fmt.Errorf("jgf: rows from worker %d: %w", i, err)
		}
		band, err := asFloat64s(res)
		if err != nil {
			return 0, err
		}
		want := (bounds[i][1] - bounds[i][0]) * n
		if len(band) != want {
			return 0, fmt.Errorf("jgf: worker %d returned %d values, want %d", i, len(band), want)
		}
		for _, v := range band {
			sum += v
		}
	}
	return sum, nil
}
