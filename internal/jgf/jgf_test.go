package jgf

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cluster"
)

func newJGFCluster(t *testing.T, nodes int) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Options{Nodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	for i := 0; i < cl.Size(); i++ {
		RegisterClasses(cl.Node(i))
	}
	return cl
}

// ----------------------------------------------------------------- Series

func TestSeriesFirstCoefficientKnown(t *testing.T) {
	// a_0 = ∫ (x+1)^x dx over [0,2]. Validate against an independent
	// high-resolution Simpson integration of the same integrand.
	got := SeriesCoefficients(0, 1)
	want := simpson(func(x float64) float64 { return math.Pow(x+1, x) }, 0, 2, 100000)
	if math.Abs(got[0]-want) > 1e-4 {
		t.Errorf("a_0 = %v, want ≈%v", got[0], want)
	}
	if math.Abs(got[1]) > 1e-9 {
		t.Errorf("b_0 = %v, want 0", got[1])
	}
}

// simpson is an independent reference integrator for the test.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

func TestSeriesCoefficientsDecay(t *testing.T) {
	c := SeriesCoefficients(0, 8)
	if len(c) != 16 {
		t.Fatalf("len = %d", len(c))
	}
	// Fourier coefficients of a smooth function decay: |a_7| < |a_1|.
	if math.Abs(c[14]) >= math.Abs(c[2]) {
		t.Errorf("no decay: |a_7| = %v, |a_1| = %v", math.Abs(c[14]), math.Abs(c[2]))
	}
}

func TestSeriesRangeSplitting(t *testing.T) {
	whole := SeriesCoefficients(0, 6)
	var split []float64
	split = append(split, SeriesCoefficients(0, 2)...)
	split = append(split, SeriesCoefficients(2, 3)...)
	split = append(split, SeriesCoefficients(5, 1)...)
	if len(split) != len(whole) {
		t.Fatalf("len %d != %d", len(split), len(whole))
	}
	for i := range whole {
		if whole[i] != split[i] {
			t.Fatalf("coefficient %d differs: %v vs %v", i, whole[i], split[i])
		}
	}
}

func TestRunSeriesMatchesSequential(t *testing.T) {
	cl := newJGFCluster(t, 3)
	got, err := RunSeries(cl.Node(0), 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := SeriesCoefficients(0, 10)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coefficient %d: %v != %v", i, got[i], want[i])
		}
	}
}

// ----------------------------------------------------------------- Crypt

func TestIdeaRoundTrip(t *testing.T) {
	key := NewIdeaKey(99)
	plain := make([]byte, 256)
	for i := range plain {
		plain[i] = byte(i * 31)
	}
	cipher, err := IdeaCrypt(plain, key.Enc)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(cipher, plain) {
		t.Fatal("cipher equals plaintext")
	}
	back, err := IdeaCrypt(cipher, key.Dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, plain) {
		t.Fatal("IDEA round trip failed")
	}
}

func TestIdeaRejectsBadLength(t *testing.T) {
	key := NewIdeaKey(1)
	if _, err := IdeaCrypt(make([]byte, 7), key.Enc); err == nil {
		t.Error("length 7 accepted")
	}
}

func TestIdeaKeyDeterministic(t *testing.T) {
	a := NewIdeaKey(7)
	b := NewIdeaKey(7)
	c := NewIdeaKey(8)
	for i := range a.Enc {
		if a.Enc[i] != b.Enc[i] {
			t.Fatal("key schedule not deterministic")
		}
	}
	same := true
	for i := range a.Enc {
		if a.Enc[i] != c.Enc[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced the same schedule")
	}
}

func TestIdeaBlockIndependence(t *testing.T) {
	// ECB property: encrypting blocks separately equals encrypting the
	// concatenation — the property the farmed version relies on.
	key := NewIdeaKey(5)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	whole, err := IdeaCrypt(data, key.Enc)
	if err != nil {
		t.Fatal(err)
	}
	var parts []byte
	for off := 0; off < len(data); off += 16 {
		p, err := IdeaCrypt(data[off:off+16], key.Enc)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p...)
	}
	if !bytes.Equal(whole, parts) {
		t.Error("block-split encryption differs")
	}
}

func TestRunCryptMatchesSequential(t *testing.T) {
	cl := newJGFCluster(t, 2)
	key := NewIdeaKey(42)
	data := make([]byte, 800)
	for i := range data {
		data[i] = byte(i * 7)
	}
	got, err := RunCrypt(cl.Node(0), data, key.Enc, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := IdeaCrypt(data, key.Enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("farmed encryption differs from sequential")
	}
	// And decryption round-trips through the farm too.
	back, err := RunCrypt(cl.Node(0), got, key.Dec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("farmed decryption failed")
	}
}

// ----------------------------------------------------------------- SOR

func TestSORSequentialConverges(t *testing.T) {
	// With omega in (0,2) SOR smooths the grid: the residual sum changes
	// but stays finite and the grid remains in (0,1) bounds (boundary
	// rows are untouched).
	sum0 := SORSequential(16, 0, 1.25)
	sum10 := SORSequential(16, 10, 1.25)
	if math.IsNaN(sum10) || math.IsInf(sum10, 0) {
		t.Fatal("SOR diverged")
	}
	if sum0 == sum10 {
		t.Error("SOR did nothing")
	}
}

func TestSORDeterministic(t *testing.T) {
	a := SORSequential(20, 5, 1.25)
	b := SORSequential(20, 5, 1.25)
	if a != b {
		t.Error("sequential SOR not deterministic")
	}
}

func TestRunSORMatchesSequentialSingleWorker(t *testing.T) {
	cl := newJGFCluster(t, 1)
	got, err := RunSOR(cl.Node(0), 16, 4, 1, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	want := SORSequential(16, 4, 1.25)
	if got != want {
		t.Errorf("1-worker SOR = %v, want %v", got, want)
	}
}

func TestRunSORMatchesSequentialMultiWorker(t *testing.T) {
	for _, workers := range []int{2, 3, 4} {
		cl := newJGFCluster(t, 2)
		got, err := RunSOR(cl.Node(0), 24, 6, workers, 1.25)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		want := SORSequential(24, 6, 1.25)
		if got != want {
			t.Errorf("workers=%d: SOR = %v, want %v (bitwise)", workers, got, want)
		}
		cl.Close()
	}
}

func TestRunSORWorkerCap(t *testing.T) {
	cl := newJGFCluster(t, 1)
	// More workers than rows must clamp, not crash.
	got, err := RunSOR(cl.Node(0), 8, 2, 20, 1.25)
	if err != nil {
		t.Fatal(err)
	}
	want := SORSequential(8, 2, 1.25)
	if got != want {
		t.Errorf("clamped SOR = %v, want %v", got, want)
	}
}

func BenchmarkSeriesKernel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SeriesCoefficients(0, 4)
	}
}

func BenchmarkIdeaKernel(b *testing.B) {
	key := NewIdeaKey(3)
	data := make([]byte, 8192)
	b.SetBytes(8192)
	for i := 0; i < b.N; i++ {
		if _, err := IdeaCrypt(data, key.Enc); err != nil {
			b.Fatal(err)
		}
	}
}
