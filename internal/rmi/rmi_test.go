package rmi

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/transport"
)

// dServer mirrors the paper's Fig. 1 Java divide server.
type dServer struct{}

func (dServer) Divide(d1, d2 float64) (float64, error) {
	if d2 == 0 {
		return 0, errors.New("ArithmeticException: / by zero")
	}
	return d1 / d2, nil
}

func (dServer) Echo(nums []int32) []int32 { return nums }

func newPair(t *testing.T) (server, client *Runtime) {
	t.Helper()
	net := transport.NewMemNetwork()
	server = NewRuntime(net)
	if err := server.Listen("mem://rmiserver"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)
	client = NewRuntime(net)
	return server, client
}

func TestLookupAndInvoke(t *testing.T) {
	server, client := newPair(t)
	if err := server.Rebind("DivideServer", dServer{}); err != nil {
		t.Fatal(err)
	}
	stub, err := client.Lookup(server.URLFor("DivideServer"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := stub.Invoke("Divide", 10.0, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("Divide = %v", got)
	}
}

func TestRemoteExceptionOnServerError(t *testing.T) {
	server, client := newPair(t)
	server.Rebind("d", dServer{})
	stub, err := client.Lookup(server.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = stub.Invoke("Divide", 1.0, 0.0)
	var re *RemoteException
	if !errors.As(err, &re) {
		t.Fatalf("error = %v (%T), want *RemoteException", err, err)
	}
	if !strings.Contains(re.Msg, "zero") {
		t.Errorf("message = %q", re.Msg)
	}
}

func TestLookupUnbound(t *testing.T) {
	server, client := newPair(t)
	if _, err := client.Lookup(server.URLFor("missing")); err == nil {
		t.Error("lookup of unbound name should fail")
	}
}

func TestUnbind(t *testing.T) {
	server, client := newPair(t)
	server.Rebind("d", dServer{})
	stub, err := client.Lookup(server.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	if err := server.Unbind("d"); err != nil {
		t.Fatal(err)
	}
	if err := server.Unbind("d"); err == nil {
		t.Error("double unbind should return NotBoundException")
	}
	if _, err := stub.Invoke("Divide", 4.0, 2.0); err == nil {
		t.Error("call after unbind should fail")
	}
}

func TestRebindReplaces(t *testing.T) {
	server, client := newPair(t)
	server.Rebind("svc", dServer{})
	server.Rebind("svc", replacement{})
	stub, err := client.Lookup(server.URLFor("svc"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := stub.Invoke("Marco")
	if err != nil {
		t.Fatal(err)
	}
	if got != "polo" {
		t.Errorf("Marco = %v", got)
	}
}

type replacement struct{}

func (replacement) Marco() string { return "polo" }

func TestList(t *testing.T) {
	server, _ := newPair(t)
	server.Rebind("a", dServer{})
	server.Rebind("b", dServer{})
	names := server.List()
	sort.Strings(names)
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("List = %v", names)
	}
}

func TestReservedRegistryName(t *testing.T) {
	server, _ := newPair(t)
	if err := server.Rebind(registryURI, dServer{}); err == nil {
		t.Error("binding the reserved registry name should fail")
	}
}

func TestRegistryServiceRemote(t *testing.T) {
	server, client := newPair(t)
	server.Rebind("x", dServer{})
	stub, err := client.LookupStubUnchecked(server.URLFor(registryURI))
	if err != nil {
		t.Fatal(err)
	}
	got, err := stub.Invoke("ListNames")
	if err != nil {
		t.Fatal(err)
	}
	names, ok := got.([]string)
	if !ok || len(names) != 1 || names[0] != "x" {
		t.Errorf("remote ListNames = %#v", got)
	}
}

func TestMalformedURLs(t *testing.T) {
	_, client := newPair(t)
	for _, url := range []string{"", "d", "http://x/y", "rmi://hostonly", "rmi://host/"} {
		if _, err := client.Lookup(url); err == nil {
			t.Errorf("Lookup(%q) should fail", url)
		}
	}
}

func TestEchoLargeArray(t *testing.T) {
	server, client := newPair(t)
	server.Rebind("d", dServer{})
	stub, err := client.Lookup(server.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]int32, 10000)
	for i := range payload {
		payload[i] = int32(i * 3)
	}
	got, err := stub.Invoke("Echo", payload)
	if err != nil {
		t.Fatal(err)
	}
	gs, ok := got.([]int32)
	if !ok || len(gs) != len(payload) || gs[9999] != 29997 {
		t.Errorf("Echo = %T len %d", got, len(gs))
	}
}

func TestConcurrentStubs(t *testing.T) {
	server, client := newPair(t)
	server.Rebind("d", dServer{})
	stub, err := client.Lookup(server.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 8; j++ {
				got, err := stub.Invoke("Divide", float64(2*j), float64(j))
				if err != nil {
					errs <- err
					return
				}
				if got != 2.0 {
					errs <- errors.New("wrong quotient")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPIntegration(t *testing.T) {
	net := transport.TCPNetwork{}
	server := NewRuntime(net)
	if err := server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	server.Rebind("d", dServer{})
	client := NewRuntime(net)
	stub, err := client.Lookup(server.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := stub.Invoke("Divide", 9.0, 3.0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.0 {
		t.Errorf("Divide over TCP = %v", got)
	}
}

func TestOpnumStable(t *testing.T) {
	a := opnum("svc", "Divide")
	b := opnum("svc", "Divide")
	c := opnum("svc", "Echo")
	if a != b {
		t.Error("opnum not deterministic")
	}
	if a == c {
		t.Error("opnum collision across methods (unlikely)")
	}
}
