// Package rmi is the Go analogue of Java RMI (JDK 1.4-era), the baseline
// the paper compares ParC#/Mono remoting against in Figs. 8a and 9.
//
// It deliberately mirrors the usage burden the paper's §2 enumerates:
//
//  1. servers export explicitly instantiated objects (UnicastRemoteObject)
//     — there is no object-factory mode;
//  2. exported objects are bound in a name registry (Naming.rebind) and
//     clients must perform a registry Lookup round trip before the first
//     call (Naming.lookup);
//  3. every remote call can fail with *RemoteException, which callers are
//     expected to handle;
//  4. the wire format is the heavier javaser codec: stream magic, a full
//     class descriptor per object and block-data chunking.
//
// Endpoint costs of the 2005 Sun JVM are injected via CostModel exactly as
// in the remoting package; package profile provides calibrated values.
package rmi

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cost"
	"repro/internal/dispatch"
	"repro/internal/transport"
	"repro/internal/wire"
)

// RemoteException mirrors java.rmi.RemoteException: every remote invocation
// can return one.
type RemoteException struct {
	Name   string
	Method string
	Msg    string
}

// Error implements error.
func (e *RemoteException) Error() string {
	return fmt.Sprintf("rmi: RemoteException in %s.%s: %s", e.Name, e.Method, e.Msg)
}

// registryURI is the reserved binding name of the registry service itself.
const registryURI = "__registry"

// rmiCall is the JRMP-style request envelope.
type rmiCall struct {
	Name   string
	Method string
	Seq    uint64
	// Opnum mirrors JRMP's method hashing: a redundant operation hash
	// recomputed per call, part of the protocol's per-call weight.
	Opnum int64
	Args  []any
}

// rmiReturn is the reply envelope.
type rmiReturn struct {
	Seq    uint64
	Result any
	ErrMsg string
	IsErr  bool
}

func init() {
	wire.RegisterName("rmi.call", rmiCall{})
	wire.RegisterName("rmi.return", rmiReturn{})
}

// CostModel injects per-endpoint JVM software costs; see package cost.
type CostModel = cost.Model

// Runtime is one JVM's RMI subsystem: it can export objects (server role),
// host the registry and perform lookups/calls (client role).
type Runtime struct {
	net   transport.Network
	codec wire.Codec
	Cost  CostModel

	mu       sync.Mutex
	exported map[string]any
	listener transport.Listener
	conns    map[transport.Conn]struct{}
	closed   bool

	// expGen counts mutations of the exported table; per-connection
	// skeleton caches validate against it (see skelCache), the same
	// amortization discipline as the remoting server's bound-handle
	// table: fixed per-call lookup costs are paid once per connection,
	// not once per call.
	expGen atomic.Uint64

	seq  atomic.Uint64
	pool sync.Map // addr -> *connStack
	wg   sync.WaitGroup
}

// NewRuntime creates an RMI runtime over net.
func NewRuntime(net transport.Network) *Runtime {
	return &Runtime{
		net:      net,
		codec:    wire.JavaSer{},
		exported: make(map[string]any),
		conns:    make(map[transport.Conn]struct{}),
	}
}

// Listen starts the runtime's server endpoint (the analogue of exporting on
// a port and running LocateRegistry.createRegistry).
func (rt *Runtime) Listen(addr string) error {
	l, err := rt.net.Listen(addr)
	if err != nil {
		return err
	}
	rt.mu.Lock()
	rt.listener = l
	rt.mu.Unlock()
	rt.wg.Add(1)
	go rt.acceptLoop(l)
	return nil
}

// Addr returns the listening transport address.
func (rt *Runtime) Addr() string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.listener == nil {
		return ""
	}
	return rt.listener.Addr()
}

// Close shuts the endpoint down.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	l := rt.listener
	conns := make([]transport.Conn, 0, len(rt.conns))
	for c := range rt.conns {
		conns = append(conns, c)
	}
	rt.mu.Unlock()
	if l != nil {
		l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	// Also drop pooled client connections so peers' handlers unblock.
	rt.pool.Range(func(_, v any) bool {
		st := v.(*connStack)
		st.mu.Lock()
		for _, c := range st.conns {
			c.Close()
		}
		st.conns = nil
		st.mu.Unlock()
		return true
	})
	rt.wg.Wait()
}

// Rebind exports obj under name, replacing any previous binding
// (Naming.rebind on a UnicastRemoteObject).
func (rt *Runtime) Rebind(name string, obj any) error {
	if name == registryURI {
		return fmt.Errorf("rmi: name %q is reserved", name)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.exported[name] = obj
	rt.expGen.Add(1)
	return nil
}

// Unbind removes a binding (Naming.unbind).
func (rt *Runtime) Unbind(name string) error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, ok := rt.exported[name]; !ok {
		return fmt.Errorf("rmi: NotBoundException: %s", name)
	}
	delete(rt.exported, name)
	rt.expGen.Add(1)
	return nil
}

// List returns the bound names, like Naming.list.
func (rt *Runtime) List() []string {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	names := make([]string, 0, len(rt.exported))
	for n := range rt.exported {
		names = append(names, n)
	}
	return names
}

// URLFor returns the rmi URL for a bound name on this runtime.
func (rt *Runtime) URLFor(name string) string {
	return "rmi://" + trimMem(rt.Addr()) + "/" + name
}

func trimMem(addr string) string {
	if len(addr) > 6 && addr[:6] == "mem://" {
		return addr[6:]
	}
	return addr
}

// parseRMIURL splits "rmi://host:port/name" into transport address and
// binding name. Memory-network addresses re-acquire their "mem://" prefix by
// probing: the transport address is whatever the registry's runtime
// listens on, so the caller passes the original form through Stub.
func parseRMIURL(url string) (netaddr, name string, err error) {
	const pfx = "rmi://"
	if len(url) < len(pfx) || url[:len(pfx)] != pfx {
		return "", "", fmt.Errorf("rmi: MalformedURLException: %q", url)
	}
	rest := url[len(pfx):]
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			if i == len(rest)-1 {
				break
			}
			return rest[:i], rest[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("rmi: MalformedURLException: %q missing name", url)
}

// registryService is the remote interface of the registry itself.
type registryService struct {
	rt *Runtime
}

// LookupName reports whether name is bound; clients call it during Lookup.
func (r *registryService) LookupName(name string) (bool, error) {
	r.rt.mu.Lock()
	defer r.rt.mu.Unlock()
	_, ok := r.rt.exported[name]
	return ok, nil
}

// ListNames returns all bound names.
func (r *registryService) ListNames() ([]string, error) {
	return r.rt.List(), nil
}

func (rt *Runtime) acceptLoop(l transport.Listener) {
	defer rt.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		rt.mu.Lock()
		if rt.closed {
			rt.mu.Unlock()
			c.Close()
			return
		}
		rt.conns[c] = struct{}{}
		rt.mu.Unlock()
		rt.wg.Add(1)
		go rt.handleConn(c)
	}
}

func (rt *Runtime) handleConn(c transport.Conn) {
	defer rt.wg.Done()
	defer func() {
		c.Close()
		rt.mu.Lock()
		delete(rt.conns, c)
		rt.mu.Unlock()
	}()
	var sc skelCache
	for {
		raw, err := transport.RecvFrame(c)
		if err != nil {
			return
		}
		rt.Cost.Charge(len(raw))
		v, err := rt.codec.Unmarshal(raw)
		transport.PutFrame(raw) // decode copied everything it kept
		if err != nil {
			return
		}
		call, ok := v.(rmiCall)
		if !ok {
			return
		}
		ret := rt.dispatchCached(&call, &sc)
		rawRet, err := rt.codec.Marshal(*ret)
		if err != nil {
			fallback := rmiReturn{Seq: call.Seq, IsErr: true, ErrMsg: fmt.Sprintf("unencodable result: %v", err)}
			rawRet, err = rt.codec.Marshal(fallback)
			if err != nil {
				return
			}
		}
		rt.Cost.Charge(len(rawRet))
		if err := c.Send(rawRet); err != nil {
			return
		}
	}
}

// skelCache is one connection's dispatch cache: the last resolved export
// (validated against the runtime's export generation, so Rebind/Unbind
// take effect immediately) and the last resolved invoker thunk (validated
// by concrete type and method). An RMI connection typically hammers one
// stub's methods, so one entry captures the steady state. Owned by the
// connection's read loop; never shared.
type skelCache struct {
	gen    uint64
	name   string
	target any

	mtype  reflect.Type
	method string
	inv    dispatch.Invoker
}

func (rt *Runtime) dispatchCached(call *rmiCall, sc *skelCache) *rmiReturn {
	var target any
	if call.Name == registryURI {
		target = &registryService{rt: rt}
	} else if gen := rt.expGen.Load(); sc.target != nil && sc.gen == gen && sc.name == call.Name {
		target = sc.target
	} else {
		rt.mu.Lock()
		target = rt.exported[call.Name]
		rt.mu.Unlock()
		if target != nil {
			// gen was loaded before the map read: a racing Rebind can
			// only leave the cache conservatively stale, never fresh-
			// looking with an old target.
			sc.gen, sc.name, sc.target = gen, call.Name, target
		}
	}
	if target == nil {
		return &rmiReturn{Seq: call.Seq, IsErr: true, ErrMsg: fmt.Sprintf("NoSuchObjectException: %s", call.Name)}
	}
	var result any
	var err error
	if t := reflect.TypeOf(target); sc.inv != nil && sc.mtype == t && sc.method == call.Method {
		result, err = sc.inv(context.Background(), target, call.Args)
	} else if inv := dispatch.InvokerFor(t, call.Method); inv != nil {
		sc.mtype, sc.method, sc.inv = t, call.Method, inv
		result, err = inv(context.Background(), target, call.Args)
	} else {
		result, err = dispatch.Invoke(target, call.Method, call.Args)
	}
	if err != nil {
		return &rmiReturn{Seq: call.Seq, IsErr: true, ErrMsg: err.Error()}
	}
	return &rmiReturn{Seq: call.Seq, Result: result}
}

// Stub is the client-side proxy for a bound remote object, the analogue of
// the rmic-generated stub class.
type Stub struct {
	rt      *Runtime
	netaddr string
	name    string
}

// Lookup contacts the registry at the URL's host, verifies the binding
// exists (one full round trip, as Naming.lookup performs) and returns a
// stub. The URL host may be either a raw transport address or a
// memory-network address.
func (rt *Runtime) Lookup(url string) (*Stub, error) {
	netaddr, name, err := parseRMIURL(url)
	if err != nil {
		return nil, err
	}
	netaddr = rt.canonicalAddr(netaddr)
	stub := &Stub{rt: rt, netaddr: netaddr, name: name}
	probe := &Stub{rt: rt, netaddr: netaddr, name: registryURI}
	res, err := probe.Invoke("LookupName", name)
	if err != nil {
		return nil, err
	}
	if ok, _ := res.(bool); !ok {
		return nil, &RemoteException{Name: name, Method: "lookup", Msg: "NotBoundException"}
	}
	return stub, nil
}

// LookupStubUnchecked returns a stub without the registry round trip; used
// when the binding is known to exist (and by benchmarks isolating call cost
// from lookup cost).
func (rt *Runtime) LookupStubUnchecked(url string) (*Stub, error) {
	netaddr, name, err := parseRMIURL(url)
	if err != nil {
		return nil, err
	}
	return &Stub{rt: rt, netaddr: rt.canonicalAddr(netaddr), name: name}, nil
}

// canonicalAddr restores the mem:// prefix for memory-network hosts (URLs
// carry bare hosts, as real RMI URLs do). TCP hosts always carry a port, so
// a host without a colon is a memory (or shaped-memory) address.
func (rt *Runtime) canonicalAddr(host string) string {
	if !strings.Contains(host, ":") {
		return "mem://" + host
	}
	return host
}

// Name returns the binding name this stub targets.
func (s *Stub) Name() string { return s.name }

// Invoke performs a synchronous remote call. All failures surface as
// *RemoteException, mirroring Java's mandatory checked exception.
func (s *Stub) Invoke(method string, args ...any) (any, error) {
	call := &rmiCall{
		Name:   s.name,
		Method: method,
		Seq:    s.rt.seq.Add(1),
		Opnum:  opnum(s.name, method),
		Args:   args,
	}
	raw, err := s.rt.codec.Marshal(*call)
	if err != nil {
		return nil, &RemoteException{Name: s.name, Method: method, Msg: err.Error()}
	}
	c, err := s.rt.getConn(s.netaddr)
	if err != nil {
		return nil, &RemoteException{Name: s.name, Method: method, Msg: err.Error()}
	}
	ok := false
	defer func() {
		if ok {
			s.rt.putConn(s.netaddr, c)
		} else {
			c.Close()
		}
	}()
	s.rt.Cost.Charge(len(raw))
	if err := c.Send(raw); err != nil {
		return nil, &RemoteException{Name: s.name, Method: method, Msg: err.Error()}
	}
	rawRet, err := transport.RecvFrame(c)
	if err != nil {
		return nil, &RemoteException{Name: s.name, Method: method, Msg: err.Error()}
	}
	s.rt.Cost.Charge(len(rawRet))
	v, err := s.rt.codec.Unmarshal(rawRet)
	transport.PutFrame(rawRet) // decode copied everything it kept
	if err != nil {
		return nil, &RemoteException{Name: s.name, Method: method, Msg: err.Error()}
	}
	ret, isRet := v.(rmiReturn)
	if !isRet {
		return nil, &RemoteException{Name: s.name, Method: method, Msg: fmt.Sprintf("bad return type %T", v)}
	}
	if ret.Seq != call.Seq {
		return nil, &RemoteException{Name: s.name, Method: method, Msg: "sequence mismatch"}
	}
	if ret.IsErr {
		return nil, &RemoteException{Name: s.name, Method: method, Msg: ret.ErrMsg}
	}
	ok = true
	return ret.Result, nil
}

// opnum computes the JRMP-style operation hash carried on every call.
func opnum(name, method string) int64 {
	var h int64 = 1125899906842597
	for _, c := range name + "#" + method {
		h = 31*h + int64(c)
	}
	return h
}

type connStack struct {
	mu    sync.Mutex
	conns []transport.Conn
}

func (rt *Runtime) getConn(addr string) (transport.Conn, error) {
	v, _ := rt.pool.LoadOrStore(addr, &connStack{})
	st := v.(*connStack)
	st.mu.Lock()
	if n := len(st.conns); n > 0 {
		c := st.conns[n-1]
		st.conns = st.conns[:n-1]
		st.mu.Unlock()
		return c, nil
	}
	st.mu.Unlock()
	rt.Cost.ChargeConnect()
	return rt.net.Dial(addr)
}

func (rt *Runtime) putConn(addr string, c transport.Conn) {
	v, _ := rt.pool.LoadOrStore(addr, &connStack{})
	st := v.(*connStack)
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.conns) >= 16 {
		go c.Close()
		return
	}
	st.conns = append(st.conns, c)
}
