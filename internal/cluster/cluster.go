// Package cluster boots multi-node SCOOPP clusters. The paper's testbed was
// a Linux cluster of dual-processor nodes on 100 Mbit Ethernet; the
// reproduction harness runs the same node runtimes either inside one
// process over an in-memory (optionally netsim-shaped) network — the
// configuration used by tests and benchmarks — or as separate OS processes
// over TCP via cmd/parcnode.
package cluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/remoting"
	"repro/internal/threadpool"
	"repro/internal/transport"
)

// Options configures an in-process cluster.
type Options struct {
	// Nodes is the cluster size (default 1).
	Nodes int
	// ChannelKind selects the remoting channel implementation (default
	// remoting.TCP semantics over the memory transport).
	ChannelKind remoting.Kind
	// Net shapes the inter-node network; zero params mean an ideal
	// network (tests). Use netsim.Ethernet100 for the paper's testbed.
	Net netsim.Params
	// Cost charges per-endpoint software costs on the channel.
	Cost remoting.CostModel
	// PoolSize bounds each node's server-side concurrency (the Mono
	// thread pool); 0 means unbounded.
	PoolSize int
	// MaxInFlight bounds concurrent exchanges per multiplexed peer
	// connection (remoting.Multiplexed only); 0 selects the default.
	MaxInFlight int
	// MuxLanes sets how many multiplexed connections each node opens per
	// peer (remoting.Multiplexed only); 0 selects min(GOMAXPROCS, 4).
	MuxLanes int
	// Placement, Agglomeration, Aggregation are forwarded to every
	// node's core.Config.
	Placement     core.PlacementPolicy
	Agglomeration core.AgglomerationPolicy
	Aggregation   core.AggregationConfig
	// LoadCacheTTL forwards to core.Config.
	LoadCacheTTL time.Duration
	// HealthProbe, when non-zero, has every node probe its peers at this
	// interval, grading them suspect/down on consecutive failures; down
	// peers are excluded from placement (core.Config.HealthProbe).
	HealthProbe time.Duration
	// RebalanceEvery, when non-zero, has every node periodically migrate
	// objects away while it is loaded above the cluster mean
	// (core.Config.RebalanceEvery).
	RebalanceEvery time.Duration
	// MailboxBound caps every actor mailbox's queued calls on every node;
	// full mailboxes shed with errs.ErrOverloaded according to Shed
	// (core.Config.MailboxBound / core.Config.Shed). 0 = unbounded.
	MailboxBound int
	Shed         core.ShedPolicy
	// Retry, when enabled, is installed on every node's channel
	// (core.Config.Retry): transient remote-call failures retry with
	// jittered backoff behind per-peer circuit breakers.
	Retry remoting.RetryPolicy
	// IdempotentCalls stamps outermost proxy calls with idempotency
	// tokens; DedupPerObject caps each hosted object's reply-dedup LRU
	// (core.Config.IdempotentCalls / core.Config.DedupPerObject).
	IdempotentCalls bool
	DedupPerObject  int
}

// Cluster is a set of in-process node runtimes sharing one network.
type Cluster struct {
	nodes []*core.Runtime
	pools []*threadpool.Pool
	// Stats exposes the shaped network's traffic counters (nil when the
	// network is unshaped).
	Stats *netsim.Stats
}

// New boots an in-process cluster and joins all nodes.
func New(opts Options) (*Cluster, error) {
	if opts.Nodes <= 0 {
		opts.Nodes = 1
	}
	mem := transport.NewMemNetwork()
	var net transport.Network = mem
	cl := &Cluster{}
	if !opts.Net.Zero() {
		sn := netsim.NewShapedNetwork(mem, opts.Net)
		cl.Stats = sn.Stats
		net = sn
	}
	addrs := make([]string, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		ch := newChannel(opts.ChannelKind, net)
		ch.Cost = opts.Cost
		ch.MaxInFlight = opts.MaxInFlight
		ch.MuxLanes = opts.MuxLanes
		var pool *threadpool.Pool
		if opts.PoolSize > 0 {
			pool = threadpool.New(opts.PoolSize, 0)
			cl.pools = append(cl.pools, pool)
		}
		// Each node needs its own placement policy value only if the
		// policy is stateful per node; RoundRobin keeps one shared
		// counter which is also fine, but nil defaults per node.
		rt, err := core.Start(core.Config{
			NodeID:          i,
			Channel:         ch,
			Pool:            pool,
			Placement:       opts.Placement,
			Agglomeration:   opts.Agglomeration,
			Aggregation:     opts.Aggregation,
			LoadCacheTTL:    opts.LoadCacheTTL,
			HealthProbe:     opts.HealthProbe,
			RebalanceEvery:  opts.RebalanceEvery,
			MailboxBound:    opts.MailboxBound,
			Shed:            opts.Shed,
			Retry:           opts.Retry,
			IdempotentCalls: opts.IdempotentCalls,
			DedupPerObject:  opts.DedupPerObject,
		}, fmt.Sprintf("mem://node%d", i))
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("cluster: start node %d: %w", i, err)
		}
		cl.nodes = append(cl.nodes, rt)
		addrs[i] = rt.Addr()
	}
	for _, rt := range cl.nodes {
		if err := rt.JoinCluster(addrs); err != nil {
			cl.Close()
			return nil, err
		}
	}
	return cl, nil
}

func newChannel(kind remoting.Kind, net transport.Network) *remoting.Channel {
	switch kind {
	case remoting.LegacyTCP:
		return remoting.NewLegacyTCPChannel(net)
	case remoting.HTTP:
		return remoting.NewHTTPChannel(net)
	case remoting.Multiplexed:
		return remoting.NewMultiplexedChannel(net)
	default:
		return remoting.NewTCPChannel(net)
	}
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i's runtime. Node 0 conventionally plays the
// application entry node.
func (c *Cluster) Node(i int) *core.Runtime { return c.nodes[i] }

// RegisterClass registers a parallel-object class on every node, as the
// paper's generated boot code did.
func (c *Cluster) RegisterClass(name string, factory func() any) {
	for _, rt := range c.nodes {
		rt.RegisterClass(name, factory)
	}
}

// RegisterVirtualClass registers a virtual-object class on every node with
// one shared policy — virtual placement requires every node to agree on
// which classes are virtual and how they replicate.
func (c *Cluster) RegisterVirtualClass(name string, factory func() any, cfg core.VirtualConfig) {
	for _, rt := range c.nodes {
		rt.RegisterVirtualClass(name, factory, cfg)
	}
}

// Rebalance triggers one load rebalance on every node in turn, returning
// the total number of objects migrated and the first error encountered —
// one node's failed migration does not stop the pass for the others. It
// is the explicit companion of Options.RebalanceEvery.
func (c *Cluster) Rebalance(ctx context.Context) (int, error) {
	total := 0
	var firstErr error
	for _, rt := range c.nodes {
		n, err := rt.Rebalance(ctx)
		total += n
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return total, firstErr
}

// PoolQueueWait sums the thread pools' cumulative queue wait across nodes
// (zero when pools are unbounded); the starvation measure of ablation A4.
func (c *Cluster) PoolQueueWait() time.Duration {
	var total time.Duration
	for _, p := range c.pools {
		total += p.Snapshot().TotalQueueWait
	}
	return total
}

// Close shuts every node down. Each node's Runtime.Close also closes its
// channel's client-side connections (idle pooled conns, multiplexed peer
// pipes), so a torn-down in-process cluster leaks nothing.
func (c *Cluster) Close() {
	for _, rt := range c.nodes {
		rt.Close()
	}
	for _, p := range c.pools {
		p.Close()
	}
}
