package cluster

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/remoting"
)

type echo struct {
	mu sync.Mutex
	n  int
}

func (e *echo) Ping(v int) int { return v }

func (e *echo) Bump() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.n++
}

func (e *echo) N() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.n
}

func TestNewDefaults(t *testing.T) {
	cl, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Size() != 1 {
		t.Errorf("default size = %d", cl.Size())
	}
}

func TestMultiNodeRoundTrip(t *testing.T) {
	cl, err := New(Options{Nodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.RegisterClass("echo", func() any { return &echo{} })
	remoteSeen := false
	for i := 0; i < 6; i++ {
		p, err := cl.Node(0).NewParallelObject("echo")
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Invoke("Ping", i)
		if err != nil {
			t.Fatal(err)
		}
		if got != i {
			t.Errorf("Ping(%d) = %v", i, got)
		}
		if !p.IsLocal() {
			remoteSeen = true
		}
	}
	if !remoteSeen {
		t.Error("round robin never crossed nodes")
	}
}

func TestChannelKinds(t *testing.T) {
	for _, kind := range []remoting.Kind{remoting.TCP, remoting.LegacyTCP, remoting.HTTP} {
		t.Run(kind.String(), func(t *testing.T) {
			cl, err := New(Options{Nodes: 2, ChannelKind: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			cl.RegisterClass("echo", func() any { return &echo{} })
			p, err := cl.Node(0).NewParallelObject("echo")
			if err != nil {
				t.Fatal(err)
			}
			if got, err := p.Invoke("Ping", 9); err != nil || got != 9 {
				t.Errorf("Ping over %s = %v, %v", kind, got, err)
			}
		})
	}
}

func TestShapedClusterCountsTraffic(t *testing.T) {
	cl, err := New(Options{Nodes: 2, Net: netsim.Params{Latency: 100 * time.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if cl.Stats == nil {
		t.Fatal("shaped cluster has no stats")
	}
	cl.RegisterClass("echo", func() any { return &echo{} })
	p, err := cl.Node(0).NewParallelObject("echo")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("Ping", 1); err != nil {
		t.Fatal(err)
	}
	if cl.Stats.MsgsSent() == 0 {
		t.Error("no traffic counted through shaped network")
	}
}

func TestPoolCapApplied(t *testing.T) {
	cl, err := New(Options{Nodes: 2, PoolSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.RegisterClass("echo", func() any { return &echo{} })
	p, err := cl.Node(0).NewParallelObject("echo")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p.Post("Bump")
	}
	p.Wait()
	got, err := p.Invoke("N")
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("N = %v", got)
	}
	// Queue wait may be zero under a fast pool; the accessor must not
	// panic regardless.
	_ = cl.PoolQueueWait()
}

func TestAggregationForwarded(t *testing.T) {
	cl, err := New(Options{
		Nodes:       2,
		Aggregation: core.AggregationConfig{MaxCalls: 4},
		Placement:   forceNode1{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.RegisterClass("echo", func() any { return &echo{} })
	p, err := cl.Node(0).NewParallelObject("echo")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p.Post("Bump")
	}
	p.Wait()
	if st := cl.Node(0).Stats(); st.BatchesSent != 2 {
		t.Errorf("batches = %d, want 2", st.BatchesSent)
	}
}

type forceNode1 struct{}

func (forceNode1) Pick(self int, loads []core.NodeLoad) int { return 1 }

// TestMultiplexedCluster runs the full SCOOPP stack — placement, remote
// creation, sync/async proxy calls, destruction — over the multiplexed
// channel with a tight in-flight bound, exercising the pipelined path end
// to end.
func TestMultiplexedCluster(t *testing.T) {
	cl, err := New(Options{
		Nodes:       3,
		ChannelKind: remoting.Multiplexed,
		MaxInFlight: 8,
		Placement:   forceNode1{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.RegisterClass("echo", func() any { return &echo{} })
	p, err := cl.Node(0).NewParallelObject("echo")
	if err != nil {
		t.Fatal(err)
	}
	if p.IsLocal() {
		t.Fatal("object should be remote")
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			got, err := p.Invoke("Ping", v)
			if err != nil {
				t.Error(err)
				return
			}
			if got != v {
				t.Errorf("Ping(%d) = %v", v, got)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 10; i++ {
		p.Post("Bump")
	}
	p.Wait()
	if err := p.AsyncErr(); err != nil {
		t.Fatal(err)
	}
	got, err := p.Invoke("N")
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("N = %v, want 10", got)
	}
	if err := p.Destroy(); err != nil {
		t.Fatal(err)
	}
}
