package mpi

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cost"
	"repro/internal/transport"
)

func newWorld(t *testing.T, size int) *World {
	t.Helper()
	w, err := NewWorld(size, transport.NewMemNetwork(), cost.Model{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	return w
}

// run executes body on every rank concurrently and waits, failing the test
// on the first error.
func run(t *testing.T, w *World, body func(c *Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan error, w.Size())
	for r := 0; r < w.Size(); r++ {
		wg.Add(1)
		go func(c *Comm) {
			defer wg.Done()
			if err := body(c); err != nil {
				errs <- fmt.Errorf("rank %d: %w", c.Rank(), err)
			}
		}(w.Comm(r))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	w := newWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		data, st, err := c.Recv(0, 7)
		if err != nil {
			return err
		}
		if string(data) != "hello" || st.Source != 0 || st.Tag != 7 || st.Count != 5 {
			return fmt.Errorf("got %q status %+v", data, st)
		}
		return nil
	})
}

func TestTagMatching(t *testing.T) {
	w := newWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			// Send out of tag order; receiver picks by tag.
			if err := c.Send(1, 2, []byte("second")); err != nil {
				return err
			}
			return c.Send(1, 1, []byte("first"))
		}
		first, _, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		second, _, err := c.Recv(0, 2)
		if err != nil {
			return err
		}
		if string(first) != "first" || string(second) != "second" {
			return fmt.Errorf("tag matching failed: %q %q", first, second)
		}
		return nil
	})
}

func TestAnySourceAnyTag(t *testing.T) {
	w := newWorld(t, 3)
	run(t, w, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			seen := map[int]bool{}
			for i := 0; i < 2; i++ {
				_, st, err := c.Recv(AnySource, AnyTag)
				if err != nil {
					return err
				}
				seen[st.Source] = true
			}
			if !seen[1] || !seen[2] {
				return fmt.Errorf("sources seen: %v", seen)
			}
			return nil
		default:
			return c.Send(0, c.Rank()*10, []byte{byte(c.Rank())})
		}
	})
}

func TestSelfSend(t *testing.T) {
	w := newWorld(t, 1)
	c := w.Comm(0)
	if err := c.Send(0, 3, []byte("self")); err != nil {
		t.Fatal(err)
	}
	data, st, err := c.Recv(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "self" || st.Source != 0 {
		t.Errorf("self-send got %q %+v", data, st)
	}
}

func TestPairwiseOrdering(t *testing.T) {
	w := newWorld(t, 2)
	const n = 200
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				if err := c.Send(1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		for i := 0; i < n; i++ {
			data, _, err := c.Recv(0, 5)
			if err != nil {
				return err
			}
			if data[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order (%d)", i, data[0])
			}
		}
		return nil
	})
}

func TestNegativeTagRejected(t *testing.T) {
	w := newWorld(t, 2)
	if err := w.Comm(0).Send(1, -5, nil); err == nil {
		t.Error("negative application tag accepted")
	}
}

func TestRankOutOfRange(t *testing.T) {
	w := newWorld(t, 2)
	if err := w.Comm(0).Send(5, 0, nil); err == nil {
		t.Error("out-of-range destination accepted")
	}
}

func TestIsendIrecv(t *testing.T) {
	w := newWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			req := c.Isend(1, 9, []byte("async"))
			_, _, err := req.Wait()
			return err
		}
		req := c.Irecv(0, 9)
		data, st, err := req.Wait()
		if err != nil {
			return err
		}
		if string(data) != "async" || st.Tag != 9 {
			return fmt.Errorf("got %q %+v", data, st)
		}
		if !req.Test() {
			return fmt.Errorf("Test false after Wait")
		}
		return nil
	})
}

func TestIprobe(t *testing.T) {
	w := newWorld(t, 2)
	c0, c1 := w.Comm(0), w.Comm(1)
	if c1.Iprobe(0, 4) {
		t.Error("Iprobe true before send")
	}
	if err := c0.Send(1, 4, []byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for !c1.Iprobe(0, 4) {
		if time.Now().After(deadline) {
			t.Fatal("Iprobe never saw the message")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBarrier(t *testing.T) {
	w := newWorld(t, 4)
	var before, after sync.Map
	run(t, w, func(c *Comm) error {
		before.Store(c.Rank(), time.Now())
		if err := c.Barrier(); err != nil {
			return err
		}
		after.Store(c.Rank(), time.Now())
		return nil
	})
	// Every exit time must be >= every entry time.
	var latestEntry time.Time
	before.Range(func(_, v any) bool {
		if tv := v.(time.Time); tv.After(latestEntry) {
			latestEntry = tv
		}
		return true
	})
	after.Range(func(k, v any) bool {
		if v.(time.Time).Before(latestEntry) {
			t.Errorf("rank %v exited barrier before all ranks entered", k)
		}
		return true
	})
}

func TestBcast(t *testing.T) {
	w := newWorld(t, 4)
	run(t, w, func(c *Comm) error {
		var in []byte
		if c.Rank() == 2 {
			in = []byte("payload")
		}
		out, err := c.Bcast(2, in)
		if err != nil {
			return err
		}
		if string(out) != "payload" {
			return fmt.Errorf("bcast got %q", out)
		}
		return nil
	})
}

func TestReduceOps(t *testing.T) {
	cases := []struct {
		op   Op
		want float64
	}{
		{Sum, 0 + 1 + 2 + 3},
		{Prod, 0},
		{Max, 3},
		{Min, 0},
	}
	for _, tc := range cases {
		w := newWorld(t, 4)
		var got float64
		run(t, w, func(c *Comm) error {
			v, err := c.Reduce(0, float64(c.Rank()), tc.op)
			if err != nil {
				return err
			}
			if c.Rank() == 0 {
				got = v
			}
			return nil
		})
		if got != tc.want {
			t.Errorf("Reduce(op=%d) = %v, want %v", tc.op, got, tc.want)
		}
		w.Close()
	}
}

func TestAllreduce(t *testing.T) {
	w := newWorld(t, 3)
	run(t, w, func(c *Comm) error {
		v, err := c.Allreduce(float64(c.Rank()+1), Sum)
		if err != nil {
			return err
		}
		if v != 6 {
			return fmt.Errorf("allreduce = %v on rank %d", v, c.Rank())
		}
		return nil
	})
}

func TestGatherScatter(t *testing.T) {
	w := newWorld(t, 3)
	run(t, w, func(c *Comm) error {
		parts, err := c.Gather(0, []byte{byte(c.Rank() + 100)})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			for i, p := range parts {
				if len(p) != 1 || p[0] != byte(i+100) {
					return fmt.Errorf("gather[%d] = %v", i, p)
				}
			}
		}
		var out [][]byte
		if c.Rank() == 0 {
			out = [][]byte{{10}, {11}, {12}}
		}
		mine, err := c.Scatter(0, out)
		if err != nil {
			return err
		}
		if len(mine) != 1 || mine[0] != byte(10+c.Rank()) {
			return fmt.Errorf("scatter got %v", mine)
		}
		return nil
	})
}

func TestScatterWrongPartCount(t *testing.T) {
	w := newWorld(t, 2)
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			if _, err := c.Scatter(0, [][]byte{{1}}); err == nil {
				return fmt.Errorf("scatter with wrong part count accepted")
			}
			// Unblock rank 1 with a correct scatter.
			_, err := c.Scatter(0, [][]byte{{1}, {2}})
			return err
		}
		_, err := c.Scatter(0, nil)
		return err
	})
}

func TestCollectivesRepeated(t *testing.T) {
	w := newWorld(t, 3)
	run(t, w, func(c *Comm) error {
		for round := 1; round <= 5; round++ {
			v, err := c.Allreduce(1, Sum)
			if err != nil {
				return err
			}
			if v != 3 {
				return fmt.Errorf("round %d: allreduce = %v", round, v)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
}

func TestCloseUnblocksRecv(t *testing.T) {
	w, err := NewWorld(2, transport.NewMemNetwork(), cost.Model{})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, _, err := w.Comm(0).Recv(1, 0)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	w.Close()
	if err := <-errc; err != ErrClosed {
		t.Errorf("Recv after close = %v, want ErrClosed", err)
	}
}

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewWorld(0, transport.NewMemNetwork(), cost.Model{}); err == nil {
		t.Error("size 0 world accepted")
	}
}

func TestPingPongLikePaper(t *testing.T) {
	// The Fig. 8a inner loop: rank 0 sends an int array, rank 1 echoes.
	w := newWorld(t, 2)
	payload := make([]int32, 1024)
	for i := range payload {
		payload[i] = int32(i)
	}
	run(t, w, func(c *Comm) error {
		if c.Rank() == 0 {
			var b Buffer
			b.PackInt32s(payload)
			if err := c.Send(1, 0, b.Bytes()); err != nil {
				return err
			}
			data, _, err := c.Recv(1, 0)
			if err != nil {
				return err
			}
			got, err := NewUnpackBuffer(data).UnpackInt32s()
			if err != nil {
				return err
			}
			if len(got) != len(payload) || got[1023] != 1023 {
				return fmt.Errorf("echo mismatch")
			}
			return nil
		}
		data, _, err := c.Recv(0, 0)
		if err != nil {
			return err
		}
		return c.Send(0, 0, data)
	})
}

func TestPackUnpackRoundtrip(t *testing.T) {
	var b Buffer
	b.PackInt32(-7)
	b.PackInt64(1 << 40)
	b.PackFloat64(math.Pi)
	b.PackString("packed")
	b.PackBytes([]byte{1, 2})
	b.PackInt32s([]int32{5, 6, 7})
	b.PackFloat64s([]float64{1.5})

	u := NewUnpackBuffer(b.Bytes())
	if v, _ := u.UnpackInt32(); v != -7 {
		t.Errorf("int32 = %d", v)
	}
	if v, _ := u.UnpackInt64(); v != 1<<40 {
		t.Errorf("int64 = %d", v)
	}
	if v, _ := u.UnpackFloat64(); v != math.Pi {
		t.Errorf("float64 = %v", v)
	}
	if v, _ := u.UnpackString(); v != "packed" {
		t.Errorf("string = %q", v)
	}
	if v, _ := u.UnpackBytes(); !bytes.Equal(v, []byte{1, 2}) {
		t.Errorf("bytes = %v", v)
	}
	if v, _ := u.UnpackInt32s(); len(v) != 3 || v[2] != 7 {
		t.Errorf("int32s = %v", v)
	}
	if v, _ := u.UnpackFloat64s(); len(v) != 1 || v[0] != 1.5 {
		t.Errorf("float64s = %v", v)
	}
	if _, err := u.UnpackInt32(); err == nil {
		t.Error("unpack past end should fail")
	}
}

func TestPackQuick(t *testing.T) {
	f := func(i32 int32, i64 int64, f64 float64, s string, bs []byte, is []int32) bool {
		if f64 != f64 {
			return true // NaN
		}
		var b Buffer
		b.PackInt32(i32)
		b.PackInt64(i64)
		b.PackFloat64(f64)
		b.PackString(s)
		b.PackBytes(bs)
		b.PackInt32s(is)
		u := NewUnpackBuffer(b.Bytes())
		g32, err := u.UnpackInt32()
		if err != nil || g32 != i32 {
			return false
		}
		g64, err := u.UnpackInt64()
		if err != nil || g64 != i64 {
			return false
		}
		gf, err := u.UnpackFloat64()
		if err != nil || gf != f64 {
			return false
		}
		gs, err := u.UnpackString()
		if err != nil || gs != s {
			return false
		}
		gb, err := u.UnpackBytes()
		if err != nil || !bytes.Equal(gb, bs) {
			return false
		}
		gi, err := u.UnpackInt32s()
		if err != nil || len(gi) != len(is) {
			return false
		}
		for i := range is {
			if gi[i] != is[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCostModelCharged(t *testing.T) {
	w, err := NewWorld(2, transport.NewMemNetwork(), cost.Model{PerMessage: 4 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Comm(1).Recv(0, 0)
	}()
	start := time.Now()
	if err := w.Comm(0).Send(1, 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	<-done
	if elapsed := time.Since(start); elapsed < 7*time.Millisecond {
		t.Errorf("cost model under-charged: %v", elapsed)
	}
}
