// Package mpi is a message-passing layer in the style of MPI 1.x, the
// low-level baseline of the paper's Fig. 8a (MPICH 1.2.6 in the original
// testbed). It provides ranked communicators with blocking and non-blocking
// tagged point-to-point messages, the core collectives, and MPI_Pack-style
// buffers — enough to express the CSP-style programs §2 contrasts with
// object-oriented remoting (explicit packing/unpacking included).
//
// A World is a set of ranks in one process connected through any
// transport.Network (shaped memory pipes in the benchmarks, TCP for real
// distribution). Message payloads are raw bytes: unlike the RPC stacks,
// nothing is serialised for the caller, which is exactly why the MPI curve
// sits above the others in Fig. 8a.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/cost"
	"repro/internal/transport"
)

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// AnyTag matches any application tag (>= 0) in Recv. Internal collective
// tags are negative and are never matched by AnyTag.
const AnyTag = math.MinInt

// ErrClosed is returned when the world has been shut down.
var ErrClosed = errors.New("mpi: world closed")

// Status describes a received message, like MPI_Status.
type Status struct {
	Source int
	Tag    int
	Count  int
}

// Op is a reduction operator.
type Op int

// Reduction operators.
const (
	Sum Op = iota
	Prod
	Max
	Min
)

func (o Op) apply(a, b float64) float64 {
	switch o {
	case Prod:
		return a * b
	case Max:
		return math.Max(a, b)
	case Min:
		return math.Min(a, b)
	default:
		return a + b
	}
}

// World is a communicator group: size ranks with full connectivity.
type World struct {
	size  int
	net   transport.Network
	cost  cost.Model
	comms []*Comm

	mu        sync.Mutex
	listeners []transport.Listener
	closed    bool
	wg        sync.WaitGroup
}

// NewWorld creates a world of size ranks over net. The cost model is
// charged per message at both endpoints (MPICH's software overhead in the
// calibrated experiments; zero in tests).
func NewWorld(size int, net transport.Network, c cost.Model) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", size)
	}
	w := &World{size: size, net: net, cost: c}
	for rank := 0; rank < size; rank++ {
		comm := &Comm{world: w, rank: rank}
		comm.box.cond = sync.NewCond(&comm.box.mu)
		w.comms = append(w.comms, comm)
	}
	for rank := 0; rank < size; rank++ {
		l, err := net.Listen("")
		if err != nil {
			w.Close()
			return nil, fmt.Errorf("mpi: listen for rank %d: %w", rank, err)
		}
		w.listeners = append(w.listeners, l)
		w.comms[rank].addr = l.Addr()
		w.wg.Add(1)
		go w.acceptLoop(rank, l)
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Comm returns rank's communicator.
func (w *World) Comm(rank int) *Comm { return w.comms[rank] }

// Close tears the world down. Blocked Recvs return ErrClosed.
func (w *World) Close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	ls := w.listeners
	w.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, c := range w.comms {
		c.box.mu.Lock()
		c.box.closed = true
		c.box.cond.Broadcast()
		c.box.mu.Unlock()
		c.conns.Range(func(_, v any) bool {
			v.(*sendConn).conn.Close()
			return true
		})
	}
	w.wg.Wait()
}

func (w *World) acceptLoop(rank int, l transport.Listener) {
	defer w.wg.Done()
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		w.wg.Add(1)
		go w.readLoop(rank, c)
	}
}

// readLoop pushes inbound messages into the rank's mailbox.
func (w *World) readLoop(rank int, c transport.Conn) {
	defer w.wg.Done()
	defer c.Close()
	box := &w.comms[rank].box
	for {
		raw, err := c.Recv()
		if err != nil {
			return
		}
		if len(raw) < 16 {
			continue
		}
		w.cost.Charge(len(raw) - 16)
		src := int(int64(binary.BigEndian.Uint64(raw)))
		tag := int(int64(binary.BigEndian.Uint64(raw[8:])))
		box.push(message{src: src, tag: tag, data: raw[16:]})
	}
}

// message is one queued inbound message.
type message struct {
	src  int
	tag  int
	data []byte
}

// mailbox implements MPI's unexpected-message queue with tag matching.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []message
	closed bool
}

func (b *mailbox) push(m message) {
	b.mu.Lock()
	b.msgs = append(b.msgs, m)
	b.cond.Broadcast()
	b.mu.Unlock()
}

// take removes and returns the first message matching (src, tag), blocking
// until one arrives. Like MPICH's progress engine, it busy-polls briefly
// before parking on the condition variable: real MPI owes part of its low
// latency to poll-mode completion, and the spin keeps the reproduction from
// paying a scheduler wake-up on every receive.
func (b *mailbox) take(src, tag int) (message, error) {
	const pollFor = 200 * time.Microsecond
	pollDeadline := time.Now().Add(pollFor)
	for {
		b.mu.Lock()
		for i, m := range b.msgs {
			if matches(m, src, tag) {
				b.msgs = append(b.msgs[:i], b.msgs[i+1:]...)
				b.mu.Unlock()
				return m, nil
			}
		}
		if b.closed {
			b.mu.Unlock()
			return message{}, ErrClosed
		}
		if time.Now().Before(pollDeadline) {
			b.mu.Unlock()
			runtime.Gosched()
			continue
		}
		b.cond.Wait()
		b.mu.Unlock()
	}
}

// poll is the non-blocking probe used by Iprobe.
func (b *mailbox) poll(src, tag int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, m := range b.msgs {
		if matches(m, src, tag) {
			return true
		}
	}
	return false
}

func matches(m message, src, tag int) bool {
	if src != AnySource && m.src != src {
		return false
	}
	switch tag {
	case AnyTag:
		return m.tag >= 0 // AnyTag never matches internal (negative) tags
	default:
		return m.tag == tag
	}
}

// sendConn serialises sends from one rank to one destination so message
// order is preserved per (src, dest) pair, as MPI guarantees.
type sendConn struct {
	mu   sync.Mutex
	conn transport.Conn
}

// Comm is one rank's handle on the world.
type Comm struct {
	world *World
	rank  int
	addr  string

	box   mailbox
	conns sync.Map // dest rank -> *sendConn

	// collSeq numbers collective operations; all ranks must invoke
	// collectives in the same order (the standard MPI requirement).
	collMu  sync.Mutex
	collSeq int
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Send transmits data to dest with an application tag (tag >= 0). It blocks
// until the message is handed to the transport (MPI_Send's local
// completion).
func (c *Comm) Send(dest, tag int, data []byte) error {
	if tag < 0 {
		return fmt.Errorf("mpi: application tags must be >= 0, got %d", tag)
	}
	return c.send(dest, tag, data)
}

func (c *Comm) send(dest, tag int, data []byte) error {
	if dest < 0 || dest >= c.world.size {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", dest, c.world.size)
	}
	if dest == c.rank {
		// Self-sends bypass the network, as in shared-memory MPI.
		cp := make([]byte, len(data))
		copy(cp, data)
		c.box.push(message{src: c.rank, tag: tag, data: cp})
		return nil
	}
	sc, err := c.connTo(dest)
	if err != nil {
		return err
	}
	buf := make([]byte, 16+len(data))
	binary.BigEndian.PutUint64(buf, uint64(int64(c.rank)))
	binary.BigEndian.PutUint64(buf[8:], uint64(int64(tag)))
	copy(buf[16:], data)
	c.world.cost.Charge(len(data))
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.conn.Send(buf)
}

func (c *Comm) connTo(dest int) (*sendConn, error) {
	if v, ok := c.conns.Load(dest); ok {
		return v.(*sendConn), nil
	}
	conn, err := c.world.net.Dial(c.world.comms[dest].addr)
	if err != nil {
		return nil, fmt.Errorf("mpi: rank %d dial rank %d: %w", c.rank, dest, err)
	}
	actual, loaded := c.conns.LoadOrStore(dest, &sendConn{conn: conn})
	if loaded {
		conn.Close()
	}
	return actual.(*sendConn), nil
}

// Recv blocks until a message matching src (or AnySource) and tag (or
// AnyTag) arrives.
func (c *Comm) Recv(src, tag int) ([]byte, Status, error) {
	m, err := c.box.take(src, tag)
	if err != nil {
		return nil, Status{}, err
	}
	return m.data, Status{Source: m.src, Tag: m.tag, Count: len(m.data)}, nil
}

// Iprobe reports without blocking whether a matching message is queued.
func (c *Comm) Iprobe(src, tag int) bool { return c.box.poll(src, tag) }

// Request is the handle of a non-blocking operation.
type Request struct {
	done chan struct{}
	data []byte
	st   Status
	err  error
}

// Wait blocks until the operation completes.
func (r *Request) Wait() ([]byte, Status, error) {
	<-r.done
	return r.data, r.st, r.err
}

// Test reports completion without blocking.
func (r *Request) Test() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// Isend starts a non-blocking send.
func (c *Comm) Isend(dest, tag int, data []byte) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.err = c.Send(dest, tag, data)
	}()
	return r
}

// Irecv starts a non-blocking receive.
func (c *Comm) Irecv(src, tag int) *Request {
	r := &Request{done: make(chan struct{})}
	go func() {
		defer close(r.done)
		r.data, r.st, r.err = c.Recv(src, tag)
	}()
	return r
}

// WaitAll waits for every request and returns the first error.
func WaitAll(reqs ...*Request) error {
	var first error
	for _, r := range reqs {
		if _, _, err := r.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// nextCollTag allocates the (negative) internal tag for the next collective.
func (c *Comm) nextCollTag() int {
	c.collMu.Lock()
	defer c.collMu.Unlock()
	c.collSeq++
	return -c.collSeq
}

// Barrier blocks until every rank has entered it.
func (c *Comm) Barrier() error {
	tag := c.nextCollTag()
	const root = 0
	if c.rank == root {
		for i := 1; i < c.Size(); i++ {
			if _, _, err := c.Recv(AnySource, tag); err != nil {
				return err
			}
		}
		for i := 1; i < c.Size(); i++ {
			if err := c.send(i, tag, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.send(root, tag, nil); err != nil {
		return err
	}
	_, _, err := c.Recv(root, tag)
	return err
}

// Bcast distributes root's buffer to every rank and returns the local copy.
func (c *Comm) Bcast(root int, data []byte) ([]byte, error) {
	tag := c.nextCollTag()
	if c.rank == root {
		for i := 0; i < c.Size(); i++ {
			if i == root {
				continue
			}
			if err := c.send(i, tag, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	m, err := c.box.take(root, tag)
	if err != nil {
		return nil, err
	}
	return m.data, nil
}

// Reduce combines value across ranks with op; the result is valid at root.
func (c *Comm) Reduce(root int, value float64, op Op) (float64, error) {
	tag := c.nextCollTag()
	if c.rank != root {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(value))
		return 0, c.send(root, tag, buf[:])
	}
	acc := value
	for i := 0; i < c.Size()-1; i++ {
		m, err := c.box.take(AnySource, tag)
		if err != nil {
			return 0, err
		}
		if len(m.data) != 8 {
			return 0, fmt.Errorf("mpi: reduce payload %d bytes", len(m.data))
		}
		acc = op.apply(acc, math.Float64frombits(binary.BigEndian.Uint64(m.data)))
	}
	return acc, nil
}

// Allreduce combines value across ranks and returns the result everywhere.
func (c *Comm) Allreduce(value float64, op Op) (float64, error) {
	const root = 0
	acc, err := c.Reduce(root, value, op)
	if err != nil {
		return 0, err
	}
	var payload []byte
	if c.rank == root {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], math.Float64bits(acc))
		payload = buf[:]
	}
	out, err := c.Bcast(root, payload)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.BigEndian.Uint64(out)), nil
}

// Gather collects every rank's buffer at root; the result slice is indexed
// by rank and is nil on non-roots.
func (c *Comm) Gather(root int, data []byte) ([][]byte, error) {
	tag := c.nextCollTag()
	if c.rank != root {
		return nil, c.send(root, tag, data)
	}
	out := make([][]byte, c.Size())
	out[root] = data
	for i := 0; i < c.Size()-1; i++ {
		m, err := c.box.take(AnySource, tag)
		if err != nil {
			return nil, err
		}
		out[m.src] = m.data
	}
	return out, nil
}

// Scatter distributes parts[i] from root to rank i and returns the local
// part. parts is ignored on non-roots.
func (c *Comm) Scatter(root int, parts [][]byte) ([]byte, error) {
	// Validate before consuming a collective tag so a failed call on the
	// root does not desynchronise the tag sequence across ranks.
	if c.rank == root && len(parts) != c.Size() {
		return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", c.Size(), len(parts))
	}
	tag := c.nextCollTag()
	if c.rank == root {
		for i, p := range parts {
			if i == root {
				continue
			}
			if err := c.send(i, tag, p); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	m, err := c.box.take(root, tag)
	if err != nil {
		return nil, err
	}
	return m.data, nil
}
