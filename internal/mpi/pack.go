package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Buffer is an MPI_Pack-style packing buffer. The paper's §2 contrasts this
// explicit pack/unpack discipline ("a data structure residing in a
// non-continuous memory must be packed into a continuous memory area before
// being sent") with the automatic serialisation of Java/C# — the ParC++
// implementation had to generate exactly this code, and its removal is the
// main simplification ParC# reports in §3.2.
//
// A Buffer is either in packing mode (zero value, write methods) or
// unpacking mode (NewUnpackBuffer, read methods). All integers are packed
// big-endian.
type Buffer struct {
	data []byte
	pos  int
}

// NewUnpackBuffer wraps received bytes for unpacking.
func NewUnpackBuffer(data []byte) *Buffer {
	return &Buffer{data: data}
}

// Bytes returns the packed bytes for sending.
func (b *Buffer) Bytes() []byte { return b.data }

// Len returns the packed length.
func (b *Buffer) Len() int { return len(b.data) }

// PackInt32 appends one int32.
func (b *Buffer) PackInt32(v int32) {
	b.data = binary.BigEndian.AppendUint32(b.data, uint32(v))
}

// PackInt64 appends one int64.
func (b *Buffer) PackInt64(v int64) {
	b.data = binary.BigEndian.AppendUint64(b.data, uint64(v))
}

// PackFloat64 appends one float64.
func (b *Buffer) PackFloat64(v float64) {
	b.data = binary.BigEndian.AppendUint64(b.data, math.Float64bits(v))
}

// PackString appends a length-prefixed string.
func (b *Buffer) PackString(s string) {
	b.PackInt32(int32(len(s)))
	b.data = append(b.data, s...)
}

// PackBytes appends a length-prefixed byte slice.
func (b *Buffer) PackBytes(p []byte) {
	b.PackInt32(int32(len(p)))
	b.data = append(b.data, p...)
}

// PackInt32s appends a length-prefixed int32 array.
func (b *Buffer) PackInt32s(vs []int32) {
	b.PackInt32(int32(len(vs)))
	for _, v := range vs {
		b.PackInt32(v)
	}
}

// PackFloat64s appends a length-prefixed float64 array.
func (b *Buffer) PackFloat64s(vs []float64) {
	b.PackInt32(int32(len(vs)))
	for _, v := range vs {
		b.PackFloat64(v)
	}
}

func (b *Buffer) need(n int) error {
	if b.pos+n > len(b.data) {
		return fmt.Errorf("mpi: unpack past end of buffer (pos %d, need %d, len %d)", b.pos, n, len(b.data))
	}
	return nil
}

// UnpackInt32 reads one int32.
func (b *Buffer) UnpackInt32() (int32, error) {
	if err := b.need(4); err != nil {
		return 0, err
	}
	v := int32(binary.BigEndian.Uint32(b.data[b.pos:]))
	b.pos += 4
	return v, nil
}

// UnpackInt64 reads one int64.
func (b *Buffer) UnpackInt64() (int64, error) {
	if err := b.need(8); err != nil {
		return 0, err
	}
	v := int64(binary.BigEndian.Uint64(b.data[b.pos:]))
	b.pos += 8
	return v, nil
}

// UnpackFloat64 reads one float64.
func (b *Buffer) UnpackFloat64() (float64, error) {
	if err := b.need(8); err != nil {
		return 0, err
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(b.data[b.pos:]))
	b.pos += 8
	return v, nil
}

// UnpackString reads a length-prefixed string.
func (b *Buffer) UnpackString() (string, error) {
	n, err := b.UnpackInt32()
	if err != nil {
		return "", err
	}
	if n < 0 {
		return "", fmt.Errorf("mpi: negative string length %d", n)
	}
	if err := b.need(int(n)); err != nil {
		return "", err
	}
	s := string(b.data[b.pos : b.pos+int(n)])
	b.pos += int(n)
	return s, nil
}

// UnpackBytes reads a length-prefixed byte slice.
func (b *Buffer) UnpackBytes() ([]byte, error) {
	n, err := b.UnpackInt32()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("mpi: negative byte length %d", n)
	}
	if err := b.need(int(n)); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b.data[b.pos:])
	b.pos += int(n)
	return out, nil
}

// UnpackInt32s reads a length-prefixed int32 array.
func (b *Buffer) UnpackInt32s() ([]int32, error) {
	n, err := b.UnpackInt32()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("mpi: negative array length %d", n)
	}
	out := make([]int32, n)
	for i := range out {
		if out[i], err = b.UnpackInt32(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UnpackFloat64s reads a length-prefixed float64 array.
func (b *Buffer) UnpackFloat64s() ([]float64, error) {
	n, err := b.UnpackInt32()
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("mpi: negative array length %d", n)
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = b.UnpackFloat64(); err != nil {
			return nil, err
		}
	}
	return out, nil
}
