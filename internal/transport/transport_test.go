package transport

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func testNetworkRoundtrip(t *testing.T, net Network, addr string) {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		for {
			msg, err := c.Recv()
			if err != nil {
				done <- nil
				return
			}
			if err := c.Send(append([]byte("echo:"), msg...)); err != nil {
				done <- err
				return
			}
		}
	}()

	c, err := net.Dial(l.Addr())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	for i := 0; i < 10; i++ {
		msg := []byte(fmt.Sprintf("hello %d", i))
		if err := c.Send(msg); err != nil {
			t.Fatalf("Send: %v", err)
		}
		got, err := c.Recv()
		if err != nil {
			t.Fatalf("Recv: %v", err)
		}
		want := append([]byte("echo:"), msg...)
		if !bytes.Equal(got, want) {
			t.Fatalf("got %q, want %q", got, want)
		}
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestTCPRoundtrip(t *testing.T) {
	testNetworkRoundtrip(t, TCPNetwork{}, "127.0.0.1:0")
}

func TestMemRoundtrip(t *testing.T) {
	testNetworkRoundtrip(t, NewMemNetwork(), "mem://echo")
}

func TestMemAutoAddr(t *testing.T) {
	net := NewMemNetwork()
	l1, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := net.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	if l1.Addr() == l2.Addr() {
		t.Errorf("auto addresses collide: %s", l1.Addr())
	}
}

func TestMemAddrInUse(t *testing.T) {
	net := NewMemNetwork()
	if _, err := net.Listen("mem://x"); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("mem://x"); err == nil {
		t.Error("expected address-in-use error")
	}
}

func TestMemDialUnknown(t *testing.T) {
	net := NewMemNetwork()
	if _, err := net.Dial("mem://nowhere"); err == nil {
		t.Error("expected dial error")
	}
}

func TestMemListenerCloseFreesAddr(t *testing.T) {
	net := NewMemNetwork()
	l, err := net.Listen("mem://reuse")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := net.Listen("mem://reuse"); err != nil {
		t.Errorf("address not released after close: %v", err)
	}
}

func TestLargeMessages(t *testing.T) {
	for name, net := range map[string]Network{"tcp": TCPNetwork{}, "mem": NewMemNetwork()} {
		t.Run(name, func(t *testing.T) {
			l, err := net.Listen(listenAddr(name))
			if err != nil {
				t.Fatal(err)
			}
			defer l.Close()
			go func() {
				c, err := l.Accept()
				if err != nil {
					return
				}
				msg, err := c.Recv()
				if err != nil {
					return
				}
				c.Send(msg)
			}()
			c, err := net.Dial(l.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			big := make([]byte, 1<<20)
			for i := range big {
				big[i] = byte(i * 7)
			}
			if err := c.Send(big); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, big) {
				t.Error("large message corrupted")
			}
		})
	}
}

func listenAddr(network string) string {
	if network == "tcp" {
		return "127.0.0.1:0"
	}
	return ""
}

func TestOversizeMessageRejected(t *testing.T) {
	a, _ := NewPipe("a", "b")
	huge := make([]byte, MaxFrame+1)
	if err := a.Send(huge); err == nil {
		t.Error("oversize message accepted")
	}
}

func TestPipeOrdering(t *testing.T) {
	a, b := NewPipe("a", "b")
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			a.Send([]byte{byte(i)})
		}
	}()
	for i := 0; i < n; i++ {
		msg, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if msg[0] != byte(i) {
			t.Fatalf("out of order: got %d want %d", msg[0], i)
		}
	}
}

func TestPipeSenderBufferReuse(t *testing.T) {
	a, b := NewPipe("a", "b")
	buf := []byte("first")
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXXXX")
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "first" {
		t.Errorf("sender buffer reuse leaked: %q", got)
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	a, b := NewPipe("a", "b")
	errc := make(chan error, 1)
	go func() {
		_, err := b.Recv()
		errc <- err
	}()
	a.Close()
	if err := <-errc; err != ErrClosed {
		t.Errorf("Recv after close = %v, want ErrClosed", err)
	}
}

func TestConcurrentSenders(t *testing.T) {
	net := NewMemNetwork()
	l, err := net.Listen("mem://concurrent")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const senders, perSender = 8, 50
	received := make(chan []byte, senders*perSender)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for i := 0; i < senders*perSender; i++ {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			received <- msg
		}
	}()
	c, err := net.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				if err := c.Send([]byte{byte(s), byte(i)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	seen := make(map[[2]byte]bool)
	for i := 0; i < senders*perSender; i++ {
		msg := <-received
		key := [2]byte{msg[0], msg[1]}
		if seen[key] {
			t.Fatalf("duplicate message %v", key)
		}
		seen[key] = true
	}
}

// testSendBatch sends msgs in one batch and asserts the receiver sees each
// message intact, in order, with its exact bytes — frame boundaries must
// survive coalescing.
func testSendBatch(t *testing.T, net Network, addr string, msgs [][]byte) {
	t.Helper()
	l, err := net.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type recvResult struct {
		msgs [][]byte
		err  error
	}
	done := make(chan recvResult, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- recvResult{err: err}
			return
		}
		defer c.Close()
		var got [][]byte
		for range msgs {
			m, err := c.Recv()
			if err != nil {
				done <- recvResult{err: err}
				return
			}
			got = append(got, m)
		}
		done <- recvResult{msgs: got}
	}()
	c, err := net.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := SendBatch(c, msgs); err != nil {
		t.Fatalf("SendBatch: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("receive: %v", res.err)
	}
	for i, m := range msgs {
		if !bytes.Equal(res.msgs[i], m) {
			t.Fatalf("message %d: got %d bytes, want %d bytes (boundary lost)", i, len(res.msgs[i]), len(m))
		}
	}
}

func batchPayload(n, seed int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(seed + i)
	}
	return b
}

// TestSendBatchSmallTCP covers the copy path (total under batchCopyMax):
// many small frames leave in one Write.
func TestSendBatchSmallTCP(t *testing.T) {
	var msgs [][]byte
	for i := 0; i < 100; i++ {
		msgs = append(msgs, batchPayload(10+i, i))
	}
	testSendBatch(t, TCPNetwork{}, "127.0.0.1:0", msgs)
}

// TestSendBatchLargeTCP covers the vectored path (total over
// batchCopyMax): bodies go out through writev without an extra copy.
func TestSendBatchLargeTCP(t *testing.T) {
	msgs := [][]byte{
		batchPayload(1, 1),
		batchPayload(batchCopyMax, 2), // alone over the copy threshold
		batchPayload(777, 3),
		batchPayload(batchCopyMax/2, 4),
		batchPayload(3, 5),
	}
	testSendBatch(t, TCPNetwork{}, "127.0.0.1:0", msgs)
}

// TestSendBatchSingleAndEmpty: the degenerate batch sizes.
func TestSendBatchSingleAndEmpty(t *testing.T) {
	testSendBatch(t, TCPNetwork{}, "127.0.0.1:0", [][]byte{batchPayload(64, 9)})
	c, _ := NewPipe("a", "b")
	if err := SendBatch(c, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestSendBatchMemFallback: connections without batch support degrade to
// per-message sends with identical semantics.
func TestSendBatchMemFallback(t *testing.T) {
	net := NewMemNetwork()
	var msgs [][]byte
	for i := 0; i < 10; i++ {
		msgs = append(msgs, batchPayload(32+i, i))
	}
	testSendBatch(t, net, "mem://batch", msgs)
}

// TestSendBatchOversize: a single oversize message fails the whole batch
// before anything hits the wire.
func TestSendBatchOversize(t *testing.T) {
	l, err := TCPNetwork{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			defer c.Close()
			c.Recv() //nolint:errcheck
		}
	}()
	c, err := TCPNetwork{}.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	huge := make([]byte, MaxFrame+1)
	if err := SendBatch(c, [][]byte{{1}, huge}); err == nil {
		t.Fatal("oversize message in batch accepted")
	}
}

// TestSendBatchConcurrentWithSend: batched and single sends from separate
// goroutines must interleave at frame granularity only.
func TestSendBatchConcurrentWithSend(t *testing.T) {
	l, err := TCPNetwork{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const perSender = 50
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		seen := 0
		for seen < 3*perSender {
			m, err := c.Recv()
			if err != nil {
				done <- err
				return
			}
			// Every frame is self-consistent: filled with its length's seed.
			for i := range m {
				if m[i] != byte(int(m[0])+i) {
					done <- fmt.Errorf("frame corrupted at byte %d", i)
					return
				}
			}
			seen++
		}
		done <- nil
	}()
	c, err := TCPNetwork{}.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i += 2 {
				batch := [][]byte{batchPayload(20+s, 7*s), batchPayload(30+s, 7*s)}
				if err := SendBatch(c, batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
