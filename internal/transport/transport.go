// Package transport provides reliable, ordered message connections used by
// all three RPC stacks (remoting, rmi, mpi). Two interchangeable networks
// are provided: real TCP with 4-byte length framing, and an in-process
// memory network used by tests and by the single-process cluster harness.
// The netsim package wraps either network with latency/bandwidth shaping to
// model the paper's 100 Mbit Ethernet testbed.
package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// MaxFrame is the largest message accepted on the wire (64 MiB). The paper's
// ping-pong sweep tops out at 1 MB payloads; the guard exists so a corrupt
// length prefix cannot trigger an arbitrary allocation.
const MaxFrame = 64 << 20

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: connection closed")

// Conn is a reliable, ordered, message-oriented connection. Send and Recv
// are independently safe for concurrent use by multiple goroutines;
// concurrent Sends are serialised internally.
type Conn interface {
	// Send transmits one message.
	Send(msg []byte) error
	// Recv blocks until the next message arrives or the connection
	// closes, in which case it returns ErrClosed (or the underlying
	// error).
	Recv() ([]byte, error)
	// Close releases the connection. Pending and future calls fail.
	Close() error
	// LocalAddr and RemoteAddr identify the endpoints for diagnostics.
	LocalAddr() string
	RemoteAddr() string
}

// Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr is the address peers dial, for example "127.0.0.1:41730" or
	// "mem://node0".
	Addr() string
}

// Network creates listeners and dials peers. Implementations: TCPNetwork,
// MemNetwork and netsim.ShapedNetwork.
type Network interface {
	Listen(addr string) (Listener, error)
	Dial(addr string) (Conn, error)
}

// ---------------------------------------------------------------- TCP

// TCPNetwork is the production network: length-framed messages over TCP.
// The zero value is ready to use.
type TCPNetwork struct{}

// Listen implements Network. Use ":0" or "127.0.0.1:0" to pick a free port;
// the chosen address is available from Listener.Addr.
func (TCPNetwork) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

// Dial implements Network.
func (TCPNetwork) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// The remoting TCP channel disables Nagle, as Mono 1.1.7 does;
		// the legacy channel variant re-enables it at a higher layer.
		tc.SetNoDelay(true)
	}
	return newStreamConn(c), nil
}

type tcpListener struct {
	l net.Listener
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	return newStreamConn(c), nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// ---------------------------------------------------------------- frames

// frameRetain caps the capacity of buffers kept in the frame pool, so a
// one-off large message does not pin memory.
const frameRetain = 64 << 10

// framePool recycles receive buffers between messages. Buffers are stored
// behind pointers to keep sync.Pool from re-boxing the slice header.
var framePool = sync.Pool{New: func() any { return new([]byte) }}

// GetFrame returns a buffer of length n, reusing pooled capacity when
// possible. Pair with PutFrame once the frame's bytes are no longer
// referenced.
func GetFrame(n int) []byte {
	p := framePool.Get().(*[]byte)
	if cap(*p) >= n {
		return (*p)[:n]
	}
	framePool.Put(p)
	return make([]byte, n)
}

// PutFrame recycles a message buffer. Callers may hand back any buffer they
// own — including ones Recv allocated — but must not retain references into
// it afterwards; the wire codecs copy everything they decode, so releasing
// a frame right after Unmarshal is always safe.
func PutFrame(b []byte) {
	if cap(b) == 0 || cap(b) > frameRetain {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// PoolableFrame reports whether PutFrame would retain b. A frame the pool
// would refuse anyway (oversized, or not capacity-backed) is a candidate
// for zero-copy borrowing: letting decoded values alias it costs the pool
// nothing, and the GC frees frame and values together.
func PoolableFrame(b []byte) bool {
	return cap(b) > 0 && cap(b) <= frameRetain
}

// RecvFrame receives one message, drawing the buffer from the frame pool
// when the connection supports it (TCP stream connections do). The caller
// owns the result either way and should PutFrame it after its last use.
func RecvFrame(c Conn) ([]byte, error) {
	if pr, ok := c.(pooledReceiver); ok {
		return pr.recvPooled()
	}
	return c.Recv()
}

// pooledReceiver is implemented by connections whose receive path can fill
// a pooled buffer directly.
type pooledReceiver interface {
	recvPooled() ([]byte, error)
}

// BatchSender is implemented by connections that can transmit several
// messages in one wire write. The messages are framed exactly as if Send
// had been called once per message — batching changes the syscall count,
// never the on-the-wire bytes — so receivers cannot tell the difference.
type BatchSender interface {
	SendBatch(msgs [][]byte) error
}

// SendBatch transmits msgs in order, coalescing them into as few wire
// writes as the connection supports (one writev/Write for TCP stream
// connections). Connections without batch support degrade to one Send per
// message, so callers can batch unconditionally.
func SendBatch(c Conn, msgs [][]byte) error {
	if len(msgs) == 1 {
		return c.Send(msgs[0])
	}
	if bs, ok := c.(BatchSender); ok {
		return bs.SendBatch(msgs)
	}
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// streamConn frames messages over any net.Conn. Receives go through a
// buffered reader: a frame costs one syscall instead of two (prefix, then
// body), and when the peer batch-writes several frames (SendBatch), one
// read syscall fills the buffer with all of them — the receive-side half
// of write coalescing.
type streamConn struct {
	c       net.Conn
	sendMu  sync.Mutex
	wbuf    []byte // length prefix + body, reused between Sends
	recvMu  sync.Mutex
	br      *bufio.Reader
	rLenBuf [4]byte
}

// wbufRetain caps the write buffer kept between Sends; a one-off large
// message does not pin its buffer forever.
const wbufRetain = 64 << 10

// readBufSize sizes the receive buffer: big enough to swallow a full
// batch of small pipelined frames in one read, small enough that the
// pooled channel's dial churn can afford one per connection. Reads larger
// than the buffer bypass it (bufio reads straight into the target).
const readBufSize = 16 << 10

func newStreamConn(c net.Conn) *streamConn {
	return &streamConn{c: c, br: bufio.NewReaderSize(c, readBufSize)}
}

func (s *streamConn) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("transport: message of %d bytes exceeds MaxFrame", len(msg))
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	// Prefix and body go out in ONE Write: with Nagle disabled, separate
	// writes would put the 4-byte prefix in its own packet, doubling the
	// packet count exactly on the small pipelined messages where it hurts.
	n := 4 + len(msg)
	buf := s.wbuf
	if cap(buf) < n {
		buf = make([]byte, n)
		if n <= wbufRetain {
			s.wbuf = buf
		}
	}
	buf = buf[:n]
	binary.BigEndian.PutUint32(buf[:4], uint32(len(msg)))
	copy(buf[4:], msg)
	_, err := s.c.Write(buf)
	return err
}

// batchCopyMax bounds the contiguous buffer a batched send assembles;
// batches larger than this flush through vectored IO (net.Buffers) so big
// payloads are never copied an extra time.
const batchCopyMax = 64 << 10

// SendBatch implements BatchSender: every message is length-framed exactly
// as Send frames it, but the whole batch leaves in one Write (small
// batches, copied into the reusable write buffer) or one writev (large
// batches, vectored without copying the bodies).
func (s *streamConn) SendBatch(msgs [][]byte) error {
	total := 0
	for _, m := range msgs {
		if len(m) > MaxFrame {
			return fmt.Errorf("transport: message of %d bytes exceeds MaxFrame", len(m))
		}
		total += 4 + len(m)
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if total <= batchCopyMax {
		buf := s.wbuf
		if cap(buf) < total {
			buf = make([]byte, 0, total)
			s.wbuf = buf // total <= batchCopyMax == wbufRetain, safe to keep
		}
		buf = buf[:0]
		for _, m := range msgs {
			buf = binary.BigEndian.AppendUint32(buf, uint32(len(m)))
			buf = append(buf, m...)
		}
		_, err := s.c.Write(buf)
		return err
	}
	prefixes := make([]byte, 4*len(msgs))
	bufs := make(net.Buffers, 0, 2*len(msgs))
	for i, m := range msgs {
		p := prefixes[4*i : 4*i+4]
		binary.BigEndian.PutUint32(p, uint32(len(m)))
		bufs = append(bufs, p, m)
	}
	_, err := bufs.WriteTo(s.c)
	return err
}

func (s *streamConn) Recv() ([]byte, error) {
	return s.recv(func(n int) []byte { return make([]byte, n) })
}

// recvPooled implements pooledReceiver: the message lands in a frame-pool
// buffer, so steady-state receives allocate nothing.
func (s *streamConn) recvPooled() ([]byte, error) {
	return s.recv(GetFrame)
}

func (s *streamConn) recv(alloc func(int) []byte) ([]byte, error) {
	s.recvMu.Lock()
	defer s.recvMu.Unlock()
	if _, err := io.ReadFull(s.br, s.rLenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(s.rLenBuf[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds MaxFrame", n)
	}
	buf := alloc(int(n))
	if _, err := io.ReadFull(s.br, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func (s *streamConn) Close() error       { return s.c.Close() }
func (s *streamConn) LocalAddr() string  { return s.c.LocalAddr().String() }
func (s *streamConn) RemoteAddr() string { return s.c.RemoteAddr().String() }

// ---------------------------------------------------------------- memory

// MemNetwork is an in-process network keyed by "mem://name" addresses. It is
// used by unit tests and by the single-process cluster harness, where N
// simulated nodes live in one OS process (the paper's cluster collapsed onto
// one machine; netsim restores the network costs).
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	seq       int
}

// NewMemNetwork returns an empty memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*memListener)}
}

// Listen implements Network. An empty addr (or "mem://") allocates a fresh
// unique address.
func (m *MemNetwork) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if addr == "" || addr == "mem://" {
		m.seq++
		addr = fmt.Sprintf("mem://auto%d", m.seq)
	}
	if _, exists := m.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %s already in use", addr)
	}
	l := &memListener{
		addr:    addr,
		backlog: make(chan *memConn, 16),
		done:    make(chan struct{}),
		net:     m,
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (m *MemNetwork) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l, ok := m.listeners[addr]
	m.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %s", addr)
	}
	client, server := NewPipe(addr+"/client", addr)
	select {
	case l.backlog <- server.(*memConn):
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (m *MemNetwork) remove(addr string) {
	m.mu.Lock()
	delete(m.listeners, addr)
	m.mu.Unlock()
}

type memListener struct {
	addr    string
	backlog chan *memConn
	done    chan struct{}
	once    sync.Once
	net     *MemNetwork
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.remove(l.addr)
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// NewPipe returns two connected in-memory connections. Messages sent on one
// side are received on the other in order. Useful directly in tests.
func NewPipe(addrA, addrB string) (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(done) }) }
	a := &memConn{send: ab, recv: ba, done: done, close: closeFn, local: addrA, remote: addrB}
	b := &memConn{send: ba, recv: ab, done: done, close: closeFn, local: addrB, remote: addrA}
	return a, b
}

type memConn struct {
	send   chan []byte
	recv   chan []byte
	done   chan struct{}
	close  func()
	local  string
	remote string
}

func (c *memConn) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("transport: message of %d bytes exceeds MaxFrame", len(msg))
	}
	// Copy so the caller may reuse its buffer, matching TCP semantics.
	cp := make([]byte, len(msg))
	copy(cp, msg)
	select {
	case c.send <- cp:
		return nil
	case <-c.done:
		return ErrClosed
	}
}

func (c *memConn) Recv() ([]byte, error) {
	select {
	case msg := <-c.recv:
		return msg, nil
	case <-c.done:
		// Drain messages that raced with close so orderly shutdown
		// does not drop replies.
		select {
		case msg := <-c.recv:
			return msg, nil
		default:
		}
		return nil, ErrClosed
	}
}

func (c *memConn) Close() error {
	c.close()
	return nil
}

func (c *memConn) LocalAddr() string  { return c.local }
func (c *memConn) RemoteAddr() string { return c.remote }
