package transport

import (
	"errors"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"testing"
)

func TestUnixRoundtrip(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no unix domain sockets")
	}
	testNetworkRoundtrip(t, UnixNetwork{}, fmt.Sprintf("unix://rt-%d", os.Getpid()))
}

func TestUnixAutoAddr(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no unix domain sockets")
	}
	l1, err := UnixNetwork{}.Listen("unix://")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := UnixNetwork{}.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	for _, l := range []Listener{l1, l2} {
		if !strings.HasPrefix(l.Addr(), "unix://") {
			t.Errorf("auto address %q lacks the unix:// scheme", l.Addr())
		}
	}
	if l1.Addr() == l2.Addr() {
		t.Errorf("auto addresses collide: %q", l1.Addr())
	}
}

func TestUnixRejectsPathNames(t *testing.T) {
	// Names map to temp-dir socket files; path separators would escape it.
	if _, err := (UnixNetwork{}).Listen("unix://../evil"); err == nil {
		t.Error("path-traversal name accepted")
	}
	if _, err := (UnixNetwork{}).Dial("unix:///tmp/x.sock"); err == nil {
		t.Error("absolute path accepted")
	}
}

// TestUnixStaleSocketReclaim: a socket file left behind by a process that
// died without Close refuses the next bind; Listen must probe it, find
// nothing answering, and reclaim the address.
func TestUnixStaleSocketReclaim(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no unix domain sockets")
	}
	addr := fmt.Sprintf("unix://stale-%d", os.Getpid())
	path, err := UnixNetwork{}.socketPath(addr)
	if err != nil {
		t.Fatal(err)
	}
	// Fake the crash: bind the file, then close the fd without letting the
	// net listener unlink it.
	l, err := net.Listen("unix", path)
	if err != nil {
		t.Fatal(err)
	}
	l.(*net.UnixListener).SetUnlinkOnClose(false)
	l.Close()
	reclaimed, err := UnixNetwork{}.Listen(addr)
	if err != nil {
		t.Fatalf("stale socket not reclaimed: %v", err)
	}
	defer reclaimed.Close()
	testConnOnce(t, UnixNetwork{}, reclaimed)
}

// TestUnixLiveSocketNotStolen: when a listener is actually answering, a
// second Listen on the same name must fail instead of unlinking it.
func TestUnixLiveSocketNotStolen(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("no unix domain sockets")
	}
	addr := fmt.Sprintf("unix://live-%d", os.Getpid())
	l, err := UnixNetwork{}.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Echo every connection: the failed Listen's probe dial lands here too
	// (and just EOFs), so the real echo below cannot be stolen by it.
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c Conn) {
				defer c.Close()
				if msg, err := c.Recv(); err == nil {
					c.Send(msg) //nolint:errcheck
				}
			}(c)
		}
	}()
	if _, err := (UnixNetwork{}).Listen(addr); err == nil {
		t.Fatal("live listener's socket was stolen")
	}
	c, err := UnixNetwork{}.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("still here")); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Recv(); err != nil || string(got) != "still here" {
		t.Fatalf("echo after refused steal = %q, %v", got, err)
	}
}

// testConnOnce checks one echo over an already-open listener.
func testConnOnce(t *testing.T, n Network, l Listener) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		msg, err := c.Recv()
		if err != nil {
			done <- err
			return
		}
		done <- c.Send(msg)
	}()
	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Recv(); err != nil || string(got) != "ping" {
		t.Fatalf("echo = %q, %v", got, err)
	}
	if err := <-done; err != nil {
		t.Fatalf("server: %v", err)
	}
}

func TestInprocRoundtrip(t *testing.T) {
	testNetworkRoundtrip(t, NewInprocNetwork(), "inproc://echo")
}

func TestInprocAutoAddr(t *testing.T) {
	n := NewInprocNetwork()
	l1, err := n.Listen("inproc://")
	if err != nil {
		t.Fatal(err)
	}
	defer l1.Close()
	l2, err := n.Listen("")
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l1.Addr() == l2.Addr() {
		t.Errorf("auto addresses collide: %q", l1.Addr())
	}
	if _, err := n.Listen(l1.Addr()); err == nil {
		t.Error("duplicate listen accepted")
	}
}

func TestInprocCloseSemantics(t *testing.T) {
	n := NewInprocNetwork()
	l, err := n.Listen("inproc://closing")
	if err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("inproc://closing")
	if err != nil {
		t.Fatal(err)
	}
	s, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	// A reply racing the close must still be delivered (orderly shutdown),
	// then the conn reports closed.
	if err := s.Send([]byte("last")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if got, err := c.Recv(); err != nil || string(got) != "last" {
		t.Fatalf("drain after close = %q, %v", got, err)
	}
	if _, err := c.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after drain = %v, want ErrClosed", err)
	}
	if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send after close = %v, want ErrClosed", err)
	}
	// Closing the listener frees the name for reuse and fails waiting dials.
	l.Close()
	if _, err := n.Dial("inproc://closing"); err == nil {
		t.Error("dial succeeded after listener close")
	}
	if _, err := n.Listen("inproc://closing"); err != nil {
		t.Errorf("name not released after close: %v", err)
	}
}

func TestAutoRouting(t *testing.T) {
	if _, ok := networkFor("unix://x").(UnixNetwork); !ok {
		t.Error("unix:// not routed to UnixNetwork")
	}
	if n := networkFor("inproc://x"); n != Network(defaultInproc) {
		t.Error("inproc:// not routed to the process-global InprocNetwork")
	}
	if n := networkFor("mem://x"); n != Network(defaultMem) {
		t.Error("mem:// not routed to the process-global MemNetwork")
	}
	if _, ok := networkFor("127.0.0.1:7070").(TCPNetwork); !ok {
		t.Error("host:port not routed to TCPNetwork")
	}
	// End-to-end over Auto: two schemes, one Network value.
	testNetworkRoundtrip(t, Auto{}, "inproc://auto-routed")
	if runtime.GOOS != "windows" {
		testNetworkRoundtrip(t, Auto{}, fmt.Sprintf("unix://auto-routed-%d", os.Getpid()))
	}
}

func TestPoolableFrame(t *testing.T) {
	if PoolableFrame(nil) {
		t.Error("nil frame reported poolable")
	}
	if !PoolableFrame(GetFrame(1024)) {
		t.Error("pool-sized frame reported unpoolable")
	}
	if PoolableFrame(make([]byte, frameRetain+1)) {
		t.Error("oversized frame reported poolable")
	}
}
