// Co-located transports: Unix domain sockets for processes sharing a
// machine, and an in-process loopback for nodes sharing an address space.
// Both reuse the "self-describing address" convention of MemNetwork —
// "unix://name" and "inproc://name" — so remoting URLs carry the transport
// choice and the Auto network routes each address to the right stack.
package transport

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// localAutoSeq numbers auto-allocated unix:// and inproc:// addresses.
var localAutoSeq atomic.Int64

// ---------------------------------------------------------------- unix

// UnixNetwork carries length-framed messages over Unix domain sockets:
// the TCP stack without the TCP/IP cost (no checksums, no Nagle, no
// loopback routing) for nodes co-located on one machine. Addresses are
// logical names — "unix://name" or bare "name" — mapped to socket files
// under the OS temp directory, so they survive ParseURL's host/URI split
// (a filesystem path would not). An empty name ("unix://") allocates a
// unique one. The zero value is ready to use.
type UnixNetwork struct{}

// socketPath maps a logical unix:// address to its socket file.
func (UnixNetwork) socketPath(addr string) (string, error) {
	name := strings.TrimPrefix(addr, "unix://")
	if name == "" {
		return "", fmt.Errorf("transport: empty unix socket name")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return "", fmt.Errorf("transport: unix socket name %q: only [A-Za-z0-9._-] allowed", name)
		}
	}
	return filepath.Join(os.TempDir(), "parc-"+name+".sock"), nil
}

// Listen implements Network. "unix://" (or "") picks a fresh unique name;
// the chosen address is available from Listener.Addr. A socket file left
// behind by a crashed process is reclaimed when nothing answers it.
func (u UnixNetwork) Listen(addr string) (Listener, error) {
	if addr == "" || addr == "unix://" {
		addr = fmt.Sprintf("unix://auto-%d-%d", os.Getpid(), localAutoSeq.Add(1))
	}
	path, err := u.socketPath(addr)
	if err != nil {
		return nil, err
	}
	l, err := net.Listen("unix", path)
	if err != nil {
		// A stale socket file (listener died without Close) refuses the
		// bind; probe it and reclaim when nothing is listening.
		if probe, perr := net.Dial("unix", path); perr == nil {
			probe.Close()
			return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
		}
		os.Remove(path)
		if l, err = net.Listen("unix", path); err != nil {
			return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
		}
	}
	// net's unix listener unlinks the socket file on Close.
	return &unixListener{l: l, addr: addr}, nil
}

// Dial implements Network.
func (u UnixNetwork) Dial(addr string) (Conn, error) {
	path, err := u.socketPath(addr)
	if err != nil {
		return nil, err
	}
	c, err := net.Dial("unix", path)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newStreamConn(c), nil
}

// unixListener keeps the logical unix:// address so URLFor hands peers an
// address they can route, not a filesystem path.
type unixListener struct {
	l    net.Listener
	addr string
}

func (u *unixListener) Accept() (Conn, error) {
	c, err := u.l.Accept()
	if err != nil {
		return nil, err
	}
	return newStreamConn(c), nil
}

func (u *unixListener) Close() error { return u.l.Close() }
func (u *unixListener) Addr() string { return u.addr }

// ---------------------------------------------------------------- inproc

// InprocNetwork is a loopback for co-located nodes sharing one process:
// frames are handed directly between sender and receiver over a channel —
// no length framing, no syscalls, no stream to desynchronise. One copy
// remains, into a frame-pool buffer, because senders reuse their encoder
// buffers the moment Send returns; the receiver recycles that buffer via
// PutFrame exactly as it would a TCP receive frame, so the steady state
// allocates nothing. Addresses are "inproc://name"; "inproc://" allocates
// a unique one.
//
// Unlike MemNetwork (whose explicit instance lets tests and netsim build
// isolated or shaped universes), the inproc transport is a process-global
// singleton reached through the Auto network — co-located runtimes find
// each other by address with no shared object to plumb.
type InprocNetwork struct {
	mu        sync.Mutex
	listeners map[string]*inprocListener
}

// NewInprocNetwork returns an empty in-process network.
func NewInprocNetwork() *InprocNetwork {
	return &InprocNetwork{listeners: make(map[string]*inprocListener)}
}

// Listen implements Network.
func (n *InprocNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if addr == "" || addr == "inproc://" {
		addr = fmt.Sprintf("inproc://auto-%d", localAutoSeq.Add(1))
	}
	if !strings.HasPrefix(addr, "inproc://") {
		addr = "inproc://" + addr
	}
	if _, exists := n.listeners[addr]; exists {
		return nil, fmt.Errorf("transport: address %s already in use", addr)
	}
	l := &inprocListener{
		addr:    addr,
		backlog: make(chan Conn, 16),
		done:    make(chan struct{}),
		net:     n,
	}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *InprocNetwork) Dial(addr string) (Conn, error) {
	if !strings.HasPrefix(addr, "inproc://") {
		addr = "inproc://" + addr
	}
	n.mu.Lock()
	l, ok := n.listeners[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("transport: no listener at %s", addr)
	}
	client, server := newInprocPipe(addr+"/client", addr)
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (n *InprocNetwork) remove(addr string) {
	n.mu.Lock()
	delete(n.listeners, addr)
	n.mu.Unlock()
}

type inprocListener struct {
	addr    string
	backlog chan Conn
	done    chan struct{}
	once    sync.Once
	net     *InprocNetwork
}

func (l *inprocListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *inprocListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.net.remove(l.addr)
	})
	return nil
}

func (l *inprocListener) Addr() string { return l.addr }

// newInprocPipe wires two connected in-process endpoints.
func newInprocPipe(addrA, addrB string) (Conn, Conn) {
	ab := make(chan []byte, 64)
	ba := make(chan []byte, 64)
	done := make(chan struct{})
	var once sync.Once
	closeFn := func() { once.Do(func() { close(done) }) }
	a := &inprocConn{send: ab, recv: ba, done: done, close: closeFn, local: addrA, remote: addrB}
	b := &inprocConn{send: ba, recv: ab, done: done, close: closeFn, local: addrB, remote: addrA}
	return a, b
}

// inprocConn hands pooled frames directly to the peer. Send copies into a
// GetFrame buffer (the caller keeps ownership of msg, matching Conn's
// contract); Recv surrenders that buffer to the receiver, which returns it
// to the shared pool after decoding — the same ownership cycle as a TCP
// receive, minus framing and syscalls.
type inprocConn struct {
	send   chan []byte
	recv   chan []byte
	done   chan struct{}
	close  func()
	local  string
	remote string
}

func (c *inprocConn) Send(msg []byte) error {
	if len(msg) > MaxFrame {
		return fmt.Errorf("transport: message of %d bytes exceeds MaxFrame", len(msg))
	}
	// Checked before the send: with buffer room free, the select below has
	// both cases ready after a close and could still enqueue.
	select {
	case <-c.done:
		return ErrClosed
	default:
	}
	cp := GetFrame(len(msg))
	copy(cp, msg)
	select {
	case c.send <- cp:
		return nil
	case <-c.done:
		PutFrame(cp)
		return ErrClosed
	}
}

func (c *inprocConn) Recv() ([]byte, error) {
	select {
	case msg := <-c.recv:
		return msg, nil
	case <-c.done:
		// Drain messages that raced with close so orderly shutdown does
		// not drop replies.
		select {
		case msg := <-c.recv:
			return msg, nil
		default:
		}
		return nil, ErrClosed
	}
}

func (c *inprocConn) Close() error {
	c.close()
	return nil
}

func (c *inprocConn) LocalAddr() string  { return c.local }
func (c *inprocConn) RemoteAddr() string { return c.remote }

// ---------------------------------------------------------------- auto

// Process-global instances behind the Auto network. mem:// gets one too so
// multi-goroutine "clusters" wired purely by address work out of the box.
var (
	defaultInproc = NewInprocNetwork()
	defaultMem    = NewMemNetwork()
)

// Auto is a Network that routes each address by its scheme: "unix://" to
// UnixNetwork, "inproc://" to the process-global InprocNetwork, "mem://"
// to a process-global MemNetwork, and everything else (host:port) to
// TCPNetwork. Co-located nodes thus select the cheap transport with
// nothing but the address they publish. The zero value is ready to use.
type Auto struct{}

func networkFor(addr string) Network {
	switch {
	case strings.HasPrefix(addr, "unix://"):
		return UnixNetwork{}
	case strings.HasPrefix(addr, "inproc://"):
		return defaultInproc
	case strings.HasPrefix(addr, "mem://"):
		return defaultMem
	default:
		return TCPNetwork{}
	}
}

// Listen implements Network.
func (Auto) Listen(addr string) (Listener, error) { return networkFor(addr).Listen(addr) }

// Dial implements Network.
func (Auto) Dial(addr string) (Conn, error) { return networkFor(addr).Dial(addr) }
