// Package cost defines the endpoint software-cost model shared by the three
// communication stacks. The reproduction cannot run 2005-era managed
// runtimes (Mono 1.x JIT, Sun JVM 1.4, MPICH 1.2 on GNU toolchains), whose
// per-call and per-byte software costs dominate the paper's latency table
// (MPI 100 µs, Mono 273 µs, Java RMI 520 µs round trips on the same wire).
// Instead each stack charges a calibrated Model at its endpoints; package
// profile holds the calibrated constants and EXPERIMENTS.md documents the
// calibration against the paper's numbers.
package cost

import (
	"runtime"
	"time"
)

// Model is charged at message endpoints.
type Model struct {
	// PerMessage is charged once per message sent and once per message
	// received (marshalling, dispatch, protocol bookkeeping).
	PerMessage time.Duration
	// PerKB is charged per KiB of message body at each endpoint; it is
	// the term that caps large-message bandwidth below link rate.
	PerKB time.Duration
	// PerConnect is charged when a new connection is established.
	PerConnect time.Duration
}

// Zero reports whether the model charges nothing.
func (m Model) Zero() bool {
	return m.PerMessage == 0 && m.PerKB == 0 && m.PerConnect == 0
}

// Charge sleeps for the endpoint cost of an n-byte message.
func (m Model) Charge(n int) {
	if d := m.MessageCost(n); d > 0 {
		PreciseSleep(d)
	}
}

// ChargeConnect sleeps for the connection-establishment cost.
func (m Model) ChargeConnect() {
	if m.PerConnect > 0 {
		PreciseSleep(m.PerConnect)
	}
}

// MessageCost returns the analytic per-endpoint cost of an n-byte message
// without sleeping; the bench package's closed-form model uses it.
func (m Model) MessageCost(n int) time.Duration {
	return m.PerMessage + time.Duration(float64(m.PerKB)*float64(n)/1024.0)
}

// PreciseSleep sleeps for d with microsecond accuracy. The calibrated
// endpoint costs are tens to hundreds of microseconds, far below the
// kernel timer granularity (≈1 ms on some hosts), so plain time.Sleep
// would erase the differences between the modelled runtimes. PreciseSleep
// lets the coarse timer cover all but the last millisecond and spins the
// remainder, yielding to the scheduler between probes.
func PreciseSleep(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	if coarse := d - time.Millisecond; coarse > 0 {
		time.Sleep(coarse)
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}
