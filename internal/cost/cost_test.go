package cost

import (
	"testing"
	"time"
)

func TestZero(t *testing.T) {
	if !(Model{}).Zero() {
		t.Error("zero model not Zero")
	}
	if (Model{PerMessage: 1}).Zero() {
		t.Error("non-zero model reported Zero")
	}
}

func TestMessageCost(t *testing.T) {
	m := Model{PerMessage: 100 * time.Microsecond, PerKB: 10 * time.Microsecond}
	if got := m.MessageCost(0); got != 100*time.Microsecond {
		t.Errorf("MessageCost(0) = %v", got)
	}
	if got := m.MessageCost(2048); got != 120*time.Microsecond {
		t.Errorf("MessageCost(2048) = %v", got)
	}
}

func TestChargeZeroIsFree(t *testing.T) {
	start := time.Now()
	Model{}.Charge(1 << 20)
	Model{}.ChargeConnect()
	if time.Since(start) > 10*time.Millisecond {
		t.Error("zero model slept")
	}
}

func TestPreciseSleepAccuracy(t *testing.T) {
	// Take the best of several attempts: the accuracy property holds on
	// an idle processor, and the minimum filters out preemption by other
	// test packages running in parallel.
	for _, d := range []time.Duration{
		50 * time.Microsecond,
		300 * time.Microsecond,
		2 * time.Millisecond,
	} {
		best := time.Duration(1 << 62)
		for i := 0; i < 7; i++ {
			start := time.Now()
			PreciseSleep(d)
			got := time.Since(start)
			if got < d {
				t.Fatalf("PreciseSleep(%v) returned early after %v", d, got)
			}
			if got < best {
				best = got
			}
		}
		// The whole point: no ≈1 ms kernel-granularity overshoot for
		// sub-millisecond sleeps.
		if over := best - d; over > 500*time.Microsecond {
			t.Errorf("PreciseSleep(%v) overshot by %v", d, over)
		}
	}
}

func TestPreciseSleepNonPositive(t *testing.T) {
	start := time.Now()
	PreciseSleep(0)
	PreciseSleep(-time.Second)
	if time.Since(start) > 10*time.Millisecond {
		t.Error("non-positive sleep slept")
	}
}

func TestChargeSleepsAccurately(t *testing.T) {
	m := Model{PerMessage: 200 * time.Microsecond}
	best := time.Duration(1 << 62)
	for i := 0; i < 7; i++ {
		start := time.Now()
		m.Charge(0)
		if got := time.Since(start); got < best {
			best = got
		}
	}
	if best < 200*time.Microsecond || best > 2*time.Millisecond {
		t.Errorf("Charge slept %v, want ≈200 µs", best)
	}
}
