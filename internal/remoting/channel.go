package remoting

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/errs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// Kind selects a channel implementation, mirroring the channel classes the
// paper benchmarks against each other in Fig. 8b.
type Kind int

const (
	// TCP is the modern binary TCP channel (Mono 1.1.7 behaviour):
	// compact binary formatter, connection pooling, single-frame bodies.
	TCP Kind = iota
	// LegacyTCP is the Mono 1.0.5 behaviour: no connection pooling (a
	// dial per call) and bodies flushed in small 1 KiB chunks, each a
	// separate wire message — the mechanism behind its bandwidth
	// collapse in Fig. 8b.
	LegacyTCP
	// HTTP is the SOAP/HTTP channel: verbose textual encoding wrapped in
	// HTTP/1.0-style requests without keep-alive.
	HTTP
	// Multiplexed is the pipelined TCP channel this reproduction adds
	// beyond the paper's 2005 stacks: one long-lived connection per peer
	// address carries many concurrent request/response exchanges, matched
	// by sequence number, so high-fan-out callers pay neither a dial nor a
	// one-call-per-connection queue. It removes exactly the channel
	// overheads the paper blames for the scaling gap (Fig. 8b).
	Multiplexed
)

// String returns the .NET-style scheme name.
func (k Kind) String() string {
	switch k {
	case TCP:
		return "tcp"
	case LegacyTCP:
		return "tcp-legacy"
	case HTTP:
		return "http"
	case Multiplexed:
		return "tcp-mux"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// legacyChunk is the flush granularity of the legacy channel.
const legacyChunk = 1024

// Channel is a configured remoting channel bound to a transport network. A
// single Channel value serves both roles: clients call GetObject/Invoke
// through it and servers call ListenAndServe on it, mirroring
// ChannelServices.RegisterChannel making one channel object serve both
// directions.
type Channel struct {
	kind   Kind
	net    transport.Network
	codec  wire.Codec
	pooled bool

	// Cost injects endpoint software costs; see CostModel.
	Cost CostModel

	// MaxInFlight bounds concurrent exchanges per multiplexed lane;
	// callers beyond the bound block until a slot frees. Zero selects
	// DefaultMaxInFlight. Only the Multiplexed kind uses it. The bound is
	// per lane: a channel with N lanes admits up to N×MaxInFlight
	// concurrent exchanges per peer.
	MaxInFlight int

	// MuxLanes sets how many multiplexed connections (lanes) the channel
	// opens per peer address, each with its own writer goroutine and
	// in-flight table; callers are striped across lanes by sequence
	// number, so unrelated calls never share a lock or a TCP stream. Zero
	// selects DefaultMuxLanes (min(GOMAXPROCS, 4)); 1 restores the
	// single-connection behaviour. Only the Multiplexed kind uses it.
	MuxLanes int

	// DisableBinding turns off bound call handles (see envelope.go),
	// forcing the string envelope on every call. It is the escape hatch
	// mirroring wire.BinFmt.DisableGenerated: set it on a client to send
	// only string envelopes, on a server to never acknowledge bind
	// declarations. Either side alone keeps the wire fully interoperable.
	DisableBinding bool

	// Retry, when enabled (MaxAttempts > 1), applies the unified
	// retry/backoff loop to ObjRef.InvokeCtx calls and arms the per-peer
	// circuit breakers (retry.go, breaker.go). Set it before the first
	// call, like the other configuration fields.
	Retry RetryPolicy

	seq  atomic.Uint64
	pool connPool

	// tokClient/tokSeq back NewCallToken (token.go).
	tokClient atomic.Uint64
	tokSeq    atomic.Uint64

	breakerOnce sync.Once
	breakerSet  *breakerSet

	// closeMu guards closeCh, the broadcast that wakes in-flight retry
	// sleeps when Close tears the channel down mid-backoff.
	closeMu sync.Mutex
	closeCh chan struct{}

	// dialMu guards dialPeers, the per-peer dial backoff shared across a
	// peer's pooled redials and every multiplexed lane (so a dead peer is
	// probed by one capped, jittered schedule instead of a redial storm).
	dialMu    sync.Mutex
	dialPeers map[string]*dialBackoff

	muxMu    sync.Mutex
	muxPeers map[muxKey]*muxConn
}

// NewTCPChannel returns the modern binary channel over net.
func NewTCPChannel(net transport.Network) *Channel {
	return &Channel{kind: TCP, net: net, codec: wire.BinFmt{}, pooled: true}
}

// NewLegacyTCPChannel returns the Mono 1.0.5-style channel over net.
func NewLegacyTCPChannel(net transport.Network) *Channel {
	return &Channel{kind: LegacyTCP, net: net, codec: wire.BinFmt{}, pooled: false}
}

// NewHTTPChannel returns the SOAP/HTTP channel over net.
func NewHTTPChannel(net transport.Network) *Channel {
	return &Channel{kind: HTTP, net: net, codec: wire.SoapFmt{}, pooled: false}
}

// NewMultiplexedChannel returns the pipelined channel over net: one
// long-lived connection per peer multiplexes many concurrent calls.
func NewMultiplexedChannel(net transport.Network) *Channel {
	return &Channel{kind: Multiplexed, net: net, codec: wire.BinFmt{}, pooled: false}
}

// Kind reports the channel implementation.
func (ch *Channel) Kind() Kind { return ch.kind }

// Codec reports the channel's wire codec.
func (ch *Channel) Codec() wire.Codec { return ch.codec }

// Network returns the transport the channel is bound to.
func (ch *Channel) Network() transport.Network { return ch.net }

// Scheme returns the URL scheme for BuildURL ("tcp" or "http"; the legacy
// channel shares the "tcp" scheme, and memory transports use "mem"
// addresses transparently).
func (ch *Channel) Scheme() string {
	if ch.kind == HTTP {
		return "http"
	}
	return "tcp"
}

// nextSeq allocates a call sequence number.
func (ch *Channel) nextSeq() uint64 { return ch.seq.Add(1) }

// breakers lazily arms the per-peer circuit breakers from the retry
// policy; nil when the policy is disabled or breaker-disabled.
func (ch *Channel) breakers() *breakerSet {
	ch.breakerOnce.Do(func() {
		if ch.Retry.Enabled() {
			ch.breakerSet = newBreakerSet(ch.Retry)
		}
	})
	return ch.breakerSet
}

// closeSignal returns the broadcast channel Close fires, waking retry
// sleeps. A channel remains usable after Close (a later call dials
// afresh), so each Close consumes the current broadcast and the next
// caller lazily installs a new one.
func (ch *Channel) closeSignal() <-chan struct{} {
	ch.closeMu.Lock()
	defer ch.closeMu.Unlock()
	if ch.closeCh == nil {
		ch.closeCh = make(chan struct{})
	}
	return ch.closeCh
}

// laneCount resolves the effective mux lane count (see MuxLanes).
func (ch *Channel) laneCount() int {
	if ch.kind != Multiplexed {
		return 1
	}
	n := ch.MuxLanes
	if n == 0 {
		n = DefaultMuxLanes()
	}
	if n < 1 {
		n = 1
	}
	if n > maxMuxLanes {
		n = maxMuxLanes
	}
	return n
}

// binaryCodec reports whether the channel serialises with the binary
// formatter, whose pooled Encoder fast path the envelope hot paths use.
func (ch *Channel) binaryCodec() (wire.BinFmt, bool) {
	bf, ok := ch.codec.(wire.BinFmt)
	return bf, ok && ch.kind != HTTP
}

// encodeRequest produces the wire bytes for a request, including channel
// framing (HTTP text or legacy chunking markers are applied at send time).
// On binary channels the bytes live in a pooled encoder, returned as enc:
// the caller (or whoever it hands the frame to) must Release it after the
// bytes' last use. enc is nil on textual channels.
func (ch *Channel) encodeRequest(req *callRequest) (raw []byte, enc *wire.Encoder, err error) {
	if bf, ok := ch.binaryCodec(); ok {
		e := wire.NewEncoder()
		if bf.DisableGenerated {
			e.SetGenerated(false)
		}
		// The pointer keeps the envelope off the heap twice over: no
		// interface boxing copy, and the generated *callRequest codec.
		if err := e.Encode(req); err != nil {
			e.Release()
			return nil, nil, fmt.Errorf("remoting: encode request %s.%s: %w", req.URI, req.Method, err)
		}
		return e.Bytes(), e, nil
	}
	body, err := ch.codec.Marshal(*req)
	if err != nil {
		return nil, nil, fmt.Errorf("remoting: encode request %s.%s: %w", req.URI, req.Method, err)
	}
	if ch.kind == HTTP {
		return buildHTTPMessage("POST /"+req.URI+" HTTP/1.0", body), nil, nil
	}
	return body, nil, nil
}

func (ch *Channel) decodeRequest(raw []byte) (*callRequest, error) {
	if ch.kind == HTTP {
		var err error
		raw, err = parseHTTPMessage(raw)
		if err != nil {
			return nil, err
		}
	}
	v, err := ch.codec.Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("remoting: decode request: %w", err)
	}
	// The generated codec decodes the pointer-encoded envelope to
	// *callRequest; value-encoded envelopes from textual channels (or
	// older peers) arrive as callRequest.
	switch req := v.(type) {
	case *callRequest:
		return req, nil
	case callRequest:
		return &req, nil
	}
	return nil, fmt.Errorf("remoting: decoded %T, want callRequest", v)
}

// decodeRequestShared decodes a request, in borrow mode when borrow is set
// and the channel is binary: large []byte arguments then alias raw instead
// of being copied out of it. borrowed=true transfers ownership of raw to
// whoever holds the request — the caller must not PutFrame it until the
// request's last use (the invoker's return; see Server.handleConn).
func (ch *Channel) decodeRequestShared(raw []byte, borrow bool) (req *callRequest, borrowed bool, err error) {
	bf, binary := ch.binaryCodec()
	if !borrow || !binary {
		req, err := ch.decodeRequest(raw)
		return req, false, err
	}
	v, borrowed, err := bf.UnmarshalShared(raw)
	if err != nil {
		return nil, borrowed, fmt.Errorf("remoting: decode request: %w", err)
	}
	switch req := v.(type) {
	case *callRequest:
		return req, borrowed, nil
	case callRequest:
		return &req, borrowed, nil
	}
	return nil, borrowed, fmt.Errorf("remoting: decoded %T, want callRequest", v)
}

// encodeResponse mirrors encodeRequest, pooled encoder included.
func (ch *Channel) encodeResponse(resp *callResponse) (raw []byte, enc *wire.Encoder, err error) {
	if bf, ok := ch.binaryCodec(); ok {
		e := wire.NewEncoder()
		if bf.DisableGenerated {
			e.SetGenerated(false)
		}
		if err := e.Encode(resp); err != nil {
			e.Release()
			return nil, nil, fmt.Errorf("remoting: encode response: %w", err)
		}
		return e.Bytes(), e, nil
	}
	body, err := ch.codec.Marshal(*resp)
	if err != nil {
		return nil, nil, fmt.Errorf("remoting: encode response: %w", err)
	}
	if ch.kind == HTTP {
		return buildHTTPMessage("HTTP/1.0 200 OK", body), nil, nil
	}
	return body, nil, nil
}

func (ch *Channel) decodeResponse(raw []byte) (*callResponse, error) {
	if ch.kind == HTTP {
		var err error
		raw, err = parseHTTPMessage(raw)
		if err != nil {
			return nil, err
		}
	}
	v, err := ch.codec.Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("remoting: decode response: %w", err)
	}
	switch resp := v.(type) {
	case *callResponse:
		return resp, nil
	case callResponse:
		return &resp, nil
	}
	return nil, fmt.Errorf("remoting: decoded %T, want callResponse", v)
}

// decodeResponseShared mirrors decodeRequestShared for the client side:
// with borrow set on a binary channel, a large []byte result aliases raw,
// and borrowed=true means raw now belongs to the response's consumer (the
// mux reader simply skips PutFrame and lets the GC free both together).
func (ch *Channel) decodeResponseShared(raw []byte, borrow bool) (resp *callResponse, borrowed bool, err error) {
	bf, binary := ch.binaryCodec()
	if !borrow || !binary {
		resp, err := ch.decodeResponse(raw)
		return resp, false, err
	}
	v, borrowed, err := bf.UnmarshalShared(raw)
	if err != nil {
		return nil, borrowed, fmt.Errorf("remoting: decode response: %w", err)
	}
	switch resp := v.(type) {
	case *callResponse:
		return resp, borrowed, nil
	case callResponse:
		return &resp, borrowed, nil
	}
	return nil, borrowed, fmt.Errorf("remoting: decoded %T, want callResponse", v)
}

// sendMsg transmits one encoded message, applying the legacy channel's
// chunked flushing when configured, and charges the endpoint cost model.
func (ch *Channel) sendMsg(c transport.Conn, msg []byte) error {
	ch.Cost.Charge(len(msg))
	if ch.kind != LegacyTCP {
		return c.Send(msg)
	}
	// Legacy: flush in legacyChunk-sized wire messages, each prefixed
	// with a continuation flag. Every chunk pays the per-message costs
	// of the transport and network, reproducing Mono 1.0.5's unbuffered
	// small writes.
	for off := 0; off < len(msg) || off == 0; off += legacyChunk {
		end := off + legacyChunk
		more := byte(1)
		if end >= len(msg) {
			end = len(msg)
			more = 0
		}
		frame := make([]byte, 1+end-off)
		frame[0] = more
		copy(frame[1:], msg[off:end])
		if err := c.Send(frame); err != nil {
			return err
		}
		if end == len(msg) {
			break
		}
	}
	return nil
}

// sendMsgBatch transmits several encoded messages in as few wire writes as
// the transport supports, charging the endpoint cost model once per
// message (batching amortizes syscalls, not modelled software costs). It
// must not be used on the legacy channel, whose chunked framing needs
// sendMsg's per-message treatment.
func (ch *Channel) sendMsgBatch(c transport.Conn, msgs [][]byte) error {
	for _, m := range msgs {
		ch.Cost.Charge(len(m))
	}
	return transport.SendBatch(c, msgs)
}

// recvMsg receives one message, reassembling legacy chunks, and charges the
// endpoint cost model. The returned buffer is pool-backed when the
// transport supports it: callers hand it to transport.PutFrame after the
// message's last use (decoding copies everything, so right after decode is
// always safe).
func (ch *Channel) recvMsg(c transport.Conn) ([]byte, error) {
	if ch.kind != LegacyTCP {
		msg, err := transport.RecvFrame(c)
		if err != nil {
			return nil, err
		}
		ch.Cost.Charge(len(msg))
		return msg, nil
	}
	var buf bytes.Buffer
	for {
		frame, err := transport.RecvFrame(c)
		if err != nil {
			return nil, err
		}
		if len(frame) < 1 {
			return nil, fmt.Errorf("remoting: empty legacy chunk")
		}
		more := frame[0]
		buf.Write(frame[1:])
		transport.PutFrame(frame)
		if more == 0 {
			break
		}
	}
	msg := buf.Bytes()
	ch.Cost.Charge(len(msg))
	return msg, nil
}

// roundTrip performs one request/response exchange against netaddr. When
// ctx carries a deadline or cancellation, the in-flight exchange is aborted
// on ctx expiry (for one-call-per-connection kinds by closing the
// connection; the multiplexed kind abandons just this call); the call then
// reports ctx.Err().
//
// A connection that was reused — taken from the idle pool, or the shared
// long-lived multiplexed pipe — may have gone stale while idle (peer
// restarted, transport dropped). When such a call fails at the connection
// level before anything was received, it is retried exactly once on a
// freshly dialled connection instead of surfacing a spurious ErrNodeDown.
// Failures on fresh connections and context expiries are never retried.
//
// The retry condition is "no response received", the same heuristic HTTP
// keep-alive clients apply to reused connections: over real TCP a stale
// connection usually accepts the write and only the read fails, so a
// send-phase-only retry would miss the common case. The caveat is that a
// request the peer received and executed just before dying is executed
// again by the retry — at-most-once is traded for liveness across peer
// restarts, exactly once, and only on reused connections.
func (ch *Channel) roundTrip(ctx context.Context, netaddr string, req *callRequest) (*callResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("remoting: call %s.%s: %w", req.URI, req.Method, err)
	}
	bs := ch.breakers()
	if bs == nil || breakerBypassed(ctx) {
		// A bypassed call records no evidence either: its outcome must not
		// consume a half-open trial slot or re-trip a breaker it never
		// consulted.
		return ch.roundTripOnce(ctx, netaddr, req)
	}
	trial, berr := bs.allow(netaddr)
	if berr != nil {
		return nil, fmt.Errorf("remoting: call %s.%s: %w", req.URI, req.Method, berr)
	}
	resp, err := ch.roundTripOnce(ctx, netaddr, req)
	// Only transport-level evidence moves the breaker: connection failures
	// trip it, anything the peer actually answered (including app errors)
	// counts as success. Context expiry is the caller's deadline, not the
	// peer's fault, and an orderly Close is not a failure either.
	connFail := err != nil && ctx.Err() == nil &&
		isConnFailure(err) && !errors.Is(err, errChannelClosed)
	if connFail || err == nil || !isConnFailure(err) {
		bs.record(netaddr, trial, connFail)
	} else if trial {
		// The trial's outcome was ambiguous (ctx expiry / orderly close):
		// release the half-open slot without deciding.
		bs.record(netaddr, true, true)
	}
	return resp, err
}

// roundTripOnce is one breaker-admitted round trip.
func (ch *Channel) roundTripOnce(ctx context.Context, netaddr string, req *callRequest) (*callResponse, error) {
	if ch.kind == Multiplexed {
		// The mux path encodes per connection: the envelope variant
		// (string or compact) depends on that connection's bind table.
		return ch.muxRoundTrip(ctx, netaddr, req)
	}
	raw, enc, err := ch.encodeRequest(req)
	if err != nil {
		return nil, err
	}
	if enc != nil {
		// exchangeCtx always joins its exchange goroutine before
		// returning, so nothing references raw past this frame.
		defer enc.Release()
	}
	c, fromPool, err := ch.getConn(netaddr)
	if err != nil {
		return nil, err
	}
	resp, err := ch.exchangeCtx(ctx, netaddr, c, raw, req)
	if err == nil || !fromPool || ctx.Err() != nil || !isConnFailure(err) {
		return resp, err
	}
	// Stale pooled connection: nothing was received for this call, so a
	// single retry on a fresh dial is safe and turns a peer restart into
	// a reconnect instead of an ErrNodeDown.
	c2, err2 := ch.dial(netaddr)
	if err2 != nil {
		return nil, err2
	}
	return ch.exchangeCtx(ctx, netaddr, c2, raw, req)
}

// isConnFailure reports whether err is a connection-level failure (dial,
// send or receive) rather than a decode error or context expiry.
func isConnFailure(err error) bool {
	return errors.Is(err, errs.ErrNodeDown)
}

// exchangeCtx runs one exchange on an already-dialled connection, aborting
// it when ctx ends, and settles the connection's afterlife (pool or close).
func (ch *Channel) exchangeCtx(ctx context.Context, netaddr string, c transport.Conn, raw []byte, req *callRequest) (*callResponse, error) {
	if ctx.Done() == nil {
		resp, err := ch.exchange(netaddr, c, raw, req)
		ch.finish(netaddr, c, err == nil)
		return resp, err
	}
	type outcome struct {
		resp *callResponse
		err  error
	}
	done := make(chan outcome, 1)
	go func() {
		resp, err := ch.exchange(netaddr, c, raw, req)
		done <- outcome{resp, err}
	}()
	select {
	case out := <-done:
		ch.finish(netaddr, c, out.err == nil)
		return out.resp, out.err
	case <-ctx.Done():
		// Abort the exchange: closing the connection unblocks the
		// goroutine. Pooling is decided only here, after the goroutine
		// finished, so an aborted connection can never end up pooled.
		c.Close()
		<-done
		return nil, fmt.Errorf("remoting: call %s.%s: %w", req.URI, req.Method, ctx.Err())
	}
}

// finish returns a connection to the pool after a fully successful trip, or
// closes it.
func (ch *Channel) finish(netaddr string, c transport.Conn, ok bool) {
	if ok && ch.pooled {
		ch.pool.put(netaddr, c)
	} else {
		c.Close()
	}
}

// exchange runs the blocking send/receive/decode on an already-dialled
// connection. The caller owns the connection's afterlife (pool or close).
func (ch *Channel) exchange(netaddr string, c transport.Conn, raw []byte, req *callRequest) (*callResponse, error) {
	if err := ch.sendMsg(c, raw); err != nil {
		return nil, fmt.Errorf("remoting: send to %s: %v: %w", netaddr, err, errs.ErrNodeDown)
	}
	rawResp, err := ch.recvMsg(c)
	if err != nil {
		return nil, fmt.Errorf("remoting: receive from %s: %v: %w", netaddr, err, errs.ErrNodeDown)
	}
	resp, err := ch.decodeResponse(rawResp)
	transport.PutFrame(rawResp) // decode copied everything it kept
	if err != nil {
		return nil, err
	}
	if resp.Seq != req.Seq {
		return nil, fmt.Errorf("remoting: response seq %d does not match request %d", resp.Seq, req.Seq)
	}
	return resp, nil
}

// getConn returns a pooled or freshly dialled connection, reporting whether
// it came from the idle pool (and may therefore be stale).
func (ch *Channel) getConn(netaddr string) (c transport.Conn, fromPool bool, err error) {
	if ch.pooled {
		if c := ch.pool.get(netaddr); c != nil {
			return c, true, nil
		}
	}
	c, err = ch.dial(netaddr)
	return c, false, err
}

// dial opens a fresh connection, charging the connect cost. Dials to a
// peer that recently refused one are gated by the peer's shared backoff
// entry (see dialBackoff), so a dead peer is probed on one capped,
// jittered schedule no matter how many callers and mux lanes want it.
func (ch *Channel) dial(netaddr string) (transport.Conn, error) {
	db := ch.dialBackoffFor(netaddr)
	if err := db.gate(); err != nil {
		return nil, err
	}
	ch.Cost.ChargeConnect()
	c, err := ch.net.Dial(netaddr)
	if err != nil {
		err = fmt.Errorf("remoting: dial %s: %v: %w", netaddr, err, errs.ErrNodeDown)
		db.failed(err)
		return nil, err
	}
	db.succeeded()
	return c, nil
}

// dialBackoff base delay and cap: the first refused dial blocks redials for
// ~dialBackoffBase, doubling per consecutive failure up to dialBackoffCap,
// each window jittered to 50–100% so peers probing the same dead node do
// not synchronize.
const (
	dialBackoffBase = 10 * time.Millisecond
	dialBackoffCap  = 500 * time.Millisecond
)

// dialBackoff is the per-peer redial schedule shared by the pooled path
// and every multiplexed lane of one Channel. While a window is open,
// gate() fast-fails with the last dial error instead of hitting the
// transport — the fix for the redial storm where a dead peer's every lane
// (and every queued caller) dialled it in lockstep.
type dialBackoff struct {
	mu      sync.Mutex
	fails   int
	until   time.Time
	lastErr error
}

// dialBackoffFor returns the peer's shared backoff entry, creating it on
// first use.
func (ch *Channel) dialBackoffFor(netaddr string) *dialBackoff {
	ch.dialMu.Lock()
	defer ch.dialMu.Unlock()
	if ch.dialPeers == nil {
		ch.dialPeers = make(map[string]*dialBackoff)
	}
	db := ch.dialPeers[netaddr]
	if db == nil {
		db = &dialBackoff{}
		ch.dialPeers[netaddr] = db
	}
	return db
}

// gate fast-fails with the last dial error while the backoff window is
// open; otherwise it admits the dial (including the probe that ends a
// window).
func (db *dialBackoff) gate() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.fails > 0 && time.Now().Before(db.until) {
		return db.lastErr
	}
	return nil
}

// failed records a refused dial and opens (or extends) the backoff window.
func (db *dialBackoff) failed(err error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.fails++
	shift := db.fails - 1
	if shift > 8 {
		shift = 8
	}
	d := dialBackoffBase << shift
	if d > dialBackoffCap {
		d = dialBackoffCap
	}
	d = time.Duration(float64(d) * (0.5 + 0.5*rand.Float64()))
	db.until = time.Now().Add(d)
	db.lastErr = err
}

// succeeded resets the schedule after a successful dial.
func (db *dialBackoff) succeeded() {
	db.mu.Lock()
	db.fails = 0
	db.until = time.Time{}
	db.lastErr = nil
	db.mu.Unlock()
}

// Close releases the channel's client-side connections: idle pooled
// connections are closed and multiplexed peer connections are shut down
// (failing any in-flight calls with ErrNodeDown). The channel itself stays
// usable — a later call dials afresh — so teardown order between a node's
// server role and its client role does not matter. Cluster and node
// teardown call it so long-running processes do not leak sockets.
func (ch *Channel) Close() {
	// Wake any in-flight retry backoff sleeps first (sleepRetry selects on
	// this broadcast), so callers observe the teardown promptly instead of
	// finishing their backoff against a closed channel.
	ch.closeMu.Lock()
	if ch.closeCh != nil {
		close(ch.closeCh)
		ch.closeCh = nil
	}
	ch.closeMu.Unlock()
	ch.dialMu.Lock()
	ch.dialPeers = nil
	ch.dialMu.Unlock()
	ch.pool.drain()
	ch.muxMu.Lock()
	peers := make([]*muxConn, 0, len(ch.muxPeers))
	for _, mc := range ch.muxPeers {
		peers = append(peers, mc)
	}
	ch.muxPeers = nil
	ch.muxMu.Unlock()
	for _, mc := range peers {
		mc.shutdown()
	}
}

// connPool keeps idle client connections per address. At most maxIdle
// connections are retained per target; surplus connections are closed.
type connPool struct {
	mu   sync.Mutex
	idle map[string][]transport.Conn
}

const maxIdle = 16

func (p *connPool) get(addr string) transport.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	conns := p.idle[addr]
	if len(conns) == 0 {
		return nil
	}
	c := conns[len(conns)-1]
	p.idle[addr] = conns[:len(conns)-1]
	return c
}

// drain closes and forgets every idle connection.
func (p *connPool) drain() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.mu.Unlock()
	for _, conns := range idle {
		for _, c := range conns {
			c.Close()
		}
	}
}

func (p *connPool) put(addr string, c transport.Conn) {
	p.mu.Lock()
	if p.idle == nil {
		p.idle = make(map[string][]transport.Conn)
	}
	if len(p.idle[addr]) >= maxIdle {
		p.mu.Unlock()
		c.Close()
		return
	}
	p.idle[addr] = append(p.idle[addr], c)
	p.mu.Unlock()
}

// buildHTTPMessage wraps a body in minimal HTTP-style text framing. The
// whole message still travels as one transport frame; the point is the
// byte-count and parse cost of the textual envelope, as with the real SOAP
// channel.
func buildHTTPMessage(startLine string, body []byte) []byte {
	var b bytes.Buffer
	b.WriteString(startLine)
	b.WriteString("\r\nContent-Type: text/xml; charset=utf-8\r\nConnection: close\r\nSOAPAction: \"#invoke\"\r\nContent-Length: ")
	b.WriteString(strconv.Itoa(len(body)))
	b.WriteString("\r\n\r\n")
	b.Write(body)
	return b.Bytes()
}

// parseHTTPMessage strips the HTTP-style framing and returns the body.
func parseHTTPMessage(raw []byte) ([]byte, error) {
	i := bytes.Index(raw, []byte("\r\n\r\n"))
	if i < 0 {
		return nil, fmt.Errorf("remoting: malformed HTTP message: no header terminator")
	}
	head := raw[:i]
	body := raw[i+4:]
	// Validate Content-Length when present.
	for _, line := range bytes.Split(head, []byte("\r\n")) {
		if k, v, ok := bytes.Cut(line, []byte(":")); ok &&
			bytes.EqualFold(bytes.TrimSpace(k), []byte("Content-Length")) {
			n, err := strconv.Atoi(string(bytes.TrimSpace(v)))
			if err != nil {
				return nil, fmt.Errorf("remoting: bad Content-Length %q", v)
			}
			if n != len(body) {
				return nil, fmt.Errorf("remoting: Content-Length %d does not match body %d", n, len(body))
			}
		}
	}
	return body, nil
}
