package remoting

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"repro/internal/transport"
)

type echoBytesService struct{}

func (echoBytesService) EchoBytes(b []byte) []byte { return b }

// TestInvokeOverLocalTransports runs real multiplexed RPC over the
// scheme-routed transports — the co-located fast paths — including a
// payload large enough to travel the zero-copy borrow path end to end on
// both sides (above wire.BorrowMin and above the frame pool's retain cap).
func TestInvokeOverLocalTransports(t *testing.T) {
	addrs := []string{"inproc://rpc-e2e"}
	if runtime.GOOS != "windows" {
		addrs = append(addrs, fmt.Sprintf("unix://rpc-e2e-%d", os.Getpid()))
	}
	for _, addr := range addrs {
		scheme := addr[:strings.Index(addr, "://")]
		t.Run(scheme, func(t *testing.T) {
			ch := NewMultiplexedChannel(transport.Auto{})
			defer ch.Close()
			srv, err := ch.ListenAndServe(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			srv.RegisterWellKnown("e", Singleton, func() any { return echoBytesService{} })
			url := srv.URLFor("e")
			if !strings.HasPrefix(url, scheme+"://") {
				t.Fatalf("URLFor = %q, want %s:// scheme preserved", url, scheme)
			}
			ref, err := GetObject(ch, url)
			if err != nil {
				t.Fatal(err)
			}
			for _, size := range []int{16, 100 << 10} {
				payload := bytes.Repeat([]byte{byte(size)}, size)
				got, err := ref.Invoke("EchoBytes", payload)
				if err != nil {
					t.Fatalf("EchoBytes %dB over %s: %v", size, scheme, err)
				}
				if !bytes.Equal(got.([]byte), payload) {
					t.Fatalf("EchoBytes %dB over %s: payload corrupted", size, scheme)
				}
			}
		})
	}
}
