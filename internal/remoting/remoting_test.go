package remoting

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/threadpool"
	"repro/internal/transport"
	"repro/internal/wire"
)

// divideServer mirrors the paper's Fig. 1/2 example service.
type divideServer struct {
	calls atomic.Int64
}

func (d *divideServer) Divide(a, b float64) (float64, error) {
	d.calls.Add(1)
	if b == 0 {
		return 0, errors.New("division by zero")
	}
	return a / b, nil
}

func (d *divideServer) Calls() int { return int(d.calls.Load()) }

func (d *divideServer) Echo(nums []int32) []int32 { return nums }

func (d *divideServer) Noop() {}

func (d *divideServer) Fail() error { return errors.New("always fails") }

type statefulCounter struct {
	mu sync.Mutex
	n  int
}

func (c *statefulCounter) Incr() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

func newTestServer(t *testing.T, kind Kind, opts ...ServerOption) (*Channel, *Server) {
	t.Helper()
	net := transport.NewMemNetwork()
	var ch *Channel
	switch kind {
	case TCP:
		ch = NewTCPChannel(net)
	case LegacyTCP:
		ch = NewLegacyTCPChannel(net)
	case HTTP:
		ch = NewHTTPChannel(net)
	}
	srv, err := ch.ListenAndServe("mem://server", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return ch, srv
}

func TestParseURL(t *testing.T) {
	cases := []struct {
		url                  string
		scheme, netaddr, uri string
		wantErr              bool
	}{
		{url: "tcp://127.0.0.1:4000/DivideServer", scheme: "tcp", netaddr: "127.0.0.1:4000", uri: "DivideServer"},
		{url: "mem://node0/factory", scheme: "mem", netaddr: "mem://node0", uri: "factory"},
		{url: "http://h:1/a/b", scheme: "http", netaddr: "h:1", uri: "a/b"},
		{url: "nonsense", wantErr: true},
		{url: "tcp://hostonly", wantErr: true},
		{url: "tcp:///nouri", wantErr: true},
	}
	for _, c := range cases {
		scheme, netaddr, uri, err := ParseURL(c.url)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseURL(%q): expected error", c.url)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseURL(%q): %v", c.url, err)
			continue
		}
		if scheme != c.scheme || netaddr != c.netaddr || uri != c.uri {
			t.Errorf("ParseURL(%q) = %q,%q,%q", c.url, scheme, netaddr, uri)
		}
	}
}

func TestBuildURLRoundtrip(t *testing.T) {
	url := BuildURL("tcp", "mem://node3", "om")
	_, netaddr, uri, err := ParseURL(url)
	if err != nil {
		t.Fatal(err)
	}
	// The scheme is advisory; the mem transport address must survive.
	if netaddr != "mem://node3" || uri != "om" {
		t.Errorf("roundtrip = %q %q", netaddr, uri)
	}
}

func TestSingletonInvoke(t *testing.T) {
	for _, kind := range []Kind{TCP, LegacyTCP, HTTP} {
		t.Run(kind.String(), func(t *testing.T) {
			ch, srv := newTestServer(t, kind)
			shared := &divideServer{}
			srv.RegisterWellKnown("DivideServer", Singleton, func() any { return shared })
			ref, err := GetObject(ch, srv.URLFor("DivideServer"))
			if err != nil {
				t.Fatal(err)
			}
			got, err := ref.Invoke("Divide", 10.0, 4.0)
			if err != nil {
				t.Fatal(err)
			}
			if got != 2.5 {
				t.Errorf("Divide = %v", got)
			}
			if _, err := ref.Invoke("Divide", 1.0, 0.0); err == nil {
				t.Error("expected division by zero error")
			} else {
				var re *RemoteError
				if !errors.As(err, &re) {
					t.Errorf("error type %T, want *RemoteError", err)
				}
			}
		})
	}
}

func TestSingletonSharesState(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("counter", Singleton, func() any { return &statefulCounter{} })
	ref, _ := GetObject(ch, srv.URLFor("counter"))
	for want := 1; want <= 3; want++ {
		got, err := ref.Invoke("Incr")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Incr = %v, want %d", got, want)
		}
	}
}

func TestSingleCallFreshInstancePerCall(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("counter", SingleCall, func() any { return &statefulCounter{} })
	ref, _ := GetObject(ch, srv.URLFor("counter"))
	for i := 0; i < 3; i++ {
		got, err := ref.Invoke("Incr")
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Errorf("SingleCall Incr = %v, want 1 (state must not persist)", got)
		}
	}
}

func TestEchoArrays(t *testing.T) {
	for _, kind := range []Kind{TCP, LegacyTCP, HTTP} {
		t.Run(kind.String(), func(t *testing.T) {
			ch, srv := newTestServer(t, kind)
			srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
			ref, _ := GetObject(ch, srv.URLFor("d"))
			payload := make([]int32, 5000) // > legacy chunk size when encoded
			for i := range payload {
				payload[i] = int32(i)
			}
			got, err := ref.Invoke("Echo", payload)
			if err != nil {
				t.Fatal(err)
			}
			gs, ok := got.([]int32)
			if !ok || len(gs) != len(payload) || gs[4999] != 4999 {
				t.Errorf("Echo returned %T len %d", got, len(gs))
			}
		})
	}
}

func TestVoidMethod(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	got, err := ref.Invoke("Noop")
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Errorf("Noop = %v, want nil", got)
	}
}

func TestErrorOnlyMethod(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	if _, err := ref.Invoke("Fail"); err == nil || !strings.Contains(err.Error(), "always fails") {
		t.Errorf("Fail error = %v", err)
	}
}

func TestUnknownURIAndMethod(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("missing"))
	if _, err := ref.Invoke("Divide", 1.0, 1.0); err == nil {
		t.Error("expected unknown-URI error")
	}
	ref2, _ := GetObject(ch, srv.URLFor("d"))
	if _, err := ref2.Invoke("NoSuchMethod"); err == nil {
		t.Error("expected unknown-method error")
	}
}

func TestArgumentMismatch(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	if _, err := ref.Invoke("Divide", 1.0); err == nil {
		t.Error("expected arity error")
	}
	if _, err := ref.Invoke("Divide", "x", "y"); err == nil {
		t.Error("expected type error")
	}
}

func TestNumericArgumentWidening(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	// ints convert to the float64 parameters.
	got, err := ref.Invoke("Divide", 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.0 {
		t.Errorf("Divide(9,3) = %v", got)
	}
}

func TestBeginEndInvoke(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	ar := ref.BeginInvoke("Divide", 8.0, 2.0)
	got, err := ar.EndInvoke()
	if err != nil {
		t.Fatal(err)
	}
	if got != 4.0 {
		t.Errorf("async Divide = %v", got)
	}
	if !ar.IsCompleted() {
		t.Error("IsCompleted false after EndInvoke")
	}
}

func TestDelegate(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	del := NewDelegate(ref, "Divide")
	ar := del.BeginInvoke(6.0, 3.0)
	got, err := ar.EndInvoke()
	if err != nil || got != 2.0 {
		t.Errorf("delegate = %v, %v", got, err)
	}
	if got, err := del.Invoke(6.0, 2.0); err != nil || got != 3.0 {
		t.Errorf("delegate sync = %v, %v", got, err)
	}
}

func TestConcurrentInvokes(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	shared := &divideServer{}
	srv.RegisterWellKnown("d", Singleton, func() any { return shared })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	var wg sync.WaitGroup
	errs := make(chan error, 200)
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 1; j <= 10; j++ {
				got, err := ref.Invoke("Divide", float64(j*2), float64(j))
				if err != nil {
					errs <- err
					return
				}
				if got != 2.0 {
					errs <- errors.New("wrong result")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if shared.Calls() != 200 {
		t.Errorf("calls = %d, want 200", shared.Calls())
	}
}

func TestCallSequencerOrdering(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	rec := &recorder{}
	srv.RegisterWellKnown("r", Singleton, func() any { return rec })
	ref, _ := GetObject(ch, srv.URLFor("r"))
	cs := NewCallSequencer(ref)
	const n = 50
	for i := 0; i < n; i++ {
		cs.Post("Add", i)
	}
	cs.Flush()
	got := rec.snapshot()
	if len(got) != n {
		t.Fatalf("recorded %d calls, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("call %d recorded value %d; ordering violated", i, v)
		}
	}
}

func TestCallSequencerErrorCallback(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	cs := NewCallSequencer(ref)
	var got atomic.Int64
	cs.OnError = func(error) { got.Add(1) }
	cs.Post("NoSuchMethod")
	cs.Post("Noop")
	cs.Flush()
	if got.Load() != 1 {
		t.Errorf("error callbacks = %d, want 1", got.Load())
	}
}

type recorder struct {
	mu   sync.Mutex
	vals []int
}

func (r *recorder) Add(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vals = append(r.vals, v)
}

func (r *recorder) snapshot() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.vals))
	copy(out, r.vals)
	return out
}

func TestMarshalAndLeaseExpiry(t *testing.T) {
	// Generous windows: the suite runs alongside other packages and a
	// scheduler stall between renewals must not flake the test.
	ch, srv := newTestServer(t, TCP, WithLeaseTTL(250*time.Millisecond))
	srv.Marshal("obj", &divideServer{})
	ref, _ := GetObject(ch, srv.URLFor("obj"))
	// Calls within the TTL keep renewing.
	for i := 0; i < 3; i++ {
		if _, err := ref.Invoke("Noop"); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		time.Sleep(30 * time.Millisecond)
	}
	// Silence for > TTL expires the lease and unpublishes the object.
	time.Sleep(600 * time.Millisecond)
	if srv.Published("obj") {
		t.Fatal("lease did not expire")
	}
	if _, err := ref.Invoke("Noop"); err == nil {
		t.Error("call after lease expiry should fail")
	}
}

func TestUnregister(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.Marshal("obj", &divideServer{})
	ref, _ := GetObject(ch, srv.URLFor("obj"))
	if _, err := ref.Invoke("Noop"); err != nil {
		t.Fatal(err)
	}
	srv.Unregister("obj")
	if _, err := ref.Invoke("Noop"); err == nil {
		t.Error("call after Unregister should fail")
	}
	srv.Unregister("obj") // idempotent
}

func TestServerWithThreadPoolCap(t *testing.T) {
	pool := threadpool.New(2, 0)
	defer pool.Close()
	ch, srv := newTestServer(t, TCP, WithPool(pool))
	var cur, peak atomic.Int64
	blocker := &blockingService{cur: &cur, peak: &peak, dur: 30 * time.Millisecond}
	srv.RegisterWellKnown("b", Singleton, func() any { return blocker })
	ref, _ := GetObject(ch, srv.URLFor("b"))
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ref.Invoke("Work")
		}()
	}
	wg.Wait()
	if peak.Load() > 2 {
		t.Errorf("pool cap violated: peak concurrency %d", peak.Load())
	}
}

type blockingService struct {
	cur, peak *atomic.Int64
	dur       time.Duration
}

func (b *blockingService) Work() {
	c := b.cur.Add(1)
	for {
		p := b.peak.Load()
		if c <= p || b.peak.CompareAndSwap(p, c) {
			break
		}
	}
	time.Sleep(b.dur)
	b.cur.Add(-1)
}

func TestTCPTransportIntegration(t *testing.T) {
	ch := NewTCPChannel(transport.TCPNetwork{})
	srv, err := ch.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, err := GetObject(ch, srv.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ref.Invoke("Divide", 10.0, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.0 {
		t.Errorf("Divide over TCP = %v", got)
	}
}

func TestStructArguments(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("s", Singleton, func() any { return &structService{} })
	ref, _ := GetObject(ch, srv.URLFor("s"))
	got, err := ref.Invoke("Sum", wirePoint{X: 3, Y: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("Sum = %v", got)
	}
	got2, err := ref.Invoke("Mirror", &wirePoint{X: 1, Y: 2})
	if err != nil {
		t.Fatal(err)
	}
	p, ok := got2.(*wirePoint)
	if !ok || p.X != 2 || p.Y != 1 {
		t.Errorf("Mirror = %#v", got2)
	}
}

type wirePoint struct{ X, Y int }

func init() { wire.Register(wirePoint{}) }

type structService struct{}

func (structService) Sum(p wirePoint) int { return p.X + p.Y }

func (structService) Mirror(p *wirePoint) *wirePoint { return &wirePoint{X: p.Y, Y: p.X} }

func TestCostModelChargesLatency(t *testing.T) {
	net := transport.NewMemNetwork()
	ch := NewTCPChannel(net)
	ch.Cost = CostModel{PerMessage: 5 * time.Millisecond}
	srv, err := ch.ListenAndServe("mem://cost")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	start := time.Now()
	if _, err := ref.Invoke("Noop"); err != nil {
		t.Fatal(err)
	}
	// 4 charged messages (client send, server recv, server send, client
	// recv) of 5 ms each.
	if rtt := time.Since(start); rtt < 18*time.Millisecond {
		t.Errorf("cost model under-charged: rtt %v", rtt)
	}
}

func TestLeaseRenewAndCancel(t *testing.T) {
	// Wide windows: scheduler stalls while the whole suite runs in
	// parallel must not eat the TTL between steps.
	fired := make(chan struct{}, 1)
	l := newLease(300*time.Millisecond, func() { fired <- struct{}{} })
	time.Sleep(50 * time.Millisecond)
	if !l.renew() {
		t.Fatal("renew on live lease failed")
	}
	if l.remaining() < 150*time.Millisecond {
		t.Errorf("renew did not extend: %v", l.remaining())
	}
	l.cancel()
	if l.renew() {
		t.Error("renew after cancel succeeded")
	}
	select {
	case <-fired:
		t.Error("cancelled lease fired onExpire")
	case <-time.After(500 * time.Millisecond):
	}
}

func TestServerCloseStopsAccepting(t *testing.T) {
	ch, srv := newTestServer(t, TCP)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	srv.Close()
	srv.Close() // idempotent
	ref, _ := GetObject(ch, srv.URLFor("d"))
	if _, err := ref.Invoke("Noop"); err == nil {
		t.Error("invoke after server close should fail")
	}
}
