// Idempotency tokens: the client-side half of effectively-once calls.
//
// A CallToken names one logical call: (client id, per-client sequence).
// Every wire attempt of that logical call — the stale-connection redial,
// RetryPolicy retries, and re-resolved retries after a failover — carries
// the same token in its envelope, so a server (or the replica promoted in
// its place) that already executed the call can recognise the retry and
// return the recorded reply instead of executing again. Tokens ride the
// context, not the ObjRef, because one logical call can cross several
// proxies while it chases forwards and re-resolves.
package remoting

import (
	"context"
	"math/rand/v2"
)

// CallToken identifies one logical call for idempotent deduplication. The
// zero token means "no token": the call keeps the historical at-least-once
// retry semantics.
type CallToken struct {
	// Client identifies the issuing channel (random, drawn once per
	// channel). Zero is reserved for "no token".
	Client uint64
	// Seq is the per-client logical-call counter.
	Seq uint64
}

// Zero reports whether the token is the no-token sentinel.
func (t CallToken) Zero() bool { return t.Client == 0 }

// clientID lazily draws the channel's random client identity. Two channels
// colliding would merge their dedup namespaces; 64 random bits make that a
// non-event for any realistic fleet.
func (ch *Channel) clientID() uint64 {
	for {
		if id := ch.tokClient.Load(); id != 0 {
			return id
		}
		id := rand.Uint64()
		if id == 0 {
			continue
		}
		if ch.tokClient.CompareAndSwap(0, id) {
			return id
		}
	}
}

// NewCallToken draws a fresh token for one logical call. Reuse the token
// across every retry of that call and nothing else.
func (ch *Channel) NewCallToken() CallToken {
	return CallToken{Client: ch.clientID(), Seq: ch.tokSeq.Add(1)}
}

type tokenCtxKey struct{}

// ContextWithToken returns a context carrying tok; ObjRef.InvokeCtx stamps
// it into every request envelope sent under that context.
func ContextWithToken(ctx context.Context, tok CallToken) context.Context {
	if tok.Zero() {
		return ctx
	}
	return context.WithValue(ctx, tokenCtxKey{}, tok)
}

// TokenFromContext extracts the call token from ctx, if any. The server
// side uses it too: dispatch installs the request's token into the
// invocation context so object runtimes (the SCOOPP actor layer) can dedup
// before side effects replicate.
func TokenFromContext(ctx context.Context) (CallToken, bool) {
	tok, ok := ctx.Value(tokenCtxKey{}).(CallToken)
	return tok, ok && !tok.Zero()
}

// noRetryCtxKey marks contexts whose calls must not go through the
// channel's RetryPolicy (health probes, whose timing is the failure
// detector's clock and must not be stretched by backoff sleeps).
type noRetryCtxKey struct{}

// WithoutRetry returns a context whose calls bypass the channel's retry
// policy (a single attempt, as before the policy existed).
func WithoutRetry(ctx context.Context) context.Context {
	return context.WithValue(ctx, noRetryCtxKey{}, true)
}

func retryDisabled(ctx context.Context) bool {
	on, _ := ctx.Value(noRetryCtxKey{}).(bool)
	return on
}

// noBreakerCtxKey marks contexts whose calls must bypass the per-peer
// circuit breaker entirely — no fast-fail, no evidence recorded.
type noBreakerCtxKey struct{}

// WithoutBreaker returns a context whose calls make a genuine transport
// attempt even when the peer's breaker is open. The breaker is an
// availability optimisation (skip the dial timeout a known-dead peer
// costs); a correctness-critical read such as a promotion census must not
// be answered by it: a breaker left open by a healed transient would make
// the freshest replica holder look unreachable, and a quorum met via
// emptier peers would then promote stale state past acknowledged calls.
// Callers are expected to bound the attempt with their own deadline.
func WithoutBreaker(ctx context.Context) context.Context {
	return context.WithValue(ctx, noBreakerCtxKey{}, true)
}

func breakerBypassed(ctx context.Context) bool {
	on, _ := ctx.Value(noBreakerCtxKey{}).(bool)
	return on
}
