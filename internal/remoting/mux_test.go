package remoting

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/threadpool"
	"repro/internal/transport"
)

// countingNetwork counts dials, to prove the multiplexed channel shares one
// connection.
type countingNetwork struct {
	transport.Network
	dials atomic.Int64
}

func (n *countingNetwork) Dial(addr string) (transport.Conn, error) {
	n.dials.Add(1)
	return n.Network.Dial(addr)
}

// gateService blocks WaitGate until Open runs, and reports (through
// started) when WaitGate is executing server-side.
type gateService struct {
	started chan struct{}
	gate    chan struct{}
}

func newGateService() *gateService {
	return &gateService{started: make(chan struct{}, 16), gate: make(chan struct{})}
}

func (g *gateService) WaitGate() string {
	g.started <- struct{}{}
	<-g.gate
	return "waited"
}

func (g *gateService) Open() string {
	close(g.gate)
	return "opened"
}

func (g *gateService) Ping() string { return "pong" }

func newMuxServer(t *testing.T, opts ...ServerOption) (*Channel, *Server, *countingNetwork) {
	t.Helper()
	net := &countingNetwork{Network: transport.NewMemNetwork()}
	ch := NewMultiplexedChannel(net)
	srv, err := ch.ListenAndServe("mem://mux", opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	t.Cleanup(ch.Close)
	return ch, srv, net
}

func TestMultiplexedInvoke(t *testing.T) {
	ch, srv, _ := newMuxServer(t)
	shared := &divideServer{}
	srv.RegisterWellKnown("d", Singleton, func() any { return shared })
	ref, err := GetObject(ch, srv.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ref.Invoke("Divide", 10.0, 4.0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2.5 {
		t.Errorf("Divide = %v", got)
	}
	if _, err := ref.Invoke("Divide", 1.0, 0.0); err == nil {
		t.Error("expected division by zero error")
	} else {
		var re *RemoteError
		if !errors.As(err, &re) {
			t.Errorf("error type %T, want *RemoteError", err)
		}
	}
}

func TestMultiplexedSharesOneConnection(t *testing.T) {
	ch, srv, net := newMuxServer(t)
	ch.MuxLanes = 1 // this test is exactly about sharing one connection
	shared := &divideServer{}
	srv.RegisterWellKnown("d", Singleton, func() any { return shared })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				if _, err := ref.Invoke("Divide", 8.0, 2.0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if shared.Calls() != 320 {
		t.Errorf("calls = %d, want 320", shared.Calls())
	}
	if d := net.dials.Load(); d != 1 {
		t.Errorf("dials = %d, want 1 (one long-lived connection per peer)", d)
	}
}

// TestMultiplexedOutOfOrderCompletion proves the pipeline: a call that
// blocks server-side must not block a later call on the same connection,
// and the later call's response overtakes it on the wire. With the old
// serial per-connection dispatch this test deadlocks.
func TestMultiplexedOutOfOrderCompletion(t *testing.T) {
	ch, srv, _ := newMuxServer(t)
	g := newGateService()
	srv.RegisterWellKnown("g", Singleton, func() any { return g })
	ref, _ := GetObject(ch, srv.URLFor("g"))

	slow := ref.BeginInvoke("WaitGate")
	select {
	case <-g.started:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitGate never reached the server")
	}
	if slow.IsCompleted() {
		t.Fatal("WaitGate completed before the gate opened")
	}

	done := make(chan struct{})
	var openRes any
	var openErr error
	go func() {
		defer close(done)
		openRes, openErr = ref.Invoke("Open")
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Open deadlocked behind WaitGate: dispatch is not concurrent")
	}
	if openErr != nil || openRes != "opened" {
		t.Fatalf("Open = %v, %v", openRes, openErr)
	}
	got, err := slow.EndInvoke()
	if err != nil || got != "waited" {
		t.Fatalf("WaitGate = %v, %v", got, err)
	}
}

// TestMultiplexedCancellationAbandonsCall checks that an expired context
// abandons only its own call: the shared connection survives and later
// calls (and the late response being dropped) work fine.
func TestMultiplexedCancellationAbandonsCall(t *testing.T) {
	ch, srv, net := newMuxServer(t)
	ch.MuxLanes = 1 // dial count below assumes a single shared connection
	g := newGateService()
	srv.RegisterWellKnown("g", Singleton, func() any { return g })
	ref, _ := GetObject(ch, srv.URLFor("g"))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := ref.InvokeCtx(ctx, "WaitGate"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The connection must still be usable by other calls.
	if got, err := ref.Invoke("Ping"); err != nil || got != "pong" {
		t.Fatalf("Ping after cancellation = %v, %v", got, err)
	}
	// Unblock the abandoned handler; its late response is dropped.
	if _, err := ref.Invoke("Open"); err != nil {
		t.Fatal(err)
	}
	if got, err := ref.Invoke("Ping"); err != nil || got != "pong" {
		t.Fatalf("Ping after late response = %v, %v", got, err)
	}
	if d := net.dials.Load(); d != 1 {
		t.Errorf("dials = %d, want 1: cancellation must not kill the connection", d)
	}
}

// TestMultiplexedMaxInFlightBackpressure bounds concurrent exchanges: with
// MaxInFlight=2, six concurrent callers must never execute more than two
// methods at once server-side.
func TestMultiplexedMaxInFlightBackpressure(t *testing.T) {
	ch, srv, _ := newMuxServer(t)
	ch.MuxLanes = 1 // MaxInFlight is per lane; the peak bound assumes one
	ch.MaxInFlight = 2
	var cur, peak atomic.Int64
	blocker := &blockingService{cur: &cur, peak: &peak, dur: 30 * time.Millisecond}
	srv.RegisterWellKnown("b", Singleton, func() any { return blocker })
	ref, _ := GetObject(ch, srv.URLFor("b"))
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ref.Invoke("Work") //nolint:errcheck
		}()
	}
	wg.Wait()
	if peak.Load() > 2 {
		t.Errorf("MaxInFlight violated: peak server concurrency %d", peak.Load())
	}
}

// TestMultiplexedStaleConnRetry kills the server between calls: the
// long-lived connection goes stale and the next call must transparently
// redial instead of failing with ErrNodeDown.
func TestMultiplexedStaleConnRetry(t *testing.T) {
	net := transport.NewMemNetwork()
	ch := NewMultiplexedChannel(net)
	defer ch.Close()
	srv, err := ch.ListenAndServe("mem://restart")
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	if _, err := ref.Invoke("Noop"); err != nil {
		t.Fatal(err)
	}
	srv.Close() // peer "restarts": the pipe is now dead
	srv2, err := ch.ListenAndServe("mem://restart")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	got, err := ref.Invoke("Divide", 9.0, 3.0)
	if err != nil {
		t.Fatalf("call after peer restart = %v, want transparent redial", err)
	}
	if got != 3.0 {
		t.Errorf("Divide = %v", got)
	}
}

// TestMultiplexedDownPeerFails ensures genuine failures still surface: with
// no listener at all the retry must not loop or mask ErrNodeDown.
func TestMultiplexedDownPeerFails(t *testing.T) {
	net := transport.NewMemNetwork()
	ch := NewMultiplexedChannel(net)
	defer ch.Close()
	ref := NewObjRef(ch, "mem://nowhere", "d")
	if _, err := ref.Invoke("Noop"); !errors.Is(err, errs.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

// TestPooledStaleConnRetry is the regression test for the pooled channel's
// stale-connection bug: a server restart between calls left a dead
// connection in the pool and the next call failed with ErrNodeDown instead
// of redialling.
func TestPooledStaleConnRetry(t *testing.T) {
	net := transport.NewMemNetwork()
	ch := NewTCPChannel(net)
	defer ch.Close()
	srv, err := ch.ListenAndServe("mem://restart-pooled")
	if err != nil {
		t.Fatal(err)
	}
	shared := &divideServer{}
	srv.RegisterWellKnown("d", Singleton, func() any { return shared })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	if _, err := ref.Invoke("Noop"); err != nil {
		t.Fatal(err)
	}
	srv.Close() // kills the pooled connection under us
	srv2, err := ch.ListenAndServe("mem://restart-pooled")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.RegisterWellKnown("d", Singleton, func() any { return shared })
	got, err := ref.Invoke("Divide", 10.0, 2.0)
	if err != nil {
		t.Fatalf("call after peer restart = %v, want retry on a fresh connection", err)
	}
	if got != 5.0 {
		t.Errorf("Divide = %v", got)
	}
}

// TestPooledDownPeerStillFails: with the peer gone for good, the single
// retry dials, fails, and the caller sees ErrNodeDown — no retry loop.
func TestPooledDownPeerStillFails(t *testing.T) {
	net := transport.NewMemNetwork()
	ch := NewTCPChannel(net)
	defer ch.Close()
	srv, err := ch.ListenAndServe("mem://gone")
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	if _, err := ref.Invoke("Noop"); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := ref.Invoke("Noop"); !errors.Is(err, errs.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
}

// TestChannelCloseDrainsConnections: Close releases idle pooled conns and
// multiplexed peers; the channel stays usable and redials afterwards.
func TestChannelCloseDrainsConnections(t *testing.T) {
	t.Run("pooled", func(t *testing.T) {
		net := transport.NewMemNetwork()
		ch := NewTCPChannel(net)
		srv, err := ch.ListenAndServe("mem://drain")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
		ref, _ := GetObject(ch, srv.URLFor("d"))
		if _, err := ref.Invoke("Noop"); err != nil {
			t.Fatal(err)
		}
		ch.pool.mu.Lock()
		idle := len(ch.pool.idle["mem://drain"])
		ch.pool.mu.Unlock()
		if idle != 1 {
			t.Fatalf("idle conns before Close = %d, want 1", idle)
		}
		ch.Close()
		ch.pool.mu.Lock()
		drained := ch.pool.idle == nil
		ch.pool.mu.Unlock()
		if !drained {
			t.Error("Close left idle connections pooled")
		}
		if _, err := ref.Invoke("Noop"); err != nil {
			t.Errorf("channel unusable after Close: %v", err)
		}
	})
	t.Run("multiplexed", func(t *testing.T) {
		ch, srv, net := newMuxServer(t)
		srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
		ref, _ := GetObject(ch, srv.URLFor("d"))
		if _, err := ref.Invoke("Noop"); err != nil {
			t.Fatal(err)
		}
		ch.Close()
		ch.muxMu.Lock()
		peers := len(ch.muxPeers)
		ch.muxMu.Unlock()
		if peers != 0 {
			t.Errorf("Close left %d multiplexed peers", peers)
		}
		if _, err := ref.Invoke("Noop"); err != nil {
			t.Errorf("channel unusable after Close: %v", err)
		}
		if d := net.dials.Load(); d != 2 {
			t.Errorf("dials = %d, want 2 (redial after Close)", d)
		}
	})
}

// TestMultiplexedWithThreadPool: the pool still caps execution concurrency
// when requests arrive pipelined on one connection.
func TestMultiplexedWithThreadPool(t *testing.T) {
	pool := threadpool.New(2, 0)
	defer pool.Close()
	ch, srv, _ := newMuxServer(t, WithPool(pool))
	var cur, peak atomic.Int64
	blocker := &blockingService{cur: &cur, peak: &peak, dur: 20 * time.Millisecond}
	srv.RegisterWellKnown("b", Singleton, func() any { return blocker })
	ref, _ := GetObject(ch, srv.URLFor("b"))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ref.Invoke("Work") //nolint:errcheck
		}()
	}
	wg.Wait()
	if peak.Load() > 2 {
		t.Errorf("pool cap violated under pipelining: peak %d", peak.Load())
	}
}

// TestMultiplexedCallSequencerOrdering: client-side ordering guarantees
// survive the concurrent server dispatch because the sequencer itself
// serialises, one call at a time.
func TestMultiplexedCallSequencerOrdering(t *testing.T) {
	ch, srv, _ := newMuxServer(t)
	rec := &recorder{}
	srv.RegisterWellKnown("r", Singleton, func() any { return rec })
	ref, _ := GetObject(ch, srv.URLFor("r"))
	cs := NewCallSequencer(ref)
	const n = 50
	for i := 0; i < n; i++ {
		cs.Post("Add", i)
	}
	cs.Flush()
	got := rec.snapshot()
	if len(got) != n {
		t.Fatalf("recorded %d calls, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("call %d recorded value %d; ordering violated", i, v)
		}
	}
}

// TestMultiplexedCloseDoesNotRetry: an in-flight call failed by an orderly
// Channel.Close must surface ErrNodeDown without redialling — a retry
// would re-create the connection Close just released.
func TestMultiplexedCloseDoesNotRetry(t *testing.T) {
	ch, srv, net := newMuxServer(t)
	g := newGateService()
	srv.RegisterWellKnown("g", Singleton, func() any { return g })
	ref, _ := GetObject(ch, srv.URLFor("g"))
	ar := ref.BeginInvoke("WaitGate")
	select {
	case <-g.started:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitGate never reached the server")
	}
	ch.Close()
	if _, err := ar.EndInvoke(); !errors.Is(err, errs.ErrNodeDown) {
		t.Fatalf("in-flight call after Close = %v, want ErrNodeDown", err)
	}
	if d := net.dials.Load(); d != 1 {
		t.Errorf("dials = %d, want 1: Close must not trigger a retry redial", d)
	}
	close(g.gate) // release the abandoned server-side handler
}
