package remoting

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dispatch"
	"repro/internal/errs"
	"repro/internal/threadpool"
	"repro/internal/transport"
	"repro/internal/wire"
)

// WellKnownMode selects how the server activates a well-known object,
// mirroring System.Runtime.Remoting.WellKnownObjectMode — the facility the
// paper singles out (§2) as the improvement over RMI's manual export.
type WellKnownMode int

const (
	// Singleton serves every call with one lazily created instance.
	Singleton WellKnownMode = iota
	// SingleCall creates a fresh instance per call; no state is retained
	// between invocations.
	SingleCall
)

// String names the mode.
func (m WellKnownMode) String() string {
	if m == Singleton {
		return "Singleton"
	}
	return "SingleCall"
}

// registration is one published URI.
type registration struct {
	mode    WellKnownMode
	factory func() any

	mu        sync.Mutex
	singleton any

	// instance-mode (Marshal) objects carry a lease.
	instance any
	lease    *lease
}

// resolve returns the object a call should execute on.
func (r *registration) resolve() (any, error) {
	if r.instance != nil {
		if r.lease != nil && !r.lease.renew() {
			return nil, fmt.Errorf("object lease expired: %w", errs.ErrObjectDestroyed)
		}
		return r.instance, nil
	}
	switch r.mode {
	case SingleCall:
		return r.factory(), nil
	default:
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.singleton == nil {
			r.singleton = r.factory()
		}
		return r.singleton, nil
	}
}

// ServerOption configures ListenAndServe.
type ServerOption func(*Server)

// WithPool dispatches method execution on the given bounded pool, modelling
// the Mono thread pool the paper holds responsible for starvation in Fig. 9.
// Without it every request runs on its own goroutine (the idealised
// unbounded runtime).
func WithPool(p *threadpool.Pool) ServerOption {
	return func(s *Server) { s.pool = p }
}

// WithLeaseTTL sets the initial/renewal time-to-live for objects published
// with Marshal. Zero keeps the default of 5 minutes (the .NET default).
func WithLeaseTTL(ttl time.Duration) ServerOption {
	return func(s *Server) { s.leaseTTL = ttl }
}

// Server publishes objects on a channel, playing the role of
// ChannelServices + RemotingConfiguration for one endpoint.
type Server struct {
	ch       *Channel
	listener transport.Listener
	pool     *threadpool.Pool
	leaseTTL time.Duration

	// deadlineDrops counts requests refused before dispatch because the
	// deadline they carried had already expired in transit or in queue;
	// the work was never invoked.
	deadlineDrops atomic.Int64

	mu      sync.Mutex
	objects map[string]*registration
	conns   map[transport.Conn]struct{}
	closed  bool

	// regGen counts mutations of the objects table. Bound-handle entries
	// cache the *registration they resolved together with the generation
	// they saw; a mismatch sends the next call back to the map, so
	// Unregister and republish keep their immediate string-path semantics
	// without a map lookup on the steady-state bound path. The counter is
	// bumped after the mutation (under mu), so a racing reader can only
	// cache conservatively (stale generation, revalidated next call).
	regGen atomic.Uint64

	wg sync.WaitGroup
}

// ListenAndServe starts serving on addr (transport syntax, for example
// "127.0.0.1:0" or "mem://node1") and returns immediately.
func (ch *Channel) ListenAndServe(addr string, opts ...ServerOption) (*Server, error) {
	l, err := ch.net.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ch:       ch,
		listener: l,
		leaseTTL: 5 * time.Minute,
		objects:  make(map[string]*registration),
		conns:    make(map[transport.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the transport address clients dial.
func (s *Server) Addr() string { return s.listener.Addr() }

// DeadlineDrops reports how many requests this server refused before
// dispatch because their propagated deadline had already expired.
func (s *Server) DeadlineDrops() int64 { return s.deadlineDrops.Load() }

// URLFor returns the full remoting URL for a URI published on this server.
func (s *Server) URLFor(uri string) string {
	return BuildURL(s.ch.Scheme(), s.Addr(), uri)
}

// RegisterWellKnown publishes factory under uri with the given activation
// mode (RemotingConfiguration.RegisterWellKnownServiceType).
func (s *Server) RegisterWellKnown(uri string, mode WellKnownMode, factory func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[uri] = &registration{mode: mode, factory: factory}
	s.regGen.Add(1)
}

// Marshal publishes an explicitly instantiated object under uri with a
// lease. The lease renews on every call and the object is unpublished when
// it expires, standing in for .NET's lifetime service. Any lease the
// previous registration at uri held is cancelled, so replacing a
// registration (a migrated object returning to a node that still holds
// its tombstone) cannot leave an orphaned timer that later unpublishes
// the new object.
func (s *Server) Marshal(uri string, obj any) {
	s.publishLeased(uri, obj, nil)
}

// publishLeased is the shared body of Marshal and Republish: atomically
// swap in an instance registration under a fresh lease, cancelling the
// previous registration's lease. The expiry callback unpublishes only its
// own registration — an expiry racing a same-URI re-registration must not
// tear down the newcomer — and onExpire (may be nil) runs only when that
// unpublish actually happened.
func (s *Server) publishLeased(uri string, obj any, onExpire func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev, ok := s.objects[uri]; ok && prev.lease != nil {
		prev.lease.cancel()
	}
	reg := &registration{instance: obj}
	reg.lease = newLease(s.leaseTTL, func() {
		if s.unregisterIf(uri, reg) && onExpire != nil {
			onExpire()
		}
	})
	s.objects[uri] = reg
	s.regGen.Add(1)
}

// unregisterIf removes uri only while reg is still what is published
// there, reporting whether it did.
func (s *Server) unregisterIf(uri string, reg *registration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.objects[uri]
	if !ok || cur != reg {
		return false
	}
	if cur.lease != nil {
		cur.lease.cancel()
	}
	delete(s.objects, uri)
	s.regGen.Add(1)
	return true
}

// Republish atomically replaces whatever is published at uri with obj
// under a fresh lease, cancelling any lease the old registration held.
// Unlike Unregister-then-Marshal there is no window in which the URI
// resolves to nothing, which matters when the replacement is a migration
// tombstone: a call racing the swap must observe either the old object or
// the forward, never a spurious ErrObjectDestroyed. The lease renews on
// every call and onExpire (may be nil) runs after an idle lease lapses
// and the uri is unpublished — migration tombstones use it so hot
// forwards stay alive while idle ones are garbage-collected instead of
// accumulating forever. Bound call handles cached against the old
// registration re-resolve on their next call through the bumped
// registration generation.
func (s *Server) Republish(uri string, obj any, onExpire func()) {
	s.publishLeased(uri, obj, onExpire)
}

// Unregister removes a published URI, reporting whether this call removed
// it. Safe to call for absent URIs; concurrent unregisters of one URI see
// true exactly once, which callers use for exactly-once accounting.
func (s *Server) Unregister(uri string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg, ok := s.objects[uri]
	if !ok {
		return false
	}
	if reg.lease != nil {
		reg.lease.cancel()
	}
	delete(s.objects, uri)
	s.regGen.Add(1)
	return true
}

// Published reports whether uri is currently resolvable.
func (s *Server) Published(uri string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[uri]
	return ok
}

// Close stops accepting connections. In-flight calls are allowed to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, reg := range s.objects {
		if reg.lease != nil {
			reg.lease.cancel()
		}
	}
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// serverConn is the per-connection serve state: the coalescing response
// writer and the bound-handle table (envelope.go). The bind table is
// touched only by the connection's read loop — TCP ordering guarantees a
// handle is declared before any compact call uses it — so it needs no
// lock; compact is read by concurrent handlers and is atomic.
//
// Responses are written through a combining lock rather than a dedicated
// writer goroutine: the first handler to respond becomes the flusher and
// keeps writing — in batched wire writes — until the queue it shares with
// every concurrent handler is empty, while later handlers just append
// their frame and return. A sequential connection (pooled, legacy, HTTP)
// therefore writes directly with zero added hops, exactly as before,
// while a pipelined connection under load coalesces everything that
// accumulated during the previous write into one syscall. The queue is
// bounded by the number of in-flight handlers, the same backpressure the
// old per-connection write lock provided.
type serverConn struct {
	s       *Server
	c       transport.Conn
	compact atomic.Bool  // client proved it speaks compact envelopes
	binds   []*bindEntry // handle-1 → entry; read-loop only

	wmu     sync.Mutex
	pending []outFrame
	writing bool // a flusher is active; it will pick pending up
	failed  bool // the connection write-failed; discard instead of writing

	// Flusher-owned scratch, reused across flushes so the steady-state
	// write path allocates nothing: spare ping-pongs with pending's
	// backing array, raws carries one write batch's frame slices. Only
	// the active flusher (sc.writing) touches either.
	spare []outFrame
	raws  [][]byte
}

// bindEntry is one bound (URI, Method) pair with its dispatch caches: the
// resolved registration (validated by the server's registration
// generation) and the invoker thunk for the concrete object type last
// dispatched, so the steady-state bound path skips the objects-map lookup,
// the invoker-registry lookups and the name-interning codec work.
type bindEntry struct {
	uri    string
	method string
	reg    atomic.Pointer[regCache]
	inv    atomic.Pointer[invCache]
}

type regCache struct {
	reg *registration
	gen uint64
}

type invCache struct {
	typ reflect.Type
	inv dispatch.Invoker // nil: no generated thunk, use the reflective path
}

// declare records a bind declaration carried by a string envelope,
// returning the entry and the handle to acknowledge (0 when refused).
// Redeclaration of the same handle is idempotent. Any accepted declaration
// also flips the connection to compact replies: only a new-protocol client
// emits declarations, so it necessarily decodes them.
func (sc *serverConn) declare(req *callRequest) (*bindEntry, uint32) {
	h := req.Bind
	if h == 0 || h > maxBindHandles {
		return nil, 0
	}
	sc.compact.Store(true)
	idx := int(h) - 1
	for len(sc.binds) <= idx {
		sc.binds = append(sc.binds, nil)
	}
	e := sc.binds[idx]
	if e == nil || e.uri != req.URI || e.method != req.Method {
		e = &bindEntry{uri: req.URI, method: req.Method}
		sc.binds[idx] = e
	}
	return e, h
}

// lookupBind resolves a compact call's handle.
func (sc *serverConn) lookupBind(h uint32) *bindEntry {
	if idx := int(h) - 1; idx >= 0 && idx < len(sc.binds) {
		return sc.binds[idx]
	}
	return nil
}

// handleConn serves one client connection with a concurrent dispatch loop:
// the read loop plays the channel's IO thread, reading frames continuously
// and handing each request to a worker (the configured thread pool, or a
// fresh goroutine in the idealised unbounded runtime) instead of blocking
// the connection on one handler. Responses carry the request's sequence
// number and complete out of order when a multiplexed client pipelines
// calls; they are queued to the connection's writer goroutine, which
// coalesces everything pending into batched wire writes. When a thread
// pool is configured its cap still bounds server-side execution
// concurrency exactly as Mono's ThreadPool did; pipelining only changes
// how fast requests reach the pool's queue.
func (s *Server) handleConn(c transport.Conn) {
	defer s.wg.Done()
	sc := &serverConn{s: s, c: c}
	var calls sync.WaitGroup
	defer func() {
		// Let in-flight handlers write (or fail to write) their replies
		// before the connection is torn down; the last flusher among them
		// leaves the queue empty, so nothing is stranded.
		calls.Wait()
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	_, binary := s.ch.binaryCodec()
	for {
		raw, err := s.ch.recvMsg(c)
		if err != nil {
			return
		}
		var req *callRequest
		var entry *bindEntry
		var bindAck uint32
		var borrowed bool
		if binary && (isCompactFrame(raw, markBoundCall) || isCompactFrame(raw, markBoundCallTok)) {
			var handle uint32
			handle, req, borrowed, err = decodeBoundCallShared(raw, true)
			if err != nil {
				// Framing failure: the stream is desynchronised.
				transport.PutFrame(raw)
				return
			}
			entry = sc.lookupBind(handle)
			if entry == nil {
				// A handle the read loop never saw declared: a peer
				// bug, but seq is known, so answer instead of
				// killing every other pipelined call on the pipe.
				sc.respond(req, errorResponse(req, fmt.Sprintf("unbound call handle %d", handle)), 0)
				transport.PutFrame(raw)
				continue
			}
			req.URI, req.Method = entry.uri, entry.method
		} else {
			req, borrowed, err = s.ch.decodeRequestShared(raw, binary)
			if err != nil {
				// Without a sequence number we cannot form a matching
				// reply; drop the connection.
				transport.PutFrame(raw)
				return
			}
			if req.Bind != 0 && binary && !s.ch.DisableBinding {
				entry, bindAck = sc.declare(req)
			}
		}
		// Explicit frame-ownership handoff (zero-copy borrowing): when the
		// decode borrowed, large []byte arguments alias raw, so the frame
		// travels with the request into the invoker and is recycled only
		// after the response was encoded (respond copies anything the
		// result still aliases). Unborrowed frames recycle immediately, as
		// always.
		ownedFrame := raw
		if !borrowed {
			transport.PutFrame(raw) // decode copied everything it kept
			ownedFrame = nil
		}
		handle := func() {
			sc.respond(req, s.dispatchEntry(req, entry), bindAck)
			if ownedFrame != nil {
				transport.PutFrame(ownedFrame)
			}
			// The args backing is dead once the reply is encoded: dispatch
			// copied every element into typed parameters (variadic methods
			// are rejected, so the slice itself never escapes). Elements
			// stay untouched — only the backing array is reused.
			wire.RecycleAnySlice(req.Args)
			req.Args = nil
		}
		calls.Add(1)
		if s.pool != nil {
			if submitErr := s.pool.Submit(func() { defer calls.Done(); handle() }); submitErr != nil {
				sc.respond(req, errorResponse(req, fmt.Sprintf("server shutting down: %v", submitErr)), bindAck)
				if ownedFrame != nil {
					transport.PutFrame(ownedFrame)
				}
				calls.Done()
			}
		} else {
			go func() { defer calls.Done(); handle() }()
		}
	}
}

// respond encodes resp — compact once the client proved it binds, the
// string envelope otherwise — and writes it through the combining lock:
// append to the connection's pending queue, and flush the queue unless
// another handler already is. Unencodable results degrade to an error
// reply; after a write failure responses are discarded and the read loop
// observes the dead connection on its next receive.
func (sc *serverConn) respond(req *callRequest, resp *callResponse, bindAck uint32) {
	raw, enc, err := sc.encodeResponse(resp, bindAck)
	if err != nil {
		raw, enc, err = sc.encodeResponse(errorResponse(req, fmt.Sprintf("unencodable result: %v", err)), bindAck)
		if err != nil {
			return
		}
	}
	sc.wmu.Lock()
	sc.pending = append(sc.pending, outFrame{raw: raw, enc: enc})
	if sc.writing {
		// The active flusher's drain loop will write this frame.
		sc.wmu.Unlock()
		return
	}
	sc.writing = true
	sc.flushLocked()
}

// flushLocked drains the pending queue, writing up to maxWriteBatch frames
// per coalesced wire write with the lock released. Called with wmu held
// and sc.writing owned; returns with wmu released.
func (sc *serverConn) flushLocked() {
	ch := sc.s.ch
	batchable := ch.kind != LegacyTCP
	for len(sc.pending) > 0 {
		batch := sc.pending
		sc.pending = sc.spare[:0]
		failed := sc.failed
		sc.wmu.Unlock()
		for off := 0; off < len(batch); off += maxWriteBatch {
			end := min(off+maxWriteBatch, len(batch))
			if !failed {
				raws := sc.raws[:0]
				for _, of := range batch[off:end] {
					raws = append(raws, of.raw)
				}
				sc.raws = raws
				var err error
				if batchable {
					err = ch.sendMsgBatch(sc.c, raws)
				} else {
					for _, r := range raws {
						if err = ch.sendMsg(sc.c, r); err != nil {
							break
						}
					}
				}
				failed = err != nil
			}
			for _, of := range batch[off:end] {
				of.release()
			}
		}
		clear(batch) // drop frame refs before recycling the array
		sc.wmu.Lock()
		sc.spare = batch[:0]
		sc.failed = sc.failed || failed
	}
	sc.writing = false
	sc.wmu.Unlock()
}

func (sc *serverConn) encodeResponse(resp *callResponse, bindAck uint32) ([]byte, *wire.Encoder, error) {
	if sc.compact.Load() {
		bf, _ := sc.s.ch.binaryCodec()
		return encodeBoundReply(resp, bindAck, bf.DisableGenerated)
	}
	return sc.s.ch.encodeResponse(resp)
}

func errorResponse(req *callRequest, msg string) *callResponse {
	return &callResponse{Seq: req.Seq, IsErr: true, ErrMsg: msg}
}

// errorResponseFor maps err onto the reply envelope, preserving its wire
// code so the client can rebuild the sentinel chain. A *errs.MovedError in
// the chain additionally rides as the forward fields, so the caller learns
// the migrated object's new location from the failure itself.
func errorResponseFor(req *callRequest, err error) *callResponse {
	resp := &callResponse{Seq: req.Seq, IsErr: true, ErrMsg: err.Error(), ErrCode: errs.Code(err)}
	var mv *errs.MovedError
	if errors.As(err, &mv) {
		resp.FwdAddr, resp.FwdNode, resp.FwdGen, resp.FwdURI = mv.Addr, mv.Node, mv.Gen, mv.URI
	}
	if resp.ErrCode == errs.CodeOverloaded {
		if ra := errs.RetryAfter(err); ra > 0 {
			resp.RetryAfterMs = int64(ra / time.Millisecond)
		}
	}
	return resp
}

// dispatchEntry resolves the target object and invokes the requested
// method, going through the bound entry's caches when the call arrived (or
// was declared) with a handle. A request deadline becomes a context
// deadline: expired requests are refused before touching the object, and
// context-aware methods (first parameter context.Context) receive the
// bounded context.
func (s *Server) dispatchEntry(req *callRequest, e *bindEntry) *callResponse {
	ctx := context.Background()
	if req.TokClient != 0 {
		// The call's idempotency token travels down the dispatch chain in
		// the context, so whoever executes it (the SCOOPP actor runtime)
		// can consult its dedup memory before executing and record the
		// reply after — the server layer itself stays stateless about it.
		ctx = ContextWithToken(ctx, CallToken{Client: req.TokClient, Seq: req.TokSeq})
	}
	if req.Deadline > 0 {
		dl := time.Unix(0, req.Deadline)
		if !time.Now().Before(dl) {
			s.deadlineDrops.Add(1)
			return errorResponseFor(req, fmt.Errorf(
				"deadline expired before dispatch of %s.%s: %w", req.URI, req.Method, context.DeadlineExceeded))
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}
	var reg *registration
	if e != nil {
		reg = s.resolveBound(e)
	} else {
		s.mu.Lock()
		reg = s.objects[req.URI]
		s.mu.Unlock()
	}
	if reg == nil {
		// URIs are runtime-generated, so an unknown URI means the object
		// was destroyed (or its lease expired and unpublished it).
		return errorResponseFor(req, fmt.Errorf("no object published at %q: %w", req.URI, errs.ErrObjectDestroyed))
	}
	obj, err := reg.resolve()
	if err != nil {
		return errorResponseFor(req, err)
	}
	var result any
	if e != nil {
		result, err = e.invoke(ctx, obj, req)
	} else {
		result, err = dispatch.InvokeCtx(ctx, obj, req.Method, req.Args)
	}
	if err != nil {
		return errorResponseFor(req, err)
	}
	return &callResponse{Seq: req.Seq, Result: result}
}

// resolveBound returns the registration for a bound entry, reusing the
// cached pointer while the server's registration table is unchanged and
// re-consulting the objects map after any mutation (generation mismatch),
// so Unregister and republish keep their immediate string-path semantics.
func (s *Server) resolveBound(e *bindEntry) *registration {
	gen := s.regGen.Load()
	if rc := e.reg.Load(); rc != nil && rc.gen == gen {
		return rc.reg
	}
	s.mu.Lock()
	reg := s.objects[e.uri]
	s.mu.Unlock()
	if reg == nil {
		return nil
	}
	// gen was loaded before the map read: a racing mutation can only make
	// the cached generation stale (revalidated on the next call), never
	// make a stale registration look fresh.
	e.reg.Store(&regCache{reg: reg, gen: gen})
	return reg
}

// invoke runs the bound method on obj through the cached invoker thunk,
// re-resolving when the concrete type changes (a SingleCall factory is
// free to return different types over time).
func (e *bindEntry) invoke(ctx context.Context, obj any, req *callRequest) (any, error) {
	t := reflect.TypeOf(obj)
	ic := e.inv.Load()
	if ic == nil || ic.typ != t {
		ic = &invCache{typ: t, inv: dispatch.InvokerFor(t, e.method)}
		e.inv.Store(ic)
	}
	if ic.inv != nil {
		return ic.inv(ctx, obj, req.Args)
	}
	return dispatch.InvokeCtx(ctx, obj, req.Method, req.Args)
}

// InvokeLocal calls an exported method on obj by name with decoded wire
// arguments; see dispatch.Invoke. It is reused by the SCOOPP runtime for
// agglomerated (intra-grain) calls, which the paper routes directly to the
// local IO (Fig. 3, call b).
func InvokeLocal(obj any, method string, args []any) (any, error) {
	return dispatch.Invoke(obj, method, args)
}
