package remoting

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/dispatch"
	"repro/internal/errs"
	"repro/internal/threadpool"
	"repro/internal/transport"
)

// WellKnownMode selects how the server activates a well-known object,
// mirroring System.Runtime.Remoting.WellKnownObjectMode — the facility the
// paper singles out (§2) as the improvement over RMI's manual export.
type WellKnownMode int

const (
	// Singleton serves every call with one lazily created instance.
	Singleton WellKnownMode = iota
	// SingleCall creates a fresh instance per call; no state is retained
	// between invocations.
	SingleCall
)

// String names the mode.
func (m WellKnownMode) String() string {
	if m == Singleton {
		return "Singleton"
	}
	return "SingleCall"
}

// registration is one published URI.
type registration struct {
	mode    WellKnownMode
	factory func() any

	mu        sync.Mutex
	singleton any

	// instance-mode (Marshal) objects carry a lease.
	instance any
	lease    *lease
}

// resolve returns the object a call should execute on.
func (r *registration) resolve() (any, error) {
	if r.instance != nil {
		if r.lease != nil && !r.lease.renew() {
			return nil, fmt.Errorf("object lease expired: %w", errs.ErrObjectDestroyed)
		}
		return r.instance, nil
	}
	switch r.mode {
	case SingleCall:
		return r.factory(), nil
	default:
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.singleton == nil {
			r.singleton = r.factory()
		}
		return r.singleton, nil
	}
}

// ServerOption configures ListenAndServe.
type ServerOption func(*Server)

// WithPool dispatches method execution on the given bounded pool, modelling
// the Mono thread pool the paper holds responsible for starvation in Fig. 9.
// Without it every request runs on its own goroutine (the idealised
// unbounded runtime).
func WithPool(p *threadpool.Pool) ServerOption {
	return func(s *Server) { s.pool = p }
}

// WithLeaseTTL sets the initial/renewal time-to-live for objects published
// with Marshal. Zero keeps the default of 5 minutes (the .NET default).
func WithLeaseTTL(ttl time.Duration) ServerOption {
	return func(s *Server) { s.leaseTTL = ttl }
}

// Server publishes objects on a channel, playing the role of
// ChannelServices + RemotingConfiguration for one endpoint.
type Server struct {
	ch       *Channel
	listener transport.Listener
	pool     *threadpool.Pool
	leaseTTL time.Duration

	mu      sync.Mutex
	objects map[string]*registration
	conns   map[transport.Conn]struct{}
	closed  bool

	wg sync.WaitGroup
}

// ListenAndServe starts serving on addr (transport syntax, for example
// "127.0.0.1:0" or "mem://node1") and returns immediately.
func (ch *Channel) ListenAndServe(addr string, opts ...ServerOption) (*Server, error) {
	l, err := ch.net.Listen(addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ch:       ch,
		listener: l,
		leaseTTL: 5 * time.Minute,
		objects:  make(map[string]*registration),
		conns:    make(map[transport.Conn]struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the transport address clients dial.
func (s *Server) Addr() string { return s.listener.Addr() }

// URLFor returns the full remoting URL for a URI published on this server.
func (s *Server) URLFor(uri string) string {
	return BuildURL(s.ch.Scheme(), s.Addr(), uri)
}

// RegisterWellKnown publishes factory under uri with the given activation
// mode (RemotingConfiguration.RegisterWellKnownServiceType).
func (s *Server) RegisterWellKnown(uri string, mode WellKnownMode, factory func() any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects[uri] = &registration{mode: mode, factory: factory}
}

// Marshal publishes an explicitly instantiated object under uri with a
// lease. The lease renews on every call and the object is unpublished when
// it expires, standing in for .NET's lifetime service.
func (s *Server) Marshal(uri string, obj any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	reg := &registration{instance: obj}
	reg.lease = newLease(s.leaseTTL, func() { s.Unregister(uri) })
	s.objects[uri] = reg
}

// Unregister removes a published URI. Safe to call for absent URIs.
func (s *Server) Unregister(uri string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if reg, ok := s.objects[uri]; ok {
		if reg.lease != nil {
			reg.lease.cancel()
		}
		delete(s.objects, uri)
	}
}

// Published reports whether uri is currently resolvable.
func (s *Server) Published(uri string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[uri]
	return ok
}

// Close stops accepting connections. In-flight calls are allowed to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for _, reg := range s.objects {
		if reg.lease != nil {
			reg.lease.cancel()
		}
	}
	conns := make([]transport.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	s.listener.Close()
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.listener.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			c.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(c)
	}
}

// handleConn serves one client connection with a concurrent dispatch loop:
// the read loop plays the channel's IO thread, reading frames continuously
// and handing each request to a worker (the configured thread pool, or a
// fresh goroutine in the idealised unbounded runtime) instead of blocking
// the connection on one handler. Responses carry the request's sequence
// number and are written as their handlers finish — out of order when a
// multiplexed client pipelines calls — under a per-connection write lock so
// multi-frame encodings (the legacy chunked channel) never interleave.
// When a thread pool is configured its cap still bounds server-side
// execution concurrency exactly as Mono's ThreadPool did; pipelining only
// changes how fast requests reach the pool's queue.
func (s *Server) handleConn(c transport.Conn) {
	defer s.wg.Done()
	var sendMu sync.Mutex
	var calls sync.WaitGroup
	defer func() {
		// Let in-flight handlers write (or fail to write) their replies
		// before the connection is torn down.
		calls.Wait()
		c.Close()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}()
	for {
		raw, err := s.ch.recvMsg(c)
		if err != nil {
			return
		}
		req, err := s.ch.decodeRequest(raw)
		transport.PutFrame(raw) // decode copied everything it kept
		if err != nil {
			// Without a sequence number we cannot form a matching
			// reply; drop the connection.
			return
		}
		handle := func() {
			s.writeResponse(c, &sendMu, req, s.dispatch(req))
		}
		calls.Add(1)
		if s.pool != nil {
			if submitErr := s.pool.Submit(func() { defer calls.Done(); handle() }); submitErr != nil {
				s.writeResponse(c, &sendMu, req, errorResponse(req, fmt.Sprintf("server shutting down: %v", submitErr)))
				calls.Done()
			}
		} else {
			go func() { defer calls.Done(); handle() }()
		}
	}
}

// writeResponse encodes resp (through the pooled encoder on binary
// channels) and writes it under the connection's write lock. Unencodable
// results degrade to an error reply; write failures are left to the read
// loop, which observes the dead connection on its next receive.
func (s *Server) writeResponse(c transport.Conn, sendMu *sync.Mutex, req *callRequest, resp *callResponse) {
	rawResp, enc, err := s.ch.encodeResponse(resp)
	if err != nil {
		rawResp, enc, err = s.ch.encodeResponse(errorResponse(req, fmt.Sprintf("unencodable result: %v", err)))
		if err != nil {
			return
		}
	}
	sendMu.Lock()
	s.ch.sendMsg(c, rawResp) //nolint:errcheck // read loop notices the dead conn
	sendMu.Unlock()
	if enc != nil {
		// The transport copied the bytes into its own write buffer.
		enc.Release()
	}
}

func errorResponse(req *callRequest, msg string) *callResponse {
	return &callResponse{Seq: req.Seq, IsErr: true, ErrMsg: msg}
}

// errorResponseFor maps err onto the reply envelope, preserving its wire
// code so the client can rebuild the sentinel chain.
func errorResponseFor(req *callRequest, err error) *callResponse {
	return &callResponse{Seq: req.Seq, IsErr: true, ErrMsg: err.Error(), ErrCode: errs.Code(err)}
}

// dispatch resolves the target object and invokes the requested method by
// reflection. A request deadline becomes a context deadline: expired
// requests are refused before touching the object, and context-aware
// methods (first parameter context.Context) receive the bounded context.
func (s *Server) dispatch(req *callRequest) *callResponse {
	ctx := context.Background()
	if req.Deadline > 0 {
		dl := time.Unix(0, req.Deadline)
		if !time.Now().Before(dl) {
			return errorResponseFor(req, fmt.Errorf(
				"deadline expired before dispatch of %s.%s: %w", req.URI, req.Method, context.DeadlineExceeded))
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}
	s.mu.Lock()
	reg, ok := s.objects[req.URI]
	s.mu.Unlock()
	if !ok {
		// URIs are runtime-generated, so an unknown URI means the object
		// was destroyed (or its lease expired and unpublished it).
		return errorResponseFor(req, fmt.Errorf("no object published at %q: %w", req.URI, errs.ErrObjectDestroyed))
	}
	obj, err := reg.resolve()
	if err != nil {
		return errorResponseFor(req, err)
	}
	result, err := dispatch.InvokeCtx(ctx, obj, req.Method, req.Args)
	if err != nil {
		return errorResponseFor(req, err)
	}
	resp := &callResponse{Seq: req.Seq, Result: result}
	return resp
}

// InvokeLocal calls an exported method on obj by name with decoded wire
// arguments; see dispatch.Invoke. It is reused by the SCOOPP runtime for
// agglomerated (intra-grain) calls, which the paper routes directly to the
// local IO (Fig. 3, call b).
func InvokeLocal(obj any, method string, args []any) (any, error) {
	return dispatch.Invoke(obj, method, args)
}
