// Package remoting is the Go analogue of .NET Remoting as used by ParC#
// (paper §2–3). It provides:
//
//   - channels in the .NET sense: the modern TCP channel (compact binary
//     formatter, pooled connections — Mono 1.1.7), the legacy TCP channel
//     (unpooled, small flushed chunks — Mono 1.0.5), the HTTP channel
//     (verbose SOAP-style text, per-call connections), and — beyond the
//     paper's 2005 stacks — the multiplexed channel (one long-lived
//     connection per peer pipelining many concurrent calls, responses
//     matched by sequence number and completing out of order);
//   - server-side object publication: RegisterWellKnown with Singleton and
//     SingleCall activation (the object-factory modes §2 highlights as the
//     improvement over Java RMI), plus Marshal for explicitly instantiated
//     objects;
//   - transparent proxies: GetObject returns an ObjRef whose Invoke
//     dispatches by method name over the wire, the analogue of
//     Activator.GetObject + the auto-generated proxy;
//   - asynchronous delegates: BeginInvoke/EndInvoke returning an
//     AsyncResult, the mechanism ParC# uses for asynchronous parallel
//     object calls (paper Fig. 4);
//   - lease-based lifetime management standing in for ".Net managed object
//     lifetime" (paper §3.2: ParC++ destroyed IOs explicitly, ParC# lets
//     the platform manage it).
//
// Endpoint software costs (serialisation, dispatch, connection setup) of
// the 2005 runtimes are injected through CostModel, calibrated in package
// profile from the paper's measured latencies.
package remoting

//go:generate go run repro/cmd/parcgen -in remoting.go -out remoting_parc.go

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cost"
	"repro/internal/errs"
	"repro/internal/wire"
)

// callRequest is the request envelope; one per remote method invocation.
// The //parc:wire directive gives it a generated codec (remoting_parc.go):
// envelope serialisation is the per-call hot path, so it must not pay the
// reflective encoder.
//
//parc:wire
type callRequest struct {
	URI    string
	Method string
	Seq    uint64
	// Deadline, when non-zero, is the caller's context deadline as unix
	// nanoseconds; the server refuses to start (and bounds the execution
	// of context-aware methods) past it.
	Deadline int64
	Args     []any
	// Bind, when non-zero, declares a call handle: the client asks the
	// server to remember handle Bind for this (URI, Method) pair on this
	// connection, so later calls can use the string-free compact envelope
	// (see envelope.go). Servers that do not understand binding skip the
	// field (unknown-field tolerance) and simply never acknowledge it.
	Bind uint32
	// TokClient/TokSeq carry the call's idempotency token (token.go) when
	// the caller requested effectively-once semantics; zero TokClient means
	// no token. Old servers skip both fields (unknown-field tolerance) and
	// simply keep at-least-once behaviour.
	TokClient uint64
	TokSeq    uint64
}

// callResponse is the reply envelope.
//
//parc:wire
type callResponse struct {
	Seq    uint64
	Result any
	ErrMsg string
	// ErrCode carries the wire code of a sentinel error (see
	// internal/errs) so the client can rebuild an errors.Is-able chain.
	ErrCode string
	IsErr   bool
	// FwdAddr/FwdNode/FwdGen/FwdURI carry the new location of a migrated
	// object when ErrCode is errs.CodeMoved, so the caller can re-route
	// and retry without a directory round trip (the client rebuilds the
	// *errs.MovedError from them). FwdURI names the object that moved:
	// it may differ from the call's own URI (an object-manager call
	// reporting a forward for the object it operates on), and receivers
	// must only re-route proxies whose URI matches it.
	FwdAddr string
	FwdNode int
	FwdGen  uint64
	FwdURI  string
	// RetryAfterMs, on ErrCode errs.CodeOverloaded replies, is the server's
	// drain estimate in milliseconds: retry sooner than this and the call
	// will very likely shed again. The client-side retry policy honours it
	// over its computed backoff. Zero means no hint.
	RetryAfterMs int64
}

func init() {
	wire.RegisterName("remoting.callRequest", callRequest{})
	wire.RegisterName("remoting.callResponse", callResponse{})
}

// RemoteError is the error surfaced to callers when the server side fails.
// Unlike Java RMI's checked RemoteException, it is an ordinary error value —
// the ergonomic difference the paper calls out in §2.
type RemoteError struct {
	URI    string
	Method string
	Msg    string
	// Code is the wire code of the server-side sentinel error, when the
	// failure matched one (see internal/errs).
	Code string
	// Moved carries the migrated object's new location when Code is
	// errs.CodeMoved, rebuilt from the reply envelope's forward fields.
	Moved *errs.MovedError
	// RetryAfter carries the server's drain estimate when Code is
	// errs.CodeOverloaded and the reply included a hint (see
	// callResponse.RetryAfterMs). Zero means no hint.
	RetryAfter time.Duration
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remoting: %s.%s: %s", e.URI, e.Method, e.Msg)
}

// Unwrap exposes the sentinel identified by Code — or the full
// *errs.MovedError for moved objects, or an *errs.OverloadedError carrying
// the retry-after hint — so errors.Is matches typed errors
// (errs.ErrNoSuchMethod, context.DeadlineExceeded, ...) and errors.As
// recovers the forward location even after the error crossed the wire.
func (e *RemoteError) Unwrap() error {
	if e.Moved != nil {
		return e.Moved
	}
	if e.RetryAfter > 0 {
		return errs.WithRetryAfter(errs.Sentinel(e.Code), e.RetryAfter)
	}
	return errs.Sentinel(e.Code)
}

// ParseURL splits a remoting URL such as "tcp://127.0.0.1:4000/DivideServer"
// or "mem://node0/factory" into the transport address to dial and the object
// URI. The scheme is advisory; the channel's transport decides how to
// interpret the address.
func ParseURL(url string) (scheme, netaddr, uri string, err error) {
	i := strings.Index(url, "://")
	if i < 0 {
		return "", "", "", fmt.Errorf("remoting: URL %q missing scheme", url)
	}
	scheme = url[:i]
	rest := url[i+3:]
	j := strings.Index(rest, "/")
	if j < 0 || j == len(rest)-1 {
		return "", "", "", fmt.Errorf("remoting: URL %q missing object URI", url)
	}
	host := rest[:j]
	uri = rest[j+1:]
	switch scheme {
	case "mem", "unix", "inproc":
		// Self-describing transports embed the scheme in their addresses,
		// so the Auto network can route by address alone.
		netaddr = scheme + "://" + host
	default:
		netaddr = host
	}
	if host == "" {
		return "", "", "", fmt.Errorf("remoting: URL %q missing host", url)
	}
	return scheme, netaddr, uri, nil
}

// BuildURL is the inverse of ParseURL. Self-describing addresses (mem://,
// unix://, inproc://) keep their own scheme so the URL round-trips
// regardless of the channel kind.
func BuildURL(scheme, netaddr, uri string) string {
	if strings.Contains(netaddr, "://") {
		return netaddr + "/" + uri
	}
	return fmt.Sprintf("%s://%s/%s", scheme, netaddr, uri)
}

// CostModel injects the endpoint software costs of a 2005 managed runtime:
// serialisation and dispatch CPU time that our Go implementation does not
// naturally exhibit at the same magnitude. A zero CostModel charges nothing
// (the configuration used by unit tests). Package profile provides values
// calibrated against the paper's measurements.
type CostModel = cost.Model
