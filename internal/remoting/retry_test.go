package remoting

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/transport"
)

// TestRetryableClassification pins the full classification table: only
// transient transport-level failures (node down, overload sheds) retry;
// everything the retry loop cannot fix — application errors, conversion
// failures, context expiry, moved/destroyed objects, orderly close — gets
// exactly one attempt.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"node down", errs.ErrNodeDown, true},
		{"wrapped node down", fmt.Errorf("remoting: dial x: %w", errs.ErrNodeDown), true},
		{"overloaded", errs.ErrOverloaded, true},
		{"overloaded with hint", errs.WithRetryAfter(fmt.Errorf("shed: %w", errs.ErrOverloaded), 5*time.Millisecond), true},
		{"breaker fast-fail", fmt.Errorf("remoting: x: %w", errBreakerOpen), true},
		{"canceled", context.Canceled, false},
		{"deadline exceeded", context.DeadlineExceeded, false},
		{"wrapped deadline", fmt.Errorf("call: %w", context.DeadlineExceeded), false},
		{"bad conversion", errs.ErrBadConversion, false},
		{"object moved", errs.ErrObjectMoved, false},
		{"object destroyed", errs.ErrObjectDestroyed, false},
		{"channel closed", errChannelClosed, false},
		{"application error", errors.New("divide by zero"), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%s) = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestBackoffGrowthAndCap: with jitter disabled the backoff is exactly
// geometric from BaseDelay until MaxDelay caps it.
func TestBackoffGrowthAndCap(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Multiplier: 2, Jitter: -1}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

// TestBackoffJitterBounds: jitter spreads each delay over
// [d*(1-j), d*(1+j)] and never outside it.
func TestBackoffJitterBounds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: 10 * time.Millisecond, Jitter: 0.5}
	for i := 0; i < 200; i++ {
		d := p.Backoff(1)
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("jittered Backoff(1) = %v, want within [5ms, 15ms]", d)
		}
	}
}

// TestRetryDelayHonorsHint: a server retry-after hint beats the computed
// backoff (the shedding server knows its drain time), with jitter only ever
// stretching it — retrying before the hinted drain would re-shed.
func TestRetryDelayHonorsHint(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, Jitter: 0.5}
	hinted := errs.WithRetryAfter(fmt.Errorf("shed: %w", errs.ErrOverloaded), 100*time.Millisecond)
	for i := 0; i < 50; i++ {
		d := p.retryDelay(hinted, 1)
		if d < 100*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("retryDelay with 100ms hint = %v, want within [100ms, 150ms]", d)
		}
	}
	if d := p.retryDelay(errs.ErrNodeDown, 1); d > 2*time.Millisecond {
		t.Errorf("retryDelay without hint = %v, want the ~1ms computed backoff", d)
	}
}

// TestBudgetAllowsDeadline: a retry that cannot finish inside the deadline
// is not attempted — sleeping into a guaranteed DeadlineExceeded wastes the
// peer's admission slot and the caller's time.
func TestBudgetAllowsDeadline(t *testing.T) {
	if !budgetAllows(context.Background(), time.Hour, time.Hour) {
		t.Error("no deadline should always allow the retry")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if !budgetAllows(ctx, time.Millisecond, time.Millisecond) {
		t.Error("tiny delay+cost inside a 50ms budget should be allowed")
	}
	if budgetAllows(ctx, 40*time.Millisecond, 40*time.Millisecond) {
		t.Error("delay+cost exceeding the remaining budget should be refused")
	}
	if budgetAllows(ctx, 100*time.Millisecond, 0) {
		t.Error("delay alone exceeding the budget should be refused")
	}
}

// TestInvokeRetryStopsOnBudget: end-to-end deadline-budget exhaustion — an
// enabled policy against an unreachable peer must give up before the
// deadline (refusing the unaffordable sleep) and surface the transport
// error, not burn the full attempt cap or the deadline.
func TestInvokeRetryStopsOnBudget(t *testing.T) {
	ch := NewTCPChannel(transport.NewMemNetwork())
	ch.Retry = RetryPolicy{MaxAttempts: 10, BaseDelay: 200 * time.Millisecond, Jitter: -1}
	defer ch.Close()
	ref := NewObjRef(ch, "mem://nowhere", "obj") // no listener: dial fails fast
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ref.InvokeCtx(ctx, "Ping")
	if err == nil {
		t.Fatal("invoke against an unreachable peer succeeded")
	}
	if !errors.Is(err, errs.ErrNodeDown) {
		t.Errorf("error = %v, want ErrNodeDown (the transport failure, not ctx expiry)", err)
	}
	if elapsed := time.Since(start); elapsed > 90*time.Millisecond {
		t.Errorf("gave up after %v, want well before the 100ms deadline (200ms backoff is unaffordable)", elapsed)
	}
}

// TestInvokeRetryAbortsOnClose: Channel.Close must wake a caller sleeping
// between retries — a teardown that strands callers in backoff timers leaks
// goroutines for the rest of the backoff.
func TestInvokeRetryAbortsOnClose(t *testing.T) {
	ch := NewTCPChannel(transport.NewMemNetwork())
	ch.Retry = RetryPolicy{MaxAttempts: 10, BaseDelay: 10 * time.Second, Jitter: -1}
	ref := NewObjRef(ch, "mem://nowhere", "obj")
	done := make(chan error, 1)
	go func() {
		_, err := ref.InvokeCtx(context.Background(), "Ping")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let it fail the dial and enter backoff
	ch.Close()
	select {
	case err := <-done:
		if !errors.Is(err, errChannelClosed) {
			t.Errorf("aborted retry error = %v, want errChannelClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("caller still sleeping in backoff after Channel.Close")
	}
}

// TestWithoutRetry: the per-call escape hatch forces a single attempt even
// under an enabled policy.
func TestWithoutRetry(t *testing.T) {
	ch := NewTCPChannel(transport.NewMemNetwork())
	ch.Retry = RetryPolicy{MaxAttempts: 10, BaseDelay: time.Second, Jitter: -1}
	defer ch.Close()
	ref := NewObjRef(ch, "mem://nowhere", "obj")
	start := time.Now()
	_, err := ref.InvokeCtx(WithoutRetry(context.Background()), "Ping")
	if err == nil {
		t.Fatal("invoke against an unreachable peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("WithoutRetry call took %v, want one fast-failing attempt", elapsed)
	}
}

// TestBreakerTripsAfterThreshold: threshold connection failures inside the
// window open the breaker; further calls fail fast with an ErrNodeDown-class
// error that is distinguishable as a fast-fail.
func TestBreakerTripsAfterThreshold(t *testing.T) {
	bs := newBreakerSet(RetryPolicy{BreakerThreshold: 3, BreakerCooldown: time.Hour})
	for i := 0; i < 3; i++ {
		if _, err := bs.allow("peer"); err != nil {
			t.Fatalf("breaker open after %d failures, threshold is 3", i)
		}
		bs.record("peer", false, true)
	}
	_, err := bs.allow("peer")
	if err == nil {
		t.Fatal("breaker still admitting calls after threshold failures")
	}
	if !IsBreakerOpenError(err) || !errors.Is(err, errs.ErrNodeDown) {
		t.Errorf("fast-fail error = %v, want breaker-open wrapping ErrNodeDown", err)
	}
	if !bs.Open("peer") {
		t.Error("Open() = false on a tripped breaker")
	}
	if bs.Open("other") {
		t.Error("a different peer's breaker tripped too")
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one trial passes;
// concurrent calls keep failing fast while it is pending; a successful trial
// closes the breaker, a failed one re-opens it for another cooldown.
func TestBreakerHalfOpenProbe(t *testing.T) {
	bs := newBreakerSet(RetryPolicy{BreakerThreshold: 1, BreakerCooldown: 20 * time.Millisecond})
	bs.record("peer", false, true) // one failure trips threshold 1
	if _, err := bs.allow("peer"); err == nil {
		t.Fatal("breaker not open after trip")
	}
	time.Sleep(30 * time.Millisecond)
	trial, err := bs.allow("peer")
	if err != nil || !trial {
		t.Fatalf("cooldown elapsed: allow = (trial %v, err %v), want one admitted trial", trial, err)
	}
	if _, err := bs.allow("peer"); err == nil {
		t.Fatal("second call admitted while the half-open trial is pending")
	}

	// Trial fails: re-open for another cooldown.
	bs.record("peer", true, true)
	if _, err := bs.allow("peer"); err == nil {
		t.Fatal("breaker closed after a failed trial")
	}
	time.Sleep(30 * time.Millisecond)
	trial, err = bs.allow("peer")
	if err != nil || !trial {
		t.Fatalf("second cooldown elapsed: allow = (trial %v, err %v), want a new trial", trial, err)
	}
	// Trial succeeds: closed, calls flow again.
	bs.record("peer", true, false)
	if trial, err := bs.allow("peer"); err != nil || trial {
		t.Fatalf("after successful trial: allow = (trial %v, err %v), want plain admission", trial, err)
	}
	if bs.Open("peer") {
		t.Error("Open() = true after the breaker closed")
	}
}

// TestBreakerIgnoresAppErrors: application errors are not transport
// evidence — a peer answering failures is reachable — so they must never
// trip the breaker, and successes outnumbering failures keep it closed.
func TestBreakerIgnoresAppErrors(t *testing.T) {
	bs := newBreakerSet(RetryPolicy{BreakerThreshold: 2})
	for i := 0; i < 10; i++ {
		if _, err := bs.allow("peer"); err != nil {
			t.Fatalf("breaker opened on app errors after %d calls", i)
		}
		bs.record("peer", false, false) // answered: not a connection failure
	}
	// Failures never outnumbering successes keep it closed too.
	bs.record("peer", false, true)
	bs.record("peer", false, true)
	if bs.Open("peer") {
		t.Error("breaker opened with failures not outnumbering successes")
	}
}

// TestWithoutBreakerBypassesOpenBreaker: a call under WithoutBreaker makes
// a genuine transport attempt even when the peer's breaker is open — the
// escape hatch correctness-critical reads (the promotion census) depend
// on: its error must be the real transport failure, never the breaker's
// fast-fail, and the attempt must leave the breaker's state untouched.
func TestWithoutBreakerBypassesOpenBreaker(t *testing.T) {
	ch := NewTCPChannel(transport.NewMemNetwork())
	ch.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond,
		BreakerThreshold: 1, BreakerCooldown: time.Hour}
	defer ch.Close()
	ref := NewObjRef(ch, "mem://nowhere", "obj")

	// Trip the breaker with a real failing attempt.
	if _, err := ref.InvokeCtx(WithoutRetry(context.Background()), "Ping"); err == nil {
		t.Fatal("invoke against an unreachable peer succeeded")
	}
	_, err := ref.InvokeCtx(WithoutRetry(context.Background()), "Ping")
	if !IsBreakerOpenError(err) {
		t.Fatalf("second call error = %v, want the breaker fast-fail", err)
	}

	// Bypassed: a genuine dial, surfacing the real transport error.
	_, err = ref.InvokeCtx(WithoutBreaker(WithoutRetry(context.Background())), "Ping")
	if err == nil {
		t.Fatal("bypassed invoke against an unreachable peer succeeded")
	}
	if IsBreakerOpenError(err) {
		t.Fatalf("bypassed call error = %v, want the dial failure, not the fast-fail", err)
	}
	// And the breaker is still open for ordinary calls, its half-open
	// machinery undisturbed by the bypassed attempt.
	if _, err := ref.InvokeCtx(WithoutRetry(context.Background()), "Ping"); !IsBreakerOpenError(err) {
		t.Errorf("ordinary call after bypass = %v, want the breaker still open", err)
	}
}

// TestBreakerDisabled: a negative threshold disables the set entirely.
func TestBreakerDisabled(t *testing.T) {
	if bs := newBreakerSet(RetryPolicy{BreakerThreshold: -1}); bs != nil {
		t.Error("negative BreakerThreshold should disable the breaker set")
	}
}
