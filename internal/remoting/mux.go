package remoting

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/errs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DefaultMaxInFlight bounds concurrent exchanges per multiplexed peer
// connection when Channel.MaxInFlight is zero. The bound is backpressure,
// not a queue: callers beyond it block until a slot frees.
const DefaultMaxInFlight = 1024

// muxConn is one long-lived multiplexed connection to a peer address. Many
// request/response exchanges are in flight concurrently: a single writer
// goroutine drains sendq onto the wire, and a single reader goroutine
// matches each arriving response to its caller through the seq-keyed
// in-flight table. Responses may complete in any order.
//
// Context cancellation abandons a call — the entry is removed from the
// in-flight table and the late response is dropped by the reader — but the
// connection itself stays up, so one impatient caller cannot kill the
// exchanges of every other caller sharing the pipe.
type muxConn struct {
	ch      *Channel
	netaddr string
	sendq   chan outFrame
	slots   chan struct{} // in-flight backpressure semaphore
	done    chan struct{} // closed by fail
	ready   chan struct{} // closed once the dial settled (conn or dialErr)

	mu       sync.Mutex
	conn     transport.Conn // set by dial; nil when the dial failed
	dialErr  error
	inflight map[uint64]chan muxResult
	failed   bool
	failErr  error

	// Bound call handles (envelope.go): per-connection client state. binds
	// maps a (URI, Method) pair to its handle entry; byHandle indexes the
	// same entries by handle-1 so the reader can route bind acks. Handles
	// die with the connection — a redial starts empty and re-declares,
	// which is what makes reconnects transparent.
	bindMu   sync.RWMutex
	binds    map[bindKey]*clientBind
	byHandle []*clientBind
}

// bindKey identifies one bindable (URI, Method) pair.
type bindKey struct {
	uri    string
	method string
}

// clientBind tracks one declared handle. confirmed flips once the server
// acknowledges the declaration; from then on calls for the pair use the
// compact envelope.
type clientBind struct {
	handle    uint32
	confirmed atomic.Bool
}

// unboundSentinel is returned by bindFor when the handle space is
// exhausted: handle 0 means "never bind this pair".
var unboundSentinel = &clientBind{}

// bindFor returns the bind entry for a pair, declaring a fresh dense
// handle on first use.
func (mc *muxConn) bindFor(uri, method string) *clientBind {
	k := bindKey{uri: uri, method: method}
	mc.bindMu.RLock()
	cb := mc.binds[k]
	mc.bindMu.RUnlock()
	if cb != nil {
		return cb
	}
	mc.bindMu.Lock()
	defer mc.bindMu.Unlock()
	if cb := mc.binds[k]; cb != nil {
		return cb
	}
	if len(mc.byHandle) >= maxBindHandles {
		return unboundSentinel
	}
	if mc.binds == nil {
		mc.binds = make(map[bindKey]*clientBind)
	}
	cb = &clientBind{handle: uint32(len(mc.byHandle) + 1)}
	mc.binds[k] = cb
	mc.byHandle = append(mc.byHandle, cb)
	return cb
}

// confirmBind records a server ack for a declared handle.
func (mc *muxConn) confirmBind(handle uint32) {
	mc.bindMu.RLock()
	defer mc.bindMu.RUnlock()
	if idx := int(handle) - 1; idx >= 0 && idx < len(mc.byHandle) {
		mc.byHandle[idx].confirmed.Store(true)
	}
}

// encodeRequest produces the wire frame for req on this connection:
// the compact envelope once the server confirmed the pair's handle, the
// string envelope (carrying the bind declaration) until then. Ownership
// of the returned pooled encoder follows Channel.encodeRequest.
func (mc *muxConn) encodeRequest(req *callRequest) (raw []byte, enc *wire.Encoder, err error) {
	bf, binary := mc.ch.binaryCodec()
	if !binary || mc.ch.DisableBinding {
		return mc.ch.encodeRequest(req)
	}
	cb := mc.bindFor(req.URI, req.Method)
	if cb.confirmed.Load() {
		return encodeBoundCall(cb.handle, req, bf.DisableGenerated)
	}
	req.Bind = cb.handle
	return mc.ch.encodeRequest(req)
}

type muxResult struct {
	resp *callResponse
	err  error
}

// outFrame is one queued request frame. enc, when non-nil, is the pooled
// encoder whose buffer raw aliases: whoever consumes the frame (normally
// the writer goroutine, after the bytes hit the wire) releases it. Frames
// stranded in sendq when a connection fails are simply collected by the GC —
// a pool miss, not a leak.
type outFrame struct {
	raw []byte
	enc *wire.Encoder
}

// release returns the frame's encoder (if pooled) to the pool.
func (of outFrame) release() {
	if of.enc != nil {
		of.enc.Release()
	}
}

// errChannelClosed terminates in-flight calls when Channel.Close shuts a
// multiplexed peer down. It wraps ErrNodeDown for callers' errors.Is
// chains, but muxRoundTrip recognises it and never retries it — a retry
// would re-create the very connection Close just released.
var errChannelClosed = fmt.Errorf("channel closed: %w", errs.ErrNodeDown)

// getMux returns the live multiplexed connection for netaddr, dialling one
// when absent or when the previous one failed. The channel-wide lock is
// held only for the map access: the dial itself runs outside it (a slow or
// blackholed peer must not stall calls to healthy peers, nor Close), with
// concurrent callers for the same address waiting on the ready channel of
// whichever caller dialled. fresh reports whether this call dialled — a
// failure on a fresh connection is a real peer failure, not staleness, so
// the caller must not retry it.
func (ch *Channel) getMux(netaddr string) (mc *muxConn, fresh bool, err error) {
	for {
		ch.muxMu.Lock()
		existing := ch.muxPeers[netaddr]
		if existing == nil {
			limit := ch.MaxInFlight
			if limit <= 0 {
				limit = DefaultMaxInFlight
			}
			mc = &muxConn{
				ch:       ch,
				netaddr:  netaddr,
				sendq:    make(chan outFrame, 64),
				slots:    make(chan struct{}, limit),
				done:     make(chan struct{}),
				ready:    make(chan struct{}),
				inflight: make(map[uint64]chan muxResult),
			}
			if ch.muxPeers == nil {
				ch.muxPeers = make(map[string]*muxConn)
			}
			ch.muxPeers[netaddr] = mc
			ch.muxMu.Unlock()
			if err := mc.dial(); err != nil {
				ch.removeMux(mc)
				return nil, false, err
			}
			return mc, true, nil
		}
		ch.muxMu.Unlock()
		<-existing.ready
		existing.mu.Lock()
		ok := existing.dialErr == nil && !existing.failed
		existing.mu.Unlock()
		if ok {
			return existing, false, nil
		}
		// Dead entry: forget it and race to install a fresh one.
		ch.removeMux(existing)
	}
}

// dial connects the muxConn and starts its writer/reader. It runs outside
// the channel lock; concurrent callers wait on ready. A shutdown that
// raced the dial (Channel.Close between map insert and connect) wins: the
// fresh connection is discarded.
func (mc *muxConn) dial() error {
	mc.ch.Cost.ChargeConnect()
	c, err := mc.ch.net.Dial(mc.netaddr)
	mc.mu.Lock()
	switch {
	case err != nil:
		mc.dialErr = fmt.Errorf("remoting: dial %s: %v: %w", mc.netaddr, err, errs.ErrNodeDown)
	case mc.failed:
		mc.mu.Unlock()
		c.Close()
		close(mc.ready)
		return mc.failureErr()
	default:
		mc.conn = c
	}
	live := mc.conn != nil
	dialErr := mc.dialErr
	mc.mu.Unlock()
	close(mc.ready)
	if live {
		go mc.writer()
		go mc.reader()
	}
	return dialErr
}

// removeMux forgets mc so the next call dials afresh. The map is guarded
// against replacing a newer connection that already took mc's slot.
func (ch *Channel) removeMux(mc *muxConn) {
	ch.muxMu.Lock()
	if ch.muxPeers[mc.netaddr] == mc {
		delete(ch.muxPeers, mc.netaddr)
	}
	ch.muxMu.Unlock()
}

// muxRoundTrip performs one exchange over the multiplexed connection,
// retrying exactly once on a fresh connection when a reused long-lived
// connection turns out to have gone stale (peer restarted, transport
// dropped) before anything was received for this call. An orderly
// Channel.Close is never retried — redialling would undo the Close. See
// roundTrip for the at-most-once caveat the retry shares with the pooled
// path.
//
// Encoding happens here, per connection, because the envelope variant
// depends on the connection's bind table (envelope.go); the retry
// re-encodes on the fresh connection, whose bind table starts empty, so a
// reconnect transparently falls back to string envelopes and re-declares.
func (ch *Channel) muxRoundTrip(ctx context.Context, netaddr string, req *callRequest) (*callResponse, error) {
	mc, fresh, err := ch.getMux(netaddr)
	if err != nil {
		return nil, err
	}
	raw, enc, err := mc.encodeRequest(req)
	if err != nil {
		return nil, err
	}
	resp, err := mc.call(ctx, req, outFrame{raw: raw, enc: enc})
	if err == nil || fresh || ctx.Err() != nil || !isConnFailure(err) || errors.Is(err, errChannelClosed) {
		return resp, err
	}
	mc2, _, err2 := ch.getMux(netaddr)
	if err2 != nil {
		return nil, err2
	}
	raw2, enc2, err2 := mc2.encodeRequest(req)
	if err2 != nil {
		return nil, err2
	}
	return mc2.call(ctx, req, outFrame{raw: raw2, enc: enc2})
}

// call runs one exchange: acquire an in-flight slot, register the sequence
// number, hand the frame to the writer and wait for the reader to deliver
// the matching response (or for the connection to fail, or ctx to end).
// call owns of: it either hands it to the writer or releases it itself.
func (mc *muxConn) call(ctx context.Context, req *callRequest, of outFrame) (*callResponse, error) {
	select {
	case mc.slots <- struct{}{}:
	case <-mc.done:
		of.release()
		return nil, mc.callErr(req, mc.failureErr())
	case <-ctx.Done():
		of.release()
		return nil, mc.callErr(req, ctx.Err())
	}
	defer func() { <-mc.slots }()

	rc := make(chan muxResult, 1)
	mc.mu.Lock()
	if mc.failed {
		err := mc.failErr
		mc.mu.Unlock()
		of.release()
		return nil, mc.callErr(req, err)
	}
	mc.inflight[req.Seq] = rc
	mc.mu.Unlock()

	select {
	case mc.sendq <- of:
	case <-mc.done:
		of.release()
		mc.abandon(req.Seq)
		return nil, mc.callErr(req, mc.failureErr())
	case <-ctx.Done():
		of.release()
		mc.abandon(req.Seq)
		return nil, mc.callErr(req, ctx.Err())
	}

	select {
	case res := <-rc:
		return res.resp, res.err
	case <-ctx.Done():
		// Abandon, do not kill: the connection stays up for the other
		// callers and the reader drops this call's late response.
		mc.abandon(req.Seq)
		return nil, mc.callErr(req, ctx.Err())
	}
}

// callErr annotates a connection- or context-level failure with the call it
// aborted.
func (mc *muxConn) callErr(req *callRequest, err error) error {
	return fmt.Errorf("remoting: call %s.%s: %w", req.URI, req.Method, err)
}

// abandon removes a sequence number from the in-flight table.
func (mc *muxConn) abandon(seq uint64) {
	mc.mu.Lock()
	if mc.inflight != nil {
		delete(mc.inflight, seq)
	}
	mc.mu.Unlock()
}

func (mc *muxConn) failureErr() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.failErr != nil {
		return mc.failErr
	}
	return errs.ErrNodeDown
}

// maxWriteBatch bounds how many queued frames one coalesced write carries,
// on the mux writer and the server's response writer alike. The bound
// keeps a single write's latency and buffer assembly predictable; greedy
// draining below it means batching never delays a frame that could have
// been written now (flush-on-idle: an empty queue flushes immediately).
const maxWriteBatch = 64

// writer is the per-connection writer goroutine: it serialises frames from
// every caller onto the wire, draining the queue greedily so frames that
// accumulated while the previous write was in flight leave in one
// coalesced wire write instead of one syscall each. Once a batch's bytes
// have left through the transport (which copies or vectors them), its
// pooled encoders are released.
func (mc *muxConn) writer() {
	batch := make([]outFrame, 0, maxWriteBatch)
	raws := make([][]byte, 0, maxWriteBatch)
	for {
		select {
		case of := <-mc.sendq:
			batch, raws = append(batch[:0], of), append(raws[:0], of.raw)
		drain:
			for len(batch) < maxWriteBatch {
				select {
				case of := <-mc.sendq:
					batch, raws = append(batch, of), append(raws, of.raw)
				default:
					break drain
				}
			}
			err := mc.ch.sendMsgBatch(mc.conn, raws)
			for _, of := range batch {
				of.release()
			}
			if err != nil {
				mc.fail(fmt.Errorf("remoting: send to %s: %v: %w", mc.netaddr, err, errs.ErrNodeDown))
				return
			}
		case <-mc.done:
			return
		}
	}
}

// reader receives frames continuously and routes each response to the
// caller registered under its sequence number. A response without an
// in-flight entry belongs to an abandoned call and is dropped. Compact
// replies (which only a binding server sends, and only after this client
// declared a handle) also carry bind acks, applied here before routing.
func (mc *muxConn) reader() {
	for {
		raw, err := mc.ch.recvMsg(mc.conn)
		if err != nil {
			mc.fail(fmt.Errorf("remoting: receive from %s: %v: %w", mc.netaddr, err, errs.ErrNodeDown))
			return
		}
		var resp *callResponse
		if isCompactFrame(raw, markBoundReply) {
			var ack uint32
			resp, ack, err = decodeBoundReply(raw)
			if err == nil && ack != 0 {
				mc.confirmBind(ack)
			}
		} else {
			resp, err = mc.ch.decodeResponse(raw)
		}
		transport.PutFrame(raw) // decode copied everything it kept
		if err != nil {
			// A framing/codec failure desynchronises the stream; the
			// whole connection is unusable.
			mc.fail(err)
			return
		}
		mc.mu.Lock()
		rc := mc.inflight[resp.Seq]
		delete(mc.inflight, resp.Seq)
		mc.mu.Unlock()
		if rc != nil {
			rc <- muxResult{resp: resp}
		}
	}
}

// fail moves the connection to its terminal state: it is removed from the
// channel's peer table (so the next call dials afresh), the transport is
// closed, and every in-flight caller receives err. Idempotent.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.failed {
		mc.mu.Unlock()
		return
	}
	mc.failed = true
	mc.failErr = err
	pending := mc.inflight
	mc.inflight = nil
	conn := mc.conn
	mc.mu.Unlock()
	mc.ch.removeMux(mc)
	if conn != nil {
		// nil while a racing dial is still connecting; dial observes
		// failed and discards its fresh connection itself.
		conn.Close()
	}
	close(mc.done)
	for _, rc := range pending {
		rc <- muxResult{err: err}
	}
}

// shutdown closes the connection as part of an orderly Channel.Close. The
// closed sentinel keeps callers from retrying onto a fresh connection.
func (mc *muxConn) shutdown() {
	mc.fail(fmt.Errorf("remoting: %w", errChannelClosed))
}
