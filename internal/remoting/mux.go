package remoting

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/errs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DefaultMaxInFlight bounds concurrent exchanges per multiplexed lane when
// Channel.MaxInFlight is zero. The bound is backpressure, not a queue:
// callers beyond it block until a slot frees.
const DefaultMaxInFlight = 1024

// maxMuxLanes caps Channel.MuxLanes; past a few lanes per peer the wire is
// the bottleneck, not the locks, and each lane costs a connection plus two
// goroutines.
const maxMuxLanes = 64

// DefaultMuxLanes is the lane count used when Channel.MuxLanes is zero:
// one lane per processor up to four. A single-core process gets exactly
// the old single-connection behaviour; a many-core one spreads unrelated
// callers across connections so they never share a writer, a TCP stream,
// or an in-flight table.
func DefaultMuxLanes() int {
	return min(runtime.GOMAXPROCS(0), 4)
}

// inflightShards stripes each lane's in-flight table. Power of two so the
// shard index is a mask of the sequence number; 16 shards keep the
// collision probability negligible for hundreds of concurrent callers at
// the cost of 16 small maps per lane.
const inflightShards = 16

// inflightShard is one stripe of a lane's seq → waiter table. closed flips
// under mu when the lane fails, so a register racing the failure either
// lands in the map (and is drained with an error) or observes closed —
// never a silently dropped caller.
type inflightShard struct {
	mu     sync.Mutex
	m      map[uint64]*muxWaiter
	closed bool
}

// muxWaiter is one in-flight exchange's completion target. Synchronous
// callers park on rc (capacity 1, never blocks the deliverer); asynchronous
// calls carry cb, which the reader invokes directly on reply arrival — the
// completion-driven path that makes a future cost no goroutine while it
// waits. slot marks waiters whose in-flight slot is released by whoever
// delivers (async calls return to their caller before the exchange ends, so
// nobody else is around to release it); stop detaches the context.AfterFunc
// cancellation hook once the outcome is decided.
type muxWaiter struct {
	rc   chan muxResult
	cb   func(muxResult)
	stop func() bool
	slot bool
}

// deliver hands res to the waiter: detach the cancellation hook, return the
// in-flight slot (waking queued async work) and then complete. The slot is
// released before cb runs so a slow continuation cannot idle the pipe.
func (w *muxWaiter) deliver(mc *muxConn, res muxResult) {
	if w.stop != nil {
		w.stop()
	}
	if w.slot {
		<-mc.slots
		mc.pump()
	}
	if w.rc != nil {
		w.rc <- res
		return
	}
	w.cb(res)
}

// bindShardCount stripes the client bind table by (URI, Method) hash.
// Binding is cold-path (first call per pair), but the confirmed-handle
// lookup on every call shares the stripes' read locks, so they must not
// funnel through one RWMutex.
const bindShardCount = 8

type bindShard struct {
	mu sync.RWMutex
	m  map[bindKey]*clientBind
}

// bindHash is FNV-1a over uri, '.', method — cheap, and uniform enough for
// eight stripes.
func bindHash(uri, method string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(uri); i++ {
		h = (h ^ uint32(uri[i])) * 16777619
	}
	h = (h ^ uint32('.')) * 16777619
	for i := 0; i < len(method); i++ {
		h = (h ^ uint32(method[i])) * 16777619
	}
	return h
}

// muxConn is one long-lived multiplexed lane to a peer address. Many
// request/response exchanges are in flight concurrently: a single writer
// goroutine drains sendq onto the wire, and a single reader goroutine
// matches each arriving response to its caller through the seq-keyed
// in-flight shards. Responses may complete in any order.
//
// A channel holds laneCount() lanes per peer, with callers striped across
// them by sequence number; each lane is its own connection, writer, reader
// and in-flight table, so callers on different lanes contend on nothing.
//
// Context cancellation abandons a call — the entry is removed from its
// in-flight shard and the late response is dropped by the reader — but the
// lane itself stays up, so one impatient caller cannot kill the exchanges
// of every other caller sharing the pipe.
type muxConn struct {
	ch      *Channel
	netaddr string
	lane    int
	slots   chan struct{} // in-flight backpressure semaphore
	done    chan struct{} // closed by fail
	ready   chan struct{} // closed once the dial settled (conn or dialErr)

	// Outbound frame queue. Unbounded by design: every queued frame either
	// belongs to a caller holding an in-flight slot or to a sync caller
	// blocked in call(), so MaxInFlight already bounds it — and an enqueue
	// that could block would let TCP backpressure from a slow peer stall
	// the reader (which enqueues indirectly through pump), the classic
	// distributed buffer deadlock. outSig (capacity 1) wakes the writer.
	outMu  sync.Mutex
	outQ   []outFrame
	outSig chan struct{}

	// Async admission queue: completion-driven calls beyond MaxInFlight
	// wait here (instead of parking a goroutine on slots) until pump moves
	// them into the in-flight table. Unbounded — the futures are the queue.
	asyncMu     sync.Mutex
	asyncQ      []*asyncPending
	asyncClosed bool

	mu      sync.Mutex
	conn    transport.Conn // set by dial; nil when the dial failed
	dialErr error
	failed  bool
	failErr error

	inflight [inflightShards]inflightShard

	// Bound call handles (envelope.go): per-lane client state. bindShards
	// map (URI, Method) pairs to their handle entries; byHandle indexes the
	// same entries by handle-1 (copy-on-write, appends serialised by
	// handleMu) so the reader routes bind acks with an atomic load and a
	// slice index — no lock shared with callers declaring new pairs.
	// Handles die with the lane — a redial starts empty and re-declares,
	// which is what makes reconnects transparent.
	bindShards [bindShardCount]bindShard
	handleMu   sync.Mutex
	byHandle   atomic.Pointer[[]*clientBind]
}

// muxKey identifies one lane to one peer in the channel's peer table.
type muxKey struct {
	netaddr string
	lane    int
}

// bindKey identifies one bindable (URI, Method) pair.
type bindKey struct {
	uri    string
	method string
}

// clientBind tracks one declared handle. confirmed flips once the server
// acknowledges the declaration; from then on calls for the pair use the
// compact envelope.
type clientBind struct {
	handle    uint32
	confirmed atomic.Bool
}

// unboundSentinel is returned by bindFor when the handle space is
// exhausted: handle 0 means "never bind this pair".
var unboundSentinel = &clientBind{}

// bindFor returns the bind entry for a pair, declaring a fresh dense
// handle on first use.
func (mc *muxConn) bindFor(uri, method string) *clientBind {
	sh := &mc.bindShards[bindHash(uri, method)&(bindShardCount-1)]
	k := bindKey{uri: uri, method: method}
	sh.mu.RLock()
	cb := sh.m[k]
	sh.mu.RUnlock()
	if cb != nil {
		return cb
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cb := sh.m[k]; cb != nil {
		return cb
	}
	mc.handleMu.Lock()
	var cur []*clientBind
	if p := mc.byHandle.Load(); p != nil {
		cur = *p
	}
	if len(cur) >= maxBindHandles {
		mc.handleMu.Unlock()
		return unboundSentinel
	}
	cb = &clientBind{handle: uint32(len(cur) + 1)}
	next := make([]*clientBind, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = cb
	mc.byHandle.Store(&next)
	mc.handleMu.Unlock()
	if sh.m == nil {
		sh.m = make(map[bindKey]*clientBind)
	}
	sh.m[k] = cb
	return cb
}

// confirmBind records a server ack for a declared handle. Lock-free: the
// reader loads the copy-on-write handle index and flips the entry's flag.
func (mc *muxConn) confirmBind(handle uint32) {
	p := mc.byHandle.Load()
	if p == nil {
		return
	}
	if idx := int(handle) - 1; idx >= 0 && idx < len(*p) {
		(*p)[idx].confirmed.Store(true)
	}
}

// encodeRequest produces the wire frame for req on this lane: the compact
// envelope once the server confirmed the pair's handle, the string
// envelope (carrying the bind declaration) until then. Ownership of the
// returned pooled encoder follows Channel.encodeRequest.
func (mc *muxConn) encodeRequest(req *callRequest) (raw []byte, enc *wire.Encoder, err error) {
	bf, binary := mc.ch.binaryCodec()
	if !binary || mc.ch.DisableBinding {
		return mc.ch.encodeRequest(req)
	}
	cb := mc.bindFor(req.URI, req.Method)
	if cb.confirmed.Load() {
		return encodeBoundCall(cb.handle, req, bf.DisableGenerated)
	}
	req.Bind = cb.handle
	return mc.ch.encodeRequest(req)
}

type muxResult struct {
	resp *callResponse
	err  error
}

// outFrame is one queued request frame. enc, when non-nil, is the pooled
// encoder whose buffer raw aliases: whoever consumes the frame (normally
// the writer goroutine, after the bytes hit the wire) releases it. Frames
// stranded in sendq when a lane fails are simply collected by the GC — a
// pool miss, not a leak.
type outFrame struct {
	raw []byte
	enc *wire.Encoder
}

// release returns the frame's encoder (if pooled) to the pool.
func (of outFrame) release() {
	if of.enc != nil {
		of.enc.Release()
	}
}

// errChannelClosed terminates in-flight calls when Channel.Close shuts a
// multiplexed peer down. It wraps ErrNodeDown for callers' errors.Is
// chains, but muxRoundTrip recognises it and never retries it — a retry
// would re-create the very connection Close just released.
var errChannelClosed = fmt.Errorf("channel closed: %w", errs.ErrNodeDown)

// getMux returns the live multiplexed lane for (netaddr, lane), dialling
// one when absent or when the previous one failed. The channel-wide lock
// is held only for the map access: the dial itself runs outside it (a slow
// or blackholed peer must not stall calls to healthy peers, nor Close),
// with concurrent callers for the same lane waiting on the ready channel
// of whichever caller dialled. fresh reports whether this call dialled — a
// failure on a fresh connection is a real peer failure, not staleness, so
// the caller must not retry it.
func (ch *Channel) getMux(netaddr string, lane int) (mc *muxConn, fresh bool, err error) {
	key := muxKey{netaddr: netaddr, lane: lane}
	for {
		ch.muxMu.Lock()
		existing := ch.muxPeers[key]
		if existing == nil {
			limit := ch.MaxInFlight
			if limit <= 0 {
				limit = DefaultMaxInFlight
			}
			mc = &muxConn{
				ch:      ch,
				netaddr: netaddr,
				lane:    lane,
				outSig:  make(chan struct{}, 1),
				slots:   make(chan struct{}, limit),
				done:    make(chan struct{}),
				ready:   make(chan struct{}),
			}
			for i := range mc.inflight {
				mc.inflight[i].m = make(map[uint64]*muxWaiter)
			}
			if ch.muxPeers == nil {
				ch.muxPeers = make(map[muxKey]*muxConn)
			}
			ch.muxPeers[key] = mc
			ch.muxMu.Unlock()
			if err := mc.dial(); err != nil {
				ch.removeMux(mc)
				return nil, false, err
			}
			return mc, true, nil
		}
		ch.muxMu.Unlock()
		<-existing.ready
		existing.mu.Lock()
		ok := existing.dialErr == nil && !existing.failed
		existing.mu.Unlock()
		if ok {
			return existing, false, nil
		}
		// Dead entry: forget it and race to install a fresh one.
		ch.removeMux(existing)
	}
}

// dial connects the lane and starts its writer/reader. It runs outside the
// channel lock; concurrent callers wait on ready. A shutdown that raced
// the dial (Channel.Close between map insert and connect) wins: the fresh
// connection is discarded.
func (mc *muxConn) dial() error {
	// Channel.dial applies the per-peer shared dial backoff, so a dead
	// peer's lanes (and any pooled callers) collapse into one capped,
	// jittered probe schedule instead of a redial storm.
	c, err := mc.ch.dial(mc.netaddr)
	mc.mu.Lock()
	switch {
	case err != nil:
		mc.dialErr = err
	case mc.failed:
		mc.mu.Unlock()
		c.Close()
		close(mc.ready)
		return mc.failureErr()
	default:
		mc.conn = c
	}
	live := mc.conn != nil
	dialErr := mc.dialErr
	mc.mu.Unlock()
	close(mc.ready)
	if live {
		go mc.writer()
		go mc.reader()
	}
	return dialErr
}

// removeMux forgets mc so the next call dials afresh. The map is guarded
// against replacing a newer lane that already took mc's slot.
func (ch *Channel) removeMux(mc *muxConn) {
	key := muxKey{netaddr: mc.netaddr, lane: mc.lane}
	ch.muxMu.Lock()
	if ch.muxPeers[key] == mc {
		delete(ch.muxPeers, key)
	}
	ch.muxMu.Unlock()
}

// muxRoundTrip performs one exchange over a multiplexed lane, retrying
// exactly once on a fresh connection when a reused long-lived connection
// turns out to have gone stale (peer restarted, transport dropped) before
// anything was received for this call. An orderly Channel.Close is never
// retried — redialling would undo the Close. See roundTrip for the
// at-most-once caveat the retry shares with the pooled path.
//
// The lane is chosen by sequence number, so concurrent callers spread
// uniformly across lanes while a synchronous caller (who holds at most one
// seq in flight) keeps its calls ordered trivially. Each lane fails and
// redials independently: a retry lands on a fresh connection for the same
// lane, whose bind table starts empty and re-declares.
//
// Encoding happens here, per lane, because the envelope variant depends on
// the lane's bind table (envelope.go); the retry re-encodes on the fresh
// lane, so a reconnect transparently falls back to string envelopes.
func (ch *Channel) muxRoundTrip(ctx context.Context, netaddr string, req *callRequest) (*callResponse, error) {
	lane := 0
	if n := ch.laneCount(); n > 1 {
		lane = int(req.Seq % uint64(n))
	}
	mc, fresh, err := ch.getMux(netaddr, lane)
	if err != nil {
		return nil, err
	}
	raw, enc, err := mc.encodeRequest(req)
	if err != nil {
		return nil, err
	}
	resp, err := mc.call(ctx, req, outFrame{raw: raw, enc: enc})
	if err == nil || fresh || ctx.Err() != nil || !isConnFailure(err) || errors.Is(err, errChannelClosed) {
		return resp, err
	}
	mc2, _, err2 := ch.getMux(netaddr, lane)
	if err2 != nil {
		return nil, err2
	}
	raw2, enc2, err2 := mc2.encodeRequest(req)
	if err2 != nil {
		return nil, err2
	}
	return mc2.call(ctx, req, outFrame{raw: raw2, enc: enc2})
}

// register adds a waiter to the lane's in-flight table, refusing when the
// lane already failed (the per-shard closed flag makes the race with fail
// safe: an entry either lands before the drain and is errored there, or
// the register observes closed).
func (mc *muxConn) register(seq uint64, w *muxWaiter) error {
	sh := &mc.inflight[seq&(inflightShards-1)]
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return mc.failureErr()
	}
	sh.m[seq] = w
	sh.mu.Unlock()
	return nil
}

// take removes and returns the waiter registered under seq, nil when the
// call was abandoned (or the lane failed). Exactly one of the reader, the
// cancellation hook and fail takes any given waiter, so the outcome is
// delivered exactly once.
func (mc *muxConn) take(seq uint64) *muxWaiter {
	sh := &mc.inflight[seq&(inflightShards-1)]
	sh.mu.Lock()
	w := sh.m[seq]
	if w != nil {
		delete(sh.m, seq)
	}
	sh.mu.Unlock()
	return w
}

// enqueueFrame appends of to the outbound queue and wakes the writer.
// Never blocks (see outQ); a frame enqueued after the lane failed is
// collected by the GC together with its encoder — a pool miss, not a leak.
func (mc *muxConn) enqueueFrame(of outFrame) {
	mc.outMu.Lock()
	mc.outQ = append(mc.outQ, of)
	mc.outMu.Unlock()
	select {
	case mc.outSig <- struct{}{}:
	default:
	}
}

// call runs one synchronous exchange: acquire an in-flight slot, register
// the sequence number, hand the frame to the writer and wait for the
// reader to deliver the matching response (or for the lane to fail, or ctx
// to end). call owns of: it either hands it to the writer or releases it
// itself.
func (mc *muxConn) call(ctx context.Context, req *callRequest, of outFrame) (*callResponse, error) {
	select {
	case mc.slots <- struct{}{}:
	case <-mc.done:
		of.release()
		return nil, mc.callErr(req, mc.failureErr())
	case <-ctx.Done():
		of.release()
		return nil, mc.callErr(req, ctx.Err())
	}
	defer func() {
		<-mc.slots
		// A freed slot may admit queued async work.
		mc.pump()
	}()

	rc := make(chan muxResult, 1)
	if err := mc.register(req.Seq, &muxWaiter{rc: rc}); err != nil {
		of.release()
		return nil, mc.callErr(req, err)
	}
	mc.enqueueFrame(of)

	select {
	case res := <-rc:
		return res.resp, res.err
	case <-ctx.Done():
		// Abandon, do not kill: the lane stays up for the other callers
		// and the reader drops this call's late response.
		mc.take(req.Seq)
		return nil, mc.callErr(req, ctx.Err())
	}
}

// callErr annotates a connection- or context-level failure with the call it
// aborted.
func (mc *muxConn) callErr(req *callRequest, err error) error {
	return fmt.Errorf("remoting: call %s.%s: %w", req.URI, req.Method, err)
}

func (mc *muxConn) failureErr() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.failErr != nil {
		return mc.failErr
	}
	return errs.ErrNodeDown
}

// maxWriteBatch bounds how many queued frames one coalesced write carries,
// on the mux writer and the server's response writer alike. The bound
// keeps a single write's latency and buffer assembly predictable; greedy
// draining below it means batching never delays a frame that could have
// been written now (flush-on-idle: an empty queue flushes immediately).
const maxWriteBatch = 64

// writer is the per-lane writer goroutine: it serialises frames from every
// caller onto the wire, swapping the whole accumulated queue out under one
// lock so frames that piled up while the previous write was in flight
// leave in coalesced wire writes (chunks of maxWriteBatch) instead of one
// syscall each. Once a batch's bytes have left through the transport
// (which copies or vectors them), its pooled encoders are released. The
// spare slice ping-pongs with the queue's backing array, so the
// steady-state swap allocates nothing.
func (mc *muxConn) writer() {
	spare := make([]outFrame, 0, maxWriteBatch)
	raws := make([][]byte, 0, maxWriteBatch)
	for {
		select {
		case <-mc.outSig:
		case <-mc.done:
			return
		}
		for {
			mc.outMu.Lock()
			if len(mc.outQ) == 0 {
				mc.outMu.Unlock()
				break
			}
			batch := mc.outQ
			mc.outQ = spare[:0]
			mc.outMu.Unlock()
			for off := 0; off < len(batch); off += maxWriteBatch {
				end := min(off+maxWriteBatch, len(batch))
				raws = raws[:0]
				for _, of := range batch[off:end] {
					raws = append(raws, of.raw)
				}
				err := mc.ch.sendMsgBatch(mc.conn, raws)
				for _, of := range batch[off:end] {
					of.release()
				}
				if err != nil {
					mc.fail(fmt.Errorf("remoting: send to %s: %v: %w", mc.netaddr, err, errs.ErrNodeDown))
					return
				}
			}
			clear(batch) // drop frame refs before recycling the array
			spare = batch[:0]
		}
	}
}

// reader receives frames continuously and routes each response to the
// caller registered under its sequence number. A response without an
// in-flight entry belongs to an abandoned call and is dropped. Compact
// replies (which only a binding server sends, and only after this client
// declared a handle) also carry bind acks, applied here before routing.
//
// Frames the pool would not retain anyway (large payloads past the retain
// cap) decode in borrow mode: the result's []byte values alias the frame,
// the memcpy is skipped, and the GC frees frame and result together.
// Poolable frames decode with copies and recycle immediately, as always.
func (mc *muxConn) reader() {
	for {
		raw, err := mc.ch.recvMsg(mc.conn)
		if err != nil {
			mc.fail(fmt.Errorf("remoting: receive from %s: %v: %w", mc.netaddr, err, errs.ErrNodeDown))
			return
		}
		borrow := !transport.PoolableFrame(raw)
		var resp *callResponse
		var borrowed bool
		if isCompactFrame(raw, markBoundReply) {
			var ack uint32
			resp, ack, borrowed, err = decodeBoundReplyShared(raw, borrow)
			if err == nil && ack != 0 {
				mc.confirmBind(ack)
			}
		} else {
			resp, borrowed, err = mc.ch.decodeResponseShared(raw, borrow)
		}
		if !borrowed {
			transport.PutFrame(raw) // decode copied everything it kept
		}
		if err != nil {
			// A framing/codec failure desynchronises the stream; the
			// whole lane is unusable.
			mc.fail(err)
			return
		}
		if w := mc.take(resp.Seq); w != nil {
			// Async waiters complete inline here: continuations run on the
			// reader goroutine (bounded, overflowing to the pool at the
			// future layer), which is what makes a resolved future cost no
			// parked goroutine. They must not block; see the README's
			// inline-continuation guidance.
			w.deliver(mc, muxResult{resp: resp})
		}
	}
}

// fail moves the lane to its terminal state: it is removed from the
// channel's peer table (so the next call dials afresh), the transport is
// closed, and every in-flight caller receives err. Idempotent.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.failed {
		mc.mu.Unlock()
		return
	}
	mc.failed = true
	mc.failErr = err
	conn := mc.conn
	mc.mu.Unlock()
	mc.ch.removeMux(mc)
	if conn != nil {
		// nil while a racing dial is still connecting; dial observes
		// failed and discards its fresh connection itself.
		conn.Close()
	}
	close(mc.done)
	for i := range mc.inflight {
		sh := &mc.inflight[i]
		sh.mu.Lock()
		sh.closed = true
		pending := sh.m
		sh.m = nil
		sh.mu.Unlock()
		for _, w := range pending {
			if w.stop != nil {
				w.stop()
			}
			// No slot bookkeeping post-mortem: done is closed, so nothing
			// waits on slots anymore. Callbacks run iteratively here; a
			// continuation that resubmits observes asyncClosed and fails
			// synchronously, so the drain cannot recurse.
			if w.rc != nil {
				w.rc <- muxResult{err: err}
			} else {
				w.cb(muxResult{err: err})
			}
		}
	}
	mc.asyncMu.Lock()
	mc.asyncClosed = true
	q := mc.asyncQ
	mc.asyncQ = nil
	mc.asyncMu.Unlock()
	for _, ap := range q {
		ap.of.release()
		ap.cb(nil, mc.callErr(ap.req, err))
	}
}

// shutdown closes the lane as part of an orderly Channel.Close. The closed
// sentinel keeps callers from retrying onto a fresh connection.
func (mc *muxConn) shutdown() {
	mc.fail(fmt.Errorf("remoting: %w", errChannelClosed))
}

// asyncPending is one completion-driven call waiting for an in-flight
// slot: the frame is already encoded (submission is encode + enqueue), and
// cb receives the outcome exactly once unless submitAsync itself errored.
type asyncPending struct {
	req *callRequest
	of  outFrame
	ctx context.Context
	cb  func(*callResponse, error)
}

// submitAsync queues one completion-driven exchange. It never blocks: the
// call either enters the in-flight table immediately (a slot was free) or
// waits in asyncQ until pump admits it. An error return means the call was
// not submitted and cb will never run — the invariant callers rely on to
// fall back to the synchronous path. cb runs on the lane's reader
// goroutine (or a cancellation/failure path), never on the submitter's
// stack.
func (mc *muxConn) submitAsync(ctx context.Context, req *callRequest, of outFrame, cb func(*callResponse, error)) error {
	ap := &asyncPending{req: req, of: of, ctx: ctx, cb: cb}
	mc.asyncMu.Lock()
	if mc.asyncClosed {
		mc.asyncMu.Unlock()
		of.release()
		return mc.callErr(req, mc.failureErr())
	}
	mc.asyncQ = append(mc.asyncQ, ap)
	mc.asyncMu.Unlock()
	mc.pump()
	return nil
}

// pump moves queued async calls into the in-flight table for as long as
// slots are free, without ever blocking — it runs on submitters, on the
// reader (after every released slot) and on sync callers' slot release
// alike. Failure deliveries hop to a goroutine so a dead lane draining a
// deep queue cannot recurse through completion callbacks that resubmit.
func (mc *muxConn) pump() {
	for {
		select {
		case mc.slots <- struct{}{}:
		default:
			return
		}
		mc.asyncMu.Lock()
		if len(mc.asyncQ) == 0 || mc.asyncClosed {
			mc.asyncMu.Unlock()
			<-mc.slots
			return
		}
		ap := mc.asyncQ[0]
		mc.asyncQ[0] = nil
		mc.asyncQ = mc.asyncQ[1:]
		mc.asyncMu.Unlock()
		mc.startAsync(ap)
	}
}

// startAsync registers one admitted async call (its slot is already held)
// and hands its frame to the writer. Error outcomes are delivered on a
// fresh goroutine: pump may be running on the submitter's or the reader's
// stack, and a callback chain that posts follow-up calls must not recurse
// into pump.
func (mc *muxConn) startAsync(ap *asyncPending) {
	fail := func(err error) {
		<-mc.slots
		ap.of.release()
		go ap.cb(nil, mc.callErr(ap.req, err))
	}
	if err := ap.ctx.Err(); err != nil {
		fail(err)
		return
	}
	w := &muxWaiter{slot: true, cb: func(res muxResult) {
		if res.err != nil {
			res.err = mc.callErr(ap.req, res.err)
		}
		ap.cb(res.resp, res.err)
	}}
	if ap.ctx.Done() != nil {
		seq := ap.req.Seq
		w.stop = context.AfterFunc(ap.ctx, func() {
			// Abandon, exactly like a sync caller whose ctx ended: the lane
			// stays up, the late reply is dropped by the reader.
			if aw := mc.take(seq); aw != nil {
				<-mc.slots
				mc.pump()
				aw.cb(muxResult{err: ap.ctx.Err()})
			}
		})
	}
	if err := mc.register(ap.req.Seq, w); err != nil {
		if w.stop != nil {
			w.stop()
		}
		fail(err)
		return
	}
	mc.enqueueFrame(ap.of)
}

// laneForURI stripes completion-driven calls by destination object rather
// than by sequence number: every async call to one object rides one lane,
// so a scatter round's frames to that object coalesce into the lane
// writer's batched wire writes, and per-object send order falls out of the
// single ordered outbound queue.
func (ch *Channel) laneForURI(uri string) int {
	n := ch.laneCount()
	if n <= 1 {
		return 0
	}
	h := uint32(2166136261)
	for i := 0; i < len(uri); i++ {
		h = (h ^ uint32(uri[i])) * 16777619
	}
	return int(h % uint32(n))
}

// roundTripAsync submits one exchange on the multiplexed channel and
// returns without waiting: cb receives the outcome — on the lane's reader
// goroutine for replies — exactly once, unless roundTripAsync itself
// returns an error, in which case the call was never submitted and cb will
// not run. Only the multiplexed kind completes asynchronously; other kinds
// report errAsyncUnsupported and the caller keeps its goroutine-per-call
// path. There is no stale-connection retry here: an enqueued call that
// dies with its lane reports the failure to cb, and the caller's fallback
// (which re-resolves and retries through the synchronous machinery) picks
// it up.
//
// Breaker accounting mirrors roundTrip exactly, moved into the callback:
// evidence is recorded when the outcome is known, once per submission.
func (ch *Channel) roundTripAsync(ctx context.Context, netaddr string, req *callRequest, cb func(*callResponse, error)) error {
	if ch.kind != Multiplexed {
		return errAsyncUnsupported
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("remoting: call %s.%s: %w", req.URI, req.Method, err)
	}
	bs := ch.breakers()
	if bs == nil || breakerBypassed(ctx) {
		return ch.muxSubmit(ctx, netaddr, req, cb)
	}
	trial, berr := bs.allow(netaddr)
	if berr != nil {
		return fmt.Errorf("remoting: call %s.%s: %w", req.URI, req.Method, berr)
	}
	record := func(err error) {
		connFail := err != nil && ctx.Err() == nil &&
			isConnFailure(err) && !errors.Is(err, errChannelClosed)
		if connFail || err == nil || !isConnFailure(err) {
			bs.record(netaddr, trial, connFail)
		} else if trial {
			bs.record(netaddr, true, true)
		}
	}
	err := ch.muxSubmit(ctx, netaddr, req, func(resp *callResponse, err error) {
		record(err)
		cb(resp, err)
	})
	if err != nil {
		// Submission failed synchronously (dial, encode, closed lane): the
		// wrapped cb never runs, so settle the breaker evidence here.
		record(err)
	}
	return err
}

// errAsyncUnsupported reports a channel kind without a completion path;
// callers fall back to a waiter goroutine.
var errAsyncUnsupported = errors.New("remoting: channel kind does not support asynchronous completion")

// muxSubmit is the mux half of roundTripAsync: resolve the destination
// lane, encode against its bind table and hand the frame to the lane's
// admission queue.
func (ch *Channel) muxSubmit(ctx context.Context, netaddr string, req *callRequest, cb func(*callResponse, error)) error {
	mc, _, err := ch.getMux(netaddr, ch.laneForURI(req.URI))
	if err != nil {
		return err
	}
	raw, enc, err := mc.encodeRequest(req)
	if err != nil {
		return err
	}
	return mc.submitAsync(ctx, req, outFrame{raw: raw, enc: enc}, cb)
}
