package remoting

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/errs"
	"repro/internal/transport"
	"repro/internal/wire"
)

// DefaultMaxInFlight bounds concurrent exchanges per multiplexed peer
// connection when Channel.MaxInFlight is zero. The bound is backpressure,
// not a queue: callers beyond it block until a slot frees.
const DefaultMaxInFlight = 1024

// muxConn is one long-lived multiplexed connection to a peer address. Many
// request/response exchanges are in flight concurrently: a single writer
// goroutine drains sendq onto the wire, and a single reader goroutine
// matches each arriving response to its caller through the seq-keyed
// in-flight table. Responses may complete in any order.
//
// Context cancellation abandons a call — the entry is removed from the
// in-flight table and the late response is dropped by the reader — but the
// connection itself stays up, so one impatient caller cannot kill the
// exchanges of every other caller sharing the pipe.
type muxConn struct {
	ch      *Channel
	netaddr string
	sendq   chan outFrame
	slots   chan struct{} // in-flight backpressure semaphore
	done    chan struct{} // closed by fail
	ready   chan struct{} // closed once the dial settled (conn or dialErr)

	mu       sync.Mutex
	conn     transport.Conn // set by dial; nil when the dial failed
	dialErr  error
	inflight map[uint64]chan muxResult
	failed   bool
	failErr  error
}

type muxResult struct {
	resp *callResponse
	err  error
}

// outFrame is one queued request frame. enc, when non-nil, is the pooled
// encoder whose buffer raw aliases: whoever consumes the frame (normally
// the writer goroutine, after the bytes hit the wire) releases it. Frames
// stranded in sendq when a connection fails are simply collected by the GC —
// a pool miss, not a leak.
type outFrame struct {
	raw []byte
	enc *wire.Encoder
}

// release returns the frame's encoder (if pooled) to the pool.
func (of outFrame) release() {
	if of.enc != nil {
		of.enc.Release()
	}
}

// errChannelClosed terminates in-flight calls when Channel.Close shuts a
// multiplexed peer down. It wraps ErrNodeDown for callers' errors.Is
// chains, but muxRoundTrip recognises it and never retries it — a retry
// would re-create the very connection Close just released.
var errChannelClosed = fmt.Errorf("channel closed: %w", errs.ErrNodeDown)

// getMux returns the live multiplexed connection for netaddr, dialling one
// when absent or when the previous one failed. The channel-wide lock is
// held only for the map access: the dial itself runs outside it (a slow or
// blackholed peer must not stall calls to healthy peers, nor Close), with
// concurrent callers for the same address waiting on the ready channel of
// whichever caller dialled. fresh reports whether this call dialled — a
// failure on a fresh connection is a real peer failure, not staleness, so
// the caller must not retry it.
func (ch *Channel) getMux(netaddr string) (mc *muxConn, fresh bool, err error) {
	for {
		ch.muxMu.Lock()
		existing := ch.muxPeers[netaddr]
		if existing == nil {
			limit := ch.MaxInFlight
			if limit <= 0 {
				limit = DefaultMaxInFlight
			}
			mc = &muxConn{
				ch:       ch,
				netaddr:  netaddr,
				sendq:    make(chan outFrame, 64),
				slots:    make(chan struct{}, limit),
				done:     make(chan struct{}),
				ready:    make(chan struct{}),
				inflight: make(map[uint64]chan muxResult),
			}
			if ch.muxPeers == nil {
				ch.muxPeers = make(map[string]*muxConn)
			}
			ch.muxPeers[netaddr] = mc
			ch.muxMu.Unlock()
			if err := mc.dial(); err != nil {
				ch.removeMux(mc)
				return nil, false, err
			}
			return mc, true, nil
		}
		ch.muxMu.Unlock()
		<-existing.ready
		existing.mu.Lock()
		ok := existing.dialErr == nil && !existing.failed
		existing.mu.Unlock()
		if ok {
			return existing, false, nil
		}
		// Dead entry: forget it and race to install a fresh one.
		ch.removeMux(existing)
	}
}

// dial connects the muxConn and starts its writer/reader. It runs outside
// the channel lock; concurrent callers wait on ready. A shutdown that
// raced the dial (Channel.Close between map insert and connect) wins: the
// fresh connection is discarded.
func (mc *muxConn) dial() error {
	mc.ch.Cost.ChargeConnect()
	c, err := mc.ch.net.Dial(mc.netaddr)
	mc.mu.Lock()
	switch {
	case err != nil:
		mc.dialErr = fmt.Errorf("remoting: dial %s: %v: %w", mc.netaddr, err, errs.ErrNodeDown)
	case mc.failed:
		mc.mu.Unlock()
		c.Close()
		close(mc.ready)
		return mc.failureErr()
	default:
		mc.conn = c
	}
	live := mc.conn != nil
	dialErr := mc.dialErr
	mc.mu.Unlock()
	close(mc.ready)
	if live {
		go mc.writer()
		go mc.reader()
	}
	return dialErr
}

// removeMux forgets mc so the next call dials afresh. The map is guarded
// against replacing a newer connection that already took mc's slot.
func (ch *Channel) removeMux(mc *muxConn) {
	ch.muxMu.Lock()
	if ch.muxPeers[mc.netaddr] == mc {
		delete(ch.muxPeers, mc.netaddr)
	}
	ch.muxMu.Unlock()
}

// muxRoundTrip performs one exchange over the multiplexed connection,
// retrying exactly once on a fresh connection when a reused long-lived
// connection turns out to have gone stale (peer restarted, transport
// dropped) before anything was received for this call. An orderly
// Channel.Close is never retried — redialling would undo the Close. See
// roundTrip for the at-most-once caveat the retry shares with the pooled
// path.
//
// Ownership of enc (the pooled encoder backing raw, nil on textual codecs)
// transfers to call; the retry re-encodes rather than reuse raw, whose
// buffer may already be back in the pool once the first attempt queued it.
func (ch *Channel) muxRoundTrip(ctx context.Context, netaddr string, req *callRequest, raw []byte, enc *wire.Encoder) (*callResponse, error) {
	mc, fresh, err := ch.getMux(netaddr)
	if err != nil {
		if enc != nil {
			enc.Release()
		}
		return nil, err
	}
	resp, err := mc.call(ctx, req, outFrame{raw: raw, enc: enc})
	if err == nil || fresh || ctx.Err() != nil || !isConnFailure(err) || errors.Is(err, errChannelClosed) {
		return resp, err
	}
	mc2, _, err2 := ch.getMux(netaddr)
	if err2 != nil {
		return nil, err2
	}
	raw2, enc2, err2 := ch.encodeRequest(req)
	if err2 != nil {
		return nil, err2
	}
	return mc2.call(ctx, req, outFrame{raw: raw2, enc: enc2})
}

// call runs one exchange: acquire an in-flight slot, register the sequence
// number, hand the frame to the writer and wait for the reader to deliver
// the matching response (or for the connection to fail, or ctx to end).
// call owns of: it either hands it to the writer or releases it itself.
func (mc *muxConn) call(ctx context.Context, req *callRequest, of outFrame) (*callResponse, error) {
	select {
	case mc.slots <- struct{}{}:
	case <-mc.done:
		of.release()
		return nil, mc.callErr(req, mc.failureErr())
	case <-ctx.Done():
		of.release()
		return nil, mc.callErr(req, ctx.Err())
	}
	defer func() { <-mc.slots }()

	rc := make(chan muxResult, 1)
	mc.mu.Lock()
	if mc.failed {
		err := mc.failErr
		mc.mu.Unlock()
		of.release()
		return nil, mc.callErr(req, err)
	}
	mc.inflight[req.Seq] = rc
	mc.mu.Unlock()

	select {
	case mc.sendq <- of:
	case <-mc.done:
		of.release()
		mc.abandon(req.Seq)
		return nil, mc.callErr(req, mc.failureErr())
	case <-ctx.Done():
		of.release()
		mc.abandon(req.Seq)
		return nil, mc.callErr(req, ctx.Err())
	}

	select {
	case res := <-rc:
		return res.resp, res.err
	case <-ctx.Done():
		// Abandon, do not kill: the connection stays up for the other
		// callers and the reader drops this call's late response.
		mc.abandon(req.Seq)
		return nil, mc.callErr(req, ctx.Err())
	}
}

// callErr annotates a connection- or context-level failure with the call it
// aborted.
func (mc *muxConn) callErr(req *callRequest, err error) error {
	return fmt.Errorf("remoting: call %s.%s: %w", req.URI, req.Method, err)
}

// abandon removes a sequence number from the in-flight table.
func (mc *muxConn) abandon(seq uint64) {
	mc.mu.Lock()
	if mc.inflight != nil {
		delete(mc.inflight, seq)
	}
	mc.mu.Unlock()
}

func (mc *muxConn) isFailed() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.failed
}

func (mc *muxConn) failureErr() error {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.failErr != nil {
		return mc.failErr
	}
	return errs.ErrNodeDown
}

// writer is the per-connection writer goroutine: it serialises frames from
// every caller onto the wire (and charges the cost model once per message).
// Once a frame's bytes have left through the transport (which copies them
// into its own write buffer), the frame's pooled encoder is released.
func (mc *muxConn) writer() {
	for {
		select {
		case of := <-mc.sendq:
			err := mc.ch.sendMsg(mc.conn, of.raw)
			of.release()
			if err != nil {
				mc.fail(fmt.Errorf("remoting: send to %s: %v: %w", mc.netaddr, err, errs.ErrNodeDown))
				return
			}
		case <-mc.done:
			return
		}
	}
}

// reader receives frames continuously and routes each response to the
// caller registered under its sequence number. A response without an
// in-flight entry belongs to an abandoned call and is dropped.
func (mc *muxConn) reader() {
	for {
		raw, err := mc.ch.recvMsg(mc.conn)
		if err != nil {
			mc.fail(fmt.Errorf("remoting: receive from %s: %v: %w", mc.netaddr, err, errs.ErrNodeDown))
			return
		}
		resp, err := mc.ch.decodeResponse(raw)
		transport.PutFrame(raw) // decode copied everything it kept
		if err != nil {
			// A framing/codec failure desynchronises the stream; the
			// whole connection is unusable.
			mc.fail(err)
			return
		}
		mc.mu.Lock()
		rc := mc.inflight[resp.Seq]
		delete(mc.inflight, resp.Seq)
		mc.mu.Unlock()
		if rc != nil {
			rc <- muxResult{resp: resp}
		}
	}
}

// fail moves the connection to its terminal state: it is removed from the
// channel's peer table (so the next call dials afresh), the transport is
// closed, and every in-flight caller receives err. Idempotent.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.failed {
		mc.mu.Unlock()
		return
	}
	mc.failed = true
	mc.failErr = err
	pending := mc.inflight
	mc.inflight = nil
	conn := mc.conn
	mc.mu.Unlock()
	mc.ch.removeMux(mc)
	if conn != nil {
		// nil while a racing dial is still connecting; dial observes
		// failed and discards its fresh connection itself.
		conn.Close()
	}
	close(mc.done)
	for _, rc := range pending {
		rc <- muxResult{err: err}
	}
}

// shutdown closes the connection as part of an orderly Channel.Close. The
// closed sentinel keeps callers from retrying onto a fresh connection.
func (mc *muxConn) shutdown() {
	mc.fail(fmt.Errorf("remoting: %w", errChannelClosed))
}
