// Per-peer circuit breakers: fail fast at peers that keep failing.
//
// Each peer address gets one breaker, fed by connection-level outcomes
// (dial failures, send/receive failures — the failures that already map to
// ErrNodeDown). Application errors never count: a server returning app
// failures is reachable and healthy at the transport level.
//
//	closed    — calls flow; a rolling window counts failures vs successes.
//	            Threshold failures inside the window with failures
//	            outnumbering successes open the breaker.
//	open      — calls fail fast with ErrNodeDown (no dial, no timeout) until
//	            the cooldown elapses.
//	half-open — exactly one trial call passes through; success closes the
//	            breaker, failure re-opens it for another cooldown.
//
// The fast-fail error wraps ErrNodeDown, so everything that already routes
// around dead peers — the SCOOPP proxy's re-resolve, health probes grading
// peers down, placement's exclusion of down peers — routes around open
// breakers with no extra wiring: a health probe against an open breaker
// fails instantly (counting toward suspect/down), and the half-open trial
// lets the same probe rediscover a recovered peer, flipping both breaker
// and health grade back.
package remoting

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/errs"
)

// errBreakerOpen marks fast-failed calls so they are distinguishable (and
// so the breaker never counts its own fast-fails as fresh peer failures).
var errBreakerOpen = fmt.Errorf("circuit breaker open: %w", errs.ErrNodeDown)

// breakerState is one peer's breaker.
type breakerState struct {
	mu          sync.Mutex
	windowStart time.Time
	fails       int
	oks         int
	openUntil   time.Time // non-zero while open / half-open
	halfOpen    bool      // one trial call is in flight
}

// breakerSet holds the per-peer breakers of one channel.
type breakerSet struct {
	threshold int
	window    time.Duration
	cooldown  time.Duration

	mu    sync.Mutex
	peers map[string]*breakerState
}

// newBreakerSet builds the set from the policy's breaker fields, nil when
// disabled.
func newBreakerSet(p RetryPolicy) *breakerSet {
	if p.BreakerThreshold < 0 {
		return nil
	}
	bs := &breakerSet{
		threshold: p.BreakerThreshold,
		window:    p.BreakerWindow,
		cooldown:  p.BreakerCooldown,
	}
	if bs.threshold == 0 {
		bs.threshold = 5
	}
	if bs.window <= 0 {
		bs.window = time.Second
	}
	if bs.cooldown <= 0 {
		bs.cooldown = 250 * time.Millisecond
	}
	return bs
}

func (bs *breakerSet) peer(netaddr string) *breakerState {
	bs.mu.Lock()
	defer bs.mu.Unlock()
	b := bs.peers[netaddr]
	if b == nil {
		if bs.peers == nil {
			bs.peers = make(map[string]*breakerState)
		}
		b = &breakerState{}
		bs.peers[netaddr] = b
	}
	return b
}

// allow gates one call at netaddr: nil to proceed (trial=true when this is
// the half-open probe whose outcome decides the breaker), errBreakerOpen to
// fail fast.
func (bs *breakerSet) allow(netaddr string) (trial bool, err error) {
	b := bs.peer(netaddr)
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return false, nil
	}
	now := time.Now()
	if now.Before(b.openUntil) || b.halfOpen {
		return false, fmt.Errorf("remoting: %s: %w", netaddr, errBreakerOpen)
	}
	// Cooldown elapsed: admit exactly one trial.
	b.halfOpen = true
	return true, nil
}

// record feeds one call outcome back. connFailure is true only for
// connection-level failures on calls the breaker admitted (fast-fails and
// app errors both count as "no transport evidence" and are ignored for
// state, though successes always help close the window).
func (bs *breakerSet) record(netaddr string, trial, connFailure bool) {
	b := bs.peer(netaddr)
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if trial {
		b.halfOpen = false
		if connFailure {
			// Trial failed: re-open for another cooldown.
			b.openUntil = now.Add(bs.cooldown)
			return
		}
		// Trial succeeded: close and reset the window.
		b.openUntil = time.Time{}
		b.windowStart = now
		b.fails, b.oks = 0, 0
		return
	}
	if !b.openUntil.IsZero() {
		// Open (or a concurrent trial is pending): late outcomes from calls
		// admitted before the trip do not move the state.
		return
	}
	if b.windowStart.IsZero() || now.Sub(b.windowStart) > bs.window {
		b.windowStart = now
		b.fails, b.oks = 0, 0
	}
	if connFailure {
		b.fails++
		if b.fails >= bs.threshold && b.fails > b.oks {
			b.openUntil = now.Add(bs.cooldown)
		}
	} else {
		b.oks++
	}
}

// Open reports whether netaddr's breaker currently fails calls fast (open
// and still cooling down, or waiting on a half-open trial). Placement-style
// callers use it to route around the peer without paying a call.
func (bs *breakerSet) Open(netaddr string) bool {
	bs.mu.Lock()
	b := bs.peers[netaddr]
	bs.mu.Unlock()
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.openUntil.IsZero() {
		return false
	}
	return time.Now().Before(b.openUntil) || b.halfOpen
}

// IsBreakerOpenError reports whether err is a breaker fast-fail (as opposed
// to a real transport failure that paid a dial or timeout).
func IsBreakerOpenError(err error) bool {
	return errors.Is(err, errBreakerOpen)
}

// BreakerOpen reports whether the channel's breaker for netaddr is open.
// Always false when no retry policy (or a breaker-disabled one) is set.
func (ch *Channel) BreakerOpen(netaddr string) bool {
	bs := ch.breakers()
	return bs != nil && bs.Open(netaddr)
}
