package remoting

import (
	"sync"
	"time"
)

// lease implements the lifetime service for objects published with Marshal.
// The paper notes (§3.2) that ParC++ destroyed implementation objects
// explicitly while "in the new platform object lifetime is managed by the
// .Net implementation"; .NET does this with renew-on-call leases, which is
// what this type provides. When the lease expires without renewal the
// onExpire callback unpublishes the object.
type lease struct {
	ttl      time.Duration
	onExpire func()

	mu       sync.Mutex
	deadline time.Time
	stopped  bool
	timer    *time.Timer
}

func newLease(ttl time.Duration, onExpire func()) *lease {
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	l := &lease{ttl: ttl, onExpire: onExpire}
	l.deadline = time.Now().Add(ttl)
	l.timer = time.AfterFunc(ttl, l.expire)
	return l
}

// renew extends the lease by its TTL and reports whether the lease is still
// live.
func (l *lease) renew() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.stopped {
		return false
	}
	if time.Now().After(l.deadline) {
		return false
	}
	l.deadline = time.Now().Add(l.ttl)
	l.timer.Reset(l.ttl)
	return true
}

// expire fires when the timer lapses; it re-checks the deadline because a
// renewal may have raced the timer.
func (l *lease) expire() {
	l.mu.Lock()
	if l.stopped || time.Now().Before(l.deadline) {
		l.mu.Unlock()
		return
	}
	l.stopped = true
	cb := l.onExpire
	l.mu.Unlock()
	if cb != nil {
		cb()
	}
}

// cancel stops the lease without firing onExpire.
func (l *lease) cancel() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stopped = true
	l.timer.Stop()
}

// remaining reports the time left on the lease; for tests.
func (l *lease) remaining() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return time.Until(l.deadline)
}
