package remoting

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/errs"
	"repro/internal/transport"
)

// sniffingNetwork wraps a Network and records the first byte of every
// message each direction sends, so tests can assert which envelope variant
// actually travelled.
type sniffingNetwork struct {
	transport.Network

	mu       sync.Mutex
	toServer []byte // first byte of each client->server message
	toClient []byte // first byte of each server->client message
}

func newSniffingNetwork() *sniffingNetwork {
	return &sniffingNetwork{Network: transport.NewMemNetwork()}
}

func (n *sniffingNetwork) Dial(addr string) (transport.Conn, error) {
	c, err := n.Network.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &sniffingConn{Conn: c, net: n}, nil
}

type sniffingConn struct {
	transport.Conn
	net *sniffingNetwork
}

func (c *sniffingConn) Send(msg []byte) error {
	if len(msg) > 0 {
		c.net.mu.Lock()
		c.net.toServer = append(c.net.toServer, msg[0])
		c.net.mu.Unlock()
	}
	return c.Conn.Send(msg)
}

func (c *sniffingConn) Recv() ([]byte, error) {
	msg, err := c.Conn.Recv()
	if err == nil && len(msg) > 0 {
		c.net.mu.Lock()
		c.net.toClient = append(c.net.toClient, msg[0])
		c.net.mu.Unlock()
	}
	return msg, err
}

// markers returns how many recorded first bytes in dir match marker.
func (n *sniffingNetwork) markers(dir string, marker byte) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	bytes := n.toServer
	if dir == "toClient" {
		bytes = n.toClient
	}
	count := 0
	for _, b := range bytes {
		if b == marker {
			count++
		}
	}
	return count
}

// bindServer starts a mux server and client over a sniffing network.
// clientNoBind/serverNoBind set DisableBinding on the respective side.
func bindServer(t *testing.T, clientNoBind, serverNoBind bool) (*Channel, *Server, *sniffingNetwork) {
	t.Helper()
	net := newSniffingNetwork()
	srvCh := NewMultiplexedChannel(net)
	srvCh.DisableBinding = serverNoBind
	srv, err := srvCh.ListenAndServe("mem://bind")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	cliCh := NewMultiplexedChannel(net)
	cliCh.DisableBinding = clientNoBind
	// One lane: these tests count envelope markers per connection, and
	// handles are per-lane state — striping would split the counts.
	cliCh.MuxLanes = 1
	t.Cleanup(cliCh.Close)
	return cliCh, srv, net
}

func callN(t *testing.T, ref *ObjRef, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		got, err := ref.Invoke("Divide", 10.0, 4.0)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got != 2.5 {
			t.Fatalf("call %d: Divide = %v, want 2.5", i, got)
		}
	}
}

// TestBindingUpgradesToCompact proves the handshake: the first call of a
// pair travels as a string envelope carrying the bind declaration, the
// server acks it, and later calls use the compact envelope both ways.
func TestBindingUpgradesToCompact(t *testing.T) {
	ch, srv, net := bindServer(t, false, false)
	ref, err := GetObject(ch, srv.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	// The first call declares; it cannot itself be compact.
	callN(t, ref, 1)
	if got := net.markers("toServer", markBoundCall); got != 0 {
		t.Fatalf("compact calls before ack = %d, want 0", got)
	}
	// The declaration's reply is already compact (it carries the ack).
	if got := net.markers("toClient", markBoundReply); got != 1 {
		t.Fatalf("compact replies after first call = %d, want 1", got)
	}
	callN(t, ref, 5)
	if got := net.markers("toServer", markBoundCall); got != 5 {
		t.Errorf("compact calls after ack = %d, want 5", got)
	}
	if got := net.markers("toClient", markBoundReply); got != 6 {
		t.Errorf("compact replies = %d, want 6", got)
	}
}

// TestBoundClientAgainstStringServer is half of the mixed-mode interop
// matrix: a binding client against a server with binding disabled keeps
// sending string envelopes forever (the declaration is never acked) and
// every call still works.
func TestBoundClientAgainstStringServer(t *testing.T) {
	ch, srv, net := bindServer(t, false, true)
	ref, err := GetObject(ch, srv.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	callN(t, ref, 10)
	if got := net.markers("toServer", markBoundCall); got != 0 {
		t.Errorf("compact calls against non-binding server = %d, want 0", got)
	}
	if got := net.markers("toClient", markBoundReply); got != 0 {
		t.Errorf("compact replies from non-binding server = %d, want 0", got)
	}
}

// TestStringClientAgainstBoundServer is the other half: a client with
// binding disabled never declares, so a binding server keeps answering in
// string envelopes.
func TestStringClientAgainstBoundServer(t *testing.T) {
	ch, srv, net := bindServer(t, true, false)
	ref, err := GetObject(ch, srv.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	callN(t, ref, 10)
	if got := net.markers("toServer", markBoundCall); got != 0 {
		t.Errorf("compact calls from non-binding client = %d, want 0", got)
	}
	if got := net.markers("toClient", markBoundReply); got != 0 {
		t.Errorf("compact replies to non-binding client = %d, want 0", got)
	}
}

// TestBindingConcurrentCallers hammers one bound pair from many goroutines
// while the handshake is still in flight, so string and compact envelopes
// interleave on the pipe and responses complete out of order. Every call
// must still match its own response.
func TestBindingConcurrentCallers(t *testing.T) {
	ch, srv, _ := bindServer(t, false, false)
	ref, err := GetObject(ch, srv.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				a := float64(8 * (i + 1))
				got, err := ref.Invoke("Divide", a, 2.0)
				if err != nil {
					t.Error(err)
					return
				}
				if got != a/2 {
					t.Errorf("Divide(%v, 2) = %v", a, got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestBindRebuildAfterRedial proves handles are per-connection state: after
// a peer restart kills the pipe, the retried call falls back to a string
// envelope on the fresh connection, re-declares, and upgrades again.
func TestBindRebuildAfterRedial(t *testing.T) {
	net := newSniffingNetwork()
	ch := NewMultiplexedChannel(net)
	ch.MuxLanes = 1 // sequential calls must reuse one connection's handles
	defer ch.Close()
	srv, err := ch.ListenAndServe("mem://rebind")
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	callN(t, ref, 3) // declare + 2 compact
	before := net.markers("toServer", markBoundCall)
	if before == 0 {
		t.Fatal("binding never upgraded before restart")
	}

	srv.Close() // peer "restarts": the pipe is dead, handles die with it
	srv2, err := ch.ListenAndServe("mem://rebind")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })

	callN(t, ref, 3) // transparent redial: declare again + compact again
	after := net.markers("toServer", markBoundCall)
	if after <= before {
		t.Errorf("compact calls after restart = %d, want > %d (binding must rebuild)", after, before)
	}
}

// TestUnregisterInvalidatesBoundEntry: the bound path caches the
// registration, but Unregister must still take effect immediately, and a
// republished object must be picked up.
func TestUnregisterInvalidatesBoundEntry(t *testing.T) {
	ch, srv, _ := bindServer(t, false, false)
	ref, err := GetObject(ch, srv.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	callN(t, ref, 3) // bound and confirmed
	srv.Unregister("d")
	if _, err := ref.Invoke("Divide", 1.0, 1.0); !errors.Is(err, errs.ErrObjectDestroyed) {
		t.Fatalf("call after Unregister = %v, want ErrObjectDestroyed", err)
	}
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	callN(t, ref, 3)
}

// typeA and typeB share a method name but are distinct concrete types, so
// a SingleCall factory alternating between them exercises the bound
// entry's invoker-cache revalidation.
type typeA struct{}

func (typeA) Who() string { return "A" }

type typeB struct{}

func (typeB) Who() string { return "B" }

// TestBoundSingleCallTypeChange: the invoker cache is keyed by concrete
// type; a SingleCall factory that changes its mind must not dispatch
// through a stale thunk.
func TestBoundSingleCallTypeChange(t *testing.T) {
	ch, srv, _ := bindServer(t, false, false)
	var n int
	var mu sync.Mutex
	srv.RegisterWellKnown("flip", SingleCall, func() any {
		mu.Lock()
		defer mu.Unlock()
		n++
		if n%2 == 0 {
			return typeB{}
		}
		return typeA{}
	})
	ref, err := GetObject(ch, srv.URLFor("flip"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < 8; i++ {
		got, err := ref.Invoke("Who")
		if err != nil {
			t.Fatal(err)
		}
		seen[got.(string)]++
	}
	if seen["A"] != 4 || seen["B"] != 4 {
		t.Errorf("seen = %v, want A:4 B:4", seen)
	}
}

// TestUnboundHandleGetsErrorReply: a compact call for a handle the server
// never saw declared must produce an error reply for that seq, not kill
// the connection.
func TestUnboundHandleGetsErrorReply(t *testing.T) {
	net := transport.NewMemNetwork()
	ch := NewMultiplexedChannel(net)
	defer ch.Close()
	srv, err := ch.ListenAndServe("mem://unbound")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })

	c, err := net.Dial("mem://unbound")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	req := &callRequest{Seq: 7, Args: []any{}}
	raw, enc, err := encodeBoundCall(99, req, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(raw); err != nil {
		t.Fatal(err)
	}
	enc.Release()
	reply, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	// The client never declared, so the reply is a string envelope.
	resp, err := ch.decodeResponse(reply)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Seq != 7 || !resp.IsErr {
		t.Fatalf("resp = %+v, want IsErr for seq 7", resp)
	}
	// The connection survives: a proper string call still works.
	req2 := &callRequest{URI: "d", Method: "Noop", Seq: 8, Args: []any{}}
	raw2, enc2, err := ch.encodeRequest(req2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send(raw2); err != nil {
		t.Fatal(err)
	}
	enc2.Release()
	reply2, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := ch.decodeResponse(reply2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Seq != 8 || resp2.IsErr {
		t.Fatalf("resp2 = %+v, want ok for seq 8", resp2)
	}
}

// TestBindingOverTCP runs the full bound fan-out over real loopback TCP:
// batched vectored writes on both sides must preserve frame boundaries,
// and out-of-order completions must match their seqs. This is the
// miniature of the fanout benchmark, asserted for correctness under -race.
func TestBindingOverTCP(t *testing.T) {
	net := transport.TCPNetwork{}
	ch := NewMultiplexedChannel(net)
	defer ch.Close()
	srv, err := ch.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, err := GetObject(ch, srv.URLFor("d"))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nums := make([]int32, 16+i)
			for k := range nums {
				nums[k] = int32(i * k)
			}
			for j := 0; j < 25; j++ {
				got, err := ref.Invoke("Echo", nums)
				if err != nil {
					t.Error(err)
					return
				}
				echoed, ok := got.([]int32)
				if !ok || len(echoed) != len(nums) {
					t.Errorf("Echo returned %T len %d, want []int32 len %d", got, len(echoed), len(nums))
					return
				}
				for k := range nums {
					if echoed[k] != nums[k] {
						t.Errorf("caller %d: echo[%d] = %d, want %d", i, k, echoed[k], nums[k])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestBindingWithDeadline: the compact envelope carries the deadline, so a
// bound call past its deadline must still be refused server-side.
func TestBindingWithDeadline(t *testing.T) {
	ch, srv, _ := bindServer(t, false, false)
	g := newGateService()
	srv.RegisterWellKnown("g", Singleton, func() any { return g })
	ref, err := GetObject(ch, srv.URLFor("g"))
	if err != nil {
		t.Fatal(err)
	}
	// Bind the pair first so the deadline call below travels compact.
	if _, err := ref.Invoke("Ping"); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Invoke("Ping"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, err := ref.InvokeCtx(ctx, "Ping"); err != nil {
		t.Fatalf("bound call with live deadline = %v", err)
	}
	// An already-expired deadline must be refused before dispatch, through
	// the compact envelope's deadline field.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := ref.InvokeCtx(expired, "Ping"); err == nil {
		t.Fatal("expired deadline through compact envelope succeeded, want error")
	}
}
