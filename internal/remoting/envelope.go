// Compact bound-call envelopes: the string-free steady-state wire format.
//
// The string envelope (callRequest/callResponse, remoting.go) ships the
// full object URI and method name — plus the interned struct and field
// name dictionary of the binfmt codec — on every call. Under fine-grained
// fan-out those fixed bytes and the codec work to produce them dominate
// the payload (the grain-size lesson of the paper, applied to the
// envelope itself). The compact envelope amortizes them away:
//
//   - On the first call of a (URI, Method) pair over a multiplexed
//     connection the client sends the ordinary string envelope with
//     callRequest.Bind set to a dense per-connection handle, declaring
//     "handle H means this pair on this connection".
//   - A server that supports binding records the handle in a per-connection
//     slice-indexed bind table and acknowledges it in its reply (the ack
//     rides the compact reply header). From then on the client sends the
//     compact call frame below, and the server resolves the handle with a
//     slice index instead of URI/method strings, map lookups and interning.
//   - A peer that does not bind (an old server, or one with
//     Channel.DisableBinding set) simply never acknowledges, and the
//     client keeps sending string envelopes forever — full interop, no
//     negotiation round-trip. Handles are per-connection state, so a
//     redial after a stale connection rebuilds them transparently: the
//     first call on the fresh connection is a string envelope again.
//
// Compact frames are hand-framed rather than registered wire structs:
// a marker byte that no binfmt value can start with, raw varint header
// fields, then the ordinary tagged encoding for arguments and results.
//
//	call:  0xBC | uvarint handle | uvarint seq | varint deadline | args ([]any, tagged)
//	       0xBE | uvarint handle | uvarint seq | varint deadline | uvarint tokClient | uvarint tokSeq | args
//	reply: 0xBD | uvarint seq | uvarint bindAck | flag byte | body
//
// where the 0xBE call variant carries an idempotency token (token.go) and
// flag is 0 (body = tagged result value) or has bit 1 set (body =
// tagged error code string + tagged error message string). Error replies
// with bit 2 set additionally append a migration forward — tagged new
// address string, raw varint node id, raw uvarint generation, tagged
// moved-object URI — carrying a moved object's new location
// (errs.CodeMoved); bit 4 appends a retry-after hint (raw varint
// milliseconds) for overload sheds. bindAck, when non-zero,
// confirms that handle for future calls on this connection. Compact
// frames only ever appear on a connection after both ends proved they
// speak them: the client sends its first compact call only after an ack,
// and the server sends compact replies only after seeing a Bind
// declaration (which only new clients emit).
package remoting

import (
	"fmt"

	"repro/internal/wire"
)

const (
	// markBoundCall and markBoundReply are the first byte of compact
	// frames. Binfmt values start with a tag byte (< 0x20) and the
	// textual codecs with ASCII, so 0xBC/0xBD are unambiguous.
	markBoundCall  = 0xBC
	markBoundReply = 0xBD
	// markBoundCallTok is the token-bearing compact call variant: the
	// 0xBC layout with the idempotency token (uvarint client id, uvarint
	// client seq) inserted after the deadline. A separate marker rather
	// than a flag byte keeps the tokenless hot path byte-identical to the
	// historical frame; compact frames only flow after the bind handshake
	// proved both ends are this build, so no older peer can receive one.
	markBoundCallTok = 0xBE

	// flagReplyErr marks a compact reply carrying an error instead of a
	// result.
	flagReplyErr = 0x01
	// flagReplyFwd marks an error reply that appends a migration forward
	// (new addr, node, generation) after the error strings.
	flagReplyFwd = 0x02
	// flagReplyRetryAfter marks an error reply that appends a retry-after
	// hint (raw varint milliseconds) after the error strings and any
	// forward — an overloaded server telling the caller when a retry has a
	// chance (callResponse.RetryAfterMs).
	flagReplyRetryAfter = 0x04

	// maxBindHandles caps the per-connection handle space on both sides: a
	// client stops declaring new handles past it (falling back to string
	// envelopes), and a server ignores declarations beyond it, so a
	// misbehaving peer cannot grow the bind table without bound.
	maxBindHandles = 1 << 16
)

// isCompactFrame reports whether raw is a compact envelope of the given
// marker.
func isCompactFrame(raw []byte, marker byte) bool {
	return len(raw) > 0 && raw[0] == marker
}

// encodeBoundCall produces the compact call frame for a confirmed handle.
// Like Channel.encodeRequest, the bytes live in the returned pooled
// encoder, which whoever consumes the frame must Release.
func encodeBoundCall(handle uint32, req *callRequest, disableGenerated bool) (raw []byte, enc *wire.Encoder, err error) {
	e := wire.NewEncoder()
	if disableGenerated {
		e.SetGenerated(false)
	}
	if req.TokClient != 0 {
		e.RawByte(markBoundCallTok)
	} else {
		e.RawByte(markBoundCall)
	}
	e.RawUvarint(uint64(handle))
	e.RawUvarint(req.Seq)
	e.RawVarint(req.Deadline)
	if req.TokClient != 0 {
		e.RawUvarint(req.TokClient)
		e.RawUvarint(req.TokSeq)
	}
	e.AnySlice(req.Args)
	if err := e.Err(); err != nil {
		e.Release()
		return nil, nil, fmt.Errorf("remoting: encode bound call %s.%s: %w", req.URI, req.Method, err)
	}
	return e.Bytes(), e, nil
}

// decodeBoundCall parses a compact call frame into the handle and a
// callRequest with URI/Method left empty (the server fills them from its
// bind table).
func decodeBoundCall(raw []byte) (handle uint32, req *callRequest, err error) {
	handle, req, _, err = decodeBoundCallShared(raw, false)
	return handle, req, err
}

// decodeBoundCallShared is decodeBoundCall with optional zero-copy
// borrowing: with borrow set, large []byte arguments alias raw, and
// borrowed=true transfers ownership of raw to whoever holds the request
// (the server keeps the frame until the invocation returns).
func decodeBoundCallShared(raw []byte, borrow bool) (handle uint32, req *callRequest, borrowed bool, err error) {
	d := wire.NewDecoder(raw)
	defer d.Release()
	if borrow {
		d.SetBorrow(true)
	}
	b := d.RawByte()
	if b != markBoundCall && b != markBoundCallTok {
		return 0, nil, false, fmt.Errorf("remoting: bound call marker 0x%02x, want 0x%02x or 0x%02x", b, markBoundCall, markBoundCallTok)
	}
	h := d.RawUvarint()
	req = &callRequest{}
	req.Seq = d.RawUvarint()
	req.Deadline = d.RawVarint()
	if b == markBoundCallTok {
		req.TokClient = d.RawUvarint()
		req.TokSeq = d.RawUvarint()
	}
	req.Args = d.AnySlice()
	borrowed = d.Borrowed()
	if err := d.Err(); err != nil {
		return 0, nil, borrowed, fmt.Errorf("remoting: decode bound call: %w", err)
	}
	if rest := d.Rest(); rest != 0 {
		return 0, nil, borrowed, fmt.Errorf("remoting: bound call: %d trailing bytes", rest)
	}
	if h == 0 || h > maxBindHandles {
		return 0, nil, borrowed, fmt.Errorf("remoting: bound call handle %d out of range", h)
	}
	return uint32(h), req, borrowed, nil
}

// encodeBoundReply produces the compact reply frame. bindAck, when
// non-zero, confirms a handle the client declared. The bytes live in the
// returned pooled encoder.
func encodeBoundReply(resp *callResponse, bindAck uint32, disableGenerated bool) (raw []byte, enc *wire.Encoder, err error) {
	e := wire.NewEncoder()
	if disableGenerated {
		e.SetGenerated(false)
	}
	e.RawByte(markBoundReply)
	e.RawUvarint(resp.Seq)
	e.RawUvarint(uint64(bindAck))
	if resp.IsErr {
		flags := byte(flagReplyErr)
		fwd := resp.FwdAddr != "" || resp.FwdNode != 0 || resp.FwdGen != 0
		if fwd {
			flags |= flagReplyFwd
		}
		if resp.RetryAfterMs > 0 {
			flags |= flagReplyRetryAfter
		}
		e.RawByte(flags)
		e.String(resp.ErrCode)
		e.String(resp.ErrMsg)
		if fwd {
			e.String(resp.FwdAddr)
			e.RawVarint(int64(resp.FwdNode))
			e.RawUvarint(resp.FwdGen)
			e.String(resp.FwdURI)
		}
		if resp.RetryAfterMs > 0 {
			e.RawVarint(resp.RetryAfterMs)
		}
	} else {
		e.RawByte(0)
		e.Value(resp.Result)
	}
	if err := e.Err(); err != nil {
		e.Release()
		return nil, nil, fmt.Errorf("remoting: encode bound reply: %w", err)
	}
	return e.Bytes(), e, nil
}

// decodeBoundReply parses a compact reply frame, returning the normalized
// response and the handle it confirms (0 when none).
func decodeBoundReply(raw []byte) (resp *callResponse, bindAck uint32, err error) {
	resp, bindAck, _, err = decodeBoundReplyShared(raw, false)
	return resp, bindAck, err
}

// decodeBoundReplyShared is decodeBoundReply with optional zero-copy
// borrowing: with borrow set, a large []byte result aliases raw, and
// borrowed=true transfers ownership of raw to the response's consumer.
func decodeBoundReplyShared(raw []byte, borrow bool) (resp *callResponse, bindAck uint32, borrowed bool, err error) {
	d := wire.NewDecoder(raw)
	defer d.Release()
	if borrow {
		d.SetBorrow(true)
	}
	if b := d.RawByte(); b != markBoundReply {
		return nil, 0, false, fmt.Errorf("remoting: bound reply marker 0x%02x, want 0x%02x", b, markBoundReply)
	}
	resp = &callResponse{}
	resp.Seq = d.RawUvarint()
	ack := d.RawUvarint()
	flags := d.RawByte()
	if flags&flagReplyErr != 0 {
		resp.IsErr = true
		resp.ErrCode = d.String()
		resp.ErrMsg = d.String()
		if flags&flagReplyFwd != 0 {
			resp.FwdAddr = d.String()
			resp.FwdNode = int(d.RawVarint())
			resp.FwdGen = d.RawUvarint()
			resp.FwdURI = d.String()
		}
		if flags&flagReplyRetryAfter != 0 {
			resp.RetryAfterMs = d.RawVarint()
		}
	} else {
		resp.Result = d.Value()
	}
	borrowed = d.Borrowed()
	if err := d.Err(); err != nil {
		return nil, 0, borrowed, fmt.Errorf("remoting: decode bound reply: %w", err)
	}
	if rest := d.Rest(); rest != 0 {
		return nil, 0, borrowed, fmt.Errorf("remoting: bound reply: %d trailing bytes", rest)
	}
	if ack > maxBindHandles {
		return nil, 0, borrowed, fmt.Errorf("remoting: bound reply ack %d out of range", ack)
	}
	return resp, uint32(ack), borrowed, nil
}
