package remoting

import (
	"strings"
	"testing"

	"repro/internal/wire"
)

func TestBoundCallRoundTrip(t *testing.T) {
	req := &callRequest{
		Seq:      12345,
		Deadline: 1753776000000000000,
		Args:     []any{int32(7), "hello", []float64{1.5, 2.5}},
	}
	raw, enc, err := encodeBoundCall(42, req, false)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Release()
	handle, got, err := decodeBoundCall(raw)
	if err != nil {
		t.Fatal(err)
	}
	if handle != 42 {
		t.Errorf("handle = %d, want 42", handle)
	}
	if got.Seq != req.Seq || got.Deadline != req.Deadline {
		t.Errorf("header = seq %d deadline %d, want seq %d deadline %d",
			got.Seq, got.Deadline, req.Seq, req.Deadline)
	}
	if len(got.Args) != 3 || got.Args[0] != int32(7) || got.Args[1] != "hello" {
		t.Errorf("args = %#v", got.Args)
	}
	if got.URI != "" || got.Method != "" {
		t.Errorf("compact envelope decoded strings: URI=%q Method=%q", got.URI, got.Method)
	}
}

// TestBoundCallIsStringFree is the point of the exercise: the compact
// frame must not contain the URI, the method name, or the envelope's
// struct/field names, and must be much smaller than the string envelope.
func TestBoundCallIsStringFree(t *testing.T) {
	req := &callRequest{
		URI:    "DivideServer/7",
		Method: "Divide",
		Seq:    99991,
		Args:   []any{10.0, 4.0},
	}
	rawString, encS, err := (&Channel{kind: TCP, codec: wire.BinFmt{}}).encodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	compact, encC, err := encodeBoundCall(3, req, false)
	if err != nil {
		t.Fatal(err)
	}
	defer encS.Release()
	defer encC.Release()
	for _, needle := range []string{"DivideServer", "Divide", "callRequest", "Seq", "Args"} {
		if strings.Contains(string(compact), needle) {
			t.Errorf("compact envelope contains %q", needle)
		}
	}
	if len(compact) >= len(rawString) {
		t.Errorf("compact envelope %d bytes, string envelope %d bytes — no saving", len(compact), len(rawString))
	}
	t.Logf("string envelope %d bytes, compact %d bytes", len(rawString), len(compact))
}

func TestBoundReplyRoundTripResult(t *testing.T) {
	resp := &callResponse{Seq: 77, Result: []int32{1, 2, 3}}
	raw, enc, err := encodeBoundReply(resp, 9, false)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Release()
	got, ack, err := decodeBoundReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ack != 9 {
		t.Errorf("ack = %d, want 9", ack)
	}
	if got.Seq != 77 || got.IsErr {
		t.Errorf("reply = %+v", got)
	}
	if s, ok := got.Result.([]int32); !ok || len(s) != 3 || s[2] != 3 {
		t.Errorf("result = %#v", got.Result)
	}
}

func TestBoundReplyRoundTripError(t *testing.T) {
	resp := &callResponse{Seq: 78, IsErr: true, ErrCode: "no_such_method", ErrMsg: "boom"}
	raw, enc, err := encodeBoundReply(resp, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Release()
	got, ack, err := decodeBoundReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ack != 0 {
		t.Errorf("ack = %d, want 0", ack)
	}
	if !got.IsErr || got.ErrCode != "no_such_method" || got.ErrMsg != "boom" {
		t.Errorf("reply = %+v", got)
	}
}

func TestBoundCallRejectsBadFrames(t *testing.T) {
	req := &callRequest{Seq: 1, Args: []any{}}
	raw, enc, err := encodeBoundCall(5, req, false)
	if err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), raw...)
	enc.Release()

	if _, _, err := decodeBoundCall(append(frame, 0xFF)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, _, err := decodeBoundCall(frame[:len(frame)-1]); err == nil {
		t.Error("truncated frame accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = markBoundReply
	if _, _, err := decodeBoundCall(bad); err == nil {
		t.Error("wrong marker accepted")
	}
	// Handle 0 and out-of-range handles are rejected.
	if raw0, enc0, err := encodeBoundCall(0, req, false); err == nil {
		if _, _, err := decodeBoundCall(raw0); err == nil {
			t.Error("handle 0 accepted")
		}
		enc0.Release()
	}
	if rawBig, encBig, err := encodeBoundCall(maxBindHandles+1, req, false); err == nil {
		if _, _, err := decodeBoundCall(rawBig); err == nil {
			t.Error("out-of-range handle accepted")
		}
		encBig.Release()
	}
}

func TestBoundReplyRejectsBadFrames(t *testing.T) {
	resp := &callResponse{Seq: 2, Result: "ok"}
	raw, enc, err := encodeBoundReply(resp, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), raw...)
	enc.Release()

	if _, _, err := decodeBoundReply(append(frame, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := append([]byte(nil), frame...)
	bad[0] = markBoundCall
	if _, _, err := decodeBoundReply(bad); err == nil {
		t.Error("wrong marker accepted")
	}
}
