// RetryPolicy: the unified retry/backoff layer for remote calls.
//
// Before it, retry logic was scattered: the channel redialled stale pooled
// connections once, the SCOOPP proxy re-resolved once on ErrNodeDown, and
// the ErrOverloaded doc comment prescribed jittered backoff that no caller
// implemented. The policy centralises the loop: classify the failure,
// back off with jitter (honouring the server's retry-after hint when the
// reply carried one), respect the context's deadline budget — a retry that
// cannot finish before the deadline is not attempted — and stop at the
// attempt cap. A per-peer circuit breaker (breaker.go) sits underneath, so
// retries against a dead peer fail fast instead of re-timing-out.
package remoting

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"

	"repro/internal/errs"
)

// RetryPolicy configures the channel-level retry loop applied by
// ObjRef.InvokeCtx. The zero policy is disabled (single attempt); use
// DefaultRetryPolicy or fill the fields. Each zero field of an enabled
// policy picks its default.
type RetryPolicy struct {
	// MaxAttempts caps total attempts, first try included (default 4).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 5ms).
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over [d*(1-Jitter), d*(1+Jitter)]
	// so synchronized callers do not retry in lockstep (default 0.5; set
	// negative for none).
	Jitter float64

	// BreakerThreshold is the per-peer circuit breaker's trip point:
	// connection-level failures within its rolling window before the
	// breaker opens (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerWindow is the rolling failure-rate window (default 1s).
	BreakerWindow time.Duration
	// BreakerCooldown is how long an open breaker fails fast before
	// half-opening to probe the peer with one trial call (default 250ms).
	BreakerCooldown time.Duration
}

// DefaultRetryPolicy returns the enabled policy with every default.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4}
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

func (p RetryPolicy) baseDelay() time.Duration {
	if p.BaseDelay > 0 {
		return p.BaseDelay
	}
	return 5 * time.Millisecond
}

func (p RetryPolicy) maxDelay() time.Duration {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return time.Second
}

func (p RetryPolicy) multiplier() float64 {
	if p.Multiplier > 1 {
		return p.Multiplier
	}
	return 2
}

func (p RetryPolicy) jitter() float64 {
	switch {
	case p.Jitter < 0:
		return 0
	case p.Jitter == 0:
		return 0.5
	case p.Jitter > 1:
		return 1
	}
	return p.Jitter
}

// Backoff returns the jittered delay before retry number retry (1 is the
// first retry).
func (p RetryPolicy) Backoff(retry int) time.Duration {
	d := float64(p.baseDelay())
	mult := p.multiplier()
	for i := 1; i < retry; i++ {
		d *= mult
		if d >= float64(p.maxDelay()) {
			break
		}
	}
	if max := float64(p.maxDelay()); d > max {
		d = max
	}
	if j := p.jitter(); j > 0 {
		d *= 1 - j + 2*j*rand.Float64()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Retryable classifies an error for the retry loop. Retryable failures are
// the transient ones: unreachable peers (ErrNodeDown — dial failures,
// connection resets, dead multiplexed lanes) and admission-control sheds
// (ErrOverloaded). Never retried: application errors, conversion failures
// (ErrBadConversion — a retry re-fails identically), context expiry, moved
// and destroyed objects (the proxy layer re-routes those itself), and the
// orderly channel-close sentinel (a retry would redial the connection
// Close just released).
func Retryable(err error) bool {
	if err == nil ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errs.ErrBadConversion) ||
		errors.Is(err, errs.ErrObjectMoved) ||
		errors.Is(err, errs.ErrObjectDestroyed) ||
		errors.Is(err, errChannelClosed) {
		return false
	}
	return errors.Is(err, errs.ErrNodeDown) || errors.Is(err, errs.ErrOverloaded)
}

// retryDelay picks the delay before retry number retry, preferring the
// server's retry-after hint (an overloaded server knows its drain time;
// the computed backoff is a guess) with the policy's jitter applied so
// hinted clients still spread out.
func (p RetryPolicy) retryDelay(err error, retry int) time.Duration {
	if hint := errs.RetryAfter(err); hint > 0 {
		if j := p.jitter(); j > 0 {
			hint = time.Duration(float64(hint) * (1 + j*rand.Float64()))
		}
		return hint
	}
	return p.Backoff(retry)
}

// budgetAllows reports whether sleeping delay and then re-attempting a call
// that last took attemptCost can still finish inside ctx's deadline. A
// retry that cannot finish is pure waste: it holds resources and then
// surfaces the same deadline error later.
func budgetAllows(ctx context.Context, delay, attemptCost time.Duration) bool {
	dl, ok := ctx.Deadline()
	if !ok {
		return true
	}
	if attemptCost < time.Millisecond {
		attemptCost = time.Millisecond
	}
	return time.Until(dl) > delay+attemptCost
}

// sleepRetry blocks for d, waking early when ctx ends or stop fires (the
// channel is closing: a mid-retry teardown must not strand the caller's
// goroutine in a timer). Returns nil when the full delay elapsed.
func sleepRetry(ctx context.Context, stop <-chan struct{}, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-stop:
		return errChannelClosed
	}
}
