package remoting

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/errs"
	"repro/internal/transport"
)

// TestBoundReplyCarriesForward: the compact error reply round-trips the
// migration forward fields alongside the error code and message.
func TestBoundReplyCarriesForward(t *testing.T) {
	resp := &callResponse{
		Seq:     7,
		IsErr:   true,
		ErrCode: errs.CodeMoved,
		ErrMsg:  "object moved",
		FwdAddr: "127.0.0.1:9999",
		FwdNode: 3,
		FwdGen:  5,
	}
	raw, enc, err := encodeBoundReply(resp, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer enc.Release()
	got, ack, err := decodeBoundReply(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ack != 0 {
		t.Errorf("ack = %d", ack)
	}
	if got.FwdAddr != resp.FwdAddr || got.FwdNode != resp.FwdNode || got.FwdGen != resp.FwdGen {
		t.Errorf("forward = (%q, %d, %d), want (%q, %d, %d)",
			got.FwdAddr, got.FwdNode, got.FwdGen, resp.FwdAddr, resp.FwdNode, resp.FwdGen)
	}
	if got.ErrCode != errs.CodeMoved || !got.IsErr {
		t.Errorf("error half lost: %+v", got)
	}

	// An error reply without a forward must not pay (or emit) the forward
	// fields.
	plain := &callResponse{Seq: 8, IsErr: true, ErrCode: errs.CodeDestroyed, ErrMsg: "gone"}
	rawPlain, encPlain, err := encodeBoundReply(plain, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer encPlain.Release()
	gotPlain, _, err := decodeBoundReply(rawPlain)
	if err != nil {
		t.Fatal(err)
	}
	if gotPlain.FwdAddr != "" || gotPlain.FwdNode != 0 || gotPlain.FwdGen != 0 {
		t.Errorf("plain error reply grew forward fields: %+v", gotPlain)
	}
}

// movedService fails every call with a MovedError, standing in for a
// migration tombstone.
type movedService struct{}

func (movedService) Call() (int, error) {
	return 0, &errs.MovedError{URI: "obj/x", Node: 2, Addr: "127.0.0.1:7777", Gen: 9}
}

// TestMovedErrorSurvivesWire: a server-side *errs.MovedError arrives at
// the client with its location intact and an errors.Is-able identity, on
// both the string envelope (pooled TCP) and the compact envelope
// (multiplexed, bound handles).
func TestMovedErrorSurvivesWire(t *testing.T) {
	for _, kind := range []Kind{TCP, Multiplexed} {
		t.Run(kind.String(), func(t *testing.T) {
			net := transport.NewMemNetwork()
			var ch *Channel
			if kind == Multiplexed {
				ch = NewMultiplexedChannel(net)
			} else {
				ch = NewTCPChannel(net)
			}
			srv, err := ch.ListenAndServe(fmt.Sprintf("mem://moved-%s", kind))
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			defer ch.Close()
			srv.RegisterWellKnown("svc", Singleton, func() any { return movedService{} })
			ref := NewObjRef(ch, srv.Addr(), "svc")
			for i := 0; i < 3; i++ { // repeat so mux binds the handle and uses compact frames
				_, err := ref.Invoke("Call")
				if !errors.Is(err, errs.ErrObjectMoved) {
					t.Fatalf("call %d: %v does not unwrap to ErrObjectMoved", i, err)
				}
				var mv *errs.MovedError
				if !errors.As(err, &mv) {
					t.Fatalf("call %d: no MovedError in chain: %v", i, err)
				}
				if mv.Addr != "127.0.0.1:7777" || mv.Node != 2 || mv.Gen != 9 {
					t.Errorf("call %d: forward = %+v", i, mv)
				}
			}
		})
	}
}
