package remoting

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ctxwait"
	"repro/internal/errs"
)

// ObjRef is the client-side transparent proxy for a remote object — the
// value Activator.GetObject returns in the paper's Fig. 2. Method calls go
// through Invoke (synchronous), BeginInvoke/EndInvoke (asynchronous
// delegate) or OneWay (asynchronous, result discarded).
type ObjRef struct {
	ch      *Channel
	netaddr string
	uri     string
}

// GetObject returns a proxy for the object at url, for example
// "tcp://127.0.0.1:4000/DivideServer". No connection is made until the
// first call, matching Activator.GetObject's lazy behaviour.
func GetObject(ch *Channel, url string) (*ObjRef, error) {
	_, netaddr, uri, err := ParseURL(url)
	if err != nil {
		return nil, err
	}
	return &ObjRef{ch: ch, netaddr: netaddr, uri: uri}, nil
}

// NewObjRef builds a proxy from an already-split transport address and
// object URI (used by the SCOOPP runtime, which receives both from the
// object manager).
func NewObjRef(ch *Channel, netaddr, uri string) *ObjRef {
	return &ObjRef{ch: ch, netaddr: netaddr, uri: uri}
}

// URL reconstructs the object's remoting URL.
func (r *ObjRef) URL() string { return BuildURL(r.ch.Scheme(), r.netaddr, r.uri) }

// URI returns the object path component.
func (r *ObjRef) URI() string { return r.uri }

// NetAddr returns the transport address of the hosting server.
func (r *ObjRef) NetAddr() string { return r.netaddr }

// Channel returns the channel the proxy calls through.
func (r *ObjRef) Channel() *Channel { return r.ch }

// Invoke performs a synchronous remote method invocation. Server-side
// failures come back as *RemoteError.
func (r *ObjRef) Invoke(method string, args ...any) (any, error) {
	return r.InvokeCtx(context.Background(), method, args...)
}

// InvokeCtx performs a synchronous remote method invocation bounded by ctx:
// cancellation aborts the in-flight exchange (closing its connection) and
// the deadline travels in the request envelope so the server refuses work
// past it. Server-side failures come back as *RemoteError.
//
// When the channel's RetryPolicy is enabled, transient failures
// (Retryable: node-down, overload sheds) are retried with jittered
// exponential backoff — honouring a server retry-after hint over the
// computed delay — for as long as the attempt cap and the ctx deadline
// budget allow. A ctx carrying WithoutRetry, and any call whose failure is
// not classified retryable, gets exactly one attempt. An idempotency token
// carried by ctx (WithCallToken) rides every attempt unchanged, so a
// server that executed a lost-reply attempt replays the recorded reply
// instead of executing again.
func (r *ObjRef) InvokeCtx(ctx context.Context, method string, args ...any) (any, error) {
	req := &callRequest{
		URI:    r.uri,
		Method: method,
		Seq:    r.ch.nextSeq(),
		Args:   args,
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Deadline = dl.UnixNano()
	}
	if tok, ok := TokenFromContext(ctx); ok {
		req.TokClient, req.TokSeq = tok.Client, tok.Seq
	}
	p := r.ch.Retry
	if !p.Enabled() || retryDisabled(ctx) {
		return r.invokeOnce(ctx, req)
	}
	for attempt := 0; ; attempt++ {
		start := time.Now()
		result, err := r.invokeOnce(ctx, req)
		if err == nil {
			return result, nil
		}
		if !Retryable(err) || attempt >= p.MaxAttempts-1 {
			return nil, err
		}
		delay := p.retryDelay(err, attempt)
		if !budgetAllows(ctx, delay, time.Since(start)) {
			return nil, err
		}
		if serr := sleepRetry(ctx, r.ch.closeSignal(), delay); serr != nil {
			return nil, fmt.Errorf("remoting: call %s.%s: retry aborted: %w", r.uri, method, serr)
		}
		// Fresh seq per attempt: the failed attempt may still complete
		// server-side, and a reused number could be matched against its
		// late reply. The idempotency token (if any) stays, making the
		// retry deduplicable; the seq is per-exchange plumbing.
		req.Seq = r.ch.nextSeq()
	}
}

// invokeOnce is a single InvokeCtx attempt: one roundTrip plus reply
// normalization into Go errors.
func (r *ObjRef) invokeOnce(ctx context.Context, req *callRequest) (any, error) {
	resp, err := r.ch.roundTrip(ctx, r.netaddr, req)
	if err != nil {
		return nil, err
	}
	return r.normalize(req, resp)
}

// normalize maps a reply envelope onto (result, error), rebuilding the
// sentinel chain (*RemoteError with Moved / RetryAfter) from the wire
// fields. Shared by the synchronous and completion-driven paths.
func (r *ObjRef) normalize(req *callRequest, resp *callResponse) (any, error) {
	if !resp.IsErr {
		return resp.Result, nil
	}
	re := &RemoteError{URI: r.uri, Method: req.Method, Msg: resp.ErrMsg, Code: resp.ErrCode}
	if resp.ErrCode == errs.CodeMoved {
		movedURI := resp.FwdURI
		if movedURI == "" {
			movedURI = r.uri
		}
		re.Moved = &errs.MovedError{URI: movedURI, Node: resp.FwdNode, Addr: resp.FwdAddr, Gen: resp.FwdGen}
	}
	if resp.ErrCode == errs.CodeOverloaded && resp.RetryAfterMs > 0 {
		re.RetryAfter = time.Duration(resp.RetryAfterMs) * time.Millisecond
	}
	return nil, re
}

// InvokeAsyncCb starts one completion-driven invocation attempt: the
// request is encoded and enqueued on the multiplexed channel and the
// method returns immediately; cb receives the normalized outcome exactly
// once, on the completion path (the lane's reader goroutine for replies).
// An error return means the call was not submitted and cb will never run —
// callers fall back to their goroutine-per-call path. Unlike InvokeCtx
// there is no retry loop here: a single attempt, whose failure the caller
// decides how to recover (the SCOOPP proxy re-runs transient failures
// through the full synchronous re-routing machinery).
func (r *ObjRef) InvokeAsyncCb(ctx context.Context, method string, args []any, cb func(any, error)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	req := &callRequest{
		URI:    r.uri,
		Method: method,
		Seq:    r.ch.nextSeq(),
		Args:   args,
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Deadline = dl.UnixNano()
	}
	if tok, ok := TokenFromContext(ctx); ok {
		req.TokClient, req.TokSeq = tok.Client, tok.Seq
	}
	return r.ch.roundTripAsync(ctx, r.netaddr, req, func(resp *callResponse, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		cb(r.normalize(req, resp))
	})
}

// AsyncResult is the handle returned by BeginInvoke, the analogue of
// System.IAsyncResult for delegate BeginInvoke in the paper's Fig. 4.
type AsyncResult struct {
	done   chan struct{}
	result any
	err    error
}

// Done returns a channel closed when the call completes.
func (ar *AsyncResult) Done() <-chan struct{} { return ar.done }

// IsCompleted reports whether the call has finished without blocking.
func (ar *AsyncResult) IsCompleted() bool {
	select {
	case <-ar.done:
		return true
	default:
		return false
	}
}

// EndInvoke blocks until the call completes and returns its result, the
// analogue of delegate EndInvoke.
func (ar *AsyncResult) EndInvoke() (any, error) {
	<-ar.done
	return ar.result, ar.err
}

// BeginInvoke starts an asynchronous remote method invocation and returns
// immediately. On pooling channels each in-flight call uses its own pooled
// connection; on the multiplexed channel concurrent calls pipeline over one
// shared connection. Either way, concurrent BeginInvokes overlap on the
// wire.
func (r *ObjRef) BeginInvoke(method string, args ...any) *AsyncResult {
	ar := &AsyncResult{done: make(chan struct{})}
	go func() {
		defer close(ar.done)
		ar.result, ar.err = r.Invoke(method, args...)
	}()
	return ar
}

// OneWay invokes method asynchronously and discards the result. Transport
// errors are reported to onErr when non-nil. It is the building block the
// SCOOPP proxy uses for asynchronous void methods.
func (r *ObjRef) OneWay(method string, onErr func(error), args ...any) {
	go func() {
		if _, err := r.Invoke(method, args...); err != nil && onErr != nil {
			onErr(err)
		}
	}()
}

// OneWayTimeout is OneWay with a per-exchange deadline: the call is
// abandoned (and its connection closed) when d elapses, so a one-way
// stream aimed at a dead peer cannot pile up goroutines behind full call
// timeouts. Used for asynchronous replica-state shipping, where losing a
// snapshot only widens the replication lag until the next one lands.
func (r *ObjRef) OneWayTimeout(d time.Duration, method string, onErr func(error), args ...any) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		if _, err := r.InvokeCtx(ctx, method, args...); err != nil && onErr != nil {
			onErr(err)
		}
	}()
}

// Delegate is a typed wrapper around one remote method, mirroring a C#
// delegate bound to a proxy method (paper Fig. 4: RemoteAsyncDelegate). It
// exists so call sites read like the paper's generated code.
type Delegate struct {
	ref    *ObjRef
	method string
}

// NewDelegate binds a delegate to a method of a remote object.
func NewDelegate(ref *ObjRef, method string) *Delegate {
	return &Delegate{ref: ref, method: method}
}

// BeginInvoke starts the call asynchronously.
func (d *Delegate) BeginInvoke(args ...any) *AsyncResult {
	return d.ref.BeginInvoke(d.method, args...)
}

// Invoke performs the call synchronously.
func (d *Delegate) Invoke(args ...any) (any, error) {
	return d.ref.Invoke(d.method, args...)
}

// CallSequencer serialises asynchronous calls issued through it while
// letting the caller continue immediately — the ordering guarantee the
// SCOOPP runtime needs for method streams between one proxy object and its
// implementation object. Errors are delivered to the OnError callback.
//
// When an asynchronous invoker is installed (SetInvokeAsync), the lane is
// completion-chained: call N+1 is submitted from call N's completion
// callback, so an idle-or-draining lane parks no flusher goroutine. Calls
// the asynchronous invoker declines (unsupported channel kind, lane just
// failed) execute on a transient goroutine through the synchronous
// invoker, preserving order — one outstanding call at a time either way.
type CallSequencer struct {
	invoke      func(method string, args ...any) (any, error)
	invokeAsync func(method string, args []any, cb func(any, error)) bool
	OnError     func(error)

	mu      sync.Mutex
	queue   []queuedCall
	running bool
	idle    *sync.Cond
	pending int
}

type queuedCall struct {
	method string
	args   []any
}

// NewCallSequencer returns a sequencer whose calls go through ref.
func NewCallSequencer(ref *ObjRef) *CallSequencer {
	return NewCallSequencerFunc(ref.Invoke)
}

// NewCallSequencerFunc returns a sequencer whose calls go through invoke.
// Routing through a function rather than a fixed ObjRef lets the owner
// re-resolve the endpoint between calls — the SCOOPP proxy uses this to
// keep one ordered lane across an object migration.
func NewCallSequencerFunc(invoke func(method string, args ...any) (any, error)) *CallSequencer {
	cs := &CallSequencer{invoke: invoke}
	cs.idle = sync.NewCond(&cs.mu)
	return cs
}

// SetInvokeAsync installs the completion-driven invoker. fn must either
// submit the call and return true — in which case cb is invoked exactly
// once, off the submitter's stack — or decline with false (cb unused), and
// the sequencer falls back to the synchronous invoker for that call.
// Install before the first Post; the hook is read without the lock.
func (cs *CallSequencer) SetInvokeAsync(fn func(method string, args []any, cb func(any, error)) bool) {
	cs.invokeAsync = fn
}

// Post enqueues an asynchronous call. Calls posted from one goroutine
// execute remotely in post order.
func (cs *CallSequencer) Post(method string, args ...any) {
	cs.mu.Lock()
	cs.queue = append(cs.queue, queuedCall{method: method, args: args})
	cs.pending++
	start := !cs.running
	if start {
		cs.running = true
	}
	cs.mu.Unlock()
	if start {
		// inline: Post must return immediately, so a call the async
		// invoker declines is handed to a goroutine instead of executing
		// on this stack.
		cs.advance(true)
	}
}

// advance dispatches queued calls until the queue is empty or a call went
// asynchronous (its completion callback will resume the chain). With
// inline set the caller's stack must not block: a declined call runs on a
// fresh goroutine, which then drains synchronously (inline=false) exactly
// like the historical flusher.
func (cs *CallSequencer) advance(inline bool) {
	for {
		cs.mu.Lock()
		if len(cs.queue) == 0 {
			cs.running = false
			cs.idle.Broadcast()
			cs.mu.Unlock()
			return
		}
		call := cs.queue[0]
		cs.queue[0] = queuedCall{}
		cs.queue = cs.queue[1:]
		cs.mu.Unlock()

		if ia := cs.invokeAsync; ia != nil && ia(call.method, call.args, cs.completeOne) {
			return
		}
		if inline {
			go cs.runSync(call)
			return
		}
		_, err := cs.invoke(call.method, call.args...)
		cs.finishOne(err)
	}
}

// completeOne is the completion callback of an asynchronously submitted
// call: account for it, then resume the chain. It runs on the completion
// path (the mux reader), so the next dispatch must stay non-blocking —
// advance(true) hands any synchronous fallback to a goroutine.
func (cs *CallSequencer) completeOne(_ any, err error) {
	cs.finishOne(err)
	cs.advance(true)
}

// runSync executes one declined call through the synchronous invoker on
// its own goroutine, then keeps draining there (blocking is fine now).
func (cs *CallSequencer) runSync(call queuedCall) {
	_, err := cs.invoke(call.method, call.args...)
	cs.finishOne(err)
	cs.advance(false)
}

// finishOne settles one completed call's bookkeeping.
func (cs *CallSequencer) finishOne(err error) {
	if err != nil && cs.OnError != nil {
		cs.OnError(err)
	}
	cs.mu.Lock()
	cs.pending--
	if cs.pending == 0 {
		cs.idle.Broadcast()
	}
	cs.mu.Unlock()
}

// Idle reports whether the lane has nothing queued or in flight — the
// window in which a caller may bypass the lane without reordering against
// it. A false result is only advisory (calls may drain concurrently), but
// true taken from the posting goroutine is authoritative: Posts from that
// goroutine would have been counted already.
func (cs *CallSequencer) Idle() bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.pending == 0
}

// Flush blocks until every posted call has completed.
func (cs *CallSequencer) Flush() {
	cs.mu.Lock()
	for cs.pending > 0 {
		cs.idle.Wait()
	}
	cs.mu.Unlock()
}

// FlushCtx blocks until every posted call has completed or ctx is done, in
// which case it stops waiting (the queued calls keep draining in the
// background) and returns ctx.Err().
func (cs *CallSequencer) FlushCtx(ctx context.Context) error {
	return ctxwait.Drain(ctx, cs.Flush)
}

// String implements fmt.Stringer.
func (r *ObjRef) String() string {
	return fmt.Sprintf("ObjRef(%s)", r.URL())
}
