package remoting

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ctxwait"
	"repro/internal/errs"
)

// ObjRef is the client-side transparent proxy for a remote object — the
// value Activator.GetObject returns in the paper's Fig. 2. Method calls go
// through Invoke (synchronous), BeginInvoke/EndInvoke (asynchronous
// delegate) or OneWay (asynchronous, result discarded).
type ObjRef struct {
	ch      *Channel
	netaddr string
	uri     string
}

// GetObject returns a proxy for the object at url, for example
// "tcp://127.0.0.1:4000/DivideServer". No connection is made until the
// first call, matching Activator.GetObject's lazy behaviour.
func GetObject(ch *Channel, url string) (*ObjRef, error) {
	_, netaddr, uri, err := ParseURL(url)
	if err != nil {
		return nil, err
	}
	return &ObjRef{ch: ch, netaddr: netaddr, uri: uri}, nil
}

// NewObjRef builds a proxy from an already-split transport address and
// object URI (used by the SCOOPP runtime, which receives both from the
// object manager).
func NewObjRef(ch *Channel, netaddr, uri string) *ObjRef {
	return &ObjRef{ch: ch, netaddr: netaddr, uri: uri}
}

// URL reconstructs the object's remoting URL.
func (r *ObjRef) URL() string { return BuildURL(r.ch.Scheme(), r.netaddr, r.uri) }

// URI returns the object path component.
func (r *ObjRef) URI() string { return r.uri }

// NetAddr returns the transport address of the hosting server.
func (r *ObjRef) NetAddr() string { return r.netaddr }

// Channel returns the channel the proxy calls through.
func (r *ObjRef) Channel() *Channel { return r.ch }

// Invoke performs a synchronous remote method invocation. Server-side
// failures come back as *RemoteError.
func (r *ObjRef) Invoke(method string, args ...any) (any, error) {
	return r.InvokeCtx(context.Background(), method, args...)
}

// InvokeCtx performs a synchronous remote method invocation bounded by ctx:
// cancellation aborts the in-flight exchange (closing its connection) and
// the deadline travels in the request envelope so the server refuses work
// past it. Server-side failures come back as *RemoteError.
//
// When the channel's RetryPolicy is enabled, transient failures
// (Retryable: node-down, overload sheds) are retried with jittered
// exponential backoff — honouring a server retry-after hint over the
// computed delay — for as long as the attempt cap and the ctx deadline
// budget allow. A ctx carrying WithoutRetry, and any call whose failure is
// not classified retryable, gets exactly one attempt. An idempotency token
// carried by ctx (WithCallToken) rides every attempt unchanged, so a
// server that executed a lost-reply attempt replays the recorded reply
// instead of executing again.
func (r *ObjRef) InvokeCtx(ctx context.Context, method string, args ...any) (any, error) {
	req := &callRequest{
		URI:    r.uri,
		Method: method,
		Seq:    r.ch.nextSeq(),
		Args:   args,
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Deadline = dl.UnixNano()
	}
	if tok, ok := TokenFromContext(ctx); ok {
		req.TokClient, req.TokSeq = tok.Client, tok.Seq
	}
	p := r.ch.Retry
	if !p.Enabled() || retryDisabled(ctx) {
		return r.invokeOnce(ctx, req)
	}
	for attempt := 0; ; attempt++ {
		start := time.Now()
		result, err := r.invokeOnce(ctx, req)
		if err == nil {
			return result, nil
		}
		if !Retryable(err) || attempt >= p.MaxAttempts-1 {
			return nil, err
		}
		delay := p.retryDelay(err, attempt)
		if !budgetAllows(ctx, delay, time.Since(start)) {
			return nil, err
		}
		if serr := sleepRetry(ctx, r.ch.closeSignal(), delay); serr != nil {
			return nil, fmt.Errorf("remoting: call %s.%s: retry aborted: %w", r.uri, method, serr)
		}
		// Fresh seq per attempt: the failed attempt may still complete
		// server-side, and a reused number could be matched against its
		// late reply. The idempotency token (if any) stays, making the
		// retry deduplicable; the seq is per-exchange plumbing.
		req.Seq = r.ch.nextSeq()
	}
}

// invokeOnce is a single InvokeCtx attempt: one roundTrip plus reply
// normalization into Go errors.
func (r *ObjRef) invokeOnce(ctx context.Context, req *callRequest) (any, error) {
	resp, err := r.ch.roundTrip(ctx, r.netaddr, req)
	if err != nil {
		return nil, err
	}
	if resp.IsErr {
		re := &RemoteError{URI: r.uri, Method: req.Method, Msg: resp.ErrMsg, Code: resp.ErrCode}
		if resp.ErrCode == errs.CodeMoved {
			movedURI := resp.FwdURI
			if movedURI == "" {
				movedURI = r.uri
			}
			re.Moved = &errs.MovedError{URI: movedURI, Node: resp.FwdNode, Addr: resp.FwdAddr, Gen: resp.FwdGen}
		}
		if resp.ErrCode == errs.CodeOverloaded && resp.RetryAfterMs > 0 {
			re.RetryAfter = time.Duration(resp.RetryAfterMs) * time.Millisecond
		}
		return nil, re
	}
	return resp.Result, nil
}

// AsyncResult is the handle returned by BeginInvoke, the analogue of
// System.IAsyncResult for delegate BeginInvoke in the paper's Fig. 4.
type AsyncResult struct {
	done   chan struct{}
	result any
	err    error
}

// Done returns a channel closed when the call completes.
func (ar *AsyncResult) Done() <-chan struct{} { return ar.done }

// IsCompleted reports whether the call has finished without blocking.
func (ar *AsyncResult) IsCompleted() bool {
	select {
	case <-ar.done:
		return true
	default:
		return false
	}
}

// EndInvoke blocks until the call completes and returns its result, the
// analogue of delegate EndInvoke.
func (ar *AsyncResult) EndInvoke() (any, error) {
	<-ar.done
	return ar.result, ar.err
}

// BeginInvoke starts an asynchronous remote method invocation and returns
// immediately. On pooling channels each in-flight call uses its own pooled
// connection; on the multiplexed channel concurrent calls pipeline over one
// shared connection. Either way, concurrent BeginInvokes overlap on the
// wire.
func (r *ObjRef) BeginInvoke(method string, args ...any) *AsyncResult {
	ar := &AsyncResult{done: make(chan struct{})}
	go func() {
		defer close(ar.done)
		ar.result, ar.err = r.Invoke(method, args...)
	}()
	return ar
}

// OneWay invokes method asynchronously and discards the result. Transport
// errors are reported to onErr when non-nil. It is the building block the
// SCOOPP proxy uses for asynchronous void methods.
func (r *ObjRef) OneWay(method string, onErr func(error), args ...any) {
	go func() {
		if _, err := r.Invoke(method, args...); err != nil && onErr != nil {
			onErr(err)
		}
	}()
}

// OneWayTimeout is OneWay with a per-exchange deadline: the call is
// abandoned (and its connection closed) when d elapses, so a one-way
// stream aimed at a dead peer cannot pile up goroutines behind full call
// timeouts. Used for asynchronous replica-state shipping, where losing a
// snapshot only widens the replication lag until the next one lands.
func (r *ObjRef) OneWayTimeout(d time.Duration, method string, onErr func(error), args ...any) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), d)
		defer cancel()
		if _, err := r.InvokeCtx(ctx, method, args...); err != nil && onErr != nil {
			onErr(err)
		}
	}()
}

// Delegate is a typed wrapper around one remote method, mirroring a C#
// delegate bound to a proxy method (paper Fig. 4: RemoteAsyncDelegate). It
// exists so call sites read like the paper's generated code.
type Delegate struct {
	ref    *ObjRef
	method string
}

// NewDelegate binds a delegate to a method of a remote object.
func NewDelegate(ref *ObjRef, method string) *Delegate {
	return &Delegate{ref: ref, method: method}
}

// BeginInvoke starts the call asynchronously.
func (d *Delegate) BeginInvoke(args ...any) *AsyncResult {
	return d.ref.BeginInvoke(d.method, args...)
}

// Invoke performs the call synchronously.
func (d *Delegate) Invoke(args ...any) (any, error) {
	return d.ref.Invoke(d.method, args...)
}

// CallSequencer serialises asynchronous calls issued through it while
// letting the caller continue immediately — the ordering guarantee the
// SCOOPP runtime needs for method streams between one proxy object and its
// implementation object. Errors are delivered to the OnError callback.
type CallSequencer struct {
	invoke  func(method string, args ...any) (any, error)
	OnError func(error)

	mu      sync.Mutex
	queue   []queuedCall
	running bool
	idle    *sync.Cond
	pending int
}

type queuedCall struct {
	method string
	args   []any
}

// NewCallSequencer returns a sequencer whose calls go through ref.
func NewCallSequencer(ref *ObjRef) *CallSequencer {
	return NewCallSequencerFunc(ref.Invoke)
}

// NewCallSequencerFunc returns a sequencer whose calls go through invoke.
// Routing through a function rather than a fixed ObjRef lets the owner
// re-resolve the endpoint between calls — the SCOOPP proxy uses this to
// keep one ordered lane across an object migration.
func NewCallSequencerFunc(invoke func(method string, args ...any) (any, error)) *CallSequencer {
	cs := &CallSequencer{invoke: invoke}
	cs.idle = sync.NewCond(&cs.mu)
	return cs
}

// Post enqueues an asynchronous call. Calls posted from one goroutine
// execute remotely in post order.
func (cs *CallSequencer) Post(method string, args ...any) {
	cs.mu.Lock()
	cs.queue = append(cs.queue, queuedCall{method: method, args: args})
	cs.pending++
	if !cs.running {
		cs.running = true
		go cs.drain()
	}
	cs.mu.Unlock()
}

func (cs *CallSequencer) drain() {
	for {
		cs.mu.Lock()
		if len(cs.queue) == 0 {
			cs.running = false
			cs.idle.Broadcast()
			cs.mu.Unlock()
			return
		}
		call := cs.queue[0]
		cs.queue = cs.queue[1:]
		cs.mu.Unlock()

		_, err := cs.invoke(call.method, call.args...)
		if err != nil && cs.OnError != nil {
			cs.OnError(err)
		}

		cs.mu.Lock()
		cs.pending--
		if cs.pending == 0 {
			cs.idle.Broadcast()
		}
		cs.mu.Unlock()
	}
}

// Flush blocks until every posted call has completed.
func (cs *CallSequencer) Flush() {
	cs.mu.Lock()
	for cs.pending > 0 {
		cs.idle.Wait()
	}
	cs.mu.Unlock()
}

// FlushCtx blocks until every posted call has completed or ctx is done, in
// which case it stops waiting (the queued calls keep draining in the
// background) and returns ctx.Err().
func (cs *CallSequencer) FlushCtx(ctx context.Context) error {
	return ctxwait.Drain(ctx, cs.Flush)
}

// String implements fmt.Stringer.
func (r *ObjRef) String() string {
	return fmt.Sprintf("ObjRef(%s)", r.URL())
}
