package remoting

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/transport"
)

// setProcs pins GOMAXPROCS for a test (and so DefaultMuxLanes), restoring
// the previous value on cleanup. The lane tests run at 4 regardless of the
// host so single-core CI still exercises the multi-lane paths.
func setProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// muxPeerCount reads how many lane connections the channel currently holds.
func muxPeerCount(ch *Channel) int {
	ch.muxMu.Lock()
	defer ch.muxMu.Unlock()
	return len(ch.muxPeers)
}

func TestDefaultMuxLanesTracksGOMAXPROCS(t *testing.T) {
	setProcs(t, 4)
	if got := DefaultMuxLanes(); got != 4 {
		t.Errorf("DefaultMuxLanes at GOMAXPROCS=4 = %d, want 4", got)
	}
	setProcs(t, 1)
	if got := DefaultMuxLanes(); got != 1 {
		t.Errorf("DefaultMuxLanes at GOMAXPROCS=1 = %d, want 1", got)
	}
	runtime.GOMAXPROCS(16)
	if got := DefaultMuxLanes(); got != 4 {
		t.Errorf("DefaultMuxLanes at GOMAXPROCS=16 = %d, want 4 (capped)", got)
	}
}

// TestLaneStriping: with 4 lanes, concurrent callers spread over exactly 4
// connections to the one peer — no more (lanes are long-lived), no fewer
// (striping reaches every lane) — and every call still completes correctly.
func TestLaneStriping(t *testing.T) {
	setProcs(t, 4)
	ch, srv, net := newMuxServer(t)
	ch.MuxLanes = 4
	shared := &divideServer{}
	srv.RegisterWellKnown("d", Singleton, func() any { return shared })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if _, err := ref.Invoke("Divide", 8.0, 2.0); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if shared.Calls() != 256 {
		t.Errorf("calls = %d, want 256", shared.Calls())
	}
	if d := net.dials.Load(); d != 4 {
		t.Errorf("dials = %d, want 4 (one long-lived connection per lane)", d)
	}
	if n := muxPeerCount(ch); n != 4 {
		t.Errorf("muxPeers = %d, want 4", n)
	}
}

// TestLaneOutOfOrderCompletion: a call blocked server-side must not block a
// later call even when the two calls ride different lanes — cross-lane
// completion is fully independent, not just out-of-order within one stream.
func TestLaneOutOfOrderCompletion(t *testing.T) {
	setProcs(t, 4)
	ch, srv, _ := newMuxServer(t)
	ch.MuxLanes = 4
	g := newGateService()
	srv.RegisterWellKnown("g", Singleton, func() any { return g })
	ref, _ := GetObject(ch, srv.URLFor("g"))

	slow := ref.BeginInvoke("WaitGate")
	select {
	case <-g.started:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitGate never reached the server")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if res, err := ref.Invoke("Open"); err != nil || res != "opened" {
			t.Errorf("Open = %v, %v", res, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Open deadlocked behind WaitGate across lanes")
	}
	if got, err := slow.EndInvoke(); err != nil || got != "waited" {
		t.Fatalf("WaitGate = %v, %v", got, err)
	}
}

// TestLaneCancellationIsolation: an abandoned call must disturb only its
// own exchange — every lane's connection survives (no redials beyond the
// initial dial per lane) and subsequent calls on all lanes succeed.
func TestLaneCancellationIsolation(t *testing.T) {
	setProcs(t, 4)
	ch, srv, net := newMuxServer(t)
	ch.MuxLanes = 4
	g := newGateService()
	srv.RegisterWellKnown("g", Singleton, func() any { return g })
	ref, _ := GetObject(ch, srv.URLFor("g"))

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := ref.InvokeCtx(ctx, "WaitGate"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// Enough sequential calls to stripe across every lane.
	for i := 0; i < 8; i++ {
		if got, err := ref.Invoke("Ping"); err != nil || got != "pong" {
			t.Fatalf("Ping %d after cancellation = %v, %v", i, got, err)
		}
	}
	// Unblock the abandoned handler; its late response is dropped on
	// whatever lane carried it, without disturbing the others.
	if _, err := ref.Invoke("Open"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if got, err := ref.Invoke("Ping"); err != nil || got != "pong" {
			t.Fatalf("Ping %d after late response = %v, %v", i, got, err)
		}
	}
	if d := net.dials.Load(); d > 4 {
		t.Errorf("dials = %d, want <= 4: cancellation must not kill any lane", d)
	}
}

// TestLaneRedialRebuild: a peer restart kills every lane at once; each lane
// must transparently redial on its next call and rebuild its bound-call
// handles (handles are per-connection, so every lane re-declares).
func TestLaneRedialRebuild(t *testing.T) {
	setProcs(t, 4)
	net := transport.NewMemNetwork()
	ch := NewMultiplexedChannel(net)
	ch.MuxLanes = 4
	defer ch.Close()
	srv, err := ch.ListenAndServe("mem://lanerestart")
	if err != nil {
		t.Fatal(err)
	}
	srv.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	for i := 0; i < 8; i++ {
		if _, err := ref.Invoke("Divide", 8.0, 2.0); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close() // peer "restarts": every lane's pipe is now dead
	srv2, err := ch.ListenAndServe("mem://lanerestart")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	srv2.RegisterWellKnown("d", Singleton, func() any { return &divideServer{} })
	for i := 0; i < 8; i++ {
		got, err := ref.Invoke("Divide", 9.0, 3.0)
		if err != nil {
			t.Fatalf("call %d after peer restart = %v, want transparent per-lane redial", i, err)
		}
		if got != 3.0 {
			t.Errorf("Divide = %v", got)
		}
	}
}

// TestLaneConcurrentChurn hammers all lanes with a mix of successful calls
// and cancelled ones — the -race workout for the sharded in-flight and
// bind tables under concurrent registration, completion and abandonment.
func TestLaneConcurrentChurn(t *testing.T) {
	setProcs(t, 4)
	ch, srv, _ := newMuxServer(t)
	ch.MuxLanes = 4
	shared := &divideServer{}
	srv.RegisterWellKnown("d", Singleton, func() any { return shared })
	ref, _ := GetObject(ch, srv.URLFor("d"))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				if n%4 == 0 {
					// Already-expired context: registered and abandoned
					// immediately, racing the completions around it.
					ctx, cancel := context.WithCancel(context.Background())
					cancel()
					ref.InvokeCtx(ctx, "Divide", 1.0, 1.0) //nolint:errcheck
					continue
				}
				if _, err := ref.Invoke("Divide", 8.0, 2.0); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
