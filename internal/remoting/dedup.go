// Dedup LRU: the server-side half of effectively-once calls.
//
// Each object runtime keeps a bounded LRU of (call token → recorded reply).
// A retried call whose token is present returns the recorded reply instead
// of executing again — the retry may arrive over a different connection, a
// different channel, or (after a failover) at a promoted replica on a
// different node, because the records travel with replicated state
// (DedupRecord is wire-registered for exactly that trip).
//
// The cap bounds memory under token churn: one entry per remembered call,
// oldest evicted first. A token evicted before its retry arrives degrades
// to the historical at-least-once behaviour — the window is sized so that
// retries within any sane policy's deadline budget land well inside it.
package remoting

import (
	"sync"

	"repro/internal/wire"
)

// DedupReply is the recorded outcome of an executed call: enough to rebuild
// the reply envelope without re-executing.
type DedupReply struct {
	Result  any
	ErrMsg  string
	ErrCode string
	IsErr   bool
}

// DedupRecord is one exported LRU entry; it crosses the wire with
// replicated object state so a promoted replica inherits the executed-call
// memory of the failed owner. Stamp is the LRU's monotonic write counter
// at the entry's last touch: incremental replication ships only records
// stamped after what the receiver acknowledged, instead of the whole LRU
// on every synchronous snapshot.
type DedupRecord struct {
	Client  uint64
	Seq     uint64
	Stamp   uint64
	Result  any
	ErrMsg  string
	ErrCode string
	IsErr   bool
}

func init() {
	wire.RegisterName("remoting.DedupRecord", DedupRecord{})
}

// DefaultDedupPerObject is the per-object LRU cap when the configuration
// leaves it zero.
const DefaultDedupPerObject = 256

type dedupNode struct {
	tok        CallToken
	reply      DedupReply
	stamp      uint64
	prev, next *dedupNode
}

// DedupLRU is a bounded most-recently-used map of call tokens to recorded
// replies. Safe for concurrent use.
type DedupLRU struct {
	mu      sync.Mutex
	cap     int
	stamp   uint64 // monotonic write counter, see DedupRecord.Stamp
	entries map[CallToken]*dedupNode
	head    *dedupNode // most recently used
	tail    *dedupNode // next eviction victim
}

// NewDedupLRU returns an LRU bounded to cap entries (cap <= 0 selects
// DefaultDedupPerObject).
func NewDedupLRU(cap int) *DedupLRU {
	if cap <= 0 {
		cap = DefaultDedupPerObject
	}
	return &DedupLRU{cap: cap, entries: make(map[CallToken]*dedupNode)}
}

// Get returns the recorded reply for tok, refreshing its recency.
func (l *DedupLRU) Get(tok CallToken) (DedupReply, bool) {
	if l == nil || tok.Zero() {
		return DedupReply{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.entries[tok]
	if n == nil {
		return DedupReply{}, false
	}
	l.unlink(n)
	l.pushFront(n)
	// A hit refreshes recency, which changes the future eviction order; the
	// restamp makes the next incremental export carry the entry again, so a
	// replica mirroring the exports keeps the same eviction order too.
	l.stamp++
	n.stamp = l.stamp
	return n.reply, true
}

// Put records the reply for tok, evicting the oldest entry past the cap.
func (l *DedupLRU) Put(tok CallToken, reply DedupReply) {
	if l == nil || tok.Zero() {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stamp++
	if n := l.entries[tok]; n != nil {
		n.reply = reply
		n.stamp = l.stamp
		l.unlink(n)
		l.pushFront(n)
		return
	}
	n := &dedupNode{tok: tok, reply: reply, stamp: l.stamp}
	l.entries[tok] = n
	l.pushFront(n)
	for len(l.entries) > l.cap {
		victim := l.tail
		l.unlink(victim)
		delete(l.entries, victim.tok)
	}
}

// Len returns the number of recorded entries.
func (l *DedupLRU) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries)
}

// Export snapshots the entries oldest-first, so a receiver replaying them
// through Import reproduces the same recency order (and the same future
// eviction order).
func (l *DedupLRU) Export() []DedupRecord {
	recs, _ := l.ExportSince(0)
	return recs
}

// ExportSince snapshots the entries touched after the given stamp,
// oldest-recency-first, and returns the write counter the export covers
// through. A sender that remembers what a receiver acknowledged ships only
// the records the receiver is missing; ExportSince(0) is the full export.
func (l *DedupLRU) ExportSince(after uint64) ([]DedupRecord, uint64) {
	if l == nil {
		return nil, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []DedupRecord
	for n := l.tail; n != nil; n = n.prev {
		if n.stamp <= after {
			continue
		}
		out = append(out, DedupRecord{
			Client:  n.tok.Client,
			Seq:     n.tok.Seq,
			Stamp:   n.stamp,
			Result:  n.reply.Result,
			ErrMsg:  n.reply.ErrMsg,
			ErrCode: n.reply.ErrCode,
			IsErr:   n.reply.IsErr,
		})
	}
	return out, l.stamp
}

// Import replays exported records (oldest-first) into the LRU.
func (l *DedupLRU) Import(recs []DedupRecord) {
	if l == nil {
		return
	}
	for _, r := range recs {
		l.Put(CallToken{Client: r.Client, Seq: r.Seq}, DedupReply{
			Result:  r.Result,
			ErrMsg:  r.ErrMsg,
			ErrCode: r.ErrCode,
			IsErr:   r.IsErr,
		})
	}
}

func (l *DedupLRU) unlink(n *dedupNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *DedupLRU) pushFront(n *dedupNode) {
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}
