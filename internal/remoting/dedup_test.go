package remoting

import (
	"fmt"
	"testing"
)

func tok(seq uint64) CallToken { return CallToken{Client: 1, Seq: seq} }

func rep(v int) DedupReply { return DedupReply{Result: v} }

// TestDedupReplay: a recorded token replays its reply; an unknown one
// misses.
func TestDedupReplay(t *testing.T) {
	l := NewDedupLRU(4)
	l.Put(tok(1), rep(10))
	got, ok := l.Get(tok(1))
	if !ok || got.Result != 10 {
		t.Fatalf("Get(recorded) = (%v, %v), want (10, true)", got.Result, ok)
	}
	if _, ok := l.Get(tok(2)); ok {
		t.Error("Get(unknown token) hit")
	}
}

// TestDedupEvictionBound: the LRU never exceeds its cap, evicts strictly
// oldest-first, and keeps exactly the newest cap entries under churn.
func TestDedupEvictionBound(t *testing.T) {
	const cap = 4
	l := NewDedupLRU(cap)
	for i := uint64(1); i <= 10; i++ {
		l.Put(tok(i), rep(int(i)))
		if n := l.Len(); n > cap {
			t.Fatalf("Len = %d after %d puts, cap is %d", n, i, cap)
		}
	}
	for i := uint64(1); i <= 6; i++ {
		if _, ok := l.Get(tok(i)); ok {
			t.Errorf("token %d still present, should have been evicted", i)
		}
	}
	for i := uint64(7); i <= 10; i++ {
		if _, ok := l.Get(tok(i)); !ok {
			t.Errorf("token %d evicted, want the newest %d retained", i, cap)
		}
	}
}

// TestDedupGetRefreshesRecency: a replayed (hit) entry moves to the front
// of the eviction order — retries must not evict the very records they
// depend on.
func TestDedupGetRefreshesRecency(t *testing.T) {
	l := NewDedupLRU(3)
	for i := uint64(1); i <= 3; i++ {
		l.Put(tok(i), rep(int(i)))
	}
	l.Get(tok(1))         // refresh the oldest
	l.Put(tok(4), rep(4)) // evicts 2 (now oldest), not 1
	if _, ok := l.Get(tok(1)); !ok {
		t.Error("refreshed token 1 was evicted")
	}
	if _, ok := l.Get(tok(2)); ok {
		t.Error("token 2 survived, want it evicted as the oldest")
	}
}

// TestDedupExportSince: stamps are monotonic, a full export covers the
// counter, and an incremental export carries exactly the records touched
// after the base — including re-touched (replayed) ones.
func TestDedupExportSince(t *testing.T) {
	l := NewDedupLRU(8)
	for i := uint64(1); i <= 3; i++ {
		l.Put(tok(i), rep(int(i)))
	}
	full, upTo := l.ExportSince(0)
	if len(full) != 3 {
		t.Fatalf("full export has %d records, want 3", len(full))
	}
	for i := 1; i < len(full); i++ {
		if full[i].Stamp <= full[i-1].Stamp {
			t.Fatalf("export not stamp-ascending: %d then %d", full[i-1].Stamp, full[i].Stamp)
		}
	}
	if full[len(full)-1].Stamp != upTo {
		t.Errorf("newest record stamp %d != export counter %d", full[len(full)-1].Stamp, upTo)
	}

	// Nothing touched since: the delta is empty and the counter unmoved.
	delta, upTo2 := l.ExportSince(upTo)
	if len(delta) != 0 || upTo2 != upTo {
		t.Fatalf("ExportSince(head) = %d records, counter %d, want 0 records at %d", len(delta), upTo2, upTo)
	}

	// One new put and one replay: the delta is exactly those two.
	l.Put(tok(4), rep(4))
	l.Get(tok(2)) // replay restamps, so a mirroring replica re-learns its recency
	delta, upTo3 := l.ExportSince(upTo)
	if len(delta) != 2 {
		t.Fatalf("delta has %d records, want 2 (one put, one replayed)", len(delta))
	}
	if delta[0].Seq != 4 || delta[1].Seq != 2 {
		t.Errorf("delta tokens = %d, %d, want 4 then 2 (recency order)", delta[0].Seq, delta[1].Seq)
	}
	if upTo3 <= upTo {
		t.Error("export counter did not advance")
	}
}

// TestDedupImportMirrorsEviction: replaying exports into a second LRU of
// the same cap reproduces the owner's surviving token set and eviction
// order — the property replica promotion depends on.
func TestDedupImportMirrorsEviction(t *testing.T) {
	const cap = 8
	owner := NewDedupLRU(cap)
	replica := NewDedupLRU(cap)
	var base uint64
	for i := uint64(1); i <= 40; i++ {
		owner.Put(tok(i), rep(int(i)))
		if i%2 == 0 {
			owner.Get(tok(i - 1)) // interleave replays to shuffle recency
		}
		if i%5 == 0 { // periodic incremental ship
			delta, upTo := owner.ExportSince(base)
			replica.Import(delta)
			base = upTo
		}
	}
	delta, _ := owner.ExportSince(base)
	replica.Import(delta)

	ownerRecs := owner.Export()
	replicaRecs := replica.Export()
	if len(ownerRecs) != len(replicaRecs) {
		t.Fatalf("replica has %d records, owner %d", len(replicaRecs), len(ownerRecs))
	}
	for i := range ownerRecs {
		if ownerRecs[i].Client != replicaRecs[i].Client || ownerRecs[i].Seq != replicaRecs[i].Seq {
			t.Fatalf("eviction order diverged at %d: owner %v, replica %v",
				i, ownerRecs[i].Seq, replicaRecs[i].Seq)
		}
	}
}

// TestDedupNilSafety: every method on a nil LRU is a no-op — objects
// without idempotency wiring pass nil through the call path.
func TestDedupNilSafety(t *testing.T) {
	var l *DedupLRU
	l.Put(tok(1), rep(1))
	if _, ok := l.Get(tok(1)); ok {
		t.Error("nil LRU returned a hit")
	}
	if l.Len() != 0 {
		t.Error("nil LRU has non-zero length")
	}
	if recs, upTo := l.ExportSince(0); recs != nil || upTo != 0 {
		t.Error("nil LRU exported records")
	}
	l.Import([]DedupRecord{{Client: 1, Seq: 1}})
}

// TestDedupZeroTokenIgnored: the zero token means "no idempotency"; it must
// never be recorded or matched.
func TestDedupZeroTokenIgnored(t *testing.T) {
	l := NewDedupLRU(4)
	l.Put(CallToken{}, rep(1))
	if l.Len() != 0 {
		t.Error("zero token was recorded")
	}
	if _, ok := l.Get(CallToken{}); ok {
		t.Error("zero token hit")
	}
}

func BenchmarkDedupIncrementalExport(b *testing.B) {
	l := NewDedupLRU(16384)
	for i := uint64(0); i < 16384; i++ {
		l.Put(tok(i), rep(int(i)))
	}
	var base uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Put(tok(uint64(20000+i)), rep(i))
		recs, upTo := l.ExportSince(base)
		if len(recs) == 0 {
			b.Fatal("empty delta")
		}
		base = upTo
	}
	_ = fmt.Sprint(base)
}
