// Package raytracer implements a sphere ray tracer in the style of the
// Java Grande Forum section-3 RayTracer benchmark, the application the
// paper parallelises with a farming approach for Fig. 9 ("each worker
// renders several lines from the generated image", 500×500 pixels).
//
// The tracer is deterministic: a scene plus resolution always produces the
// same pixels and therefore the same checksum, which is how the tests
// verify that the farmed parallel versions compute exactly the sequential
// image. The WorkFactor parameter injects the calibrated VM compute factor
// (profile.VM.RayTracerFactor) by re-shading a deterministic fraction of
// the rays — real extra floating-point work, not sleeps.
package raytracer

import "math"

// Vec is a 3-component vector.
type Vec struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v * s.
func (v Vec) Scale(s float64) Vec { return Vec{v.X * s, v.Y * s, v.Z * s} }

// Mul returns the component-wise product.
func (v Vec) Mul(w Vec) Vec { return Vec{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Dot returns the dot product.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the unit vector of v.
func (v Vec) Norm() Vec {
	l := math.Sqrt(v.Dot(v))
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Sphere is a scene primitive with Phong material parameters.
type Sphere struct {
	Center Vec
	Radius float64
	Color  Vec
	// Refl in [0,1] mixes the reflected ray's colour into the surface.
	Refl float64
	// Shine is the Phong specular exponent.
	Shine float64
}

// Light is a point light source.
type Light struct {
	Pos       Vec
	Intensity float64
}

// Scene is a complete render input. It is wire-encodable so farming
// masters can ship it to workers once at setup.
type Scene struct {
	Spheres []Sphere
	Lights  []Light
	// Eye is the camera origin; the view plane is z=0 spanning
	// [-1,1]×[-1,1] scaled by aspect.
	Eye    Vec
	Width  int
	Height int
	// MaxDepth bounds reflection recursion (JGF uses small depths).
	MaxDepth int
}

// JGFScene builds the canonical benchmark scene: an n×n grid of reflective
// spheres over a ground sphere with two lights, in the spirit of the Java
// Grande scene (64 spheres at its default size). The scene is deterministic
// in n and the resolution.
func JGFScene(grid, width, height int) Scene {
	s := Scene{
		Eye:      Vec{0, 0.5, -3},
		Width:    width,
		Height:   height,
		MaxDepth: 3,
	}
	// Ground "plane" as a huge sphere.
	s.Spheres = append(s.Spheres, Sphere{
		Center: Vec{0, -10001, 0},
		Radius: 10000,
		Color:  Vec{0.8, 0.8, 0.85},
		Refl:   0.25,
		Shine:  8,
	})
	for i := 0; i < grid; i++ {
		for j := 0; j < grid; j++ {
			fi, fj := float64(i), float64(j)
			g := float64(grid)
			s.Spheres = append(s.Spheres, Sphere{
				Center: Vec{
					X: (fi - g/2 + 0.5) * 0.9,
					Y: -0.7 + 0.55*math.Mod(fi*3+fj*7, 3),
					Z: 1.5 + fj*0.8,
				},
				Radius: 0.38,
				Color: Vec{
					X: 0.35 + 0.6*math.Mod(fi*5+fj, 4)/4,
					Y: 0.35 + 0.6*math.Mod(fj*3+fi, 5)/5,
					Z: 0.45 + 0.5*math.Mod(fi+fj*2, 3)/3,
				},
				Refl:  0.3,
				Shine: 24,
			})
		}
	}
	s.Lights = []Light{
		{Pos: Vec{-4, 6, -2}, Intensity: 0.85},
		{Pos: Vec{5, 4, -3}, Intensity: 0.5},
	}
	return s
}

// ray is a parametric line origin + t*dir.
type ray struct {
	orig, dir Vec
}

// hit finds the nearest sphere intersection with t > eps.
func (s *Scene) hit(r ray) (int, float64) {
	const eps = 1e-7
	best := -1
	bestT := math.Inf(1)
	for i := range s.Spheres {
		sp := &s.Spheres[i]
		oc := r.orig.Sub(sp.Center)
		b := oc.Dot(r.dir)
		c := oc.Dot(oc) - sp.Radius*sp.Radius
		disc := b*b - c
		if disc < 0 {
			continue
		}
		sq := math.Sqrt(disc)
		t := -b - sq
		if t < eps {
			t = -b + sq
		}
		if t > eps && t < bestT {
			bestT = t
			best = i
		}
	}
	return best, bestT
}

// shade computes the colour seen along r.
func (s *Scene) shade(r ray, depth int) Vec {
	idx, t := s.hit(r)
	if idx < 0 {
		// Sky gradient.
		f := 0.5 * (r.dir.Y + 1)
		return Vec{0.15, 0.18, 0.25}.Scale(1 - f).Add(Vec{0.5, 0.6, 0.8}.Scale(f))
	}
	sp := &s.Spheres[idx]
	p := r.orig.Add(r.dir.Scale(t))
	n := p.Sub(sp.Center).Norm()
	col := sp.Color.Scale(0.1) // ambient
	for _, l := range s.Lights {
		ld := l.Pos.Sub(p)
		dist2 := ld.Dot(ld)
		ldir := ld.Norm()
		// Shadow ray.
		if si, st := s.hit(ray{orig: p.Add(n.Scale(1e-6)), dir: ldir}); si >= 0 && st*st < dist2 {
			continue
		}
		diff := n.Dot(ldir)
		if diff > 0 {
			col = col.Add(sp.Color.Scale(diff * l.Intensity))
		}
		// Phong specular.
		h := ldir.Sub(r.dir).Norm()
		if spec := n.Dot(h); spec > 0 {
			col = col.Add(Vec{1, 1, 1}.Scale(math.Pow(spec, sp.Shine) * l.Intensity * 0.6))
		}
	}
	if sp.Refl > 0 && depth < s.MaxDepth {
		rd := r.dir.Sub(n.Scale(2 * r.dir.Dot(n)))
		rc := s.shade(ray{orig: p.Add(n.Scale(1e-6)), dir: rd.Norm()}, depth+1)
		col = col.Scale(1 - sp.Refl).Add(rc.Scale(sp.Refl))
	}
	return col
}

// primary builds the camera ray through pixel (x, y).
func (s *Scene) primary(x, y int) ray {
	aspect := float64(s.Width) / float64(s.Height)
	px := (2*(float64(x)+0.5)/float64(s.Width) - 1) * aspect
	py := 1 - 2*(float64(y)+0.5)/float64(s.Height)
	dir := Vec{px, py, 0}.Sub(s.Eye).Norm()
	return ray{orig: s.Eye, dir: dir}
}

// RenderRows renders rows [y0, y1) and returns packed 0x00RRGGBB pixels,
// row-major. workFactor >= 1 injects the VM compute factor: each pixel is
// shaded extra times so total floating-point work scales by the factor
// (fractional parts are applied to a deterministic pixel subset).
func (s *Scene) RenderRows(y0, y1 int, workFactor float64) []int32 {
	if y0 < 0 {
		y0 = 0
	}
	if y1 > s.Height {
		y1 = s.Height
	}
	if y1 < y0 {
		y1 = y0
	}
	if workFactor < 1 {
		workFactor = 1
	}
	whole := int(workFactor)            // guaranteed shades per pixel
	frac := workFactor - float64(whole) // probability of one extra shade
	out := make([]int32, 0, (y1-y0)*s.Width)
	for y := y0; y < y1; y++ {
		for x := 0; x < s.Width; x++ {
			r := s.primary(x, y)
			col := s.shade(r, 0)
			// Redundant extra shades model the slower JIT: same
			// result, proportionally more work.
			extra := whole - 1
			if frac > 0 && mix(x, y)%1000 < int(frac*1000) {
				extra++
			}
			for k := 0; k < extra; k++ {
				col = col.Add(s.shade(r, 0)).Scale(0.5)
			}
			out = append(out, packPixel(col))
		}
	}
	return out
}

// Render renders the whole image sequentially.
func (s *Scene) Render(workFactor float64) []int32 {
	return s.RenderRows(0, s.Height, workFactor)
}

// mix is a deterministic pixel hash for the fractional work factor.
func mix(x, y int) int {
	h := uint32(x)*2654435761 + uint32(y)*40503
	h ^= h >> 13
	return int(h % 1000)
}

func packPixel(c Vec) int32 {
	return int32(channel(c.X))<<16 | int32(channel(c.Y))<<8 | int32(channel(c.Z))
}

func channel(v float64) int {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return int(v * 255)
}

// Checksum folds pixels into the JGF-style validation value.
func Checksum(pixels []int32) int64 {
	var sum int64
	for i, p := range pixels {
		sum += int64(p) * int64(i%97+1)
	}
	return sum
}
