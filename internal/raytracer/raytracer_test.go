package raytracer

import (
	"math"
	"testing"
	"testing/quick"
)

func smallScene() Scene { return JGFScene(4, 64, 64) }

func TestDeterministic(t *testing.T) {
	s := smallScene()
	a := s.Render(1)
	b := s.Render(1)
	if Checksum(a) != Checksum(b) {
		t.Error("render is not deterministic")
	}
	if len(a) != 64*64 {
		t.Errorf("pixel count = %d", len(a))
	}
}

func TestWorkFactorPreservesImage(t *testing.T) {
	// The extra redundant shading must not change the image: the farmed
	// "Mono" run renders the same picture, just slower.
	s := smallScene()
	base := s.Render(1)
	heavy := s.Render(1.4)
	if Checksum(base) != Checksum(heavy) {
		t.Error("work factor changed pixels")
	}
}

func TestRowDecompositionMatchesFull(t *testing.T) {
	s := smallScene()
	full := s.Render(1)
	var stitched []int32
	for y := 0; y < s.Height; y += 7 {
		end := y + 7
		if end > s.Height {
			end = s.Height
		}
		stitched = append(stitched, s.RenderRows(y, end, 1)...)
	}
	if len(stitched) != len(full) {
		t.Fatalf("stitched %d pixels, want %d", len(stitched), len(full))
	}
	for i := range full {
		if full[i] != stitched[i] {
			t.Fatalf("pixel %d differs: %x vs %x", i, full[i], stitched[i])
		}
	}
}

func TestRowRangeClamping(t *testing.T) {
	s := smallScene()
	if got := s.RenderRows(-5, 2, 1); len(got) != 2*s.Width {
		t.Errorf("clamped low render returned %d pixels", len(got))
	}
	if got := s.RenderRows(60, 200, 1); len(got) != 4*s.Width {
		t.Errorf("clamped high render returned %d pixels", len(got))
	}
	if got := s.RenderRows(10, 5, 1); len(got) != 0 {
		t.Errorf("inverted range returned %d pixels", len(got))
	}
}

func TestSceneHasContent(t *testing.T) {
	s := smallScene()
	pixels := s.Render(1)
	distinct := map[int32]bool{}
	for _, p := range pixels {
		distinct[p] = true
	}
	// A real image has plenty of distinct colours; a bug that paints
	// everything sky or black would collapse this.
	if len(distinct) < 50 {
		t.Errorf("only %d distinct colours; image looks degenerate", len(distinct))
	}
}

func TestSpheresVisible(t *testing.T) {
	s := smallScene()
	// The centre of the image must hit geometry, not sky: compare the
	// centre pixel against a top corner (sky).
	pixels := s.Render(1)
	centre := pixels[(s.Height/2)*s.Width+s.Width/2]
	corner := pixels[0]
	if centre == corner {
		t.Error("centre pixel equals sky; spheres not rendered")
	}
}

func TestVecOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Add(w); got != (Vec{5, 7, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec{-3, -3, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Scale(2); got != (Vec{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Mul(w); got != (Vec{4, 10, 18}) {
		t.Errorf("Mul = %v", got)
	}
	n := Vec{3, 0, 4}.Norm()
	if math.Abs(n.X-0.6) > 1e-12 || math.Abs(n.Z-0.8) > 1e-12 {
		t.Errorf("Norm = %v", n)
	}
	zero := Vec{}.Norm()
	if zero != (Vec{}) {
		t.Errorf("Norm(0) = %v", zero)
	}
}

func TestChecksumSensitive(t *testing.T) {
	s := smallScene()
	pixels := s.Render(1)
	sum := Checksum(pixels)
	pixels[100] ^= 1
	if Checksum(pixels) == sum {
		t.Error("checksum insensitive to pixel change")
	}
}

func TestPackPixelClamps(t *testing.T) {
	if p := packPixel(Vec{2, -1, 0.5}); p != int32(255)<<16|int32(0)<<8|127 {
		t.Errorf("packPixel = %x", p)
	}
}

func TestChecksumQuickProperties(t *testing.T) {
	// Permutation sensitivity: swapping two unequal pixels at positions
	// with different weights changes the checksum.
	f := func(a, b int32) bool {
		if a == b {
			return true
		}
		p := []int32{a, b, 0, 0}
		q := []int32{b, a, 0, 0}
		return Checksum(p) != Checksum(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkRenderRow(b *testing.B) {
	s := JGFScene(8, 200, 200)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.RenderRows(i%s.Height, i%s.Height+1, 1)
	}
}
