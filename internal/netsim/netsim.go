// Package netsim models the paper's evaluation network — a 100 Mbit
// switched Ethernet connecting dual-processor Linux nodes — as a shaping
// layer over transport connections.
//
// The model is the classic latency/bandwidth (LogP-style) cost:
//
//	delivery(msg) = PerMessage + len(msg)/Bandwidth + Latency
//
// where the sender is occupied for PerMessage + len/Bandwidth (transmission)
// and the message arrives Latency later (propagation). Transmissions on one
// Link serialise, modelling a NIC/switch port; full duplex links use one
// Link per direction. Shaped connections carry an 8-byte delivery deadline
// header so the receive side enforces propagation delay without a shared
// scheduler — valid because both endpoints live on the same host clock in
// the reproduction harness.
//
// With Params{} (all zeros) shaping is a pass-through plus statistics, which
// is what unit tests use.
package netsim

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cost"
	"repro/internal/transport"
)

// Params describes one direction of a link.
type Params struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the link rate in bytes per second; 0 means infinite.
	Bandwidth float64
	// PerMessage is a fixed cost charged per message (framing, kernel
	// crossings, switch store-and-forward).
	PerMessage time.Duration
	// FrameOverhead is added to every message's size before the
	// bandwidth term (Ethernet/IP/TCP headers). The paper's 100 Mbit
	// Ethernet carries ~58 bytes of header per segment.
	FrameOverhead int
	// Loss is the per-message probability (0..1) that a frame is "lost".
	// The transports in this harness are reliable streams, so loss is
	// modelled the way TCP surfaces it — as a retransmission: the message
	// still arrives, delayed by LossDelay. That keeps RPC semantics
	// intact while putting honest retransmit spikes into the latency
	// tail, which is what open-loop percentile measurements are for.
	Loss float64
	// LossDelay is the extra delivery delay charged to a lost message;
	// 0 with Loss > 0 defaults to DefaultLossDelay (a coarse RTO).
	LossDelay time.Duration
}

// DefaultLossDelay approximates a minimum TCP retransmission timeout on a
// LAN: the 2005-era Linux RTO floor of 200 ms.
const DefaultLossDelay = 200 * time.Millisecond

// Ethernet100 returns parameters approximating the paper's testbed link:
// 100 Mbit/s, ~30 µs one-way wire+switch latency, 58 bytes of protocol
// header per message.
func Ethernet100() Params {
	return Params{
		Latency:       30 * time.Microsecond,
		Bandwidth:     100e6 / 8,
		PerMessage:    5 * time.Microsecond,
		FrameOverhead: 58,
	}
}

// Zero reports whether the parameters introduce no delay.
func (p Params) Zero() bool {
	return p.Latency == 0 && p.Bandwidth == 0 && p.PerMessage == 0 && p.Loss == 0
}

// lossDelay returns the configured retransmit delay, defaulted.
func (p Params) lossDelay() time.Duration {
	if p.LossDelay > 0 {
		return p.LossDelay
	}
	return DefaultLossDelay
}

// TxTime returns the sender-occupancy time for a message of n bytes.
func (p Params) TxTime(n int) time.Duration {
	d := p.PerMessage
	if p.Bandwidth > 0 {
		bytes := float64(n + p.FrameOverhead)
		d += time.Duration(bytes / p.Bandwidth * float64(time.Second))
	}
	return d
}

// DeliveryTime returns the total one-way delay for a message of n bytes on
// an idle link. This is the analytic counterpart used by the bench package's
// cost model.
func (p Params) DeliveryTime(n int) time.Duration {
	return p.TxTime(n) + p.Latency
}

// Clock abstracts time so shaping can be disabled in tests. The package
// sleeps with time.Sleep in production.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Sleep implements Clock. It uses the cost package's precise hybrid sleep:
// link latencies and transmission times are far below the kernel timer
// granularity on some hosts.
func (RealClock) Sleep(d time.Duration) {
	if d > 0 {
		cost.PreciseSleep(d)
	}
}

// Link serialises transmissions in one direction. Multiple connections may
// share a Link to model several sockets contending for one NIC.
type Link struct {
	params Params
	clock  Clock

	mu       sync.Mutex
	nextFree time.Time
}

// NewLink returns a link with the given one-direction parameters.
func NewLink(p Params, clk Clock) *Link {
	if clk == nil {
		clk = RealClock{}
	}
	return &Link{params: p, clock: clk}
}

// acquire reserves a transmission slot for n bytes. It returns the time at
// which the message is delivered at the far end; the caller must sleep until
// the end of its transmission (returned as txEnd).
func (l *Link) acquire(n int) (txEnd, deliverAt time.Time) {
	now := l.clock.Now()
	l.mu.Lock()
	start := now
	if l.nextFree.After(start) {
		start = l.nextFree
	}
	txEnd = start.Add(l.params.TxTime(n))
	l.nextFree = txEnd
	l.mu.Unlock()
	return txEnd, txEnd.Add(l.params.Latency)
}

// Stats counts traffic through a shaped connection or network. All methods
// are safe for concurrent use.
type Stats struct {
	bytesSent atomic.Int64
	msgsSent  atomic.Int64
}

// Count records one sent message of n bytes.
func (s *Stats) Count(n int) {
	s.bytesSent.Add(int64(n))
	s.msgsSent.Add(1)
}

// BytesSent returns the total payload bytes sent.
func (s *Stats) BytesSent() int64 { return s.bytesSent.Load() }

// MsgsSent returns the number of messages sent.
func (s *Stats) MsgsSent() int64 { return s.msgsSent.Load() }

// String formats the counters for logs.
func (s *Stats) String() string {
	return fmt.Sprintf("msgs=%d bytes=%d", s.MsgsSent(), s.BytesSent())
}

// Shape wraps a connection with link shaping. Both endpoints of a
// conversation must be shaped (the wrapper adds a delivery-deadline header
// understood by the peer's wrapper). A nil link allocates a private one; a
// nil clock uses the wall clock; a nil stats discards counts.
func Shape(c transport.Conn, p Params, clk Clock, link *Link, stats *Stats) transport.Conn {
	if clk == nil {
		clk = RealClock{}
	}
	if link == nil {
		link = NewLink(p, clk)
	}
	return &shapedConn{inner: c, params: p, clock: clk, link: link, stats: stats}
}

type shapedConn struct {
	inner  transport.Conn
	params Params
	clock  Clock
	link   *Link
	stats  *Stats

	// dialed is the listener address this connection was dialed to, and
	// net the owning shaped network — set only on Dial-side connections,
	// where together they let Isolate blackhole the conversation (both
	// directions ride this one conn). Accept-side and hand-shaped conns
	// leave them zero and are unaffected.
	dialed string
	net    *ShapedNetwork

	// rng drives loss sampling; lazily seeded per connection, guarded by
	// rngMu (Send may be called from concurrent writers).
	rngMu sync.Mutex
	rng   *rand.Rand
}

// lose samples whether this message is lost (and so pays the retransmit
// delay).
func (s *shapedConn) lose() bool {
	if s.params.Loss <= 0 {
		return false
	}
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	if s.rng == nil {
		s.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	return s.rng.Float64() < s.params.Loss
}

func (s *shapedConn) Send(msg []byte) error {
	if s.net != nil && s.net.isolated(s.dialed) {
		// Partitioned: the frame vanishes without error, like a dropped
		// packet — the RPC above waits out its deadline.
		return nil
	}
	if s.stats != nil {
		s.stats.Count(len(msg))
	}
	buf := make([]byte, 8+len(msg))
	copy(buf[8:], msg)
	if s.params.Zero() {
		// Pass-through mode: zero deadline.
		return s.inner.Send(buf)
	}
	txEnd, deliverAt := s.link.acquire(len(msg))
	if s.lose() {
		// A lost frame is retransmitted: it arrives late, not never.
		deliverAt = deliverAt.Add(s.params.lossDelay())
	}
	binary.BigEndian.PutUint64(buf, uint64(deliverAt.UnixNano()))
	// The sender is occupied for the transmission time, modelling the
	// blocking send of a saturated NIC.
	s.clock.Sleep(txEnd.Sub(s.clock.Now()))
	return s.inner.Send(buf)
}

func (s *shapedConn) Recv() ([]byte, error) {
	for {
		msg, err := s.inner.Recv()
		if err != nil {
			return nil, err
		}
		if len(msg) < 8 {
			return nil, fmt.Errorf("netsim: short shaped frame of %d bytes", len(msg))
		}
		if s.net != nil && s.net.isolated(s.dialed) {
			// The reply direction of a partitioned conversation: frames in
			// flight (or sent by a peer that has not noticed) are dropped.
			continue
		}
		deadline := int64(binary.BigEndian.Uint64(msg))
		if deadline > 0 {
			deliverAt := time.Unix(0, deadline)
			s.clock.Sleep(deliverAt.Sub(s.clock.Now()))
		}
		return msg[8:], nil
	}
}

func (s *shapedConn) Close() error       { return s.inner.Close() }
func (s *shapedConn) LocalAddr() string  { return s.inner.LocalAddr() }
func (s *shapedConn) RemoteAddr() string { return s.inner.RemoteAddr() }

// ShapedNetwork decorates every connection of an inner network with
// shaping. Each connection direction gets its own Link unless SharedNIC is
// set, in which case all connections originating from this network value
// share one outbound link (modelling one NIC per node).
type ShapedNetwork struct {
	Inner  transport.Network
	Params Params
	Clock  Clock
	Stats  *Stats

	// SharedNIC serialises all outbound transmissions across
	// connections, as a single network adapter would.
	SharedNIC bool

	once sync.Once
	nic  *Link

	// isoMu guards the set of isolated listener addresses (Isolate/Heal).
	isoMu sync.Mutex
	iso   map[string]bool
}

// NewShapedNetwork shapes inner with p on every connection in both
// directions.
func NewShapedNetwork(inner transport.Network, p Params) *ShapedNetwork {
	return &ShapedNetwork{Inner: inner, Params: p, Stats: &Stats{}}
}

func (n *ShapedNetwork) clock() Clock {
	if n.Clock != nil {
		return n.Clock
	}
	return RealClock{}
}

func (n *ShapedNetwork) outboundLink() *Link {
	if !n.SharedNIC {
		return nil
	}
	n.once.Do(func() { n.nic = NewLink(n.Params, n.clock()) })
	return n.nic
}

// Listen implements transport.Network.
func (n *ShapedNetwork) Listen(addr string) (transport.Listener, error) {
	l, err := n.Inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &shapedListener{inner: l, net: n}, nil
}

// Dial implements transport.Network.
func (n *ShapedNetwork) Dial(addr string) (transport.Conn, error) {
	c, err := n.Inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	sc := Shape(c, n.Params, n.clock(), n.outboundLink(), n.Stats).(*shapedConn)
	sc.dialed, sc.net = addr, n
	return sc, nil
}

// Isolate partitions the listener at addr off the network: every shaped
// connection dialed to it blackholes both directions (frames vanish
// without error, so calls across the partition hang until their
// deadlines) until Heal. Isolation is keyed by the dialed listener
// address, which in the in-process harness identifies the node.
func (n *ShapedNetwork) Isolate(addr string) {
	n.isoMu.Lock()
	if n.iso == nil {
		n.iso = make(map[string]bool)
	}
	n.iso[addr] = true
	n.isoMu.Unlock()
}

// Heal reconnects a listener isolated by Isolate.
func (n *ShapedNetwork) Heal(addr string) {
	n.isoMu.Lock()
	delete(n.iso, addr)
	n.isoMu.Unlock()
}

func (n *ShapedNetwork) isolated(addr string) bool {
	n.isoMu.Lock()
	defer n.isoMu.Unlock()
	return n.iso[addr]
}

type shapedListener struct {
	inner transport.Listener
	net   *ShapedNetwork
}

func (l *shapedListener) Accept() (transport.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return Shape(c, l.net.Params, l.net.clock(), nil, l.net.Stats), nil
}

func (l *shapedListener) Close() error { return l.inner.Close() }
func (l *shapedListener) Addr() string { return l.inner.Addr() }
