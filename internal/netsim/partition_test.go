package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/transport"
)

// startEcho runs an echo server on sn at addr and returns a dialed client
// conn plus a pump channel of everything the client receives. One
// persistent reader, so a timed-out wait never leaves a goroutine behind
// to steal the next frame.
func startEcho(t *testing.T, sn *ShapedNetwork, addr string) (transport.Conn, <-chan string) {
	t.Helper()
	l, err := sn.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(msg); err != nil {
				return
			}
		}
	}()
	c, err := sn.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	got := make(chan string, 64)
	go func() {
		defer close(got)
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			got <- string(msg)
		}
	}()
	return c, got
}

// TestPartitionHealProperty drives a seeded random schedule of
// Isolate/Heal rounds against an echoing shaped network and checks the
// partition contract on every seed:
//
//   - Send never errors — a partition is a blackhole, not a broken pipe.
//   - A frame sent while isolated is never delivered, even after Heal
//     (both directions drop; there is no hidden queue that replays).
//   - A frame sent while healed always arrives, in send order.
//
// Rounds are barriers (each healed frame is awaited before the next
// event), so the properties are exact, not probabilistic.
func TestPartitionHealProperty(t *testing.T) {
	const addr = "mem://part"
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			sn := NewShapedNetwork(transport.NewMemNetwork(), Params{})
			c, got := startEcho(t, sn, addr)

			next := 0
			isolated := false
			for round := 0; round < 30; round++ {
				// Flip the partition state with probability 1/2 each round,
				// so the schedule exercises isolate→isolate, heal→heal and
				// both transitions.
				if rng.Intn(2) == 0 {
					isolated = !isolated
					if isolated {
						sn.Isolate(addr)
					} else {
						sn.Heal(addr)
					}
				}
				msg := fmt.Sprintf("frame-%d", next)
				next++
				if err := c.Send([]byte(msg)); err != nil {
					t.Fatalf("round %d: Send errored (%v), partitions must drop silently", round, err)
				}
				if isolated {
					select {
					case frame := <-got:
						t.Fatalf("round %d: received %q through the partition", round, frame)
					case <-time.After(2 * time.Millisecond):
					}
				} else {
					select {
					case frame := <-got:
						if frame != msg {
							t.Fatalf("round %d: received %q, want %q — dropped frames must not replay", round, frame, msg)
						}
					case <-time.After(time.Second):
						t.Fatalf("round %d: healed frame %q never arrived", round, msg)
					}
				}
			}

			// The final heal restores the path no matter where the schedule
			// left off, and nothing sent during any partition leaks out late.
			sn.Heal(addr)
			if err := c.Send([]byte("final")); err != nil {
				t.Fatal(err)
			}
			select {
			case frame := <-got:
				if frame != "final" {
					t.Fatalf("after final heal got %q, want \"final\" — a partitioned frame replayed", frame)
				}
			case <-time.After(time.Second):
				t.Fatal("path still dead after final heal")
			}
		})
	}
}
