package netsim

import (
	"testing"
	"time"

	"repro/internal/transport"
)

func TestTxTime(t *testing.T) {
	p := Params{Bandwidth: 1e6, PerMessage: 10 * time.Microsecond} // 1 MB/s
	got := p.TxTime(1000)
	want := 10*time.Microsecond + time.Millisecond
	if got != want {
		t.Errorf("TxTime(1000) = %v, want %v", got, want)
	}
}

func TestTxTimeInfiniteBandwidth(t *testing.T) {
	p := Params{PerMessage: 3 * time.Microsecond}
	if got := p.TxTime(1 << 20); got != 3*time.Microsecond {
		t.Errorf("TxTime = %v, want PerMessage only", got)
	}
}

func TestDeliveryTimeMonotonicInSize(t *testing.T) {
	p := Ethernet100()
	prev := time.Duration(0)
	for _, n := range []int{1, 64, 1024, 65536, 1 << 20} {
		d := p.DeliveryTime(n)
		if d < prev {
			t.Errorf("DeliveryTime(%d) = %v decreased", n, d)
		}
		prev = d
	}
}

func TestEthernet100LargeTransferRate(t *testing.T) {
	p := Ethernet100()
	// A 1 MB message should move at roughly link rate: 1 MiB / 12.5 MB/s
	// ≈ 84 ms.
	d := p.DeliveryTime(1 << 20)
	if d < 70*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("1 MiB delivery = %v, want ≈84 ms", d)
	}
}

func TestZeroParamsPassThrough(t *testing.T) {
	a, b := transport.NewPipe("a", "b")
	sa := Shape(a, Params{}, nil, nil, nil)
	sb := Shape(b, Params{}, nil, nil, nil)
	start := time.Now()
	if err := sa.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	msg, err := sb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "hi" {
		t.Errorf("got %q", msg)
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("pass-through took %v", elapsed)
	}
}

func TestShapingDelaysDelivery(t *testing.T) {
	p := Params{Latency: 5 * time.Millisecond}
	a, b := transport.NewPipe("a", "b")
	clk := RealClock{}
	sa := Shape(a, p, clk, nil, nil)
	sb := Shape(b, p, clk, nil, nil)
	start := time.Now()
	if err := sa.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Errorf("latency not enforced: %v", elapsed)
	}
}

func TestBandwidthDelaysSender(t *testing.T) {
	p := Params{Bandwidth: 1e6} // 1 MB/s → 10 KB takes 10 ms
	a, b := transport.NewPipe("a", "b")
	sa := Shape(a, p, nil, nil, nil)
	sb := Shape(b, p, nil, nil, nil)
	go func() {
		for {
			if _, err := sb.Recv(); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if err := sa.Send(make([]byte, 10_000)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Errorf("sender not occupied by transmission: %v", elapsed)
	}
	sa.Close()
}

func TestLinkSerialisesTransmissions(t *testing.T) {
	p := Params{Bandwidth: 1e6}
	link := NewLink(p, RealClock{})
	t1, _ := link.acquire(5000) // 5 ms
	t2, _ := link.acquire(5000) // queued behind the first
	if gap := t2.Sub(t1); gap < 4*time.Millisecond {
		t.Errorf("second transmission not queued: gap %v", gap)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	s.Count(100)
	s.Count(50)
	if s.BytesSent() != 150 || s.MsgsSent() != 2 {
		t.Errorf("stats = %s", s.String())
	}
}

func TestShapedNetworkEndToEnd(t *testing.T) {
	inner := transport.NewMemNetwork()
	sn := NewShapedNetwork(inner, Params{Latency: 2 * time.Millisecond})
	l, err := sn.Listen("mem://svc")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		msg, err := c.Recv()
		if err != nil {
			return
		}
		c.Send(msg)
	}()
	c, err := sn.Dial("mem://svc")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	msg, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "ping" {
		t.Errorf("got %q", msg)
	}
	if rtt := time.Since(start); rtt < 3*time.Millisecond {
		t.Errorf("round trip %v did not pay 2×2 ms latency", rtt)
	}
	if sn.Stats.MsgsSent() != 2 {
		t.Errorf("stats msgs = %d, want 2", sn.Stats.MsgsSent())
	}
}

func TestSharedNICSerialises(t *testing.T) {
	inner := transport.NewMemNetwork()
	sn := NewShapedNetwork(inner, Params{Bandwidth: 1e6})
	sn.SharedNIC = true
	l, err := sn.Listen("mem://nic")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				for {
					if _, err := c.Recv(); err != nil {
						return
					}
				}
			}()
		}
	}()
	c1, err := sn.Dial("mem://nic")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sn.Dial("mem://nic")
	if err != nil {
		t.Fatal(err)
	}
	// Two 5 KB messages on separate conns share the 1 MB/s NIC: the pair
	// must take ≈10 ms, not ≈5 ms.
	start := time.Now()
	done := make(chan struct{}, 2)
	go func() { c1.Send(make([]byte, 5000)); done <- struct{}{} }()
	go func() { c2.Send(make([]byte, 5000)); done <- struct{}{} }()
	<-done
	<-done
	if elapsed := time.Since(start); elapsed < 8*time.Millisecond {
		t.Errorf("shared NIC not serialising: %v", elapsed)
	}
}

func TestLossDelaysButDelivers(t *testing.T) {
	// Loss=1 turns every frame into a "retransmitted" one: delivery is
	// delayed by LossDelay but the message must still arrive — the
	// transports are reliable streams, so loss shows up as tail latency,
	// never as a missing reply.
	p := Params{Loss: 1, LossDelay: 30 * time.Millisecond}
	a, b := transport.NewPipe("a", "b")
	sa := Shape(a, p, nil, nil, nil)
	sb := Shape(b, p, nil, nil, nil)
	start := time.Now()
	if err := sa.Send([]byte("retransmit me")); err != nil {
		t.Fatal(err)
	}
	msg, err := sb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "retransmit me" {
		t.Errorf("got %q", msg)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("lost frame delivered in %v, want >= ~30ms retransmit delay", elapsed)
	}
}

func TestLossZeroIsNoOp(t *testing.T) {
	p := Params{Loss: 0, LossDelay: time.Second}
	if !p.Zero() {
		t.Error("Loss=0 params with only LossDelay set should be Zero")
	}
	a, b := transport.NewPipe("a", "b")
	sa := Shape(a, p, nil, nil, nil)
	sb := Shape(b, p, nil, nil, nil)
	start := time.Now()
	if err := sa.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("Loss=0 delayed delivery by %v", elapsed)
	}
}

func TestLossDelayDefault(t *testing.T) {
	if d := (Params{Loss: 0.5}).lossDelay(); d != DefaultLossDelay {
		t.Errorf("default loss delay = %v, want %v", d, DefaultLossDelay)
	}
	if d := (Params{Loss: 0.5, LossDelay: time.Millisecond}).lossDelay(); d != time.Millisecond {
		t.Errorf("explicit loss delay = %v, want 1ms", d)
	}
}
