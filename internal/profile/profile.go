// Package profile holds the calibrated models of the 2005 runtimes the
// paper measured. We cannot execute Mono 1.x, the Sun JVM 1.4.2 or MPICH
// 1.2.6; their software costs are therefore injected as cost.Model values
// at the communication endpoints and as compute factors in the workload
// kernels. Every constant below is calibrated against a number the paper
// itself reports; EXPERIMENTS.md records the calibration and the resulting
// reproduction quality.
//
// Calibration anchors (paper §4):
//
//   - inter-node round-trip latency: MPI 100 µs, Mono remoting 273 µs,
//     Java RMI 520 µs on 100 Mbit Ethernet (≈ 60 µs of that is wire);
//   - large-message bandwidth order: MPI > Java RMI > Mono 1.1.7, with
//     MPI near link rate;
//   - Mono 1.0.5 and the HTTP channel collapse by roughly an order of
//     magnitude (Fig. 8b);
//   - sequential ray tracer: Mono ≈ 1.4× the JVM time (MS CLR ≈ 1.1×);
//   - sequential prime sieve: Mono ≈ JVM.
package profile

import (
	"time"

	"repro/internal/cost"
	"repro/internal/netsim"
)

// Network returns the paper's testbed link model (100 Mbit switched
// Ethernet).
func Network() netsim.Params { return netsim.Ethernet100() }

// MPICH models the MPI baseline's endpoint costs: a thin, well-optimised
// C library. 4 × 10 µs per-message endpoint charges + ≈ 60 µs of wire give
// the paper's 100 µs round trip; 3 µs/KB keeps 1 MB transfers at ≈ 11.5
// MB/s, just under link rate.
func MPICH() cost.Model {
	return cost.Model{
		PerMessage: 10 * time.Microsecond,
		PerKB:      3 * time.Microsecond,
		PerConnect: 100 * time.Microsecond,
	}
}

// MonoTCP117 models Mono 1.1.7's remoting TCP channel endpoints: moderate
// per-call cost (4 × 53 µs + wire ≈ 273 µs RTT) but a relatively untuned
// copy path (35 µs/KB), which is what drags its large-message bandwidth
// below Java RMI's in Fig. 8a ("the Mono platform is relatively new ... not
// yet so well tuned").
func MonoTCP117() cost.Model {
	return cost.Model{
		PerMessage: 53 * time.Microsecond,
		PerKB:      35 * time.Microsecond,
		PerConnect: 300 * time.Microsecond,
	}
}

// MonoTCP105 models Mono 1.0.5: besides the legacy channel's unpooled
// connections and 1 KiB flushed chunks (mechanised in remoting.LegacyTCP),
// its write path cost an order of magnitude more per byte, collapsing
// bandwidth across the sweep as in Fig. 8b.
func MonoTCP105() cost.Model {
	return cost.Model{
		PerMessage: 150 * time.Microsecond,
		PerKB:      300 * time.Microsecond,
		PerConnect: 500 * time.Microsecond,
	}
}

// MonoHTTP models the Mono HTTP/SOAP channel endpoints: textual
// encode/parse costs per KB on top of the soapfmt expansion, and an HTTP
// handshake per call (no keep-alive).
func MonoHTTP() cost.Model {
	return cost.Model{
		PerMessage: 200 * time.Microsecond,
		PerKB:      80 * time.Microsecond,
		PerConnect: 1 * time.Millisecond,
	}
}

// JavaRMI models the Sun JDK 1.4.2 RMI endpoints: the heaviest per-call
// path of the three (4 × 115 µs + wire ≈ 520 µs RTT) but a well-tuned bulk
// serialisation loop (12 µs/KB), so at large messages it overtakes Mono —
// the crossover visible in Fig. 8a.
func JavaRMI() cost.Model {
	return cost.Model{
		PerMessage: 115 * time.Microsecond,
		PerKB:      12 * time.Microsecond,
		PerConnect: 400 * time.Microsecond,
	}
}

// VM describes a managed runtime's compute speed on the two workload
// kernels, relative to the Sun JVM 1.4.2 (factor 1.0 = JVM speed; larger is
// slower). The paper: "The C# sequential execution time in this particular
// application is 40% superior to the Java version (using the Microsoft
// virtual machine ... it is only 10% superior)" and "running another
// application, a prime number sieve, the Mono execution time is about the
// same as the JVM".
type VM struct {
	Name string
	// RayTracerFactor scales the FP-heavy ray tracer kernel.
	RayTracerFactor float64
	// SieveFactor scales the integer-heavy sieve kernel.
	SieveFactor float64
}

// SunJVM is the Java baseline (factor 1 by definition).
func SunJVM() VM { return VM{Name: "Sun JVM 1.4.2", RayTracerFactor: 1.0, SieveFactor: 1.0} }

// Mono is the Mono 1.1.7 JIT.
func Mono() VM { return VM{Name: "Mono 1.1.7", RayTracerFactor: 1.4, SieveFactor: 1.0} }

// MSCLR is the Microsoft .NET CLR on Windows.
func MSCLR() VM { return VM{Name: "MS CLR 1.1", RayTracerFactor: 1.1, SieveFactor: 1.0} }

// MonoPoolSize is the per-node thread-pool cap used for the ParC# side of
// Fig. 9. Mono's 2005 pool throttled thread injection aggressively; with
// dual-CPU nodes the effective concurrent workers per node hovered around
// the CPU count, which is what starves communication handlers when workers
// compute (paper: "limiting the number of running threads ... reduces the
// overlap among computation and communication").
const MonoPoolSize = 2
