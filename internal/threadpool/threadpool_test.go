package threadpool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunsAllWork(t *testing.T) {
	p := New(4, 0)
	defer p.Close()
	var n atomic.Int64
	const jobs = 100
	for i := 0; i < jobs; i++ {
		if err := p.Submit(func() { n.Add(1) }); err != nil {
			t.Fatal(err)
		}
	}
	p.Wait()
	if n.Load() != jobs {
		t.Errorf("ran %d jobs, want %d", n.Load(), jobs)
	}
}

func TestConcurrencyCap(t *testing.T) {
	const cap = 3
	p := New(cap, 0)
	defer p.Close()
	var cur, peak atomic.Int64
	var mu sync.Mutex
	block := make(chan struct{})
	for i := 0; i < 10; i++ {
		p.Submit(func() {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			<-block
			cur.Add(-1)
		})
	}
	// Wait (with deadline) for the workers to pick jobs up; a fixed
	// sleep flakes when the host is loaded.
	deadline := time.Now().Add(2 * time.Second)
	for cur.Load() != cap && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := cur.Load(); got != cap {
		t.Errorf("running = %d, want exactly the cap %d", got, cap)
	}
	close(block)
	p.Wait()
	if peak.Load() > cap {
		t.Errorf("peak concurrency %d exceeded cap %d", peak.Load(), cap)
	}
}

func TestQueueWaitAccounting(t *testing.T) {
	p := New(1, 0)
	defer p.Close()
	block := make(chan struct{})
	p.Submit(func() { <-block })
	p.Submit(func() {}) // must wait behind the blocker
	time.Sleep(10 * time.Millisecond)
	close(block)
	p.Wait()
	if w := p.Snapshot().TotalQueueWait; w < 5*time.Millisecond {
		t.Errorf("queue wait %v not accounted", w)
	}
}

func TestPanicRecovered(t *testing.T) {
	p := New(2, 0)
	defer p.Close()
	p.Submit(func() { panic("boom") })
	var ok atomic.Bool
	p.Submit(func() { ok.Store(true) })
	p.Wait()
	if !ok.Load() {
		t.Error("pool died after panic")
	}
	if p.Snapshot().Completed != 2 {
		t.Errorf("completed = %d, want 2", p.Snapshot().Completed)
	}
}

func TestPanicsCounted(t *testing.T) {
	p := New(2, 0)
	defer p.Close()
	p.Submit(func() { panic("boom") })
	p.Submit(func() { panic("boom again") })
	p.Submit(func() {})
	p.Wait()
	s := p.Snapshot()
	if s.Panics != 2 {
		t.Errorf("panics = %d, want 2 (recovered panics must be surfaced, not swallowed)", s.Panics)
	}
	if s.Completed != 3 {
		t.Errorf("completed = %d, want 3", s.Completed)
	}
}

// TestWaitReleasesPromptly: Wait must return once work drains without
// relying on a poll interval, including when items finish while Wait is
// already blocked.
func TestWaitReleasesPromptly(t *testing.T) {
	p := New(2, 0)
	defer p.Close()
	release := make(chan struct{})
	for i := 0; i < 4; i++ {
		p.Submit(func() { <-release })
	}
	done := make(chan struct{})
	go func() { p.Wait(); close(done) }()
	select {
	case <-done:
		t.Fatal("Wait returned with items still running")
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake after completion")
	}
}

// TestConcurrentSubmitWaitClose races Submit, Wait and Close under the race
// detector: no deadlock, no lost completions, no double close.
func TestConcurrentSubmitWaitClose(t *testing.T) {
	p := New(4, 0)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// ErrClosed is expected once Close starts.
				p.Submit(func() { ran.Add(1) }) //nolint:errcheck
			}
		}()
	}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p.Wait()
			}
		}()
	}
	wg.Wait()
	p.Wait()
	s := p.Snapshot()
	if s.Completed != s.Submitted {
		t.Errorf("completed %d != submitted %d after Wait", s.Completed, s.Submitted)
	}
	if ran.Load() != s.Completed {
		t.Errorf("ran %d != completed %d", ran.Load(), s.Completed)
	}
	p.Close()
	p.Close()
}

func TestSubmitAfterClose(t *testing.T) {
	p := New(1, 0)
	p.Close()
	if err := p.Submit(func() {}); err != ErrClosed {
		t.Errorf("Submit after close = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := New(1, 0)
	p.Close()
	p.Close() // must not panic
}

func TestCloseDrainsQueue(t *testing.T) {
	p := New(1, 0)
	var n atomic.Int64
	for i := 0; i < 20; i++ {
		p.Submit(func() {
			time.Sleep(time.Millisecond)
			n.Add(1)
		})
	}
	p.Close()
	if n.Load() != 20 {
		t.Errorf("close dropped work: ran %d of 20", n.Load())
	}
}

func TestMinWorkerFloor(t *testing.T) {
	p := New(0, 0)
	defer p.Close()
	if p.MaxWorkers() != 1 {
		t.Errorf("MaxWorkers = %d, want floor of 1", p.MaxWorkers())
	}
}

func TestStatsString(t *testing.T) {
	p := New(2, 0)
	defer p.Close()
	p.Submit(func() {})
	p.Wait()
	s := p.Snapshot()
	if s.Submitted != 1 || s.Completed != 1 {
		t.Errorf("stats = %s", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

// TestStarvationUnderCap reproduces in miniature the paper's observation:
// with a small cap, long-running compute items starve short communication
// items; with a larger cap they do not.
func TestStarvationUnderCap(t *testing.T) {
	run := func(cap int) time.Duration {
		p := New(cap, 0)
		defer p.Close()
		// 4 long compute jobs then 1 short "communication" job.
		for i := 0; i < 4; i++ {
			p.Submit(func() { time.Sleep(20 * time.Millisecond) })
		}
		done := make(chan time.Time, 1)
		start := time.Now()
		p.Submit(func() { done <- time.Now() })
		return (<-done).Sub(start)
	}
	starved := run(1)
	free := run(8)
	if starved < 50*time.Millisecond {
		t.Errorf("cap=1 should starve the short job: waited only %v", starved)
	}
	if free > 20*time.Millisecond {
		t.Errorf("cap=8 should run the short job immediately: waited %v", free)
	}
}
