// Package threadpool implements a bounded worker pool modelled on the .NET
// ThreadPool as shipped by Mono in 2005. The paper attributes part of
// ParC#'s weaker scaling (Fig. 9) to this pool: "limiting the number of
// running threads in parallel applications reduces the overlap among
// computation and communication and also produces starvation in some
// application threads". The pool therefore exposes exactly those knobs —
// a hard cap on concurrently running workers and a FIFO queue whose depth
// and wait times are observable — so experiment A4 can sweep the cap.
package threadpool

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("threadpool: pool closed")

// Pool runs submitted work items on at most MaxWorkers goroutines. Work
// items queue FIFO when all workers are busy. The zero value is not usable;
// construct with New.
type Pool struct {
	max   int
	queue chan func()
	wg    sync.WaitGroup

	mu      sync.Mutex   // protects cond only; Submit never takes it
	cond    *sync.Cond   // signals work-item completion to Wait
	waiters atomic.Int64 // Wait calls currently blocked on cond
	closed  atomic.Bool
	// closeMu serializes Close against in-flight Submits: Submit holds the
	// read side between its closed-check and its queue send, so Close (write
	// side) waits them out before closing the queue (sending on a closed
	// channel would panic). Submits never contend with each other on it.
	closeMu sync.RWMutex

	running   atomic.Int64
	completed atomic.Int64
	submitted atomic.Int64
	panics    atomic.Int64
	// queuedNanos accumulates time items spent waiting in the queue, the
	// starvation signal the paper describes.
	queuedNanos atomic.Int64
	maxQueueLen atomic.Int64
}

// New creates a pool with the given worker cap and queue capacity. Mono's
// 2005 default was roughly 25 workers per CPU with a modest queue; callers
// model specific runtimes by choosing maxWorkers. queueCap <= 0 selects an
// effectively unbounded queue (the .NET pool never rejected work, it just
// starved it).
func New(maxWorkers, queueCap int) *Pool {
	if maxWorkers < 1 {
		maxWorkers = 1
	}
	if queueCap <= 0 {
		queueCap = 1 << 16
	}
	p := &Pool{
		max:   maxWorkers,
		queue: make(chan func(), queueCap),
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < maxWorkers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for job := range p.queue {
		p.running.Add(1)
		job()
		p.running.Add(-1)
		p.completed.Add(1)
		// Wake blocked Wait calls, touching the lock only when someone is
		// actually waiting. Atomics are sequentially consistent: if this
		// load misses a waiter's increment, that waiter's later re-check
		// of completed necessarily observes the Add above, so it does not
		// sleep on this completion. The common no-waiter case costs two
		// atomic ops and no lock.
		if p.waiters.Load() > 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
	}
}

// Submit enqueues f. It blocks when the queue is full and returns ErrClosed
// after Close. The panic of a work item is recovered, counted in
// Stats.Panics and accounted as a completion so one bad request cannot kill
// a server dispatch loop.
func (p *Pool) Submit(f func()) error {
	// Read lock only: concurrent Submits share it freely (no cache-line
	// ping-pong beyond the RWMutex reader count); Close takes the write
	// side after flagging closed, which waits out every Submit already
	// past the check below.
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed.Load() {
		return ErrClosed
	}
	p.submitted.Add(1)
	enqueued := time.Now()
	wrapped := func() {
		p.queuedNanos.Add(time.Since(enqueued).Nanoseconds())
		defer func() {
			if r := recover(); r != nil {
				p.panics.Add(1)
			}
		}()
		f()
	}
	// High-water mark via CAS; approximate under concurrency (len is read
	// before the send) but monotone and lock-free.
	if l := int64(len(p.queue) + 1); l > p.maxQueueLen.Load() {
		for {
			cur := p.maxQueueLen.Load()
			if l <= cur || p.maxQueueLen.CompareAndSwap(cur, l) {
				break
			}
		}
	}
	p.queue <- wrapped
	return nil
}

// TrySubmit enqueues f without blocking: it reports false when the pool is
// closed or its queue is full, leaving the caller to run f elsewhere.
// Completion-driven futures use it for continuation overflow, where
// blocking the delivering goroutine behind a full queue would stall every
// caller sharing that completion path.
func (p *Pool) TrySubmit(f func()) bool {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed.Load() {
		return false
	}
	p.submitted.Add(1)
	enqueued := time.Now()
	wrapped := func() {
		p.queuedNanos.Add(time.Since(enqueued).Nanoseconds())
		defer func() {
			if r := recover(); r != nil {
				p.panics.Add(1)
			}
		}()
		f()
	}
	select {
	case p.queue <- wrapped:
		return true
	default:
		p.submitted.Add(-1)
		// A Wait that observed the transient overcount must re-check, or
		// it could sleep on a completion that will never come.
		if p.waiters.Load() > 0 {
			p.mu.Lock()
			p.cond.Broadcast()
			p.mu.Unlock()
		}
		return false
	}
}

// Wait blocks until every submitted item has completed. It does not close
// the pool. Completion is signalled by the workers through a condition
// variable — no polling, no busy-spin.
func (p *Pool) Wait() {
	p.mu.Lock()
	p.waiters.Add(1)
	for p.completed.Load() < p.submitted.Load() {
		p.cond.Wait()
	}
	p.waiters.Add(-1)
	p.mu.Unlock()
}

// Close stops accepting work, waits for queued work to drain and releases
// the workers. Safe to call concurrently with Submit: a Submit that passed
// its closed-check first completes its enqueue (the workers still drain it)
// before the queue closes.
func (p *Pool) Close() {
	if p.closed.Swap(true) {
		return
	}
	// Taking the write lock waits out every Submit that passed its
	// closed-check (they hold the read side until their send completes;
	// the workers keep draining, so those sends finish). New Submits see
	// closed and return ErrClosed.
	p.closeMu.Lock()
	//lint:ignore SA2001 the empty critical section IS the barrier
	p.closeMu.Unlock()
	close(p.queue)
	p.wg.Wait()
}

// MaxWorkers returns the configured worker cap.
func (p *Pool) MaxWorkers() int { return p.max }

// Stats is a snapshot of pool accounting.
type Stats struct {
	MaxWorkers  int
	Running     int64
	Submitted   int64
	Completed   int64
	QueueLen    int
	MaxQueueLen int64
	// Panics counts work items that panicked; each is recovered (the
	// worker survives) but surfaced here instead of being silently
	// swallowed.
	Panics int64
	// TotalQueueWait is the cumulative time items waited before a worker
	// picked them up — the starvation measure for experiment A4.
	TotalQueueWait time.Duration
}

// Snapshot returns current statistics.
func (p *Pool) Snapshot() Stats {
	return Stats{
		MaxWorkers:     p.max,
		Running:        p.running.Load(),
		Submitted:      p.submitted.Load(),
		Completed:      p.completed.Load(),
		QueueLen:       len(p.queue),
		MaxQueueLen:    p.maxQueueLen.Load(),
		Panics:         p.panics.Load(),
		TotalQueueWait: time.Duration(p.queuedNanos.Load()),
	}
}

// String implements fmt.Stringer for diagnostics.
func (s Stats) String() string {
	return fmt.Sprintf("workers=%d running=%d submitted=%d completed=%d queue=%d maxqueue=%d panics=%d wait=%v",
		s.MaxWorkers, s.Running, s.Submitted, s.Completed, s.QueueLen, s.MaxQueueLen, s.Panics, s.TotalQueueWait)
}
