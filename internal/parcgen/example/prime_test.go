package example

import (
	"context"
	"testing"

	"repro/parc"
)

// TestGeneratedProxyEndToEnd drives the parcgen-generated PO against a real
// 2-node cluster: the paper's PrimeServer example, typed context-aware
// wrappers and all — no string-keyed method call in sight.
func TestGeneratedProxyEndToEnd(t *testing.T) {
	ctx := context.Background()
	cl, err := parc.StartCluster(parc.WithNodes(2))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < cl.Size(); i++ {
		RegisterPrimeServer(cl.Node(i))
	}
	po, err := NewPrimeServer(cl.Entry())
	if err != nil {
		t.Fatal(err)
	}
	// Asynchronous posts (void method), like the paper's delegate calls.
	if err := po.Process(ctx, []int{2, 3, 4, 5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := po.Process(ctx, []int{7, 8, 9, 10, 11}); err != nil {
		t.Fatal(err)
	}
	// Synchronous typed call sees all prior posts.
	count, err := po.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 { // 2 3 5 7 11
		t.Errorf("Count = %d, want 5", count)
	}
	primes, err := po.Primes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != 5 || primes[0] != 2 || primes[4] != 11 {
		t.Errorf("Primes = %v", primes)
	}
	// Typed future variant.
	got, err := po.BeginCount(ctx).Get(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("BeginCount = %d, want 5", got)
	}
	// Reference passing: attach on the other node and post from there.
	po2 := AttachPrimeServer(cl.Node(1), po.Ref())
	if err := po2.Process(ctx, []int{13}); err != nil {
		t.Fatal(err)
	}
	if err := po2.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	count, err = po.Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Errorf("Count after attached post = %d, want 6", count)
	}
}
