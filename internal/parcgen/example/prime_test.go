package example

import (
	"testing"

	"repro/parc"
)

// TestGeneratedProxyEndToEnd drives the parcgen-generated PO against a real
// 2-node cluster: the paper's PrimeServer example, typed wrappers and all.
func TestGeneratedProxyEndToEnd(t *testing.T) {
	cl, err := parc.NewCluster(parc.ClusterConfig{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < cl.Size(); i++ {
		RegisterPrimeServer(cl.Node(i))
	}
	po, err := NewPrimeServer(cl.Entry())
	if err != nil {
		t.Fatal(err)
	}
	// Asynchronous posts (void method), like the paper's delegate calls.
	po.Process([]int{2, 3, 4, 5, 6})
	po.Process([]int{7, 8, 9, 10, 11})
	// Synchronous typed call sees all prior posts.
	count, err := po.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 { // 2 3 5 7 11
		t.Errorf("Count = %d, want 5", count)
	}
	primes, err := po.Primes()
	if err != nil {
		t.Fatal(err)
	}
	if len(primes) != 5 || primes[0] != 2 || primes[4] != 11 {
		t.Errorf("Primes = %v", primes)
	}
	// Future variant.
	f := po.BeginCount()
	v, err := f.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := parc.As[int](v, nil); err != nil || got != 5 {
		t.Errorf("BeginCount = %v, %v", got, err)
	}
	// Reference passing: attach on the other node and post from there.
	po2 := AttachPrimeServer(cl.Node(1), po.Ref())
	po2.Process([]int{13})
	po2.Wait()
	count, err = po.Count()
	if err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Errorf("Count after attached post = %d, want 6", count)
	}
}
