// Package parcgen is the reproduction of the ParC# preprocessor (paper
// §3.2): a source-to-source generator that turns annotated classes into
// proxy-object (PO) code. The C# preprocessor "analyses the application —
// retrieving information about the declared parallel objects — and
// generates code for remote object creation and remote method invocation"
// (Figs. 4–6); parcgen does the same for Go.
//
// Usage: mark a struct type with the directive comment
//
//	//parc:parallel
//	type PrimeServer struct{ ... }
//
// and run cmd/parcgen over the file (or a go:generate line). For every
// marked type T the generator emits, into <file>_parc.go:
//
//   - RegisterT(rt) — the per-node factory registration (paper Fig. 6's
//     generated RemoteFactory + boot registration);
//   - NewT(rt) (*TPO, error) — PO creation through the object manager
//     (Fig. 5's generated constructor);
//   - TPO with one typed wrapper per exported method: void methods become
//     asynchronous posts (Fig. 4's delegate BeginInvoke), value-returning
//     methods become synchronous invokes plus BeginM asynchronous variants
//     returning futures.
package parcgen

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/printer"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Directive is the comment that marks a parallel-object class.
const Directive = "parc:parallel"

// Class describes one annotated type and its wire-callable methods.
type Class struct {
	Name    string
	Methods []Method
}

// Method is one exported method eligible for remote invocation.
type Method struct {
	Name    string
	Params  []Param
	Results []string // rendered result types, excluding a trailing error
	HasErr  bool     // trailing error result present
}

// Param is a typed parameter.
type Param struct {
	Name string
	Type string
}

// File is the analysis result of one source file.
type File struct {
	Package string
	Classes []Class
	// Imports are the source imports referenced by the generated
	// signatures (path, optional alias).
	Imports []ImportSpec
}

// ImportSpec is one import retained in the generated file.
type ImportSpec struct {
	Alias string
	Path  string
}

// Analyze parses src (file name used for positions only) and extracts the
// annotated classes.
func Analyze(filename string, src []byte) (*File, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parcgen: parse %s: %w", filename, err)
	}
	out := &File{Package: f.Name.Name}

	marked := map[string]bool{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			if hasDirective(gd.Doc) || hasDirective(ts.Doc) || hasDirective(ts.Comment) {
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					return nil, fmt.Errorf("parcgen: %s: directive on non-struct type %s", filename, ts.Name.Name)
				}
				marked[ts.Name.Name] = true
			}
		}
	}
	if len(marked) == 0 {
		return out, nil
	}

	methods := map[string][]Method{}
	usedPkgs := map[string]bool{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
			continue
		}
		recv := receiverType(fd.Recv.List[0].Type)
		if recv == "" || !marked[recv] {
			continue
		}
		if !fd.Name.IsExported() {
			continue
		}
		m, ok, err := analyzeMethod(fset, fd, usedPkgs)
		if err != nil {
			return nil, fmt.Errorf("parcgen: %s: method %s.%s: %w", filename, recv, fd.Name.Name, err)
		}
		if ok {
			methods[recv] = append(methods[recv], m)
		}
	}

	names := make([]string, 0, len(marked))
	for n := range marked {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Classes = append(out.Classes, Class{Name: n, Methods: methods[n]})
	}
	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		name := importName(imp)
		if usedPkgs[name] {
			alias := ""
			if imp.Name != nil {
				alias = imp.Name.Name
			}
			out.Imports = append(out.Imports, ImportSpec{Alias: alias, Path: path})
		}
	}
	return out, nil
}

func hasDirective(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.TrimSpace(text) == Directive {
			return true
		}
	}
	return false
}

func receiverType(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

func importName(imp *ast.ImportSpec) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	path, _ := strconv.Unquote(imp.Path.Value)
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

var errType = "error"

// analyzeMethod extracts a wire-callable method; ok=false skips methods the
// runtime cannot dispatch (variadic, >1 non-error result).
func analyzeMethod(fset *token.FileSet, fd *ast.FuncDecl, usedPkgs map[string]bool) (Method, bool, error) {
	m := Method{Name: fd.Name.Name}
	ft := fd.Type
	if ft.Params != nil {
		idx := 0
		for _, field := range ft.Params.List {
			if _, variadic := field.Type.(*ast.Ellipsis); variadic {
				return m, false, nil
			}
			typ := renderExpr(fset, field.Type)
			collectPkgs(field.Type, usedPkgs)
			if len(field.Names) == 0 {
				m.Params = append(m.Params, Param{Name: fmt.Sprintf("a%d", idx), Type: typ})
				idx++
				continue
			}
			for _, name := range field.Names {
				pname := name.Name
				if pname == "_" || pname == "" {
					pname = fmt.Sprintf("a%d", idx)
				}
				m.Params = append(m.Params, Param{Name: pname, Type: typ})
				idx++
			}
		}
	}
	if ft.Results != nil {
		var rendered []string
		for _, field := range ft.Results.List {
			typ := renderExpr(fset, field.Type)
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				rendered = append(rendered, typ)
			}
			collectPkgs(field.Type, usedPkgs)
		}
		if len(rendered) > 0 && rendered[len(rendered)-1] == errType {
			m.HasErr = true
			rendered = rendered[:len(rendered)-1]
		}
		if len(rendered) > 1 {
			return m, false, nil // dispatcher supports at most one value
		}
		m.Results = rendered
	}
	return m, true, nil
}

func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return buf.String()
}

func collectPkgs(e ast.Expr, used map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				used[id.Name] = true
			}
		}
		return true
	})
}

// Generate emits the PO source for an analysed file. The class's wire name
// is "<package>.<Type>", matching what RegisterT registers.
func Generate(f *File) ([]byte, error) {
	if len(f.Classes) == 0 {
		return nil, fmt.Errorf("parcgen: no //%s types found", Directive)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "// Code generated by parcgen; DO NOT EDIT.\n")
	fmt.Fprintf(&b, "// Proxy objects for the SCOOPP runtime (paper Figs. 4-6).\n\n")
	fmt.Fprintf(&b, "package %s\n\n", f.Package)
	fmt.Fprintf(&b, "import (\n")
	fmt.Fprintf(&b, "\t\"repro/parc\"\n")
	for _, imp := range f.Imports {
		if imp.Alias != "" {
			fmt.Fprintf(&b, "\t%s %q\n", imp.Alias, imp.Path)
		} else {
			fmt.Fprintf(&b, "\t%q\n", imp.Path)
		}
	}
	fmt.Fprintf(&b, ")\n\n")

	for _, c := range f.Classes {
		class := f.Package + "." + c.Name
		fmt.Fprintf(&b, "// %sPO is the proxy object (PO) for parallel objects of class %q.\n", c.Name, class)
		fmt.Fprintf(&b, "type %sPO struct {\n\tp *parc.Proxy\n}\n\n", c.Name)

		fmt.Fprintf(&b, "// Register%s registers the %s factory on a node; call it on every\n// node before creating objects (the paper's per-node boot registration).\n", c.Name, c.Name)
		fmt.Fprintf(&b, "func Register%s(rt *parc.Runtime) {\n", c.Name)
		fmt.Fprintf(&b, "\trt.RegisterClass(%q, func() any { return new(%s) })\n}\n\n", class, c.Name)

		fmt.Fprintf(&b, "// New%s creates a parallel %s through the object manager.\n", c.Name, c.Name)
		fmt.Fprintf(&b, "func New%s(rt *parc.Runtime) (*%sPO, error) {\n", c.Name, c.Name)
		fmt.Fprintf(&b, "\tp, err := rt.NewParallelObject(%q)\n", class)
		fmt.Fprintf(&b, "\tif err != nil {\n\t\treturn nil, err\n\t}\n")
		fmt.Fprintf(&b, "\treturn &%sPO{p: p}, nil\n}\n\n", c.Name)

		fmt.Fprintf(&b, "// Attach%s binds a received reference to a usable proxy.\n", c.Name)
		fmt.Fprintf(&b, "func Attach%s(rt *parc.Runtime, ref parc.ProxyRef) *%sPO {\n", c.Name, c.Name)
		fmt.Fprintf(&b, "\treturn &%sPO{p: rt.Attach(ref)}\n}\n\n", c.Name)

		fmt.Fprintf(&b, "// Proxy exposes the underlying dynamic proxy.\n")
		fmt.Fprintf(&b, "func (po *%sPO) Proxy() *parc.Proxy { return po.p }\n\n", c.Name)
		fmt.Fprintf(&b, "// Ref returns a wire-encodable reference to the object.\n")
		fmt.Fprintf(&b, "func (po *%sPO) Ref() parc.ProxyRef { return po.p.Ref() }\n\n", c.Name)
		fmt.Fprintf(&b, "// Wait blocks until all asynchronous calls have executed.\n")
		fmt.Fprintf(&b, "func (po *%sPO) Wait() { po.p.Wait() }\n\n", c.Name)

		for _, m := range c.Methods {
			genMethod(&b, c.Name, m)
		}
	}
	src, err := format.Source(b.Bytes())
	if err != nil {
		return nil, fmt.Errorf("parcgen: generated code does not format: %w\n%s", err, b.String())
	}
	return src, nil
}

func genMethod(b *bytes.Buffer, typ string, m Method) {
	params := make([]string, len(m.Params))
	args := make([]string, 0, len(m.Params)+1)
	args = append(args, strconv.Quote(m.Name))
	for i, p := range m.Params {
		params[i] = p.Name + " " + p.Type
		args = append(args, p.Name)
	}
	paramList := strings.Join(params, ", ")
	argList := strings.Join(args, ", ")

	if len(m.Results) == 0 {
		// Void (possibly error-only) methods are asynchronous — the
		// paper's delegate BeginInvoke path (Fig. 4).
		fmt.Fprintf(b, "// %s invokes the method asynchronously (no result), as the\n// preprocessor's delegate-based PO did.\n", m.Name)
		fmt.Fprintf(b, "func (po *%sPO) %s(%s) {\n\tpo.p.Post(%s)\n}\n\n", typ, m.Name, paramList, argList)
		fmt.Fprintf(b, "// %sSync invokes the method synchronously and reports the error.\n", m.Name)
		fmt.Fprintf(b, "func (po *%sPO) %sSync(%s) error {\n\t_, err := po.p.Invoke(%s)\n\treturn err\n}\n\n",
			typ, m.Name, paramList, argList)
		return
	}
	res := m.Results[0]
	fmt.Fprintf(b, "// %s invokes the method synchronously and returns its result.\n", m.Name)
	fmt.Fprintf(b, "func (po *%sPO) %s(%s) (%s, error) {\n", typ, m.Name, paramList, res)
	fmt.Fprintf(b, "\treturn parc.As[%s](po.p.Invoke(%s))\n}\n\n", res, argList)
	fmt.Fprintf(b, "// Begin%s starts the call asynchronously and returns a future.\n", m.Name)
	fmt.Fprintf(b, "func (po *%sPO) Begin%s(%s) *parc.Future {\n\treturn po.p.InvokeAsync(%s)\n}\n\n",
		typ, m.Name, paramList, argList)
}

// GenerateFile is the single-call convenience used by cmd/parcgen.
func GenerateFile(filename string, src []byte) ([]byte, error) {
	f, err := Analyze(filename, src)
	if err != nil {
		return nil, err
	}
	return Generate(f)
}
