// Package parcgen is the reproduction of the ParC# preprocessor (paper
// §3.2): a source-to-source generator that turns annotated classes into
// proxy-object (PO) code. The C# preprocessor "analyses the application —
// retrieving information about the declared parallel objects — and
// generates code for remote object creation and remote method invocation"
// (Figs. 4–6); parcgen does the same for Go.
//
// Usage: mark a struct type with the directive comment
//
//	//parc:parallel
//	type PrimeServer struct{ ... }
//
// and run cmd/parcgen over the file (or a go:generate line). For every
// marked type T the generator emits, into <file>_parc.go:
//
//   - RegisterT(rt) — the per-node factory registration (paper Fig. 6's
//     generated RemoteFactory + boot registration);
//   - NewT(rt) (*TPO, error) — PO creation through the object manager
//     (Fig. 5's generated constructor);
//   - TPO, a typed proxy wrapping parc.Object[T], with one context-aware
//     wrapper per exported method: void methods become asynchronous sends
//     (Fig. 4's delegate BeginInvoke), value-returning methods become
//     synchronous typed calls plus BeginM asynchronous variants returning
//     parc.Result futures.
//
// A method whose first parameter is a context.Context receives the
// caller's context there (injected on the hosting node, carrying the
// caller's deadline); it is not part of the wire arguments.
//
// Two further artefacts make the runtime's hot paths reflection-free:
//
//   - every generated class also gets typed invoker thunks, registered via
//     parc.RegisterInvokers, so server-side dispatch binds arguments with
//     type assertions and calls the method directly instead of through
//     reflect.Value.Call;
//   - plain message structs annotated //parc:wire get generated
//     MarshalWire/UnmarshalWire codec methods (byte-compatible with the
//     reflective binfmt encoder) plus their wire-registry registration,
//     removing reflection from serialisation of those types.
package parcgen

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/printer"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Directive is the comment that marks a parallel-object class.
const Directive = "parc:parallel"

// WireDirective is the comment that marks a plain message struct for
// generated-codec emission: the generator writes MarshalWire/UnmarshalWire
// methods plus a registration init, giving the type a zero-reflection
// binfmt fast path (byte-compatible with the reflective encoder).
const WireDirective = "parc:wire"

// Class describes one annotated type and its wire-callable methods.
type Class struct {
	Name    string
	Methods []Method
}

// Method is one exported method eligible for remote invocation.
type Method struct {
	Name    string
	Params  []Param  // wire parameters (a leading context.Context excluded)
	Results []string // rendered result types, excluding a trailing error
	HasErr  bool     // trailing error result present
	HasCtx  bool     // leading context.Context parameter present
}

// Param is a typed parameter.
type Param struct {
	Name string
	Type string
}

// WireField is one exported field of a //parc:wire struct.
type WireField struct {
	Name string
	Type string
}

// WireStruct is one //parc:wire message type: a plain struct whose exported
// fields get a generated codec.
type WireStruct struct {
	Name string
	// Fields are the exported fields in wire (alphabetical) order,
	// matching the reflective encoder's deterministic field ordering.
	Fields []WireField
}

// File is the analysis result of one source file.
type File struct {
	Package string
	Classes []Class
	// WireTypes are the //parc:wire structs receiving generated codecs.
	WireTypes []WireStruct
	// Imports are the source imports referenced by the generated
	// signatures (path, optional alias).
	Imports []ImportSpec
}

// ImportSpec is one import retained in the generated file.
type ImportSpec struct {
	Alias string
	Path  string
}

// Analyze parses src (file name used for positions only) and extracts the
// annotated classes.
func Analyze(filename string, src []byte) (*File, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parcgen: parse %s: %w", filename, err)
	}
	out := &File{Package: f.Name.Name}

	marked := map[string]bool{}
	wireMarked := map[string]*ast.StructType{}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.TYPE {
			continue
		}
		for _, spec := range gd.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok {
				continue
			}
			st, isStruct := ts.Type.(*ast.StructType)
			if hasDirective(Directive, gd.Doc) || hasDirective(Directive, ts.Doc) || hasDirective(Directive, ts.Comment) {
				if !isStruct {
					return nil, fmt.Errorf("parcgen: %s: directive on non-struct type %s", filename, ts.Name.Name)
				}
				marked[ts.Name.Name] = true
			}
			if hasDirective(WireDirective, gd.Doc) || hasDirective(WireDirective, ts.Doc) || hasDirective(WireDirective, ts.Comment) {
				if !isStruct {
					return nil, fmt.Errorf("parcgen: %s: wire directive on non-struct type %s", filename, ts.Name.Name)
				}
				wireMarked[ts.Name.Name] = st
			}
		}
	}
	if len(marked) == 0 && len(wireMarked) == 0 {
		return out, nil
	}

	methods := map[string][]Method{}
	usedPkgs := map[string]bool{}
	// ctxName is the local name the source file gives the context package
	// (usually "context", but an alias is honoured).
	ctxName := "context"
	for _, imp := range f.Imports {
		if path, _ := strconv.Unquote(imp.Path.Value); path == "context" && imp.Name != nil {
			ctxName = imp.Name.Name
		}
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
			continue
		}
		recv := receiverType(fd.Recv.List[0].Type)
		if recv == "" || !marked[recv] {
			continue
		}
		if !fd.Name.IsExported() {
			continue
		}
		m, ok, err := analyzeMethod(fset, fd, usedPkgs, ctxName)
		if err != nil {
			return nil, fmt.Errorf("parcgen: %s: method %s.%s: %w", filename, recv, fd.Name.Name, err)
		}
		if ok {
			methods[recv] = append(methods[recv], m)
		}
	}

	names := make([]string, 0, len(marked))
	for n := range marked {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		out.Classes = append(out.Classes, Class{Name: n, Methods: methods[n]})
	}

	wireNames := make([]string, 0, len(wireMarked))
	for n := range wireMarked {
		wireNames = append(wireNames, n)
	}
	sort.Strings(wireNames)
	for _, n := range wireNames {
		ws, err := analyzeWireStruct(fset, n, wireMarked[n], usedPkgs)
		if err != nil {
			return nil, fmt.Errorf("parcgen: %s: %w", filename, err)
		}
		out.WireTypes = append(out.WireTypes, ws)
	}

	for _, imp := range f.Imports {
		path, _ := strconv.Unquote(imp.Path.Value)
		name := importName(imp)
		if usedPkgs[name] {
			alias := ""
			if imp.Name != nil {
				alias = imp.Name.Name
			}
			out.Imports = append(out.Imports, ImportSpec{Alias: alias, Path: path})
		}
	}
	return out, nil
}

func hasDirective(directive string, cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimPrefix(c.Text, "//")
		if strings.TrimSpace(text) == directive {
			return true
		}
	}
	return false
}

// analyzeWireStruct extracts the exported fields of a //parc:wire struct in
// wire (alphabetical) order. Embedded fields are rejected: the reflective
// encoder treats them as ordinary named fields of the outer struct, which a
// generated codec cannot reproduce without flattening rules nobody needs
// for message types.
func analyzeWireStruct(fset *token.FileSet, name string, st *ast.StructType, usedPkgs map[string]bool) (WireStruct, error) {
	ws := WireStruct{Name: name}
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			return ws, fmt.Errorf("wire struct %s: embedded fields are not supported", name)
		}
		typ := renderExpr(fset, field.Type)
		for _, fn := range field.Names {
			if !fn.IsExported() {
				continue
			}
			ws.Fields = append(ws.Fields, WireField{Name: fn.Name, Type: typ})
			collectPkgs(field.Type, usedPkgs)
		}
	}
	sort.Slice(ws.Fields, func(i, j int) bool { return ws.Fields[i].Name < ws.Fields[j].Name })
	return ws, nil
}

func receiverType(expr ast.Expr) string {
	switch t := expr.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

func importName(imp *ast.ImportSpec) string {
	if imp.Name != nil {
		return imp.Name.Name
	}
	path, _ := strconv.Unquote(imp.Path.Value)
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

var errType = "error"

// analyzeMethod extracts a wire-callable method; ok=false skips methods the
// runtime cannot dispatch (variadic, >1 non-error result). ctxName is the
// source file's local name for the context package.
func analyzeMethod(fset *token.FileSet, fd *ast.FuncDecl, usedPkgs map[string]bool, ctxName string) (Method, bool, error) {
	m := Method{Name: fd.Name.Name}
	ft := fd.Type
	if ft.Params != nil {
		type paramExpr struct {
			Param
			expr ast.Expr
		}
		var params []paramExpr
		idx := 0
		for _, field := range ft.Params.List {
			if _, variadic := field.Type.(*ast.Ellipsis); variadic {
				return m, false, nil
			}
			typ := renderExpr(fset, field.Type)
			if len(field.Names) == 0 {
				params = append(params, paramExpr{Param{Name: fmt.Sprintf("a%d", idx), Type: typ}, field.Type})
				idx++
				continue
			}
			for _, name := range field.Names {
				pname := name.Name
				if pname == "_" || pname == "" {
					pname = fmt.Sprintf("a%d", idx)
				}
				params = append(params, paramExpr{Param{Name: pname, Type: typ}, field.Type})
				idx++
			}
		}
		if len(params) > 0 && params[0].Type == ctxName+".Context" {
			// The runtime injects the request context on the hosting
			// node; the parameter never travels as a wire argument (and
			// must not mark the context import as used).
			params = params[1:]
			m.HasCtx = true
		}
		for _, p := range params {
			collectPkgs(p.expr, usedPkgs)
			m.Params = append(m.Params, p.Param)
		}
	}
	if ft.Results != nil {
		var rendered []string
		for _, field := range ft.Results.List {
			typ := renderExpr(fset, field.Type)
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				rendered = append(rendered, typ)
			}
			collectPkgs(field.Type, usedPkgs)
		}
		if len(rendered) > 0 && rendered[len(rendered)-1] == errType {
			m.HasErr = true
			rendered = rendered[:len(rendered)-1]
		}
		if len(rendered) > 1 {
			return m, false, nil // dispatcher supports at most one value
		}
		m.Results = rendered
	}
	return m, true, nil
}

func renderExpr(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	printer.Fprint(&buf, fset, e)
	return buf.String()
}

func collectPkgs(e ast.Expr, used map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok {
				used[id.Name] = true
			}
		}
		return true
	})
}

// Generate emits the PO source for an analysed file. The class's wire name
// is "<package>.<Type>", matching what RegisterT registers. //parc:wire
// structs additionally receive generated MarshalWire/UnmarshalWire codecs
// (byte-compatible with the reflective binfmt encoder) plus their
// registration, and every class gets zero-reflection invoker thunks.
func Generate(f *File) ([]byte, error) {
	if len(f.Classes) == 0 && len(f.WireTypes) == 0 {
		return nil, fmt.Errorf("parcgen: no //%s or //%s types found", Directive, WireDirective)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "// Code generated by parcgen; DO NOT EDIT.\n")
	fmt.Fprintf(&b, "// Typed proxy objects for the SCOOPP runtime (paper Figs. 4-6).\n\n")
	fmt.Fprintf(&b, "package %s\n\n", f.Package)
	fmt.Fprintf(&b, "import (\n")
	reserved := map[string]bool{}
	if len(f.Classes) > 0 {
		fmt.Fprintf(&b, "\t\"context\"\n\n")
		fmt.Fprintf(&b, "\t\"repro/parc\"\n")
		reserved["context"] = true
		reserved["repro/parc"] = true
	}
	if len(f.WireTypes) > 0 {
		fmt.Fprintf(&b, "\t\"repro/internal/wire\"\n")
		reserved["repro/internal/wire"] = true
	}
	for _, imp := range f.Imports {
		if imp.Alias == "" && reserved[imp.Path] {
			continue // already emitted above; aliased imports stay legal
		}
		if imp.Alias != "" {
			fmt.Fprintf(&b, "\t%s %q\n", imp.Alias, imp.Path)
		} else {
			fmt.Fprintf(&b, "\t%q\n", imp.Path)
		}
	}
	fmt.Fprintf(&b, ")\n\n")

	for _, c := range f.Classes {
		class := f.Package + "." + c.Name
		fmt.Fprintf(&b, "// %sPO is the typed proxy object (PO) for parallel objects of class %q.\n", c.Name, class)
		fmt.Fprintf(&b, "type %sPO struct {\n\to *parc.Object[%s]\n}\n\n", c.Name, c.Name)

		fmt.Fprintf(&b, "// Register%s registers the %s factory on a node; call it on every\n// node before creating objects (the paper's per-node boot registration).\n", c.Name, c.Name)
		fmt.Fprintf(&b, "func Register%s(rt *parc.Runtime) {\n", c.Name)
		fmt.Fprintf(&b, "\tparc.RegisterAt[%s](rt, %q)\n}\n\n", c.Name, class)

		fmt.Fprintf(&b, "// New%s creates a parallel %s through the object manager.\n", c.Name, c.Name)
		fmt.Fprintf(&b, "func New%s(rt *parc.Runtime) (*%sPO, error) {\n", c.Name, c.Name)
		fmt.Fprintf(&b, "\to, err := parc.NewAt[%s](rt, %q)\n", c.Name, class)
		fmt.Fprintf(&b, "\tif err != nil {\n\t\treturn nil, err\n\t}\n")
		fmt.Fprintf(&b, "\treturn &%sPO{o: o}, nil\n}\n\n", c.Name)

		fmt.Fprintf(&b, "// Attach%s binds a received reference to a usable proxy.\n", c.Name)
		fmt.Fprintf(&b, "func Attach%s(rt *parc.Runtime, ref parc.ProxyRef) *%sPO {\n", c.Name, c.Name)
		fmt.Fprintf(&b, "\treturn &%sPO{o: parc.Bind[%s](rt, ref)}\n}\n\n", c.Name, c.Name)

		fmt.Fprintf(&b, "// Object exposes the typed handle.\n")
		fmt.Fprintf(&b, "func (po *%sPO) Object() *parc.Object[%s] { return po.o }\n\n", c.Name, c.Name)
		fmt.Fprintf(&b, "// Proxy exposes the underlying dynamic proxy.\n")
		fmt.Fprintf(&b, "func (po *%sPO) Proxy() *parc.Proxy { return po.o.Proxy() }\n\n", c.Name)
		fmt.Fprintf(&b, "// Ref returns a wire-encodable reference to the object.\n")
		fmt.Fprintf(&b, "func (po *%sPO) Ref() parc.ProxyRef { return po.o.Ref() }\n\n", c.Name)
		fmt.Fprintf(&b, "// Wait blocks until all asynchronous calls have executed or ctx ends.\n")
		fmt.Fprintf(&b, "func (po *%sPO) Wait(ctx context.Context) error { return po.o.Wait(ctx) }\n\n", c.Name)
		fmt.Fprintf(&b, "// Destroy releases the parallel object.\n")
		fmt.Fprintf(&b, "func (po *%sPO) Destroy(ctx context.Context) error { return po.o.Destroy(ctx) }\n\n", c.Name)

		for _, m := range c.Methods {
			genMethod(&b, c.Name, m)
		}
		genInvokers(&b, c)
	}
	for _, ws := range f.WireTypes {
		genWireCodec(&b, f.Package, ws)
	}
	src, err := format.Source(b.Bytes())
	if err != nil {
		return nil, fmt.Errorf("parcgen: generated code does not format: %w\n%s", err, b.String())
	}
	return src, nil
}

func genMethod(b *bytes.Buffer, typ string, m Method) {
	params := make([]string, 0, len(m.Params)+1)
	params = append(params, "ctx context.Context")
	args := make([]string, 0, len(m.Params)+1)
	args = append(args, strconv.Quote(m.Name))
	for _, p := range m.Params {
		params = append(params, p.Name+" "+p.Type)
		args = append(args, p.Name)
	}
	paramList := strings.Join(params, ", ")
	argList := strings.Join(args, ", ")

	ctxNote := ""
	if m.HasCtx {
		ctxNote = "// The implementation's context.Context parameter receives this call's\n// request context on the hosting node (it is not a wire argument).\n"
	}

	if len(m.Results) == 0 {
		// Void (possibly error-only) methods are asynchronous — the
		// paper's delegate BeginInvoke path (Fig. 4).
		fmt.Fprintf(b, "// %s invokes the method asynchronously (no result), as the\n// preprocessor's delegate-based PO did; execution errors flow to Object().Err().\n%s", m.Name, ctxNote)
		fmt.Fprintf(b, "func (po *%sPO) %s(%s) error {\n\treturn po.o.Send(ctx, %s)\n}\n\n", typ, m.Name, paramList, argList)
		fmt.Fprintf(b, "// %sSync invokes the method synchronously and reports the error.\n", m.Name)
		fmt.Fprintf(b, "func (po *%sPO) %sSync(%s) error {\n\t_, err := po.o.Invoke(ctx, %s)\n\treturn err\n}\n\n",
			typ, m.Name, paramList, argList)
		return
	}
	res := m.Results[0]
	fmt.Fprintf(b, "// %s invokes the method synchronously and returns its typed result.\n%s", m.Name, ctxNote)
	fmt.Fprintf(b, "func (po *%sPO) %s(%s) (%s, error) {\n", typ, m.Name, paramList, res)
	fmt.Fprintf(b, "\treturn parc.Call[%s](ctx, po.o, %s)\n}\n\n", res, argList)
	fmt.Fprintf(b, "// Begin%s starts the call asynchronously and returns a typed future.\n", m.Name)
	fmt.Fprintf(b, "func (po *%sPO) Begin%s(%s) *parc.Result[%s] {\n\treturn parc.CallAsync[%s](ctx, po.o, %s)\n}\n\n",
		typ, m.Name, paramList, res, res, argList)
}

// genInvokers emits the init registering zero-reflection invoker thunks
// for one class: the server-side complement of the typed PO. Dispatch
// consults the registry first, so argument binding skips wire.Assign and
// the call skips reflect.Value.Call whenever a thunk exists.
func genInvokers(b *bytes.Buffer, c Class) {
	if len(c.Methods) == 0 {
		return
	}
	fmt.Fprintf(b, "// init registers typed invoker thunks for %s: the dispatcher binds\n", c.Name)
	fmt.Fprintf(b, "// decoded arguments by type assertion and calls the method directly,\n")
	fmt.Fprintf(b, "// skipping reflection on the server-side hot path.\n")
	fmt.Fprintf(b, "func init() {\n")
	fmt.Fprintf(b, "\tparc.RegisterInvokers(&%s{}, map[string]parc.Invoker{\n", c.Name)
	for _, m := range c.Methods {
		fmt.Fprintf(b, "\t\t%q: func(ctx context.Context, obj any, args []any) (any, error) {\n", m.Name)
		fmt.Fprintf(b, "\t\t\tx := obj.(*%s)\n", c.Name)
		fmt.Fprintf(b, "\t\t\tif len(args) != %d {\n", len(m.Params))
		fmt.Fprintf(b, "\t\t\t\treturn nil, parc.BadArity(obj, %q, len(args), %d)\n", m.Name, len(m.Params))
		fmt.Fprintf(b, "\t\t\t}\n")
		callArgs := make([]string, 0, len(m.Params)+1)
		if m.HasCtx {
			callArgs = append(callArgs, "ctx")
		}
		for i, p := range m.Params {
			fmt.Fprintf(b, "\t\t\ta%d, err := parc.Arg[%s](obj, %q, args, %d)\n", i, p.Type, m.Name, i)
			fmt.Fprintf(b, "\t\t\tif err != nil {\n\t\t\t\treturn nil, err\n\t\t\t}\n")
			callArgs = append(callArgs, fmt.Sprintf("a%d", i))
		}
		call := fmt.Sprintf("x.%s(%s)", m.Name, strings.Join(callArgs, ", "))
		switch {
		case len(m.Results) == 0 && !m.HasErr:
			fmt.Fprintf(b, "\t\t\t%s\n\t\t\treturn nil, nil\n", call)
		case len(m.Results) == 0 && m.HasErr:
			fmt.Fprintf(b, "\t\t\treturn nil, %s\n", call)
		case !m.HasErr:
			fmt.Fprintf(b, "\t\t\treturn %s, nil\n", call)
		default:
			fmt.Fprintf(b, "\t\t\tr, err := %s\n", call)
			fmt.Fprintf(b, "\t\t\tif err != nil {\n\t\t\t\treturn nil, err\n\t\t\t}\n")
			fmt.Fprintf(b, "\t\t\treturn r, nil\n")
		}
		fmt.Fprintf(b, "\t\t},\n")
	}
	fmt.Fprintf(b, "\t})\n}\n\n")
}

// codecMethod maps a rendered field type to the identically named
// Encoder/Decoder method pair handling it without reflection. Types outside
// the table fall back to the generic Value path.
var codecMethod = map[string]string{
	"bool":          "Bool",
	"int":           "Int",
	"int8":          "Int8",
	"int16":         "Int16",
	"int32":         "Int32",
	"int64":         "Int64",
	"uint":          "Uint",
	"uint8":         "Uint8",
	"byte":          "Uint8",
	"uint16":        "Uint16",
	"uint32":        "Uint32",
	"uint64":        "Uint64",
	"float32":       "Float32",
	"float64":       "Float64",
	"string":        "String",
	"[]byte":        "ByteSlice",
	"[]int":         "IntSlice",
	"[]int32":       "Int32Slice",
	"[]int64":       "Int64Slice",
	"[]float32":     "Float32Slice",
	"[]float64":     "Float64Slice",
	"[]string":      "StringSlice",
	"[]bool":        "BoolSlice",
	"[]any":         "AnySlice",
	"[]interface{}": "AnySlice",
}

// isAnyType reports a bare interface{}/any field.
func isAnyType(t string) bool { return t == "any" || t == "interface{}" }

// genWireCodec emits the generated codec of one //parc:wire struct: the
// MarshalWire/UnmarshalWire pair (writing the identical bytes the
// reflective binfmt encoder produces, fields in alphabetical order with
// interned names) and the init that registers it.
func genWireCodec(b *bytes.Buffer, pkg string, ws WireStruct) {
	wireName := pkg + "." + ws.Name

	fmt.Fprintf(b, "// MarshalWire implements the generated binfmt codec of %s\n", ws.Name)
	fmt.Fprintf(b, "// (wire name %q); the bytes match the reflective encoder exactly.\n", wireName)
	fmt.Fprintf(b, "func (x *%s) MarshalWire(e *wire.Encoder) error {\n", ws.Name)
	fmt.Fprintf(b, "\te.BeginStruct(%q, %d)\n", wireName, len(ws.Fields))
	for _, fl := range ws.Fields {
		fmt.Fprintf(b, "\te.FieldName(%q)\n", fl.Name)
		if m, ok := codecMethod[fl.Type]; ok {
			fmt.Fprintf(b, "\te.%s(x.%s)\n", m, fl.Name)
		} else {
			fmt.Fprintf(b, "\te.Value(x.%s)\n", fl.Name)
		}
	}
	fmt.Fprintf(b, "\treturn e.Err()\n}\n\n")

	fmt.Fprintf(b, "// UnmarshalWire implements the generated binfmt codec of %s; unknown\n", ws.Name)
	fmt.Fprintf(b, "// fields from newer peers are skipped, matching the reflective decoder.\n")
	fmt.Fprintf(b, "func (x *%s) UnmarshalWire(d *wire.Decoder) error {\n", ws.Name)
	fmt.Fprintf(b, "\tn := d.BeginStruct()\n")
	fmt.Fprintf(b, "\tfor i := 0; i < n && d.Err() == nil; i++ {\n")
	fmt.Fprintf(b, "\t\tswitch string(d.FieldNameRaw()) {\n")
	for _, fl := range ws.Fields {
		fmt.Fprintf(b, "\t\tcase %q:\n", fl.Name)
		switch {
		case codecMethod[fl.Type] != "":
			fmt.Fprintf(b, "\t\t\tx.%s = d.%s()\n", fl.Name, codecMethod[fl.Type])
		case isAnyType(fl.Type):
			fmt.Fprintf(b, "\t\t\tx.%s = d.Value()\n", fl.Name)
		default:
			fmt.Fprintf(b, "\t\t\tif v := d.Value(); d.Err() == nil {\n")
			fmt.Fprintf(b, "\t\t\t\tif err := wire.AssignTo(&x.%s, v); err != nil {\n", fl.Name)
			fmt.Fprintf(b, "\t\t\t\t\td.Fail(err)\n\t\t\t\t}\n\t\t\t}\n")
		}
	}
	fmt.Fprintf(b, "\t\tdefault:\n\t\t\td.Skip()\n\t\t}\n\t}\n")
	fmt.Fprintf(b, "\treturn d.Err()\n}\n\n")

	fmt.Fprintf(b, "// init registers the generated codec, enabling the zero-reflection\n")
	fmt.Fprintf(b, "// fast path for %s on every node that links this package.\n", ws.Name)
	fmt.Fprintf(b, "func init() {\n\twire.RegisterGeneratedCodec[%s](%q)\n}\n\n", ws.Name, wireName)
}

// GenerateFile is the single-call convenience used by cmd/parcgen.
func GenerateFile(filename string, src []byte) ([]byte, error) {
	f, err := Analyze(filename, src)
	if err != nil {
		return nil, err
	}
	return Generate(f)
}
