package parcgen

import (
	"os"
	"strings"
	"testing"
)

const sample = `package demo

import (
	"sort"
	"unused/pkg"
)

var _ = pkg.Thing // keeps the import honest in the original file

// Worker is a parallel class.
//
//parc:parallel
type Worker struct{ n int }

// Bump is a void method (becomes an asynchronous post).
func (w *Worker) Bump(v int) { w.n += v }

// Total returns a value (becomes a synchronous invoke).
func (w *Worker) Total() int { return w.n }

// SortAll uses an imported type in its signature.
func (w *Worker) SortAll(s sort.IntSlice) sort.IntSlice { sort.Sort(s); return s }

// Fallible returns (value, error).
func (w *Worker) Fallible(x float64) (float64, error) { return x, nil }

// ErrOnly returns only an error (async + Sync variant).
func (w *Worker) ErrOnly() error { return nil }

// variadic methods are skipped.
func (w *Worker) Var(xs ...int) {}

// twoResults methods are skipped.
func (w *Worker) Two() (int, int) { return 1, 2 }

// unexported methods are skipped.
func (w *Worker) hidden() {}

// Passive is not annotated; no code is generated for it.
type Passive struct{}

func (p *Passive) Noop() {}
`

func generate(t *testing.T, src string) string {
	t.Helper()
	out, err := GenerateFile("sample.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestGenerateBasics(t *testing.T) {
	got := generate(t, sample)
	for _, want := range []string{
		"package demo",
		"type WorkerPO struct",
		"o *parc.Object[Worker]",
		`parc.RegisterAt[Worker](rt, "demo.Worker")`,
		`parc.NewAt[Worker](rt, "demo.Worker")`,
		"func (po *WorkerPO) Bump(ctx context.Context, v int) error {",
		`po.o.Send(ctx, "Bump", v)`,
		"func (po *WorkerPO) BumpSync(ctx context.Context, v int) error {",
		"func (po *WorkerPO) Total(ctx context.Context) (int, error) {",
		`parc.Call[int](ctx, po.o, "Total")`,
		"func (po *WorkerPO) BeginTotal(ctx context.Context) *parc.Result[int] {",
		`parc.CallAsync[int](ctx, po.o, "Total")`,
		"func (po *WorkerPO) Fallible(ctx context.Context, x float64) (float64, error) {",
		"func (po *WorkerPO) ErrOnly(ctx context.Context) error {",
		"func (po *WorkerPO) SortAll(ctx context.Context, s sort.IntSlice) (sort.IntSlice, error) {",
		`"sort"`,
		"func AttachWorker(",
		"func (po *WorkerPO) Wait(ctx context.Context) error",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	for _, reject := range []string{
		"Var(", "Two(", "hidden", "PassivePO", `"unused/pkg"`,
	} {
		if strings.Contains(got, reject) {
			t.Errorf("generated code wrongly contains %q", reject)
		}
	}
}

// TestContextParamInjected: a leading context.Context parameter is served
// by the runtime (request context injection) and must not travel as a wire
// argument nor appear twice in the wrapper signature.
func TestContextParamInjected(t *testing.T) {
	src := `package p

import "context"

//parc:parallel
type S struct{}

func (s *S) Work(ctx context.Context, n int) int { return n }

func (s *S) Fire(ctx context.Context) {}
`
	got := generate(t, src)
	for _, want := range []string{
		"func (po *SPO) Work(ctx context.Context, n int) (int, error) {",
		`parc.Call[int](ctx, po.o, "Work", n)`,
		"func (po *SPO) Fire(ctx context.Context) error {",
		`po.o.Send(ctx, "Fire")`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("generated code missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, `"Work", ctx`) || strings.Contains(got, "ctx context.Context, ctx") {
		t.Errorf("context parameter leaked into wire arguments:\n%s", got)
	}
}

// TestContextImportAlias: a source file importing context under an alias
// still gets the leading context parameter stripped (matched by resolved
// name), and the generated file compiles with the standard import only.
func TestContextImportAlias(t *testing.T) {
	src := `package p

import stdctx "context"

//parc:parallel
type S struct{}

func (s *S) Work(c stdctx.Context, n int) int { return n }
`
	got := generate(t, src)
	if !strings.Contains(got, "func (po *SPO) Work(ctx context.Context, n int) (int, error) {") {
		t.Errorf("aliased context param not stripped:\n%s", got)
	}
	if strings.Contains(got, "stdctx") {
		t.Errorf("generated code references the source alias:\n%s", got)
	}
}

func TestDirectiveOnNonStruct(t *testing.T) {
	src := `package p

//parc:parallel
type NotAStruct int
`
	if _, err := GenerateFile("x.go", []byte(src)); err == nil {
		t.Error("directive on non-struct should fail")
	}
}

func TestNoDirectives(t *testing.T) {
	if _, err := GenerateFile("x.go", []byte("package p\ntype T struct{}\n")); err == nil {
		t.Error("expected error when no annotated types exist")
	}
}

func TestParseError(t *testing.T) {
	if _, err := GenerateFile("x.go", []byte("not go")); err == nil {
		t.Error("expected parse error")
	}
}

func TestUnnamedAndBlankParams(t *testing.T) {
	src := `package p

//parc:parallel
type S struct{}

func (s *S) M(_ int, _ string) {}

func (s *S) N(int, string) {}
`
	got := generate(t, src)
	if !strings.Contains(got, "func (po *SPO) M(ctx context.Context, a0 int, a1 string)") {
		t.Errorf("blank params not synthesised:\n%s", got)
	}
	if !strings.Contains(got, "func (po *SPO) N(ctx context.Context, a0 int, a1 string)") {
		t.Errorf("unnamed params not synthesised:\n%s", got)
	}
}

func TestDirectiveVariants(t *testing.T) {
	src := `package p

type A struct{} //parc:parallel

//parc:parallel
type B struct{}
`
	f, err := Analyze("x.go", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Classes) != 2 {
		t.Fatalf("found %d classes, want 2 (line-comment and doc-comment)", len(f.Classes))
	}
}

// TestGenerateInvokerThunks: every class gets an init registering typed
// invoker thunks with arity checks, typed Arg binding and direct calls.
func TestGenerateInvokerThunks(t *testing.T) {
	got := generate(t, sample)
	for _, want := range []string{
		"parc.RegisterInvokers(&Worker{}, map[string]parc.Invoker{",
		`"Bump": func(ctx context.Context, obj any, args []any) (any, error) {`,
		"x := obj.(*Worker)",
		`return nil, parc.BadArity(obj, "Bump", len(args), 1)`,
		`a0, err := parc.Arg[int](obj, "Bump", args, 0)`,
		"x.Bump(a0)",
		"return x.Total(), nil",
		`r, err := x.Fallible(a0)`,
		"return nil, x.ErrOnly()",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("generated thunks missing %q", want)
		}
	}
	// Skipped methods get no thunks either.
	if strings.Contains(got, `"Var"`) || strings.Contains(got, `"Two"`) {
		t.Errorf("skipped methods leaked into thunks:\n%s", got)
	}
}

// TestGenerateCtxThunk: a context-aware method's thunk injects the request
// context as the first call argument.
func TestGenerateCtxThunk(t *testing.T) {
	src := `package p

import "context"

//parc:parallel
type S struct{}

func (s *S) Work(ctx context.Context, n int) int { return n }
`
	got := generate(t, src)
	if !strings.Contains(got, "return x.Work(ctx, a0), nil") {
		t.Errorf("ctx not injected into thunk call:\n%s", got)
	}
}

// TestGenerateWireCodec: a //parc:wire struct gets MarshalWire/UnmarshalWire
// in the generator's canonical shape plus a registration init.
func TestGenerateWireCodec(t *testing.T) {
	src := `package p

//parc:wire
type Msg struct {
	Seq    uint64
	Name   string
	Args   []any
	Result any
	Nums   []float64
	hidden int
}
`
	got := generate(t, src)
	for _, want := range []string{
		`"repro/internal/wire"`,
		"func (x *Msg) MarshalWire(e *wire.Encoder) error {",
		`e.BeginStruct("p.Msg", 5)`,
		// Alphabetical field order, matching the reflective encoder.
		"e.FieldName(\"Args\")\n\te.AnySlice(x.Args)",
		"e.FieldName(\"Name\")\n\te.String(x.Name)",
		"e.FieldName(\"Nums\")\n\te.Float64Slice(x.Nums)",
		"e.FieldName(\"Result\")\n\te.Value(x.Result)",
		"e.FieldName(\"Seq\")\n\te.Uint64(x.Seq)",
		"func (x *Msg) UnmarshalWire(d *wire.Decoder) error {",
		"switch string(d.FieldNameRaw()) {",
		"x.Seq = d.Uint64()",
		"x.Result = d.Value()",
		"d.Skip()",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("generated codec missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, `wire.RegisterGeneratedCodec[Msg]("p.Msg")`) {
		t.Errorf("codec registration missing:\n%s", got)
	}
	if strings.Contains(got, "hidden") {
		t.Errorf("unexported field leaked into codec:\n%s", got)
	}
	// No classes: the PO imports must not be emitted.
	if strings.Contains(got, `"repro/parc"`) {
		t.Errorf("wire-only file imports repro/parc:\n%s", got)
	}
}

// TestGenerateWireFallbackField: a field type without a dedicated reader
// round-trips through Value + AssignTo.
func TestGenerateWireFallbackField(t *testing.T) {
	src := `package p

//parc:wire
type M struct {
	Table map[string]any
}
`
	got := generate(t, src)
	for _, want := range []string{
		"e.Value(x.Table)",
		"if v := d.Value(); d.Err() == nil {",
		"if err := wire.AssignTo(&x.Table, v); err != nil {",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("fallback field codegen missing %q:\n%s", want, got)
		}
	}
}

func TestWireDirectiveRejectsEmbedded(t *testing.T) {
	src := `package p

type Base struct{}

//parc:wire
type M struct {
	Base
	N int
}
`
	if _, err := GenerateFile("x.go", []byte(src)); err == nil {
		t.Error("embedded field in //parc:wire struct should fail")
	}
}

func TestWireDirectiveOnNonStruct(t *testing.T) {
	src := `package p

//parc:wire
type NotAStruct int
`
	if _, err := GenerateFile("x.go", []byte(src)); err == nil {
		t.Error("wire directive on non-struct should fail")
	}
}

// TestGoldenUpToDate ensures the checked-in generated file for the example
// package matches what the current generator produces — the same guarantee
// a go:generate + CI diff gives.
func TestGoldenUpToDate(t *testing.T) {
	src, err := os.ReadFile("example/prime.go")
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("example/prime_parc.go")
	if err != nil {
		t.Fatal(err)
	}
	got, err := GenerateFile("prime.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Error("example/prime_parc.go is stale; rerun go generate ./internal/parcgen/example")
	}
}
