// Typed invoker thunks: the zero-reflection fast path of method dispatch.
//
// The reflective Invoke path pays MethodByName, AssignArgs and
// reflect.Value.Call on every request. parcgen emits, for every
// //parc:parallel class, a map of Invoker thunks that bind arguments with
// plain type assertions and call the method directly; RegisterInvokers
// installs them here and InvokeCtx consults the registry before falling
// back to reflection. An object type without registered thunks (or a method
// missing from its map) behaves exactly as before.
package dispatch

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"

	"repro/internal/wire"
)

// Invoker executes one method on obj with decoded wire arguments. obj is
// always the concrete type the thunks were registered for (the registry is
// keyed by it), so generated code may assert without checking.
type Invoker func(ctx context.Context, obj any, args []any) (any, error)

// invokerTables is the immutable snapshot swapped on registration so the
// per-call lookup is lock-free.
type invokerTables struct {
	byType map[reflect.Type]map[string]Invoker
}

var (
	invMu  sync.Mutex
	invTab atomic.Pointer[invokerTables]
)

func init() {
	invTab.Store(&invokerTables{byType: map[reflect.Type]map[string]Invoker{}})
}

// RegisterInvokers installs generated invoker thunks for the concrete type
// of sample (use the same pointer-ness objects are dispatched with: the
// SCOOPP runtime and the remoting factories create *T). Registering the
// same type again merges the maps, later registrations winning per method.
func RegisterInvokers(sample any, m map[string]Invoker) {
	t := reflect.TypeOf(sample)
	if t == nil {
		panic("dispatch: RegisterInvokers with nil sample")
	}
	invMu.Lock()
	defer invMu.Unlock()
	old := invTab.Load()
	next := &invokerTables{byType: make(map[reflect.Type]map[string]Invoker, len(old.byType)+1)}
	for k, v := range old.byType {
		next.byType[k] = v
	}
	merged := make(map[string]Invoker, len(m)+len(next.byType[t]))
	for k, v := range next.byType[t] {
		merged[k] = v
	}
	for k, v := range m {
		merged[k] = v
	}
	next.byType[t] = merged
	invTab.Store(next)
}

// lookupInvoker returns the thunk for (t, method), or nil.
func lookupInvoker(t reflect.Type, method string) Invoker {
	return invTab.Load().byType[t][method]
}

// HasInvoker reports whether a generated thunk is registered for the
// concrete type of obj and method.
func HasInvoker(obj any, method string) bool {
	return lookupInvoker(reflect.TypeOf(obj), method) != nil
}

// InvokerFor resolves the generated thunk for (t, method), or nil when the
// type has none and calls must take the reflective path. Callers that
// dispatch the same method on the same concrete type repeatedly (the
// remoting server's bound-handle table, the RMI skeleton cache) resolve
// once and cache the result keyed by t, skipping the per-call registry
// lookups InvokeCtx would repeat. The returned Invoker must only be handed
// objects whose reflect.TypeOf equals t.
func InvokerFor(t reflect.Type, method string) Invoker {
	return lookupInvoker(t, method)
}

// Arg binds args[i] to T: a plain type assertion on the fast path, the
// wire.Assign conversion rules on mismatch (an int64 from an older peer
// binding to an int parameter, a []any to a typed slice, ...). Generated
// thunks perform the arity check before calling it.
func Arg[T any](args []any, i int) (T, error) {
	if v, ok := args[i].(T); ok {
		return v, nil
	}
	var zero T
	av, err := wire.Assign(reflect.TypeFor[T](), args[i])
	if err != nil {
		return zero, err
	}
	return av.Interface().(T), nil
}

// BadArg wraps an argument-binding failure with the method context, in the
// same shape the reflective path produces.
func BadArg(obj any, method string, i int, err error) error {
	return fmt.Errorf("method %T.%s: argument %d: %w", obj, method, i, err)
}

// BadArity reports an argument-count mismatch, in the same shape the
// reflective path produces.
func BadArity(obj any, method string, got, want int) error {
	return fmt.Errorf("method %T.%s: wire: got %d arguments, want %d", obj, method, got, want)
}
