// Package dispatch implements dynamic method invocation on arbitrary
// objects: the server-side half of every transparent proxy in this
// repository. Both RPC stacks (remoting, rmi) and the SCOOPP runtime's
// intra-grain direct calls route through Invoke.
package dispatch

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"repro/internal/errs"
	"repro/internal/wire"
)

var (
	errorType = reflect.TypeOf((*error)(nil)).Elem()
	ctxType   = reflect.TypeOf((*context.Context)(nil)).Elem()
)

// Invoke calls an exported method on obj by name with decoded wire
// arguments, converting them to the declared parameter types. It is
// InvokeCtx with a background context.
func Invoke(obj any, method string, args []any) (any, error) {
	return InvokeCtx(context.Background(), obj, method, args)
}

// InvokeCtx calls an exported method on obj by name with decoded wire
// arguments, converting them to the declared parameter types. When the
// method's first parameter is a context.Context, ctx is injected there and
// the wire arguments fill the remaining parameters — this is how a caller's
// deadline reaches context-aware implementation methods.
//
// Supported method shapes: any number of non-variadic parameters (optionally
// led by a context.Context) and 0, 1 or 2 results. A trailing error result
// is mapped onto the returned error; a single non-error result is returned
// as the value.
//
// When a generated invoker thunk is registered for the object's concrete
// type (see RegisterInvokers), it is used instead of the reflective path:
// argument binding then skips wire.Assign and the call skips
// reflect.Value.Call entirely.
func InvokeCtx(ctx context.Context, obj any, method string, args []any) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if inv := lookupInvoker(reflect.TypeOf(obj), method); inv != nil {
		return inv(ctx, obj, args)
	}
	rv := reflect.ValueOf(obj)
	m := rv.MethodByName(method)
	if !m.IsValid() {
		return nil, &NoMethodError{Obj: obj, Method: method}
	}
	mt := m.Type()
	if mt.IsVariadic() {
		return nil, fmt.Errorf("method %T.%s is variadic; not supported over the wire", obj, method)
	}
	params := make([]reflect.Type, mt.NumIn())
	for i := range params {
		params[i] = mt.In(i)
	}
	var ctxVal []reflect.Value
	if len(params) > 0 && params[0] == ctxType {
		if ctx == nil {
			ctx = context.Background()
		}
		ctxVal = []reflect.Value{reflect.ValueOf(ctx)}
		params = params[1:]
	}
	in, err := wire.AssignArgs(params, args)
	if err != nil {
		return nil, fmt.Errorf("method %T.%s: %w", obj, method, err)
	}
	outs := m.Call(append(ctxVal, in...))
	switch len(outs) {
	case 0:
		return nil, nil
	case 1:
		if isErrorValue(outs[0]) {
			return nil, errOrNil(outs[0])
		}
		return outs[0].Interface(), nil
	case 2:
		if !isErrorValue(outs[1]) {
			return nil, fmt.Errorf("method %T.%s: second result must be error", obj, method)
		}
		if err := errOrNil(outs[1]); err != nil {
			return nil, err
		}
		return outs[0].Interface(), nil
	default:
		return nil, fmt.Errorf("method %T.%s: too many results (%d)", obj, method, len(outs))
	}
}

// NoMethodError reports a failed method lookup. It names the candidate
// exported methods of the target so callers migrating from stringly-typed
// calls can spot typos, and unwraps to errs.ErrNoSuchMethod.
type NoMethodError struct {
	Obj    any
	Method string
}

// Error implements error.
func (e *NoMethodError) Error() string {
	names := MethodNames(e.Obj)
	if len(names) == 0 {
		return fmt.Sprintf("type %T has no method %q (no exported methods)", e.Obj, e.Method)
	}
	return fmt.Sprintf("type %T has no method %q (exported methods: %s)",
		e.Obj, e.Method, strings.Join(names, ", "))
}

// Unwrap makes errors.Is(err, errs.ErrNoSuchMethod) true.
func (e *NoMethodError) Unwrap() error { return errs.ErrNoSuchMethod }

// MethodNames returns the sorted exported method names of obj.
func MethodNames(obj any) []string {
	t := reflect.TypeOf(obj)
	if t == nil {
		return nil
	}
	names := make([]string, 0, t.NumMethod())
	for i := 0; i < t.NumMethod(); i++ {
		names = append(names, t.Method(i).Name)
	}
	sort.Strings(names)
	return names
}

// HasMethod reports whether obj exposes an exported method with the given
// name; proxies use it to fail fast on typos.
func HasMethod(obj any, method string) bool {
	return reflect.ValueOf(obj).MethodByName(method).IsValid()
}

func isErrorValue(v reflect.Value) bool { return v.Type().Implements(errorType) }

func errOrNil(v reflect.Value) error {
	if v.IsNil() {
		return nil
	}
	return v.Interface().(error)
}
