// Package dispatch implements dynamic method invocation on arbitrary
// objects: the server-side half of every transparent proxy in this
// repository. Both RPC stacks (remoting, rmi) and the SCOOPP runtime's
// intra-grain direct calls route through Invoke.
package dispatch

import (
	"fmt"
	"reflect"

	"repro/internal/wire"
)

var errorType = reflect.TypeOf((*error)(nil)).Elem()

// Invoke calls an exported method on obj by name with decoded wire
// arguments, converting them to the declared parameter types.
//
// Supported method shapes: any number of non-variadic parameters and 0, 1
// or 2 results. A trailing error result is mapped onto the returned error;
// a single non-error result is returned as the value.
func Invoke(obj any, method string, args []any) (any, error) {
	rv := reflect.ValueOf(obj)
	m := rv.MethodByName(method)
	if !m.IsValid() {
		return nil, fmt.Errorf("type %T has no method %q", obj, method)
	}
	mt := m.Type()
	if mt.IsVariadic() {
		return nil, fmt.Errorf("method %T.%s is variadic; not supported over the wire", obj, method)
	}
	params := make([]reflect.Type, mt.NumIn())
	for i := range params {
		params[i] = mt.In(i)
	}
	in, err := wire.AssignArgs(params, args)
	if err != nil {
		return nil, fmt.Errorf("method %T.%s: %w", obj, method, err)
	}
	outs := m.Call(in)
	switch len(outs) {
	case 0:
		return nil, nil
	case 1:
		if isErrorValue(outs[0]) {
			return nil, errOrNil(outs[0])
		}
		return outs[0].Interface(), nil
	case 2:
		if !isErrorValue(outs[1]) {
			return nil, fmt.Errorf("method %T.%s: second result must be error", obj, method)
		}
		if err := errOrNil(outs[1]); err != nil {
			return nil, err
		}
		return outs[0].Interface(), nil
	default:
		return nil, fmt.Errorf("method %T.%s: too many results (%d)", obj, method, len(outs))
	}
}

// HasMethod reports whether obj exposes an exported method with the given
// name; proxies use it to fail fast on typos.
func HasMethod(obj any, method string) bool {
	return reflect.ValueOf(obj).MethodByName(method).IsValid()
}

func isErrorValue(v reflect.Value) bool { return v.Type().Implements(errorType) }

func errOrNil(v reflect.Value) error {
	if v.IsNil() {
		return nil
	}
	return v.Interface().(error)
}
