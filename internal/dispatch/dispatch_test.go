package dispatch

import (
	"errors"
	"strings"
	"testing"
)

type svc struct{ n int }

func (s *svc) Void()                          { s.n++ }
func (s *svc) Value() int                     { return 42 }
func (s *svc) ErrOnly(fail bool) error        { return failIf(fail) }
func (s *svc) Both(fail bool) (string, error) { return "ok", failIf(fail) }
func (s *svc) Sum(a, b int) int               { return a + b }
func (s *svc) Variadic(xs ...int) int         { return len(xs) }
func (s *svc) TooMany() (int, int, int)       { return 1, 2, 3 }
func (s *svc) BadPair() (int, int)            { return 1, 2 }
func (s *svc) unexported()                    {}

func failIf(b bool) error {
	if b {
		return errors.New("failed")
	}
	return nil
}

func TestInvokeVoid(t *testing.T) {
	s := &svc{}
	got, err := Invoke(s, "Void", nil)
	if err != nil || got != nil {
		t.Errorf("Void = %v, %v", got, err)
	}
	if s.n != 1 {
		t.Error("method body did not run")
	}
}

func TestInvokeValue(t *testing.T) {
	got, err := Invoke(&svc{}, "Value", nil)
	if err != nil || got != 42 {
		t.Errorf("Value = %v, %v", got, err)
	}
}

func TestInvokeErrOnly(t *testing.T) {
	if _, err := Invoke(&svc{}, "ErrOnly", []any{false}); err != nil {
		t.Errorf("ErrOnly(false) = %v", err)
	}
	if _, err := Invoke(&svc{}, "ErrOnly", []any{true}); err == nil {
		t.Error("ErrOnly(true) should fail")
	}
}

func TestInvokeValueAndError(t *testing.T) {
	got, err := Invoke(&svc{}, "Both", []any{false})
	if err != nil || got != "ok" {
		t.Errorf("Both = %v, %v", got, err)
	}
	if _, err := Invoke(&svc{}, "Both", []any{true}); err == nil {
		t.Error("Both(true) should fail")
	}
}

func TestInvokeArgConversion(t *testing.T) {
	got, err := Invoke(&svc{}, "Sum", []any{int64(2), int32(3)})
	if err != nil || got != 5 {
		t.Errorf("Sum = %v, %v", got, err)
	}
}

func TestInvokeUnknownMethod(t *testing.T) {
	if _, err := Invoke(&svc{}, "Nope", nil); err == nil || !strings.Contains(err.Error(), "no method") {
		t.Errorf("err = %v", err)
	}
}

func TestInvokeVariadicRejected(t *testing.T) {
	if _, err := Invoke(&svc{}, "Variadic", []any{1}); err == nil {
		t.Error("variadic should be rejected")
	}
}

func TestInvokeBadResultShapes(t *testing.T) {
	if _, err := Invoke(&svc{}, "TooMany", nil); err == nil {
		t.Error("3 results should be rejected")
	}
	if _, err := Invoke(&svc{}, "BadPair", nil); err == nil {
		t.Error("(int, int) should be rejected")
	}
}

func TestInvokeArityError(t *testing.T) {
	if _, err := Invoke(&svc{}, "Sum", []any{1}); err == nil {
		t.Error("wrong arity should fail")
	}
}

func TestHasMethod(t *testing.T) {
	if !HasMethod(&svc{}, "Sum") {
		t.Error("HasMethod(Sum) = false")
	}
	if HasMethod(&svc{}, "missing") {
		t.Error("HasMethod(missing) = true")
	}
}
