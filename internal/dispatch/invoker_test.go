package dispatch

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/errs"
)

// thunkTarget plays a generated parallel-object class; its thunks below are
// written in parcgen's output shape.
type thunkTarget struct {
	calls   int
	lastCtx context.Context
}

func (t *thunkTarget) Add(a, b int) int { t.calls++; return a + b }

func (t *thunkTarget) Fail() error { return errors.New("boom") }

func (t *thunkTarget) WithCtx(ctx context.Context, s string) string {
	t.lastCtx = ctx
	return "ctx:" + s
}

// Reflected has no invokers registered; it must keep using the reflective
// path untouched.
type reflectedTarget struct{}

func (reflectedTarget) Double(v int) int { return 2 * v }

func registerThunks(t *testing.T) *int {
	t.Helper()
	thunkCalls := new(int)
	RegisterInvokers(&thunkTarget{}, map[string]Invoker{
		"Add": func(ctx context.Context, obj any, args []any) (any, error) {
			*thunkCalls++
			x := obj.(*thunkTarget)
			if len(args) != 2 {
				return nil, BadArity(obj, "Add", len(args), 2)
			}
			a0, err := Arg[int](args, 0)
			if err != nil {
				return nil, BadArg(obj, "Add", 0, err)
			}
			a1, err := Arg[int](args, 1)
			if err != nil {
				return nil, BadArg(obj, "Add", 1, err)
			}
			return x.Add(a0, a1), nil
		},
		"WithCtx": func(ctx context.Context, obj any, args []any) (any, error) {
			*thunkCalls++
			x := obj.(*thunkTarget)
			if len(args) != 1 {
				return nil, BadArity(obj, "WithCtx", len(args), 1)
			}
			a0, err := Arg[string](args, 0)
			if err != nil {
				return nil, BadArg(obj, "WithCtx", 0, err)
			}
			return x.WithCtx(ctx, a0), nil
		},
	})
	return thunkCalls
}

func TestInvokerFastPath(t *testing.T) {
	thunkCalls := registerThunks(t)
	obj := &thunkTarget{}

	res, err := Invoke(obj, "Add", []any{int64(2), 3})
	if err != nil {
		t.Fatal(err)
	}
	if res != 5 {
		t.Errorf("Add = %v, want 5", res)
	}
	if *thunkCalls != 1 {
		t.Errorf("thunk used %d times, want 1", *thunkCalls)
	}
	if obj.calls != 1 {
		t.Errorf("method executed %d times, want 1", obj.calls)
	}

	// Context injection flows through the thunk.
	type key struct{}
	ctx := context.WithValue(context.Background(), key{}, "v")
	res, err = InvokeCtx(ctx, obj, "WithCtx", []any{"x"})
	if err != nil {
		t.Fatal(err)
	}
	if res != "ctx:x" {
		t.Errorf("WithCtx = %v", res)
	}
	if obj.lastCtx == nil || obj.lastCtx.Value(key{}) != "v" {
		t.Errorf("caller context did not reach the method: %v", obj.lastCtx)
	}
}

func TestInvokerFallbacks(t *testing.T) {
	thunkCalls := registerThunks(t)
	obj := &thunkTarget{}

	// A method outside the thunk map uses the reflective path and still
	// works (including its error mapping).
	if _, err := Invoke(obj, "Fail", nil); err == nil || err.Error() != "boom" {
		t.Errorf("reflective fallback Fail: %v", err)
	}
	// Unknown method still reports NoMethodError / ErrNoSuchMethod.
	_, err := Invoke(obj, "Nope", nil)
	if !errors.Is(err, errs.ErrNoSuchMethod) {
		t.Errorf("unknown method error = %v", err)
	}
	// Types without invokers never see the registry.
	res, err := Invoke(reflectedTarget{}, "Double", []any{21})
	if err != nil || res != 42 {
		t.Errorf("reflective type: %v, %v", res, err)
	}
	if *thunkCalls != 0 {
		t.Errorf("thunks ran %d times for non-thunk calls", *thunkCalls)
	}
}

func TestInvokerArgErrors(t *testing.T) {
	registerThunks(t)
	obj := &thunkTarget{}

	if _, err := Invoke(obj, "Add", []any{1}); err == nil {
		t.Error("expected arity error")
	}
	_, err := Invoke(obj, "Add", []any{"a", "b"})
	if err == nil {
		t.Fatal("expected conversion error")
	}
	if !errors.Is(err, errs.ErrBadConversion) {
		t.Errorf("conversion error %v does not unwrap to ErrBadConversion", err)
	}
}

func TestArgConversions(t *testing.T) {
	// Exact type: no conversion.
	v, err := Arg[int]([]any{7}, 0)
	if err != nil || v != 7 {
		t.Errorf("Arg[int] = %v, %v", v, err)
	}
	// Wire widening: int64 -> int.
	v, err = Arg[int]([]any{int64(9)}, 0)
	if err != nil || v != 9 {
		t.Errorf("Arg[int](int64) = %v, %v", v, err)
	}
	// []any -> typed slice.
	s, err := Arg[[]int]([]any{[]any{1, 2}}, 0)
	if err != nil || len(s) != 2 {
		t.Errorf("Arg[[]int] = %v, %v", s, err)
	}
	// Interface target.
	a, err := Arg[any]([]any{"x"}, 0)
	if err != nil || a != "x" {
		t.Errorf("Arg[any] = %v, %v", a, err)
	}
	if _, err := Arg[int]([]any{"nope"}, 0); err == nil {
		t.Error("Arg[int](string) should fail")
	}
}

func TestHasInvoker(t *testing.T) {
	registerThunks(t)
	if !HasInvoker(&thunkTarget{}, "Add") {
		t.Error("HasInvoker(thunkTarget, Add) = false")
	}
	if HasInvoker(&thunkTarget{}, "Fail") {
		t.Error("HasInvoker(thunkTarget, Fail) = true for unregistered method")
	}
	if HasInvoker(reflectedTarget{}, "Double") {
		t.Error("HasInvoker(reflectedTarget, Double) = true")
	}
}

func TestInvokerFor(t *testing.T) {
	type unthunked struct{}
	obj := &invokerTarget{}
	RegisterInvokers(obj, map[string]Invoker{
		"Probe": func(ctx context.Context, o any, args []any) (any, error) {
			return "thunked", nil
		},
	})
	inv := InvokerFor(reflect.TypeOf(obj), "Probe")
	if inv == nil {
		t.Fatal("InvokerFor returned nil for a registered thunk")
	}
	got, err := inv(context.Background(), obj, nil)
	if err != nil || got != "thunked" {
		t.Fatalf("thunk = %v, %v", got, err)
	}
	if InvokerFor(reflect.TypeOf(obj), "Missing") != nil {
		t.Error("InvokerFor returned a thunk for an unregistered method")
	}
	if InvokerFor(reflect.TypeOf(unthunked{}), "Probe") != nil {
		t.Error("InvokerFor returned a thunk for an unregistered type")
	}
}

type invokerTarget struct{}

func (*invokerTarget) Probe() string { return "direct" }
