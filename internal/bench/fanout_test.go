package bench

import (
	"strings"
	"testing"
)

func TestPipelinedFanout(t *testing.T) {
	rows, err := RunPipelinedFanout(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.TotalCalls != 24 {
			t.Errorf("%s: calls = %d, want 24", r.Channel, r.TotalCalls)
		}
		if r.CallsPerSec <= 0 {
			t.Errorf("%s: calls/s = %v", r.Channel, r.CallsPerSec)
		}
	}
	var sb strings.Builder
	PrintFanout(&sb, rows)
	if !strings.Contains(sb.String(), "multiplexed") {
		t.Errorf("table missing multiplexed row:\n%s", sb.String())
	}
}

// TestFanoutPayloadSweep: the sweep produces one row per (payload,
// channel) with the payload recorded, so batching gains are measured
// across grain sizes.
func TestFanoutPayloadSweep(t *testing.T) {
	rows, err := RunFanout(FanoutConfig{Callers: 4, CallsPerCaller: 2, Payloads: []int{16, 256}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 (2 payloads x 2 channels)", len(rows))
	}
	wantPayloads := []int{16, 16, 256, 256}
	for i, r := range rows {
		if r.Payload != wantPayloads[i] {
			t.Errorf("row %d payload = %d, want %d", i, r.Payload, wantPayloads[i])
		}
		if r.TotalCalls != 8 || r.CallsPerSec <= 0 {
			t.Errorf("row %d = %+v", i, r)
		}
	}
}

// TestFanoutDisableBinding: the escape hatch must keep the experiment
// green on the string envelope (the CI bench-smoke runs both variants).
func TestFanoutDisableBinding(t *testing.T) {
	rows, err := RunFanout(FanoutConfig{Callers: 4, CallsPerCaller: 2, DisableBinding: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.TotalCalls != 8 || r.CallsPerSec <= 0 {
			t.Errorf("row = %+v", r)
		}
	}
}
