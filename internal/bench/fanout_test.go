package bench

import (
	"strings"
	"testing"
)

func TestPipelinedFanout(t *testing.T) {
	rows, err := RunPipelinedFanout(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.TotalCalls != 24 {
			t.Errorf("%s: calls = %d, want 24", r.Channel, r.TotalCalls)
		}
		if r.CallsPerSec <= 0 {
			t.Errorf("%s: calls/s = %v", r.Channel, r.CallsPerSec)
		}
	}
	var sb strings.Builder
	PrintFanout(&sb, rows)
	if !strings.Contains(sb.String(), "multiplexed") {
		t.Errorf("table missing multiplexed row:\n%s", sb.String())
	}
}
