package bench

import (
	"testing"
	"time"
)

// TestChaosExactness runs the chaos experiment at fixed seeds: the run
// itself hard-asserts the invariants (zero lost acknowledgements, zero
// double-executions, bounded recovery after the final heal), so the test
// only needs to drive it and report the seed on failure. Three seeds give
// three different fault schedules without making the suite minutes long.
func TestChaosExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes ~2s per seed")
	}
	for _, seed := range []int64{1, 7, 42} {
		rows, err := RunChaos(ChaosConfig{
			Keys:    6,
			Callers: 6,
			Calm:    200 * time.Millisecond,
			Chaos:   900 * time.Millisecond,
			Seed:    seed,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(rows) != 4 {
			t.Fatalf("seed %d: %d rows, want 4", seed, len(rows))
		}
		if rec, ok := ChaosRecovery(rows); !ok || rec <= 0 {
			t.Errorf("seed %d: no recovery ratio (rows %+v)", seed, rows)
		}
	}
}
