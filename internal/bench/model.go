package bench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/cost"
	"repro/internal/netsim"
	"repro/internal/profile"
)

// The analytic cost model mirrors the shaped stacks in closed form so the
// experiment shapes can be asserted in unit tests without timing noise, and
// so cmd/parcbench can print modelled curves next to measured ones.
//
// One-way time for a b-byte application payload:
//
//	t = link.DeliveryTime(wire(b)) + 2 × endpoint.MessageCost(wire(b))
//	    (+ per-chunk penalties for the legacy channel)
//
// where wire(b) applies the codec's expansion and protocol framing.

// StackModel describes one system analytically.
type StackModel struct {
	Name string
	Link netsim.Params
	Cost cost.Model
	// Expansion multiplies the application payload to wire bytes
	// (codec + envelope overheads, measured in TestModelExpansions).
	Expansion float64
	// EnvelopeBytes is the fixed per-call envelope size.
	EnvelopeBytes int
	// ChunkBytes, when > 0, splits the body into chunks each paying the
	// link's per-message costs (legacy channel).
	ChunkBytes int
}

// ModelMPI etc. return the analytic counterparts of the measured stacks.
func ModelMPI() StackModel {
	return StackModel{Name: "MPI", Link: profile.Network(), Cost: profile.MPICH(),
		Expansion: 1.0, EnvelopeBytes: 24}
}

// ModelRMI is the Java RMI analytic model (javaser expansion ≈ 1.1 plus a
// ~96-byte call envelope with class descriptors).
func ModelRMI() StackModel {
	return StackModel{Name: "Java RMI", Link: profile.Network(), Cost: profile.JavaRMI(),
		Expansion: 1.10, EnvelopeBytes: 160}
}

// ModelMono117 is the Mono 1.1.7 TCP channel analytic model.
func ModelMono117() StackModel {
	return StackModel{Name: "Mono", Link: profile.Network(), Cost: profile.MonoTCP117(),
		Expansion: 1.02, EnvelopeBytes: 64}
}

// ModelMono105 is the Mono 1.0.5 legacy channel analytic model.
func ModelMono105() StackModel {
	return StackModel{Name: "Mono 1.0.5 (Tcp)", Link: profile.Network(), Cost: profile.MonoTCP105(),
		Expansion: 1.02, EnvelopeBytes: 64, ChunkBytes: 1024}
}

// ModelMonoHTTP is the Mono HTTP channel analytic model (soapfmt text
// expansion measured ≈ 2.6 for int arrays plus HTTP headers).
func ModelMonoHTTP() StackModel {
	return StackModel{Name: "Mono 1.1.7 (Http)", Link: profile.Network(), Cost: profile.MonoHTTP(),
		Expansion: 2.6, EnvelopeBytes: 220}
}

// wireBytes returns the modelled on-the-wire size for b payload bytes.
func (m StackModel) wireBytes(b int) int {
	return int(float64(b)*m.Expansion) + m.EnvelopeBytes
}

// OneWay returns the modelled one-way delivery time of b payload bytes.
func (m StackModel) OneWay(b int) time.Duration {
	w := m.wireBytes(b)
	var link time.Duration
	if m.ChunkBytes > 0 {
		// The body travels as ceil(w/chunk) wire messages, each paying
		// the link's per-message cost and frame overhead.
		chunks := (w + m.ChunkBytes - 1) / m.ChunkBytes
		if chunks < 1 {
			chunks = 1
		}
		full := m.Link.TxTime(m.ChunkBytes)
		last := m.Link.TxTime(w - (chunks-1)*m.ChunkBytes)
		link = time.Duration(chunks-1)*full + last + m.Link.Latency
	} else {
		link = m.Link.DeliveryTime(w)
	}
	return link + 2*m.Cost.MessageCost(w)
}

// RTT returns the modelled ping-pong round trip for b payload bytes.
func (m StackModel) RTT(b int) time.Duration { return 2 * m.OneWay(b) }

// BandwidthMBps returns the modelled one-way bandwidth (paper convention:
// payload bytes / one-way time).
func (m StackModel) BandwidthMBps(b int) float64 {
	return float64(b) / m.OneWay(b).Seconds() / 1e6
}

// ModelSweep evaluates the analytic curves for a set of models.
func ModelSweep(models []StackModel, sizes []int) []BandwidthRow {
	rows := make([]BandwidthRow, 0, len(sizes))
	for _, size := range sizes {
		row := BandwidthRow{SizeBytes: size, MBps: map[string]float64{}, RTT: map[string]time.Duration{}}
		for _, m := range models {
			row.MBps[m.Name] = m.BandwidthMBps(size)
			row.RTT[m.Name] = m.RTT(size)
		}
		rows = append(rows, row)
	}
	return rows
}

// ---------------------------------------------------------------- printers

// PrintBandwidth renders a sweep as a paper-style table.
func PrintBandwidth(w io.Writer, title string, rows []BandwidthRow) {
	if len(rows) == 0 {
		return
	}
	names := sortedKeys(rows[0].MBps)
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s", "size")
	for _, n := range names {
		fmt.Fprintf(w, " %18s", n+" (MB/s)")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", byteSize(r.SizeBytes))
		for _, n := range names {
			fmt.Fprintf(w, " %18.3f", r.MBps[n])
		}
		fmt.Fprintln(w)
	}
}

// PrintLatency renders the E3 latency table.
func PrintLatency(w io.Writer, title string, rows []LatencyResult) {
	fmt.Fprintf(w, "%s\n", title)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-20s %10.0f us\n", r.Name, float64(r.RTT.Microseconds()))
	}
}

// PrintFig9 renders the execution-time table of Fig. 9.
func PrintFig9(w io.Writer, rows []Fig9Row) {
	fmt.Fprintln(w, "Fig. 9 — Parallel Ray Tracer execution time (modelled testbed seconds)")
	fmt.Fprintf(w, "%-12s %14s %14s\n", "processors", "ParC#", "Java RMI")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12d %14.1f %14.1f\n", r.Processors, r.Seconds["ParC#"], r.Seconds["Java RMI"])
	}
}

// PrintSeqRatios renders the E5 table.
func PrintSeqRatios(w io.Writer, rows []SeqRatioRow) {
	fmt.Fprintln(w, "E5 — sequential time relative to the Sun JVM")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-14s %6.2fx\n", r.Workload, r.VM, r.Ratio)
	}
}

// PrintAggregation renders ablation A1.
func PrintAggregation(w io.Writer, rows []AggRow) {
	fmt.Fprintln(w, "A1 — method-call aggregation (pipelined sieve)")
	fmt.Fprintf(w, "%-10s %12s %10s %8s\n", "maxCalls", "seconds", "batches", "primes")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %12.3f %10d %8d\n", r.MaxCalls, r.Seconds, r.Batches, r.PrimesFound)
	}
}

// PrintAgglomeration renders ablation A2.
func PrintAgglomeration(w io.Writer, rows []AgglomRow) {
	fmt.Fprintln(w, "A2 — object agglomeration (fine-grain fan-out)")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-24s %10.3f s   agglomerated=%d\n", r.Policy, r.Seconds, r.Agglomerated)
	}
}

// PrintCodecs renders ablation A3.
func PrintCodecs(w io.Writer, rows []CodecRow) {
	fmt.Fprintln(w, "A3 — codec weight (1024-int call payload)")
	fmt.Fprintf(w, "%-10s %10s %14s %14s\n", "codec", "bytes", "encode", "decode")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %14s %14s\n", r.Codec, r.Bytes,
			time.Duration(r.EncodeNanos), time.Duration(r.DecodeNanos))
	}
}

// PrintPool renders ablation A4.
func PrintPool(w io.Writer, rows []PoolRow) {
	fmt.Fprintln(w, "A4 — thread-pool cap (ParC# farm)")
	fmt.Fprintf(w, "%-10s %12s %16s\n", "pool", "seconds", "queue wait")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10d %12.1f %16s\n", r.PoolSize, r.Seconds, r.QueueWait)
	}
}

// PrintOverhead renders E6.
func PrintOverhead(w io.Writer, r OverheadResult) {
	fmt.Fprintln(w, "E6 — ParC# platform overhead over raw remoting (ping-pong)")
	fmt.Fprintf(w, "  raw remoting RTT:   %10s\n", r.RawRTT)
	fmt.Fprintf(w, "  through-proxy RTT:  %10s\n", r.ProxyRTT)
	fmt.Fprintf(w, "  overhead:           %9.1f%%\n", r.OverheadPct)
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func byteSize(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
