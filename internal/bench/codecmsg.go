package bench

//go:generate go run repro/cmd/parcgen -in codecmsg.go -out codecmsg_parc.go

// CodecCall mirrors the remoting request envelope shape (URI, method,
// sequence number, deadline, argument list): the struct every remote call
// serialises. The //parc:wire directive gives it a parcgen-generated codec,
// so the codec experiment compares the generated and reflective binfmt
// paths over exactly the bytes the RPC hot path pays for.
//
//parc:wire
type CodecCall struct {
	URI      string
	Method   string
	Seq      uint64
	Deadline int64
	Args     []any
}
