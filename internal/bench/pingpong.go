// Package bench regenerates every figure and table of the paper's
// evaluation (§4) plus the ablations listed in DESIGN.md. Each experiment
// has a Run function returning typed rows and a Print function emitting a
// table shaped like the paper's artefact; cmd/parcbench and the root
// bench_test.go drive them.
package bench

import (
	"context"
	"fmt"
	"time"

	"repro/internal/cost"
	"repro/internal/dispatch"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/remoting"
	"repro/internal/rmi"
	"repro/internal/transport"
)

// Stack is one communication system under the ping-pong test: it round
// trips an int32 payload between two endpoints ("an array of integers is
// sent and received as the method parameter and return type").
type Stack interface {
	Name() string
	RoundTrip(payload []int32) error
	Close()
}

// ---------------------------------------------------------------- MPI

type mpiStack struct {
	world *mpi.World
	done  chan struct{}
}

// NewMPIStack builds the MPI ping-pong pair over a shaped network.
func NewMPIStack(p netsim.Params, c cost.Model) (Stack, error) {
	net := shapedNet(p)
	world, err := mpi.NewWorld(2, net, c)
	if err != nil {
		return nil, err
	}
	s := &mpiStack{world: world, done: make(chan struct{})}
	go func() {
		// Rank 1 echoes forever (MPI_Recv / MPI_Send loop).
		comm := world.Comm(1)
		for {
			data, st, err := comm.Recv(0, mpi.AnyTag)
			if err != nil {
				return
			}
			if err := comm.Send(0, st.Tag, data); err != nil {
				return
			}
		}
	}()
	return s, nil
}

func (s *mpiStack) Name() string { return "MPI" }

func (s *mpiStack) RoundTrip(payload []int32) error {
	comm := s.world.Comm(0)
	var b mpi.Buffer
	b.PackInt32s(payload)
	if err := comm.Send(1, 0, b.Bytes()); err != nil {
		return err
	}
	data, _, err := comm.Recv(1, 0)
	if err != nil {
		return err
	}
	if _, err := mpi.NewUnpackBuffer(data).UnpackInt32s(); err != nil {
		return err
	}
	return nil
}

func (s *mpiStack) Close() { s.world.Close() }

// ---------------------------------------------------------------- RMI

// echoService answers the ping-pong call on the RPC stacks.
type echoService struct{}

// Echo returns its argument, as the paper's remote object does.
func (echoService) Echo(nums []int32) []int32 { return nums }

// init registers the invoker thunk for echoService, in the shape parcgen
// emits for every //parc:parallel class: the production benchmarks should
// measure the dispatch path generated classes actually take (thunks, no
// reflect.Value.Call), not the reflective fallback.
func init() {
	dispatch.RegisterInvokers(echoService{}, map[string]dispatch.Invoker{
		"Echo": func(ctx context.Context, obj any, args []any) (any, error) {
			x := obj.(echoService)
			if len(args) != 1 {
				return nil, dispatch.BadArity(obj, "Echo", len(args), 1)
			}
			a0, err := dispatch.Arg[[]int32](args, 0)
			if err != nil {
				return nil, dispatch.BadArg(obj, "Echo", 0, err)
			}
			return x.Echo(a0), nil
		},
	})
}

type rmiStack struct {
	server *rmi.Runtime
	client *rmi.Runtime
	stub   *rmi.Stub
}

// NewRMIStack builds the Java RMI ping-pong pair.
func NewRMIStack(p netsim.Params, c cost.Model) (Stack, error) {
	net := shapedNet(p)
	server := rmi.NewRuntime(net)
	server.Cost = c
	if err := server.Listen(""); err != nil {
		return nil, err
	}
	if err := server.Rebind("Echo", echoService{}); err != nil {
		return nil, err
	}
	client := rmi.NewRuntime(net)
	client.Cost = c
	stub, err := client.Lookup(server.URLFor("Echo"))
	if err != nil {
		server.Close()
		return nil, err
	}
	return &rmiStack{server: server, client: client, stub: stub}, nil
}

func (s *rmiStack) Name() string { return "Java RMI" }

func (s *rmiStack) RoundTrip(payload []int32) error {
	res, err := s.stub.Invoke("Echo", payload)
	if err != nil {
		return err
	}
	if _, ok := res.([]int32); !ok {
		return fmt.Errorf("bench: echo returned %T", res)
	}
	return nil
}

func (s *rmiStack) Close() { s.server.Close() }

// ---------------------------------------------------------------- remoting

type remotingStack struct {
	name   string
	server *remoting.Server
	ref    *remoting.ObjRef
}

// NewRemotingStack builds a Mono-remoting ping-pong pair over the given
// channel kind.
func NewRemotingStack(name string, kind remoting.Kind, p netsim.Params, c cost.Model) (Stack, error) {
	net := shapedNet(p)
	var ch *remoting.Channel
	switch kind {
	case remoting.LegacyTCP:
		ch = remoting.NewLegacyTCPChannel(net)
	case remoting.HTTP:
		ch = remoting.NewHTTPChannel(net)
	default:
		ch = remoting.NewTCPChannel(net)
	}
	ch.Cost = c
	server, err := ch.ListenAndServe("")
	if err != nil {
		return nil, err
	}
	server.RegisterWellKnown("Echo", remoting.Singleton, func() any { return echoService{} })
	ref, err := remoting.GetObject(ch, server.URLFor("Echo"))
	if err != nil {
		server.Close()
		return nil, err
	}
	return &remotingStack{name: name, server: server, ref: ref}, nil
}

func (s *remotingStack) Name() string { return s.name }

func (s *remotingStack) RoundTrip(payload []int32) error {
	res, err := s.ref.Invoke("Echo", payload)
	if err != nil {
		return err
	}
	if _, ok := res.([]int32); !ok {
		return fmt.Errorf("bench: echo returned %T", res)
	}
	return nil
}

func (s *remotingStack) Close() { s.server.Close() }

// shapedNet builds a fresh memory network shaped with p (pass-through when
// p is zero).
func shapedNet(p netsim.Params) transport.Network {
	mem := transport.NewMemNetwork()
	if p.Zero() {
		return mem
	}
	return netsim.NewShapedNetwork(mem, p)
}

// Fig8aStacks builds the three systems of Fig. 8a with their calibrated
// profiles on the paper's network.
func Fig8aStacks() ([]Stack, error) {
	p := profile.Network()
	mpiS, err := NewMPIStack(p, profile.MPICH())
	if err != nil {
		return nil, err
	}
	rmiS, err := NewRMIStack(p, profile.JavaRMI())
	if err != nil {
		mpiS.Close()
		return nil, err
	}
	monoS, err := NewRemotingStack("Mono", remoting.TCP, p, profile.MonoTCP117())
	if err != nil {
		mpiS.Close()
		rmiS.Close()
		return nil, err
	}
	return []Stack{mpiS, rmiS, monoS}, nil
}

// Fig8bStacks builds the three Mono implementations of Fig. 8b.
func Fig8bStacks() ([]Stack, error) {
	p := profile.Network()
	s117, err := NewRemotingStack("Mono 1.1.7 (Tcp)", remoting.TCP, p, profile.MonoTCP117())
	if err != nil {
		return nil, err
	}
	s105, err := NewRemotingStack("Mono 1.0.5 (Tcp)", remoting.LegacyTCP, p, profile.MonoTCP105())
	if err != nil {
		s117.Close()
		return nil, err
	}
	sHTTP, err := NewRemotingStack("Mono 1.1.7 (Http)", remoting.HTTP, p, profile.MonoHTTP())
	if err != nil {
		s117.Close()
		s105.Close()
		return nil, err
	}
	return []Stack{s117, s105, sHTTP}, nil
}

// MessageSizes returns the payload sizes (bytes) of the paper's sweep,
// 1 B – 1 MB on a log scale. Full selects the complete sweep; otherwise a
// short sweep for unit tests.
func MessageSizes(full bool) []int {
	if full {
		return []int{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}
	}
	return []int{4, 1024, 65536}
}

// BandwidthRow is one sweep point: achieved one-way bandwidth per stack in
// MB/s, keyed by stack name.
type BandwidthRow struct {
	SizeBytes int
	MBps      map[string]float64
	RTT       map[string]time.Duration
}

// payloadFor builds an int32 payload of approximately size bytes.
func payloadFor(size int) []int32 {
	n := size / 4
	if n < 1 {
		n = 1
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i*2654435761 + 12345)
	}
	return out
}

// repsFor balances accuracy against run time across the sweep.
func repsFor(size int, full bool) int {
	if !full {
		return 2
	}
	switch {
	case size <= 1024:
		return 20
	case size <= 65536:
		return 8
	default:
		return 3
	}
}

// Sweep runs the ping-pong across sizes and returns one row per size.
// Bandwidth follows the paper's convention: message bytes divided by
// one-way time (RTT/2).
func Sweep(stacks []Stack, sizes []int, full bool) ([]BandwidthRow, error) {
	rows := make([]BandwidthRow, 0, len(sizes))
	for _, size := range sizes {
		payload := payloadFor(size)
		bytes := len(payload) * 4
		row := BandwidthRow{
			SizeBytes: bytes,
			MBps:      map[string]float64{},
			RTT:       map[string]time.Duration{},
		}
		for _, s := range stacks {
			// Warm-up establishes connections (and pays any
			// connect costs outside the measurement, as ping-pong
			// tests do).
			if err := s.RoundTrip(payload); err != nil {
				return nil, fmt.Errorf("bench: %s warm-up: %w", s.Name(), err)
			}
			reps := repsFor(size, full)
			start := time.Now()
			for r := 0; r < reps; r++ {
				if err := s.RoundTrip(payload); err != nil {
					return nil, fmt.Errorf("bench: %s size %d: %w", s.Name(), size, err)
				}
			}
			rtt := time.Since(start) / time.Duration(reps)
			row.RTT[s.Name()] = rtt
			oneWay := rtt / 2
			row.MBps[s.Name()] = float64(bytes) / oneWay.Seconds() / 1e6
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// LatencyResult is the E3 text-table: small-message round-trip latency per
// stack.
type LatencyResult struct {
	Name string
	RTT  time.Duration
}

// MeasureLatency measures 4-byte round trips (the paper reports 100, 273
// and 520 µs for MPI, Mono and Java RMI). Like ping, it reports the
// minimum observed round trip: the minimum is the estimator that is robust
// to scheduler contention on loaded hosts.
func MeasureLatency(stacks []Stack, reps int) ([]LatencyResult, error) {
	if reps <= 0 {
		reps = 50
	}
	payload := payloadFor(4)
	var out []LatencyResult
	for _, s := range stacks {
		if err := s.RoundTrip(payload); err != nil {
			return nil, err
		}
		best := time.Duration(1 << 62)
		for i := 0; i < reps; i++ {
			start := time.Now()
			if err := s.RoundTrip(payload); err != nil {
				return nil, err
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		out = append(out, LatencyResult{Name: s.Name(), RTT: best})
	}
	return out, nil
}

// CloseAll closes every stack.
func CloseAll(stacks []Stack) {
	for _, s := range stacks {
		s.Close()
	}
}
