package bench

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/netsim"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// OpenLoopRow is one (scenario, offered-rate factor) cell of the open-loop
// serving experiment: Poisson arrivals at a fixed rate against bounded
// actor mailboxes, with latency percentiles of the accepted calls. Unlike
// the closed-loop experiments (a fixed caller pool that slows down when
// the server does), arrivals here do not wait for replies — the only two
// outcomes under overload are unbounded queueing or shedding, which is
// exactly what the row measures. The JSON form feeds the CI gate, which
// tracks accepted/s, p99 and the shed rate.
type OpenLoopRow struct {
	// Scenario names the transport: "tcp" (real loopback TCP) or
	// "netsim+loss" (in-process memory transport shaped with latency and
	// a retransmit-modelled loss rate).
	Scenario string `json:"scenario"`
	// Factor is the offered rate as a multiple of the measured closed-loop
	// capacity: 0.5 = comfortable underload, 2.0 = past saturation.
	Factor float64 `json:"factor"`
	Procs  int     `json:"procs,omitempty"`
	// Objects is the served actor population; Clients the simulated client
	// bound (max concurrent outstanding arrivals); Bound the per-mailbox
	// admission cap.
	Objects int `json:"objects"`
	Clients int `json:"clients"`
	Bound   int `json:"mailbox_bound"`
	// CapacityPerSec is the closed-loop calibration throughput the offered
	// rate was derived from; Offered/Accepted count individual arrivals.
	CapacityPerSec  float64 `json:"capacity_per_sec"`
	OfferedPerSec   float64 `json:"offered_per_sec"`
	AcceptedPerSec  float64 `json:"accepted_per_sec"`
	Offered         int     `json:"offered_calls"`
	Accepted        int     `json:"accepted_calls"`
	Shed            int     `json:"shed_calls"`
	DeadlineExpired int     `json:"deadline_expired"`
	OtherErrors     int     `json:"other_errors,omitempty"`
	// ClientSaturated counts arrivals dropped because all simulated
	// clients were busy (should stay 0 — the client pool is sized far
	// above the bandwidth-delay product).
	ClientSaturated int `json:"client_saturated,omitempty"`
	// ServerSheds / ServerDeadlineDrops are the hosting node's Stats
	// deltas over the run — the server-side view of the same story.
	ServerSheds         int64 `json:"server_sheds"`
	ServerDeadlineDrops int64 `json:"server_deadline_drops"`
	// Latency percentiles of accepted calls (HDR-bucketed, ~3% error) and
	// the SLO the run self-checked p99 against.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	P999Ms float64 `json:"p999_ms"`
	MaxMs  float64 `json:"max_ms"`
	SLOMs  float64 `json:"slo_ms"`
}

// OpenLoopConfig parameterises the open-loop experiment.
type OpenLoopConfig struct {
	// Objects is the served actor population (default 4).
	Objects int
	// ServiceTime is the per-call service sleep (default 5ms). Sleeping —
	// rather than spinning — makes capacity ≈ Objects/ServiceTime on any
	// hardware, so the accepted/offered ratio at a given factor is
	// machine-independent and CI can gate it across runners. The default
	// is deliberately long enough that the sleep, not per-RPC CPU cost,
	// bounds capacity even under the race detector: if capacity were
	// CPU-bound, offering 2x capacity would saturate the host and
	// open-loop arrivals would queue outside the bounded mailboxes —
	// unbounded latency the admission control cannot see.
	ServiceTime time.Duration
	// Duration is the sampling window per row (default 800ms — several
	// times the full-mailbox fill time of Bound*ServiceTime, so the
	// overload rows measure the shedding steady state, not the ramp).
	Duration time.Duration
	// Clients bounds the concurrently outstanding simulated clients
	// (default 10000).
	Clients int
	// Bound is the per-mailbox admission cap (default 16).
	Bound int
}

func (cfg *OpenLoopConfig) defaults() {
	if cfg.Objects <= 0 {
		cfg.Objects = 4
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 5 * time.Millisecond
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 800 * time.Millisecond
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 10000
	}
	if cfg.Bound <= 0 {
		cfg.Bound = 16
	}
}

// olWorker is the served class: Work sleeps for the requested number of
// microseconds, modelling a fixed-cost request handler.
type olWorker struct{}

// Work sleeps us microseconds and echoes it.
func (olWorker) Work(us int) int {
	time.Sleep(time.Duration(us) * time.Microsecond)
	return us
}

// pinPlacement places every new object on one fixed node, so the client
// runtime's creations all land on the serving node.
type pinPlacement struct{ node int }

// Pick implements core.PlacementPolicy.
func (p pinPlacement) Pick(int, []core.NodeLoad) int { return p.node }

// olScenario is one transport topology: a serving node hosting the
// workers and a client runtime holding remote proxies to them.
type olScenario struct {
	name     string
	lossTail time.Duration // extra SLO slack for injected retransmit delay
	server   *core.Runtime
	proxies  []*core.Proxy
	cleanup  func()
}

// openLoopTCP boots the real-TCP topology: two core runtimes on loopback,
// multiplexed channel, all workers pinned to node 0.
func openLoopTCP(cfg OpenLoopConfig) (*olScenario, error) {
	net := transport.TCPNetwork{}
	rts := make([]*core.Runtime, 2)
	addrs := make([]string, 2)
	for i := range rts {
		rt, err := core.Start(core.Config{
			NodeID:       i,
			Channel:      remoting.NewMultiplexedChannel(net),
			Placement:    pinPlacement{0},
			MailboxBound: cfg.Bound,
		}, "127.0.0.1:0")
		if err != nil {
			for _, r := range rts[:i] {
				r.Close()
			}
			return nil, fmt.Errorf("bench: openloop tcp node %d: %w", i, err)
		}
		rts[i] = rt
		addrs[i] = rt.Addr()
	}
	sc := &olScenario{name: "tcp", server: rts[0], cleanup: func() {
		for _, rt := range rts {
			rt.Close()
		}
	}}
	for _, rt := range rts {
		if err := rt.JoinCluster(addrs); err != nil {
			sc.cleanup()
			return nil, err
		}
		rt.RegisterClass("olWorker", func() any { return olWorker{} })
	}
	if err := sc.makeProxies(rts[1], cfg.Objects); err != nil {
		sc.cleanup()
		return nil, err
	}
	return sc, nil
}

// openLoopNetsimParams is the shaped-network profile of the netsim
// scenario: LAN-ish latency plus a 0.5% loss rate modelled as 5 ms
// retransmit delays — enough to put honest spikes in the tail without
// dominating the median.
func openLoopNetsimParams() netsim.Params {
	return netsim.Params{
		Latency:    200 * time.Microsecond,
		PerMessage: 5 * time.Microsecond,
		Loss:       0.005,
		LossDelay:  5 * time.Millisecond,
	}
}

// openLoopNetsim boots the shaped in-process topology over the memory
// transport with injected latency and loss.
func openLoopNetsim(cfg OpenLoopConfig) (*olScenario, error) {
	p := openLoopNetsimParams()
	cl, err := cluster.New(cluster.Options{
		Nodes:        2,
		ChannelKind:  remoting.Multiplexed,
		Net:          p,
		Placement:    pinPlacement{0},
		MailboxBound: cfg.Bound,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: openloop netsim: %w", err)
	}
	sc := &olScenario{
		name:     "netsim+loss",
		lossTail: 3 * p.LossDelay,
		server:   cl.Node(0),
		cleanup:  cl.Close,
	}
	cl.RegisterClass("olWorker", func() any { return olWorker{} })
	if err := sc.makeProxies(cl.Node(1), cfg.Objects); err != nil {
		sc.cleanup()
		return nil, err
	}
	return sc, nil
}

func (sc *olScenario) makeProxies(client *core.Runtime, objects int) error {
	sc.proxies = make([]*core.Proxy, objects)
	for i := range sc.proxies {
		p, err := client.NewParallelObject("olWorker")
		if err != nil {
			return fmt.Errorf("bench: openloop %s object %d: %w", sc.name, i, err)
		}
		if p.IsLocal() {
			return fmt.Errorf("bench: openloop %s object %d placed locally; pin failed", sc.name, i)
		}
		sc.proxies[i] = p
	}
	return nil
}

// olCalibrate is the closed-loop calibration window.
const olCalibrate = 300 * time.Millisecond

// calibrate measures the scenario's saturated throughput: 8 closed-loop
// callers per object (enough pipelining to hide the RTT, few enough to
// stay under the mailbox bound) for olCalibrate. The offered rates of the
// open-loop rows are factors of this number, which is what keeps the
// accepted/offered ratio machine-independent.
func (sc *olScenario) calibrate(cfg OpenLoopConfig) (float64, error) {
	const callersPerObject = 8
	us := int(cfg.ServiceTime / time.Microsecond)
	var calls atomic.Int64
	var failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range sc.proxies {
		for c := 0; c < callersPerObject; c++ {
			wg.Add(1)
			go func(p *core.Proxy) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					ctx, cancel := context.WithTimeout(context.Background(), time.Second)
					_, err := p.InvokeCtx(ctx, "Work", us)
					cancel()
					if err != nil {
						failed.Add(1)
						return
					}
					calls.Add(1)
				}
			}(sc.proxies[i])
		}
	}
	t0 := time.Now()
	time.Sleep(olCalibrate)
	elapsed := time.Since(t0)
	close(stop)
	wg.Wait()
	if f := failed.Load(); f > 0 {
		return 0, fmt.Errorf("bench: openloop %s calibration: %d callers failed", sc.name, f)
	}
	cap := float64(calls.Load()) / elapsed.Seconds()
	if cap <= 0 {
		return 0, fmt.Errorf("bench: openloop %s calibration measured zero throughput", sc.name)
	}
	return cap, nil
}

// drive runs one open-loop window: Poisson arrivals at rate, each arrival
// an independent simulated client posting one call with a deadline.
// Latencies of accepted calls are recorded into per-object histograms
// (merged at the end — no shared lock on the arrival path).
func (sc *olScenario) drive(cfg OpenLoopConfig, capacity, factor float64, slo time.Duration) OpenLoopRow {
	rate := capacity * factor
	callDeadline := 2 * slo
	us := int(cfg.ServiceTime / time.Microsecond)
	type shard struct {
		mu sync.Mutex
		h  Histogram
	}
	shards := make([]shard, len(sc.proxies))
	var accepted, shed, expired, other atomic.Int64
	var saturated int
	sem := make(chan struct{}, cfg.Clients)
	var wg sync.WaitGroup
	// Fixed seed: the arrival schedule is part of the experiment
	// definition, not a source of run-to-run noise.
	rng := rand.New(rand.NewSource(42))
	statsBefore := sc.server.Stats()

	start := time.Now()
	next := start
	offered := 0
	for {
		next = next.Add(time.Duration(rng.ExpFloat64() / rate * float64(time.Second)))
		if next.Sub(start) > cfg.Duration {
			break
		}
		// Sleep until the scheduled arrival; a late wakeup fires
		// immediately (catch-up burst), preserving the offered rate.
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		select {
		case sem <- struct{}{}:
		default:
			saturated++
			continue
		}
		offered++
		i := offered % len(sc.proxies)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), callDeadline)
			defer cancel()
			t0 := time.Now()
			_, err := sc.proxies[i].InvokeCtx(ctx, "Work", us)
			lat := time.Since(t0)
			switch {
			case err == nil:
				accepted.Add(1)
				s := &shards[i]
				s.mu.Lock()
				s.h.Record(int64(lat))
				s.mu.Unlock()
			case errors.Is(err, errs.ErrOverloaded):
				shed.Add(1)
			case errors.Is(err, context.DeadlineExceeded):
				expired.Add(1)
			default:
				other.Add(1)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	statsAfter := sc.server.Stats()

	var h Histogram
	for i := range shards {
		h.Merge(&shards[i].h)
	}
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return OpenLoopRow{
		Scenario:            sc.name,
		Factor:              factor,
		Procs:               runtime.GOMAXPROCS(0),
		Objects:             cfg.Objects,
		Clients:             cfg.Clients,
		Bound:               cfg.Bound,
		CapacityPerSec:      capacity,
		OfferedPerSec:       float64(offered) / elapsed.Seconds(),
		AcceptedPerSec:      float64(accepted.Load()) / elapsed.Seconds(),
		Offered:             offered,
		Accepted:            int(accepted.Load()),
		Shed:                int(shed.Load()),
		DeadlineExpired:     int(expired.Load()),
		OtherErrors:         int(other.Load()),
		ClientSaturated:     saturated,
		ServerSheds:         statsAfter.MailboxSheds - statsBefore.MailboxSheds,
		ServerDeadlineDrops: statsAfter.DeadlineDrops - statsBefore.DeadlineDrops,
		P50Ms:               ms(h.Quantile(0.50)),
		P95Ms:               ms(h.Quantile(0.95)),
		P99Ms:               ms(h.Quantile(0.99)),
		P999Ms:              ms(h.Quantile(0.999)),
		MaxMs:               ms(h.Max()),
		SLOMs:               ms(slo.Nanoseconds()),
	}
}

// RunOpenLoop measures the open-loop serving scenario end to end over two
// transports (real loopback TCP, and netsim with injected latency and
// loss): a closed-loop calibration finds the node's capacity, then Poisson
// arrivals are offered at 0.5x (underload) and 2x (overload) of it against
// mailboxes bounded at cfg.Bound.
//
// Three properties are hard-asserted per overload row, not just measured —
// the run fails otherwise:
//
//   - the node sheds (admission control engaged; Shed > 0 with
//     ErrOverloaded surfacing at the remote caller);
//   - p99 of accepted calls stays under the SLO (≈4x the full-queue wait,
//     plus retransmit slack on the lossy scenario) — i.e. the queue did
//     not grow without bound;
//   - the accepted/offered ratio stays in [0.2, 0.95]: the node kept
//     serving about its capacity while refusing the excess.
//
// The underload row must keep an accepted ratio ≥ 0.8.
func RunOpenLoop(cfg OpenLoopConfig) ([]OpenLoopRow, error) {
	cfg.defaults()
	scenarios := []struct {
		make    func(OpenLoopConfig) (*olScenario, error)
		factors []float64
	}{
		{openLoopTCP, []float64{0.5, 2.0}},
		{openLoopNetsim, []float64{2.0}},
	}
	var rows []OpenLoopRow
	for _, s := range scenarios {
		sc, err := s.make(cfg)
		if err != nil {
			return nil, err
		}
		capacity, err := sc.calibrate(cfg)
		if err != nil {
			sc.cleanup()
			return nil, err
		}
		// Per-object service time as measured (sleep overshoot and RPC
		// overhead included), from which the latency SLO follows: a full
		// bounded queue costs Bound service times of wait, and p99 beyond
		// 4x that means queueing is not actually bounded.
		svc := time.Duration(float64(cfg.Objects) / capacity * float64(time.Second))
		slo := 4 * time.Duration(cfg.Bound) * svc
		if slo < 50*time.Millisecond {
			slo = 50 * time.Millisecond // scheduler-noise floor on small bounds
		}
		slo += sc.lossTail
		for _, f := range s.factors {
			row := sc.drive(cfg, capacity, f, slo)
			rows = append(rows, row)
			ratio := 0.0
			if row.Offered > 0 {
				ratio = float64(row.Accepted) / float64(row.Offered)
			}
			if f > 1 {
				switch {
				case row.Shed == 0:
					err = fmt.Errorf("bench: openloop %s %.1fx: offered %.0f/s over capacity %.0f/s yet nothing was shed",
						sc.name, f, row.OfferedPerSec, capacity)
				case row.P99Ms > row.SLOMs:
					err = fmt.Errorf("bench: openloop %s %.1fx: p99 %.1fms exceeds SLO %.0fms — queueing is not bounded",
						sc.name, f, row.P99Ms, row.SLOMs)
				case ratio < 0.2 || ratio > 0.95:
					err = fmt.Errorf("bench: openloop %s %.1fx: accepted ratio %.2f outside [0.20, 0.95]",
						sc.name, f, ratio)
				}
			} else if ratio < 0.8 {
				err = fmt.Errorf("bench: openloop %s %.1fx: accepted ratio %.2f below 0.80 in underload",
					sc.name, f, ratio)
			}
			if err != nil {
				sc.cleanup()
				return nil, err
			}
		}
		sc.cleanup()
	}
	return rows, nil
}

// olKey identifies an open-loop row across reports. Procs is deliberately
// not part of the key: the experiment runs once per report and its
// accepted/offered ratios are machine-independent, so a baseline recorded
// on a different runner must still match up row for row.
func olKey(r OpenLoopRow) string {
	return fmt.Sprintf("%s %.1fx", r.Scenario, r.Factor)
}

// PrintOpenLoop emits the open-loop table.
func PrintOpenLoop(w io.Writer, rows []OpenLoopRow) {
	fmt.Fprintln(w, "Open loop — Poisson arrivals vs bounded mailboxes (shed instead of queue; percentiles of accepted calls)")
	fmt.Fprintf(w, "%-14s %6s %10s %10s %7s %5s %8s %8s %8s %8s %8s %7s\n",
		"scenario", "factor", "offered/s", "accept/s", "shed", "ddl", "p50", "p95", "p99", "p999", "max", "slo")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14s %5.1fx %10.0f %10.0f %7d %5d %7.2fms %7.2fms %7.2fms %7.2fms %7.1fms %5.0fms\n",
			r.Scenario, r.Factor, r.OfferedPerSec, r.AcceptedPerSec, r.Shed, r.DeadlineExpired,
			r.P50Ms, r.P95Ms, r.P99Ms, r.P999Ms, r.MaxMs, r.SLOMs)
	}
}
