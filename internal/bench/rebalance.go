package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// RebalanceRow is one phase of the live-migration experiment: sustained
// calls/s before the migration wave, while it runs, and after it
// completes. The JSON form feeds the CI benchmark-regression gate, which
// tracks the after/before recovery ratio.
type RebalanceRow struct {
	Phase       string        `json:"phase"` // "before", "during", "after"
	Calls       int           `json:"calls"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	CallsPerSec float64       `json:"calls_per_sec"`
	// Migrated is the number of objects moved during this phase (non-zero
	// only for "during").
	Migrated int `json:"migrated,omitempty"`
}

// RebalanceConfig parameterises the rebalance experiment.
type RebalanceConfig struct {
	// Objects is the hot object population, all initially hosted on one
	// node; Callers goroutines hammer them round-robin with synchronous
	// calls from another node.
	Objects int
	Callers int
	// Phase is the sampling window for the before and after measurements.
	Phase time.Duration
	// MigrateFraction of the objects live-migrate to a third node while
	// the callers keep running (default 0.5).
	MigrateFraction float64
}

// hotObj is the migratable workload class: exported state so snapshots
// carry it, one method that both mutates and returns.
type hotObj struct {
	N int64
}

// Bump adds v and returns the running total.
func (h *hotObj) Bump(v int64) int64 {
	h.N += v
	return h.N
}

// RunRebalance measures throughput through a live migration wave: three
// nodes over real loopback TCP (multiplexed channel), the hot object
// population on node 1, callers on node 0, and — mid-run — half the
// objects migrating to node 2. Callers never see an error: calls that hit
// a forwarding tombstone transparently re-route and retry. The experiment
// reports sustained calls/s before, during and after the wave; the
// after/before recovery ratio is the gated headline (expected ≥ 0.9: the
// steady state after the move is remote either way, so throughput must
// recover once the tombstone redirects have been absorbed).
//
// Like the fanout experiment this runs with no injected 2005 costs: it is
// a forward-looking production benchmark, not a paper reproduction.
func RunRebalance(cfg RebalanceConfig) ([]RebalanceRow, error) {
	if cfg.Objects <= 0 {
		cfg.Objects = 16
	}
	if cfg.Callers <= 0 {
		cfg.Callers = 8
	}
	if cfg.Phase <= 0 {
		cfg.Phase = 150 * time.Millisecond
	}
	if cfg.MigrateFraction <= 0 || cfg.MigrateFraction > 1 {
		cfg.MigrateFraction = 0.5
	}

	const nodes = 3
	net := transport.TCPNetwork{}
	rts := make([]*core.Runtime, nodes)
	addrs := make([]string, nodes)
	for i := range rts {
		rt, err := core.Start(core.Config{
			NodeID:    i,
			Channel:   remoting.NewMultiplexedChannel(net),
			Placement: core.LocalOnly{},
		}, "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench: rebalance node %d: %w", i, err)
		}
		defer rt.Close()
		rts[i] = rt
		addrs[i] = rt.Addr()
	}
	for _, rt := range rts {
		if err := rt.JoinCluster(addrs); err != nil {
			return nil, err
		}
		rt.RegisterClass("hot", func() any { return &hotObj{} })
	}

	// The population lives on node 1; callers attach from node 0.
	hosted := make([]*core.Proxy, cfg.Objects)
	proxies := make([]*core.Proxy, cfg.Objects)
	for i := range hosted {
		p, err := rts[1].NewParallelObject("hot")
		if err != nil {
			return nil, err
		}
		hosted[i] = p
		proxies[i] = rts[0].Attach(p.Ref())
	}

	var calls atomic.Int64
	stop := make(chan struct{})
	errc := make(chan error, cfg.Callers)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := proxies[i%len(proxies)].Invoke("Bump", int64(1)); err != nil {
					errc <- fmt.Errorf("bench: rebalance caller %d: %w", c, err)
					return
				}
				calls.Add(1)
			}
		}(c)
	}

	window := func(phase string, d time.Duration) RebalanceRow {
		start := calls.Load()
		t0 := time.Now()
		time.Sleep(d)
		elapsed := time.Since(t0)
		n := int(calls.Load() - start)
		return RebalanceRow{
			Phase:       phase,
			Calls:       n,
			Elapsed:     elapsed,
			CallsPerSec: float64(n) / elapsed.Seconds(),
		}
	}

	before := window("before", cfg.Phase)

	// The migration wave: a live rebalance moving MigrateFraction of the
	// population from node 1 to node 2 while the callers keep hammering.
	moveN := int(float64(cfg.Objects) * cfg.MigrateFraction)
	start := calls.Load()
	t0 := time.Now()
	for i := 0; i < moveN; i++ {
		if err := rts[1].MigrateCtx(context.Background(), hosted[i].URI(), 2); err != nil {
			close(stop)
			wg.Wait()
			return nil, fmt.Errorf("bench: migrate %s: %w", hosted[i].URI(), err)
		}
	}
	elapsed := time.Since(t0)
	n := int(calls.Load() - start)
	during := RebalanceRow{
		Phase:       "during",
		Calls:       n,
		Elapsed:     elapsed,
		CallsPerSec: float64(n) / elapsed.Seconds(),
		Migrated:    moveN,
	}

	after := window("after", cfg.Phase)
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		return nil, err
	default:
	}

	// Correctness backstop: no call may have been lost across the wave —
	// the per-object totals must add up to exactly the calls counted.
	var total int64
	for _, p := range proxies {
		res, err := p.Invoke("Bump", int64(0))
		if err != nil {
			return nil, err
		}
		v, ok := res.(int64)
		if !ok {
			return nil, fmt.Errorf("bench: rebalance total came back as %T", res)
		}
		total += v
	}
	if total != calls.Load() {
		return nil, fmt.Errorf("bench: rebalance lost calls: objects saw %d, callers made %d", total, calls.Load())
	}

	return []RebalanceRow{before, during, after}, nil
}

// RebalanceRecovery extracts the after/before throughput ratio of a run.
func RebalanceRecovery(rows []RebalanceRow) (float64, bool) {
	var before, after float64
	for _, r := range rows {
		switch r.Phase {
		case "before":
			before = r.CallsPerSec
		case "after":
			after = r.CallsPerSec
		}
	}
	if before <= 0 || after <= 0 {
		return 0, false
	}
	return after / before, true
}

// PrintRebalance emits the rebalance table.
func PrintRebalance(w io.Writer, rows []RebalanceRow) {
	fmt.Fprintln(w, "Rebalance — sustained calls/s through a live migration wave (node1 -> node2, callers on node0)")
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s\n", "phase", "calls", "elapsed", "calls/s", "migrated")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %10d %12s %12.0f %10d\n",
			r.Phase, r.Calls, r.Elapsed.Round(time.Microsecond), r.CallsPerSec, r.Migrated)
	}
	if rec, ok := RebalanceRecovery(rows); ok {
		fmt.Fprintf(w, "recovery: %.2fx of pre-migration throughput\n", rec)
	}
}
