//go:build !race

package bench

// raceEnabled reports whether the race detector instruments this build;
// timing-model shape tests skip under it because instrumentation skews the
// measured execution times the models are calibrated against.
const raceEnabled = false
