package bench

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// FailoverRow is one phase of the virtual-object failover experiment:
// sustained calls/s before the owner node is killed, while the cluster
// detects the death and promotes replicas, and after callers have
// re-routed. The JSON form feeds the CI benchmark-regression gate, which
// tracks the after/before recovery ratio.
type FailoverRow struct {
	Phase       string        `json:"phase"` // "before", "during", "after"
	Calls       int           `json:"calls"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	CallsPerSec float64       `json:"calls_per_sec"`
	// RecoverySeconds is the time from the kill until every key had served
	// at least one post-kill call (non-zero only for "during").
	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`
	// Duplicates is the number of calls applied more than once across the
	// failover — synchronous replication's at-least-once retries (non-zero
	// only possible on "after").
	Duplicates int64 `json:"duplicates,omitempty"`
}

// FailoverConfig parameterises the failover experiment.
type FailoverConfig struct {
	// Keys is the virtual-object key population, spread over the ring;
	// Callers goroutines on the surviving nodes hammer them round-robin.
	Keys    int
	Callers int
	// Phase is the sampling window for the before and after measurements.
	Phase time.Duration
	// Probe is the health-probe interval (failure-detection latency is
	// roughly 3 probes).
	Probe time.Duration
	// MinRecovery, when > 0, fails the run if the after/before throughput
	// ratio lands below it — the CI floor for failover quality.
	MinRecovery float64
}

// RunFailover measures virtual-object throughput through an owner crash:
// three nodes over real loopback TCP (multiplexed channel), a virtual
// counter population with one synchronous replica per key, and — mid-run —
// the node owning the probe key killed outright. Health probes grade it
// down, ring successors promote their replicas, and callers re-resolve;
// no explicit recovery action is ever taken.
//
// Two properties are hard-asserted, not just measured: every key recovers
// (the run fails if any key never serves a post-kill call), and no
// acknowledged call is lost — each counter's final total must cover every
// success its callers counted. Synchronous replication trades duplicates
// for that guarantee, so totals may exceed the counts; the excess is
// reported per run.
func RunFailover(cfg FailoverConfig) ([]FailoverRow, error) {
	if cfg.Keys <= 0 {
		cfg.Keys = 12
	}
	if cfg.Callers <= 0 {
		cfg.Callers = 8
	}
	if cfg.Phase <= 0 {
		cfg.Phase = 150 * time.Millisecond
	}
	if cfg.Probe <= 0 {
		cfg.Probe = 20 * time.Millisecond
	}

	const nodes = 3
	net := transport.TCPNetwork{}
	rts := make([]*core.Runtime, nodes)
	addrs := make([]string, nodes)
	for i := range rts {
		rt, err := core.Start(core.Config{
			NodeID:      i,
			Channel:     remoting.NewMultiplexedChannel(net),
			HealthProbe: cfg.Probe,
		}, "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench: failover node %d: %w", i, err)
		}
		defer rt.Close()
		rts[i] = rt
		addrs[i] = rt.Addr()
	}
	for _, rt := range rts {
		if err := rt.JoinCluster(addrs); err != nil {
			return nil, err
		}
		rt.RegisterVirtualClass("vhot", func() any { return &hotObj{} },
			core.VirtualConfig{Replicas: 1, SnapshotEvery: 1})
	}

	// The victim is whichever node owns key 0; callers run on the other
	// two, so killing it removes hosts, not clients.
	keyOf := func(k int) string { return fmt.Sprintf("k%d", k) }
	victim, ok := rts[0].VirtualOwner("vhot", keyOf(0))
	if !ok {
		return nil, fmt.Errorf("bench: failover: ring has no owner")
	}
	var survivors []*core.Runtime
	for _, rt := range rts {
		if rt.NodeID() != victim {
			survivors = append(survivors, rt)
		}
	}

	// Activate (and replicate) every key before measuring, so the kill
	// tests failover of live state rather than first-call activation.
	for k := 0; k < cfg.Keys; k++ {
		p, err := survivors[0].VirtualObject("vhot", keyOf(k))
		if err != nil {
			return nil, err
		}
		if _, err := p.Invoke("Bump", int64(0)); err != nil {
			return nil, err
		}
	}

	succ := make([]atomic.Int64, cfg.Keys)
	var calls atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < cfg.Callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rt := survivors[c%len(survivors)]
			cache := make([]*core.Proxy, cfg.Keys)
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % cfg.Keys
				cctx, cancel := context.WithTimeout(context.Background(), time.Second)
				p := cache[k]
				if p == nil {
					var err error
					if p, err = rt.VirtualObjectCtx(cctx, "vhot", keyOf(k)); err != nil {
						cancel()
						continue // mid-failover: retry until routing converges
					}
					cache[k] = p
				}
				_, err := p.InvokeCtx(cctx, "Bump", int64(1))
				cancel()
				if err != nil {
					cache[k] = nil // stale route; re-resolve next round
					continue
				}
				succ[k].Add(1)
				calls.Add(1)
			}
		}(c)
	}

	window := func(phase string, d time.Duration) FailoverRow {
		start := calls.Load()
		t0 := time.Now()
		time.Sleep(d)
		elapsed := time.Since(t0)
		n := int(calls.Load() - start)
		return FailoverRow{
			Phase:       phase,
			Calls:       n,
			Elapsed:     elapsed,
			CallsPerSec: float64(n) / elapsed.Seconds(),
		}
	}

	fail := func(err error) ([]FailoverRow, error) {
		close(stop)
		wg.Wait()
		return nil, err
	}

	before := window("before", cfg.Phase)

	// Kill the owner outright — no drain, no goodbye — and measure until
	// every key has served a call again.
	preKill := make([]int64, cfg.Keys)
	for k := range preKill {
		preKill[k] = succ[k].Load()
	}
	startCalls := calls.Load()
	t0 := time.Now()
	rts[victim].Close()
	recoverDeadline := time.Now().Add(15 * time.Second)
	for k := 0; k < cfg.Keys; k++ {
		for succ[k].Load() == preKill[k] {
			if time.Now().After(recoverDeadline) {
				return fail(fmt.Errorf("bench: failover: key %s never recovered after the kill", keyOf(k)))
			}
			time.Sleep(time.Millisecond)
		}
	}
	elapsed := time.Since(t0)
	n := int(calls.Load() - startCalls)
	during := FailoverRow{
		Phase:           "during",
		Calls:           n,
		Elapsed:         elapsed,
		CallsPerSec:     float64(n) / elapsed.Seconds(),
		RecoverySeconds: elapsed.Seconds(),
	}

	after := window("after", cfg.Phase)
	close(stop)
	wg.Wait()

	// Correctness backstop: an acknowledged call must never be lost. Each
	// counter's total covers every success counted against it; synchronous
	// replication may re-apply an unacknowledged call after a retry, so
	// totals can exceed the counts — that excess is the duplicate tally.
	var duplicates int64
	for k := 0; k < cfg.Keys; k++ {
		p, err := survivors[0].VirtualObject("vhot", keyOf(k))
		if err != nil {
			return nil, err
		}
		res, err := p.Invoke("Bump", int64(0))
		if err != nil {
			return nil, err
		}
		total, ok := res.(int64)
		if !ok {
			return nil, fmt.Errorf("bench: failover total came back as %T", res)
		}
		acked := succ[k].Load()
		if total < acked {
			return nil, fmt.Errorf("bench: failover lost calls on %s: object saw %d, callers had %d acknowledged",
				keyOf(k), total, acked)
		}
		duplicates += total - acked
	}
	after.Duplicates = duplicates

	rows := []FailoverRow{before, during, after}
	if rec, ok := FailoverRecovery(rows); ok && cfg.MinRecovery > 0 && rec < cfg.MinRecovery {
		return nil, fmt.Errorf("bench: failover recovery %.2fx below required %.2fx", rec, cfg.MinRecovery)
	}
	return rows, nil
}

// FailoverRecovery extracts the after/before throughput ratio of a run.
func FailoverRecovery(rows []FailoverRow) (float64, bool) {
	var before, after float64
	for _, r := range rows {
		switch r.Phase {
		case "before":
			before = r.CallsPerSec
		case "after":
			after = r.CallsPerSec
		}
	}
	if before <= 0 || after <= 0 {
		return 0, false
	}
	return after / before, true
}

// PrintFailover emits the failover table.
func PrintFailover(w io.Writer, rows []FailoverRow) {
	fmt.Fprintln(w, "Failover — sustained calls/s through an owner-node crash (replicated virtual objects, no recovery action)")
	fmt.Fprintf(w, "%-10s %10s %12s %12s %12s %12s\n", "phase", "calls", "elapsed", "calls/s", "recovery", "duplicates")
	for _, r := range rows {
		rec := ""
		if r.RecoverySeconds > 0 {
			rec = fmt.Sprintf("%.3fs", r.RecoverySeconds)
		}
		fmt.Fprintf(w, "%-10s %10d %12s %12.0f %12s %12d\n",
			r.Phase, r.Calls, r.Elapsed.Round(time.Microsecond), r.CallsPerSec, rec, r.Duplicates)
	}
	if rec, ok := FailoverRecovery(rows); ok {
		fmt.Fprintf(w, "recovery: %.2fx of pre-kill throughput; zero acknowledged calls lost\n", rec)
	}
}
