package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/remoting"
	"repro/internal/transport"
	"repro/parc"
)

// SkeletonRow is one scenario of the skeletons experiment. The "async"
// scenario proves the completion-driven future path: thousands of
// outstanding CallAsync futures from a single goroutine with a flat
// process goroutine count, then drain throughput once the gate opens.
// The two "scatter-*" scenarios race the Scatter/Gather skeleton against
// a hand-rolled goroutine-per-call fan-out over the same remote worker
// population; the skeleton must not lose.
type SkeletonRow struct {
	Scenario    string        `json:"scenario"` // "async" | "scatter-skeleton" | "scatter-handrolled"
	Nodes       int           `json:"nodes"`
	Workers     int           `json:"workers"`
	Calls       int           `json:"calls"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	CallsPerSec float64       `json:"calls_per_sec"`
	// Outstanding is the peak number of unresolved futures held by the
	// single submitting goroutine (async scenario only).
	Outstanding int `json:"outstanding,omitempty"`
	// GoroutineDelta is runtime.NumGoroutine at that peak minus the
	// post-setup baseline (async scenario only). The completion-driven
	// future path keeps it bounded by the channel's in-flight window, not
	// by Outstanding.
	GoroutineDelta int `json:"goroutine_delta,omitempty"`
}

// SkeletonConfig parameterises the skeletons experiment.
type SkeletonConfig struct {
	// Outstanding async futures to hold at once in the "async" scenario.
	Outstanding int
	// Workers in the scatter group, spread round-robin across the two
	// non-entry nodes.
	Workers int
	// Window is the sampling duration for each scatter variant.
	Window time.Duration
	// MaxInFlight caps concurrent wire exchanges per mux lane; the
	// goroutine-flatness bound derives from it, so it is part of the
	// experiment's contract rather than an ambient default.
	MaxInFlight int
}

// skelWorker is the scatter workload class: a trivial echo so the
// measured cost is the call path, not the method body.
type skelWorker struct{}

// Echo returns its argument.
func (skelWorker) Echo(v int) int { return v }

// skelGate is the async workload class: Hit parks until the run's release
// channel closes, so futures pile up client-side while the server's
// concurrency stays pinned to the in-flight window.
type skelGate struct {
	release <-chan struct{}
}

// Hit blocks until released, then echoes.
func (g *skelGate) Hit(v int) int {
	<-g.release
	return v
}

// RunSkeletons measures the completion-driven async path and the
// Scatter/Gather skeleton over a 3-node loopback-TCP cluster (multiplexed
// channel). It hard-asserts the goroutine-flatness contract itself — the
// delta at peak outstanding must stay within a small multiple of the
// per-lane in-flight window — so a regression to goroutine-per-call fails
// the bench outright, not just the diff. The skeleton-vs-handrolled
// calls/s ratio is the gated headline.
func RunSkeletons(cfg SkeletonConfig) ([]SkeletonRow, error) {
	if cfg.Outstanding <= 0 {
		cfg.Outstanding = 10000
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Window <= 0 {
		cfg.Window = 300 * time.Millisecond
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}

	const nodes = 3
	release := make(chan struct{})
	net := transport.TCPNetwork{}
	rts := make([]*core.Runtime, nodes)
	addrs := make([]string, nodes)
	for i := range rts {
		ch := remoting.NewMultiplexedChannel(net)
		ch.MaxInFlight = cfg.MaxInFlight
		rt, err := core.Start(core.Config{
			NodeID:    i,
			Channel:   ch,
			Placement: core.LocalOnly{},
		}, "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("bench: skeletons node %d: %w", i, err)
		}
		defer rt.Close()
		rts[i] = rt
		addrs[i] = rt.Addr()
	}
	for _, rt := range rts {
		if err := rt.JoinCluster(addrs); err != nil {
			return nil, err
		}
		rt.RegisterClass("skel.worker", func() any { return skelWorker{} })
		rt.RegisterClass("skel.gate", func() any { return &skelGate{release: release} })
	}

	asyncRow, err := runSkeletonAsync(rts, release, cfg)
	if err != nil {
		return nil, err
	}

	// The worker population lives on the non-entry nodes; the entry node
	// binds typed handles and drives both scatter variants over the exact
	// same objects so the comparison isolates the fan-out mechanism.
	ctx := context.Background()
	objs := make([]*parc.Object[skelWorker], cfg.Workers)
	for i := range objs {
		host := rts[1+i%(nodes-1)]
		o, err := parc.NewAt[skelWorker](host, "skel.worker")
		if err != nil {
			return nil, fmt.Errorf("bench: skeletons worker %d: %w", i, err)
		}
		objs[i] = parc.Bind[skelWorker](rts[0], o.Ref())
	}
	g := parc.GroupOf(objs...)
	defer g.Destroy(ctx) //nolint:errcheck // best-effort cleanup

	skeleton, err := runScatterSkeleton(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	handrolled, err := runScatterHandrolled(ctx, g, cfg)
	if err != nil {
		return nil, err
	}
	return []SkeletonRow{asyncRow, skeleton, handrolled}, nil
}

// runSkeletonAsync holds cfg.Outstanding unresolved futures against a
// gated object on node 1, snapshots the goroutine delta at peak, then
// opens the gate and times the drain.
func runSkeletonAsync(rts []*core.Runtime, release chan struct{}, cfg SkeletonConfig) (SkeletonRow, error) {
	ctx := context.Background()
	hosted, err := parc.NewAt[skelGate](rts[1], "skel.gate")
	if err != nil {
		return SkeletonRow{}, fmt.Errorf("bench: skeletons gate: %w", err)
	}
	gate := parc.Bind[skelGate](rts[0], hosted.Ref())
	defer gate.Destroy(ctx) //nolint:errcheck // best-effort cleanup

	// Baseline after the lanes and their writer goroutines exist: one
	// released probe round-trip spins them up. The probe must not park on
	// the gate, so open-then-rearm is not an option — Hit with a closed
	// release would need a second object. Instead probe with a distinct
	// pre-released gate object.
	probeRelease := make(chan struct{})
	close(probeRelease)
	rts[1].RegisterClass("skel.gate.open", func() any { return &skelGate{release: probeRelease} })
	probeHosted, err := parc.NewAt[skelGate](rts[1], "skel.gate.open")
	if err != nil {
		return SkeletonRow{}, err
	}
	probe := parc.Bind[skelGate](rts[0], probeHosted.Ref())
	if _, err := parc.Call[int](ctx, probe, "Hit", 1); err != nil {
		return SkeletonRow{}, fmt.Errorf("bench: skeletons probe: %w", err)
	}
	probe.Destroy(ctx) //nolint:errcheck // best-effort cleanup
	runtime.GC()       // settle probe/teardown goroutines before the baseline
	baseline := runtime.NumGoroutine()

	results := make([]*parc.Result[int], cfg.Outstanding)
	for i := range results {
		results[i] = parc.CallAsync[int](ctx, gate, "Hit", i)
	}
	peak := runtime.NumGoroutine()
	delta := peak - baseline

	// The flatness contract: outstanding futures must not map to
	// goroutines. Blocked server handlers are bounded by the in-flight
	// window (all calls target one URI, hence one lane), plus slack for
	// runtime bookkeeping — nowhere near cfg.Outstanding.
	bound := 2*cfg.MaxInFlight + 32
	if delta > bound {
		return SkeletonRow{}, fmt.Errorf(
			"bench: skeletons: goroutine delta %d at %d outstanding futures exceeds bound %d (goroutine-per-call regression?)",
			delta, cfg.Outstanding, bound)
	}

	t0 := time.Now()
	close(release)
	sum, err := parc.WhenAll(results...).Get(ctx)
	elapsed := time.Since(t0)
	if err != nil {
		return SkeletonRow{}, fmt.Errorf("bench: skeletons drain: %w", err)
	}
	for i, v := range sum {
		if v != i {
			return SkeletonRow{}, fmt.Errorf("bench: skeletons drain: result %d came back %d", i, v)
		}
	}
	return SkeletonRow{
		Scenario:       "async",
		Nodes:          len(rts),
		Workers:        1,
		Calls:          cfg.Outstanding,
		Elapsed:        elapsed,
		CallsPerSec:    float64(cfg.Outstanding) / elapsed.Seconds(),
		Outstanding:    cfg.Outstanding,
		GoroutineDelta: delta,
	}, nil
}

// runScatterSkeleton drives Scatter/Gather rounds for the window and
// verifies every echo on the way.
func runScatterSkeleton(ctx context.Context, g *parc.Group[skelWorker], cfg SkeletonConfig) (SkeletonRow, error) {
	calls := 0
	t0 := time.Now()
	for round := 0; time.Since(t0) < cfg.Window; round++ {
		rs := parc.Scatter[int](ctx, g, "Echo", func(i int) []any { return []any{round*g.Size() + i} })
		vals, err := parc.Gather(ctx, rs)
		if err != nil {
			return SkeletonRow{}, fmt.Errorf("bench: skeletons scatter round %d: %w", round, err)
		}
		for i, v := range vals {
			if v != round*g.Size()+i {
				return SkeletonRow{}, fmt.Errorf("bench: skeletons scatter: worker %d echoed %d", i, v)
			}
		}
		calls += g.Size()
	}
	elapsed := time.Since(t0)
	return SkeletonRow{
		Scenario:    "scatter-skeleton",
		Nodes:       3,
		Workers:     g.Size(),
		Calls:       calls,
		Elapsed:     elapsed,
		CallsPerSec: float64(calls) / elapsed.Seconds(),
	}, nil
}

// runScatterHandrolled is the control: the same rounds over the same
// objects, fanned out the pre-skeleton way — one goroutine per call doing
// a synchronous Invoke, joined with a WaitGroup.
func runScatterHandrolled(ctx context.Context, g *parc.Group[skelWorker], cfg SkeletonConfig) (SkeletonRow, error) {
	calls := 0
	t0 := time.Now()
	for round := 0; time.Since(t0) < cfg.Window; round++ {
		vals := make([]int, g.Size())
		errs := make([]error, g.Size())
		var wg sync.WaitGroup
		for i := 0; i < g.Size(); i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				v, err := parc.Call[int](ctx, g.Object(i), "Echo", round*g.Size()+i)
				vals[i], errs[i] = v, err
			}(i)
		}
		wg.Wait()
		for i := range vals {
			if errs[i] != nil {
				return SkeletonRow{}, fmt.Errorf("bench: skeletons handrolled round %d: %w", round, errs[i])
			}
			if vals[i] != round*g.Size()+i {
				return SkeletonRow{}, fmt.Errorf("bench: skeletons handrolled: worker %d echoed %d", i, vals[i])
			}
		}
		calls += g.Size()
	}
	elapsed := time.Since(t0)
	return SkeletonRow{
		Scenario:    "scatter-handrolled",
		Nodes:       3,
		Workers:     g.Size(),
		Calls:       calls,
		Elapsed:     elapsed,
		CallsPerSec: float64(calls) / elapsed.Seconds(),
	}, nil
}

// SkeletonRatio extracts the scatter-skeleton over scatter-handrolled
// calls/s ratio of a run.
func SkeletonRatio(rows []SkeletonRow) (float64, bool) {
	var skel, hand float64
	for _, r := range rows {
		switch r.Scenario {
		case "scatter-skeleton":
			skel = r.CallsPerSec
		case "scatter-handrolled":
			hand = r.CallsPerSec
		}
	}
	if skel <= 0 || hand <= 0 {
		return 0, false
	}
	return skel / hand, true
}

// PrintSkeletons emits the skeletons table.
func PrintSkeletons(w io.Writer, rows []SkeletonRow) {
	fmt.Fprintln(w, "Skeletons — completion-driven futures (goroutine-flat async) and Scatter/Gather vs hand-rolled fan-out")
	fmt.Fprintf(w, "%-20s %6s %8s %10s %12s %12s %12s %10s\n",
		"scenario", "nodes", "workers", "calls", "elapsed", "calls/s", "outstanding", "g-delta")
	for _, r := range rows {
		fmt.Fprintf(w, "%-20s %6d %8d %10d %12s %12.0f %12d %10d\n",
			r.Scenario, r.Nodes, r.Workers, r.Calls, r.Elapsed.Round(time.Microsecond),
			r.CallsPerSec, r.Outstanding, r.GoroutineDelta)
	}
	if ratio, ok := SkeletonRatio(rows); ok {
		fmt.Fprintf(w, "scatter skeleton vs handrolled: %.2fx\n", ratio)
	}
}
