package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/raytracer"
	"repro/internal/rmi"
	"repro/internal/sieve"
	"repro/internal/wire"
)

// Fig. 9 renders a 500×500 scene with a farm of workers on 1–6 processors
// (dual-CPU nodes, so P processors occupy ceil(P/2) nodes) and compares the
// ParC# stack against a Java RMI farm.
//
// Hardware substitution: a 2005 Athlon MP 1800+ renders the paper's scene
// at roughly AthlonPixelCost per pixel (Fig. 9 shows ≈110 s sequential Java
// for 250 000 pixels). Modern hosts are two orders of magnitude faster and
// have arbitrary core counts, so the worker renders the real image (for
// checksum validation) and then holds its processor for the modelled
// remaining time. This keeps the scaling behaviour independent of the host
// machine while every communication cost stays real. TimeScale shrinks the
// modelled times so the full sweep completes in seconds; the reported
// seconds are de-scaled back to testbed magnitudes.

// AthlonPixelCost is the modelled per-pixel render time of the 2005
// testbed CPU at JVM speed (≈110 s / 250 000 px from Fig. 9).
const AthlonPixelCost = 440 * time.Microsecond

// Fig9Config parameterises the farm experiment.
type Fig9Config struct {
	// Width/Height of the image (paper: 500×500).
	Width, Height int
	// RowsPerBlock is how many lines one farm task renders ("each worker
	// renders several lines").
	RowsPerBlock int
	// TimeScale divides all modelled compute times (1 = real 2005
	// magnitudes; benchmarks use 100–500).
	TimeScale float64
	// Processors sweeps the x axis.
	Processors []int
	// Full network shaping on (tests may turn it off for speed).
	Net netsim.Params
}

// DefaultFig9Config returns a laptop-friendly configuration preserving the
// paper's shape: the full 500×500 image, scaled time.
func DefaultFig9Config(full bool) Fig9Config {
	cfg := Fig9Config{
		Width: 500, Height: 500,
		RowsPerBlock: 10,
		TimeScale:    150,
		Processors:   []int{1, 2, 3, 4, 5, 6},
		Net:          profile.Network(),
	}
	if !full {
		// Keep the compute-to-communication ratio of the paper's
		// full-size runs: fewer pixels but a proportionally lower
		// time scale, so blocks still cost milliseconds of modelled
		// compute against sub-millisecond communication.
		cfg.Width, cfg.Height = 100, 100
		cfg.RowsPerBlock = 10
		cfg.TimeScale = 50
		cfg.Processors = []int{1, 2, 4}
	}
	return cfg
}

// Fig9Row is one measured point.
type Fig9Row struct {
	Processors int
	// Seconds of modelled testbed time (de-scaled), keyed by system
	// ("ParC#", "Java RMI").
	Seconds map[string]float64
	// Checksum validates that every configuration rendered the same
	// image.
	Checksum map[string]int64
}

// rtWorker is the farm worker parallel object. SetScene installs the scene
// and the modelled per-pixel cost; Render produces the pixels of a row
// block and occupies its processor for the modelled time.
type rtWorker struct {
	mu        sync.Mutex
	scene     raytracer.Scene
	pixelCost time.Duration
	// renderMu serialises compute: one worker object models one
	// processor, so overlapping block requests (double buffering) only
	// overlap communication with computation, never computation with
	// itself.
	renderMu sync.Mutex
}

func init() {
	wire.Register(raytracer.Scene{})
	wire.Register(raytracer.Sphere{})
	wire.Register(raytracer.Light{})
	wire.Register(raytracer.Vec{})
}

// SetScene installs the render input. pixelCostNanos already includes the
// VM factor and time scaling.
func (w *rtWorker) SetScene(s raytracer.Scene, pixelCostNanos int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.scene = s
	w.pixelCost = time.Duration(pixelCostNanos)
}

// Render renders rows [y0, y1).
func (w *rtWorker) Render(y0, y1 int) []int32 {
	w.mu.Lock()
	scene := w.scene
	cost := w.pixelCost
	w.mu.Unlock()
	w.renderMu.Lock()
	defer w.renderMu.Unlock()
	start := time.Now()
	pixels := scene.RenderRows(y0, y1, 1)
	if modelled := time.Duration(len(pixels)) * cost; modelled > 0 {
		if rest := modelled - time.Since(start); rest > 0 {
			time.Sleep(rest)
		}
	}
	return pixels
}

// block is one farm task.
type block struct {
	idx    int
	y0, y1 int
}

func makeBlocks(height, rows int) []block {
	var out []block
	for y, i := 0, 0; y < height; y, i = y+rows, i+1 {
		end := y + rows
		if end > height {
			end = height
		}
		out = append(out, block{idx: i, y0: y, y1: end})
	}
	return out
}

// renderWorkerFn abstracts "render a block on worker w" over the two
// stacks.
type renderWorkerFn func(workerIdx int, b block) ([]int32, error)

// runFarm drives the farm: workers pull blocks from a shared queue with
// two outstanding requests per worker (double buffering overlaps the next
// block's communication with the current block's computation — the overlap
// the Mono thread pool destroys).
func runFarm(workers int, blocks []block, render renderWorkerFn) ([][]int32, error) {
	results := make([][]int32, len(blocks))
	queue := make(chan block, len(blocks))
	for _, b := range blocks {
		queue <- b
	}
	close(queue)
	var wg sync.WaitGroup
	errs := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		for lane := 0; lane < 2; lane++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for b := range queue {
					px, err := render(w, b)
					if err != nil {
						errs <- err
						return
					}
					results[b.idx] = px
				}
			}(w)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return nil, err
	}
	return results, nil
}

func assemble(results [][]int32) []int32 {
	var out []int32
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// nodesFor maps processors to dual-CPU nodes.
func nodesFor(processors int) int { return (processors + 1) / 2 }

// workerRoundRobin places objects round-robin over every node except the
// master (node 0). Both farms keep the coordinator on its own node so the
// two systems pay identical network costs per block; the paper's master
// shared a node with workers, but its local calls still crossed the local
// RMI/remoting stack, which the in-process runtime would short-circuit —
// see EXPERIMENTS.md (E4, topology note).
type workerRoundRobin struct {
	next atomic.Int64
}

// Pick implements core.PlacementPolicy.
func (w *workerRoundRobin) Pick(self int, loads []core.NodeLoad) int {
	var workers []int
	for _, l := range loads {
		if l.Node != 0 {
			workers = append(workers, l.Node)
		}
	}
	if len(workers) == 0 {
		return self
	}
	n := w.next.Add(1) - 1
	return workers[int(n)%len(workers)]
}

// RunParCSharpFarm measures the ParC# farm at one processor count and
// returns (de-scaled seconds, image checksum).
func RunParCSharpFarm(cfg Fig9Config, processors int) (float64, int64, error) {
	vm := profile.Mono()
	cl, err := cluster.New(cluster.Options{
		Nodes:     nodesFor(processors) + 1, // node 0 is the master
		Net:       cfg.Net,
		Cost:      profile.MonoTCP117(),
		PoolSize:  profile.MonoPoolSize,
		Placement: &workerRoundRobin{},
	})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	cl.RegisterClass("rtWorker", func() any { return &rtWorker{} })

	scene := raytracer.JGFScene(8, cfg.Width, cfg.Height)
	pixelCost := scaledPixelCost(vm.RayTracerFactor, cfg.TimeScale)
	master := cl.Node(0)
	proxies := make([]*core.Proxy, processors)
	for i := range proxies {
		p, err := master.NewParallelObject("rtWorker")
		if err != nil {
			return 0, 0, err
		}
		defer p.Destroy()
		if _, err := p.Invoke("SetScene", scene, int64(pixelCost)); err != nil {
			return 0, 0, err
		}
		proxies[i] = p
	}
	blocks := makeBlocks(cfg.Height, cfg.RowsPerBlock)
	start := time.Now()
	results, err := runFarm(processors, blocks, func(w int, b block) ([]int32, error) {
		res, err := proxies[w].Invoke("Render", b.y0, b.y1)
		if err != nil {
			return nil, err
		}
		return toInt32s(res)
	})
	if err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	image := assemble(results)
	return elapsed.Seconds() * cfg.TimeScale, raytracer.Checksum(image), nil
}

// RunJavaRMIFarm measures the Java RMI farm at one processor count.
func RunJavaRMIFarm(cfg Fig9Config, processors int) (float64, int64, error) {
	vm := profile.SunJVM()
	net := shapedNet(cfg.Net)
	nodes := nodesFor(processors)
	servers := make([]*rmi.Runtime, nodes)
	for i := range servers {
		rt := rmi.NewRuntime(net)
		rt.Cost = profile.JavaRMI()
		if err := rt.Listen(""); err != nil {
			return 0, 0, err
		}
		defer rt.Close()
		servers[i] = rt
	}
	scene := raytracer.JGFScene(8, cfg.Width, cfg.Height)
	pixelCost := scaledPixelCost(vm.RayTracerFactor, cfg.TimeScale)
	client := rmi.NewRuntime(net)
	client.Cost = profile.JavaRMI()
	stubs := make([]*rmi.Stub, processors)
	for i := 0; i < processors; i++ {
		node := servers[i%nodes]
		name := fmt.Sprintf("worker%d", i)
		w := &rtWorker{}
		w.SetScene(scene, int64(pixelCost))
		if err := node.Rebind(name, w); err != nil {
			return 0, 0, err
		}
		stub, err := client.Lookup(node.URLFor(name))
		if err != nil {
			return 0, 0, err
		}
		stubs[i] = stub
	}
	blocks := makeBlocks(cfg.Height, cfg.RowsPerBlock)
	start := time.Now()
	results, err := runFarm(processors, blocks, func(w int, b block) ([]int32, error) {
		res, err := stubs[w].Invoke("Render", b.y0, b.y1)
		if err != nil {
			return nil, err
		}
		return toInt32s(res)
	})
	if err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	image := assemble(results)
	return elapsed.Seconds() * cfg.TimeScale, raytracer.Checksum(image), nil
}

func scaledPixelCost(vmFactor, timeScale float64) time.Duration {
	return time.Duration(float64(AthlonPixelCost) * vmFactor / timeScale)
}

func toInt32s(v any) ([]int32, error) {
	switch x := v.(type) {
	case []int32:
		return x, nil
	case []any:
		out := make([]int32, len(x))
		for i, e := range x {
			n, ok := e.(int32)
			if !ok {
				return nil, fmt.Errorf("bench: pixel %d is %T", i, e)
			}
			out[i] = n
		}
		return out, nil
	}
	return nil, fmt.Errorf("bench: render returned %T", v)
}

// RunFig9 sweeps processor counts for both systems.
func RunFig9(cfg Fig9Config) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, p := range cfg.Processors {
		row := Fig9Row{
			Processors: p,
			Seconds:    map[string]float64{},
			Checksum:   map[string]int64{},
		}
		sec, sum, err := RunParCSharpFarm(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("bench: ParC# farm p=%d: %w", p, err)
		}
		row.Seconds["ParC#"] = sec
		row.Checksum["ParC#"] = sum
		sec, sum, err = RunJavaRMIFarm(cfg, p)
		if err != nil {
			return nil, fmt.Errorf("bench: RMI farm p=%d: %w", p, err)
		}
		row.Seconds["Java RMI"] = sec
		row.Checksum["Java RMI"] = sum
		rows = append(rows, row)
	}
	return rows, nil
}

// SeqRatioRow is one row of the E5 sequential-speed table.
type SeqRatioRow struct {
	Workload string
	VM       string
	Ratio    float64
}

// RunSeqRatios measures the modelled sequential time ratios the paper
// states in prose: ray tracer Mono/JVM ≈ 1.4, MS CLR/JVM ≈ 1.1, sieve
// Mono/JVM ≈ 1.0. The ray-tracer entries follow directly from the farm's
// modelled pixel cost; the sieve entries run the real kernel under the
// calibrated factors.
func RunSeqRatios(n int) []SeqRatioRow {
	vms := []profile.VM{profile.SunJVM(), profile.Mono(), profile.MSCLR()}
	var rows []SeqRatioRow
	// Ray tracer: the modelled per-pixel cost ratio is the measurement
	// (the kernel itself is identical work).
	base := vms[0].RayTracerFactor
	for _, vm := range vms {
		rows = append(rows, SeqRatioRow{
			Workload: "raytracer",
			VM:       vm.Name,
			Ratio:    vm.RayTracerFactor / base,
		})
	}
	// Sieve: run the real kernel under each factor and report measured
	// wall-clock ratios (minimum of several repetitions after a warm-up,
	// so allocator and cache effects do not masquerade as VM speed).
	timeOf := func(f float64) time.Duration {
		sieve.SequentialCount(n, f)
		best := time.Duration(1 << 62)
		for rep := 0; rep < 5; rep++ {
			start := time.Now()
			sieve.SequentialCount(n, f)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	jvm := timeOf(vms[0].SieveFactor)
	for _, vm := range vms {
		d := timeOf(vm.SieveFactor)
		rows = append(rows, SeqRatioRow{
			Workload: "sieve",
			VM:       vm.Name,
			Ratio:    float64(d) / float64(jvm),
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Workload < rows[j].Workload })
	return rows
}
