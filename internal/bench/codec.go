package bench

import (
	"bytes"
	"fmt"
	"io"
	"reflect"
	"testing"

	"repro/internal/wire"
)

// CodecPathRow is one measurement of the codec experiment: one serialisation
// path (generated or reflective) in one direction (encode or decode).
type CodecPathRow struct {
	Path        string  `json:"path"` // "generated" | "reflective"
	Op          string  `json:"op"`   // "encode" | "decode"
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	WireBytes   int     `json:"wire_bytes"`
}

// codecSample builds the envelope the experiment serialises: a realistic
// small RPC call (method name, a 64-byte numeric payload, a couple of
// scalar arguments), matching what the fanout experiment sends per call.
func codecSample() *CodecCall {
	return &CodecCall{
		URI:    "DivideServer/7",
		Method: "Echo",
		Seq:    99991,
		Args:   []any{payloadFor(64), 42, "caller-7"},
	}
}

// RunCodec measures the generated codec against the reflective binfmt
// encoder on the request-envelope hot path. Before timing anything it
// verifies the two paths are interchangeable: identical wire bytes from
// both encoders, and identical decoded values from both decoders — the
// invariant that lets generated and reflective peers interoperate.
//
// Rows come back in a fixed order: encode reflective, encode generated,
// decode reflective, decode generated. Both encode paths run over the same
// pooled Encoder, so the difference measured is the codec, not the buffer
// management.
func RunCodec() ([]CodecPathRow, error) {
	req := codecSample()
	gen := wire.BinFmt{}
	refl := wire.BinFmt{DisableGenerated: true}

	genBytes, err := gen.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("bench: codec: generated marshal: %w", err)
	}
	reflBytes, err := refl.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("bench: codec: reflective marshal: %w", err)
	}
	if !bytes.Equal(genBytes, reflBytes) {
		return nil, fmt.Errorf("bench: codec: wire bytes differ between generated (%d B) and reflective (%d B) encoders",
			len(genBytes), len(reflBytes))
	}
	vg, err := gen.Unmarshal(genBytes)
	if err != nil {
		return nil, fmt.Errorf("bench: codec: generated unmarshal: %w", err)
	}
	vr, err := refl.Unmarshal(genBytes)
	if err != nil {
		return nil, fmt.Errorf("bench: codec: reflective unmarshal: %w", err)
	}
	if !reflect.DeepEqual(vg, vr) {
		return nil, fmt.Errorf("bench: codec: decoded values differ: generated %#v vs reflective %#v", vg, vr)
	}

	encodeBench := func(generated bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := wire.NewEncoder()
				e.SetGenerated(generated)
				if err := e.Encode(req); err != nil {
					b.Fatal(err)
				}
				e.Release()
			}
		})
	}
	decodeBench := func(codec wire.Codec) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v, err := codec.Unmarshal(genBytes)
				if err != nil {
					b.Fatal(err)
				}
				// Steady state of the RPC hot path: once a call is
				// dispatched the server returns its args backing to the
				// wire free list, so the next decode reuses it instead of
				// allocating.
				if c, ok := v.(*CodecCall); ok {
					wire.RecycleAnySlice(c.Args)
				}
			}
		})
	}

	row := func(path, op string, r testing.BenchmarkResult) CodecPathRow {
		return CodecPathRow{
			Path:        path,
			Op:          op,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			WireBytes:   len(genBytes),
		}
	}
	return []CodecPathRow{
		row("reflective", "encode", encodeBench(false)),
		row("generated", "encode", encodeBench(true)),
		row("reflective", "decode", decodeBench(refl)),
		row("generated", "decode", decodeBench(gen)),
	}, nil
}

// PrintCodec emits the codec-experiment table with the generated-over-
// reflective speedup per direction.
func PrintCodec(w io.Writer, rows []CodecPathRow) {
	fmt.Fprintln(w, "Codec hot path — generated (parcgen) vs reflective binfmt on the request envelope")
	fmt.Fprintf(w, "%-12s %-8s %12s %12s %12s %10s\n", "path", "op", "ns/op", "allocs/op", "B/op", "wire B")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-8s %12.1f %12d %12d %10d\n",
			r.Path, r.Op, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp, r.WireBytes)
	}
	for _, op := range []string{"encode", "decode"} {
		var refl, gen float64
		for _, r := range rows {
			if r.Op != op {
				continue
			}
			if r.Path == "generated" {
				gen = r.NsPerOp
			} else {
				refl = r.NsPerOp
			}
		}
		if gen > 0 && refl > 0 {
			fmt.Fprintf(w, "%s speedup: %.2fx\n", op, refl/gen)
		}
	}
}
