package bench

import (
	"testing"
	"time"
)

// TestOpenLoopNetsimSmoke drives a short open-loop window over the
// netsim scenario (latency + injected loss) at 2x capacity: admission
// control must shed, the shed calls must surface as ErrOverloaded at the
// remote caller (drive classifies them via errors.Is), and the percentile
// pipeline — per-object histograms merged into one — must report a
// bounded p99 for accepted calls.
func TestOpenLoopNetsimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("open-loop smoke drives real time windows")
	}
	cfg := OpenLoopConfig{
		Objects:     2,
		ServiceTime: 5 * time.Millisecond,
		Duration:    500 * time.Millisecond,
		Clients:     10000,
		Bound:       8,
	}
	sc, err := openLoopNetsim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.cleanup()
	capacity, err := sc.calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := time.Duration(float64(cfg.Objects) / capacity * float64(time.Second))
	slo := 4 * time.Duration(cfg.Bound) * svc
	if slo < 50*time.Millisecond {
		slo = 50 * time.Millisecond
	}
	slo += sc.lossTail
	row := sc.drive(cfg, capacity, 2.0, slo)

	if row.Shed == 0 {
		t.Error("2x offered load over netsim shed nothing")
	}
	if row.ServerSheds < int64(row.Shed) {
		t.Errorf("server counted %d sheds, client observed %d ErrOverloaded", row.ServerSheds, row.Shed)
	}
	if row.Accepted == 0 {
		t.Fatal("no calls accepted")
	}
	ratio := float64(row.Accepted) / float64(row.Offered)
	if ratio < 0.2 || ratio > 0.95 {
		t.Errorf("accepted ratio %.2f outside [0.2, 0.95]", ratio)
	}
	if row.P99Ms <= 0 || row.P99Ms > row.SLOMs {
		t.Errorf("p99 %.1fms outside (0, SLO %.0fms]", row.P99Ms, row.SLOMs)
	}
	if row.P50Ms > row.P99Ms || row.P99Ms > row.MaxMs {
		t.Errorf("percentiles not ordered: p50 %.2f p99 %.2f max %.2f", row.P50Ms, row.P99Ms, row.MaxMs)
	}
	if row.OtherErrors > 0 {
		t.Errorf("%d calls failed with errors other than overload/deadline", row.OtherErrors)
	}
}
