package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/remoting"
	"repro/internal/transport"
)

// FanoutRow is one channel's result at one payload size in the
// pipelined-fanout experiment: many concurrent callers hammering one echo
// object on a single peer. The JSON form feeds the CI
// benchmark-regression gate.
type FanoutRow struct {
	Channel     string        `json:"channel"`
	Callers     int           `json:"callers"`
	Payload     int           `json:"payload_bytes"`
	TotalCalls  int           `json:"total_calls"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	CallsPerSec float64       `json:"calls_per_sec"`
	// Procs is the GOMAXPROCS the row ran under (0 in reports predating
	// the multi-core matrix, read as 1). Lanes is the MuxLanes setting of
	// the multiplexed channel (0 = channel default).
	Procs int `json:"procs,omitempty"`
	Lanes int `json:"lanes,omitempty"`
}

// FanoutConfig parameterises the fanout experiment.
type FanoutConfig struct {
	Callers        int
	CallsPerCaller int
	// Payloads are the approximate per-call payload sizes (bytes) to
	// sweep; nil means the default 64-byte grain. Sweeping grain sizes
	// shows where envelope batching stops mattering: fixed per-call costs
	// dominate tiny calls and wash out under large payloads.
	Payloads []int
	// DisableBinding forces the string envelope on every call (the
	// remoting.Channel escape hatch), so both envelope variants can be
	// exercised and compared.
	DisableBinding bool
	// Procs sweeps GOMAXPROCS: the experiment repeats once per value,
	// restoring the previous setting afterwards. Nil means the current
	// GOMAXPROCS, no sweep. The multi-core matrix (1 vs 4) shows how far
	// lane striping and sharded tables lift calls/s per added core.
	Procs []int
	// Lanes sets the multiplexed channel's MuxLanes (0 = channel default,
	// min(GOMAXPROCS, 4); 1 = the pre-lane single-connection path).
	Lanes int
}

// DefaultFanoutPayload is the payload size used when no sweep is requested,
// matching the codec experiment's envelope.
const DefaultFanoutPayload = 64

// RunPipelinedFanout measures the dial-or-queue penalty of the pooled TCP
// channel against the multiplexed channel at the default payload size; see
// RunFanout for the full knobs.
func RunPipelinedFanout(callers, callsPerCaller int) ([]FanoutRow, error) {
	return RunFanout(FanoutConfig{Callers: callers, CallsPerCaller: callsPerCaller})
}

// RunFanout measures the pooled TCP channel against the multiplexed
// channel: Callers goroutines each perform CallsPerCaller synchronous echo
// calls against one peer, per payload size. The pooled channel serialises
// one in-flight call per connection (dialling whenever the pool runs dry);
// the multiplexed channel pipelines every caller over one long-lived
// connection, with bound call handles and coalesced frame batching unless
// DisableBinding forces the string envelope.
//
// Unlike the paper-reproduction figures, this experiment runs over real
// loopback TCP with no injected 2005 costs: it is the forward-looking
// production benchmark (ROADMAP: "as fast as the hardware allows"), so the
// hardware, not the calibrated cost model, is what gets measured. Rows
// come back ordered payload-major, channel-minor: pooled first, then
// multiplexed, per payload size.
//
// Each configuration runs fanoutRounds times and reports its best round:
// loopback scheduling noise on a shared machine easily skews a single
// round by tens of percent, and the CI regression gate diffs these numbers
// with a 15% budget, so the stable best-case is what gets tracked.
func RunFanout(cfg FanoutConfig) ([]FanoutRow, error) {
	configs := []struct {
		name string
		kind remoting.Kind
	}{
		{"Tcp (pooled)", remoting.TCP},
		{"Tcp (multiplexed)", remoting.Multiplexed},
	}
	payloads := cfg.Payloads
	if len(payloads) == 0 {
		payloads = []int{DefaultFanoutPayload}
	}
	procs := cfg.Procs
	if len(procs) == 0 {
		procs = []int{runtime.GOMAXPROCS(0)}
	}
	rows := make([]FanoutRow, 0, len(configs)*len(payloads)*len(procs))
	for _, p := range procs {
		if p < 1 {
			return nil, fmt.Errorf("bench: fanout: procs %d out of range", p)
		}
		prev := runtime.GOMAXPROCS(p)
		for _, payload := range payloads {
			for _, c := range configs {
				var best FanoutRow
				for round := 0; round < fanoutRounds; round++ {
					row, err := runFanout(c.name, c.kind, cfg, payload)
					if err != nil {
						runtime.GOMAXPROCS(prev)
						return nil, fmt.Errorf("bench: fanout %s: %w", c.name, err)
					}
					if row.CallsPerSec > best.CallsPerSec {
						best = row
					}
				}
				best.Procs = p
				rows = append(rows, best)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
	return rows, nil
}

// fanoutRounds is the best-of count per configuration.
const fanoutRounds = 3

func runFanout(name string, kind remoting.Kind, cfg FanoutConfig, payloadBytes int) (FanoutRow, error) {
	net := transport.TCPNetwork{}
	var ch *remoting.Channel
	switch kind {
	case remoting.Multiplexed:
		ch = remoting.NewMultiplexedChannel(net)
	default:
		ch = remoting.NewTCPChannel(net)
	}
	ch.DisableBinding = cfg.DisableBinding
	ch.MuxLanes = cfg.Lanes
	server, err := ch.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return FanoutRow{}, err
	}
	defer server.Close()
	defer ch.Close()
	server.RegisterWellKnown("Echo", remoting.Singleton, func() any { return echoService{} })
	ref, err := remoting.GetObject(ch, server.URLFor("Echo"))
	if err != nil {
		return FanoutRow{}, err
	}
	payload := payloadFor(payloadBytes)
	if _, err := ref.Invoke("Echo", payload); err != nil {
		return FanoutRow{}, err
	}
	errc := make(chan error, cfg.Callers)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < cfg.CallsPerCaller; j++ {
				if _, err := ref.Invoke("Echo", payload); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errc:
		return FanoutRow{}, err
	default:
	}
	total := cfg.Callers * cfg.CallsPerCaller
	lanes := 0
	if kind == remoting.Multiplexed {
		// Record the effective count: cfg.Lanes==0 defers to the GOMAXPROCS
		// default, which RunFanout has already set for this cell.
		if lanes = cfg.Lanes; lanes <= 0 {
			lanes = remoting.DefaultMuxLanes()
		}
	}
	return FanoutRow{
		Channel:     name,
		Callers:     cfg.Callers,
		Payload:     payloadBytes,
		TotalCalls:  total,
		Elapsed:     elapsed,
		CallsPerSec: float64(total) / elapsed.Seconds(),
		Lanes:       lanes,
	}, nil
}

// PrintFanout emits the pipelined-fanout table.
func PrintFanout(w io.Writer, rows []FanoutRow) {
	fmt.Fprintln(w, "Pipelined fanout — concurrent callers, one peer over loopback TCP (pooled vs multiplexed)")
	fmt.Fprintf(w, "%-20s %6s %8s %8s %10s %12s %12s\n", "channel", "procs", "callers", "payload", "calls", "elapsed", "calls/s")
	for _, r := range rows {
		procs := r.Procs
		if procs == 0 {
			procs = 1
		}
		fmt.Fprintf(w, "%-20s %6d %8d %8d %10d %12s %12.0f\n",
			r.Channel, procs, r.Callers, r.Payload, r.TotalCalls, r.Elapsed.Round(time.Microsecond), r.CallsPerSec)
	}
}
