package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

func sampleBaseline() Report {
	return Report{
		Meta: CurrentMeta(),
		Fanout: []FanoutRow{
			{Channel: "Tcp (pooled)", Callers: 64, Payload: 64, TotalCalls: 1920, CallsPerSec: 40000},
			{Channel: "Tcp (multiplexed)", Callers: 64, Payload: 64, TotalCalls: 1920, CallsPerSec: 90000},
		},
		Codec: []CodecPathRow{
			{Path: "generated", Op: "encode", NsPerOp: 200, AllocsPerOp: 0},
			{Path: "reflective", Op: "encode", NsPerOp: 500, AllocsPerOp: 5},
		},
	}
}

func TestCompareReportsPasses(t *testing.T) {
	base := sampleBaseline()
	cur := sampleBaseline()
	// Within tolerance: a 10% fanout dip and a 10% codec slowdown.
	cur.Fanout[1].CallsPerSec = 81000
	cur.Codec[0].NsPerOp = 220
	if problems := CompareReports(base, cur, 0.15); len(problems) != 0 {
		t.Errorf("within-tolerance drift reported as regression: %v", problems)
	}
	// Improvements are never regressions.
	cur.Fanout[0].CallsPerSec = 80000
	cur.Codec[1].NsPerOp = 100
	if problems := CompareReports(base, cur, 0.15); len(problems) != 0 {
		t.Errorf("improvement reported as regression: %v", problems)
	}
}

func TestCompareReportsCatchesRegressions(t *testing.T) {
	base := sampleBaseline()
	cur := sampleBaseline()
	cur.Fanout[1].CallsPerSec = 70000 // -22% calls/s
	cur.Codec[0].NsPerOp = 300        // +50% ns/op
	problems := CompareReports(base, cur, 0.15)
	if len(problems) != 2 {
		t.Fatalf("want 2 regressions, got %d: %v", len(problems), problems)
	}
	joined := strings.Join(problems, "\n")
	for _, want := range []string{"Tcp (multiplexed)", "generated/encode"} {
		if !strings.Contains(joined, want) {
			t.Errorf("problems missing %q:\n%s", want, joined)
		}
	}
}

func TestCompareReportsCatchesMissingRows(t *testing.T) {
	base := sampleBaseline()
	cur := sampleBaseline()
	cur.Fanout = cur.Fanout[:1]
	cur.Codec = nil
	problems := CompareReports(base, cur, 0.15)
	if len(problems) != 3 {
		t.Fatalf("want 3 missing-row problems, got %d: %v", len(problems), problems)
	}
	for _, p := range problems {
		if !strings.Contains(p, "missing from current report") {
			t.Errorf("unexpected problem text: %s", p)
		}
	}
}

func TestRelativeMetrics(t *testing.T) {
	m := RelativeMetrics(sampleBaseline())
	if got := m["fanout Tcp (multiplexed) @64B x1p vs Tcp (pooled)"]; got != 2.25 {
		t.Errorf("fanout ratio = %v, want 2.25 (metrics: %v)", got, m)
	}
	if got := m["codec encode speedup"]; got != 2.5 {
		t.Errorf("encode speedup = %v, want 2.5", got)
	}
}

// TestRelativeMetricsPerCore: rows measured at GOMAXPROCS=4 produce a
// per-core scaling ratio against the 1-proc row of the same channel and
// payload, and never gate against rows from a different procs cell.
func TestRelativeMetricsPerCore(t *testing.T) {
	r := sampleBaseline()
	r.Fanout = append(r.Fanout,
		FanoutRow{Channel: "Tcp (pooled)", Callers: 64, Payload: 64, Procs: 4, CallsPerSec: 80000},
		FanoutRow{Channel: "Tcp (multiplexed)", Callers: 64, Payload: 64, Procs: 4, CallsPerSec: 270000},
	)
	m := RelativeMetrics(r)
	// 270000 calls/s on 4 cores = 67500 per core, over 90000 at 1 proc.
	if got := m["fanout Tcp (multiplexed) @64B x4p per-core"]; got != 0.75 {
		t.Errorf("per-core scaling = %v, want 0.75 (metrics: %v)", got, m)
	}
	// The 4-proc cell gets its own channel-vs-channel ratio.
	if got := m["fanout Tcp (multiplexed) @64B x4p vs Tcp (pooled)"]; got != 3.375 {
		t.Errorf("4p channel ratio = %v, want 3.375", got)
	}
	// A regression confined to multi-core scaling fails the relative gate.
	cur := Report{Fanout: append([]FanoutRow(nil), r.Fanout...), Codec: r.Codec}
	cur.Fanout[3].CallsPerSec = 100000 // scaling collapsed
	problems := CompareReportsRelative(r, cur, 0.15)
	if len(problems) == 0 {
		t.Error("collapsed multi-core scaling passed the relative gate")
	}
}

func TestMetaMismatch(t *testing.T) {
	a := &ReportMeta{GOMAXPROCS: 4, NumCPU: 4}
	if msg := MetaMismatch(a, &ReportMeta{GOMAXPROCS: 4, NumCPU: 4}); msg != "" {
		t.Errorf("equal metas mismatch: %q", msg)
	}
	if msg := MetaMismatch(a, &ReportMeta{GOMAXPROCS: 1, NumCPU: 4}); !strings.Contains(msg, "GOMAXPROCS") {
		t.Errorf("GOMAXPROCS mismatch not reported: %q", msg)
	}
	if msg := MetaMismatch(a, &ReportMeta{GOMAXPROCS: 4, NumCPU: 8}); !strings.Contains(msg, "NumCPU") {
		t.Errorf("NumCPU mismatch not reported: %q", msg)
	}
	if msg := MetaMismatch(nil, a); msg != "" {
		t.Errorf("legacy report without meta must not be refused: %q", msg)
	}
}

// TestCompareReportsAllocGate: an allocs/op rise fails both gates with no
// tolerance, and equal-or-fewer allocs pass.
func TestCompareReportsAllocGate(t *testing.T) {
	base := sampleBaseline()
	cur := sampleBaseline()
	cur.Codec[0].AllocsPerOp = 2 // generated encode: 0 -> 2
	for name, compare := range map[string]func(Report, Report, float64) []string{
		"absolute": CompareReports,
		"relative": CompareReportsRelative,
	} {
		problems := compare(base, cur, 0.15)
		if len(problems) != 1 || !strings.Contains(problems[0], "allocs/op rose 0 -> 2") {
			t.Errorf("%s: alloc regression not caught: %v", name, problems)
		}
	}
	improved := sampleBaseline()
	improved.Codec[1].AllocsPerOp = 1 // reflective encode improved
	if problems := CompareReports(base, improved, 0.15); len(problems) != 0 {
		t.Errorf("alloc improvement reported as regression: %v", problems)
	}
}

// TestCompareReportsPayloadKeys: rows at different payload sizes never
// gate against each other, and a legacy baseline row without a payload
// compares against the default grain size.
func TestCompareReportsPayloadKeys(t *testing.T) {
	base := sampleBaseline()
	cur := sampleBaseline()
	cur.Fanout = append(cur.Fanout, FanoutRow{
		Channel: "Tcp (multiplexed)", Callers: 64, Payload: 4096, CallsPerSec: 10000,
	})
	// The slow 4096B row must not be mistaken for the 64B baseline row.
	if problems := CompareReports(base, cur, 0.15); len(problems) != 0 {
		t.Errorf("payload sweep rows cross-gated: %v", problems)
	}
	legacy := sampleBaseline()
	for i := range legacy.Fanout {
		legacy.Fanout[i].Payload = 0 // baseline predating the sweep
	}
	cur2 := sampleBaseline()
	cur2.Fanout[1].CallsPerSec = 50000 // -44% vs the legacy 90000
	problems := CompareReports(legacy, cur2, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "@64B") {
		t.Errorf("legacy baseline did not gate default payload: %v", problems)
	}
}

func TestCompareReportsRelative(t *testing.T) {
	base := sampleBaseline()

	// Uniformly slower hardware: both fanout channels and both codec
	// paths 2x slower — ratios unchanged, gate passes.
	slow := sampleBaseline()
	for i := range slow.Fanout {
		slow.Fanout[i].CallsPerSec /= 2
	}
	for i := range slow.Codec {
		slow.Codec[i].NsPerOp *= 2
	}
	if problems := CompareReportsRelative(base, slow, 0.15); len(problems) != 0 {
		t.Errorf("uniform slowdown failed the relative gate: %v", problems)
	}

	// Losing the generated codec's edge fails even on fast hardware.
	lostEdge := sampleBaseline()
	for i := range lostEdge.Codec {
		lostEdge.Codec[i].NsPerOp /= 2 // everything faster...
		if lostEdge.Codec[i].Path == "generated" {
			lostEdge.Codec[i].NsPerOp *= 1.8 // ...but generated lost most of its lead
		}
	}
	problems := CompareReportsRelative(base, lostEdge, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "codec encode speedup") {
		t.Errorf("lost codec edge not caught: %v", problems)
	}

	// Missing section fails.
	missing := sampleBaseline()
	missing.Codec = nil
	problems = CompareReportsRelative(base, missing, 0.15)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing") {
		t.Errorf("missing ratios not caught: %v", problems)
	}
}

func TestReportRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	want := sampleBaseline()
	if err := WriteReport(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Fanout) != 2 || len(got.Codec) != 2 {
		t.Fatalf("round-trip lost rows: %+v", got)
	}
	if got.Fanout[0].Channel != "Tcp (pooled)" || got.Codec[0].Path != "generated" {
		t.Errorf("round-trip mangled rows: %+v", got)
	}
}

// TestRunCodecIdentity runs the real codec experiment's verification arm
// (bytes identical, values identical) without the timed benchmarks.
func TestRunCodecIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs benchmarks")
	}
	rows, err := RunCodec()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("want 4 rows, got %d", len(rows))
	}
	var genEnc CodecPathRow
	for _, r := range rows {
		if r.Path == "generated" && r.Op == "encode" {
			genEnc = r
		}
	}
	if genEnc.AllocsPerOp > 2 {
		t.Errorf("generated encode allocates %d/op, want <= 2 (steady-state call path)", genEnc.AllocsPerOp)
	}
}
