package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/netsim"
)

// ---------------------------------------------------------------- model

// TestModelLatencyAnchors checks that the calibrated analytic model lands
// near the paper's reported round-trip latencies (MPI 100 µs, Mono 273 µs,
// Java RMI 520 µs) for small messages.
func TestModelLatencyAnchors(t *testing.T) {
	cases := []struct {
		model  StackModel
		target time.Duration
	}{
		{ModelMPI(), 100 * time.Microsecond},
		{ModelMono117(), 273 * time.Microsecond},
		{ModelRMI(), 520 * time.Microsecond},
	}
	for _, c := range cases {
		rtt := c.model.RTT(4)
		lo := time.Duration(float64(c.target) * 0.7)
		hi := time.Duration(float64(c.target) * 1.3)
		if rtt < lo || rtt > hi {
			t.Errorf("%s modelled RTT = %v, want within 30%% of %v", c.model.Name, rtt, c.target)
		}
	}
}

// TestModelLatencyOrdering asserts MPI < Mono < RMI for small messages.
func TestModelLatencyOrdering(t *testing.T) {
	mpi := ModelMPI().RTT(4)
	mono := ModelMono117().RTT(4)
	rmi := ModelRMI().RTT(4)
	if !(mpi < mono && mono < rmi) {
		t.Errorf("latency ordering broken: MPI %v, Mono %v, RMI %v", mpi, mono, rmi)
	}
}

// TestModelBandwidthOrderingLarge asserts the Fig. 8a large-message order:
// MPI > Java RMI > Mono, with MPI near link rate.
func TestModelBandwidthOrderingLarge(t *testing.T) {
	const size = 1 << 20
	mpi := ModelMPI().BandwidthMBps(size)
	rmi := ModelRMI().BandwidthMBps(size)
	mono := ModelMono117().BandwidthMBps(size)
	if !(mpi > rmi && rmi > mono) {
		t.Errorf("bandwidth ordering broken: MPI %.2f, RMI %.2f, Mono %.2f", mpi, rmi, mono)
	}
	if mpi < 9 || mpi > 12.5 {
		t.Errorf("MPI bandwidth %.2f MB/s not near the 12.5 MB/s link rate", mpi)
	}
	// Rough factors from the figure: Mono roughly half of MPI at 1 MB.
	if ratio := mpi / mono; ratio < 1.3 || ratio > 4 {
		t.Errorf("MPI/Mono ratio %.2f outside the paper's rough factor", ratio)
	}
}

// TestModelRMIMonoCrossover: at small sizes Mono beats RMI (latency), at
// large sizes RMI overtakes Mono (tuned bulk path) — the crossover visible
// in Fig. 8a.
func TestModelRMIMonoCrossover(t *testing.T) {
	small := 64
	large := 1 << 20
	if !(ModelMono117().RTT(small) < ModelRMI().RTT(small)) {
		t.Error("Mono should win at small sizes")
	}
	if !(ModelRMI().BandwidthMBps(large) > ModelMono117().BandwidthMBps(large)) {
		t.Error("RMI should win at large sizes")
	}
}

// TestModelFig8bCollapse asserts the Fig. 8b shape: Mono 1.0.5 and the HTTP
// channel sit far below Mono 1.1.7 across the mid-range.
func TestModelFig8bCollapse(t *testing.T) {
	for _, size := range []int{4096, 65536, 1 << 20} {
		good := ModelMono117().BandwidthMBps(size)
		legacy := ModelMono105().BandwidthMBps(size)
		http := ModelMonoHTTP().BandwidthMBps(size)
		if !(good > 3*legacy) {
			t.Errorf("size %d: 1.1.7 (%.3f) not ≫ 1.0.5 (%.3f)", size, good, legacy)
		}
		if !(good > 3*http) {
			t.Errorf("size %d: Tcp (%.3f) not ≫ Http (%.3f)", size, good, http)
		}
	}
}

// TestModelBandwidthMonotone: every stack's bandwidth grows with message
// size (the rising curves of Fig. 8).
func TestModelBandwidthMonotone(t *testing.T) {
	models := []StackModel{ModelMPI(), ModelRMI(), ModelMono117(), ModelMonoHTTP()}
	sizes := MessageSizes(true)
	for _, m := range models {
		prev := 0.0
		for _, s := range sizes {
			bw := m.BandwidthMBps(s)
			if bw < prev*0.95 { // allow tiny envelope wiggle
				t.Errorf("%s: bandwidth dropped at %d bytes (%.4f < %.4f)", m.Name, s, bw, prev)
			}
			if bw > prev {
				prev = bw
			}
		}
	}
}

// ---------------------------------------------------------------- measured

// TestMeasuredSweepUnshaped runs the real stacks end to end without network
// shaping (fast) and checks they all complete and report plausible rows.
func TestMeasuredSweepUnshaped(t *testing.T) {
	stacks := []Stack{}
	mpiS, err := NewMPIStack(netsim.Params{}, zeroCost())
	if err != nil {
		t.Fatal(err)
	}
	stacks = append(stacks, mpiS)
	rmiS, err := NewRMIStack(netsim.Params{}, zeroCost())
	if err != nil {
		t.Fatal(err)
	}
	stacks = append(stacks, rmiS)
	monoS, err := NewRemotingStack("Mono", 0, netsim.Params{}, zeroCost())
	if err != nil {
		t.Fatal(err)
	}
	stacks = append(stacks, monoS)
	defer CloseAll(stacks)

	rows, err := Sweep(stacks, MessageSizes(false), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(MessageSizes(false)) {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		for name, bw := range r.MBps {
			if bw <= 0 {
				t.Errorf("size %d: %s bandwidth %.3f", r.SizeBytes, name, bw)
			}
		}
	}
}

// TestMeasuredLatencyShapedOrdering runs the calibrated stacks on the
// shaped network and asserts the paper's latency ordering (with generous
// slack for scheduler noise).
func TestMeasuredLatencyShapedOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("shaped run in -short mode")
	}
	stacks, err := Fig8aStacks()
	if err != nil {
		t.Fatal(err)
	}
	defer CloseAll(stacks)
	res, err := MeasureLatency(stacks, 20)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]time.Duration{}
	for _, r := range res {
		byName[r.Name] = r.RTT
	}
	if !(byName["MPI"] < byName["Mono"] && byName["Mono"] < byName["Java RMI"]) {
		t.Errorf("measured latency ordering broken: %v", byName)
	}
}

// TestMeasuredOverheadSmall verifies E6: the ParC# proxy path costs only a
// small multiple of raw remoting on an ideal network, and "not noticeable"
// magnitudes (< ~25%) on the shaped one.
func TestMeasuredOverheadSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("shaped run in -short mode")
	}
	res, err := RunOverhead(1024, 20, netsim.Ethernet100())
	if err != nil {
		t.Fatal(err)
	}
	if res.OverheadPct > 40 {
		t.Errorf("ParC# overhead %.1f%% is noticeable (raw %v, proxy %v)",
			res.OverheadPct, res.RawRTT, res.ProxyRTT)
	}
}

// TestAggregationSweepShape: more aggregation, fewer batches; correctness
// invariant: prime counts identical across settings.
func TestAggregationSweepShape(t *testing.T) {
	rows, err := RunAggregationSweep(150, []int{1, 8, 32}, netsim.Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PrimesFound != 35 { // π(150)
			t.Errorf("maxCalls=%d found %d primes, want 35", r.MaxCalls, r.PrimesFound)
		}
	}
	if rows[0].Batches != 0 {
		t.Errorf("maxCalls=1 should disable batching, sent %d", rows[0].Batches)
	}
	if rows[1].Batches == 0 {
		t.Error("maxCalls=8 sent no batches")
	}
}

// TestAgglomerationAblationShape: with near-zero grains on a costly
// network, packing all objects must beat full parallelism.
func TestAgglomerationAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shaped run in -short mode")
	}
	rows, err := RunAgglomerationAblation(8, 20, netsim.Ethernet100())
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]AgglomRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	never := byPolicy["never (all parallel)"]
	always := byPolicy["always (all packed)"]
	if always.Agglomerated != 8 {
		t.Errorf("always policy agglomerated %d of 8", always.Agglomerated)
	}
	if never.Agglomerated != 0 {
		t.Errorf("never policy agglomerated %d", never.Agglomerated)
	}
	if !(always.Seconds < never.Seconds) {
		t.Errorf("packing fine grains should win: always %.3fs vs never %.3fs",
			always.Seconds, never.Seconds)
	}
}

// TestCodecAblationShape mirrors wire's size ordering through the harness.
func TestCodecAblationShape(t *testing.T) {
	rows, err := RunCodecAblation(1024)
	if err != nil {
		t.Fatal(err)
	}
	sizes := map[string]int{}
	for _, r := range rows {
		sizes[r.Codec] = r.Bytes
	}
	if !(sizes["binfmt"] < sizes["javaser"] && sizes["javaser"] < sizes["soapfmt"]) {
		t.Errorf("codec size ordering broken: %v", sizes)
	}
}

// TestFig9SmallShape runs a miniature Fig. 9 and asserts the headline
// claims: both systems speed up with processors, ParC# stays above Java
// RMI, and every run renders the identical image.
func TestFig9SmallShape(t *testing.T) {
	if testing.Short() {
		t.Skip("farm run in -short mode")
	}
	if raceEnabled {
		t.Skip("race instrumentation skews the calibrated timing model")
	}
	cfg := DefaultFig9Config(false)
	rows, err := RunFig9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var checksum int64
	for i, r := range rows {
		parc := r.Seconds["ParC#"]
		java := r.Seconds["Java RMI"]
		if parc <= java {
			t.Errorf("p=%d: ParC# (%.1fs) should sit above Java RMI (%.1fs)", r.Processors, parc, java)
		}
		if r.Checksum["ParC#"] != r.Checksum["Java RMI"] {
			t.Errorf("p=%d: systems rendered different images", r.Processors)
		}
		if i == 0 {
			checksum = r.Checksum["ParC#"]
		} else if r.Checksum["ParC#"] != checksum {
			t.Errorf("p=%d: image differs from p=%d run", r.Processors, rows[0].Processors)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	for _, sys := range []string{"ParC#", "Java RMI"} {
		if !(last.Seconds[sys] < first.Seconds[sys]*0.75) {
			t.Errorf("%s did not scale: p=%d %.1fs vs p=%d %.1fs",
				sys, first.Processors, first.Seconds[sys], last.Processors, last.Seconds[sys])
		}
	}
}

// TestSeqRatios checks the paper's sequential observations land.
func TestSeqRatios(t *testing.T) {
	rows := RunSeqRatios(200_000)
	byKey := map[string]float64{}
	for _, r := range rows {
		byKey[r.Workload+"/"+r.VM] = r.Ratio
	}
	if got := byKey["raytracer/Mono 1.1.7"]; got < 1.35 || got > 1.45 {
		t.Errorf("raytracer Mono ratio = %.2f, want ≈1.4", got)
	}
	if got := byKey["raytracer/MS CLR 1.1"]; got < 1.05 || got > 1.15 {
		t.Errorf("raytracer MS CLR ratio = %.2f, want ≈1.1", got)
	}
	if got := byKey["sieve/Mono 1.1.7"]; got < 0.7 || got > 1.4 {
		t.Errorf("sieve Mono ratio = %.2f, want ≈1.0", got)
	}
}

// TestPrinters smoke-tests every table printer.
func TestPrinters(t *testing.T) {
	var sb strings.Builder
	rows := ModelSweep([]StackModel{ModelMPI(), ModelRMI()}, MessageSizes(false))
	PrintBandwidth(&sb, "title", rows)
	PrintLatency(&sb, "lat", []LatencyResult{{Name: "x", RTT: time.Millisecond}})
	PrintFig9(&sb, []Fig9Row{{Processors: 1, Seconds: map[string]float64{"ParC#": 1, "Java RMI": 2}}})
	PrintSeqRatios(&sb, []SeqRatioRow{{Workload: "w", VM: "v", Ratio: 1}})
	PrintAggregation(&sb, []AggRow{{MaxCalls: 1}})
	PrintAgglomeration(&sb, []AgglomRow{{Policy: "p"}})
	PrintCodecs(&sb, []CodecRow{{Codec: "c"}})
	PrintPool(&sb, []PoolRow{{PoolSize: 1}})
	PrintOverhead(&sb, OverheadResult{})
	out := sb.String()
	for _, want := range []string{"title", "lat", "Fig. 9", "E5", "A1", "A2", "A3", "A4", "E6"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q", want)
		}
	}
}

func zeroCost() cost.Model { return cost.Model{} }
