package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/remoting"
	"repro/internal/transport"
)

// ChaosRow is one phase of the chaos experiment: sustained effectively-once
// calls/s before, during and after a seeded fault schedule (partitions,
// crash-restarts, stalls) runs against a replicated virtual-object cluster.
// The JSON form feeds the CI regression gate, which tracks the after/calm
// recovery ratio.
type ChaosRow struct {
	Phase       string        `json:"phase"` // "calm", "chaos", "recover", "after"
	Calls       int           `json:"calls"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	CallsPerSec float64       `json:"calls_per_sec"`
	// RecoverySeconds is the time from the final heal until every key had
	// served a call again (non-zero only for "recover").
	RecoverySeconds float64 `json:"recovery_seconds,omitempty"`
	// Faults is the number of fault events injected (non-zero only for
	// "chaos"); Seed reproduces the schedule.
	Faults int   `json:"faults,omitempty"`
	Seed   int64 `json:"seed,omitempty"`
}

// ChaosConfig parameterises the chaos experiment.
type ChaosConfig struct {
	// Keys is the virtual-object key population; Callers goroutines spread
	// over all nodes hammer them round-robin.
	Keys    int
	Callers int
	// Calm is the sampling window for the calm and after measurements;
	// Chaos is how long the fault schedule runs.
	Calm  time.Duration
	Chaos time.Duration
	// Probe is the health-probe interval (failure-detection latency is
	// roughly 3 probes).
	Probe time.Duration
	// Seed drives the fault schedule; the same seed replays the same
	// faults at the same offsets.
	Seed int64
	// MinRecovery, when > 0, fails the run if the after/calm throughput
	// ratio lands below it — the CI floor for chaos recovery.
	MinRecovery float64
}

// Fault cadence of the generated schedule: a new fault every chaosFaultEvery,
// healed chaosFaultFor later; the schedule always ends with a full heal.
const (
	chaosFaultEvery = 300 * time.Millisecond
	chaosFaultFor   = 200 * time.Millisecond
	chaosClass      = "vchaos"
)

// RunChaos measures effectively-once call throughput through a seeded fault
// schedule: three nodes over an in-memory network wrapped per node in a
// fault injector, a replicated virtual counter population (one synchronous
// replica per key), retries with backoff and per-peer breakers enabled, and
// idempotency tokens on every call. A deterministic schedule derived from
// cfg.Seed injects partitions (symmetric and asymmetric), crash-restarts
// and send stalls while callers keep driving logical calls — each minted
// one token and retried with that same token until acknowledged.
//
// Two properties are hard-asserted, not just measured. Exactness: after the
// network heals and every in-flight logical call drains, each counter's
// total must EQUAL the number of calls its callers got acknowledged — zero
// lost acknowledgements and zero double-executions (the dedup layer's
// guarantee; without it retries across failovers double-apply). Recovery:
// every key serves again after the final heal within a bounded window.
func RunChaos(cfg ChaosConfig) ([]ChaosRow, error) {
	if cfg.Keys <= 0 {
		cfg.Keys = 8
	}
	if cfg.Callers <= 0 {
		cfg.Callers = 6
	}
	if cfg.Calm <= 0 {
		cfg.Calm = 250 * time.Millisecond
	}
	if cfg.Chaos <= 0 {
		cfg.Chaos = time.Second
	}
	if cfg.Probe <= 0 {
		cfg.Probe = 20 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}

	const nodes = 3
	mem := transport.NewMemNetwork()
	inj := fault.NewInjector(cfg.Seed)
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("mem://chaos%d", i)
	}
	rts := make([]*core.Runtime, nodes)
	for i := range rts {
		rt, err := core.Start(core.Config{
			NodeID:          i,
			Channel:         remoting.NewMultiplexedChannel(inj.Node(mem, addrs[i])),
			HealthProbe:     cfg.Probe,
			Retry:           remoting.DefaultRetryPolicy(),
			IdempotentCalls: true,
			// The dedup window must cover every retry: a caller whose
			// attempt a partition blackholes retries after its full 1 s
			// per-attempt timeout, and in that second the failed-over
			// object keeps serving everyone else — at the measured per-key
			// call rates, thousands of newer records. An evicted record
			// means the retry re-executes (the documented LRU trade), which
			// the exactness invariant would flag, so size the cap to
			// peak per-object rate x retry latency with headroom.
			DedupPerObject: 16384,
		}, addrs[i])
		if err != nil {
			return nil, fmt.Errorf("bench: chaos node %d: %w", i, err)
		}
		defer rt.Close()
		rts[i] = rt
	}
	for _, rt := range rts {
		if err := rt.JoinCluster(addrs); err != nil {
			return nil, err
		}
		rt.RegisterVirtualClass(chaosClass, func() any { return &hotObj{} },
			core.VirtualConfig{Replicas: 1, SnapshotEvery: 1})
	}

	// Activate (and replicate) every key on a healthy network, so the
	// schedule tests faults against live state rather than first-call
	// activation.
	keyOf := func(k int) string { return fmt.Sprintf("c%d", k) }
	for k := 0; k < cfg.Keys; k++ {
		p, err := rts[0].VirtualObject(chaosClass, keyOf(k))
		if err != nil {
			return nil, err
		}
		if _, err := p.Invoke("Bump", int64(0)); err != nil {
			return nil, err
		}
	}

	// Callers drive logical calls. Each logical call mints one idempotency
	// token and retries — re-resolving on errors — with that SAME token
	// until acknowledged, so every acknowledgement corresponds to exactly
	// one counted increment no matter how many wire attempts it took.
	// Once a logical call has started it is never abandoned (stop only
	// gates starting new ones): an abandoned ambiguous call would make the
	// exactness invariant unverifiable.
	succ := make([]atomic.Int64, cfg.Keys)
	var calls atomic.Int64
	stop := make(chan struct{})  // stop starting new logical calls
	abort := make(chan struct{}) // tear down mid-call (failure path only)
	var stopOnce, abortOnce sync.Once
	stopAll := func() { stopOnce.Do(func() { close(stop) }) }
	abortAll := func() { abortOnce.Do(func() { close(abort) }) }
	var wg sync.WaitGroup
	for c := 0; c < cfg.Callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rt := rts[c%len(rts)]
			cache := make([]*core.Proxy, cfg.Keys)
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := i % cfg.Keys
				tok := rt.NewCallToken()
				for { // one logical call: same token until acknowledged
					select {
					case <-abort:
						return
					default:
					}
					cctx, cancel := context.WithTimeout(
						core.WithCallToken(context.Background(), tok), time.Second)
					p := cache[k]
					if p == nil {
						var err error
						if p, err = rt.VirtualObjectCtx(cctx, chaosClass, keyOf(k)); err != nil {
							cancel()
							continue // routing still converging; retry
						}
						cache[k] = p
					}
					_, err := p.InvokeCtx(cctx, "Bump", int64(1))
					cancel()
					if err == nil {
						succ[k].Add(1)
						calls.Add(1)
						break
					}
					cache[k] = nil // stale route; re-resolve next attempt
				}
			}
		}(c)
	}

	window := func(phase string, d time.Duration) ChaosRow {
		start := calls.Load()
		t0 := time.Now()
		time.Sleep(d)
		elapsed := time.Since(t0)
		n := int(calls.Load() - start)
		return ChaosRow{
			Phase:       phase,
			Calls:       n,
			Elapsed:     elapsed,
			CallsPerSec: float64(n) / elapsed.Seconds(),
		}
	}

	fail := func(err error) ([]ChaosRow, error) {
		abortAll()
		stopAll()
		wg.Wait()
		return nil, fmt.Errorf("%w (chaos seed %d)", err, cfg.Seed)
	}

	calm := window("calm", cfg.Calm)

	// Run the seeded schedule while measuring; RunSchedule blocks until its
	// final event — a full heal — has fired.
	events, faults := chaosSchedule(cfg.Seed, cfg.Chaos, addrs)
	startCalls := calls.Load()
	t0 := time.Now()
	inj.RunSchedule(abort, events)
	elapsed := time.Since(t0)
	n := int(calls.Load() - startCalls)
	chaos := ChaosRow{
		Phase:       "chaos",
		Calls:       n,
		Elapsed:     elapsed,
		CallsPerSec: float64(n) / elapsed.Seconds(),
		Faults:      faults,
		Seed:        cfg.Seed,
	}

	// Bounded recovery: every key must serve again after the final heal.
	preHeal := make([]int64, cfg.Keys)
	for k := range preHeal {
		preHeal[k] = succ[k].Load()
	}
	recCalls := calls.Load()
	tRec := time.Now()
	recoverDeadline := time.Now().Add(20 * time.Second)
	for k := 0; k < cfg.Keys; k++ {
		for succ[k].Load() == preHeal[k] {
			if time.Now().After(recoverDeadline) {
				return fail(fmt.Errorf("bench: chaos: key %s never recovered after the final heal", keyOf(k)))
			}
			time.Sleep(time.Millisecond)
		}
	}
	recElapsed := time.Since(tRec)
	recov := ChaosRow{
		Phase:           "recover",
		Calls:           int(calls.Load() - recCalls),
		Elapsed:         recElapsed,
		CallsPerSec:     float64(calls.Load()-recCalls) / recElapsed.Seconds(),
		RecoverySeconds: recElapsed.Seconds(),
	}

	// Settle before measuring: the recovery wait above returns the moment
	// the last key serves one call, while breakers are still half-open and
	// stale routes still being chased. Measuring immediately would gate
	// that transient, which the recover row already captures. The transient
	// has no fixed length — a caller can be deep in a backoff sleep or an
	// open breaker's cooldown when the heal lands — so a window caught
	// mid-settle is re-measured (bounded) and the best kept: a persistent
	// collapse fails every window, a settling one recovers within a few.
	after := ChaosRow{}
	for attempt := 0; attempt < 4; attempt++ {
		time.Sleep(cfg.Calm)
		w := window("after", cfg.Calm)
		if w.CallsPerSec > after.CallsPerSec {
			after = w
		}
		if cfg.MinRecovery <= 0 || after.CallsPerSec >= cfg.MinRecovery*calm.CallsPerSec {
			break
		}
	}

	// Drain: stop new logical calls, let every in-flight one finish. The
	// network is healed, so a drain that cannot finish is itself a bug.
	stopAll()
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(20 * time.Second):
		return fail(fmt.Errorf("bench: chaos: callers did not drain on a healed network"))
	}

	// The exactness invariant: every counter's total equals its callers'
	// acknowledged increments. A deficit means an acknowledged call was
	// lost (replication/promotion hole); an excess means a retried call
	// executed twice (dedup hole).
	for k := 0; k < cfg.Keys; k++ {
		p, err := rts[0].VirtualObject(chaosClass, keyOf(k))
		if err != nil {
			return fail(err)
		}
		res, err := p.Invoke("Bump", int64(0))
		if err != nil {
			return fail(err)
		}
		total, ok := res.(int64)
		if !ok {
			return fail(fmt.Errorf("bench: chaos total came back as %T", res))
		}
		acked := succ[k].Load()
		if total != acked {
			return fail(fmt.Errorf("bench: chaos exactness violated on %s: object saw %d, callers had %d acknowledged (diff %+d)",
				keyOf(k), total, acked, total-acked))
		}
	}

	rows := []ChaosRow{calm, chaos, recov, after}
	if rec, ok := ChaosRecovery(rows); ok && cfg.MinRecovery > 0 && rec < cfg.MinRecovery {
		return nil, fmt.Errorf("bench: chaos recovery %.2fx below required %.2fx (seed %d)", rec, cfg.MinRecovery, cfg.Seed)
	}
	return rows, nil
}

// chaosSchedule derives a deterministic fault schedule from seed: one fault
// every chaosFaultEvery — a symmetric partition, an asymmetric partition, a
// crash-restart or a send stall between seeded picks — healed chaosFaultFor
// later, with a full heal as the final event. Returns the events and the
// number of faults injected.
func chaosSchedule(seed int64, d time.Duration, addrs []string) ([]fault.Event, int) {
	rng := rand.New(rand.NewSource(seed))
	var events []fault.Event
	faults := 0
	for at := chaosFaultEvery / 2; at+chaosFaultFor < d; at += chaosFaultEvery {
		a := addrs[rng.Intn(len(addrs))]
		b := addrs[rng.Intn(len(addrs))]
		for b == a {
			b = addrs[rng.Intn(len(addrs))]
		}
		heal := at + chaosFaultFor
		switch rng.Intn(4) {
		case 0:
			events = append(events,
				fault.Event{At: at, Name: "partition " + a + "<->" + b, Do: func(i *fault.Injector) { i.Partition(a, b) }},
				fault.Event{At: heal, Name: "heal " + a + "<->" + b, Do: func(i *fault.Injector) { i.Heal(a, b) }})
		case 1:
			events = append(events,
				fault.Event{At: at, Name: "partition " + a + "->" + b, Do: func(i *fault.Injector) { i.PartitionOneWay(a, b) }},
				fault.Event{At: heal, Name: "heal " + a + "->" + b, Do: func(i *fault.Injector) { i.Heal(a, b) }})
		case 2:
			events = append(events,
				fault.Event{At: at, Name: "crash " + a, Do: func(i *fault.Injector) { i.Crash(a) }},
				fault.Event{At: heal, Name: "restart " + a, Do: func(i *fault.Injector) { i.Restart(a) }})
		default:
			events = append(events,
				fault.Event{At: at, Name: "stall " + a + "->" + b, Do: func(i *fault.Injector) { i.Stall(a, b) }},
				fault.Event{At: heal, Name: "unstall " + a + "->" + b, Do: func(i *fault.Injector) { i.Unstall(a, b) }})
		}
		faults++
	}
	events = append(events, fault.Event{At: d, Name: "heal all", Do: func(i *fault.Injector) { i.HealAll() }})
	return events, faults
}

// ChaosRecovery extracts the after/calm throughput ratio of a run.
func ChaosRecovery(rows []ChaosRow) (float64, bool) {
	var calm, after float64
	for _, r := range rows {
		switch r.Phase {
		case "calm":
			calm = r.CallsPerSec
		case "after":
			after = r.CallsPerSec
		}
	}
	if calm <= 0 || after <= 0 {
		return 0, false
	}
	return after / calm, true
}

// PrintChaos emits the chaos table.
func PrintChaos(w io.Writer, rows []ChaosRow) {
	fmt.Fprintln(w, "Chaos — effectively-once calls/s through a seeded fault schedule (retries + breakers + idempotent dedup)")
	fmt.Fprintf(w, "%-10s %10s %12s %12s %10s %8s\n", "phase", "calls", "elapsed", "calls/s", "recovery", "faults")
	for _, r := range rows {
		rec := ""
		if r.RecoverySeconds > 0 {
			rec = fmt.Sprintf("%.3fs", r.RecoverySeconds)
		}
		fl := ""
		if r.Faults > 0 {
			fl = fmt.Sprintf("%d", r.Faults)
		}
		fmt.Fprintf(w, "%-10s %10d %12s %12.0f %10s %8s\n",
			r.Phase, r.Calls, r.Elapsed.Round(time.Microsecond), r.CallsPerSec, rec, fl)
	}
	if rec, ok := ChaosRecovery(rows); ok {
		seed := int64(0)
		for _, r := range rows {
			if r.Seed != 0 {
				seed = r.Seed
			}
		}
		fmt.Fprintf(w, "recovery: %.2fx of calm throughput; exactness held (zero lost, zero duplicated) at seed %d\n", rec, seed)
	}
}
