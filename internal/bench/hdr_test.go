package bench

import (
	"math/rand"
	"sort"
	"testing"
)

func TestHdrIndexMonotoneAndBounded(t *testing.T) {
	// Indices must be monotone in the value and stay inside the array for
	// the full int64 range; bucket edges must honour the ~3% error bound.
	vals := []int64{0, 1, 31, 32, 63, 64, 65, 1000, 1 << 20, 1 << 40, 1<<63 - 1}
	prev := -1
	for _, v := range vals {
		idx := hdrIndex(v)
		if idx < 0 || idx >= hdrBuckets {
			t.Fatalf("hdrIndex(%d) = %d out of range", v, idx)
		}
		if idx < prev {
			t.Fatalf("hdrIndex not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if edge := hdrValue(idx); v >= 64 {
			// The lower bucket edge must sit at most one bucket width
			// (~3%) below the value.
			if edge > v || float64(v-edge) > 0.04*float64(v) {
				t.Errorf("bucket edge %d for value %d exceeds 4%% error", edge, v)
			}
		} else if edge != v {
			t.Errorf("small values must be exact: hdrValue(hdrIndex(%d)) = %d", v, edge)
		}
	}
}

func TestHistogramQuantilesAgainstSortedSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	samples := make([]int64, 10000)
	for i := range samples {
		// Log-uniform latencies from ~1µs to ~1s in nanoseconds.
		v := int64(1000 * rng.ExpFloat64() * float64(uint(1)<<uint(rng.Intn(20))))
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if h.Count() != int64(len(samples)) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(samples))
	}
	if h.Max() != samples[len(samples)-1] {
		t.Fatalf("Max = %d, want exact %d", h.Max(), samples[len(samples)-1])
	}
	for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		// Bucketing error bound: within 4% of the exact order statistic.
		lo := float64(exact) * 0.96
		hi := float64(exact) * 1.04
		if float64(got) < lo || float64(got) > hi {
			t.Errorf("Quantile(%g) = %d, want within 4%% of %d", q, got, exact)
		}
	}
}

func TestHistogramMergeEqualsCombinedRecording(t *testing.T) {
	var a, b, combined Histogram
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1_000_000))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		combined.Record(v)
	}
	a.Merge(&b)
	if a.Count() != combined.Count() || a.Max() != combined.Max() {
		t.Fatalf("merged Count/Max = %d/%d, want %d/%d",
			a.Count(), a.Max(), combined.Count(), combined.Max())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
		if got, want := a.Quantile(q), combined.Quantile(q); got != want {
			t.Errorf("Quantile(%g): merged %d != combined %d", q, got, want)
		}
	}
}

func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Quantile(0.99) != 0 || h.Count() != 0 {
		t.Error("empty histogram must report zero")
	}
	h.Record(-5) // clamps to zero
	h.Record(42)
	if h.Quantile(0) != 0 || h.Quantile(1) != 42 {
		t.Errorf("Quantile(0)=%d Quantile(1)=%d, want 0 and 42", h.Quantile(0), h.Quantile(1))
	}
	// Out-of-range q clamps rather than panicking.
	if h.Quantile(-1) != 0 || h.Quantile(2) != 42 {
		t.Error("out-of-range quantiles must clamp")
	}
}
