package bench

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/raytracer"
	"repro/internal/sieve"
	"repro/internal/wire"
)

// Ablation A1 — method-call aggregation. The sieve pipeline posts one
// fine-grain Process call per candidate number; sweeping MaxCalls shows the
// SCOOPP aggregation win (fewer, larger messages) the paper's §3.1 claims.

// AggRow is one point of the aggregation sweep.
type AggRow struct {
	MaxCalls    int
	Seconds     float64
	Batches     int64
	PrimesFound int
}

// RunAggregationSweep runs the pipelined sieve up to n on a 2-node shaped
// cluster for each MaxCalls setting.
func RunAggregationSweep(n int, maxCalls []int, net netsim.Params) ([]AggRow, error) {
	var rows []AggRow
	for _, mc := range maxCalls {
		cl, err := cluster.New(cluster.Options{
			Nodes:       2,
			Net:         net,
			Cost:        profile.MonoTCP117(),
			Aggregation: core.AggregationConfig{MaxCalls: mc},
		})
		if err != nil {
			return nil, err
		}
		for i := 0; i < cl.Size(); i++ {
			sieve.RegisterClasses(cl.Node(i))
		}
		start := time.Now()
		primes, err := sieve.Pipeline(cl.Node(0), n)
		elapsed := time.Since(start)
		if err != nil {
			cl.Close()
			return nil, fmt.Errorf("bench: sieve maxCalls=%d: %w", mc, err)
		}
		var batches int64
		for i := 0; i < cl.Size(); i++ {
			batches += cl.Node(i).Stats().BatchesSent
		}
		cl.Close()
		rows = append(rows, AggRow{
			MaxCalls:    mc,
			Seconds:     elapsed.Seconds(),
			Batches:     batches,
			PrimesFound: len(primes),
		})
	}
	return rows, nil
}

// Ablation A2 — object agglomeration. A fan-out of fine-grain objects is
// created and exercised with and without agglomeration; removing the
// parallelism (and its remoting round trips) must win once grains are far
// below communication costs.

// AgglomRow is one point of the agglomeration ablation.
type AgglomRow struct {
	Policy       string
	Seconds      float64
	Agglomerated int64
}

// fineGrainObj is a deliberately tiny grain.
type fineGrainObj struct{ n int }

// Bump does near-zero work, far below the network round-trip cost.
func (f *fineGrainObj) Bump(v int) { f.n += v }

// Total returns the accumulated value.
func (f *fineGrainObj) Total() int { return f.n }

// RunAgglomerationAblation creates objects fine-grain objects, posts calls
// calls on each, and measures completion under three policies.
func RunAgglomerationAblation(objects, calls int, net netsim.Params) ([]AgglomRow, error) {
	policies := []struct {
		name   string
		policy core.AgglomerationPolicy
	}{
		{"never (all parallel)", core.NeverAgglomerate{}},
		{"always (all packed)", core.AlwaysAgglomerate{}},
		{"adaptive", core.AdaptiveAgglomeration{MinGrain: 2 * time.Millisecond, MinLocalLoad: 0, MinSamples: 4}},
	}
	var rows []AgglomRow
	for _, pol := range policies {
		cl, err := cluster.New(cluster.Options{
			Nodes:         2,
			Net:           net,
			Cost:          profile.MonoTCP117(),
			Agglomeration: pol.policy,
		})
		if err != nil {
			return nil, err
		}
		cl.RegisterClass("fine", func() any { return &fineGrainObj{} })
		master := cl.Node(0)
		start := time.Now()
		proxies := make([]*core.Proxy, 0, objects)
		for i := 0; i < objects; i++ {
			p, err := master.NewParallelObject("fine")
			if err != nil {
				cl.Close()
				return nil, err
			}
			proxies = append(proxies, p)
			for c := 0; c < calls; c++ {
				p.Post("Bump", 1)
			}
		}
		for _, p := range proxies {
			p.Wait()
			got, err := p.Invoke("Total")
			if err != nil {
				cl.Close()
				return nil, err
			}
			if got != calls {
				cl.Close()
				return nil, fmt.Errorf("bench: agglomeration %q lost calls: %v != %d", pol.name, got, calls)
			}
		}
		elapsed := time.Since(start)
		agg := master.Stats().ObjectsAgglomerated
		cl.Close()
		rows = append(rows, AgglomRow{Policy: pol.name, Seconds: elapsed.Seconds(), Agglomerated: agg})
	}
	return rows, nil
}

// Ablation A3 — codec weight: size and encode+decode time per codec for a
// representative RPC payload, the mechanism behind the Fig. 8 stack
// ordering.

// CodecRow is one codec's measurement.
type CodecRow struct {
	Codec       string
	Bytes       int
	EncodeNanos int64
	DecodeNanos int64
}

// RunCodecAblation measures all three codecs on an n-int32 call payload.
func RunCodecAblation(n int) ([]CodecRow, error) {
	payload := []any{"process", payloadFor(n * 4)}
	var rows []CodecRow
	for _, c := range []wire.Codec{wire.BinFmt{}, wire.JavaSer{}, wire.SoapFmt{}} {
		data, err := c.Marshal(payload)
		if err != nil {
			return nil, err
		}
		const reps = 50
		start := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := c.Marshal(payload); err != nil {
				return nil, err
			}
		}
		enc := time.Since(start).Nanoseconds() / reps
		start = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := c.Unmarshal(data); err != nil {
				return nil, err
			}
		}
		dec := time.Since(start).Nanoseconds() / reps
		rows = append(rows, CodecRow{Codec: c.Name(), Bytes: len(data), EncodeNanos: enc, DecodeNanos: dec})
	}
	return rows, nil
}

// Ablation A4 — thread-pool cap. The farm of Fig. 9 is rerun at fixed
// processors with varying per-node pool sizes, exposing the starvation
// mechanism the paper blames for ParC#'s weaker scaling; the pool's queue
// wait is reported alongside.

// PoolRow is one pool-size measurement.
type PoolRow struct {
	PoolSize  int
	Seconds   float64
	QueueWait time.Duration
}

// RunPoolAblation reruns the ParC# farm with explicit pool sizes.
func RunPoolAblation(cfg Fig9Config, processors int, poolSizes []int) ([]PoolRow, error) {
	var rows []PoolRow
	for _, ps := range poolSizes {
		seconds, wait, err := runParcFarmWithPool(cfg, processors, ps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, PoolRow{PoolSize: ps, Seconds: seconds, QueueWait: wait})
	}
	return rows, nil
}

// runParcFarmWithPool is RunParCSharpFarm with an explicit pool size and
// queue-wait reporting.
func runParcFarmWithPool(cfg Fig9Config, processors, poolSize int) (float64, time.Duration, error) {
	cl, err := cluster.New(cluster.Options{
		Nodes:     nodesFor(processors) + 1, // node 0 is the master
		Net:       cfg.Net,
		Cost:      profile.MonoTCP117(),
		PoolSize:  poolSize,
		Placement: &workerRoundRobin{},
	})
	if err != nil {
		return 0, 0, err
	}
	defer cl.Close()
	cl.RegisterClass("rtWorker", func() any { return &rtWorker{} })
	scene := raytracer.JGFScene(8, cfg.Width, cfg.Height)
	pixelCost := scaledPixelCost(profile.Mono().RayTracerFactor, cfg.TimeScale)
	master := cl.Node(0)
	proxies := make([]*core.Proxy, processors)
	for i := range proxies {
		p, err := master.NewParallelObject("rtWorker")
		if err != nil {
			return 0, 0, err
		}
		defer p.Destroy()
		if _, err := p.Invoke("SetScene", scene, int64(pixelCost)); err != nil {
			return 0, 0, err
		}
		proxies[i] = p
	}
	blocks := makeBlocks(cfg.Height, cfg.RowsPerBlock)
	start := time.Now()
	_, err = runFarm(processors, blocks, func(w int, b block) ([]int32, error) {
		res, err := proxies[w].Invoke("Render", b.y0, b.y1)
		if err != nil {
			return nil, err
		}
		return toInt32s(res)
	})
	if err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start)
	wait := cl.PoolQueueWait()
	return elapsed.Seconds() * cfg.TimeScale, wait, nil
}
