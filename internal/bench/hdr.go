package bench

// HDR-style latency histogram: log-linear buckets giving a bounded
// relative error at every magnitude, so one fixed-size array covers
// nanoseconds to minutes. Each power-of-two octave is split into 32
// linear sub-buckets (~3% worst-case error), values below 32 units are
// exact. Histograms are mergeable by elementwise addition, which is how
// the open-loop driver combines per-caller recordings without sharing a
// lock on the hot path.

// hdrSubBits is the per-octave resolution: 2^5 = 32 sub-buckets.
const hdrSubBits = 5

// hdrBuckets covers 63 octaves of int64 range. Octave e contributes 32
// buckets starting at index (e+1)<<hdrSubBits; indices below 64 are the
// exact small values.
const hdrBuckets = 64 << hdrSubBits

// Histogram is a fixed-size HDR-style histogram of non-negative int64
// samples (latencies in nanoseconds, by convention). The zero value is
// ready to use. Not safe for concurrent use — record per goroutine and
// Merge.
type Histogram struct {
	counts [hdrBuckets]int64
	total  int64
	max    int64
}

// hdrIndex maps a sample to its bucket. For v < 32 the mapping is
// identity; otherwise v's top hdrSubBits+1 significant bits select
// (octave, sub-bucket), continuous with the identity range.
func hdrIndex(v int64) int {
	u := uint64(v)
	exp := 0
	for u >= 1<<(hdrSubBits+1) {
		u >>= 1
		exp++
	}
	// u is now in [0, 64); for v >= 32, u ∈ [32, 64) and carries the
	// leading bit plus hdrSubBits of mantissa.
	return exp<<hdrSubBits + int(u)
}

// hdrValue returns the lower edge of bucket idx, the inverse of hdrIndex
// up to bucket width (~3% of the value).
func hdrValue(idx int) int64 {
	if idx < 1<<(hdrSubBits+1) {
		return int64(idx)
	}
	exp := idx>>hdrSubBits - 1
	m := idx&(1<<hdrSubBits-1) | 1<<hdrSubBits
	return int64(m) << exp
}

// Record adds one sample; negative samples clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[hdrIndex(v)]++
	h.total++
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		if c != 0 {
			h.counts[i] += c
		}
	}
	h.total += other.total
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Max returns the largest recorded sample (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns the value at quantile q (0..1) with the histogram's
// bucket resolution (~3%); q outside [0,1] clamps. Zero samples → 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based; q=1 lands on the last sample.
	rank := int64(q*float64(h.total-1)) + 1
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := hdrValue(i)
			if v > h.max {
				// The top bucket's edge can overshoot the true maximum.
				v = h.max
			}
			return v
		}
	}
	return h.max
}
