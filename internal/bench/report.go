package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// Report is the machine-readable result set parcbench -json emits and the
// CI regression gate diffs. Sections are present only when their
// experiments ran.
type Report struct {
	Meta      *ReportMeta    `json:"meta,omitempty"`
	Fanout    []FanoutRow    `json:"fanout,omitempty"`
	Codec     []CodecPathRow `json:"codec,omitempty"`
	Rebalance []RebalanceRow `json:"rebalance,omitempty"`
	Failover  []FailoverRow  `json:"failover,omitempty"`
	OpenLoop  []OpenLoopRow  `json:"openloop,omitempty"`
	Chaos     []ChaosRow     `json:"chaos,omitempty"`
	Skeletons []SkeletonRow  `json:"skeletons,omitempty"`
}

// ReportMeta records the environment a report was measured in, so a
// baseline number can be interpreted (and hot-path regressions diagnosed
// from the bench artifact alone). It carries no gated metrics.
type ReportMeta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// CurrentMeta snapshots the running environment.
func CurrentMeta() *ReportMeta {
	return &ReportMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// fanKey identifies a fanout row across reports. Rows from baselines
// predating the payload sweep (payload 0) compare against the default
// grain size; rows predating the GOMAXPROCS matrix (procs 0) read as 1.
func fanKey(r FanoutRow) string {
	p := r.Payload
	if p == 0 {
		p = DefaultFanoutPayload
	}
	return fmt.Sprintf("%s @%dB x%dp", r.Channel, p, fanProcs(r))
}

func fanProcs(r FanoutRow) int {
	if r.Procs <= 0 {
		return 1
	}
	return r.Procs
}

// MetaMismatch reports why two report environments must not be compared
// with absolute numbers: a different core count (GOMAXPROCS or NumCPU)
// moves every throughput metric for hardware reasons, so diffing absolute
// calls/s across it gates the machine, not the code. An empty string
// means the environments are comparable (or too old to carry meta, which
// gets the benefit of the doubt). Relative-mode comparisons are exempt:
// ratios cancel the hardware term by construction.
func MetaMismatch(baseline, current *ReportMeta) string {
	if baseline == nil || current == nil {
		return ""
	}
	if baseline.GOMAXPROCS != current.GOMAXPROCS {
		return fmt.Sprintf("GOMAXPROCS differs: baseline %d, current %d", baseline.GOMAXPROCS, current.GOMAXPROCS)
	}
	if baseline.NumCPU != current.NumCPU {
		return fmt.Sprintf("NumCPU differs: baseline %d, current %d", baseline.NumCPU, current.NumCPU)
	}
	return ""
}

// WriteReport marshals a report with stable indentation (committed as
// BENCH_baseline.json, diffed by humans).
func WriteReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a report written by parcbench -json.
func ReadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parse report %s: %w", path, err)
	}
	return r, nil
}

// RelativeMetrics derives the machine-independent ratios of a report:
// per-op codec speedup (reflective ns/op over generated ns/op) and the
// fanout throughput of every channel relative to the first (pooled)
// channel. Ratios cancel the hardware term, so a baseline recorded on one
// machine gates runs on another — the comparison CI uses, where runner
// hardware differs from wherever BENCH_baseline.json was recorded.
func RelativeMetrics(r Report) map[string]float64 {
	out := map[string]float64{}
	// Per (payload size, GOMAXPROCS) cell, every channel is measured
	// against the first (pooled) channel in that cell.
	type cell struct{ payload, procs int }
	type base struct {
		channel string
		cps     float64
	}
	bases := map[cell]base{}
	for _, row := range r.Fanout {
		k := cell{row.Payload, fanProcs(row)}
		if _, ok := bases[k]; !ok {
			bases[k] = base{channel: row.Channel, cps: row.CallsPerSec}
			continue
		}
		b := bases[k]
		if b.cps > 0 {
			out["fanout "+fanKey(row)+" vs "+b.channel] = row.CallsPerSec / b.cps
		}
	}
	// Per-core scaling: calls/s-per-core at procs p over calls/s at one
	// proc, per (channel, payload). 1.0 means perfect scaling; the gate
	// catches a change that makes cores stop paying (a reintroduced shared
	// lock halves this long before it shows in any single-proc number).
	// Both rows of the ratio come from one report, so it stays
	// machine-independent.
	oneProc := map[string]float64{}
	for _, row := range r.Fanout {
		if fanProcs(row) == 1 {
			oneProc[fmt.Sprintf("%s @%d", row.Channel, row.Payload)] = row.CallsPerSec
		}
	}
	for _, row := range r.Fanout {
		p := fanProcs(row)
		if p == 1 {
			continue
		}
		if c1 := oneProc[fmt.Sprintf("%s @%d", row.Channel, row.Payload)]; c1 > 0 {
			out["fanout "+fanKey(row)+" per-core"] = row.CallsPerSec / float64(p) / c1
		}
	}
	byKey := map[string]CodecPathRow{}
	for _, row := range r.Codec {
		byKey[row.Path+"/"+row.Op] = row
	}
	for _, op := range []string{"encode", "decode"} {
		g, okG := byKey["generated/"+op]
		rf, okR := byKey["reflective/"+op]
		if okG && okR && g.NsPerOp > 0 {
			out["codec "+op+" speedup"] = rf.NsPerOp / g.NsPerOp
		}
	}
	if rec, ok := gatedRecovery(r); ok {
		out["rebalance recovery"] = rec
	}
	if rec, ok := gatedFailoverRecovery(r); ok {
		out["failover recovery"] = rec
	}
	if rec, ok := gatedChaosRecovery(r); ok {
		out["chaos recovery"] = rec
	}
	// Open-loop ratios: the accepted/offered fraction at each offered-rate
	// factor (capacity cancels — both sides of the fraction come from the
	// same run), and for overload rows the p99 headroom under the SLO,
	// capped at 2.0 so an unusually quiet baseline run cannot fail a
	// healthy current one.
	for _, row := range r.OpenLoop {
		if row.Offered > 0 {
			out["openloop "+olKey(row)+" accepted ratio"] =
				float64(row.Accepted) / float64(row.Offered)
		}
		if row.Factor > 1 && row.P99Ms > 0 && row.SLOMs > 0 {
			out["openloop "+olKey(row)+" p99 headroom"] = min(row.SLOMs/row.P99Ms, 2.0)
		}
	}
	if ratio, ok := gatedSkeletonRatio(r); ok {
		out["skeletons scatter vs handrolled"] = ratio
	}
	return out
}

// gatedSkeletonRatio is the scatter-skeleton over scatter-handrolled
// calls/s ratio as both gates track it: capped at 1.0, because batching
// per-destination submissions can beat the goroutine-per-call control by a
// margin that varies with scheduler luck, and a run where the skeleton
// merely matches the hand-rolled fan-out must not fail against a lucky
// overshooting baseline. Machine-independent by construction — both sides
// of the division ran on the same hardware over the same objects seconds
// apart. The goroutine-flatness contract of the async scenario is
// hard-asserted inside RunSkeletons itself, not tracked here.
func gatedSkeletonRatio(r Report) (float64, bool) {
	ratio, ok := SkeletonRatio(r.Skeletons)
	return min(ratio, 1.0), ok
}

// gatedRecovery is the rebalance recovery ratio as both gates track it:
// capped at 1.0, because spreading the hot population across hosts can
// overshoot pre-migration throughput and a run that merely fully recovers
// must not fail against a lucky overshooting baseline. The raw ratio
// stays in the report rows. Machine-independent by construction — both
// sides of the division ran on the same hardware seconds apart.
func gatedRecovery(r Report) (float64, bool) {
	rec, ok := RebalanceRecovery(r.Rebalance)
	return min(rec, 1.0), ok
}

// gatedFailoverRecovery is the failover recovery ratio (after-kill over
// pre-kill calls/s), capped at 1.0 for the same reason as gatedRecovery: a
// promoted replica serving callers locally can overshoot the pre-kill
// throughput, and full recovery must not fail against a lucky baseline.
func gatedFailoverRecovery(r Report) (float64, bool) {
	rec, ok := FailoverRecovery(r.Failover)
	return min(rec, 1.0), ok
}

// chaosRecoveryGateCap caps the chaos recovery ratio both gates track.
// Unlike rebalance/failover, the chaos after-window is measured moments
// after a healed fault storm and legitimately varies severalfold run to
// run (whichever backoff sleeps and breaker cooldowns the final heal cut
// across), so tracking the raw ratio against a lucky baseline would flap.
// The cap equals the MinRecovery floor parcbench hard-enforces inside the
// run itself — any run the gate ever sees already cleared it — making the
// relative entry a structural check (chaos rows present and above the
// floor), while the correctness invariants (zero lost acks, zero
// double-executions, bounded recovery) are hard-asserted in RunChaos.
const chaosRecoveryGateCap = 0.25

func gatedChaosRecovery(r Report) (float64, bool) {
	rec, ok := ChaosRecovery(r.Chaos)
	return min(rec, chaosRecoveryGateCap), ok
}

// CompareReportsRelative checks the ratio metrics of current against
// baseline: every baseline ratio must be present and must not drop more
// than tolerance below its baseline value. Higher is always better for
// these ratios (throughput gain, speedup), so improvements pass. This is
// the hardware-robust gate: a uniformly slower runner shifts both sides of
// each ratio and cancels out, while losing the generated codec's edge or
// the multiplexed channel's pipelining shows up regardless of hardware.
// Codec allocs/op are machine-independent and are gated absolutely here
// too — any rise fails.
func CompareReportsRelative(baseline, current Report, tolerance float64) []string {
	problems := compareCodec(baseline, current, tolerance, false)
	base := RelativeMetrics(baseline)
	cur := RelativeMetrics(current)
	for key, b := range base {
		c, ok := cur[key]
		if !ok {
			problems = append(problems, fmt.Sprintf("%s: missing from current report", key))
			continue
		}
		if c < b*(1-tolerance) {
			problems = append(problems, fmt.Sprintf(
				"%s: %.2fx is %.1f%% below baseline %.2fx (tolerance %.0f%%)",
				key, c, 100*(1-c/b), b, 100*tolerance))
		}
	}
	sort.Strings(problems)
	return problems
}

// CompareReports checks current against baseline and returns one problem
// string per regression beyond tolerance (0.15 means a 15% budget):
//
//   - a fanout row whose calls/s dropped more than tolerance below the
//     baseline row with the same channel name and payload size;
//   - a codec row whose ns/op rose more than tolerance above the baseline
//     row with the same (path, op);
//   - a codec row that allocates more per op than its baseline row —
//     allocation counts are deterministic, so any rise is a pooling
//     regression, with no tolerance (this is also checked by the relative
//     gate: alloc counts are machine-independent);
//   - a baseline row missing from current — a silently dropped experiment
//     must fail the gate, not pass it.
//
// Improvements never count as problems (refresh the committed baseline to
// bank them; see README). An empty slice means the gate passes.
func CompareReports(baseline, current Report, tolerance float64) []string {
	var problems []string

	curFan := map[string]FanoutRow{}
	for _, r := range current.Fanout {
		curFan[fanKey(r)] = r
	}
	for _, b := range baseline.Fanout {
		c, ok := curFan[fanKey(b)]
		if !ok {
			problems = append(problems, fmt.Sprintf("fanout %q: missing from current report", fanKey(b)))
			continue
		}
		floor := b.CallsPerSec * (1 - tolerance)
		if c.CallsPerSec < floor {
			problems = append(problems, fmt.Sprintf(
				"fanout %q: %.0f calls/s is %.1f%% below baseline %.0f (tolerance %.0f%%)",
				fanKey(b), c.CallsPerSec, 100*(1-c.CallsPerSec/b.CallsPerSec), b.CallsPerSec, 100*tolerance))
		}
	}

	problems = append(problems, compareCodec(baseline, current, tolerance, true)...)
	problems = append(problems, compareRebalance(baseline, current, tolerance)...)
	problems = append(problems, compareFailover(baseline, current, tolerance)...)
	problems = append(problems, compareChaos(baseline, current, tolerance)...)
	problems = append(problems, compareOpenLoop(baseline, current, tolerance)...)
	problems = append(problems, compareSkeletons(baseline, current, tolerance)...)
	sort.Strings(problems)
	return problems
}

// compareSkeletons gates the skeleton rows in absolute mode (same-hardware
// comparisons): each scenario's calls/s must not drop more than tolerance
// below its baseline row, and a baseline scenario missing from current
// fails. The relative gate tracks the same rows through the
// "skeletons scatter vs handrolled" entry of RelativeMetrics; the
// goroutine-flatness bound is hard-asserted inside RunSkeletons.
func compareSkeletons(baseline, current Report, tolerance float64) []string {
	var problems []string
	cur := map[string]SkeletonRow{}
	for _, r := range current.Skeletons {
		cur[r.Scenario] = r
	}
	for _, b := range baseline.Skeletons {
		c, ok := cur[b.Scenario]
		if !ok {
			problems = append(problems, fmt.Sprintf("skeletons %q: missing from current report", b.Scenario))
			continue
		}
		if floor := b.CallsPerSec * (1 - tolerance); c.CallsPerSec < floor {
			problems = append(problems, fmt.Sprintf(
				"skeletons %q: %.0f calls/s is %.1f%% below baseline %.0f (tolerance %.0f%%)",
				b.Scenario, c.CallsPerSec, 100*(1-c.CallsPerSec/b.CallsPerSec), b.CallsPerSec, 100*tolerance))
		}
	}
	return problems
}

// compareOpenLoop gates the open-loop rows in absolute mode (same-hardware
// comparisons): accepted throughput must not drop more than tolerance
// below baseline, p99 of accepted calls must not rise more than tolerance
// above it (plus a 2 ms absolute grace — sub-millisecond p99s would
// otherwise gate scheduler noise), and the shed rate must not rise more
// than tolerance points. The relative gate tracks the same rows through
// the accepted-ratio and p99-headroom entries of RelativeMetrics.
func compareOpenLoop(baseline, current Report, tolerance float64) []string {
	var problems []string
	cur := map[string]OpenLoopRow{}
	for _, r := range current.OpenLoop {
		cur[olKey(r)] = r
	}
	shedRate := func(r OpenLoopRow) float64 {
		if r.Offered == 0 {
			return 0
		}
		return float64(r.Shed) / float64(r.Offered)
	}
	for _, b := range baseline.OpenLoop {
		c, ok := cur[olKey(b)]
		if !ok {
			problems = append(problems, fmt.Sprintf("openloop %q: missing from current report", olKey(b)))
			continue
		}
		if floor := b.AcceptedPerSec * (1 - tolerance); c.AcceptedPerSec < floor {
			problems = append(problems, fmt.Sprintf(
				"openloop %q: %.0f accepted/s is %.1f%% below baseline %.0f (tolerance %.0f%%)",
				olKey(b), c.AcceptedPerSec, 100*(1-c.AcceptedPerSec/b.AcceptedPerSec), b.AcceptedPerSec, 100*tolerance))
		}
		if ceil := b.P99Ms*(1+tolerance) + 2.0; c.P99Ms > ceil {
			problems = append(problems, fmt.Sprintf(
				"openloop %q: p99 %.2fms is above baseline %.2fms + %.0f%% + 2ms grace",
				olKey(b), c.P99Ms, b.P99Ms, 100*tolerance))
		}
		if sb, sc := shedRate(b), shedRate(c); sc > sb+tolerance {
			problems = append(problems, fmt.Sprintf(
				"openloop %q: shed rate %.1f%% is more than %.0f points above baseline %.1f%%",
				olKey(b), 100*sc, 100*tolerance, 100*sb))
		}
	}
	return problems
}

// compareFailover gates the failover recovery ratio (after-kill/pre-kill
// calls/s, capped via gatedFailoverRecovery) the same way compareRebalance
// gates migration recovery; the relative gate tracks it through the
// "failover recovery" entry of RelativeMetrics.
func compareFailover(baseline, current Report, tolerance float64) []string {
	b, okB := gatedFailoverRecovery(baseline)
	if !okB {
		return nil
	}
	c, okC := gatedFailoverRecovery(current)
	if !okC {
		return []string{"failover recovery: missing from current report"}
	}
	if c < b*(1-tolerance) {
		return []string{fmt.Sprintf(
			"failover recovery: %.2fx is %.1f%% below baseline %.2fx (tolerance %.0f%%)",
			c, 100*(1-c/b), b, 100*tolerance)}
	}
	return nil
}

// compareChaos gates the chaos recovery ratio (post-heal/calm calls/s,
// capped via gatedChaosRecovery) the same way compareFailover gates its
// ratio; the relative gate tracks it through the "chaos recovery" entry
// of RelativeMetrics.
func compareChaos(baseline, current Report, tolerance float64) []string {
	b, okB := gatedChaosRecovery(baseline)
	if !okB {
		return nil
	}
	c, okC := gatedChaosRecovery(current)
	if !okC {
		return []string{"chaos recovery: missing from current report"}
	}
	if c < b*(1-tolerance) {
		return []string{fmt.Sprintf(
			"chaos recovery: %.2fx is %.1f%% below baseline %.2fx (tolerance %.0f%%)",
			c, 100*(1-c/b), b, 100*tolerance)}
	}
	return nil
}

// compareRebalance gates the migration recovery ratio (after/before
// calls/s, capped via gatedRecovery): it must not drop more than
// tolerance below the baseline's. This is the absolute-mode twin of the
// "rebalance recovery" entry RelativeMetrics feeds the relative gate.
func compareRebalance(baseline, current Report, tolerance float64) []string {
	b, okB := gatedRecovery(baseline)
	if !okB {
		return nil
	}
	c, okC := gatedRecovery(current)
	if !okC {
		return []string{"rebalance recovery: missing from current report"}
	}
	if c < b*(1-tolerance) {
		return []string{fmt.Sprintf(
			"rebalance recovery: %.2fx is %.1f%% below baseline %.2fx (tolerance %.0f%%)",
			c, 100*(1-c/b), b, 100*tolerance)}
	}
	return nil
}

// compareCodec gates the codec rows: ns/op within tolerance (when gateNs
// is set — the relative gate covers time through ratios instead) and
// allocs/op never rising.
func compareCodec(baseline, current Report, tolerance float64, gateNs bool) []string {
	var problems []string
	codecKey := func(r CodecPathRow) string { return r.Path + "/" + r.Op }
	curCodec := map[string]CodecPathRow{}
	for _, r := range current.Codec {
		curCodec[codecKey(r)] = r
	}
	for _, b := range baseline.Codec {
		c, ok := curCodec[codecKey(b)]
		if !ok {
			if gateNs {
				// The relative gate reports missing rows through its
				// missing-ratio check; avoid double-counting there.
				problems = append(problems, fmt.Sprintf("codec %s: missing from current report", codecKey(b)))
			}
			continue
		}
		if gateNs {
			ceil := b.NsPerOp * (1 + tolerance)
			if c.NsPerOp > ceil {
				problems = append(problems, fmt.Sprintf(
					"codec %s: %.1f ns/op is %.1f%% above baseline %.1f (tolerance %.0f%%)",
					codecKey(b), c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), b.NsPerOp, 100*tolerance))
			}
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			problems = append(problems, fmt.Sprintf(
				"codec %s: allocs/op rose %d -> %d (no tolerance: pooling must not rot)",
				codecKey(b), b.AllocsPerOp, c.AllocsPerOp))
		}
	}
	return problems
}
