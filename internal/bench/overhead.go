package bench

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/profile"
	"repro/internal/remoting"
)

// E6 — the paper states "the performance penalty introduced by the ParC#
// platform is not noticeable (results not shown)". We measure it: the same
// echo ping-pong once against a raw remoting well-known object and once
// through a SCOOPP parallel-object proxy (PO → ioWrapper → IO), on the same
// shaped network and cost profile.

// OverheadResult is the E6 measurement.
type OverheadResult struct {
	RawRTT      time.Duration
	ProxyRTT    time.Duration
	OverheadPct float64
}

// echoObj is the parallel-object class for the proxy side.
type echoObj struct{}

// Echo returns its argument.
func (echoObj) Echo(nums []int32) []int32 { return nums }

// RunOverhead measures E6 with the given payload size and repetitions.
func RunOverhead(payloadBytes, reps int, net netsim.Params) (OverheadResult, error) {
	if reps <= 0 {
		reps = 30
	}
	payload := payloadFor(payloadBytes)

	// Raw remoting.
	raw, err := NewRemotingStack("Mono", remoting.TCP, net, profile.MonoTCP117())
	if err != nil {
		return OverheadResult{}, err
	}
	defer raw.Close()
	if err := raw.RoundTrip(payload); err != nil {
		return OverheadResult{}, err
	}
	// Minimum of the repetitions: robust against scheduler contention.
	rawRTT := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := raw.RoundTrip(payload); err != nil {
			return OverheadResult{}, err
		}
		if d := time.Since(start); d < rawRTT {
			rawRTT = d
		}
	}

	// Through the ParC# platform: a 2-node cluster, object forced to the
	// remote node, synchronous proxy invokes.
	cl, err := cluster.New(cluster.Options{
		Nodes:     2,
		Net:       net,
		Cost:      profile.MonoTCP117(),
		Placement: remoteOnly{},
	})
	if err != nil {
		return OverheadResult{}, err
	}
	defer cl.Close()
	cl.RegisterClass("echo", func() any { return echoObj{} })
	p, err := cl.Node(0).NewParallelObject("echo")
	if err != nil {
		return OverheadResult{}, err
	}
	if p.IsLocal() {
		return OverheadResult{}, fmt.Errorf("bench: overhead object placed locally")
	}
	if _, err := p.Invoke("Echo", payload); err != nil {
		return OverheadResult{}, err
	}
	proxyRTT := time.Duration(1 << 62)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := p.Invoke("Echo", payload); err != nil {
			return OverheadResult{}, err
		}
		if d := time.Since(start); d < proxyRTT {
			proxyRTT = d
		}
	}

	return OverheadResult{
		RawRTT:      rawRTT,
		ProxyRTT:    proxyRTT,
		OverheadPct: (float64(proxyRTT)/float64(rawRTT) - 1) * 100,
	}, nil
}

// remoteOnly places every object on node 1 (never the creating node 0).
type remoteOnly struct{}

// Pick implements core.PlacementPolicy.
func (remoteOnly) Pick(self int, loads []core.NodeLoad) int {
	for _, l := range loads {
		if l.Node != self {
			return l.Node
		}
	}
	return self
}
