package sieve

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cluster"
	"repro/internal/core"
)

func TestSequentialCountKnownValues(t *testing.T) {
	cases := map[int]int{
		1:    0,
		2:    1,
		10:   4,
		100:  25,
		1000: 168,
		5000: 669,
	}
	for n, want := range cases {
		if got := SequentialCount(n, 1); got != want {
			t.Errorf("SequentialCount(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestWorkFactorPreservesCount(t *testing.T) {
	for _, f := range []float64{1, 1.2, 1.4, 2.0} {
		if got := SequentialCount(2000, f); got != 303 {
			t.Errorf("SequentialCount(2000, %v) = %d, want 303", f, got)
		}
	}
}

func TestSequentialList(t *testing.T) {
	got := SequentialList(30)
	want := []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SequentialList(30) = %v", got)
	}
	if SequentialList(1) != nil {
		t.Error("SequentialList(1) should be empty")
	}
}

func TestListMatchesCountQuick(t *testing.T) {
	f := func(raw uint16) bool {
		n := int(raw%3000) + 2
		return len(SequentialList(n)) == SequentialCount(n, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func newSieveCluster(t *testing.T, nodes int, agg core.AggregationConfig) *cluster.Cluster {
	t.Helper()
	cl, err := cluster.New(cluster.Options{
		Nodes:       nodes,
		Aggregation: agg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	for i := 0; i < cl.Size(); i++ {
		RegisterClasses(cl.Node(i))
	}
	return cl
}

func TestPipelineSingleNode(t *testing.T) {
	cl := newSieveCluster(t, 1, core.AggregationConfig{})
	primes, err := Pipeline(cl.Node(0), 100)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(primes, SequentialList(100)) {
		t.Errorf("pipeline primes = %v", primes)
	}
}

func TestPipelineMultiNode(t *testing.T) {
	cl := newSieveCluster(t, 3, core.AggregationConfig{})
	primes, err := Pipeline(cl.Node(0), 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(primes, SequentialList(200)) {
		t.Errorf("pipeline primes = %v", primes)
	}
	// The pipeline must actually have distributed filters.
	remoteHosted := 0
	for i := 1; i < cl.Size(); i++ {
		remoteHosted += cl.Node(i).Load()
	}
	if remoteHosted == 0 {
		t.Error("no filters placed on remote nodes")
	}
}

func TestPipelineWithAggregation(t *testing.T) {
	cl := newSieveCluster(t, 2, core.AggregationConfig{MaxCalls: 16})
	primes, err := Pipeline(cl.Node(0), 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(primes, SequentialList(300)) {
		t.Errorf("aggregated pipeline primes wrong: %d found", len(primes))
	}
	// Aggregation must actually have batched messages.
	st := cl.Node(0).Stats()
	if st.BatchesSent == 0 {
		t.Error("no batches sent despite aggregation enabled")
	}
	if st.BatchesSent >= st.CallsAggregated {
		t.Errorf("batches (%d) not smaller than aggregated calls (%d)",
			st.BatchesSent, st.CallsAggregated)
	}
}

func TestPipelineRepeatable(t *testing.T) {
	cl := newSieveCluster(t, 2, core.AggregationConfig{})
	for round := 0; round < 2; round++ {
		primes, err := Pipeline(cl.Node(0), 50)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(primes) != 15 {
			t.Fatalf("round %d: %d primes", round, len(primes))
		}
	}
}

// TestFarmedCountMatchesSequential drives the MapReduce-skeleton sieve on
// one and three nodes and at awkward worker counts (more workers than
// span, worker count not dividing the range) against the sequential count.
func TestFarmedCountMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		nodes, n, workers int
	}{
		{1, 1000, 4},
		{3, 5000, 8},
		{3, 200, 64}, // degenerate segments: more workers than numbers
		{1, 9973, 7}, // prime bound, uneven split
	} {
		cl := newSieveCluster(t, tc.nodes, core.AggregationConfig{})
		got, err := FarmedCount(cl.Node(0), tc.n, tc.workers)
		if err != nil {
			t.Fatalf("FarmedCount(%d, %d): %v", tc.n, tc.workers, err)
		}
		if want := SequentialCount(tc.n, 1); got != want {
			t.Errorf("FarmedCount(%d, %d) = %d, want %d", tc.n, tc.workers, got, want)
		}
	}
}

// TestFarmedCountTinyBounds pins the edge cases below the first segment.
func TestFarmedCountTinyBounds(t *testing.T) {
	cl := newSieveCluster(t, 1, core.AggregationConfig{})
	for n, want := range map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 10: 4} {
		got, err := FarmedCount(cl.Node(0), n, 3)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("FarmedCount(%d) = %d, want %d", n, got, want)
		}
	}
}
