// Package sieve implements the prime-number workloads of the paper: the
// pipelined prime sieve built from PrimeFilter parallel objects (the
// running example of Figs. 4–7, where each filter's process method receives
// candidate numbers and forwards survivors) and the sequential array sieve
// used for the Mono-vs-JVM sequential comparison ("running another
// application, a prime number sieve, the Mono execution time is about the
// same as the JVM").
package sieve

import (
	"sort"
	"sync"

	"repro/internal/core"
)

// SequentialCount counts primes <= n with a classic sieve of Eratosthenes.
// workFactor >= 1 injects the VM compute factor by re-running a fraction of
// the marking passes (real integer work, same result).
func SequentialCount(n int, workFactor float64) int {
	if n < 2 {
		return 0
	}
	if workFactor < 1 {
		workFactor = 1
	}
	passes := int(workFactor)
	frac := workFactor - float64(passes)
	composite := make([]bool, n+1)
	for p := 2; p*p <= n; p++ {
		if composite[p] {
			continue
		}
		reps := passes
		if frac > 0 && p%1000 < int(frac*1000) {
			reps++
		}
		for r := 0; r < reps; r++ {
			for m := p * p; m <= n; m += p {
				composite[m] = true
			}
		}
	}
	count := 0
	for p := 2; p <= n; p++ {
		if !composite[p] {
			count++
		}
	}
	return count
}

// SequentialList returns the primes <= n.
func SequentialList(n int) []int {
	if n < 2 {
		return nil
	}
	composite := make([]bool, n+1)
	var out []int
	for p := 2; p <= n; p++ {
		if composite[p] {
			continue
		}
		out = append(out, p)
		for m := p * p; m <= n; m += p {
			composite[m] = true
		}
	}
	return out
}

// Sink collects the primes discovered by the filter pipeline. It is a
// parallel-object class: register with RegisterClasses.
type Sink struct {
	mu     sync.Mutex
	primes []int
	done   chan struct{}
	want   int
}

// Configure sets how many candidate numbers will flow so Done can fire
// after the final Flush marker.
func (s *Sink) Configure(expectFlushes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.want = expectFlushes
	s.done = make(chan struct{})
}

// Add records one discovered prime.
func (s *Sink) Add(p int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.primes = append(s.primes, p)
}

// Flushed signals that a flush marker traversed the whole pipeline.
func (s *Sink) Flushed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.want--
	if s.want == 0 && s.done != nil {
		close(s.done)
	}
}

// Primes returns the collected primes in ascending order.
func (s *Sink) Primes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.primes))
	copy(out, s.primes)
	sort.Ints(out)
	return out
}

// WaitDone blocks until the expected flush markers arrived.
func (s *Sink) WaitDone() {
	s.mu.Lock()
	ch := s.done
	s.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

// Filter is the PrimeFilter parallel object of the paper's running example.
// Each filter owns one prime; candidates that survive every filter are new
// primes: the last filter reports them to the sink and extends the pipeline
// with a new filter, exactly the classic sieve-of-Eratosthenes process
// pipeline SCOOPP papers use to stress fine grains.
type Filter struct {
	rt *core.Runtime

	mu    sync.Mutex
	prime int
	next  *core.Proxy
	sink  *core.Proxy
	sref  core.ProxyRef
}

// NewFilterFactory returns the factory to register on a node; filters need
// their node's runtime to create successor filters.
func NewFilterFactory(rt *core.Runtime) func() any {
	return func() any { return &Filter{rt: rt} }
}

// Setup initialises the filter with its prime and the sink reference.
func (f *Filter) Setup(prime int, sink core.ProxyRef) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prime = prime
	f.sref = sink
	f.sink = f.rt.Attach(sink)
	f.sink.Post("Add", prime)
}

// Process handles one candidate: drop multiples of the filter's prime,
// forward survivors, and extend the pipeline when a survivor reaches the
// end (it is a newly discovered prime). This is the fine-grain method whose
// per-number messages the RTS aggregates in ablation A1.
func (f *Filter) Process(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.prime == 0 {
		// First candidate seeds this filter.
		f.prime = n
		f.sink.Post("Add", n)
		return nil
	}
	if n%f.prime == 0 {
		return nil
	}
	if f.next == nil {
		next, err := f.rt.NewParallelObject("sieve.Filter")
		if err != nil {
			return err
		}
		if _, err := next.Invoke("Setup", n, f.sref); err != nil {
			return err
		}
		f.next = next
		return nil
	}
	f.next.Post("Process", n)
	return nil
}

// Flush propagates the end-of-stream marker down the pipeline and then
// notifies the sink. Each filter first drains its own lane to the sink so
// that, when the marker arrives at the sink, every prime discovered by a
// filter the marker already passed has landed.
func (f *Filter) Flush() {
	f.mu.Lock()
	next := f.next
	sink := f.sink
	f.mu.Unlock()
	if sink != nil {
		sink.Wait()
	}
	if next != nil {
		next.Post("Flush")
		next.Wait()
		return
	}
	if sink != nil {
		sink.Post("Flushed")
		sink.Wait()
	}
}

// RegisterClasses registers the pipeline classes on a runtime.
func RegisterClasses(rt *core.Runtime) {
	rt.RegisterClass("sieve.Filter", NewFilterFactory(rt))
	rt.RegisterClass("sieve.Sink", func() any { return &Sink{} })
}

// Pipeline drives a full pipelined sieve on an existing runtime and
// returns the primes <= n. The entry node creates the sink and the first
// filter, streams candidates with asynchronous Posts (subject to the
// runtime's aggregation configuration) and waits for the flush marker.
func Pipeline(rt *core.Runtime, n int) ([]int, error) {
	sinkP, err := rt.NewParallelObject("sieve.Sink")
	if err != nil {
		return nil, err
	}
	defer sinkP.Destroy()
	if _, err := sinkP.Invoke("Configure", 1); err != nil {
		return nil, err
	}
	first, err := rt.NewParallelObject("sieve.Filter")
	if err != nil {
		return nil, err
	}
	if _, err := first.Invoke("Setup", 2, sinkP.Ref()); err != nil {
		return nil, err
	}
	for i := 3; i <= n; i++ {
		first.Post("Process", i)
	}
	first.Post("Flush")
	first.Wait()
	if err := first.AsyncErr(); err != nil {
		return nil, err
	}
	res, err := sinkP.Invoke("Primes")
	if err != nil {
		return nil, err
	}
	switch v := res.(type) {
	case []int:
		return v, nil
	case []any:
		out := make([]int, len(v))
		for i, e := range v {
			out[i], _ = e.(int)
		}
		return out, nil
	}
	return nil, nil
}
