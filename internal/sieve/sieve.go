// Package sieve implements the prime-number workloads of the paper: the
// pipelined prime sieve built from PrimeFilter parallel objects (the
// running example of Figs. 4–7, where each filter's process method receives
// candidate numbers and forwards survivors) and the sequential array sieve
// used for the Mono-vs-JVM sequential comparison ("running another
// application, a prime number sieve, the Mono execution time is about the
// same as the JVM").
package sieve

import (
	"context"
	"math"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/parc"
)

// SequentialCount counts primes <= n with a classic sieve of Eratosthenes.
// workFactor >= 1 injects the VM compute factor by re-running a fraction of
// the marking passes (real integer work, same result).
func SequentialCount(n int, workFactor float64) int {
	if n < 2 {
		return 0
	}
	if workFactor < 1 {
		workFactor = 1
	}
	passes := int(workFactor)
	frac := workFactor - float64(passes)
	composite := make([]bool, n+1)
	for p := 2; p*p <= n; p++ {
		if composite[p] {
			continue
		}
		reps := passes
		if frac > 0 && p%1000 < int(frac*1000) {
			reps++
		}
		for r := 0; r < reps; r++ {
			for m := p * p; m <= n; m += p {
				composite[m] = true
			}
		}
	}
	count := 0
	for p := 2; p <= n; p++ {
		if !composite[p] {
			count++
		}
	}
	return count
}

// SequentialList returns the primes <= n.
func SequentialList(n int) []int {
	if n < 2 {
		return nil
	}
	composite := make([]bool, n+1)
	var out []int
	for p := 2; p <= n; p++ {
		if composite[p] {
			continue
		}
		out = append(out, p)
		for m := p * p; m <= n; m += p {
			composite[m] = true
		}
	}
	return out
}

// Sink collects the primes discovered by the filter pipeline. It is a
// parallel-object class: register with RegisterClasses.
type Sink struct {
	mu     sync.Mutex
	primes []int
	done   chan struct{}
	want   int
}

// Configure sets how many candidate numbers will flow so Done can fire
// after the final Flush marker.
func (s *Sink) Configure(expectFlushes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.want = expectFlushes
	s.done = make(chan struct{})
}

// Add records one discovered prime.
func (s *Sink) Add(p int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.primes = append(s.primes, p)
}

// Flushed signals that a flush marker traversed the whole pipeline.
func (s *Sink) Flushed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.want--
	if s.want == 0 && s.done != nil {
		close(s.done)
	}
}

// Primes returns the collected primes in ascending order.
func (s *Sink) Primes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.primes))
	copy(out, s.primes)
	sort.Ints(out)
	return out
}

// WaitDone blocks until the expected flush markers arrived.
func (s *Sink) WaitDone() {
	s.mu.Lock()
	ch := s.done
	s.mu.Unlock()
	if ch != nil {
		<-ch
	}
}

// Filter is the PrimeFilter parallel object of the paper's running example.
// Each filter owns one prime; candidates that survive every filter are new
// primes: the last filter reports them to the sink and extends the pipeline
// with a new filter, exactly the classic sieve-of-Eratosthenes process
// pipeline SCOOPP papers use to stress fine grains.
type Filter struct {
	rt *core.Runtime

	mu    sync.Mutex
	prime int
	next  *core.Proxy
	sink  *core.Proxy
	sref  core.ProxyRef
}

// NewFilterFactory returns the factory to register on a node; filters need
// their node's runtime to create successor filters.
func NewFilterFactory(rt *core.Runtime) func() any {
	return func() any { return &Filter{rt: rt} }
}

// Setup initialises the filter with its prime and the sink reference.
func (f *Filter) Setup(prime int, sink core.ProxyRef) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prime = prime
	f.sref = sink
	f.sink = f.rt.Attach(sink)
	f.sink.Post("Add", prime)
}

// Process handles one candidate: drop multiples of the filter's prime,
// forward survivors, and extend the pipeline when a survivor reaches the
// end (it is a newly discovered prime). This is the fine-grain method whose
// per-number messages the RTS aggregates in ablation A1.
func (f *Filter) Process(n int) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.prime == 0 {
		// First candidate seeds this filter.
		f.prime = n
		f.sink.Post("Add", n)
		return nil
	}
	if n%f.prime == 0 {
		return nil
	}
	if f.next == nil {
		next, err := f.rt.NewParallelObject("sieve.Filter")
		if err != nil {
			return err
		}
		if _, err := next.Invoke("Setup", n, f.sref); err != nil {
			return err
		}
		f.next = next
		return nil
	}
	f.next.Post("Process", n)
	return nil
}

// Flush propagates the end-of-stream marker down the pipeline and then
// notifies the sink. Each filter first drains its own lane to the sink so
// that, when the marker arrives at the sink, every prime discovered by a
// filter the marker already passed has landed.
func (f *Filter) Flush() {
	f.mu.Lock()
	next := f.next
	sink := f.sink
	f.mu.Unlock()
	if sink != nil {
		sink.Wait()
	}
	if next != nil {
		next.Post("Flush")
		next.Wait()
		return
	}
	if sink != nil {
		sink.Post("Flushed")
		sink.Wait()
	}
}

// SegmentWorker is the parallel-object class of the farmed segmented
// sieve: each call counts the primes in one half-open range given the
// base primes up to the range's square root.
type SegmentWorker struct{}

// CountSegment counts primes in [lo, hi) by marking multiples of the base
// primes; correct as long as hi <= (max(base)+1)^2, which the driver's
// partitioning guarantees.
func (SegmentWorker) CountSegment(lo, hi int, base []int) int {
	if lo < 2 {
		lo = 2
	}
	if hi <= lo {
		return 0
	}
	composite := make([]bool, hi-lo)
	for _, p := range base {
		start := (lo + p - 1) / p * p
		if start < p*p {
			start = p * p
		}
		for m := start; m < hi; m += p {
			composite[m-lo] = true
		}
	}
	count := 0
	for i := range composite {
		if !composite[i] {
			count++
		}
	}
	return count
}

// RegisterClasses registers the pipeline classes on a runtime.
func RegisterClasses(rt *core.Runtime) {
	rt.RegisterClass("sieve.Filter", NewFilterFactory(rt))
	rt.RegisterClass("sieve.Sink", func() any { return &Sink{} })
	rt.RegisterClass("sieve.SegmentWorker", func() any { return SegmentWorker{} })
}

// Pipeline drives a full pipelined sieve on an existing runtime and
// returns the primes <= n. The entry node creates the sink and the first
// filter, streams candidates with asynchronous Sends (subject to the
// runtime's aggregation configuration) and waits for the flush marker.
// The driver rides the typed parc API; the filter chain itself stays
// dynamic — it grows one parallel object per discovered prime, the
// paper's running example.
func Pipeline(rt *core.Runtime, n int) ([]int, error) {
	ctx := context.Background()
	sink, err := parc.NewAt[Sink](rt, "sieve.Sink")
	if err != nil {
		return nil, err
	}
	defer sink.Destroy(ctx) //nolint:errcheck // best-effort cleanup
	if _, err := sink.Invoke(ctx, "Configure", 1); err != nil {
		return nil, err
	}
	first, err := parc.NewAt[Filter](rt, "sieve.Filter")
	if err != nil {
		return nil, err
	}
	if _, err := first.Invoke(ctx, "Setup", 2, sink.Ref()); err != nil {
		return nil, err
	}
	for i := 3; i <= n; i++ {
		_ = first.Send(ctx, "Process", i) // execution errors flow to Err
	}
	_ = first.Send(ctx, "Flush")
	if err := first.Wait(ctx); err != nil {
		return nil, err
	}
	if err := first.Err(); err != nil {
		return nil, err
	}
	return parc.Call[[]int](ctx, sink, "Primes")
}

// FarmedCount counts primes <= n with the MapReduce skeleton: the base
// primes up to sqrt(n) are sieved locally, the remaining range is split
// into one segment per worker, and each SegmentWorker parallel object
// counts its segment against the scattered base — the farming
// counterpoint to the fine-grained Pipeline above, and the shape the
// skeletons benchmark drives across nodes.
func FarmedCount(rt *core.Runtime, n, workers int) (int, error) {
	if n < 2 {
		return 0, nil
	}
	if workers < 1 {
		workers = 1
	}
	root := int(math.Sqrt(float64(n)))
	base := SequentialList(root)
	objs := make([]*parc.Object[SegmentWorker], workers)
	for i := range objs {
		o, err := parc.NewAt[SegmentWorker](rt, "sieve.SegmentWorker")
		if err != nil {
			for _, prev := range objs[:i] {
				prev.Destroy(context.Background()) //nolint:errcheck // best-effort unwind
			}
			return 0, err
		}
		objs[i] = o
	}
	g := parc.GroupOf(objs...)
	defer g.Destroy(context.Background()) //nolint:errcheck // best-effort cleanup
	span := n - root
	return parc.MapReduce(context.Background(), g, "CountSegment",
		func(i int) []any {
			return []any{root + 1 + i*span/workers, root + 1 + (i+1)*span/workers, base}
		},
		len(base),
		func(acc int, c int) int { return acc + c },
	)
}
