// Package fault injects deterministic transport faults for chaos testing:
// symmetric and asymmetric partitions, node crashes (full isolation plus
// connection kills), frame corruption and truncation, and send stalls.
//
// An Injector is the single switchboard for one test network. Every node
// wraps its transport through Injector.Node(inner, addr) — the per-node
// view records which node is dialing, which the underlying address scheme
// cannot (in-process pipes carry no dialer identity) — and the injector
// enforces faults on the dialer-side connection wrapper, which sees both
// directions of the conversation: Send is the local→remote half, Recv the
// remote→local half. Faults are therefore directional (from, to) pairs of
// listener addresses.
//
// Semantics are chosen to exercise distinct failure classes of the RPC
// stack above:
//
//   - partition: frames silently dropped (both or one direction) — calls
//     hang until their deadline, exactly like a blackholed network path.
//     Existing connections stay "up"; nothing errors.
//   - crash: the node is fully isolated, its existing connections are
//     closed (callers see connection errors — the fast-failure class that
//     feeds circuit breakers), and new dials to or from it are refused.
//     Restart heals it; the node itself never knew.
//   - corruption/truncation: a sampled fraction of frames is mutated,
//     driving the decoder/framing error paths.
//   - stall: sends on a path block (without erroring) until healed —
//     the slow-network half-failure that is neither up nor down.
//
// All randomness (corruption sampling, mutation positions) comes from one
// seeded generator, so a failing schedule replays from its seed.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/transport"
)

// path is one direction of traffic between two listener addresses.
type path struct{ from, to string }

// Injector is the fault switchboard shared by every node view of one test
// network. All methods are safe for concurrent use, including from a
// schedule goroutine while traffic flows.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	blocked  map[path]bool
	corrupt  map[path]float64
	truncate map[path]float64
	stalls   map[path]chan struct{}
	crashed  map[string]bool
	conns    map[*faultConn]struct{}
}

// NewInjector returns an injector whose sampling decisions derive from
// seed — the same seed and schedule reproduce the same fault pattern.
func NewInjector(seed int64) *Injector {
	return &Injector{
		rng:      rand.New(rand.NewSource(seed)),
		blocked:  make(map[path]bool),
		corrupt:  make(map[path]float64),
		truncate: make(map[path]float64),
		stalls:   make(map[path]chan struct{}),
		crashed:  make(map[string]bool),
		conns:    make(map[*faultConn]struct{}),
	}
}

// Node returns the network view of the node listening at addr: Listen
// passes through, Dial tags outbound connections with (addr → target) so
// the injector can match directional faults. Every node of the cluster
// under test must route its dials through its own view.
func (inj *Injector) Node(inner transport.Network, addr string) transport.Network {
	return &nodeNet{inj: inj, inner: inner, local: addr}
}

// PartitionOneWay blackholes frames from→to. Frames the other way still
// flow — the asymmetric partition that makes failure detectors disagree.
func (inj *Injector) PartitionOneWay(from, to string) {
	inj.mu.Lock()
	inj.blocked[path{from, to}] = true
	inj.mu.Unlock()
}

// Partition blackholes both directions between a and b.
func (inj *Injector) Partition(a, b string) {
	inj.mu.Lock()
	inj.blocked[path{a, b}] = true
	inj.blocked[path{b, a}] = true
	inj.mu.Unlock()
}

// Heal removes the partition between a and b (both directions).
func (inj *Injector) Heal(a, b string) {
	inj.mu.Lock()
	delete(inj.blocked, path{a, b})
	delete(inj.blocked, path{b, a})
	inj.mu.Unlock()
}

// Crash fully isolates addr: every live connection touching it is closed
// (connection-reset class failures), and until Restart all its traffic is
// dropped and new dials to or from it are refused.
func (inj *Injector) Crash(addr string) {
	inj.mu.Lock()
	inj.crashed[addr] = true
	var victims []*faultConn
	for c := range inj.conns {
		if c.local == addr || c.remote == addr {
			victims = append(victims, c)
		}
	}
	inj.mu.Unlock()
	for _, c := range victims {
		c.Close()
	}
}

// Restart heals a crashed node.
func (inj *Injector) Restart(addr string) {
	inj.mu.Lock()
	delete(inj.crashed, addr)
	inj.mu.Unlock()
}

// Corrupt sets the probability (0..1) that a frame from→to has one byte
// flipped. 0 clears it.
func (inj *Injector) Corrupt(from, to string, p float64) {
	inj.setProb(inj.corrupt, path{from, to}, p)
}

// Truncate sets the probability (0..1) that a frame from→to is cut short
// at a sampled offset. 0 clears it.
func (inj *Injector) Truncate(from, to string, p float64) {
	inj.setProb(inj.truncate, path{from, to}, p)
}

func (inj *Injector) setProb(m map[path]float64, k path, p float64) {
	inj.mu.Lock()
	if p <= 0 {
		delete(m, k)
	} else {
		m[k] = p
	}
	inj.mu.Unlock()
}

// Stall blocks sends from→to (without erroring) until Unstall or HealAll.
func (inj *Injector) Stall(from, to string) {
	k := path{from, to}
	inj.mu.Lock()
	if _, ok := inj.stalls[k]; !ok {
		inj.stalls[k] = make(chan struct{})
	}
	inj.mu.Unlock()
}

// Unstall releases a stalled path; blocked senders resume.
func (inj *Injector) Unstall(from, to string) {
	k := path{from, to}
	inj.mu.Lock()
	if ch, ok := inj.stalls[k]; ok {
		close(ch)
		delete(inj.stalls, k)
	}
	inj.mu.Unlock()
}

// HealAll clears every fault — partitions, crashes, corruption, stalls —
// returning the network to health (the end-of-schedule drain state).
func (inj *Injector) HealAll() {
	inj.mu.Lock()
	inj.blocked = make(map[path]bool)
	inj.crashed = make(map[string]bool)
	inj.corrupt = make(map[path]float64)
	inj.truncate = make(map[path]float64)
	for _, ch := range inj.stalls {
		close(ch)
	}
	inj.stalls = make(map[path]chan struct{})
	inj.mu.Unlock()
}

// dropped reports whether frames from→to are currently blackholed.
func (inj *Injector) dropped(from, to string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.blocked[path{from, to}] || inj.crashed[from] || inj.crashed[to]
}

// stallChan returns the channel to wait on when from→to is stalled, nil
// otherwise.
func (inj *Injector) stallChan(from, to string) chan struct{} {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.stalls[path{from, to}]
}

// mutate applies sampled corruption/truncation to a frame from→to,
// returning the (possibly copied and mutated) frame. The original buffer
// is never written: the sender may reuse it.
func (inj *Injector) mutate(from, to string, msg []byte) []byte {
	k := path{from, to}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if len(msg) == 0 {
		return msg
	}
	if p := inj.corrupt[k]; p > 0 && inj.rng.Float64() < p {
		cp := append([]byte(nil), msg...)
		cp[inj.rng.Intn(len(cp))] ^= 1 << uint(inj.rng.Intn(8))
		msg = cp
	}
	if p := inj.truncate[k]; p > 0 && inj.rng.Float64() < p {
		msg = msg[:inj.rng.Intn(len(msg))]
	}
	return msg
}

func (inj *Injector) register(c *faultConn) {
	inj.mu.Lock()
	if inj.crashed[c.local] || inj.crashed[c.remote] {
		inj.mu.Unlock()
		c.inner.Close()
		return
	}
	inj.conns[c] = struct{}{}
	inj.mu.Unlock()
}

func (inj *Injector) unregister(c *faultConn) {
	inj.mu.Lock()
	delete(inj.conns, c)
	inj.mu.Unlock()
}

// Event is one step of a fault schedule: at offset At from the schedule
// start, apply Do. Name labels the step in logs and failure reports.
type Event struct {
	At   time.Duration
	Name string
	Do   func(*Injector)
}

// RunSchedule applies events in At order on the injector's own timeline,
// stopping early when stop closes. It blocks until the last event fired
// (or stop); run it in a goroutine for concurrent traffic.
func (inj *Injector) RunSchedule(stop <-chan struct{}, events []Event) {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	start := time.Now()
	for _, ev := range sorted {
		d := ev.At - time.Since(start)
		if d > 0 {
			select {
			case <-stop:
				return
			case <-time.After(d):
			}
		} else {
			select {
			case <-stop:
				return
			default:
			}
		}
		ev.Do(inj)
	}
}

// nodeNet is one node's view of the network: dials carry the node's
// listener address as the fault-path origin.
type nodeNet struct {
	inj   *Injector
	inner transport.Network
	local string
}

func (n *nodeNet) Listen(addr string) (transport.Listener, error) {
	return n.inner.Listen(addr)
}

func (n *nodeNet) Dial(addr string) (transport.Conn, error) {
	if n.inj.dialRefused(n.local, addr) {
		return nil, fmt.Errorf("fault: dial %s from %s: connection refused (crashed)", addr, n.local)
	}
	c, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{inj: n.inj, inner: c, local: n.local, remote: addr,
		done: make(chan struct{})}
	n.inj.register(fc)
	return fc, nil
}

// dialRefused reports whether a dial local→addr must fail fast: crashes
// refuse connections (the OS of a dead node answers RST or nothing);
// partitions do not — the dial "succeeds" and the traffic blackholes,
// which is what a dropped-packet partition looks like to TCP.
func (inj *Injector) dialRefused(from, to string) bool {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.crashed[from] || inj.crashed[to]
}

// faultConn enforces the injector's state on one dialed connection. local
// and remote are listener addresses, so both directions of every fault
// path map onto exactly one dialed conn's Send (local→remote) and Recv
// (remote→local).
type faultConn struct {
	inj    *Injector
	inner  transport.Conn
	local  string
	remote string

	closeOnce sync.Once
	done      chan struct{}
}

func (c *faultConn) Send(msg []byte) error {
	if ch := c.inj.stallChan(c.local, c.remote); ch != nil {
		select {
		case <-ch:
		case <-c.done:
			return transport.ErrClosed
		}
	}
	if c.inj.dropped(c.local, c.remote) {
		// A blackholed frame vanishes without error, exactly like a
		// dropped packet: the caller's RPC waits out its deadline.
		return nil
	}
	return c.inner.Send(c.inj.mutate(c.local, c.remote, msg))
}

func (c *faultConn) Recv() ([]byte, error) {
	for {
		msg, err := c.inner.Recv()
		if err != nil {
			return nil, err
		}
		if c.inj.dropped(c.remote, c.local) {
			continue // inbound half of the path is blackholed: discard
		}
		return c.inj.mutate(c.remote, c.local, msg), nil
	}
}

func (c *faultConn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.done)
		c.inj.unregister(c)
		err = c.inner.Close()
	})
	return err
}

func (c *faultConn) LocalAddr() string  { return c.inner.LocalAddr() }
func (c *faultConn) RemoteAddr() string { return c.inner.RemoteAddr() }
