package fault

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/transport"
)

// pair builds a dialed fault-wrapped connection a→b over a fresh memory
// network, with an accept-side echo loop that sends every received frame
// back. Returns the dialer-side conn (the one the injector enforces on)
// and a pump channel carrying everything it receives — one persistent
// reader, so a timed-out wait never leaves a goroutine behind to steal the
// next frame.
func pair(t *testing.T, inj *Injector, a, b string) (transport.Conn, <-chan []byte) {
	t.Helper()
	mem := transport.NewMemNetwork()
	lis, err := inj.Node(mem, b).Listen(b)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := lis.Accept()
		if err != nil {
			return
		}
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			if err := c.Send(msg); err != nil {
				return
			}
		}
	}()
	c, err := inj.Node(mem, a).Dial(b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, pump(c)
}

// pump drains c into a channel from one persistent reader goroutine.
func pump(c transport.Conn) <-chan []byte {
	got := make(chan []byte, 16)
	go func() {
		defer close(got)
		for {
			msg, err := c.Recv()
			if err != nil {
				return
			}
			got <- msg
		}
	}()
	return got
}

// recvOne waits for one pumped frame, reporting whether anything arrived
// in time.
func recvOne(got <-chan []byte, d time.Duration) ([]byte, bool) {
	select {
	case msg, ok := <-got:
		return msg, ok
	case <-time.After(d):
		return nil, false
	}
}

// TestPartitionDropsAndHeals: a symmetric partition blackholes frames
// without erroring — the dropped-packet failure mode — and healing restores
// the path on the SAME connection (partitions do not kill connections).
func TestPartitionDropsAndHeals(t *testing.T) {
	inj := NewInjector(1)
	c, got := pair(t, inj, "mem://a", "mem://b")

	if err := c.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if msg, ok := recvOne(got, time.Second); !ok || string(msg) != "hi" {
		t.Fatalf("echo before partition = (%q, %v), want (hi, true)", msg, ok)
	}

	inj.Partition("mem://a", "mem://b")
	if err := c.Send([]byte("lost")); err != nil {
		t.Fatalf("partitioned send errored (%v), want silent drop", err)
	}
	if msg, ok := recvOne(got, 50*time.Millisecond); ok {
		t.Fatalf("received %q through a partition", msg)
	}

	inj.Heal("mem://a", "mem://b")
	if err := c.Send([]byte("back")); err != nil {
		t.Fatal(err)
	}
	if msg, ok := recvOne(got, time.Second); !ok || string(msg) != "back" {
		t.Fatalf("echo after heal = (%q, %v), want (back, true)", msg, ok)
	}
}

// TestPartitionOneWay: an asymmetric partition drops one direction while
// the other still flows — the disagreeing-failure-detectors case. The
// b→a-only cut lets the request through and eats the reply.
func TestPartitionOneWay(t *testing.T) {
	inj := NewInjector(1)
	c, got := pair(t, inj, "mem://a", "mem://b")

	inj.PartitionOneWay("mem://b", "mem://a")
	if err := c.Send([]byte("req")); err != nil {
		t.Fatal(err)
	}
	if msg, ok := recvOne(got, 50*time.Millisecond); ok {
		t.Fatalf("received reply %q through the b→a cut", msg)
	}

	// The forward direction was never cut: healing the reverse path lets a
	// fresh request round-trip, proving requests were arriving all along.
	inj.Heal("mem://b", "mem://a")
	if err := c.Send([]byte("again")); err != nil {
		t.Fatal(err)
	}
	// Both the blackholed echo ("req") and the fresh one are pending: the
	// reply to "req" was consumed and dropped by the injector, so the next
	// frame through is "again".
	if msg, ok := recvOne(got, time.Second); !ok || string(msg) != "again" {
		t.Fatalf("echo after healing reverse path = (%q, %v), want (again, true)", msg, ok)
	}
}

// TestCrashClosesAndRefuses: a crash closes live connections (the
// connection-reset class that feeds circuit breakers) and refuses new
// dials both ways until restart.
func TestCrashClosesAndRefuses(t *testing.T) {
	inj := NewInjector(1)
	mem := transport.NewMemNetwork()
	lis, err := inj.Node(mem, "mem://b").Listen("mem://b")
	if err != nil {
		t.Fatal(err)
	}
	var accepted atomic.Int32
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			accepted.Add(1)
			go func() {
				for {
					msg, err := c.Recv()
					if err != nil {
						return
					}
					c.Send(msg)
				}
			}()
		}
	}()
	aView := inj.Node(mem, "mem://a")
	c, err := aView.Dial("mem://b")
	if err != nil {
		t.Fatal(err)
	}
	got := pump(c)
	c.Send([]byte("x"))
	if _, ok := recvOne(got, time.Second); !ok {
		t.Fatal("echo failed before crash")
	}

	inj.Crash("mem://b")
	if _, err := aView.Dial("mem://b"); err == nil {
		t.Error("dial to a crashed node succeeded, want refusal")
	}
	if _, err := inj.Node(mem, "mem://b").Dial("mem://a"); err == nil {
		t.Error("dial FROM a crashed node succeeded, want refusal")
	}
	// The existing connection was closed: the reader observes a connection
	// error (the pump channel closes) — the fast-failure class that feeds
	// circuit breakers, unlike a partition's silent hang.
	select {
	case _, open := <-got:
		if open {
			t.Fatal("received a frame after the crash, want a closed connection")
		}
	case <-time.After(time.Second):
		t.Fatal("reader still blocked after the crash closed the connection")
	}

	inj.Restart("mem://b")
	c2, err := aView.Dial("mem://b")
	if err != nil {
		t.Fatalf("dial after restart: %v", err)
	}
	defer c2.Close()
	got2 := pump(c2)
	c2.Send([]byte("z"))
	if msg, ok := recvOne(got2, time.Second); !ok || string(msg) != "z" {
		t.Fatalf("echo after restart = (%q, %v), want (z, true)", msg, ok)
	}
}

// TestStallBlocksSender: a stalled path blocks Send without erroring — the
// neither-up-nor-down slow network — and Unstall releases the blocked
// sender, whose frame then arrives.
func TestStallBlocksSender(t *testing.T) {
	inj := NewInjector(1)
	c, got := pair(t, inj, "mem://a", "mem://b")

	inj.Stall("mem://a", "mem://b")
	sent := make(chan error, 1)
	go func() { sent <- c.Send([]byte("slow")) }()
	select {
	case err := <-sent:
		t.Fatalf("send completed (%v) on a stalled path", err)
	case <-time.After(50 * time.Millisecond):
	}
	inj.Unstall("mem://a", "mem://b")
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("unstalled send errored: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("send still blocked after Unstall")
	}
	if msg, ok := recvOne(got, time.Second); !ok || string(msg) != "slow" {
		t.Fatalf("stalled frame = (%q, %v), want (slow, true)", msg, ok)
	}
}

// TestHealAllReleasesEverything: HealAll clears partitions, crashes and
// stalls at once — the end-of-schedule drain state must never leave a
// blocked sender behind.
func TestHealAllReleasesEverything(t *testing.T) {
	inj := NewInjector(1)
	c, got := pair(t, inj, "mem://a", "mem://b")
	inj.Partition("mem://a", "mem://b")
	inj.Stall("mem://a", "mem://b")
	sent := make(chan error, 1)
	go func() { sent <- c.Send([]byte("m")) }()
	time.Sleep(20 * time.Millisecond)
	inj.HealAll()
	select {
	case err := <-sent:
		if err != nil {
			t.Fatalf("send after HealAll errored: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("sender still stalled after HealAll")
	}
	if msg, ok := recvOne(got, time.Second); !ok || string(msg) != "m" {
		t.Fatalf("frame after HealAll = (%q, %v), want (m, true)", msg, ok)
	}
}

// TestCorruptionDeterministic: corruption mutates frames (p=1 flips a bit
// in every frame), the original buffer is never written, and the same seed
// reproduces the same mutations — the replay-from-seed property the chaos
// harness depends on.
func TestCorruptionDeterministic(t *testing.T) {
	run := func(seed int64) [][]byte {
		inj := NewInjector(seed)
		inj.Corrupt("mem://a", "mem://b", 1)
		var out [][]byte
		for i := 0; i < 8; i++ {
			orig := []byte{0xAA, 0xBB, 0xCC, 0xDD}
			mutated := inj.mutate("mem://a", "mem://b", orig)
			if !bytes.Equal(orig, []byte{0xAA, 0xBB, 0xCC, 0xDD}) {
				t.Fatal("mutate wrote into the sender's buffer")
			}
			if bytes.Equal(mutated, orig) {
				t.Fatal("p=1 corruption left a frame untouched")
			}
			out = append(out, mutated)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("same seed diverged at frame %d: %x vs %x", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if !bytes.Equal(a[i], c[i]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical mutation streams")
	}
}

// TestTruncateShortens: p=1 truncation cuts frames short
// deterministically per seed.
func TestTruncateShortens(t *testing.T) {
	inj := NewInjector(7)
	inj.Truncate("mem://a", "mem://b", 1)
	shortened := false
	for i := 0; i < 16; i++ {
		msg := inj.mutate("mem://a", "mem://b", []byte("0123456789"))
		if len(msg) > 10 {
			t.Fatal("truncation grew a frame")
		}
		if len(msg) < 10 {
			shortened = true
		}
	}
	if !shortened {
		t.Error("p=1 truncation never shortened a frame")
	}
}

// TestRunScheduleOrderAndStop: events fire in At order regardless of input
// order, and stop cancels the remainder.
func TestRunScheduleOrderAndStop(t *testing.T) {
	inj := NewInjector(1)
	var fired []string
	mark := func(name string) func(*Injector) {
		return func(*Injector) { fired = append(fired, name) }
	}
	inj.RunSchedule(nil, []Event{
		{At: 20 * time.Millisecond, Name: "second", Do: mark("second")},
		{At: 0, Name: "first", Do: mark("first")},
	})
	if len(fired) != 2 || fired[0] != "first" || fired[1] != "second" {
		t.Fatalf("events fired as %v, want [first second]", fired)
	}

	stop := make(chan struct{})
	close(stop)
	fired = nil
	inj.RunSchedule(stop, []Event{
		{At: time.Hour, Name: "never", Do: mark("never")},
	})
	if len(fired) != 0 {
		t.Fatalf("stopped schedule still fired %v", fired)
	}
}
