// Package ctxwait provides the one shared shape for abandoning a blocking
// drain when a context ends, used by the actor mailbox and the remoting
// call sequencer.
package ctxwait

import "context"

// Drain runs wait (a blocking drain with no result) and returns nil when
// it finishes, or ctx.Err() when ctx ends first — in which case wait keeps
// running in the background until its own completion.
func Drain(ctx context.Context, wait func()) error {
	if ctx == nil || ctx.Done() == nil {
		wait()
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	done := make(chan struct{})
	go func() {
		wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
