package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// TestGeneratedInternBackrefs: two occurrences of the same generated struct
// in one message make the second occurrence use name back-references; the
// generated and reflective encoders must still produce identical bytes.
func TestGeneratedInternBackrefs(t *testing.T) {
	gen := BinFmt{}
	refl := BinFmt{DisableGenerated: true}
	msg := []any{
		&fuzzMsg{S: "first", I: 1},
		&fuzzMsg{S: "second", I: 2},
		fuzzMsg{S: "third (by value)", I: 3},
	}
	gb, err := gen.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := refl.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, rb) {
		t.Fatalf("repeated-struct bytes differ:\n generated: %x\nreflective: %x", gb, rb)
	}
	// The second and third occurrences must actually be smaller than the
	// first (back-references replacing literal names), or interning broke.
	single, err := gen.Marshal([]any{&fuzzMsg{S: "first", I: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(gb) >= 3*len(single) {
		t.Errorf("no interning win across occurrences: 3 structs = %d B, 1 struct = %d B", len(gb), len(single))
	}
	gv, err := gen.Unmarshal(gb)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := refl.Unmarshal(gb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gv, rv) {
		t.Fatalf("decoded values differ:\n generated: %#v\nreflective: %#v", gv, rv)
	}
}

// TestGeneratedInsideReflective: a generated struct nested in a map (which
// only the reflective encoder walks) still takes the generated fast path
// for the inner value, byte-compatibly.
func TestGeneratedInsideReflective(t *testing.T) {
	gen := BinFmt{}
	refl := BinFmt{DisableGenerated: true}
	msg := map[string]any{
		"inner": &fuzzMsg{S: "nested", Vs: []any{int(1)}},
		"plain": int(7),
	}
	gb, err := gen.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := refl.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, rb) {
		t.Fatalf("nested bytes differ:\n generated: %x\nreflective: %x", gb, rb)
	}
	gv, err := gen.Unmarshal(gb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gv, mustUnmarshal(t, refl, gb)) {
		t.Fatalf("nested decode mismatch: %#v", gv)
	}
}

// TestGeneratedNilPointer: a nil *T with a generated codec encodes as nil,
// exactly like the reflective path.
func TestGeneratedNilPointer(t *testing.T) {
	gen := BinFmt{}
	refl := BinFmt{DisableGenerated: true}
	var p *fuzzMsg
	gb, err := gen.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := refl.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, rb) {
		t.Fatalf("nil pointer bytes differ: %x vs %x", gb, rb)
	}
	v, err := gen.Unmarshal(gb)
	if err != nil || v != nil {
		t.Fatalf("nil pointer decoded to %#v, %v", v, err)
	}
}

// TestEncoderReuse: a pooled encoder's buffer and intern table reset fully
// between messages.
func TestEncoderReuse(t *testing.T) {
	want, err := BinFmt{}.Marshal(&fuzzMsg{S: "reuse"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e := NewEncoder()
		if err := e.Encode(&fuzzMsg{S: "reuse"}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(e.Bytes(), want) {
			t.Fatalf("iteration %d: pooled encoder produced different bytes", i)
		}
		e.Release()
	}
}

// TestUnknownFieldSkipped: a message carrying a field the receiver dropped
// decodes cleanly on both paths (schema evolution).
func TestUnknownFieldSkipped(t *testing.T) {
	// Hand-build a fuzzMsg body with an extra unknown field by writing
	// through the Encoder surface directly.
	e := NewEncoder()
	// tPtrStruct tag then body: name, count=2, one real field, one unknown.
	e.e.writeByte(tPtrStruct)
	e.BeginStruct("wire.fuzzMsg", 2)
	e.FieldName("S")
	e.String("kept")
	e.FieldName("Gone")
	e.Int(99)
	data := append([]byte(nil), e.Bytes()...)
	e.Release()

	for _, codec := range []Codec{BinFmt{}, BinFmt{DisableGenerated: true}} {
		v, err := codec.Unmarshal(data)
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		msg, ok := v.(*fuzzMsg)
		if !ok {
			t.Fatalf("decoded %T", v)
		}
		if msg.S != "kept" {
			t.Errorf("known field lost: %#v", msg)
		}
	}
}

func mustUnmarshal(t *testing.T, c Codec, data []byte) any {
	t.Helper()
	v, err := c.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRawFraming: the unframed header surfaces used by the remoting
// compact envelope round-trip and interoperate with tagged values in the
// same buffer.
func TestRawFraming(t *testing.T) {
	e := NewEncoder()
	defer e.Release()
	e.RawByte(0xBC)
	e.RawUvarint(300)
	e.RawVarint(-42)
	e.AnySlice([]any{int32(7), "x"})
	if err := e.Err(); err != nil {
		t.Fatal(err)
	}
	d := NewDecoder(e.Bytes())
	defer d.Release()
	if b := d.RawByte(); b != 0xBC {
		t.Errorf("RawByte = 0x%02x", b)
	}
	if u := d.RawUvarint(); u != 300 {
		t.Errorf("RawUvarint = %d", u)
	}
	if i := d.RawVarint(); i != -42 {
		t.Errorf("RawVarint = %d", i)
	}
	args := d.AnySlice()
	if d.Err() != nil || len(args) != 2 || args[0] != int32(7) || args[1] != "x" {
		t.Errorf("args = %#v, err = %v", args, d.Err())
	}
	if d.Rest() != 0 {
		t.Errorf("rest = %d", d.Rest())
	}

	// Truncated raw reads fail sticky instead of panicking.
	d2 := NewDecoder(nil)
	defer d2.Release()
	if d2.RawByte() != 0 || d2.Err() == nil {
		t.Error("RawByte on empty input did not fail")
	}
	d3 := NewDecoder([]byte{0x80}) // unterminated uvarint
	defer d3.Release()
	if d3.RawUvarint() != 0 || d3.Err() == nil {
		t.Error("RawUvarint on truncated input did not fail")
	}
}
