package wire

import (
	"bytes"
	"reflect"
	"testing"
)

// TestBorrowThreshold: []byte values at or above BorrowMin alias the input
// frame under UnmarshalShared; smaller ones are copied (so small frames
// recycle immediately), and the borrowed flag reports which happened.
func TestBorrowThreshold(t *testing.T) {
	bf := BinFmt{}
	big := bytes.Repeat([]byte{0xAB}, BorrowMin)
	small := []byte("tiny")

	for _, tc := range []struct {
		name   string
		val    []byte
		borrow bool
	}{
		{"large payload borrows", big, true},
		{"small payload copies", small, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			data, err := bf.Marshal(tc.val)
			if err != nil {
				t.Fatal(err)
			}
			v, borrowed, err := bf.UnmarshalShared(data)
			if err != nil {
				t.Fatal(err)
			}
			if borrowed != tc.borrow {
				t.Fatalf("borrowed = %v, want %v", borrowed, tc.borrow)
			}
			got, ok := v.([]byte)
			if !ok || !bytes.Equal(got, tc.val) {
				t.Fatalf("decoded %T %v, want %v", v, v, tc.val)
			}
			// Mutating the frame must show through a borrowed view and
			// must not show through a copied one.
			data[len(data)-1] ^= 0xFF
			changed := !bytes.Equal(got, tc.val)
			if changed != tc.borrow {
				t.Errorf("frame aliasing = %v, want %v", changed, tc.borrow)
			}
		})
	}
}

// TestUnmarshalSharedMatchesUnmarshal: the borrow path must be
// byte-identical to the copy path for every seed the differential fuzzer
// starts from — same accept/reject, same values.
func TestUnmarshalSharedMatchesUnmarshal(t *testing.T) {
	bf := BinFmt{}
	vals := []any{
		nil, true, int(5), "seed", []byte{0xff, 0x00},
		bytes.Repeat([]byte{7}, BorrowMin+100),
		[]any{int(1), bytes.Repeat([]byte{9}, BorrowMin), "mix"},
		map[string]any{"k": bytes.Repeat([]byte{3}, 2*BorrowMin)},
		fuzzMsg{S: "struct", By: bytes.Repeat([]byte{5}, BorrowMin), I: 7},
	}
	for _, v := range vals {
		data, err := bf.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		plain, err1 := bf.Unmarshal(data)
		shared, _, err2 := bf.UnmarshalShared(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%#v: accept/reject differ: %v vs %v", v, err1, err2)
		}
		if !reflect.DeepEqual(plain, shared) {
			t.Fatalf("%#v: borrow path decoded %#v, copy path %#v", v, shared, plain)
		}
	}
}

// FuzzBorrowIdentity extends the differential fuzzers to the zero-copy
// path: for arbitrary input bytes, UnmarshalShared must agree with
// Unmarshal on acceptance and value, borrowed or not.
func FuzzBorrowIdentity(f *testing.F) {
	bf := BinFmt{}
	for _, v := range []any{
		[]byte("small"),
		bytes.Repeat([]byte{0x42}, BorrowMin+1),
		[]any{bytes.Repeat([]byte{1}, BorrowMin), "s", int(3)},
		fuzzMsg{By: bytes.Repeat([]byte{2}, BorrowMin), S: "x"},
	} {
		data, err := bf.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		plain, err1 := bf.Unmarshal(data)
		shared, _, err2 := bf.UnmarshalShared(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("accept/reject differ: %v vs %v", err1, err2)
		}
		if err1 != nil {
			return
		}
		if !reflect.DeepEqual(plain, shared) {
			t.Fatalf("borrow path decoded %#v, copy path %#v", shared, plain)
		}
	})
}

// TestDecoderByteSliceBorrow covers the streaming Decoder used by
// generated codecs: with borrow enabled, ByteSlice hands out a view of the
// input at or past the threshold and flags it through Borrowed, and
// Release resets the flag for the next pooled use.
func TestDecoderByteSliceBorrow(t *testing.T) {
	e := NewEncoder()
	big := bytes.Repeat([]byte{0x5A}, BorrowMin)
	e.ByteSlice(big)
	e.ByteSlice([]byte("small"))
	data := append([]byte(nil), e.Bytes()...)
	e.Release()

	d := NewDecoder(data)
	d.SetBorrow(true)
	gotBig := d.ByteSlice()
	if !d.Borrowed() {
		t.Error("large ByteSlice did not set Borrowed")
	}
	gotSmall := d.ByteSlice()
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBig, big) || string(gotSmall) != "small" {
		t.Fatalf("decoded %d bytes + %q", len(gotBig), gotSmall)
	}
	// Mutate a byte inside the big value's payload (the small value owns
	// the last 7 bytes: tag, length, "small") to prove aliasing.
	data[len(data)-10] ^= 0xFF
	if bytes.Equal(gotBig, big) {
		t.Error("large ByteSlice did not alias the input")
	}
	if string(gotSmall) != "small" {
		t.Error("small ByteSlice aliased the input; must copy below BorrowMin")
	}
	d.Release()

	// A released (pooled) decoder must come back with the flag cleared.
	d2 := NewDecoder([]byte{tNil})
	if d2.Borrowed() {
		t.Error("pooled decoder started with Borrowed set")
	}
	d2.Release()

	// Without SetBorrow, nothing aliases regardless of size.
	d3 := NewDecoder(data)
	gotCopy := d3.ByteSlice()
	d3.Skip()
	if d3.Err() != nil {
		t.Fatal(d3.Err())
	}
	if d3.Borrowed() {
		t.Error("Borrowed set without SetBorrow")
	}
	snap := append([]byte(nil), gotCopy...)
	data[len(data)-10] ^= 0xFF // restore the original bytes
	if !bytes.Equal(gotCopy, snap) {
		t.Error("copy-mode ByteSlice aliased the input")
	}
}
