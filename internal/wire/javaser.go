package wire

import (
	"encoding/binary"
	"fmt"
)

// JavaSer is the analogue of Java object serialisation as used by RMI in the
// paper's baseline. Compared with BinFmt it is deliberately heavier:
//
//   - every message starts with a stream magic and protocol version,
//     mirroring java.io.ObjectOutputStream's 4-byte header;
//   - every struct occurrence carries a full class descriptor (type name
//     plus all field names) — there is no per-message interning;
//   - numeric array fast paths carry a Java-style array class name
//     ("[I", "[D", ...);
//   - the whole payload is wrapped in block-data segments of at most
//     blockSize bytes, each with a header, mirroring the TC_BLOCKDATA
//     chunking of the Java stream protocol.
//
// These overheads are what make the RMI stack's messages measurably larger
// than the remoting stack's in experiment E1/A3.
type JavaSer struct{}

// Name implements Codec.
func (JavaSer) Name() string { return "javaser" }

var jserMagic = [4]byte{0xAC, 0xED, 0x00, 0x05}

// blockSize is the maximum block-data segment length (1 KiB, like the Java
// serialisation buffer).
const blockSize = 1024

// Marshal implements Codec.
func (JavaSer) Marshal(v any) ([]byte, error) {
	e := &binEncoder{opts: binOpts{classDescriptors: true, arrayClassNames: true}}
	if err := e.encode(v); err != nil {
		return nil, err
	}
	body := e.buf
	out := make([]byte, 0, len(body)+len(body)/blockSize*5+16)
	out = append(out, jserMagic[:]...)
	for off := 0; off < len(body); off += blockSize {
		end := off + blockSize
		if end > len(body) {
			end = len(body)
		}
		seg := body[off:end]
		if len(seg) < 256 {
			// Short block: TC_BLOCKDATA, 1-byte length.
			out = append(out, 0x77, byte(len(seg)))
		} else {
			// Long block: TC_BLOCKDATALONG, 4-byte length.
			out = append(out, 0x7A)
			out = binary.BigEndian.AppendUint32(out, uint32(len(seg)))
		}
		out = append(out, seg...)
	}
	if len(body) == 0 {
		out = append(out, 0x77, 0)
	}
	return out, nil
}

// Unmarshal implements Codec.
func (JavaSer) Unmarshal(data []byte) (any, error) {
	if len(data) < 4 || data[0] != jserMagic[0] || data[1] != jserMagic[1] ||
		data[2] != jserMagic[2] || data[3] != jserMagic[3] {
		return nil, fmt.Errorf("wire/javaser: bad stream magic")
	}
	pos := 4
	var body []byte
	for pos < len(data) {
		switch data[pos] {
		case 0x77:
			if pos+2 > len(data) {
				return nil, fmt.Errorf("wire/javaser: truncated block header at %d", pos)
			}
			n := int(data[pos+1])
			pos += 2
			if pos+n > len(data) {
				return nil, fmt.Errorf("wire/javaser: truncated block of length %d at %d", n, pos)
			}
			body = append(body, data[pos:pos+n]...)
			pos += n
		case 0x7A:
			if pos+5 > len(data) {
				return nil, fmt.Errorf("wire/javaser: truncated long block header at %d", pos)
			}
			n := int(binary.BigEndian.Uint32(data[pos+1:]))
			pos += 5
			if pos+n > len(data) {
				return nil, fmt.Errorf("wire/javaser: truncated long block of length %d at %d", n, pos)
			}
			body = append(body, data[pos:pos+n]...)
			pos += n
		default:
			return nil, fmt.Errorf("wire/javaser: unexpected block tag 0x%02x at %d", data[pos], pos)
		}
	}
	d := &binDecoder{data: body, opts: binOpts{classDescriptors: true, arrayClassNames: true}}
	if len(body) == 0 {
		return nil, fmt.Errorf("wire/javaser: empty stream body")
	}
	v, err := d.decode()
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.data) {
		return nil, fmt.Errorf("wire/javaser: %d trailing bytes after value", len(d.data)-d.pos)
	}
	return v, nil
}
