// Generated-codec support: the zero-reflection fast path of the binfmt
// codec.
//
// The reflective BinFmt encoder walks struct values with package reflect and
// boxes every field; that cost is paid on every remote call, because the
// remoting request/response envelopes are structs. parcgen (the paper's
// preprocessor) therefore emits per-type MarshalWire/UnmarshalWire methods
// for types annotated //parc:wire, and registers them here. BinFmt consults
// this registry before falling back to reflection; both paths produce
// byte-identical wire encodings, so generated and reflective peers
// interoperate freely (the fuzz tests in this package assert the identity).
//
// Encoder and Decoder are the streaming surfaces handed to generated code.
// Both are pooled: steady-state encodes and decodes reuse their buffers and
// interning tables, which is what brings the hot call path down to
// near-zero allocations.
package wire

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"sync/atomic"
)

// Marshaler is implemented (on the pointer receiver) by types with a
// parcgen-generated binfmt codec. MarshalWire writes the struct BODY — the
// interned type name, the field count and the name/value pairs — exactly as
// the reflective encoder would; the surrounding tag byte (tStruct or
// tPtrStruct) is written by the codec fast path.
type Marshaler interface {
	MarshalWire(*Encoder) error
}

// Unmarshaler is the decode half of a generated codec. UnmarshalWire is
// called after the type name has been consumed (the registry needs it to
// find the codec) and reads the field count and the name/value pairs.
type Unmarshaler interface {
	UnmarshalWire(*Decoder) error
}

// genEnc is the encode entry for one concrete type (T and *T register
// separate entries so the fast path needs a single map lookup to know both
// the codec and the tag byte).
type genEnc struct {
	name  string
	tag   byte
	isNil func(any) bool // non-nil only for pointer entries
	enc   func(*Encoder, any) error
}

// genDec is the decode entry for one wire name.
type genDec struct {
	decVal func(*Decoder) (any, error) // returns T
	decPtr func(*Decoder) (any, error) // returns *T
}

// genTables is the immutable snapshot swapped atomically on registration,
// so the hot path reads without locking.
type genTables struct {
	byType map[reflect.Type]*genEnc
	byName map[string]*genDec
}

var (
	genMu  sync.Mutex
	genTab atomic.Pointer[genTables]
)

func init() {
	genTab.Store(&genTables{
		byType: map[reflect.Type]*genEnc{},
		byName: map[string]*genDec{},
	})
}

// generatedFor returns the encode entry for a concrete type.
func generatedFor(t reflect.Type) *genEnc {
	return genTab.Load().byType[t]
}

// generatedName returns the decode entry for a wire name.
func generatedName(name string) *genDec {
	return genTab.Load().byName[name]
}

// generatedNameBytes is generatedName without the string allocation (the
// compiler optimises the map index with an in-place conversion).
func generatedNameBytes(name []byte) *genDec {
	return genTab.Load().byName[string(name)]
}

// RegisterGeneratedCodec registers the parcgen-generated codec of T under
// name. *T must implement Marshaler and Unmarshaler (parcgen emits both).
// The struct type is also registered reflectively under the same name, so
// peers without the generated code still decode it. Registering the same
// type twice is a no-op; rebinding a name to a different type panics (in
// RegisterName, matching encoding/gob).
func RegisterGeneratedCodec[T any](name string) {
	var zero T
	if _, ok := any(&zero).(Marshaler); !ok {
		panic(fmt.Sprintf("wire: RegisterGeneratedCodec(%q): *%T does not implement Marshaler", name, zero))
	}
	if _, ok := any(&zero).(Unmarshaler); !ok {
		panic(fmt.Sprintf("wire: RegisterGeneratedCodec(%q): *%T does not implement Unmarshaler", name, zero))
	}
	RegisterName(name, zero)

	valEntry := &genEnc{
		name: name,
		tag:  tStruct,
		enc: func(e *Encoder, v any) error {
			x := v.(T)
			return any(&x).(Marshaler).MarshalWire(e)
		},
	}
	ptrEntry := &genEnc{
		name:  name,
		tag:   tPtrStruct,
		isNil: func(v any) bool { p, ok := v.(*T); return ok && p == nil },
		enc: func(e *Encoder, v any) error {
			return any(v.(*T)).(Marshaler).MarshalWire(e)
		},
	}
	dec := &genDec{
		decPtr: func(d *Decoder) (any, error) {
			x := new(T)
			if err := any(x).(Unmarshaler).UnmarshalWire(d); err != nil {
				return nil, err
			}
			return x, nil
		},
		decVal: func(d *Decoder) (any, error) {
			x := new(T)
			if err := any(x).(Unmarshaler).UnmarshalWire(d); err != nil {
				return nil, err
			}
			return *x, nil
		},
	}

	genMu.Lock()
	defer genMu.Unlock()
	old := genTab.Load()
	next := &genTables{
		byType: make(map[reflect.Type]*genEnc, len(old.byType)+2),
		byName: make(map[string]*genDec, len(old.byName)+1),
	}
	for k, v := range old.byType {
		next.byType[k] = v
	}
	for k, v := range old.byName {
		next.byName[k] = v
	}
	next.byType[reflect.TypeOf(zero)] = valEntry
	next.byType[reflect.TypeOf(&zero)] = ptrEntry
	next.byName[name] = dec
	genTab.Store(next)
}

// HasGeneratedCodec reports whether name resolves to a generated codec.
func HasGeneratedCodec(name string) bool { return generatedName(name) != nil }

// ---------------------------------------------------------------- Encoder

// retainCap bounds the buffer capacity a pooled Encoder keeps between uses,
// so a one-off large message does not pin its buffer in the pool.
const retainCap = 64 << 10

// Encoder is the streaming encode surface for the binfmt dialect. It is
// handed to generated MarshalWire methods and is also the pooled fast path
// the remoting channel encodes request/response envelopes through. Errors
// are sticky: the scalar writers cannot fail, Value records the first
// failure, and Err reports it.
type Encoder struct {
	e   binEncoder
	err error
}

var encPool = sync.Pool{New: func() any { return new(Encoder) }}

// NewEncoder returns a pooled encoder configured for the binfmt dialect
// with the generated-codec fast path enabled. Call Release to return it.
func NewEncoder() *Encoder {
	e := encPool.Get().(*Encoder)
	e.e.opts = binOpts{internStrings: true, generated: true}
	e.e.pub = e
	return e
}

// Release resets the encoder and returns it to the pool. The byte slice
// returned by Bytes is invalidated.
func (e *Encoder) Release() {
	if cap(e.e.buf) > retainCap {
		e.e.buf = nil
	} else {
		e.e.buf = e.e.buf[:0]
	}
	e.e.internReset()
	e.err = nil
	e.e.pub = nil
	encPool.Put(e)
}

// SetGenerated toggles the generated-codec fast path (on by default); the
// codec benchmark turns it off to measure the reflective encoder over the
// same pooled buffers.
func (e *Encoder) SetGenerated(on bool) { e.e.opts.generated = on }

// SetGenerated toggles the generated-codec fast path (on by default).
func (d *Decoder) SetGenerated(on bool) { d.d.opts.generated = on }

// BorrowMin is the smallest []byte payload borrow mode returns as a view
// into the input instead of a copy. Below it the memcpy is cheaper than
// pinning the receive frame for the value's lifetime, so small payloads
// always copy and their frames recycle immediately.
const BorrowMin = 1 << 10

// SetBorrow toggles zero-copy []byte borrowing (off by default): when on,
// byte payloads of BorrowMin bytes or more decode as views into the input
// buffer rather than copies. The ownership handoff is explicit — after a
// decode during which Borrowed reports true, the input buffer belongs to
// whoever holds the decoded values, and must not be recycled or rewritten
// until they are unreachable. Applies to every []byte surface that funnels
// through the decoder: ByteSlice (generated codecs), Value/Decode and
// AnySlice (reflective and envelope paths).
func (d *Decoder) SetBorrow(on bool) { d.d.opts.borrow = on }

// Borrowed reports whether any []byte decoded so far aliases the input
// buffer. False means the input can be released immediately, exactly as
// without borrow mode.
func (d *Decoder) Borrowed() bool { return d.d.borrowed }

// Bytes returns the encoded message. The slice aliases the encoder's
// internal buffer: it is valid until the next Reset or Release.
func (e *Encoder) Bytes() []byte { return e.e.buf }

// Reset drops buffered output and clears the sticky error and the interning
// table, keeping the allocated capacity.
func (e *Encoder) Reset() {
	e.e.buf = e.e.buf[:0]
	e.e.internReset()
	e.err = nil
}

// Err returns the first error recorded by Value or a nested encode.
func (e *Encoder) Err() error { return e.err }

// Encode appends the full tagged encoding of v (the same bytes
// BinFmt.Marshal produces).
func (e *Encoder) Encode(v any) error {
	if e.err != nil {
		return e.err
	}
	if err := e.e.encode(v); err != nil {
		e.err = err
	}
	return e.err
}

// BeginStruct writes the struct-body header: the interned wire name and the
// field count. Generated MarshalWire methods call it first.
func (e *Encoder) BeginStruct(name string, fields int) {
	e.e.writeName(name)
	e.e.writeUvarint(uint64(fields))
}

// FieldName writes one interned field name.
func (e *Encoder) FieldName(name string) { e.e.writeName(name) }

// Nil writes the nil value.
func (e *Encoder) Nil() { e.e.writeByte(tNil) }

// Bool writes a tagged bool.
func (e *Encoder) Bool(v bool) {
	if v {
		e.e.writeByte(tTrue)
	} else {
		e.e.writeByte(tFalse)
	}
}

// Int writes a tagged int.
func (e *Encoder) Int(v int) {
	e.e.writeByte(tInt)
	e.e.writeVarint(int64(v))
}

// Int8 writes a tagged int8.
func (e *Encoder) Int8(v int8) {
	e.e.writeByte(tInt8)
	e.e.writeByte(byte(v))
}

// Int16 writes a tagged int16.
func (e *Encoder) Int16(v int16) {
	e.e.writeByte(tInt16)
	e.e.writeVarint(int64(v))
}

// Int32 writes a tagged int32.
func (e *Encoder) Int32(v int32) {
	e.e.writeByte(tInt32)
	e.e.writeVarint(int64(v))
}

// Int64 writes a tagged int64.
func (e *Encoder) Int64(v int64) {
	e.e.writeByte(tInt64)
	e.e.writeVarint(v)
}

// Uint writes a tagged uint.
func (e *Encoder) Uint(v uint) {
	e.e.writeByte(tUint)
	e.e.writeUvarint(uint64(v))
}

// Uint8 writes a tagged uint8.
func (e *Encoder) Uint8(v uint8) {
	e.e.writeByte(tUint8)
	e.e.writeByte(v)
}

// Uint16 writes a tagged uint16.
func (e *Encoder) Uint16(v uint16) {
	e.e.writeByte(tUint16)
	e.e.writeUvarint(uint64(v))
}

// Uint32 writes a tagged uint32.
func (e *Encoder) Uint32(v uint32) {
	e.e.writeByte(tUint32)
	e.e.writeUvarint(uint64(v))
}

// Uint64 writes a tagged uint64.
func (e *Encoder) Uint64(v uint64) {
	e.e.writeByte(tUint64)
	e.e.writeUvarint(v)
}

// Float32 writes a tagged float32.
func (e *Encoder) Float32(v float32) {
	e.e.writeByte(tFloat32)
	e.e.writeFixed32(math.Float32bits(v))
}

// Float64 writes a tagged float64.
func (e *Encoder) Float64(v float64) {
	e.e.writeByte(tFloat64)
	e.e.writeFixed64(math.Float64bits(v))
}

// String writes a tagged string.
func (e *Encoder) String(v string) {
	e.e.writeByte(tString)
	e.e.writeString(v)
}

// ByteSlice writes a tagged byte slice.
func (e *Encoder) ByteSlice(v []byte) {
	e.e.writeByte(tBytes)
	e.e.writeUvarint(uint64(len(v)))
	e.e.writeBytes(v)
}

// IntSlice writes a fast-path []int.
func (e *Encoder) IntSlice(v []int) {
	e.e.writeByte(tIntSlice)
	e.e.maybeArrayClass("[J")
	e.e.writeUvarint(uint64(len(v)))
	for _, n := range v {
		e.e.writeFixed64(uint64(n))
	}
}

// Int32Slice writes a fast-path []int32.
func (e *Encoder) Int32Slice(v []int32) {
	e.e.writeByte(tInt32Slice)
	e.e.maybeArrayClass("[I")
	e.e.writeUvarint(uint64(len(v)))
	for _, n := range v {
		e.e.writeFixed32(uint32(n))
	}
}

// Int64Slice writes a fast-path []int64.
func (e *Encoder) Int64Slice(v []int64) {
	e.e.writeByte(tInt64Slice)
	e.e.maybeArrayClass("[J")
	e.e.writeUvarint(uint64(len(v)))
	for _, n := range v {
		e.e.writeFixed64(uint64(n))
	}
}

// Float32Slice writes a fast-path []float32.
func (e *Encoder) Float32Slice(v []float32) {
	e.e.writeByte(tFloat32Slice)
	e.e.maybeArrayClass("[F")
	e.e.writeUvarint(uint64(len(v)))
	for _, f := range v {
		e.e.writeFixed32(math.Float32bits(f))
	}
}

// Float64Slice writes a fast-path []float64.
func (e *Encoder) Float64Slice(v []float64) {
	e.e.writeByte(tFloat64Slice)
	e.e.maybeArrayClass("[D")
	e.e.writeUvarint(uint64(len(v)))
	for _, f := range v {
		e.e.writeFixed64(math.Float64bits(f))
	}
}

// StringSlice writes a fast-path []string.
func (e *Encoder) StringSlice(v []string) {
	e.e.writeByte(tStringSlice)
	e.e.maybeArrayClass("[Ljava.lang.String;")
	e.e.writeUvarint(uint64(len(v)))
	for _, s := range v {
		e.e.writeString(s)
	}
}

// BoolSlice writes a fast-path []bool.
func (e *Encoder) BoolSlice(v []bool) {
	e.e.writeByte(tBoolSlice)
	e.e.maybeArrayClass("[Z")
	e.e.writeUvarint(uint64(len(v)))
	for _, b := range v {
		if b {
			e.e.writeByte(1)
		} else {
			e.e.writeByte(0)
		}
	}
}

// AnySlice writes a heterogeneous slice; element failures are sticky.
func (e *Encoder) AnySlice(v []any) {
	e.e.writeByte(tAnySlice)
	e.e.writeUvarint(uint64(len(v)))
	for _, el := range v {
		if e.err != nil {
			return
		}
		if err := e.e.encode(el); err != nil {
			e.err = err
			return
		}
	}
}

// RawByte appends one unframed byte. It exists for hand-rolled envelope
// framing layered above the tagged value model (the remoting compact call
// envelope writes a marker byte and header varints before its tagged
// payload); ordinary codecs never need it.
func (e *Encoder) RawByte(b byte) { e.e.writeByte(b) }

// RawUvarint appends an unframed unsigned varint (no tag byte). See RawByte.
func (e *Encoder) RawUvarint(u uint64) { e.e.writeUvarint(u) }

// RawVarint appends an unframed signed varint (no tag byte). See RawByte.
func (e *Encoder) RawVarint(i int64) { e.e.writeVarint(i) }

// Value writes any wire-model value (the generic fallback for field types
// without a dedicated writer); failures are sticky.
func (e *Encoder) Value(v any) {
	if e.err != nil {
		return
	}
	if err := e.e.encode(v); err != nil {
		e.err = err
	}
}

// ---------------------------------------------------------------- Decoder

// Decoder is the streaming decode surface for the binfmt dialect, handed to
// generated UnmarshalWire methods. Errors are sticky: the typed readers
// return zero values once an error is recorded, and Err reports the first
// failure at the end.
type Decoder struct {
	d   binDecoder
	err error
}

var decPool = sync.Pool{New: func() any { return new(Decoder) }}

// NewDecoder returns a pooled decoder over data, configured for the binfmt
// dialect with the generated-codec fast path enabled. data is not copied;
// it must stay untouched until Release.
func NewDecoder(data []byte) *Decoder {
	d := decPool.Get().(*Decoder)
	d.d.data = data
	d.d.pos = 0
	d.d.opts = binOpts{internStrings: true, generated: true}
	d.d.pub = d
	return d
}

// Release resets the decoder and returns it to the pool.
func (d *Decoder) Release() {
	d.d.data = nil
	d.d.pos = 0
	d.d.idents = d.d.idents[:0]
	d.d.pub = nil
	d.d.borrowed = false
	d.err = nil
	decPool.Put(d)
}

// Err returns the first error recorded by a reader.
func (d *Decoder) Err() error { return d.err }

// Fail records err as the sticky error (first one wins). Generated code
// uses it when a fallback conversion fails.
func (d *Decoder) Fail(err error) {
	if d.err == nil && err != nil {
		d.err = err
	}
}

// Rest reports how many bytes remain undecoded.
func (d *Decoder) Rest() int { return len(d.d.data) - d.d.pos }

// Decode reads one full tagged value (the same decoding BinFmt.Unmarshal
// performs).
func (d *Decoder) Decode() (any, error) {
	if d.err != nil {
		return nil, d.err
	}
	v, err := d.d.decode()
	if err != nil {
		d.err = err
	}
	return v, err
}

// BeginStruct reads the struct-body field count. Generated UnmarshalWire
// methods call it first (the wire name was already consumed by the codec
// fast path).
func (d *Decoder) BeginStruct() int {
	if d.err != nil {
		return 0
	}
	n, err := d.d.readUvarint()
	if err != nil {
		d.Fail(err)
		return 0
	}
	// A field count cannot exceed half the remaining bytes (every field
	// costs at least a 1-byte name and a 1-byte value) — the same guard the
	// reflective decoder applies, so both paths accept and reject the same
	// inputs.
	if err := d.d.checkCount(n, 2); err != nil {
		d.Fail(err)
		return 0
	}
	return int(n)
}

// FieldName reads one interned field name.
func (d *Decoder) FieldName() string {
	if d.err != nil {
		return ""
	}
	s, err := d.d.readName()
	if err != nil {
		d.Fail(err)
		return ""
	}
	return s
}

// FieldNameRaw reads one interned field name as a zero-copy view into the
// input, valid until Release. Generated codecs switch on it with
// switch string(d.FieldNameRaw()) { ... }, which the compiler compiles
// without allocating.
func (d *Decoder) FieldNameRaw() []byte {
	if d.err != nil {
		return nil
	}
	b, err := d.d.readNameBytes()
	if err != nil {
		d.Fail(err)
		return nil
	}
	return b
}

// RawByte reads one unframed byte, mirroring Encoder.RawByte.
func (d *Decoder) RawByte() byte {
	if d.err != nil {
		return 0
	}
	b, err := d.d.readByte()
	if err != nil {
		d.Fail(err)
		return 0
	}
	return b
}

// RawUvarint reads an unframed unsigned varint, mirroring Encoder.RawUvarint.
func (d *Decoder) RawUvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, err := d.d.readUvarint()
	if err != nil {
		d.Fail(err)
		return 0
	}
	return u
}

// RawVarint reads an unframed signed varint, mirroring Encoder.RawVarint.
func (d *Decoder) RawVarint() int64 {
	if d.err != nil {
		return 0
	}
	i, err := d.d.readVarint()
	if err != nil {
		d.Fail(err)
		return 0
	}
	return i
}

// Skip consumes and discards the next tagged value (unknown fields from a
// newer peer).
func (d *Decoder) Skip() {
	if d.err != nil {
		return
	}
	if _, err := d.d.decode(); err != nil {
		d.Fail(err)
	}
}

// Value reads any tagged value (the generic fallback for field types
// without a dedicated reader).
func (d *Decoder) Value() any {
	if d.err != nil {
		return nil
	}
	v, err := d.d.decode()
	if err != nil {
		d.Fail(err)
		return nil
	}
	return v
}

// number classes for the shared numeric reader.
const (
	numInt = iota + 1
	numUint
	numFloat
)

// number consumes the next value when its tag is numeric, returning the
// class and value. When the tag is not numeric it is un-read and ok is
// false, letting the caller fall back to the generic reader.
func (d *Decoder) number() (cls int, i int64, u uint64, f float64, ok bool) {
	if d.err != nil {
		return 0, 0, 0, 0, false
	}
	tag, err := d.d.readByte()
	if err != nil {
		d.Fail(err)
		return 0, 0, 0, 0, false
	}
	switch tag {
	case tInt8:
		b, err := d.d.readByte()
		if err != nil {
			d.Fail(err)
			return 0, 0, 0, 0, false
		}
		return numInt, int64(int8(b)), 0, 0, true
	case tInt16, tInt32, tInt64, tInt:
		v, err := d.d.readVarint()
		if err != nil {
			d.Fail(err)
			return 0, 0, 0, 0, false
		}
		return numInt, v, 0, 0, true
	case tUint8:
		b, err := d.d.readByte()
		if err != nil {
			d.Fail(err)
			return 0, 0, 0, 0, false
		}
		return numUint, 0, uint64(b), 0, true
	case tUint16, tUint32, tUint64, tUint:
		v, err := d.d.readUvarint()
		if err != nil {
			d.Fail(err)
			return 0, 0, 0, 0, false
		}
		return numUint, 0, v, 0, true
	case tFloat32:
		v, err := d.d.readFixed32()
		if err != nil {
			d.Fail(err)
			return 0, 0, 0, 0, false
		}
		return numFloat, 0, 0, float64(math.Float32frombits(v)), true
	case tFloat64:
		v, err := d.d.readFixed64()
		if err != nil {
			d.Fail(err)
			return 0, 0, 0, 0, false
		}
		return numFloat, 0, 0, math.Float64frombits(v), true
	}
	d.d.pos-- // un-read the tag for the generic fallback
	return 0, 0, 0, 0, false
}

// signed converts a numeric read to int64, range-checked against [min,max]
// (the Assign narrowing rules: overflow and fractional floats are
// ErrBadConversion failures).
func (d *Decoder) signed(min, max int64) int64 {
	cls, i, u, f, ok := d.number()
	if !ok {
		return assignAs[int64](d)
	}
	switch cls {
	case numUint:
		if u > math.MaxInt64 {
			d.Fail(badConversion(fmt.Sprintf("uint value %d", u), "int"))
			return 0
		}
		i = int64(u)
	case numFloat:
		i = int64(f)
		if float64(i) != f {
			d.Fail(badConversion(fmt.Sprintf("float value %v", f), "int"))
			return 0
		}
	}
	if i < min || i > max {
		d.Fail(badConversion(fmt.Sprintf("value %d", i), fmt.Sprintf("[%d,%d]", min, max)))
		return 0
	}
	return i
}

// unsigned converts a numeric read to uint64, range-checked against max.
func (d *Decoder) unsigned(max uint64) uint64 {
	cls, i, u, f, ok := d.number()
	if !ok {
		return assignAs[uint64](d)
	}
	switch cls {
	case numInt:
		if i < 0 {
			d.Fail(badConversion(fmt.Sprintf("negative value %d", i), "uint"))
			return 0
		}
		u = uint64(i)
	case numFloat:
		if f < 0 || float64(uint64(f)) != f {
			d.Fail(badConversion(fmt.Sprintf("float value %v", f), "uint"))
			return 0
		}
		u = uint64(f)
	}
	if u > max {
		d.Fail(badConversion(fmt.Sprintf("value %d", u), fmt.Sprintf("[0,%d]", max)))
		return 0
	}
	return u
}

// Bool reads a bool.
func (d *Decoder) Bool() bool {
	if d.err != nil {
		return false
	}
	tag, err := d.d.readByte()
	if err != nil {
		d.Fail(err)
		return false
	}
	switch tag {
	case tTrue:
		return true
	case tFalse:
		return false
	}
	d.d.pos--
	return assignAs[bool](d)
}

// Int reads an int (any numeric tag, Assign conversion rules).
func (d *Decoder) Int() int { return int(d.signed(math.MinInt, math.MaxInt)) }

// Int8 reads an int8.
func (d *Decoder) Int8() int8 { return int8(d.signed(math.MinInt8, math.MaxInt8)) }

// Int16 reads an int16.
func (d *Decoder) Int16() int16 { return int16(d.signed(math.MinInt16, math.MaxInt16)) }

// Int32 reads an int32.
func (d *Decoder) Int32() int32 { return int32(d.signed(math.MinInt32, math.MaxInt32)) }

// Int64 reads an int64.
func (d *Decoder) Int64() int64 { return d.signed(math.MinInt64, math.MaxInt64) }

// Uint reads a uint.
func (d *Decoder) Uint() uint { return uint(d.unsigned(math.MaxUint)) }

// Uint8 reads a uint8.
func (d *Decoder) Uint8() uint8 { return uint8(d.unsigned(math.MaxUint8)) }

// Uint16 reads a uint16.
func (d *Decoder) Uint16() uint16 { return uint16(d.unsigned(math.MaxUint16)) }

// Uint32 reads a uint32.
func (d *Decoder) Uint32() uint32 { return uint32(d.unsigned(math.MaxUint32)) }

// Uint64 reads a uint64.
func (d *Decoder) Uint64() uint64 { return d.unsigned(math.MaxUint64) }

// Float32 reads a float32.
func (d *Decoder) Float32() float32 { return float32(d.float()) }

// Float64 reads a float64.
func (d *Decoder) Float64() float64 { return d.float() }

func (d *Decoder) float() float64 {
	cls, i, u, f, ok := d.number()
	if !ok {
		return assignAs[float64](d)
	}
	switch cls {
	case numInt:
		return float64(i)
	case numUint:
		return float64(u)
	}
	return f
}

// String reads a string.
func (d *Decoder) String() string {
	if d.err != nil {
		return ""
	}
	tag, err := d.d.readByte()
	if err != nil {
		d.Fail(err)
		return ""
	}
	if tag == tString {
		s, err := d.d.readString()
		if err != nil {
			d.Fail(err)
			return ""
		}
		return s
	}
	d.d.pos--
	return assignAs[string](d)
}

// ByteSlice reads a []byte. The direct tBytes path skips the any-boxing of
// the generic reader and honours borrow mode (SetBorrow), which is how
// parcgen-generated codecs — whose []byte fields all decode through here —
// get zero-copy payloads without regeneration.
func (d *Decoder) ByteSlice() []byte {
	if d.err == nil && d.d.pos < len(d.d.data) && d.d.data[d.d.pos] == tBytes {
		d.d.pos++
		b, err := d.d.readBytesValue()
		if err != nil {
			d.Fail(err)
			return nil
		}
		return b
	}
	return typedSlice[[]byte](d)
}

// IntSlice reads a []int.
func (d *Decoder) IntSlice() []int { return typedSlice[[]int](d) }

// Int32Slice reads a []int32.
func (d *Decoder) Int32Slice() []int32 { return typedSlice[[]int32](d) }

// Int64Slice reads a []int64.
func (d *Decoder) Int64Slice() []int64 { return typedSlice[[]int64](d) }

// Float32Slice reads a []float32.
func (d *Decoder) Float32Slice() []float32 { return typedSlice[[]float32](d) }

// Float64Slice reads a []float64.
func (d *Decoder) Float64Slice() []float64 { return typedSlice[[]float64](d) }

// StringSlice reads a []string.
func (d *Decoder) StringSlice() []string { return typedSlice[[]string](d) }

// BoolSlice reads a []bool.
func (d *Decoder) BoolSlice() []bool { return typedSlice[[]bool](d) }

// AnySlice reads a []any. Unlike the other typed slice readers it decodes
// the slice directly — no detour through a boxed `any` — and draws the
// backing array from the args free list: the per-call argument slice is
// the one []any every RPC decodes, so the hot path recycles it via
// RecycleAnySlice instead of allocating per call. A caller that does not
// recycle simply lets the backing go to the garbage collector.
func (d *Decoder) AnySlice() []any {
	if d.err != nil {
		return nil
	}
	if d.d.pos >= len(d.d.data) || d.d.data[d.d.pos] != tAnySlice {
		// Nil, a foreign encoding, or a legacy shape: the slow conversion
		// path handles it exactly as before.
		return typedSlice[[]any](d)
	}
	d.d.pos++
	n, err := d.d.readUvarint()
	if err != nil {
		d.Fail(err)
		return nil
	}
	if err := d.d.checkCount(n, 1); err != nil {
		d.Fail(err)
		return nil
	}
	out := getAnySlice(int(n))
	for i := range out {
		v, err := d.d.decode()
		if err != nil {
			d.Fail(err)
			return nil
		}
		out[i] = v
	}
	return out
}

// anyFree is the free list behind AnySlice: a bounded LIFO of cleared
// backing arrays. A plain mutex-guarded slice rather than a sync.Pool —
// Put into a sync.Pool boxes the slice header (one allocation), which
// would hand back a third of what the pooling saves.
var anyFree struct {
	sync.Mutex
	list [][]any
}

// anyFreeMax bounds the free list; beyond it slices drop to the GC.
const anyFreeMax = 256

// getAnySlice returns a length-n []any, reusing a recycled backing array
// when one with sufficient capacity is available.
func getAnySlice(n int) []any {
	anyFree.Lock()
	if l := len(anyFree.list); l > 0 {
		if s := anyFree.list[l-1]; cap(s) >= n {
			anyFree.list[l-1] = nil
			anyFree.list = anyFree.list[:l-1]
			anyFree.Unlock()
			return s[:n]
		}
	}
	anyFree.Unlock()
	return make([]any, n)
}

// RecycleAnySlice returns a slice obtained from AnySlice to the free list.
// Only the owner of the decoded value may call it, and only once nothing
// references the slice any more — for a server, after the reply to the
// call whose arguments it carried was encoded. The elements themselves are
// not recycled (they may have escaped into the invoked method); the
// backing array is cleared and reused.
func RecycleAnySlice(s []any) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	anyFree.Lock()
	if len(anyFree.list) < anyFreeMax {
		anyFree.list = append(anyFree.list, s[:0])
	}
	anyFree.Unlock()
}

// typedSlice reads the next value, which the fast-path slice decoders
// already return as the right concrete type; mismatches (a []any from an
// older peer, nil) go through the Assign conversion rules.
func typedSlice[T any](d *Decoder) T {
	var zero T
	v := d.Value()
	if v == nil {
		return zero
	}
	if s, ok := v.(T); ok {
		return s
	}
	return convertDecoded[T](d, v)
}

// assignAs is the generic fallback of the typed readers: decode the next
// value reflectively and convert it with the Assign rules.
func assignAs[T any](d *Decoder) T {
	var zero T
	v := d.Value()
	if d.err != nil {
		return zero
	}
	return convertDecoded[T](d, v)
}

func convertDecoded[T any](d *Decoder, v any) T {
	var zero T
	av, err := Assign(reflect.TypeFor[T](), v)
	if err != nil {
		d.Fail(err)
		return zero
	}
	return av.Interface().(T)
}

// AssignTo converts a decoded wire value into *dst using the Assign rules;
// it is the generic field fallback of generated UnmarshalWire methods.
func AssignTo(dst any, v any) error {
	rv := reflect.ValueOf(dst)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return fmt.Errorf("wire: AssignTo needs a non-nil pointer, got %T", dst)
	}
	av, err := Assign(rv.Type().Elem(), v)
	if err != nil {
		return err
	}
	rv.Elem().Set(av)
	return nil
}
