package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
)

// BinFmt is the compact tagged binary codec, the analogue of the .NET
// BinaryFormatter used by the remoting TCP channel. Struct type and field
// names are interned per message: the first occurrence carries the string,
// later occurrences carry a small back-reference, mirroring the
// BinaryFormatter's object/string id tables.
//
// Struct values whose types registered a parcgen-generated codec (see
// RegisterGeneratedCodec) are encoded and decoded through it — byte-
// compatible with the reflective path, but without reflection. Setting
// DisableGenerated forces the reflective path everywhere; the fuzz tests
// and the codec benchmark use it to compare the two.
type BinFmt struct {
	DisableGenerated bool
}

// Name implements Codec.
func (BinFmt) Name() string { return "binfmt" }

// Marshal implements Codec. The returned slice is freshly allocated and
// owned by the caller; hot paths that can scope the buffer's lifetime use a
// pooled Encoder directly instead.
func (f BinFmt) Marshal(v any) ([]byte, error) {
	e := NewEncoder()
	defer e.Release()
	if f.DisableGenerated {
		e.SetGenerated(false)
	}
	if err := e.Encode(v); err != nil {
		return nil, err
	}
	return append([]byte(nil), e.Bytes()...), nil
}

// Unmarshal implements Codec.
func (f BinFmt) Unmarshal(data []byte) (any, error) {
	d := NewDecoder(data)
	defer d.Release()
	if f.DisableGenerated {
		d.SetGenerated(false)
	}
	v, err := d.Decode()
	if err != nil {
		return nil, err
	}
	if rest := d.Rest(); rest != 0 {
		return nil, fmt.Errorf("wire/binfmt: %d trailing bytes after value", rest)
	}
	return v, nil
}

// UnmarshalShared decodes like Unmarshal but in borrow mode: []byte
// payloads of BorrowMin bytes or more come back as views into data rather
// than copies, skipping the large-payload memcpy of the codec entirely.
// The wire format is unchanged — only the ownership of the result is.
// borrowed reports whether any decoded value aliases data; when true the
// caller must keep data alive (and unrecycled) for as long as the decoded
// value is referenced. When false, data can be released immediately, as
// after Unmarshal.
func (f BinFmt) UnmarshalShared(data []byte) (v any, borrowed bool, err error) {
	d := NewDecoder(data)
	defer d.Release()
	if f.DisableGenerated {
		d.SetGenerated(false)
	}
	d.SetBorrow(true)
	v, err = d.Decode()
	if err != nil {
		return nil, d.Borrowed(), err
	}
	if rest := d.Rest(); rest != 0 {
		return nil, d.Borrowed(), fmt.Errorf("wire/binfmt: %d trailing bytes after value", rest)
	}
	return v, d.Borrowed(), nil
}

// binOpts selects the encoding dialect shared between BinFmt and JavaSer.
type binOpts struct {
	// internStrings enables the per-message name dictionary (BinFmt).
	internStrings bool
	// classDescriptors writes a full descriptor (type name plus every
	// field name) before each struct value instead of field names inline
	// once per struct occurrence (JavaSer).
	classDescriptors bool
	// arrayClassNames prefixes numeric-array fast paths with a Java-style
	// array class name such as "[I" (JavaSer).
	arrayClassNames bool
	// generated enables the registered generated-codec fast path (BinFmt
	// only; requires the pub back-pointer to be set).
	generated bool
	// borrow lets the decoder return []byte payloads of BorrowMin bytes or
	// more as views into the input instead of copies (decode side only).
	// See Decoder.SetBorrow for the ownership contract.
	borrow bool
}

type binEncoder struct {
	buf  []byte
	opts binOpts
	// Interned names: a realistic message uses a handful, so the first
	// identListMax live in a linearly scanned slice (far cheaper than map
	// operations on the envelope hot path); only pathological messages
	// spill into the overflow map.
	identList []string
	idents    map[string]int // overflow beyond identListMax, ids offset by identListMax
	pub       *Encoder       // owning exported Encoder, when wrapped (BinFmt)
}

// identListMax is the slice-probed intern capacity before the overflow map
// kicks in.
const identListMax = 16

func (e *binEncoder) writeByte(b byte)    { e.buf = append(e.buf, b) }
func (e *binEncoder) writeBytes(b []byte) { e.buf = append(e.buf, b...) }

func (e *binEncoder) writeUvarint(u uint64) {
	e.buf = binary.AppendUvarint(e.buf, u)
}

func (e *binEncoder) writeVarint(i int64) {
	e.buf = binary.AppendVarint(e.buf, i)
}

func (e *binEncoder) writeFixed32(u uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, u)
}

func (e *binEncoder) writeFixed64(u uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, u)
}

func (e *binEncoder) writeString(s string) {
	e.writeUvarint(uint64(len(s)))
	e.writeBytes([]byte(s))
}

// writeName writes an identifier (type or field name), interning it when the
// dialect supports it. Interned references are encoded as uvarint(id+1)
// following a zero length, a scheme that keeps plain strings unambiguous.
func (e *binEncoder) writeName(s string) {
	if !e.opts.internStrings {
		e.writeString(s)
		return
	}
	if id, ok := e.internLookup(s); ok {
		e.writeUvarint(0)
		e.writeUvarint(uint64(id + 1))
		return
	}
	e.internAdd(s)
	// Length+1 distinguishes a literal from the back-reference marker.
	e.writeUvarint(uint64(len(s)) + 1)
	e.writeBytes([]byte(s))
}

// internLookup finds an already-interned name's id.
func (e *binEncoder) internLookup(s string) (int, bool) {
	for i, v := range e.identList {
		if v == s {
			return i, true
		}
	}
	if e.idents != nil {
		if id, ok := e.idents[s]; ok {
			return id, true
		}
	}
	return 0, false
}

// internAdd assigns the next sequential id to s (slice first, then the
// overflow map), matching the decoder's append-order numbering.
func (e *binEncoder) internAdd(s string) {
	if len(e.identList) < identListMax {
		e.identList = append(e.identList, s)
		return
	}
	if e.idents == nil {
		e.idents = make(map[string]int)
	}
	e.idents[s] = identListMax + len(e.idents)
}

// internReset clears the per-message dictionary, keeping capacity.
func (e *binEncoder) internReset() {
	e.identList = e.identList[:0]
	clear(e.idents)
}

func (e *binEncoder) encode(v any) error {
	if v == nil {
		e.writeByte(tNil)
		return nil
	}
	switch x := v.(type) {
	case bool:
		if x {
			e.writeByte(tTrue)
		} else {
			e.writeByte(tFalse)
		}
		return nil
	case int8:
		e.writeByte(tInt8)
		e.writeByte(byte(x))
		return nil
	case int16:
		e.writeByte(tInt16)
		e.writeVarint(int64(x))
		return nil
	case int32:
		e.writeByte(tInt32)
		e.writeVarint(int64(x))
		return nil
	case int64:
		e.writeByte(tInt64)
		e.writeVarint(x)
		return nil
	case int:
		e.writeByte(tInt)
		e.writeVarint(int64(x))
		return nil
	case uint8:
		e.writeByte(tUint8)
		e.writeByte(x)
		return nil
	case uint16:
		e.writeByte(tUint16)
		e.writeUvarint(uint64(x))
		return nil
	case uint32:
		e.writeByte(tUint32)
		e.writeUvarint(uint64(x))
		return nil
	case uint64:
		e.writeByte(tUint64)
		e.writeUvarint(x)
		return nil
	case uint:
		e.writeByte(tUint)
		e.writeUvarint(uint64(x))
		return nil
	case float32:
		e.writeByte(tFloat32)
		e.writeFixed32(math.Float32bits(x))
		return nil
	case float64:
		e.writeByte(tFloat64)
		e.writeFixed64(math.Float64bits(x))
		return nil
	case string:
		e.writeByte(tString)
		e.writeString(x)
		return nil
	case []byte:
		e.writeByte(tBytes)
		e.writeUvarint(uint64(len(x)))
		e.writeBytes(x)
		return nil
	case []int:
		e.writeByte(tIntSlice)
		e.maybeArrayClass("[J")
		e.writeUvarint(uint64(len(x)))
		for _, n := range x {
			e.writeFixed64(uint64(n))
		}
		return nil
	case []int32:
		e.writeByte(tInt32Slice)
		e.maybeArrayClass("[I")
		e.writeUvarint(uint64(len(x)))
		for _, n := range x {
			e.writeFixed32(uint32(n))
		}
		return nil
	case []int64:
		e.writeByte(tInt64Slice)
		e.maybeArrayClass("[J")
		e.writeUvarint(uint64(len(x)))
		for _, n := range x {
			e.writeFixed64(uint64(n))
		}
		return nil
	case []float32:
		e.writeByte(tFloat32Slice)
		e.maybeArrayClass("[F")
		e.writeUvarint(uint64(len(x)))
		for _, f := range x {
			e.writeFixed32(math.Float32bits(f))
		}
		return nil
	case []float64:
		e.writeByte(tFloat64Slice)
		e.maybeArrayClass("[D")
		e.writeUvarint(uint64(len(x)))
		for _, f := range x {
			e.writeFixed64(math.Float64bits(f))
		}
		return nil
	case []string:
		e.writeByte(tStringSlice)
		e.maybeArrayClass("[Ljava.lang.String;")
		e.writeUvarint(uint64(len(x)))
		for _, s := range x {
			e.writeString(s)
		}
		return nil
	case []bool:
		e.writeByte(tBoolSlice)
		e.maybeArrayClass("[Z")
		e.writeUvarint(uint64(len(x)))
		for _, b := range x {
			if b {
				e.writeByte(1)
			} else {
				e.writeByte(0)
			}
		}
		return nil
	case []any:
		e.writeByte(tAnySlice)
		e.writeUvarint(uint64(len(x)))
		for _, el := range x {
			if err := e.encode(el); err != nil {
				return err
			}
		}
		return nil
	case map[string]any:
		return e.encodeMap(reflect.ValueOf(x))
	}
	// Generated-codec fast path: a single map lookup replaces the whole
	// reflective struct walk for registered types.
	if e.opts.generated && e.pub != nil {
		if g := generatedFor(reflect.TypeOf(v)); g != nil {
			if g.isNil != nil && g.isNil(v) {
				e.writeByte(tNil)
				return nil
			}
			e.writeByte(g.tag)
			if err := g.enc(e.pub, v); err != nil {
				return err
			}
			return e.pub.Err()
		}
	}
	return e.encodeReflect(reflect.ValueOf(v))
}

// maybeArrayClass writes a Java-style array class name for dialects that
// carry per-array descriptors (JavaSer only).
func (e *binEncoder) maybeArrayClass(name string) {
	if e.opts.arrayClassNames {
		e.writeString(name)
	}
}

// encodeReflect handles struct values, struct pointers, generic slices and
// string-keyed maps that did not match a fast path.
func (e *binEncoder) encodeReflect(rv reflect.Value) error {
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() {
			e.writeByte(tNil)
			return nil
		}
		if rv.Elem().Kind() == reflect.Struct {
			e.writeByte(tPtrStruct)
			return e.encodeStructBody(rv.Elem())
		}
		return e.encode(rv.Elem().Interface())
	case reflect.Struct:
		e.writeByte(tStruct)
		return e.encodeStructBody(rv)
	case reflect.Slice, reflect.Array:
		e.writeByte(tAnySlice)
		e.writeUvarint(uint64(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			if err := e.encode(rv.Index(i).Interface()); err != nil {
				return err
			}
		}
		return nil
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return &UnsupportedTypeError{Type: rv.Type()}
		}
		return e.encodeMap(rv)
	case reflect.Interface:
		if rv.IsNil() {
			e.writeByte(tNil)
			return nil
		}
		return e.encode(rv.Elem().Interface())
	}
	return &UnsupportedTypeError{Type: rv.Type()}
}

func (e *binEncoder) encodeMap(rv reflect.Value) error {
	e.writeByte(tMap)
	keys := rv.MapKeys()
	// Deterministic key order keeps encodings reproducible for golden
	// tests and size accounting.
	sorted := make([]string, len(keys))
	for i, k := range keys {
		sorted[i] = k.String()
	}
	sortStrings(sorted)
	e.writeUvarint(uint64(len(sorted)))
	for _, k := range sorted {
		e.writeString(k)
		if err := e.encode(rv.MapIndex(reflect.ValueOf(k)).Interface()); err != nil {
			return err
		}
	}
	return nil
}

func (e *binEncoder) encodeStructBody(rv reflect.Value) error {
	t := rv.Type()
	name, ok := nameOf(t)
	if !ok {
		return &UnsupportedTypeError{Type: t}
	}
	fields := fieldsOf(t)
	if e.opts.classDescriptors {
		// Full Java-style class descriptor: name, field count and
		// every field name spelled out on each occurrence.
		e.writeString(name)
		e.writeUvarint(uint64(len(fields)))
		for _, f := range fields {
			e.writeString(f.name)
		}
		for _, f := range fields {
			if err := e.encode(rv.Field(f.index).Interface()); err != nil {
				return err
			}
		}
		return nil
	}
	e.writeName(name)
	e.writeUvarint(uint64(len(fields)))
	for _, f := range fields {
		e.writeName(f.name)
		if err := e.encode(rv.Field(f.index).Interface()); err != nil {
			return err
		}
	}
	return nil
}

type binDecoder struct {
	data []byte
	pos  int
	opts binOpts
	// idents holds interned names as zero-copy views into data (valid for
	// the decode's duration), so reading a name allocates nothing.
	idents [][]byte
	pub    *Decoder // owning exported Decoder, when wrapped (BinFmt)
	// borrowed records that at least one decoded []byte aliases data
	// (opts.borrow): the producer of data must not recycle it while the
	// decoded values live.
	borrowed bool
}

// checkCount guards a decoded element count against the remaining input:
// every element costs at least elemSize bytes, so a count that cannot fit
// is corrupt and must be rejected before it sizes an allocation.
func (d *binDecoder) checkCount(n uint64, elemSize int) error {
	if n > uint64(len(d.data)-d.pos)/uint64(elemSize) {
		return fmt.Errorf("wire/binfmt: count %d exceeds remaining %d bytes at offset %d",
			n, len(d.data)-d.pos, d.pos)
	}
	return nil
}

// readBytesValue reads a length-prefixed byte payload (tBytes tag already
// consumed). In borrow mode, payloads of BorrowMin bytes or more are
// sliced straight out of the input (full-capacity-clipped so appends
// cannot scribble on neighbouring frame bytes) and the decoder is marked
// borrowed; smaller payloads are always copied, so small messages never
// pin their receive frame.
func (d *binDecoder) readBytesValue() ([]byte, error) {
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if err := d.checkCount(n, 1); err != nil {
		return nil, err
	}
	if d.pos+int(n) > len(d.data) {
		return nil, fmt.Errorf("wire/binfmt: truncated bytes of length %d", n)
	}
	if d.opts.borrow && int(n) >= BorrowMin {
		b := d.data[d.pos : d.pos+int(n) : d.pos+int(n)]
		d.pos += int(n)
		d.borrowed = true
		return b, nil
	}
	b := make([]byte, n)
	copy(b, d.data[d.pos:])
	d.pos += int(n)
	return b, nil
}

func (d *binDecoder) readByte() (byte, error) {
	if d.pos >= len(d.data) {
		return 0, fmt.Errorf("wire/binfmt: truncated message at offset %d", d.pos)
	}
	b := d.data[d.pos]
	d.pos++
	return b, nil
}

func (d *binDecoder) readUvarint() (uint64, error) {
	u, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire/binfmt: bad uvarint at offset %d", d.pos)
	}
	d.pos += n
	return u, nil
}

func (d *binDecoder) readVarint() (int64, error) {
	i, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("wire/binfmt: bad varint at offset %d", d.pos)
	}
	d.pos += n
	return i, nil
}

func (d *binDecoder) readFixed32() (uint32, error) {
	if d.pos+4 > len(d.data) {
		return 0, fmt.Errorf("wire/binfmt: truncated fixed32 at offset %d", d.pos)
	}
	u := binary.LittleEndian.Uint32(d.data[d.pos:])
	d.pos += 4
	return u, nil
}

func (d *binDecoder) readFixed64() (uint64, error) {
	if d.pos+8 > len(d.data) {
		return 0, fmt.Errorf("wire/binfmt: truncated fixed64 at offset %d", d.pos)
	}
	u := binary.LittleEndian.Uint64(d.data[d.pos:])
	d.pos += 8
	return u, nil
}

func (d *binDecoder) readString() (string, error) {
	n, err := d.readUvarint()
	if err != nil {
		return "", err
	}
	if err := d.checkCount(n, 1); err != nil {
		return "", err
	}
	if d.pos+int(n) > len(d.data) {
		return "", fmt.Errorf("wire/binfmt: truncated string of length %d at offset %d", n, d.pos)
	}
	s := string(d.data[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

func (d *binDecoder) readName() (string, error) {
	b, err := d.readNameBytes()
	return string(b), err
}

// readNameBytes reads an identifier without allocating: the returned slice
// views d.data and is valid until the decoder is released. Callers that
// only compare or switch on the name (the generated codecs) never pay a
// string copy; callers that keep it convert explicitly.
func (d *binDecoder) readNameBytes() ([]byte, error) {
	if !d.opts.internStrings {
		return d.readStringBytes()
	}
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		id, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		idx := int(id) - 1
		if idx < 0 || idx >= len(d.idents) {
			return nil, fmt.Errorf("wire/binfmt: bad name back-reference %d", id)
		}
		return d.idents[idx], nil
	}
	// n >= 1 here (literal marker is length+1); bound it in uint64 space
	// BEFORE any int conversion — a crafted length near 2^63 would wrap
	// int(n)-1 positive and slip past a signed check into a slice panic.
	if err := d.checkCount(n-1, 1); err != nil {
		return nil, err
	}
	length := int(n - 1)
	if d.pos+length > len(d.data) {
		return nil, fmt.Errorf("wire/binfmt: truncated name of length %d at offset %d", length, d.pos)
	}
	b := d.data[d.pos : d.pos+length : d.pos+length]
	d.pos += length
	d.idents = append(d.idents, b)
	return b, nil
}

// readStringBytes reads a length-prefixed string as a zero-copy view.
func (d *binDecoder) readStringBytes() ([]byte, error) {
	n, err := d.readUvarint()
	if err != nil {
		return nil, err
	}
	if err := d.checkCount(n, 1); err != nil {
		return nil, err
	}
	if d.pos+int(n) > len(d.data) {
		return nil, fmt.Errorf("wire/binfmt: truncated string of length %d at offset %d", n, d.pos)
	}
	b := d.data[d.pos : d.pos+int(n) : d.pos+int(n)]
	d.pos += int(n)
	return b, nil
}

// skipArrayClass consumes the Java-style array class name in dialects that
// write one.
func (d *binDecoder) skipArrayClass() error {
	if !d.opts.arrayClassNames {
		return nil
	}
	_, err := d.readString()
	return err
}

func (d *binDecoder) decode() (any, error) {
	tag, err := d.readByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tNil:
		return nil, nil
	case tTrue:
		return true, nil
	case tFalse:
		return false, nil
	case tInt8:
		b, err := d.readByte()
		return int8(b), err
	case tInt16:
		i, err := d.readVarint()
		return int16(i), err
	case tInt32:
		i, err := d.readVarint()
		return int32(i), err
	case tInt64:
		return d.readVarint()
	case tInt:
		i, err := d.readVarint()
		return int(i), err
	case tUint8:
		b, err := d.readByte()
		return b, err
	case tUint16:
		u, err := d.readUvarint()
		return uint16(u), err
	case tUint32:
		u, err := d.readUvarint()
		return uint32(u), err
	case tUint64:
		return d.readUvarint()
	case tUint:
		u, err := d.readUvarint()
		return uint(u), err
	case tFloat32:
		u, err := d.readFixed32()
		return math.Float32frombits(u), err
	case tFloat64:
		u, err := d.readFixed64()
		return math.Float64frombits(u), err
	case tString:
		return d.readString()
	case tBytes:
		return d.readBytesValue()
	case tIntSlice:
		if err := d.skipArrayClass(); err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.checkCount(n, 8); err != nil {
			return nil, err
		}
		out := make([]int, n)
		for i := range out {
			u, err := d.readFixed64()
			if err != nil {
				return nil, err
			}
			out[i] = int(int64(u))
		}
		return out, nil
	case tInt32Slice:
		if err := d.skipArrayClass(); err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.checkCount(n, 4); err != nil {
			return nil, err
		}
		out := make([]int32, n)
		for i := range out {
			u, err := d.readFixed32()
			if err != nil {
				return nil, err
			}
			out[i] = int32(u)
		}
		return out, nil
	case tInt64Slice:
		if err := d.skipArrayClass(); err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.checkCount(n, 8); err != nil {
			return nil, err
		}
		out := make([]int64, n)
		for i := range out {
			u, err := d.readFixed64()
			if err != nil {
				return nil, err
			}
			out[i] = int64(u)
		}
		return out, nil
	case tFloat32Slice:
		if err := d.skipArrayClass(); err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.checkCount(n, 4); err != nil {
			return nil, err
		}
		out := make([]float32, n)
		for i := range out {
			u, err := d.readFixed32()
			if err != nil {
				return nil, err
			}
			out[i] = math.Float32frombits(u)
		}
		return out, nil
	case tFloat64Slice:
		if err := d.skipArrayClass(); err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.checkCount(n, 8); err != nil {
			return nil, err
		}
		out := make([]float64, n)
		for i := range out {
			u, err := d.readFixed64()
			if err != nil {
				return nil, err
			}
			out[i] = math.Float64frombits(u)
		}
		return out, nil
	case tStringSlice:
		if err := d.skipArrayClass(); err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.checkCount(n, 1); err != nil {
			return nil, err
		}
		out := make([]string, n)
		for i := range out {
			s, err := d.readString()
			if err != nil {
				return nil, err
			}
			out[i] = s
		}
		return out, nil
	case tBoolSlice:
		if err := d.skipArrayClass(); err != nil {
			return nil, err
		}
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.checkCount(n, 1); err != nil {
			return nil, err
		}
		out := make([]bool, n)
		for i := range out {
			b, err := d.readByte()
			if err != nil {
				return nil, err
			}
			out[i] = b != 0
		}
		return out, nil
	case tAnySlice:
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.checkCount(n, 1); err != nil {
			return nil, err
		}
		out := make([]any, n)
		for i := range out {
			v, err := d.decode()
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case tMap:
		n, err := d.readUvarint()
		if err != nil {
			return nil, err
		}
		if err := d.checkCount(n, 2); err != nil {
			return nil, err
		}
		out := make(map[string]any, n)
		for i := uint64(0); i < n; i++ {
			k, err := d.readString()
			if err != nil {
				return nil, err
			}
			v, err := d.decode()
			if err != nil {
				return nil, err
			}
			out[k] = v
		}
		return out, nil
	case tStruct:
		return d.decodeStructAny(false)
	case tPtrStruct:
		return d.decodeStructAny(true)
	}
	return nil, fmt.Errorf("wire/binfmt: unknown tag 0x%02x at offset %d", tag, d.pos-1)
}

// decodeStructAny decodes a struct body, preferring a registered generated
// codec (BinFmt dialect only) and falling back to the reflective decoder.
// ptr selects whether the caller saw tPtrStruct (*T) or tStruct (T).
func (d *binDecoder) decodeStructAny(ptr bool) (any, error) {
	if d.opts.classDescriptors {
		v, err := d.decodeStructDescriptor()
		if err != nil {
			return nil, err
		}
		if ptr {
			return v.Interface(), nil
		}
		return v.Elem().Interface(), nil
	}
	nameB, err := d.readNameBytes()
	if err != nil {
		return nil, err
	}
	if d.opts.generated && d.pub != nil {
		if g := generatedNameBytes(nameB); g != nil {
			if ptr {
				return g.decPtr(d.pub)
			}
			return g.decVal(d.pub)
		}
	}
	v, err := d.decodeStructFields(string(nameB))
	if err != nil {
		return nil, err
	}
	if ptr {
		return v.Interface(), nil
	}
	return v.Elem().Interface(), nil
}

// decodeStructDescriptor reads the JavaSer-dialect struct body (full class
// descriptor per occurrence), returning a pointer to a fresh struct.
func (d *binDecoder) decodeStructDescriptor() (reflect.Value, error) {
	name, err := d.readString()
	if err != nil {
		return reflect.Value{}, err
	}
	t, ok := lookupName(name)
	if !ok {
		return reflect.Value{}, &UnknownTypeError{Name: name}
	}
	n, err := d.readUvarint()
	if err != nil {
		return reflect.Value{}, err
	}
	if err := d.checkCount(n, 2); err != nil {
		return reflect.Value{}, err
	}
	names := make([]string, n)
	for i := range names {
		names[i], err = d.readString()
		if err != nil {
			return reflect.Value{}, err
		}
	}
	ptr := reflect.New(t)
	for _, fname := range names {
		v, err := d.decode()
		if err != nil {
			return reflect.Value{}, err
		}
		if err := setStructField(ptr.Elem(), fname, v); err != nil {
			return reflect.Value{}, err
		}
	}
	return ptr, nil
}

// decodeStructFields reads the BinFmt-dialect struct body reflectively (the
// wire name has already been consumed), returning a pointer to a fresh
// struct.
func (d *binDecoder) decodeStructFields(name string) (reflect.Value, error) {
	t, ok := lookupName(name)
	if !ok {
		return reflect.Value{}, &UnknownTypeError{Name: name}
	}
	n, err := d.readUvarint()
	if err != nil {
		return reflect.Value{}, err
	}
	if err := d.checkCount(n, 2); err != nil {
		return reflect.Value{}, err
	}
	ptr := reflect.New(t)
	for i := uint64(0); i < n; i++ {
		fname, err := d.readName()
		if err != nil {
			return reflect.Value{}, err
		}
		v, err := d.decode()
		if err != nil {
			return reflect.Value{}, err
		}
		if err := setStructField(ptr.Elem(), fname, v); err != nil {
			return reflect.Value{}, err
		}
	}
	return ptr, nil
}

// setStructField assigns a decoded value to the named field, tolerating
// fields removed on the receiving side (the value is discarded) so that
// schema evolution does not break old peers.
func setStructField(st reflect.Value, name string, v any) error {
	f := st.FieldByName(name)
	if !f.IsValid() {
		return nil
	}
	av, err := Assign(f.Type(), v)
	if err != nil {
		return fmt.Errorf("wire: field %s.%s: %w", st.Type(), name, err)
	}
	f.Set(av)
	return nil
}

func sortStrings(s []string) {
	sort.Strings(s)
}
