package wire

import "testing"

// Crafted frame: tStruct + uvarint(1<<63) as interned-name length.
func TestReadNameOverflowRepro(t *testing.T) {
	data := []byte{tStruct, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01}
	if _, err := (BinFmt{}).Unmarshal(data); err == nil {
		t.Fatal("crafted overflow length decoded without error")
	}
}
