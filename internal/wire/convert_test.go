package wire

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/errs"
)

func TestAssignScalars(t *testing.T) {
	cases := []struct {
		dst  any // zero value carrying the destination type
		in   any
		want any
	}{
		{int(0), int64(5), int(5)},
		{int32(0), int(7), int32(7)},
		{int64(0), int32(-9), int64(-9)},
		{float32(0), float64(1.5), float32(1.5)},
		{float64(0), int(3), float64(3)},
		{uint16(0), int(40000), uint16(40000)},
		{"", "s", "s"},
		{false, true, true},
	}
	for _, c := range cases {
		got, err := Assign(reflect.TypeOf(c.dst), c.in)
		if err != nil {
			t.Errorf("Assign(%T, %#v): %v", c.dst, c.in, err)
			continue
		}
		if !reflect.DeepEqual(got.Interface(), c.want) {
			t.Errorf("Assign(%T, %#v) = %#v, want %#v", c.dst, c.in, got.Interface(), c.want)
		}
	}
}

func TestAssignNil(t *testing.T) {
	got, err := Assign(reflect.TypeOf((*testNested)(nil)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsNil() {
		t.Errorf("Assign(ptr, nil) = %v", got)
	}
	gi, err := Assign(reflect.TypeOf(int(0)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if gi.Interface() != 0 {
		t.Errorf("Assign(int, nil) = %v", gi)
	}
}

func TestAssignSliceOfAny(t *testing.T) {
	in := []any{int(1), int64(2), int32(3)}
	got, err := Assign(reflect.TypeOf([]int{}), in)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	if !reflect.DeepEqual(got.Interface(), want) {
		t.Errorf("Assign = %#v, want %#v", got.Interface(), want)
	}
}

func TestAssignSliceOfStructs(t *testing.T) {
	in := []any{testNested{Label: "a"}, testNested{Label: "b"}}
	got, err := Assign(reflect.TypeOf([]testNested{}), in)
	if err != nil {
		t.Fatal(err)
	}
	out := got.Interface().([]testNested)
	if len(out) != 2 || out[0].Label != "a" || out[1].Label != "b" {
		t.Errorf("Assign = %#v", out)
	}
}

func TestAssignPointerValueInterop(t *testing.T) {
	n := testNested{Label: "x"}
	// value -> pointer
	gp, err := Assign(reflect.TypeOf(&testNested{}), n)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Interface().(*testNested).Label != "x" {
		t.Errorf("value->pointer = %#v", gp.Interface())
	}
	// pointer -> value
	gv, err := Assign(reflect.TypeOf(testNested{}), &n)
	if err != nil {
		t.Fatal(err)
	}
	if gv.Interface().(testNested).Label != "x" {
		t.Errorf("pointer->value = %#v", gv.Interface())
	}
}

func TestAssignMapToStruct(t *testing.T) {
	in := map[string]any{"Label": "m", "Vals": []float64{1, 2}}
	got, err := Assign(reflect.TypeOf(testNested{}), in)
	if err != nil {
		t.Fatal(err)
	}
	n := got.Interface().(testNested)
	if n.Label != "m" || len(n.Vals) != 2 {
		t.Errorf("map->struct = %#v", n)
	}
}

func TestAssignTypedMap(t *testing.T) {
	in := map[string]any{"a": int(1), "b": int64(2)}
	got, err := Assign(reflect.TypeOf(map[string]int{}), in)
	if err != nil {
		t.Fatal(err)
	}
	m := got.Interface().(map[string]int)
	if m["a"] != 1 || m["b"] != 2 {
		t.Errorf("typed map = %#v", m)
	}
}

func TestAssignInterface(t *testing.T) {
	got, err := Assign(reflect.TypeOf((*any)(nil)).Elem(), "x")
	if err != nil {
		t.Fatal(err)
	}
	if got.Interface() != "x" {
		t.Errorf("Assign(any, x) = %#v", got.Interface())
	}
}

// TestAssignNarrowingOverflow: narrowing conversions that cannot represent
// the value fail with errs.ErrBadConversion instead of silently truncating.
func TestAssignNarrowingOverflow(t *testing.T) {
	cases := []struct {
		dst any
		in  any
	}{
		{int8(0), int(300)},               // int overflow
		{int16(0), int(1 << 20)},          // int overflow
		{uint8(0), int(256)},              // uint overflow
		{uint64(0), int(-1)},              // sign loss
		{uint16(0), float64(-2)},          // negative float to uint
		{int(0), float64(1.5)},            // fractional float to int
		{int(0), float64(1e300)},          // float out of int range
		{int64(0), uint64(1) << 63},       // uint64 beyond MaxInt64
		{float32(0), float64(1e300)},      // float64 overflowing float32
		{uint32(0), float64(4.2e9 + 0.5)}, // fractional and in-range check order
	}
	for _, c := range cases {
		_, err := Assign(reflect.TypeOf(c.dst), c.in)
		if err == nil {
			t.Errorf("Assign(%T, %#v): expected overflow error", c.dst, c.in)
			continue
		}
		if !errors.Is(err, errs.ErrBadConversion) {
			t.Errorf("Assign(%T, %#v): error %v does not unwrap to ErrBadConversion", c.dst, c.in, err)
		}
	}
}

// TestAssignLosslessConversions: conversions representable in the target
// keep working, including float values with integral parts.
func TestAssignLosslessConversions(t *testing.T) {
	cases := []struct {
		dst  any
		in   any
		want any
	}{
		{int8(0), int(-128), int8(-128)},
		{uint8(0), int(255), uint8(255)},
		{int(0), float64(42), int(42)},
		{uint32(0), float64(7), uint32(7)},
		{float32(0), float64(2.5), float32(2.5)},
		{float64(0), uint64(1) << 63, float64(1 << 63)},
	}
	for _, c := range cases {
		got, err := Assign(reflect.TypeOf(c.dst), c.in)
		if err != nil {
			t.Errorf("Assign(%T, %#v): %v", c.dst, c.in, err)
			continue
		}
		if !reflect.DeepEqual(got.Interface(), c.want) {
			t.Errorf("Assign(%T, %#v) = %#v, want %#v", c.dst, c.in, got.Interface(), c.want)
		}
	}
}

// TestAssignBytesString: []byte and string convert to each other (a decoded
// []byte argument binding a string parameter, and vice versa).
func TestAssignBytesString(t *testing.T) {
	gs, err := Assign(reflect.TypeOf(""), []byte("abc"))
	if err != nil {
		t.Fatal(err)
	}
	if gs.Interface() != "abc" {
		t.Errorf("[]byte->string = %#v", gs.Interface())
	}
	gb, err := Assign(reflect.TypeOf([]byte(nil)), "xyz")
	if err != nil {
		t.Fatal(err)
	}
	if string(gb.Interface().([]byte)) != "xyz" {
		t.Errorf("string->[]byte = %#v", gb.Interface())
	}
}

func TestAssignToPointer(t *testing.T) {
	var n int
	if err := AssignTo(&n, int64(9)); err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Errorf("AssignTo(int, int64(9)) set %d", n)
	}
	if err := AssignTo(n, int64(9)); err == nil {
		t.Error("AssignTo with non-pointer should fail")
	}
	var s []string
	if err := AssignTo(&s, []any{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 || s[1] != "b" {
		t.Errorf("AssignTo([]string) = %#v", s)
	}
}

func TestAssignMismatch(t *testing.T) {
	if _, err := Assign(reflect.TypeOf(int(0)), "nope"); err == nil {
		t.Error("expected error assigning string to int")
	}
	if _, err := Assign(reflect.TypeOf([]int{}), "nope"); err == nil {
		t.Error("expected error assigning string to []int")
	}
}

func TestAssignArgs(t *testing.T) {
	params := []reflect.Type{reflect.TypeOf(int(0)), reflect.TypeOf("")}
	vals, err := AssignArgs(params, []any{int64(1), "a"})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].Interface() != 1 || vals[1].Interface() != "a" {
		t.Errorf("AssignArgs = %v", vals)
	}
	if _, err := AssignArgs(params, []any{1}); err == nil {
		t.Error("expected arity error")
	}
	if _, err := AssignArgs(params, []any{1, 2}); err == nil {
		t.Error("expected type error naming position")
	}
}
