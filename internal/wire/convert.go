package wire

import (
	"fmt"
	"math"
	"reflect"

	"repro/internal/errs"
)

// badConversion builds a conversion failure that unwraps to
// errs.ErrBadConversion, so callers can branch with errors.Is.
func badConversion(what, dst string) error {
	return fmt.Errorf("wire: cannot convert %s to %s: %w", what, dst, errs.ErrBadConversion)
}

// Assign converts a decoded wire value v into a reflect.Value assignable to
// dst. It performs the conversions a dynamic RPC dispatcher needs:
//
//   - exact type match and Go-assignable values pass through;
//   - numeric kinds convert between widths (int32 → int, float64 → float32)
//     when the value is representable; narrowing overflow, sign loss and
//     fractional float→integer conversions fail with errs.ErrBadConversion
//     instead of silently corrupting the value;
//   - []byte and string convert to each other;
//   - []any converts element-wise into any slice type;
//   - map[string]any converts into struct types and typed maps;
//   - T converts to *T (a copy is allocated) and *T to T;
//   - nil becomes the zero value of dst.
//
// Assign is used by the remoting/RMI dispatchers to bind decoded arguments
// to method parameter types, and by the SCOOPP proxy to bind results.
func Assign(dst reflect.Type, v any) (reflect.Value, error) {
	if v == nil {
		return reflect.Zero(dst), nil
	}
	rv := reflect.ValueOf(v)
	if rv.Type() == dst {
		return rv, nil
	}
	if rv.Type().AssignableTo(dst) {
		return rv, nil
	}
	switch dst.Kind() {
	case reflect.Interface:
		if rv.Type().Implements(dst) {
			return rv, nil
		}
	case reflect.Pointer:
		if rv.Kind() == reflect.Pointer {
			if rv.IsNil() {
				return reflect.Zero(dst), nil
			}
			inner, err := Assign(dst.Elem(), rv.Elem().Interface())
			if err != nil {
				return reflect.Value{}, err
			}
			ptr := reflect.New(dst.Elem())
			ptr.Elem().Set(inner)
			return ptr, nil
		}
		inner, err := Assign(dst.Elem(), v)
		if err != nil {
			return reflect.Value{}, err
		}
		ptr := reflect.New(dst.Elem())
		ptr.Elem().Set(inner)
		return ptr, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if isNumericKind(rv.Kind()) {
			var i int64
			switch rv.Kind() {
			case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
				u := rv.Uint()
				if u > math.MaxInt64 {
					return reflect.Value{}, badConversion(fmt.Sprintf("%T value %d", v, u), dst.String())
				}
				i = int64(u)
			case reflect.Float32, reflect.Float64:
				f := rv.Float()
				i = int64(f)
				// int64(f) saturates out-of-range floats (and NaN) to
				// values that do not round-trip, so one check covers both
				// precision loss and range overflow.
				if float64(i) != f {
					return reflect.Value{}, badConversion(fmt.Sprintf("%T value %v", v, f), dst.String())
				}
			default:
				i = rv.Int()
			}
			out := reflect.New(dst).Elem()
			if out.OverflowInt(i) {
				return reflect.Value{}, badConversion(fmt.Sprintf("%T value %d", v, i), dst.String())
			}
			out.SetInt(i)
			return out, nil
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		if isNumericKind(rv.Kind()) {
			var u uint64
			switch rv.Kind() {
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
				i := rv.Int()
				if i < 0 {
					return reflect.Value{}, badConversion(fmt.Sprintf("%T value %d", v, i), dst.String())
				}
				u = uint64(i)
			case reflect.Float32, reflect.Float64:
				f := rv.Float()
				if f < 0 {
					return reflect.Value{}, badConversion(fmt.Sprintf("%T value %v", v, f), dst.String())
				}
				u = uint64(f)
				if float64(u) != f {
					return reflect.Value{}, badConversion(fmt.Sprintf("%T value %v", v, f), dst.String())
				}
			default:
				u = rv.Uint()
			}
			out := reflect.New(dst).Elem()
			if out.OverflowUint(u) {
				return reflect.Value{}, badConversion(fmt.Sprintf("%T value %d", v, u), dst.String())
			}
			out.SetUint(u)
			return out, nil
		}
	case reflect.Float32, reflect.Float64:
		if isNumericKind(rv.Kind()) {
			var f float64
			switch rv.Kind() {
			case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
				f = float64(rv.Int())
			case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
				f = float64(rv.Uint())
			default:
				f = rv.Float()
			}
			out := reflect.New(dst).Elem()
			// float64 → float32 keeps rounding (as a Go conversion does)
			// but magnitude overflow to ±Inf is a real narrowing failure.
			if out.OverflowFloat(f) {
				return reflect.Value{}, badConversion(fmt.Sprintf("%T value %v", v, f), dst.String())
			}
			out.SetFloat(f)
			return out, nil
		}
	case reflect.Slice:
		// string → []byte (and other byte-slice types).
		if rv.Kind() == reflect.String && dst.Elem().Kind() == reflect.Uint8 {
			return rv.Convert(dst), nil
		}
		if rv.Kind() == reflect.Slice {
			out := reflect.MakeSlice(dst, rv.Len(), rv.Len())
			for i := 0; i < rv.Len(); i++ {
				el, err := Assign(dst.Elem(), rv.Index(i).Interface())
				if err != nil {
					return reflect.Value{}, fmt.Errorf("element %d: %w", i, err)
				}
				out.Index(i).Set(el)
			}
			return out, nil
		}
	case reflect.Map:
		if m, ok := v.(map[string]any); ok && dst.Key().Kind() == reflect.String {
			out := reflect.MakeMapWithSize(dst, len(m))
			for k, mv := range m {
				ev, err := Assign(dst.Elem(), mv)
				if err != nil {
					return reflect.Value{}, fmt.Errorf("key %q: %w", k, err)
				}
				out.SetMapIndex(reflect.ValueOf(k).Convert(dst.Key()), ev)
			}
			return out, nil
		}
	case reflect.Struct:
		if rv.Kind() == reflect.Pointer && !rv.IsNil() && rv.Elem().Type() == dst {
			return rv.Elem(), nil
		}
		if m, ok := v.(map[string]any); ok {
			ptr := reflect.New(dst)
			for k, mv := range m {
				if err := setStructField(ptr.Elem(), k, mv); err != nil {
					return reflect.Value{}, err
				}
			}
			return ptr.Elem(), nil
		}
	case reflect.String:
		if rv.Kind() == reflect.String {
			return rv.Convert(dst), nil
		}
		// []byte → string.
		if rv.Kind() == reflect.Slice && rv.Type().Elem().Kind() == reflect.Uint8 {
			return rv.Convert(dst), nil
		}
	case reflect.Bool:
		if rv.Kind() == reflect.Bool {
			return rv.Convert(dst), nil
		}
	}
	return reflect.Value{}, fmt.Errorf("wire: cannot assign %T to %v: %w", v, dst, errs.ErrBadConversion)
}

// isNumericKind reports whether k is an integer, unsigned or float kind.
func isNumericKind(k reflect.Kind) bool {
	switch k {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64:
		return true
	}
	return false
}

// AssignArgs binds a decoded argument list to a parameter type list,
// returning an error naming the offending position on mismatch. When
// variadic is true the final parameter type is the variadic slice type and
// surplus arguments are bound to its element type.
func AssignArgs(params []reflect.Type, args []any) ([]reflect.Value, error) {
	if len(args) != len(params) {
		return nil, fmt.Errorf("wire: got %d arguments, want %d", len(args), len(params))
	}
	out := make([]reflect.Value, len(args))
	for i, a := range args {
		v, err := Assign(params[i], a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
