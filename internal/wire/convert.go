package wire

import (
	"fmt"
	"reflect"
)

// Assign converts a decoded wire value v into a reflect.Value assignable to
// dst. It performs the conversions a dynamic RPC dispatcher needs:
//
//   - exact type match and Go-assignable values pass through;
//   - numeric kinds convert between widths (int32 → int, float64 → float32);
//   - []any converts element-wise into any slice type;
//   - map[string]any converts into struct types and typed maps;
//   - T converts to *T (a copy is allocated) and *T to T;
//   - nil becomes the zero value of dst.
//
// Assign is used by the remoting/RMI dispatchers to bind decoded arguments
// to method parameter types, and by the SCOOPP proxy to bind results.
func Assign(dst reflect.Type, v any) (reflect.Value, error) {
	if v == nil {
		return reflect.Zero(dst), nil
	}
	rv := reflect.ValueOf(v)
	if rv.Type() == dst {
		return rv, nil
	}
	if rv.Type().AssignableTo(dst) {
		return rv, nil
	}
	switch dst.Kind() {
	case reflect.Interface:
		if rv.Type().Implements(dst) {
			return rv, nil
		}
	case reflect.Pointer:
		if rv.Kind() == reflect.Pointer {
			if rv.IsNil() {
				return reflect.Zero(dst), nil
			}
			inner, err := Assign(dst.Elem(), rv.Elem().Interface())
			if err != nil {
				return reflect.Value{}, err
			}
			ptr := reflect.New(dst.Elem())
			ptr.Elem().Set(inner)
			return ptr, nil
		}
		inner, err := Assign(dst.Elem(), v)
		if err != nil {
			return reflect.Value{}, err
		}
		ptr := reflect.New(dst.Elem())
		ptr.Elem().Set(inner)
		return ptr, nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		switch rv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			return reflect.ValueOf(rv.Int()).Convert(dst), nil
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			return reflect.ValueOf(int64(rv.Uint())).Convert(dst), nil
		case reflect.Float32, reflect.Float64:
			return reflect.ValueOf(int64(rv.Float())).Convert(dst), nil
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		switch rv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			return reflect.ValueOf(uint64(rv.Int())).Convert(dst), nil
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			return reflect.ValueOf(rv.Uint()).Convert(dst), nil
		}
	case reflect.Float32, reflect.Float64:
		switch rv.Kind() {
		case reflect.Float32, reflect.Float64:
			return reflect.ValueOf(rv.Float()).Convert(dst), nil
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			return reflect.ValueOf(float64(rv.Int())).Convert(dst), nil
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			return reflect.ValueOf(float64(rv.Uint())).Convert(dst), nil
		}
	case reflect.Slice:
		if rv.Kind() == reflect.Slice {
			out := reflect.MakeSlice(dst, rv.Len(), rv.Len())
			for i := 0; i < rv.Len(); i++ {
				el, err := Assign(dst.Elem(), rv.Index(i).Interface())
				if err != nil {
					return reflect.Value{}, fmt.Errorf("element %d: %w", i, err)
				}
				out.Index(i).Set(el)
			}
			return out, nil
		}
	case reflect.Map:
		if m, ok := v.(map[string]any); ok && dst.Key().Kind() == reflect.String {
			out := reflect.MakeMapWithSize(dst, len(m))
			for k, mv := range m {
				ev, err := Assign(dst.Elem(), mv)
				if err != nil {
					return reflect.Value{}, fmt.Errorf("key %q: %w", k, err)
				}
				out.SetMapIndex(reflect.ValueOf(k).Convert(dst.Key()), ev)
			}
			return out, nil
		}
	case reflect.Struct:
		if rv.Kind() == reflect.Pointer && !rv.IsNil() && rv.Elem().Type() == dst {
			return rv.Elem(), nil
		}
		if m, ok := v.(map[string]any); ok {
			ptr := reflect.New(dst)
			for k, mv := range m {
				if err := setStructField(ptr.Elem(), k, mv); err != nil {
					return reflect.Value{}, err
				}
			}
			return ptr.Elem(), nil
		}
	case reflect.String:
		if rv.Kind() == reflect.String {
			return rv.Convert(dst), nil
		}
	case reflect.Bool:
		if rv.Kind() == reflect.Bool {
			return rv.Convert(dst), nil
		}
	}
	return reflect.Value{}, fmt.Errorf("wire: cannot assign %T to %v", v, dst)
}

// AssignArgs binds a decoded argument list to a parameter type list,
// returning an error naming the offending position on mismatch. When
// variadic is true the final parameter type is the variadic slice type and
// surplus arguments are bound to its element type.
func AssignArgs(params []reflect.Type, args []any) ([]reflect.Value, error) {
	if len(args) != len(params) {
		return nil, fmt.Errorf("wire: got %d arguments, want %d", len(args), len(params))
	}
	out := make([]reflect.Value, len(args))
	for i, a := range args {
		v, err := Assign(params[i], a)
		if err != nil {
			return nil, fmt.Errorf("argument %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
