package wire

import (
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
)

// SoapFmt is the verbose textual codec, the analogue of the SOAP encoding
// used by the remoting HTTP channel in the paper's Fig. 8b. Values are
// encoded as s-expressions with symbolic type names and decimal number
// literals, so the encoding is typically several times larger than BinFmt —
// exactly the property that makes the HTTP channel's bandwidth collapse in
// experiment E2.
//
// Grammar (produced and consumed only by this package):
//
//	value  := "(" type rest ")"
//	type   := nil | bool | i8 | i16 | i32 | i64 | int | u8 | u16 | u32 |
//	          u64 | uint | f32 | f64 | str | bytes | arr | seq | map |
//	          struct | ptrstruct
//	arr    := elemtype count item*          (numeric/string/bool fast paths)
//	seq    := count value*                  (heterogeneous slice)
//	map    := count (key value)*
//	struct := "name" count (field value)*
//
// Strings are Go-quoted; floats use strconv 'g' formatting with full
// precision so round-trips are exact.
type SoapFmt struct{}

// Name implements Codec.
func (SoapFmt) Name() string { return "soapfmt" }

// Marshal implements Codec.
func (SoapFmt) Marshal(v any) ([]byte, error) {
	var sb strings.Builder
	if err := soapEncode(&sb, v); err != nil {
		return nil, err
	}
	return []byte(sb.String()), nil
}

// Unmarshal implements Codec.
func (SoapFmt) Unmarshal(data []byte) (any, error) {
	p := &soapParser{toks: soapTokenize(string(data))}
	v, err := p.parseValue()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("wire/soapfmt: trailing tokens after value")
	}
	return v, nil
}

func soapEncode(sb *strings.Builder, v any) error {
	if v == nil {
		sb.WriteString("(nil)")
		return nil
	}
	switch x := v.(type) {
	case bool:
		fmt.Fprintf(sb, "(bool %t)", x)
	case int8:
		fmt.Fprintf(sb, "(i8 %d)", x)
	case int16:
		fmt.Fprintf(sb, "(i16 %d)", x)
	case int32:
		fmt.Fprintf(sb, "(i32 %d)", x)
	case int64:
		fmt.Fprintf(sb, "(i64 %d)", x)
	case int:
		fmt.Fprintf(sb, "(int %d)", x)
	case uint8:
		fmt.Fprintf(sb, "(u8 %d)", x)
	case uint16:
		fmt.Fprintf(sb, "(u16 %d)", x)
	case uint32:
		fmt.Fprintf(sb, "(u32 %d)", x)
	case uint64:
		fmt.Fprintf(sb, "(u64 %d)", x)
	case uint:
		fmt.Fprintf(sb, "(uint %d)", x)
	case float32:
		fmt.Fprintf(sb, "(f32 %s)", strconv.FormatFloat(float64(x), 'g', -1, 32))
	case float64:
		fmt.Fprintf(sb, "(f64 %s)", strconv.FormatFloat(x, 'g', -1, 64))
	case string:
		fmt.Fprintf(sb, "(str %s)", strconv.Quote(x))
	case []byte:
		sb.WriteString("(bytes ")
		sb.WriteString(strconv.Itoa(len(x)))
		for _, b := range x {
			fmt.Fprintf(sb, " %d", b)
		}
		sb.WriteString(")")
	case []int:
		soapEncodeNums(sb, "int", len(x), func(i int) string { return strconv.Itoa(x[i]) })
	case []int32:
		soapEncodeNums(sb, "i32", len(x), func(i int) string { return strconv.FormatInt(int64(x[i]), 10) })
	case []int64:
		soapEncodeNums(sb, "i64", len(x), func(i int) string { return strconv.FormatInt(x[i], 10) })
	case []float32:
		soapEncodeNums(sb, "f32", len(x), func(i int) string {
			return strconv.FormatFloat(float64(x[i]), 'g', -1, 32)
		})
	case []float64:
		soapEncodeNums(sb, "f64", len(x), func(i int) string {
			return strconv.FormatFloat(x[i], 'g', -1, 64)
		})
	case []string:
		sb.WriteString("(arr str ")
		sb.WriteString(strconv.Itoa(len(x)))
		for _, s := range x {
			sb.WriteString(" ")
			sb.WriteString(strconv.Quote(s))
		}
		sb.WriteString(")")
	case []bool:
		soapEncodeNums(sb, "bool", len(x), func(i int) string { return strconv.FormatBool(x[i]) })
	case []any:
		sb.WriteString("(seq ")
		sb.WriteString(strconv.Itoa(len(x)))
		for _, el := range x {
			sb.WriteString(" ")
			if err := soapEncode(sb, el); err != nil {
				return err
			}
		}
		sb.WriteString(")")
	case map[string]any:
		return soapEncodeMap(sb, reflect.ValueOf(x))
	default:
		return soapEncodeReflect(sb, reflect.ValueOf(v))
	}
	return nil
}

func soapEncodeNums(sb *strings.Builder, elem string, n int, item func(int) string) {
	sb.WriteString("(arr ")
	sb.WriteString(elem)
	sb.WriteString(" ")
	sb.WriteString(strconv.Itoa(n))
	for i := 0; i < n; i++ {
		sb.WriteString(" ")
		sb.WriteString(item(i))
	}
	sb.WriteString(")")
}

func soapEncodeMap(sb *strings.Builder, rv reflect.Value) error {
	keys := make([]string, 0, rv.Len())
	for _, k := range rv.MapKeys() {
		keys = append(keys, k.String())
	}
	sortStrings(keys)
	sb.WriteString("(map ")
	sb.WriteString(strconv.Itoa(len(keys)))
	for _, k := range keys {
		sb.WriteString(" ")
		sb.WriteString(strconv.Quote(k))
		sb.WriteString(" ")
		if err := soapEncode(sb, rv.MapIndex(reflect.ValueOf(k)).Interface()); err != nil {
			return err
		}
	}
	sb.WriteString(")")
	return nil
}

func soapEncodeReflect(sb *strings.Builder, rv reflect.Value) error {
	switch rv.Kind() {
	case reflect.Pointer:
		if rv.IsNil() {
			sb.WriteString("(nil)")
			return nil
		}
		if rv.Elem().Kind() == reflect.Struct {
			return soapEncodeStruct(sb, rv.Elem(), "ptrstruct")
		}
		return soapEncode(sb, rv.Elem().Interface())
	case reflect.Struct:
		return soapEncodeStruct(sb, rv, "struct")
	case reflect.Slice, reflect.Array:
		sb.WriteString("(seq ")
		sb.WriteString(strconv.Itoa(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			sb.WriteString(" ")
			if err := soapEncode(sb, rv.Index(i).Interface()); err != nil {
				return err
			}
		}
		sb.WriteString(")")
		return nil
	case reflect.Map:
		if rv.Type().Key().Kind() != reflect.String {
			return &UnsupportedTypeError{Type: rv.Type()}
		}
		return soapEncodeMap(sb, rv)
	case reflect.Interface:
		if rv.IsNil() {
			sb.WriteString("(nil)")
			return nil
		}
		return soapEncode(sb, rv.Elem().Interface())
	}
	return &UnsupportedTypeError{Type: rv.Type()}
}

func soapEncodeStruct(sb *strings.Builder, rv reflect.Value, kw string) error {
	name, ok := nameOf(rv.Type())
	if !ok {
		return &UnsupportedTypeError{Type: rv.Type()}
	}
	fields := fieldsOf(rv.Type())
	sb.WriteString("(")
	sb.WriteString(kw)
	sb.WriteString(" ")
	sb.WriteString(strconv.Quote(name))
	sb.WriteString(" ")
	sb.WriteString(strconv.Itoa(len(fields)))
	for _, f := range fields {
		sb.WriteString(" ")
		sb.WriteString(strconv.Quote(f.name))
		sb.WriteString(" ")
		if err := soapEncode(sb, rv.Field(f.index).Interface()); err != nil {
			return err
		}
	}
	sb.WriteString(")")
	return nil
}

// soapTokenize splits the textual form into parens, quoted strings and
// atoms. Quoted strings keep their quotes for strconv.Unquote.
func soapTokenize(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\n' || c == '\t' || c == '\r':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(s) {
				if s[j] == '\\' {
					j += 2
					continue
				}
				if s[j] == '"' {
					break
				}
				j++
			}
			if j >= len(s) {
				j = len(s) - 1
			}
			toks = append(toks, s[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(s) && s[j] != ' ' && s[j] != '(' && s[j] != ')' &&
				s[j] != '\n' && s[j] != '\t' && s[j] != '\r' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

type soapParser struct {
	toks []string
	pos  int
}

func (p *soapParser) eof() bool { return p.pos >= len(p.toks) }

func (p *soapParser) next() (string, error) {
	if p.eof() {
		return "", fmt.Errorf("wire/soapfmt: unexpected end of input")
	}
	t := p.toks[p.pos]
	p.pos++
	return t, nil
}

func (p *soapParser) expect(tok string) error {
	t, err := p.next()
	if err != nil {
		return err
	}
	if t != tok {
		return fmt.Errorf("wire/soapfmt: expected %q, got %q", tok, t)
	}
	return nil
}

func (p *soapParser) nextInt() (int64, error) {
	t, err := p.next()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wire/soapfmt: bad integer %q", t)
	}
	return n, nil
}

func (p *soapParser) nextUint() (uint64, error) {
	t, err := p.next()
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseUint(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("wire/soapfmt: bad unsigned integer %q", t)
	}
	return n, nil
}

func (p *soapParser) nextFloat(bits int) (float64, error) {
	t, err := p.next()
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(t, bits)
	if err != nil {
		return 0, fmt.Errorf("wire/soapfmt: bad float %q", t)
	}
	return f, nil
}

func (p *soapParser) nextString() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	s, err := strconv.Unquote(t)
	if err != nil {
		return "", fmt.Errorf("wire/soapfmt: bad string token %q", t)
	}
	return s, nil
}

func (p *soapParser) parseValue() (any, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	kind, err := p.next()
	if err != nil {
		return nil, err
	}
	var out any
	switch kind {
	case "nil":
		out = nil
	case "bool":
		t, err := p.next()
		if err != nil {
			return nil, err
		}
		out = t == "true"
	case "i8":
		n, err := p.nextInt()
		if err != nil {
			return nil, err
		}
		out = int8(n)
	case "i16":
		n, err := p.nextInt()
		if err != nil {
			return nil, err
		}
		out = int16(n)
	case "i32":
		n, err := p.nextInt()
		if err != nil {
			return nil, err
		}
		out = int32(n)
	case "i64":
		n, err := p.nextInt()
		if err != nil {
			return nil, err
		}
		out = n
	case "int":
		n, err := p.nextInt()
		if err != nil {
			return nil, err
		}
		out = int(n)
	case "u8":
		n, err := p.nextUint()
		if err != nil {
			return nil, err
		}
		out = uint8(n)
	case "u16":
		n, err := p.nextUint()
		if err != nil {
			return nil, err
		}
		out = uint16(n)
	case "u32":
		n, err := p.nextUint()
		if err != nil {
			return nil, err
		}
		out = uint32(n)
	case "u64":
		n, err := p.nextUint()
		if err != nil {
			return nil, err
		}
		out = n
	case "uint":
		n, err := p.nextUint()
		if err != nil {
			return nil, err
		}
		out = uint(n)
	case "f32":
		f, err := p.nextFloat(32)
		if err != nil {
			return nil, err
		}
		out = float32(f)
	case "f64":
		f, err := p.nextFloat(64)
		if err != nil {
			return nil, err
		}
		out = f
	case "str":
		s, err := p.nextString()
		if err != nil {
			return nil, err
		}
		out = s
	case "bytes":
		n, err := p.nextInt()
		if err != nil {
			return nil, err
		}
		b := make([]byte, n)
		for i := range b {
			u, err := p.nextUint()
			if err != nil {
				return nil, err
			}
			if u > math.MaxUint8 {
				return nil, fmt.Errorf("wire/soapfmt: byte value %d out of range", u)
			}
			b[i] = byte(u)
		}
		out = b
	case "arr":
		v, err := p.parseArray()
		if err != nil {
			return nil, err
		}
		out = v
	case "seq":
		n, err := p.nextInt()
		if err != nil {
			return nil, err
		}
		seq := make([]any, n)
		for i := range seq {
			seq[i], err = p.parseValue()
			if err != nil {
				return nil, err
			}
		}
		out = seq
	case "map":
		n, err := p.nextInt()
		if err != nil {
			return nil, err
		}
		m := make(map[string]any, n)
		for i := int64(0); i < n; i++ {
			k, err := p.nextString()
			if err != nil {
				return nil, err
			}
			m[k], err = p.parseValue()
			if err != nil {
				return nil, err
			}
		}
		out = m
	case "struct", "ptrstruct":
		v, err := p.parseStruct()
		if err != nil {
			return nil, err
		}
		if kind == "struct" {
			out = v.Elem().Interface()
		} else {
			out = v.Interface()
		}
	default:
		return nil, fmt.Errorf("wire/soapfmt: unknown value kind %q", kind)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *soapParser) parseArray() (any, error) {
	elem, err := p.next()
	if err != nil {
		return nil, err
	}
	n, err := p.nextInt()
	if err != nil {
		return nil, err
	}
	switch elem {
	case "int":
		out := make([]int, n)
		for i := range out {
			v, err := p.nextInt()
			if err != nil {
				return nil, err
			}
			out[i] = int(v)
		}
		return out, nil
	case "i32":
		out := make([]int32, n)
		for i := range out {
			v, err := p.nextInt()
			if err != nil {
				return nil, err
			}
			out[i] = int32(v)
		}
		return out, nil
	case "i64":
		out := make([]int64, n)
		for i := range out {
			v, err := p.nextInt()
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case "f32":
		out := make([]float32, n)
		for i := range out {
			v, err := p.nextFloat(32)
			if err != nil {
				return nil, err
			}
			out[i] = float32(v)
		}
		return out, nil
	case "f64":
		out := make([]float64, n)
		for i := range out {
			v, err := p.nextFloat(64)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case "str":
		out := make([]string, n)
		for i := range out {
			v, err := p.nextString()
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	case "bool":
		out := make([]bool, n)
		for i := range out {
			t, err := p.next()
			if err != nil {
				return nil, err
			}
			out[i] = t == "true"
		}
		return out, nil
	}
	return nil, fmt.Errorf("wire/soapfmt: unknown array element kind %q", elem)
}

func (p *soapParser) parseStruct() (reflect.Value, error) {
	name, err := p.nextString()
	if err != nil {
		return reflect.Value{}, err
	}
	t, ok := lookupName(name)
	if !ok {
		return reflect.Value{}, &UnknownTypeError{Name: name}
	}
	n, err := p.nextInt()
	if err != nil {
		return reflect.Value{}, err
	}
	ptr := reflect.New(t)
	for i := int64(0); i < n; i++ {
		fname, err := p.nextString()
		if err != nil {
			return reflect.Value{}, err
		}
		v, err := p.parseValue()
		if err != nil {
			return reflect.Value{}, err
		}
		if err := setStructField(ptr.Elem(), fname, v); err != nil {
			return reflect.Value{}, err
		}
	}
	return ptr, nil
}
