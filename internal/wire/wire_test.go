package wire

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

type testNested struct {
	Label string
	Vals  []float64
}

type testMessage struct {
	ID      int64
	Name    string
	Flags   []bool
	Data    []byte
	Scores  []int32
	Nested  testNested
	PtrN    *testNested
	Meta    map[string]any
	Skip    int `json:"-"`
	private int
}

func init() {
	Register(testNested{})
	Register(testMessage{})
}

func sampleMessage() testMessage {
	return testMessage{
		ID:     42,
		Name:   "ping-pong",
		Flags:  []bool{true, false, true},
		Data:   []byte{0, 1, 2, 255},
		Scores: []int32{-1, 0, 7, 1 << 20},
		Nested: testNested{Label: "n", Vals: []float64{1.5, -2.25}},
		PtrN:   &testNested{Label: "p", Vals: []float64{3}},
		Meta:   map[string]any{"a": int64(1), "b": "x"},
		Skip:   9,
	}
}

func allCodecs(t *testing.T) []Codec {
	t.Helper()
	return []Codec{BinFmt{}, JavaSer{}, SoapFmt{}}
}

func roundtrip(t *testing.T, c Codec, v any) any {
	t.Helper()
	data, err := c.Marshal(v)
	if err != nil {
		t.Fatalf("%s: Marshal(%#v): %v", c.Name(), v, err)
	}
	got, err := c.Unmarshal(data)
	if err != nil {
		t.Fatalf("%s: Unmarshal(%#v): %v", c.Name(), v, err)
	}
	return got
}

func TestRoundtripScalars(t *testing.T) {
	values := []any{
		nil,
		true, false,
		int8(-5), int16(300), int32(-70000), int64(1 << 40), int(-3),
		uint8(200), uint16(60000), uint32(4000000000), uint64(1 << 60), uint(17),
		float32(1.5), float64(-2.25), math.Pi,
		"", "hello", "quotes \" and \\ and (parens)", "unicode £€日本",
	}
	for _, c := range allCodecs(t) {
		for _, v := range values {
			got := roundtrip(t, c, v)
			if !reflect.DeepEqual(got, v) {
				t.Errorf("%s: roundtrip(%#v) = %#v", c.Name(), v, got)
			}
		}
	}
}

func TestRoundtripSlices(t *testing.T) {
	values := []any{
		[]byte{}, []byte{1, 2, 3},
		[]int{-1, 0, 1 << 30}, []int32{5}, []int64{-9, 9},
		[]float32{0.5}, []float64{1e-9, 1e9},
		[]string{"a", "", "c c"}, []bool{true, false},
		[]any{int(1), "two", []int{3}, nil},
	}
	for _, c := range allCodecs(t) {
		for _, v := range values {
			got := roundtrip(t, c, v)
			if !reflect.DeepEqual(got, v) {
				t.Errorf("%s: roundtrip(%#v) = %#v", c.Name(), v, got)
			}
		}
	}
}

func TestRoundtripEmptySlicesKeepType(t *testing.T) {
	for _, c := range allCodecs(t) {
		got := roundtrip(t, c, []int{})
		if _, ok := got.([]int); !ok {
			t.Errorf("%s: empty []int decoded as %T", c.Name(), got)
		}
	}
}

func TestRoundtripMap(t *testing.T) {
	v := map[string]any{"x": int(1), "y": "z", "nested": map[string]any{"k": true}}
	for _, c := range allCodecs(t) {
		got := roundtrip(t, c, v)
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%s: roundtrip map = %#v", c.Name(), got)
		}
	}
}

func TestRoundtripStruct(t *testing.T) {
	msg := sampleMessage()
	want := msg
	// Unexported and decode-side-only fields do not travel.
	want.Skip = 9
	want.private = 0
	for _, c := range allCodecs(t) {
		got := roundtrip(t, c, msg)
		gm, ok := got.(testMessage)
		if !ok {
			t.Fatalf("%s: struct decoded as %T", c.Name(), got)
		}
		// Skip is exported so it travels; private must not.
		if gm.private != 0 {
			t.Errorf("%s: private field leaked: %d", c.Name(), gm.private)
		}
		gm.private = want.private
		if !reflect.DeepEqual(gm, want) {
			t.Errorf("%s: roundtrip struct =\n%#v\nwant\n%#v", c.Name(), gm, want)
		}
	}
}

func TestRoundtripStructPointer(t *testing.T) {
	msg := sampleMessage()
	for _, c := range allCodecs(t) {
		got := roundtrip(t, c, &msg)
		gp, ok := got.(*testMessage)
		if !ok {
			t.Fatalf("%s: struct pointer decoded as %T", c.Name(), got)
		}
		if gp.ID != msg.ID || gp.Name != msg.Name {
			t.Errorf("%s: pointer roundtrip mismatch: %+v", c.Name(), gp)
		}
	}
}

func TestRoundtripNilPointer(t *testing.T) {
	var p *testNested
	for _, c := range allCodecs(t) {
		got := roundtrip(t, c, p)
		if got != nil {
			t.Errorf("%s: nil pointer decoded as %#v", c.Name(), got)
		}
	}
}

func TestUnregisteredStructFails(t *testing.T) {
	type unregistered struct{ X int }
	for _, c := range allCodecs(t) {
		if _, err := c.Marshal(unregistered{X: 1}); err == nil {
			t.Errorf("%s: expected error for unregistered struct", c.Name())
		}
	}
}

func TestUnknownTypeNameFails(t *testing.T) {
	// Craft a message naming a type the decoder does not know by
	// registering under one name in a scratch encoder path: simplest is
	// to corrupt the name in a binfmt message.
	data, err := BinFmt{}.Marshal(testNested{Label: "x"})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	s = strings.Replace(s, "wire.testNested", "wire.doesNotExist", 1)
	if len(s) != len(data) {
		t.Skip("type name not found in encoding")
	}
	if _, err := (BinFmt{}).Unmarshal([]byte(s)); err == nil {
		t.Error("expected UnknownTypeError")
	}
}

func TestTruncatedMessages(t *testing.T) {
	msg := sampleMessage()
	for _, c := range allCodecs(t) {
		data, err := c.Marshal(msg)
		if err != nil {
			t.Fatal(err)
		}
		for _, cut := range []int{1, len(data) / 4, len(data) / 2, len(data) - 1} {
			if cut >= len(data) {
				continue
			}
			if _, err := c.Unmarshal(data[:cut]); err == nil {
				t.Errorf("%s: truncation at %d bytes accepted", c.Name(), cut)
			}
		}
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	for _, c := range []Codec{BinFmt{}, SoapFmt{}} {
		data, err := c.Marshal(int(5))
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, data...)
		if _, err := c.Unmarshal(data); err == nil {
			t.Errorf("%s: trailing garbage accepted", c.Name())
		}
	}
}

func TestJavaSerMagicRequired(t *testing.T) {
	if _, err := (JavaSer{}).Unmarshal([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Error("bad magic accepted")
	}
}

// TestSizeOrdering checks the expansion property the ablation A3 depends on:
// for a representative RPC payload, soapfmt > javaser > binfmt.
func TestSizeOrdering(t *testing.T) {
	nums := make([]int32, 256)
	for i := range nums {
		nums[i] = int32(1_000_000 + 3643*i) // realistic non-zero payload
	}
	payload := []any{"process", sampleMessage(), nums}
	sizes := map[string]int{}
	for _, c := range allCodecs(t) {
		data, err := c.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		sizes[c.Name()] = len(data)
	}
	if !(sizes["binfmt"] < sizes["javaser"]) {
		t.Errorf("binfmt (%d) not smaller than javaser (%d)", sizes["binfmt"], sizes["javaser"])
	}
	if !(sizes["javaser"] < sizes["soapfmt"]) {
		t.Errorf("javaser (%d) not smaller than soapfmt (%d)", sizes["javaser"], sizes["soapfmt"])
	}
}

// TestBinFmtInterningShrinksRepeats verifies that repeated struct values get
// cheaper after the first occurrence (the BinaryFormatter id-table effect),
// while javaser pays the descriptor every time.
func TestBinFmtInterningShrinksRepeats(t *testing.T) {
	one, err := BinFmt{}.Marshal([]any{testNested{Label: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	many := make([]any, 8)
	for i := range many {
		many[i] = testNested{Label: "a"}
	}
	eight, err := BinFmt{}.Marshal(many)
	if err != nil {
		t.Fatal(err)
	}
	perExtra := (len(eight) - len(one)) / 7
	if perExtra >= len(one) {
		t.Errorf("binfmt repeats not interned: first=%d, per-extra=%d", len(one), perExtra)
	}

	jone, err := JavaSer{}.Marshal([]any{testNested{Label: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	jeight, err := JavaSer{}.Marshal(many)
	if err != nil {
		t.Fatal(err)
	}
	jPerExtra := (len(jeight) - len(jone)) / 7
	if jPerExtra <= perExtra {
		t.Errorf("javaser repeats (%d B) unexpectedly cheaper than binfmt (%d B)", jPerExtra, perExtra)
	}
}

// quickValue is the generator domain for property-based round-trip testing.
type quickValue struct {
	I   int64
	U   uint32
	F   float64
	S   string
	B   []byte
	Is  []int
	Fs  []float64
	Ss  []string
	Sub testNested
}

func init() { Register(quickValue{}) }

func TestQuickRoundtrip(t *testing.T) {
	for _, c := range allCodecs(t) {
		c := c
		f := func(v quickValue) bool {
			if v.F != v.F { // NaN never compares equal; skip.
				return true
			}
			for _, x := range v.Fs {
				if x != x {
					return true
				}
			}
			for _, x := range v.Sub.Vals {
				if x != x {
					return true
				}
			}
			data, err := c.Marshal(v)
			if err != nil {
				t.Logf("%s: marshal: %v", c.Name(), err)
				return false
			}
			got, err := c.Unmarshal(data)
			if err != nil {
				t.Logf("%s: unmarshal: %v", c.Name(), err)
				return false
			}
			gv, ok := got.(quickValue)
			if !ok {
				return false
			}
			return quickEqual(gv, v)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

// quickEqual compares treating nil and empty slices as equal, which is the
// documented decode canonicalisation.
func quickEqual(a, b quickValue) bool {
	norm := func(v *quickValue) {
		if len(v.B) == 0 {
			v.B = nil
		}
		if len(v.Is) == 0 {
			v.Is = nil
		}
		if len(v.Fs) == 0 {
			v.Fs = nil
		}
		if len(v.Ss) == 0 {
			v.Ss = nil
		}
		if len(v.Sub.Vals) == 0 {
			v.Sub.Vals = nil
		}
	}
	norm(&a)
	norm(&b)
	return reflect.DeepEqual(a, b)
}

func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("non-struct", func() { Register(42) })
	mustPanic("rebind", func() {
		RegisterName("wire.rebindTest", testNested{})
		RegisterName("wire.rebindTest", testMessage{})
	})
	// Re-registering the same pair is a no-op.
	RegisterName("wire.rebindOK", testNested{})
	RegisterName("wire.rebindOK", testNested{})
}

func TestRegisteredName(t *testing.T) {
	if n, ok := RegisteredName(testNested{}); !ok || n != "wire.testNested" {
		t.Errorf("RegisteredName = %q, %v", n, ok)
	}
	if n, ok := RegisteredName(&testNested{}); !ok || n != "wire.testNested" {
		t.Errorf("RegisteredName(ptr) = %q, %v", n, ok)
	}
	if _, ok := RegisteredName(42); ok {
		t.Error("RegisteredName(42) should fail")
	}
}

func FuzzBinFmtUnmarshal(f *testing.F) {
	seed, _ := BinFmt{}.Marshal(sampleMessage())
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{tStruct, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Must never panic; errors are fine.
		v, err := BinFmt{}.Unmarshal(data)
		_ = v
		_ = err
	})
}
