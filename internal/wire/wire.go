// Package wire implements the serialisation substrate shared by the three
// RPC stacks in this repository (the C#-remoting analogue, the Java-RMI
// analogue and the MPI analogue).
//
// The paper contrasts three wire formats:
//
//   - the .NET BinaryFormatter used by the remoting TCP channel — a compact
//     tagged binary format (here: Codec "binfmt"),
//   - Java object serialisation used by RMI — self-describing streams that
//     carry a full class descriptor per object plus block-data chunking
//     (here: Codec "javaser"),
//   - the SOAP encoding used by the remoting HTTP channel — a verbose
//     textual format (here: Codec "soapfmt").
//
// All three codecs share one value model: nil, booleans, fixed-width signed
// and unsigned integers, floats, strings, byte slices, fast-path numeric and
// string slices, heterogeneous slices ([]any), string-keyed maps and
// registered struct types (by value or pointer). A struct type must be
// registered with Register or RegisterName before it can cross the wire.
package wire

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// Codec converts values to and from a self-contained byte representation.
// Implementations must round-trip every value of the supported model:
// Unmarshal(Marshal(v)) yields a value equal to v modulo the canonical
// decode types documented on Unmarshal.
type Codec interface {
	// Name returns the codec's stable identifier ("binfmt", "javaser",
	// "soapfmt").
	Name() string
	// Marshal encodes v.
	Marshal(v any) ([]byte, error)
	// Unmarshal decodes a value produced by Marshal. Integers decode to
	// the width they were encoded with, struct values decode to T and
	// struct pointers to *T for the registered type T, heterogeneous
	// slices decode to []any and maps to map[string]any.
	Unmarshal(data []byte) (any, error)
}

// Tag bytes shared by the binary codecs. The textual codec uses symbolic
// names instead.
const (
	tNil byte = iota
	tTrue
	tFalse
	tInt8
	tInt16
	tInt32
	tInt64
	tInt
	tUint8
	tUint16
	tUint32
	tUint64
	tUint
	tFloat32
	tFloat64
	tString
	tBytes
	tIntSlice
	tInt32Slice
	tInt64Slice
	tFloat32Slice
	tFloat64Slice
	tStringSlice
	tBoolSlice
	tAnySlice
	tMap
	tStruct
	tPtrStruct
)

// registry maps stable names to registered struct types so that structs can
// be decoded on a node that did not produce them.
var registry = struct {
	sync.RWMutex
	byName map[string]reflect.Type
	byType map[reflect.Type]string
}{
	byName: make(map[string]reflect.Type),
	byType: make(map[reflect.Type]string),
}

// Register registers the struct type of sample under its package-qualified
// name (for example "raytracer.RenderRequest"). sample may be a value or a
// pointer; the pointed-to struct type is registered. Register panics when
// sample is not a (pointer to) struct, matching the fail-fast behaviour of
// encoding/gob.
func Register(sample any) {
	t := reflect.TypeOf(sample)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		panic(fmt.Sprintf("wire: Register called with non-struct %T", sample))
	}
	name := t.String()
	RegisterName(name, sample)
}

// RegisterName registers the struct type of sample under an explicit name.
// Registering the same name for the same type twice is a no-op; registering
// the same name for a different type panics.
func RegisterName(name string, sample any) {
	t := reflect.TypeOf(sample)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		panic(fmt.Sprintf("wire: RegisterName(%q) called with non-struct %T", name, sample))
	}
	registry.Lock()
	defer registry.Unlock()
	if prev, ok := registry.byName[name]; ok {
		if prev != t {
			panic(fmt.Sprintf("wire: name %q already registered for %v, cannot rebind to %v", name, prev, t))
		}
		return
	}
	registry.byName[name] = t
	// The first registration wins as the canonical encoding name; later
	// registrations of the same type under other names act as decode-side
	// aliases.
	if _, exists := registry.byType[t]; !exists {
		registry.byType[t] = name
	}
}

// lookupName returns the registered type for name.
func lookupName(name string) (reflect.Type, bool) {
	registry.RLock()
	defer registry.RUnlock()
	t, ok := registry.byName[name]
	return t, ok
}

// nameOf returns the registered name for a struct type.
func nameOf(t reflect.Type) (string, bool) {
	registry.RLock()
	defer registry.RUnlock()
	n, ok := registry.byType[t]
	return n, ok
}

// RegisteredName reports the wire name of the (possibly pointer) struct type
// of sample, if it has been registered.
func RegisteredName(sample any) (string, bool) {
	t := reflect.TypeOf(sample)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil {
		return "", false
	}
	return nameOf(t)
}

// structField describes one exported field of a registered struct.
type structField struct {
	name  string
	index int
}

var fieldCache sync.Map // reflect.Type -> []structField

// fieldsOf returns the exported fields of a struct type in a stable
// (alphabetical) order so that encodings are deterministic.
func fieldsOf(t reflect.Type) []structField {
	if cached, ok := fieldCache.Load(t); ok {
		return cached.([]structField)
	}
	var fields []structField
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		fields = append(fields, structField{name: f.Name, index: i})
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].name < fields[j].name })
	fieldCache.Store(t, fields)
	return fields
}

// An UnsupportedTypeError is returned when a value outside the wire model is
// encoded.
type UnsupportedTypeError struct {
	Type reflect.Type
}

func (e *UnsupportedTypeError) Error() string {
	return fmt.Sprintf("wire: unsupported type %v", e.Type)
}

// An UnknownTypeError is returned when a message names a struct type that
// has not been registered on the decoding side.
type UnknownTypeError struct {
	Name string
}

func (e *UnknownTypeError) Error() string {
	return fmt.Sprintf("wire: unknown registered type %q", e.Name)
}

// Codecs returns one instance of every codec, keyed by name. The map is
// freshly allocated on each call.
func Codecs() map[string]Codec {
	return map[string]Codec{
		"binfmt":  BinFmt{},
		"javaser": JavaSer{},
		"soapfmt": SoapFmt{},
	}
}
