package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// fuzzMsg exercises every fast-path writer/reader pair the parcgen codec
// generator emits, plus the generic Value fallback (V, Vs). Its codec below
// is written exactly in the generator's output shape, so the differential
// fuzz pits the real generated-code path against the reflective one.
type fuzzMsg struct {
	B   bool
	By  []byte
	F   float64
	F32 float32
	I   int
	I64 int64
	S   string
	Ss  []string
	U   uint32
	V   any
	Vs  []any
}

// MarshalWire mirrors parcgen output (fields in alphabetical order).
func (x *fuzzMsg) MarshalWire(e *Encoder) error {
	e.BeginStruct("wire.fuzzMsg", 11)
	e.FieldName("B")
	e.Bool(x.B)
	e.FieldName("By")
	e.ByteSlice(x.By)
	e.FieldName("F")
	e.Float64(x.F)
	e.FieldName("F32")
	e.Float32(x.F32)
	e.FieldName("I")
	e.Int(x.I)
	e.FieldName("I64")
	e.Int64(x.I64)
	e.FieldName("S")
	e.String(x.S)
	e.FieldName("Ss")
	e.StringSlice(x.Ss)
	e.FieldName("U")
	e.Uint32(x.U)
	e.FieldName("V")
	e.Value(x.V)
	e.FieldName("Vs")
	e.AnySlice(x.Vs)
	return e.Err()
}

// UnmarshalWire mirrors parcgen output.
func (x *fuzzMsg) UnmarshalWire(d *Decoder) error {
	n := d.BeginStruct()
	for i := 0; i < n && d.Err() == nil; i++ {
		switch string(d.FieldNameRaw()) {
		case "B":
			x.B = d.Bool()
		case "By":
			x.By = d.ByteSlice()
		case "F":
			x.F = d.Float64()
		case "F32":
			x.F32 = d.Float32()
		case "I":
			x.I = d.Int()
		case "I64":
			x.I64 = d.Int64()
		case "S":
			x.S = d.String()
		case "Ss":
			x.Ss = d.StringSlice()
		case "U":
			x.U = d.Uint32()
		case "V":
			x.V = d.Value()
		case "Vs":
			x.Vs = d.AnySlice()
		default:
			d.Skip()
		}
	}
	return d.Err()
}

func init() {
	RegisterGeneratedCodec[fuzzMsg]("wire.fuzzMsg")
}

// FuzzGeneratedReflectiveIdentity asserts the load-bearing invariant of the
// codec registry: for every registered type, the generated and reflective
// binfmt paths produce identical wire bytes on encode and identical values
// on decode, in both the value and pointer encodings.
func FuzzGeneratedReflectiveIdentity(f *testing.F) {
	f.Add(true, []byte{1, 2, 3}, 1.5, int64(-42), "hello", uint(7))
	f.Add(false, []byte(nil), 0.0, int64(0), "", uint(0))
	f.Add(true, []byte("x"), -2.25, int64(math.MaxInt64), "héllo wörld", uint(3))
	f.Add(false, []byte("yzw"), math.MaxFloat64, int64(math.MinInt64), "a", uint(255))
	f.Fuzz(func(t *testing.T, b bool, by []byte, fv float64, i int64, s string, u uint) {
		if math.IsNaN(fv) {
			fv = 0 // NaN never compares equal; the bit-level identity is covered by FuzzBinFmtDecode
		}
		var v any
		switch u % 4 {
		case 1:
			v = s
		case 2:
			v = int(i)
		case 3:
			v = []float64{fv, -fv}
		}
		msg := fuzzMsg{
			B: b, By: by, F: fv, F32: float32(fv), I: int(i), I64: i ^ 3,
			S: s, Ss: []string{s, "fixed"}, U: uint32(u), V: v,
			Vs: []any{s, int(i), by},
		}
		gen := BinFmt{}
		refl := BinFmt{DisableGenerated: true}

		for _, in := range []any{&msg, msg} {
			gb, err := gen.Marshal(in)
			if err != nil {
				t.Fatalf("generated marshal %T: %v", in, err)
			}
			rb, err := refl.Marshal(in)
			if err != nil {
				t.Fatalf("reflective marshal %T: %v", in, err)
			}
			if !bytes.Equal(gb, rb) {
				t.Fatalf("wire bytes differ for %T:\n generated: %x\nreflective: %x", in, gb, rb)
			}
			gv, err := gen.Unmarshal(gb)
			if err != nil {
				t.Fatalf("generated unmarshal: %v", err)
			}
			rv, err := refl.Unmarshal(gb)
			if err != nil {
				t.Fatalf("reflective unmarshal: %v", err)
			}
			if !reflect.DeepEqual(gv, rv) {
				t.Fatalf("decoded values differ:\n generated: %#v\nreflective: %#v", gv, rv)
			}
		}
	})
}

// FuzzBinFmtDecode feeds arbitrary bytes to both decoders: they must agree
// on accept/reject and on the decoded value, never panic, and every
// accepted value must re-encode canonically (marshal -> unmarshal ->
// marshal yields identical bytes, which also covers NaN payloads at the
// bit level).
func FuzzBinFmtDecode(f *testing.F) {
	gen := BinFmt{}
	refl := BinFmt{DisableGenerated: true}
	seedVals := []any{
		nil, true, int(5), int64(-9), uint16(40000), 3.14, "seed", []byte{0xff, 0x00},
		[]int{1, 2, 3}, []string{"a", "b"}, []any{int(1), "two", nil},
		map[string]any{"k": int(1), "s": "v"},
		fuzzMsg{S: "struct seed", I: 7, Vs: []any{int(1)}},
		&fuzzMsg{By: []byte("ptr seed"), F: 2.5},
	}
	for _, v := range seedVals {
		data, err := gen.Marshal(v)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x00, 0x07})
	f.Fuzz(func(t *testing.T, data []byte) {
		gv, gerr := gen.Unmarshal(data)
		rv, rerr := refl.Unmarshal(data)
		if (gerr == nil) != (rerr == nil) {
			t.Fatalf("decoders disagree on acceptance: generated err=%v, reflective err=%v", gerr, rerr)
		}
		if gerr != nil {
			return
		}
		m1, err := gen.Marshal(gv)
		if err != nil {
			t.Fatalf("re-marshal of decoded value: %v", err)
		}
		if !reflect.DeepEqual(gv, rv) {
			// DeepEqual cannot see through NaN payloads; the canonical
			// encodings compare them at the bit level.
			mr, err := gen.Marshal(rv)
			if err != nil || !bytes.Equal(m1, mr) {
				t.Fatalf("decoders disagree on value (re-marshal err=%v):\n generated: %#v\nreflective: %#v", err, gv, rv)
			}
		}
		// Canonical re-encode must be stable through another round trip.
		v2, err := gen.Unmarshal(m1)
		if err != nil {
			t.Fatalf("decode of canonical re-encode: %v", err)
		}
		m2, err := gen.Marshal(v2)
		if err != nil {
			t.Fatalf("second re-marshal: %v", err)
		}
		if !bytes.Equal(m1, m2) {
			t.Fatalf("canonical encoding unstable:\n first: %x\nsecond: %x", m1, m2)
		}
	})
}

// TestGeneratedCodecSeedCorpus replays the checked-in corpus explicitly, so
// plain `go test` (CI) covers the same inputs `go test -fuzz` starts from.
func TestGeneratedCodecSeedCorpus(t *testing.T) {
	gen := BinFmt{}
	refl := BinFmt{DisableGenerated: true}
	msg := &fuzzMsg{
		B: true, By: []byte{9, 8}, F: -1.25, F32: 4.5, I: -3, I64: 1 << 40,
		S: "corpus", Ss: []string{"x", "y"}, U: 77, V: map[string]any{"n": int(1)},
		Vs: []any{[]int32{5}, "s", nil},
	}
	gb, err := gen.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := refl.Marshal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb, rb) {
		t.Fatalf("wire bytes differ:\n generated: %x\nreflective: %x", gb, rb)
	}
	gv, err := gen.Unmarshal(gb)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := gv.(*fuzzMsg)
	if !ok {
		t.Fatalf("decoded %T, want *fuzzMsg", gv)
	}
	if !reflect.DeepEqual(got, msg) {
		t.Fatalf("round trip mangled value:\n got: %#v\nwant: %#v", got, msg)
	}
}
