package core

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// vjournalObj is a virtual class with exported state so replication
// snapshots carry it.
type vjournalObj struct {
	Vals []int64
}

func (j *vjournalObj) Append(v int64) { j.Vals = append(j.Vals, v) }
func (j *vjournalObj) Len() int       { return len(j.Vals) }
func (j *vjournalObj) Sum() int64 {
	var s int64
	for _, v := range j.Vals {
		s += v
	}
	return s
}

// registerVirtualJournal registers the class identically on every node,
// as virtual registration requires.
func registerVirtualJournal(rts []*Runtime, cfg VirtualConfig) {
	for _, rt := range rts {
		rt.RegisterVirtualClass("vjournal", func() any { return &vjournalObj{} }, cfg)
	}
}

// hostOf returns the runtimes currently hosting a live actor for uri.
func hostOf(rts []*Runtime, uri string) []int {
	var hosts []int
	for _, rt := range rts {
		rt.actorsMu.Lock()
		hosted := rt.actors[uri] != nil
		rt.actorsMu.Unlock()
		if hosted {
			hosts = append(hosts, rt.cfg.NodeID)
		}
	}
	return hosts
}

// TestVirtualActivateOnDemand: the first call activates the object on its
// ring owner; later calls from any node reach the same instance.
func TestVirtualActivateOnDemand(t *testing.T) {
	rts := startNodes(t, 3, nil)
	registerVirtualJournal(rts, VirtualConfig{})

	p, err := rts[0].VirtualObject("vjournal", "k0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("Append", int64(7)); err != nil {
		t.Fatal(err)
	}
	owner, ok := rts[0].VirtualOwner("vjournal", "k0")
	if !ok {
		t.Fatal("no ring owner")
	}
	uri := VirtualURI("vjournal", "k0")
	if hosts := hostOf(rts, uri); len(hosts) != 1 || hosts[0] != owner {
		t.Fatalf("hosted on %v, want exactly ring owner %d", hosts, owner)
	}

	// A second caller on a different node must reach the same instance,
	// not activate a second one.
	p2, err := rts[1].VirtualObject("vjournal", "k0")
	if err != nil {
		t.Fatal(err)
	}
	got, err := p2.Invoke("Len")
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("Len via node 1 = %v, want 1 (same instance)", got)
	}
	if hosts := hostOf(rts, uri); len(hosts) != 1 {
		t.Errorf("hosted on %v after second caller, want one host", hosts)
	}
}

// TestVirtualUnregisteredClass: VirtualObject on a class not registered
// virtual fails rather than activating something untracked.
func TestVirtualUnregisteredClass(t *testing.T) {
	rts := startNodes(t, 1, nil)
	if _, err := rts[0].VirtualObject("counter", "k"); err == nil {
		t.Error("VirtualObject on a non-virtual class should fail")
	}
}

// TestVirtualOwnerAgreement: every node's membership view names the same
// owner for the same key.
func TestVirtualOwnerAgreement(t *testing.T) {
	rts := startNodes(t, 3, nil)
	registerVirtualJournal(rts, VirtualConfig{})
	for k := 0; k < 20; k++ {
		key := fmt.Sprintf("k%d", k)
		o0, ok := rts[0].VirtualOwner("vjournal", key)
		if !ok {
			t.Fatal("no owner")
		}
		for _, rt := range rts[1:] {
			if o, _ := rt.VirtualOwner("vjournal", key); o != o0 {
				t.Fatalf("key %s: node %d says owner %d, node 0 says %d", key, rt.cfg.NodeID, o, o0)
			}
		}
	}
}

// TestVirtualActivationDuel: concurrent first calls to the same keys from
// every node must converge on one live instance per key that sees every
// call — the single-flight + ring-order serialisation, raced under -race.
func TestVirtualActivationDuel(t *testing.T) {
	rts := startNodes(t, 3, nil)
	registerVirtualJournal(rts, VirtualConfig{})

	const keys, callersPerNode, callsEach = 8, 2, 5
	var wg sync.WaitGroup
	errCh := make(chan error, len(rts)*callersPerNode*keys)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("duel%d", k)
		for _, rt := range rts {
			for c := 0; c < callersPerNode; c++ {
				wg.Add(1)
				go func(rt *Runtime, key string) {
					defer wg.Done()
					p, err := rt.VirtualObject("vjournal", key)
					if err != nil {
						errCh <- fmt.Errorf("node %d key %s: %w", rt.cfg.NodeID, key, err)
						return
					}
					for i := 0; i < callsEach; i++ {
						if _, err := p.Invoke("Append", int64(1)); err != nil {
							errCh <- fmt.Errorf("node %d key %s call %d: %w", rt.cfg.NodeID, key, i, err)
							return
						}
					}
				}(rt, key)
			}
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	want := len(rts) * callersPerNode * callsEach
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("duel%d", k)
		uri := VirtualURI("vjournal", key)
		if hosts := hostOf(rts, uri); len(hosts) != 1 {
			t.Errorf("key %s hosted on %v, want exactly one node", key, hosts)
		}
		p, err := rts[0].VirtualObject("vjournal", key)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Invoke("Len")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("key %s: Len = %v, want %d (duel lost calls or split the instance)", key, got, want)
		}
	}
}

// TestHealthRecoveryHysteresis: a suspect or down peer needs
// peerRecoverAfter consecutive probe successes to be graded alive again —
// one lucky probe against a flapping peer must not re-admit it.
func TestHealthRecoveryHysteresis(t *testing.T) {
	rts := startNodes(t, 2, func(i int, cfg *Config) {
		cfg.Placement = LocalOnly{}
	})
	rt := rts[0]

	rt.noteProbe(1, false)
	if got := rt.PeerStatusOf(1); got != PeerSuspect {
		t.Fatalf("after 1 failure: %v, want suspect", got)
	}
	rt.noteProbe(1, true)
	if got := rt.PeerStatusOf(1); got != PeerSuspect {
		t.Errorf("after 1 success: %v, want still suspect (hysteresis)", got)
	}
	rt.noteProbe(1, true)
	if got := rt.PeerStatusOf(1); got != PeerAlive {
		t.Errorf("after 2 consecutive successes: %v, want alive", got)
	}

	// From down, an interleaved failure resets the success streak.
	for i := 0; i < peerDownAfter; i++ {
		rt.noteProbe(1, false)
	}
	if got := rt.PeerStatusOf(1); got != PeerDown {
		t.Fatalf("after %d failures: %v, want down", peerDownAfter, got)
	}
	rt.noteProbe(1, true)
	rt.noteProbe(1, false)
	rt.noteProbe(1, true)
	if got := rt.PeerStatusOf(1); got != PeerDown {
		t.Errorf("success streak broken by a failure: %v, want still down", got)
	}
	rt.noteProbe(1, true)
	if got := rt.PeerStatusOf(1); got != PeerAlive {
		t.Errorf("after 2 consecutive successes from down: %v, want alive", got)
	}
}

// markDownOn drives a peer to Down on every given runtime via direct probe
// outcomes (the unit-test stand-in for the health loop observing a death).
func markDownOn(rts []*Runtime, node int) {
	for _, rt := range rts {
		if rt.cfg.NodeID == node {
			continue
		}
		for i := 0; i < peerDownAfter; i++ {
			rt.noteProbe(node, false)
		}
	}
}

// TestVirtualFailoverPromotesReplica: with synchronous replication, killing
// the owner loses no acknowledged call — a surviving replica holder
// promotes its snapshot and callers re-route to it.
func TestVirtualFailoverPromotesReplica(t *testing.T) {
	rts := startNodes(t, 3, nil)
	registerVirtualJournal(rts, VirtualConfig{Replicas: 1, SnapshotEvery: 1})

	p, err := rts[0].VirtualObject("vjournal", "hot")
	if err != nil {
		t.Fatal(err)
	}
	const calls = 6
	for i := 1; i <= calls; i++ {
		if _, err := p.Invoke("Append", int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	owner, _ := rts[0].VirtualOwner("vjournal", "hot")

	var survivors []*Runtime
	for _, rt := range rts {
		if rt.cfg.NodeID != owner {
			survivors = append(survivors, rt)
		}
	}
	rts[owner].Close()
	markDownOn(survivors, owner)

	// The promotion runs asynchronously off the Down transition; poll until
	// a survivor serves the full state.
	caller := survivors[0]
	deadline := time.Now().Add(5 * time.Second)
	for {
		p2, err := caller.VirtualObject("vjournal", "hot")
		if err == nil {
			got, ierr := p2.Invoke("Len")
			if ierr == nil {
				if got != calls {
					t.Fatalf("Len after failover = %v, want %d (acknowledged calls lost)", got, calls)
				}
				sum, serr := p2.Invoke("Sum")
				if serr != nil {
					t.Fatal(serr)
				}
				if sum != int64(1+2+3+4+5+6) {
					t.Fatalf("Sum after failover = %v, want 21", sum)
				}
				break
			}
			err = ierr
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover did not converge: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	promotions := int64(0)
	for _, rt := range survivors {
		promotions += rt.Stats().ReplicaPromotions
	}
	if promotions != 1 {
		t.Errorf("ReplicaPromotions across survivors = %d, want 1", promotions)
	}
	if hosts := hostOf(survivors, VirtualURI("vjournal", "hot")); len(hosts) != 1 {
		t.Errorf("hosted on %v after failover, want one survivor", hosts)
	}
}

// TestVirtualFailoverUnreplicated: a virtual class without replicas fails
// over to a fresh instance — availability is preserved, state is not.
func TestVirtualFailoverUnreplicated(t *testing.T) {
	rts := startNodes(t, 3, nil)
	registerVirtualJournal(rts, VirtualConfig{})

	p, err := rts[0].VirtualObject("vjournal", "lossy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("Append", int64(1)); err != nil {
		t.Fatal(err)
	}
	owner, _ := rts[0].VirtualOwner("vjournal", "lossy")
	var survivors []*Runtime
	for _, rt := range rts {
		if rt.cfg.NodeID != owner {
			survivors = append(survivors, rt)
		}
	}
	rts[owner].Close()
	markDownOn(survivors, owner)

	deadline := time.Now().Add(5 * time.Second)
	for {
		p2, err := survivors[0].VirtualObject("vjournal", "lossy")
		if err == nil {
			got, ierr := p2.Invoke("Len")
			if ierr == nil {
				if got != 0 {
					t.Fatalf("Len = %v, want 0 (fresh instance)", got)
				}
				return
			}
			err = ierr
		}
		if time.Now().After(deadline) {
			t.Fatalf("re-activation did not converge: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// replicaSeqOf reads a node's passive replica seq for uri; 0 means absent.
func replicaSeqOf(rt *Runtime, uri string) uint64 {
	rt.replMu.Lock()
	defer rt.replMu.Unlock()
	if st := rt.replicas[uri]; st != nil {
		return st.seq
	}
	return 0
}

// TestVirtualReplicationLag: with SnapshotEvery=N, replicas only see a
// snapshot every N calls — the documented lag of asynchronous mode.
func TestVirtualReplicationLag(t *testing.T) {
	rts := startNodes(t, 3, nil)
	registerVirtualJournal(rts, VirtualConfig{Replicas: 1, SnapshotEvery: 3})

	p, err := rts[0].VirtualObject("vjournal", "lag")
	if err != nil {
		t.Fatal(err)
	}
	uri := VirtualURI("vjournal", "lag")
	owner, _ := rts[0].VirtualOwner("vjournal", "lag")
	succ := rts[owner].ring().successors(uri, 1)
	if len(succ) != 1 {
		t.Fatalf("successors = %v, want 1", succ)
	}
	replica := rts[succ[0]]

	for i := 0; i < 2; i++ {
		if _, err := p.Invoke("Append", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Two calls with SnapshotEvery=3: nothing shipped yet. A ship would be
	// asynchronous, so give a wrong one a moment to land before judging.
	time.Sleep(50 * time.Millisecond)
	if seq := replicaSeqOf(replica, uri); seq != 0 {
		t.Errorf("replica seq after 2 calls = %d, want 0 (no ship before N calls)", seq)
	}

	if _, err := p.Invoke("Append", int64(1)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(3 * time.Second)
	for replicaSeqOf(replica, uri) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("replica seq = %d, want 3 after third call", replicaSeqOf(replica, uri))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestVirtualStaleDemotion: a node hosting a virtual object that receives
// a snapshot at a higher generation — proof the cluster promoted past it —
// demotes its copy into a forwarding tombstone, and queued work fails over
// to the fresh location instead of executing on superseded state.
func TestVirtualStaleDemotion(t *testing.T) {
	rts := startNodes(t, 2, nil)
	registerVirtualJournal(rts, VirtualConfig{Replicas: 1, SnapshotEvery: 1})

	p, err := rts[0].VirtualObject("vjournal", "stale")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Invoke("Append", int64(1)); err != nil {
		t.Fatal(err)
	}
	uri := VirtualURI("vjournal", "stale")
	hosts := hostOf(rts, uri)
	if len(hosts) != 1 {
		t.Fatalf("hosted on %v, want one node", hosts)
	}
	host := rts[hosts[0]]
	other := rts[1-hosts[0]]
	loc, ok := host.dirLookup(uri)
	if !ok {
		t.Fatal("host has no directory entry")
	}

	// Deliver a snapshot at a bumped generation, as a promoted survivor
	// would after a partition healed.
	snap := replicaSeqOf(other, uri) // ensure the replica landed (sync mode)
	if snap == 0 {
		t.Fatal("sync replication left no replica on the successor")
	}
	other.replMu.Lock()
	state := other.replicas[uri].state
	other.replMu.Unlock()
	if _, err := host.replicateVirtual("vjournal", uri, loc.Gen+1, 5, other.cfg.NodeID, other.Addr(), state, nil, 0); err != nil {
		t.Fatal(err)
	}

	if hosts := hostOf([]*Runtime{host}, uri); len(hosts) != 0 {
		t.Error("stale host still hosts the actor after demotion")
	}
	if got := host.Stats().StaleDemotions; got != 1 {
		t.Errorf("StaleDemotions = %d, want 1", got)
	}
	if loc2, ok := host.dirLookup(uri); !ok || loc2.Node != other.cfg.NodeID || loc2.Gen != loc.Gen+1 {
		t.Errorf("directory after demotion = %+v, want node %d gen %d", loc2, other.cfg.NodeID, loc.Gen+1)
	}
	// A snapshot at or below the hosted generation must NOT demote — and
	// must be refused, not silently acknowledged: a synchronous shipper
	// reads the ack as durability, so the losing lineage has to see an
	// error that routes its callers to the winning copy.
	p3, err := rts[0].VirtualObject("vjournal", "keep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p3.Invoke("Append", int64(1)); err != nil {
		t.Fatal(err)
	}
	uri3 := VirtualURI("vjournal", "keep")
	h3 := rts[hostOf(rts, uri3)[0]]
	loc3, _ := h3.dirLookup(uri3)
	if _, err := h3.replicateVirtual("vjournal", uri3, loc3.Gen, 99, other.cfg.NodeID, other.Addr(), state, nil, 0); err == nil {
		t.Error("equal-generation snapshot against a live owner was acknowledged, want refusal")
	}
	if hosts := hostOf([]*Runtime{h3}, uri3); len(hosts) != 1 {
		t.Error("equal-generation snapshot demoted a live owner")
	}
}
