// Package core implements SCOOPP (Scalable Object-Oriented Parallel
// Programming) — the ParC# runtime that is the paper's contribution (§3).
//
// # Programming model
//
// Applications create parallel objects (active objects with their own
// thread of control) through a Runtime. Parallel objects are automatically
// distributed among processing nodes and communicate through asynchronous
// method calls (no result: Proxy.Post) or synchronous calls (result:
// Proxy.Invoke / Proxy.InvokeAsync). Passive objects are plain Go values:
// they live inside the parallel object that created them and only copies
// travel between grains (the wire layer copies by construction).
//
// # Run-time system
//
// The RTS mirrors the paper's Fig. 3 architecture:
//
//   - Proxy (PO) — returned by NewParallelObject; forwards inter-grain
//     calls through remoting and intra-grain calls directly to the local
//     implementation object.
//   - implementation object (IO) — the user's object, wrapped by an
//     ioWrapper that measures method execution time (grain-size
//     estimation) and replays aggregated batches.
//   - server objects (SO) — the paper notes ParC# no longer needs explicit
//     SOs because the remoting dispatch loop plays that role; here the
//     remoting Server does.
//   - ObjectManager (OM) — one per node, published at URI "om"; performs
//     placement (load balancing) and remote creation (the RemoteFactory of
//     Fig. 6).
//
// # Grain-size adaptation
//
// Both SCOOPP run-time optimisations are implemented:
//
//   - method-call aggregation (Fig. 7): Proxy.Post buffers asynchronous
//     calls per method and ships them as a single batch of AggregationConfig
//     MaxCalls invocations;
//   - object agglomeration: when the AgglomerationPolicy decides to remove
//     parallelism, NewParallelObject creates the object locally and the
//     proxy executes calls synchronously and serially in the caller's
//     context.
package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dispatch"
	"repro/internal/errs"
	"repro/internal/remoting"
	"repro/internal/threadpool"
	"repro/internal/wire"
)

// ProxyRef is the wire-encodable reference to a parallel object. References
// may be copied and sent as method arguments (the paper's §3.1 notes this
// may create cycles in the dependence graph); the receiving side rebinds
// with Runtime.Attach.
type ProxyRef struct {
	NetAddr string
	URI     string
	Class   string
	// Gen is the object's migration generation at NetAddr when the ref was
	// produced; Attach uses it to prefer fresher directory knowledge.
	Gen uint64
}

func init() {
	wire.RegisterName("core.ProxyRef", ProxyRef{})
}

// AggregationConfig controls method-call aggregation.
type AggregationConfig struct {
	// MaxCalls is the number of buffered asynchronous calls that
	// triggers a batch send (the paper's maxCalls, "calls per message").
	// Values <= 1 disable aggregation.
	MaxCalls int
	// MaxDelay flushes a non-empty buffer this long after its first
	// call, bounding the latency cost of waiting for a full batch.
	// Zero means no timer (explicit Flush or a full/sync call flushes).
	MaxDelay time.Duration
}

// enabled reports whether Posts should buffer.
func (a AggregationConfig) enabled() bool { return a.MaxCalls > 1 }

// NodeLoad is one node's load snapshot used for placement. Overload is
// the node's admission-control grade at probe time: load-aware policies
// prefer cooler nodes, and every policy avoids Shedding nodes while any
// alternative exists.
type NodeLoad struct {
	Node     int
	Load     int
	Overload OverloadGrade
}

// PlacementPolicy picks the node for a new parallel object, given the
// creating node and the current load vector (one entry per node, self
// included).
type PlacementPolicy interface {
	Pick(self int, loads []NodeLoad) int
}

// RoundRobin cycles through nodes, the ParC++ default distribution.
type RoundRobin struct {
	next atomic.Int64
}

// Pick implements PlacementPolicy. Nodes graded Shedding are skipped
// while any cooler node exists: round-robin is load-blind by design, but
// routing new objects onto a node actively rejecting calls just converts
// creations into ErrOverloaded.
func (r *RoundRobin) Pick(self int, loads []NodeLoad) int {
	loads = preferCool(loads)
	if len(loads) == 0 {
		return self
	}
	n := r.next.Add(1) - 1
	return loads[int(n)%len(loads)].Node
}

// preferCool filters a load vector down to the nodes not graded Shedding,
// falling back to the full vector when every node is hot (placement must
// still pick something; the bounded mailboxes shed the excess).
func preferCool(loads []NodeLoad) []NodeLoad {
	cool := make([]NodeLoad, 0, len(loads))
	for _, l := range loads {
		if l.Overload < OverloadShedding {
			cool = append(cool, l)
		}
	}
	if len(cool) == 0 {
		return loads
	}
	return cool
}

// LeastLoaded picks the node with the smallest load, breaking ties towards
// the creating node ("according to the current load distribution policy").
type LeastLoaded struct{}

// Pick implements PlacementPolicy: the coolest overload grade wins first,
// then the smallest load, then the self tie-break.
func (LeastLoaded) Pick(self int, loads []NodeLoad) int {
	best, bestLoad := self, int(^uint(0)>>1)
	bestGrade := OverloadShedding + 1
	for _, l := range loads {
		if l.Overload > bestGrade {
			continue
		}
		if l.Overload < bestGrade || l.Load < bestLoad || (l.Load == bestLoad && l.Node == self) {
			best, bestLoad, bestGrade = l.Node, l.Load, l.Overload
		}
	}
	return best
}

// LocalOnly always places on the creating node; used to disable
// distribution.
type LocalOnly struct{}

// Pick implements PlacementPolicy.
func (LocalOnly) Pick(self int, loads []NodeLoad) int { return self }

// ClassStats summarises the measured grain size of a class on this node.
type ClassStats struct {
	Calls       int64
	AvgExecTime time.Duration
}

// AgglomerationPolicy decides whether a new object should be agglomerated
// (created as a passive local object, removing parallelism) based on the
// measured grain size of its class and the local load.
type AgglomerationPolicy interface {
	Agglomerate(class string, stats ClassStats, localLoad int) bool
}

// NeverAgglomerate keeps every object parallel.
type NeverAgglomerate struct{}

// Agglomerate implements AgglomerationPolicy.
func (NeverAgglomerate) Agglomerate(string, ClassStats, int) bool { return false }

// AlwaysAgglomerate packs every new object into its creator's grain
// (serial execution); useful for ablation A2 and as the paper's "removing
// excess of parallelism" extreme.
type AlwaysAgglomerate struct{}

// Agglomerate implements AgglomerationPolicy.
func (AlwaysAgglomerate) Agglomerate(string, ClassStats, int) bool { return true }

// AdaptiveAgglomeration removes parallelism when the measured average
// method execution time of the class falls below MinGrain — the grain is
// too fine to pay communication costs — and the node already has at least
// MinLocalLoad live objects to keep processors busy. This is the dynamic
// grain packing of SCOOPP (paper refs [8][9]).
type AdaptiveAgglomeration struct {
	MinGrain     time.Duration
	MinLocalLoad int
	// MinSamples avoids deciding from noise; below it objects stay
	// parallel.
	MinSamples int64
}

// Agglomerate implements AgglomerationPolicy.
func (a AdaptiveAgglomeration) Agglomerate(class string, stats ClassStats, localLoad int) bool {
	if stats.Calls < int64(a.MinSamples) {
		return false
	}
	return stats.AvgExecTime < a.MinGrain && localLoad >= a.MinLocalLoad
}

// Config configures a node's runtime.
type Config struct {
	// NodeID is this node's index in the cluster.
	NodeID int
	// Channel is the remoting channel used for all inter-node traffic.
	Channel *remoting.Channel
	// Pool, when non-nil, bounds server-side call execution (the Mono
	// thread pool of Fig. 9). Nil runs each call on its own goroutine.
	Pool *threadpool.Pool
	// Placement distributes new parallel objects; default RoundRobin.
	Placement PlacementPolicy
	// Agglomeration packs objects into their creator's grain; default
	// NeverAgglomerate.
	Agglomeration AgglomerationPolicy
	// Aggregation batches asynchronous calls; default disabled.
	Aggregation AggregationConfig
	// LoadCacheTTL bounds how stale placement load information may be.
	// Default 50 ms.
	LoadCacheTTL time.Duration
	// HealthProbe, when non-zero, pings every peer at this interval once
	// the node joins a cluster, marking unresponsive peers suspect and then
	// down. Down peers are excluded from placement and failover
	// resolution until they answer again.
	HealthProbe time.Duration
	// RebalanceEvery, when non-zero, runs Rebalance at this interval once
	// the node joins a cluster, migrating objects away whenever this node
	// is loaded above the cluster mean.
	RebalanceEvery time.Duration
	// MailboxBound, when positive, caps the queued (not yet executing)
	// calls of every actor mailbox on this node. A full mailbox sheds
	// according to Shed instead of queueing without limit, failing the
	// shed call with errs.ErrOverloaded. 0 keeps mailboxes unbounded.
	MailboxBound int
	// Shed selects which call a full bounded mailbox sheds; default
	// ShedNewest (reject the arriving call).
	Shed ShedPolicy
	// Retry, when enabled (MaxAttempts > 1), is installed on Channel at
	// Start: remote calls retry transient failures (node-down, overload
	// sheds) with jittered exponential backoff, and per-peer circuit
	// breakers fast-fail calls to peers that keep refusing connections.
	Retry remoting.RetryPolicy
	// IdempotentCalls stamps every outermost remote call that does not
	// already carry one with a fresh idempotency token, making cross-node
	// retries effectively-once against hosts that keep dedup memory (every
	// actor-hosted object does). Callers spanning their own retry loops
	// use WithCallToken to share one token across attempts.
	IdempotentCalls bool
	// DedupPerObject caps each hosted object's dedup LRU (recorded
	// replies for token-bearing calls). 0 selects
	// remoting.DefaultDedupPerObject.
	DedupPerObject int
}

// Stats counts runtime events; all fields are cumulative.
type Stats struct {
	ObjectsCreated      int64
	ObjectsAgglomerated int64
	ObjectsLocal        int64
	ObjectsRemote       int64
	BatchesSent         int64
	CallsAggregated     int64
	SyncCalls           int64
	AsyncCalls          int64
	ObjectsMigratedIn   int64
	ObjectsMigratedOut  int64
	// VirtualActivations counts on-demand activations of virtual objects
	// on this node; ReplicaPromotions counts the subset that promoted a
	// passive replica after its owner went down; StaleDemotions counts
	// hosted copies this node abandoned on learning of a fresher one.
	VirtualActivations int64
	ReplicaPromotions  int64
	StaleDemotions     int64
	// MailboxSheds counts calls a bounded mailbox rejected or evicted
	// with ErrOverloaded. DeadlineDrops counts calls dropped because
	// their deadline had already expired — refused by the server before
	// dispatch, or skipped by a mailbox at dequeue time. Both are zero
	// while MailboxBound is 0 and no caller sets deadlines.
	MailboxSheds  int64
	DeadlineDrops int64
	// OverloadGrade is the node's admission-control state at snapshot
	// time (a gauge, unlike every other field): OverloadNone,
	// OverloadBusy or OverloadShedding.
	OverloadGrade OverloadGrade
}

// contExec returns the overflow executor futures use for continuations
// that exhausted the inline depth budget: the configured thread pool when
// it has room, a fresh goroutine otherwise (TrySubmit never blocks — the
// completion path must not stall behind a full pool queue). Nil when no
// pool is configured, which makes the Future spawn a goroutine directly.
func (rt *Runtime) contExec() func(func()) {
	pool := rt.cfg.Pool
	if pool == nil {
		return nil
	}
	return func(fn func()) {
		if !pool.TrySubmit(fn) {
			go fn()
		}
	}
}

// Runtime is one node's SCOOPP run-time system: object manager, factories
// and hosting server.
type Runtime struct {
	cfg    Config
	server *remoting.Server

	mu      sync.Mutex
	classes map[string]func() any
	peers   []peer // index = node id; self included
	objSeq  atomic.Int64
	load    atomic.Int64 // live parallel objects hosted here

	// exec maps class → *execStats. A sync.Map with atomic counters: the
	// per-call recordExec sits on every dispatch path, and a shared mutex
	// there serializes otherwise-independent workers on many cores.
	exec sync.Map

	loadMu         sync.Mutex
	loadCond       *sync.Cond
	loadCache      []NodeLoad
	loadCached     time.Time
	loadRefreshing bool

	// dir is this node's slice of the cluster-wide object directory: URI →
	// location. Entries for objects hosted here are authoritative (Node ==
	// NodeID); entries pointing elsewhere are tombstones left by
	// migrations away, or cached resolutions.
	dirMu sync.Mutex
	dir   map[string]ObjLoc

	healthMu sync.Mutex
	health   map[int]*peerHealth

	// aborts records, per URI, the highest migration generation whose
	// transfer the source node asked this node to abort: an AcceptObject
	// at or below the marker must not commit, even if it is still in
	// flight when the abort arrives (server dispatch is concurrent, so a
	// compensation can otherwise be outrun by the transfer it undoes).
	// Markers are erased when a newer-generation transfer commits.
	abortMu sync.Mutex
	aborts  map[string]uint64

	stop      chan struct{} // closed by Close; stops probe/rebalance loops
	closeOnce sync.Once
	loopsOnce sync.Once

	// Virtual-object state (see virtual.go): registered virtual classes,
	// the single-flight table serialising concurrent activations of one
	// URI, and the passive replica store (state snapshots shipped by the
	// owners of replicated virtual objects hosted elsewhere).
	virtMu   sync.Mutex
	virtuals map[string]VirtualConfig

	activMu     sync.Mutex
	activations map[string]*activation

	replMu   sync.Mutex
	replicas map[string]*replicaState
	// promised records, per URI, the highest generation this node answered
	// a promotion census (ReplicaAt) for. Snapshots from older lineages are
	// refused from then on: the promoting node read this node's replica as
	// part of choosing its state, so letting a superseded owner deposit —
	// and acknowledge calls against — a fresher-looking copy of the old
	// lineage afterwards would lose those acknowledgements at demotion.
	promised map[string]uint64

	// ringEpoch invalidates the cached consistent-hash ring: it is bumped
	// on every membership change (JoinCluster, a peer crossing the Down
	// boundary in either direction). ring() rebuilds lazily per epoch.
	ringEpoch      atomic.Uint64
	ringMu         sync.Mutex
	ringCache      *hashRing
	ringCacheEpoch uint64

	stats struct {
		objectsCreated      atomic.Int64
		objectsAgglomerated atomic.Int64
		objectsLocal        atomic.Int64
		objectsRemote       atomic.Int64
		batchesSent         atomic.Int64
		callsAggregated     atomic.Int64
		syncCalls           atomic.Int64
		asyncCalls          atomic.Int64
		objectsMigratedIn   atomic.Int64
		objectsMigratedOut  atomic.Int64
		virtualActivations  atomic.Int64
		replicaPromotions   atomic.Int64
		staleDemotions      atomic.Int64
		mailboxSheds        atomic.Int64
		deadlineDrops       atomic.Int64
	}

	// queuedTasks is the aggregate mailbox occupancy across hosted actors
	// (queued, not executing); lastShed is the UnixNano of the most
	// recent mailbox shed. Together they derive OverloadGrade.
	queuedTasks atomic.Int64
	lastShed    atomic.Int64

	actorsMu sync.Mutex
	actors   map[string]*actor

	// destroyMu serialises the unpublish bookkeeping of destroyLocal
	// (tombstone determination, unregister, load decrement), which must
	// be atomic across concurrent destroys of one URI. It is never held
	// while draining an actor.
	destroyMu sync.Mutex
}

type peer struct {
	node int
	addr string
	om   *remoting.ObjRef
}

type execStats struct {
	calls atomic.Int64
	nanos atomic.Int64
}

// omURI is the well-known URI of each node's object manager.
const omURI = "om"

// Start boots a node runtime listening on addr (transport syntax). The
// returned runtime initially knows only itself; call JoinCluster with every
// node's address (same order on every node) to enable distribution.
func Start(cfg Config, addr string) (*Runtime, error) {
	if cfg.Channel == nil {
		return nil, fmt.Errorf("core: Config.Channel is required")
	}
	if cfg.Placement == nil {
		cfg.Placement = &RoundRobin{}
	}
	if cfg.Agglomeration == nil {
		cfg.Agglomeration = NeverAgglomerate{}
	}
	if cfg.LoadCacheTTL == 0 {
		cfg.LoadCacheTTL = 50 * time.Millisecond
	}
	if cfg.Retry.Enabled() {
		cfg.Channel.Retry = cfg.Retry
	}
	rt := &Runtime{
		cfg:         cfg,
		classes:     make(map[string]func() any),
		actors:      make(map[string]*actor),
		dir:         make(map[string]ObjLoc),
		health:      make(map[int]*peerHealth),
		aborts:      make(map[string]uint64),
		virtuals:    make(map[string]VirtualConfig),
		activations: make(map[string]*activation),
		replicas:    make(map[string]*replicaState),
		promised:    make(map[string]uint64),
		stop:        make(chan struct{}),
	}
	rt.loadCond = sync.NewCond(&rt.loadMu)
	var opts []remoting.ServerOption
	if cfg.Pool != nil {
		opts = append(opts, remoting.WithPool(cfg.Pool))
	}
	srv, err := cfg.Channel.ListenAndServe(addr, opts...)
	if err != nil {
		return nil, err
	}
	rt.server = srv
	srv.RegisterWellKnown(omURI, remoting.Singleton, func() any { return &omService{rt: rt} })
	rt.peers = []peer{{node: cfg.NodeID, addr: srv.Addr()}}
	return rt, nil
}

// Addr returns the node's transport address.
func (rt *Runtime) Addr() string { return rt.server.Addr() }

// NodeID returns this node's cluster index.
func (rt *Runtime) NodeID() int { return rt.cfg.NodeID }

// hasPeers reports whether this node joined a cluster with other members.
func (rt *Runtime) hasPeers() bool { return rt.clusterSize() > 1 }

// clusterSize is the joined cluster's node count (self included).
func (rt *Runtime) clusterSize() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.peers)
}

// JoinCluster installs the full node address list (indexed by node id; this
// node's address must appear at index Config.NodeID).
func (rt *Runtime) JoinCluster(addrs []string) error {
	if rt.cfg.NodeID >= len(addrs) {
		return fmt.Errorf("core: node id %d outside cluster of %d", rt.cfg.NodeID, len(addrs))
	}
	if addrs[rt.cfg.NodeID] != rt.Addr() {
		return fmt.Errorf("core: cluster address %q at index %d is not this node (%q)",
			addrs[rt.cfg.NodeID], rt.cfg.NodeID, rt.Addr())
	}
	peers := make([]peer, len(addrs))
	for i, a := range addrs {
		peers[i] = peer{node: i, addr: a}
		if i != rt.cfg.NodeID {
			peers[i].om = remoting.NewObjRef(rt.cfg.Channel, a, omURI)
		}
	}
	rt.mu.Lock()
	rt.peers = peers
	rt.mu.Unlock()
	rt.ringEpoch.Add(1) // the member set changed; rebuild the ring lazily
	// Background membership loops start once the node knows its peers.
	rt.loopsOnce.Do(func() {
		if rt.cfg.HealthProbe > 0 {
			go rt.healthLoop(rt.cfg.HealthProbe)
		}
		if rt.cfg.RebalanceEvery > 0 {
			go rt.rebalanceLoop(rt.cfg.RebalanceEvery)
		}
	})
	return nil
}

// RegisterClass makes a parallel-object class creatable on this node. All
// nodes must register the same classes (the paper's preprocessor emitted a
// factory per class into every node's boot code, Fig. 6). Class state
// becomes wire-registered on demand when a live migration first snapshots
// an instance (exported fields only, as with any wire payload).
func (rt *Runtime) RegisterClass(name string, factory func() any) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.classes[name] = factory
}

// registerStateType makes a class's state wire-encodable for migration
// snapshots; migration call sites invoke it with the live (or
// freshly made) instance right before encoding or decoding state.
// Non-struct implementation objects (or a name collision with a
// previously registered different type) leave the class non-migratable
// rather than failing.
func registerStateType(obj any) {
	t := reflect.TypeOf(obj)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil || t.Kind() != reflect.Struct {
		return
	}
	defer func() { _ = recover() }()
	wire.Register(obj)
}

// Close shuts the node down: background probe/rebalance loops stop, local
// actors drain, the server stops, and the channel's client-side
// connections (idle pooled conns, multiplexed peer pipes) are released so
// long-running processes do not leak sockets.
func (rt *Runtime) Close() {
	rt.closeOnce.Do(func() { close(rt.stop) })
	rt.actorsMu.Lock()
	actors := rt.actors
	rt.actors = make(map[string]*actor)
	rt.actorsMu.Unlock()
	for _, a := range actors {
		a.stop()
	}
	rt.server.Close()
	rt.cfg.Channel.Close()
}

// Stats returns a snapshot of runtime counters.
func (rt *Runtime) Stats() Stats {
	return Stats{
		ObjectsCreated:      rt.stats.objectsCreated.Load(),
		ObjectsAgglomerated: rt.stats.objectsAgglomerated.Load(),
		ObjectsLocal:        rt.stats.objectsLocal.Load(),
		ObjectsRemote:       rt.stats.objectsRemote.Load(),
		BatchesSent:         rt.stats.batchesSent.Load(),
		CallsAggregated:     rt.stats.callsAggregated.Load(),
		SyncCalls:           rt.stats.syncCalls.Load(),
		AsyncCalls:          rt.stats.asyncCalls.Load(),
		ObjectsMigratedIn:   rt.stats.objectsMigratedIn.Load(),
		ObjectsMigratedOut:  rt.stats.objectsMigratedOut.Load(),
		VirtualActivations:  rt.stats.virtualActivations.Load(),
		ReplicaPromotions:   rt.stats.replicaPromotions.Load(),
		StaleDemotions:      rt.stats.staleDemotions.Load(),
		MailboxSheds:        rt.stats.mailboxSheds.Load(),
		DeadlineDrops:       rt.stats.deadlineDrops.Load() + rt.server.DeadlineDrops(),
		OverloadGrade:       rt.OverloadGrade(),
	}
}

// Load returns the number of live parallel objects hosted on this node.
func (rt *Runtime) Load() int { return int(rt.load.Load()) }

// ClassStatsFor returns the measured grain statistics of a class on this
// node.
func (rt *Runtime) ClassStatsFor(class string) ClassStats {
	v, ok := rt.exec.Load(class)
	if !ok {
		return ClassStats{}
	}
	es := v.(*execStats)
	// The two loads are not a consistent snapshot: a concurrent recordExec
	// can land between them, skewing the average by one call. Grain stats
	// feed heuristics (agglomeration thresholds), so the skew is harmless
	// and not worth a lock on the dispatch path.
	calls := es.calls.Load()
	if calls == 0 {
		return ClassStats{}
	}
	return ClassStats{
		Calls:       calls,
		AvgExecTime: time.Duration(es.nanos.Load() / calls),
	}
}

func (rt *Runtime) recordExec(class string, d time.Duration) {
	v, ok := rt.exec.Load(class)
	if !ok {
		v, _ = rt.exec.LoadOrStore(class, &execStats{})
	}
	es := v.(*execStats)
	es.calls.Add(1)
	es.nanos.Add(d.Nanoseconds())
}

func (rt *Runtime) factoryFor(class string) (func() any, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	f, ok := rt.classes[class]
	if !ok {
		return nil, fmt.Errorf("core: class %q on node %d: %w", class, rt.cfg.NodeID, errs.ErrNoSuchClass)
	}
	return f, nil
}

// createLocalIO instantiates class on this node, wraps it, publishes it and
// returns its URI. spawnActor selects active-object semantics (a mailbox
// goroutine) for objects hosted for remote or local-parallel use.
func (rt *Runtime) createLocalIO(class string, spawnActor bool) (string, any, error) {
	factory, err := rt.factoryFor(class)
	if err != nil {
		return "", nil, err
	}
	obj := factory()
	uri := fmt.Sprintf("obj/%s/%d/%d", class, rt.cfg.NodeID, rt.objSeq.Add(1))
	w := &ioWrapper{rt: rt, class: class, obj: obj, uri: uri,
		dedup: remoting.NewDedupLRU(rt.cfg.DedupPerObject)}
	w.gen.Store(1)
	if spawnActor {
		a := newActor(w)
		rt.actorsMu.Lock()
		rt.actors[uri] = a
		rt.actorsMu.Unlock()
		rt.server.Marshal(uri, &actorEndpoint{a: a})
	} else {
		rt.server.Marshal(uri, w)
	}
	rt.load.Add(1)
	rt.dirUpdate(uri, ObjLoc{Node: rt.cfg.NodeID, Addr: rt.Addr(), Gen: 1})
	return uri, obj, nil
}

// destroyLocal unpublishes a hosted object — or the forwarding tombstone a
// migration left at its URI, which carries no load — and reports whether
// it destroyed a live local object (callers use that to decide whether a
// forward still needs chasing: clearing just a tombstone does not destroy
// the object it points at). Unregister reports true to exactly one of
// several concurrent destroys, so the load decrement cannot double. The
// actor drains outside actorsMu: a queued task may itself create a
// parallel object (which takes actorsMu), so blocking on the drain inside
// the lock could deadlock the node.
func (rt *Runtime) destroyLocal(uri string) (destroyedLive bool) {
	for {
		rt.actorsMu.Lock()
		a := rt.actors[uri]
		delete(rt.actors, uri)
		rt.actorsMu.Unlock()
		if a != nil {
			a.stop()
			destroyedLive = true
		}
		// The tombstone determination and the unregister must be atomic
		// across concurrent destroys: a racer observing the directory
		// entry already dropped but the registration still published
		// would otherwise decrement load for a tombstone that never
		// carried any.
		rt.destroyMu.Lock()
		tomb := false
		if loc, ok := rt.dirLookup(uri); ok && loc.Node != rt.cfg.NodeID {
			tomb = true
		}
		rt.dirDrop(uri)
		if rt.server.Unregister(uri) && !tomb {
			rt.load.Add(-1)
			destroyedLive = true
		}
		rt.destroyMu.Unlock()
		// A migration-in (acceptObject) may have committed between the
		// actors check and the unregister above, leaving a fresh actor
		// the cleanup missed; sweep again until the map stays empty so a
		// destroy can never orphan (and later resurrect) a racing
		// arrival.
		rt.actorsMu.Lock()
		again := rt.actors[uri] != nil
		rt.actorsMu.Unlock()
		if !again {
			if destroyedLive && isVirtualURI(uri) {
				// A destroyed virtual object must not resurrect from its
				// passive replicas at the next owner failure: drop the
				// local copy and tell the successor replicas to do the
				// same (best effort — an unreachable replica ages out at
				// the next activation's generation bump).
				rt.dropReplicasFor(uri)
			}
			return destroyedLive
		}
	}
}

// loadProbeTimeout bounds one peer load probe: a slow or dead peer costs a
// placement refresh at most this long, not a full call timeout.
const loadProbeTimeout = 200 * time.Millisecond

// nodeLoads returns the cached cluster load vector, refreshing it when
// stale. The refresh runs outside loadMu (one slow peer must not serialise
// every placement behind it) with at most one refresher at a time —
// concurrent placements wait for the in-flight refresh instead of
// duplicating the probes.
func (rt *Runtime) nodeLoads() []NodeLoad {
	rt.loadMu.Lock()
	for {
		if time.Since(rt.loadCached) < rt.cfg.LoadCacheTTL && rt.loadCache != nil {
			loads := rt.loadCache
			rt.loadMu.Unlock()
			return loads
		}
		if !rt.loadRefreshing {
			break
		}
		rt.loadCond.Wait()
	}
	rt.loadRefreshing = true
	rt.loadMu.Unlock()

	loads := rt.probeLoads()

	rt.loadMu.Lock()
	rt.loadCache = loads
	rt.loadCached = time.Now()
	rt.loadRefreshing = false
	rt.loadCond.Broadcast()
	rt.loadMu.Unlock()
	return loads
}

// probeLoads measures the live cluster load vector: every peer is probed
// concurrently with a short per-probe deadline. Peers that are marked down
// by health probing, cannot be reached in time, or answer with a mis-typed
// load are excluded from the vector entirely — placement then cannot pick
// them, rather than merely disfavouring them behind a max-int load. The
// vector comes back in node order, which round-robin placement relies on.
func (rt *Runtime) probeLoads() []NodeLoad {
	var mu sync.Mutex
	loads := []NodeLoad{{Node: rt.cfg.NodeID, Load: rt.Load(), Overload: rt.OverloadGrade()}}
	rt.forEachPeer(context.Background(), loadProbeTimeout, true, func(ctx context.Context, p peer) {
		// Load probes double as liveness evidence: their timing is the
		// failure detector's clock, so they must not be stretched (or
		// masked) by retry backoff.
		res, err := p.om.InvokeCtx(remoting.WithoutRetry(ctx), "LoadInfo")
		if err != nil {
			return
		}
		var li LoadInfo
		if err := wire.AssignTo(&li, res); err != nil {
			// A mis-typed reply is as useless as no reply: treating it
			// as load 0 would magnetise traffic onto a broken peer.
			return
		}
		rt.noteOverload(p.node, OverloadGrade(li.Overload))
		mu.Lock()
		loads = append(loads, NodeLoad{Node: p.node, Load: li.Load, Overload: OverloadGrade(li.Overload)})
		mu.Unlock()
	})
	sort.Slice(loads, func(i, j int) bool { return loads[i].Node < loads[j].Node })
	return loads
}

// NewCallToken mints a fresh idempotency token from this node's channel.
// Stamp it on a context with WithCallToken when spanning your own retry
// loop around a logical call; proxies stamp one automatically per call
// when Config.IdempotentCalls is set.
func (rt *Runtime) NewCallToken() remoting.CallToken {
	return rt.cfg.Channel.NewCallToken()
}

// WithCallToken returns a context carrying tok: every remote call made
// under it shares the token, so the hosting object deduplicates retries of
// the same logical call (effectively-once).
func WithCallToken(ctx context.Context, tok remoting.CallToken) context.Context {
	return remoting.ContextWithToken(ctx, tok)
}

// NewParallelObject creates a parallel object of a registered class and
// returns its proxy, implementing the PO constructor of the paper's Fig. 5:
// agglomerate locally, create on this node, or request creation from a
// remote node's factory.
func (rt *Runtime) NewParallelObject(class string) (*Proxy, error) {
	rt.stats.objectsCreated.Add(1)
	if rt.cfg.Agglomeration.Agglomerate(class, rt.ClassStatsFor(class), rt.Load()) {
		// Intra-grain creation (Fig. 3 call d): passive local object,
		// serial execution, but still published so references to it
		// can travel.
		uri, obj, err := rt.createLocalIO(class, false)
		if err != nil {
			return nil, err
		}
		rt.stats.objectsAgglomerated.Add(1)
		return &Proxy{rt: rt, class: class, mode: modeAgglomerated, uri: uri, local: obj}, nil
	}
	node := rt.cfg.Placement.Pick(rt.cfg.NodeID, rt.nodeLoads())
	if node == rt.cfg.NodeID {
		uri, _, err := rt.createLocalIO(class, true)
		if err != nil {
			return nil, err
		}
		rt.stats.objectsLocal.Add(1)
		rt.actorsMu.Lock()
		a := rt.actors[uri]
		rt.actorsMu.Unlock()
		return &Proxy{rt: rt, class: class, mode: modeLocalActive, uri: uri, act: a}, nil
	}
	// Inter-grain creation (Fig. 3 call c): ask the remote OM's factory.
	rt.mu.Lock()
	var om *remoting.ObjRef
	var addr string
	for _, p := range rt.peers {
		if p.node == node {
			om, addr = p.om, p.addr
		}
	}
	rt.mu.Unlock()
	if om == nil {
		return nil, fmt.Errorf("core: placement chose unknown node %d", node)
	}
	res, err := om.Invoke("CreateObject", class)
	if err != nil {
		return nil, fmt.Errorf("core: remote creation of %s on node %d: %w", class, node, err)
	}
	uri, _ := res.(string)
	if uri == "" {
		return nil, fmt.Errorf("core: remote factory returned empty URI")
	}
	rt.stats.objectsRemote.Add(1)
	rt.dirUpdate(uri, ObjLoc{Node: node, Addr: addr, Gen: 1})
	return newRemoteProxy(rt, class, uri, addr, 1), nil
}

// Attach rebinds a ProxyRef received as a method argument into a usable
// proxy on this node. Objects hosted on this node — including objects that
// migrated here since the ref was produced — bind to the local
// implementation; others become remote proxies routed at this node's best
// directory knowledge of their location.
func (rt *Runtime) Attach(ref ProxyRef) *Proxy {
	rt.actorsMu.Lock()
	a := rt.actors[ref.URI]
	rt.actorsMu.Unlock()
	if a != nil {
		return &Proxy{rt: rt, class: ref.Class, mode: modeLocalActive, uri: ref.URI, act: a}
	}
	addr, gen := ref.NetAddr, ref.Gen
	if loc, ok := rt.dirLookup(ref.URI); ok && loc.Gen > gen {
		addr, gen = loc.Addr, loc.Gen
	}
	return newRemoteProxy(rt, ref.Class, ref.URI, addr, gen)
}

// omService is the object manager's remote interface (Fig. 6's
// RemoteFactory plus load reporting).
type omService struct {
	rt *Runtime
}

// CreateObject instantiates class on this node and returns the new IO's
// URI.
func (s *omService) CreateObject(class string) (string, error) {
	uri, _, err := s.rt.createLocalIO(class, true)
	return uri, err
}

// DestroyObject unpublishes an object hosted on this node. If uri is not
// hosted here, the destruction chases this node's forward knowledge — the
// tombstone's directory entry, or, when even that has been
// garbage-collected, a re-resolution through the peers — to the current
// host, so destroying through a stale location still releases the live
// object instead of silently succeeding against a dead URI. Local state
// is cleared before chasing, which is what makes destroy chains across
// mutually stale caches terminate.
func (s *omService) DestroyObject(ctx context.Context, uri string) error {
	rt := s.rt
	// Snapshot the forward before clearing local state; whether a live
	// actor was removed decides if a forward remains to chase (a
	// migration committing concurrently leaves a tombstone where the
	// actor was — clearing that tombstone alone must not count as
	// destroying the object).
	loc, ok := rt.dirLookup(uri)
	if rt.destroyLocal(uri) {
		return nil
	}
	if !ok || loc.Node == rt.cfg.NodeID {
		loc, ok = rt.resolveRemote(ctx, uri, rt.Addr())
	}
	if ok && loc.Node != rt.cfg.NodeID {
		om := remoting.NewObjRef(rt.cfg.Channel, loc.Addr, omURI)
		if _, err := om.InvokeCtx(ctx, "DestroyObject", uri); err != nil {
			return err
		}
		rt.dirDrop(uri)
	}
	// No local trace and no resolvable forward: treated as already
	// destroyed. This keeps destroy idempotent (double-destroys must
	// succeed), at the price that a destroy routed through a node whose
	// tombstone aged out, while every resolution probe transiently
	// failed, reports success without reaching the live copy — the same
	// information horizon any caller of a fully decentralised directory
	// has.
	return nil
}

// AbortAccept is the compensation half of a failed migration; see
// Runtime.abortAccept.
func (s *omService) AbortAccept(uri string, gen uint64) {
	s.rt.abortAccept(uri, gen)
}

// Load reports the node's live object count for placement decisions.
func (s *omService) Load() int { return s.rt.Load() }

// Ping lets peers probe liveness.
func (s *omService) Ping() string { return "pong" }

// Resolve reports this node's directory knowledge of uri: authoritative
// for hosted objects and tombstones, best-effort for cached locations.
func (s *omService) Resolve(uri string) ResolveReply {
	if loc, ok := s.rt.dirLookup(uri); ok {
		return ResolveReply{Found: true, Node: loc.Node, Addr: loc.Addr, Gen: loc.Gen}
	}
	return ResolveReply{}
}

// AcceptObject is the receiving half of a live migration: re-create class
// under uri at generation gen from the snapshotted state, returning this
// node's transport address.
func (s *omService) AcceptObject(class, uri string, gen uint64, state []byte) (string, error) {
	return s.rt.acceptObject(class, uri, gen, state)
}

// Migrate moves an object hosted on this node to toNode, returning its new
// location. A *errs.MovedError (object already elsewhere) travels back
// with the forward so the caller can chase it.
func (s *omService) Migrate(ctx context.Context, uri string, toNode int) (ResolveReply, error) {
	if err := s.rt.MigrateCtx(ctx, uri, toNode); err != nil {
		return ResolveReply{}, err
	}
	loc, ok := s.rt.dirLookup(uri)
	if !ok {
		return ResolveReply{}, fmt.Errorf("core: migrate %s: directory entry lost", uri)
	}
	return ResolveReply{Found: true, Node: loc.Node, Addr: loc.Addr, Gen: loc.Gen}, nil
}

// Rebalance triggers a load rebalance on this node, returning the number
// of objects migrated away.
func (s *omService) Rebalance(ctx context.Context) (int, error) {
	return s.rt.Rebalance(ctx)
}

// ioWrapper wraps an implementation object, measuring execution times for
// grain-size estimation and replaying batches (the processN method the
// preprocessor adds in Fig. 7). Its methods take the caller's context first
// so the remoting dispatcher injects the request context, which in turn is
// injected into context-aware implementation methods.
type ioWrapper struct {
	rt    *Runtime
	class string
	obj   any
	uri   string

	// virt is set on actor-hosted virtual objects of a replicated class:
	// after each call (or each SnapshotEvery-th), the wrapper snapshots
	// obj and ships the state to the ring-successor replicas (virtual.go).
	// Invoke1/InvokeBatch run in the actor goroutine for these objects,
	// so the snapshot reads quiesced state. seq counts applied calls;
	// replicas order snapshots by (generation, seq).
	virt      *VirtualConfig
	seq       atomic.Uint64
	sinceShip int // calls since the last shipped snapshot; actor goroutine only

	// gen is the directory generation THIS copy was activated at. Snapshot
	// ships must stamp this — never the directory's current generation: a
	// promotion census can demote this copy and repoint the directory at
	// the winning lineage's generation while a call is still executing
	// here, and a ship stamped with the directory's new generation would
	// smuggle the doomed lineage's state into the winner's replica chain.
	gen atomic.Uint64

	// snapMu guards the last shipped snapshot, re-shipped by the
	// reconciliation pass when a partitioned peer recovers.
	snapMu   sync.Mutex
	lastSnap []byte
	lastSeq  uint64

	// dedup remembers replies of executed token-bearing calls so a retry
	// of an already-executed call replays the recorded reply instead of
	// executing again. Nil on the transient wrappers proxies build around
	// agglomerated objects (those calls never leave the caller and never
	// retry).
	dedup *remoting.DedupLRU

	// fenced is set by a promotion census that read this copy's last
	// snapshot while promoting the object elsewhere (replicaAt): from that
	// point on, calls here must not be acknowledged — the promoted lineage
	// was built without them and an acknowledgement would be lost when this
	// copy demotes. Callers re-resolve to the promoted copy instead.
	fenced atomic.Bool

	// shipAck tracks, per replica address, the dedup write counter that
	// replica acknowledged, so synchronous snapshot ships carry only the
	// dedup records added since (virtual.go shipTo) instead of the whole
	// LRU on every call. Reset to zero (full resend) when a receiver
	// reports it cannot extend its chain.
	shipMu  sync.Mutex
	shipAck map[string]uint64
}

func (w *ioWrapper) shipAckFor(addr string) uint64 {
	w.shipMu.Lock()
	defer w.shipMu.Unlock()
	return w.shipAck[addr]
}

func (w *ioWrapper) setShipAck(addr string, stamp uint64) {
	w.shipMu.Lock()
	defer w.shipMu.Unlock()
	if w.shipAck == nil {
		w.shipAck = make(map[string]uint64)
	}
	w.shipAck[addr] = stamp
}

// errFenced is the refusal a fenced stale copy answers every call with. It
// wraps ErrNodeDown so callers take the same re-resolve path an owner death
// does — the promoted lineage is where their calls must land.
func errFenced(uri string) error {
	return fmt.Errorf("core: %s: this copy is fenced pending promotion elsewhere: %w", uri, errs.ErrNodeDown)
}

// Invoke1 executes one method invocation on the IO. Calls carrying an
// idempotency token are deduplicated: a token already recorded means the
// call executed here before (a retry whose reply was lost), so the recorded
// reply is replayed instead of executing again.
func (w *ioWrapper) Invoke1(ctx context.Context, method string, args []any) (any, error) {
	if w.fenced.Load() {
		return nil, errFenced(w.uri)
	}
	tok, hasTok := remoting.TokenFromContext(ctx)
	if hasTok {
		if rep, ok := w.dedup.Get(tok); ok {
			// The recorded call may have executed and then failed its
			// synchronous replication ack: re-ship the current state before
			// replaying, so the replayed acknowledgement is as durable as
			// the original success would have been.
			if w.virt != nil {
				if rerr := w.rt.reshipForDedup(ctx, w); rerr != nil {
					return nil, rerr
				}
			}
			return rep.Result, dedupReplayError(rep)
		}
	}
	start := time.Now()
	res, err := dispatch.InvokeCtx(ctx, w.obj, method, args)
	w.rt.recordExec(w.class, time.Since(start))
	record := hasTok && dedupRecordable(err)
	rep := remoting.DedupReply{
		Result:  res,
		ErrMsg:  errMsg(err),
		ErrCode: errs.Code(err),
		IsErr:   err != nil,
	}
	if err == nil && w.virt != nil {
		// The dedup record is committed by replicateAfterCalls, inside the
		// same critical section that publishes the snapshot it is embedded
		// in: a promotion census reading (snapshot, dedup memory) under that
		// lock sees this call in both or in neither — a record without its
		// effects would replay an acknowledgement for state the promoted
		// lineage does not have, and effects without their record would
		// re-execute the retry of a call refused by the fence below.
		var rec *pendingRecord
		if record {
			rec = &pendingRecord{tok: tok, rep: rep}
			record = false
		}
		if rerr := w.rt.replicateAfterCalls(ctx, w, 1, rec); rerr != nil {
			// Synchronous replication failed: surface it so the caller
			// retries (and its retry re-replicates) instead of receiving an
			// acknowledgement for state no replica has.
			return nil, rerr
		}
	}
	if record {
		// Non-replicated path (plain objects, application errors): no
		// snapshot to pair with, record directly.
		w.dedup.Put(tok, rep)
	}
	if w.fenced.Load() {
		// A promotion census fenced this copy while the call was in
		// flight. The census reads the (snapshot, dedup) pair after setting
		// the fence, and this call committed its pair before replicating —
		// so a call refused here either made it into the promoted lineage
		// whole (its retry replays the recorded reply) or not at all (its
		// retry executes there once).
		return nil, errFenced(w.uri)
	}
	return res, err
}

// dedupRecordable reports whether an invocation outcome is worth
// remembering for replay. Outcomes that never executed the method body
// (refusals and cut-offs) are not: replaying them would pin a transient
// failure onto every retry of the token.
func dedupRecordable(err error) bool {
	if err == nil {
		return true
	}
	return !errors.Is(err, context.DeadlineExceeded) &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, errs.ErrOverloaded) &&
		!errors.Is(err, errs.ErrObjectMoved) &&
		!errors.Is(err, errs.ErrObjectDestroyed) &&
		!errors.Is(err, errs.ErrNodeDown)
}

func errMsg(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// dedupReplayError rebuilds the error of a recorded outcome, re-rooting it
// at the matching sentinel so errors.Is classification survives the replay.
func dedupReplayError(rep remoting.DedupReply) error {
	if !rep.IsErr {
		return nil
	}
	if sent := errs.Sentinel(rep.ErrCode); sent != nil {
		return fmt.Errorf("%s: %w", rep.ErrMsg, sent)
	}
	return errors.New(rep.ErrMsg)
}

// InvokeBatch replays an aggregate message: calls is a list of argument
// lists for method. It returns the number of calls applied.
func (w *ioWrapper) InvokeBatch(ctx context.Context, method string, calls []any) (int, error) {
	if w.fenced.Load() {
		return 0, errFenced(w.uri)
	}
	start := time.Now()
	for i, c := range calls {
		args, ok := c.([]any)
		if !ok {
			return i, fmt.Errorf("core: batch element %d is %T, want argument list", i, c)
		}
		if _, err := dispatch.InvokeCtx(ctx, w.obj, method, args); err != nil {
			return i, err
		}
	}
	if n := len(calls); n > 0 {
		w.rt.recordExec(w.class, time.Since(start)/time.Duration(n))
		if w.virt != nil {
			if rerr := w.rt.replicateAfterCalls(ctx, w, n, nil); rerr != nil {
				return 0, rerr
			}
		}
	}
	return len(calls), nil
}
